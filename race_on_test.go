//go:build race

package accluster

// raceEnabled reports whether the race detector instruments this build; the
// wall-clock latency assertions are meaningless under its overhead.
const raceEnabled = true
