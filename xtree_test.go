package accluster

import (
	"math/rand"
	"sort"
	"testing"
)

func TestXTreePublicAPI(t *testing.T) {
	xt, err := NewXTree(8, WithPageSize(2048), WithMaxOverlap(0.2), WithMinFill(0.4))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewSeqScan(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	// Point-like objects keep split overlap low so the tree actually
	// splits (large overlapping objects legitimately degenerate into a
	// single supernode — covered in internal/xtree tests).
	for id := uint32(0); id < 1500; id++ {
		r := randomRect(rng, 8, 0.05)
		if err := xt.Insert(id, r); err != nil {
			t.Fatal(err)
		}
		if err := ss.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if xt.Len() != 1500 || xt.Dims() != 8 || xt.Nodes() < 2 || xt.Height() < 2 {
		t.Fatalf("tree shape: len=%d nodes=%d height=%d", xt.Len(), xt.Nodes(), xt.Height())
	}
	for qi := 0; qi < 60; qi++ {
		q := randomRect(rng, 8, 0.6)
		rel := Relation(qi % 3)
		got, err := xt.SearchIDs(q, rel)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ss.SearchIDs(q, rel)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d rel %v: %d results, want %d", qi, rel, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d rel %v: mismatch", qi, rel)
			}
		}
	}
	if err := xt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deletions mirror seqscan.
	for id := uint32(0); id < 500; id++ {
		if !xt.Delete(id) || !ss.Delete(id) {
			t.Fatalf("delete %d", id)
		}
	}
	q := randomRect(rng, 8, 0.5)
	a, _ := xt.Count(q, Intersects)
	b, _ := ss.Count(q, Intersects)
	if a != b {
		t.Fatalf("after deletes: %d vs %d", a, b)
	}
	if _, ok := xt.Get(1000); !ok {
		t.Error("Get of live object")
	}
	st := xt.Stats()
	if st.Objects != 1000 || st.Queries == 0 {
		t.Fatalf("stats: %+v", st)
	}
	xt.ResetStats()
	if xt.Stats().Queries != 0 {
		t.Error("ResetStats")
	}
	_ = xt.Supernodes()
	if _, err := NewXTree(0); err == nil {
		t.Error("NewXTree(0) must fail")
	}
	if _, err := NewXTree(2, WithMaxOverlap(2)); err == nil {
		t.Error("bad overlap must fail")
	}
}
