package accluster

import (
	"time"

	"accluster/internal/core"
	"accluster/internal/shard"
	"accluster/internal/telemetry"
)

// ErrNotFound is returned by Update when the object id is not present.
var ErrNotFound = core.ErrNotFound

// Sharded is the parallel partitioned adaptive index: objects are
// hash-partitioned by id across independent adaptive indexes (shards), point
// operations lock only the owning shard, and spatial selections fan out to
// all shards in parallel and merge the answers. It returns exactly the same
// result sets as Adaptive over the same data — partitioning only changes who
// verifies each object — while letting operations on different shards run on
// different cores.
type Sharded struct {
	e *shard.Engine

	// Flight recorder (WithTelemetry / WithTelemetryAddr); see Adaptive.
	tel    *Telemetry
	ownTel bool
	qhist  *telemetry.Histogram
}

// NewSharded builds a sharded adaptive index for the given dimensionality.
// The shard count defaults to the next power of two ≥ GOMAXPROCS; see
// WithShards and WithFanout to tune, plus the Adaptive options (scenario,
// division factor, reorganization budget, …), which apply to every shard.
// With WithBackgroundReorg every shard owns a drainer goroutine that takes
// the shard lock only per bounded reorganization step; call Close when done.
func NewSharded(dims int, opts ...Option) (*Sharded, error) {
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	e, err := shard.New(shard.Config{
		Shards:  o.shards,
		Workers: o.fanout,
		Core:    coreConfig(dims, o),
	})
	if err != nil {
		return nil, err
	}
	s := &Sharded{e: e}
	if err := s.initTelemetry(o); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Close stops the per-shard background reorganization goroutines (no-op
// without WithBackgroundReorg) and, when the engine owns its flight recorder
// (WithTelemetryAddr), the telemetry sampler and endpoint. The index stays
// usable afterwards.
func (s *Sharded) Close() error {
	err := s.e.Close()
	if s.ownTel && s.tel != nil {
		_ = s.tel.Close()
		s.ownTel = false
	}
	return err
}

// Insert adds an object to its owning shard (placed into the matching
// cluster with the lowest access probability there).
func (s *Sharded) Insert(id uint32, r Rect) error { return s.e.Insert(id, r) }

// InsertBatch bulk-loads a batch of objects: the batch is pre-bucketed by
// owning shard and every shard ingests its bucket under a single lock
// acquisition, with shards loading in parallel. On error the batch may be
// partially applied.
func (s *Sharded) InsertBatch(ids []uint32, rects []Rect) error {
	return s.e.InsertBatch(ids, rects)
}

// Update replaces the rectangle stored under id; it returns an error
// wrapping ErrNotFound if the id is absent.
func (s *Sharded) Update(id uint32, r Rect) error { return s.e.Update(id, r) }

// Delete removes an object, reporting whether it existed.
func (s *Sharded) Delete(id uint32) bool { return s.e.Delete(id) }

// Get returns the rectangle stored under id.
func (s *Sharded) Get(id uint32) (Rect, bool) { return s.e.Get(id) }

// Search executes a spatial selection by fanning out to all shards in
// parallel; results are emitted in shard order once all shards answered.
// emit returning false stops the emission early.
func (s *Sharded) Search(q Rect, rel Relation, emit func(id uint32) bool) error {
	var t0 time.Time
	if s.qhist != nil {
		t0 = time.Now()
	}
	err := s.e.Search(q, rel, emit)
	if s.qhist != nil {
		s.qhist.Record(int64(time.Since(t0)))
	}
	return err
}

// SearchIDs collects all qualifying identifiers.
func (s *Sharded) SearchIDs(q Rect, rel Relation) ([]uint32, error) {
	var t0 time.Time
	if s.qhist != nil {
		t0 = time.Now()
	}
	ids, err := s.e.SearchIDs(q, rel)
	if s.qhist != nil {
		s.qhist.Record(int64(time.Since(t0)))
	}
	return ids, err
}

// SearchIDsAppend appends all qualifying identifiers to dst and returns the
// extended slice; the fan-out merges the per-shard answers through pooled
// buffers, so with a reused dst the selection performs no steady-state
// allocations.
func (s *Sharded) SearchIDsAppend(dst []uint32, q Rect, rel Relation) ([]uint32, error) {
	var t0 time.Time
	if s.qhist != nil {
		t0 = time.Now()
	}
	ids, err := s.e.SearchIDsAppend(dst, q, rel)
	if s.qhist != nil {
		s.qhist.Record(int64(time.Since(t0)))
	}
	return ids, err
}

// SearchIDsBatch executes every query of the batch with one fan-out: each
// shard receives the whole batch (one signature-mirror pass per shard, not
// one per query) and the per-shard answers merge into dst in shard order per
// query — exactly the id order looped SearchIDsAppend calls produce. The
// latency histogram records one sample for the whole batch.
func (s *Sharded) SearchIDsBatch(dst *BatchResult, qs []Rect, rel Relation) (*BatchResult, error) {
	if dst == nil {
		dst = new(BatchResult)
	}
	var t0 time.Time
	if s.qhist != nil {
		t0 = time.Now()
	}
	err := s.e.SearchIDsBatch(&dst.b, qs, rel)
	if s.qhist != nil {
		s.qhist.Record(int64(time.Since(t0)))
	}
	return dst, err
}

// Count returns the number of qualifying objects.
func (s *Sharded) Count(q Rect, rel Relation) (int, error) {
	var t0 time.Time
	if s.qhist != nil {
		t0 = time.Now()
	}
	n, err := s.e.Count(q, rel)
	if s.qhist != nil {
		s.qhist.Record(int64(time.Since(t0)))
	}
	return n, err
}

// Len returns the number of stored objects across all shards.
func (s *Sharded) Len() int { return s.e.Len() }

// Dims returns the data space dimensionality.
func (s *Sharded) Dims() int { return s.e.Dims() }

// Shards returns the number of partitions.
func (s *Sharded) Shards() int { return s.e.Shards() }

// Clusters returns the number of materialized clusters across all shards.
func (s *Sharded) Clusters() int { return s.e.Clusters() }

// Reorganize forces a reorganization round on every shard, in parallel
// (normally each shard reorganizes itself every ReorgEvery queries).
func (s *Sharded) Reorganize() { s.e.Reorganize() }

// ReorgRounds returns the total number of reorganization rounds across all
// shards.
func (s *Sharded) ReorgRounds() int64 { return s.e.ReorgRounds() }

// Splits returns the total number of cluster materializations performed.
func (s *Sharded) Splits() int64 { return s.e.Splits() }

// Merges returns the total number of cluster merge operations performed.
func (s *Sharded) Merges() int64 { return s.e.Merges() }

// Stats returns an aggregated snapshot of the operation counters: work
// counters are summed across shards while Queries counts logical selections,
// so per-query fractions and modeled times describe total (sequential) work
// per selection. The parallel speedup appears in wall time, not in the
// modeled time.
func (s *Sharded) Stats() Stats {
	st := statsFrom(s.e.Meter(), s.e.Len(), s.e.Clusters(), s.e.Dims())
	st.QuarantinedPartitions = s.e.QuarantinedCount()
	return st
}

// ShardStats returns one Stats snapshot per shard, in routing order; useful
// for checking partition balance.
func (s *Sharded) ShardStats() []Stats {
	infos := s.e.ShardInfos()
	out := make([]Stats, len(infos))
	for i, in := range infos {
		out[i] = statsFrom(in.Meter, in.Objects, in.Clusters, s.e.Dims())
		if in.Quarantined {
			out[i].QuarantinedPartitions = 1
		}
	}
	return out
}

// ResetStats zeroes the operation counters (clustering statistics are kept).
func (s *Sharded) ResetStats() { s.e.ResetMeter() }

// ClusterInfos reports every materialized cluster, shard by shard (each
// shard's root cluster first).
func (s *Sharded) ClusterInfos() []ClusterInfo {
	infos := s.e.ClusterInfos()
	out := make([]ClusterInfo, len(infos))
	for i, in := range infos {
		out[i] = ClusterInfo(in)
	}
	return out
}

// QuarantinedShard describes one partition that failed to load during a
// salvage open (WithSalvage): its index and the integrity or I/O error that
// quarantined it.
type QuarantinedShard = shard.QuarantinedShard

// Generation returns the checkpoint generation the index was loaded from or
// last saved as (0 for a fresh index that has never touched disk).
func (s *Sharded) Generation() uint64 { return s.e.Generation() }

// Quarantined reports the partitions that failed to load during a salvage
// open, with the error that condemned each; empty on a healthy index.
func (s *Sharded) Quarantined() []QuarantinedShard { return s.e.Quarantined() }

// RestoreQuarantined re-ingests the objects of quarantined partitions from
// an authoritative copy of the full data set (e.g. the original objects or
// a peer's checkpoint contents): objects routing to healthy shards are
// skipped, objects routing to quarantined shards are re-inserted, and on
// success the quarantine is cleared. No-op on a healthy index.
func (s *Sharded) RestoreQuarantined(ids []uint32, rects []Rect) error {
	return s.e.RestoreQuarantined(ids, rects)
}

// CheckInvariants validates every shard's structural invariants and the
// id-routing invariant; it is expensive and intended for tests.
func (s *Sharded) CheckInvariants() error { return s.e.CheckInvariants() }

var _ Index = (*Sharded)(nil)
