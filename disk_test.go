package accluster

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

// buildDiskCheckpoint builds a converged adaptive index, checkpoints it and
// returns the in-memory index plus the file path.
func buildDiskCheckpoint(t *testing.T, dims, n int) (*Adaptive, string) {
	t.Helper()
	ix, err := NewAdaptive(dims, WithReorgEvery(40))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	r := NewRect(dims)
	for id := uint32(0); id < uint32(n); id++ {
		for d := 0; d < dims; d++ {
			size := rng.Float32() * 0.3
			lo := rng.Float32() * (1 - size)
			r.Min[d], r.Max[d] = lo, lo+size
		}
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	q := NewRect(dims)
	for i := 0; i < 300; i++ {
		for d := 0; d < dims; d++ {
			size := rng.Float32() * 0.2
			lo := rng.Float32() * (1 - size)
			q.Min[d], q.Max[d] = lo, lo+size
		}
		if _, err := ix.Count(q, Intersects); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "disk.acdb")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return ix, path
}

func TestOpenDiskMatchesAdaptive(t *testing.T) {
	ix, path := buildDiskCheckpoint(t, 5, 4000)
	d, err := OpenDisk(path, WithDiskCache(8<<20), WithReadahead(128<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != ix.Len() || d.Dims() != 5 || d.Clusters() != ix.Clusters() {
		t.Fatalf("metadata: len=%d dims=%d clusters=%d", d.Len(), d.Dims(), d.Clusters())
	}
	rng := rand.New(rand.NewSource(10))
	q := NewRect(5)
	var buf []uint32
	for qi := 0; qi < 40; qi++ {
		for dim := 0; dim < 5; dim++ {
			size := rng.Float32() * 0.4
			lo := rng.Float32() * (1 - size)
			q.Min[dim], q.Max[dim] = lo, lo+size
		}
		rel := Relation(qi % 3)
		want, err := ix.SearchIDs(q, rel)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.SearchIDsAppend(buf[:0], q, rel)
		if err != nil {
			t.Fatal(err)
		}
		buf = got
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d rel %v: %d results, want %d", qi, rel, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d rel %v: id mismatch", qi, rel)
			}
		}
		n, err := d.Count(q, rel)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Fatalf("query %d rel %v: count %d want %d", qi, rel, n, len(want))
		}
	}
	st := d.Stats()
	if st.Queries == 0 || st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("stats missing cache accounting: %+v", st)
	}
	cs := d.CacheStats()
	if cs.Hits != st.CacheHits || cs.Entries == 0 || cs.BudgetBytes != 8<<20 {
		t.Fatalf("cache stats: %+v vs meter hits %d", cs, st.CacheHits)
	}
}

func TestOpenDiskNoCacheOption(t *testing.T) {
	_, path := buildDiskCheckpoint(t, 3, 1500)
	d, err := OpenDisk(path, WithDiskCache(0), WithReadahead(0))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	full := MustRect([]float32{0, 0, 0}, []float32{1, 1, 1})
	for pass := 0; pass < 2; pass++ {
		if _, err := d.Count(full, Intersects); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("disabled cache must not count hits/misses: %+v", st)
	}
	// Without coalescing every exploration is its own seek.
	if st.Seeks != st.PartitionsExplored {
		t.Fatalf("readahead disabled: seeks %d != explorations %d", st.Seeks, st.PartitionsExplored)
	}
	if cs := d.CacheStats(); cs.BudgetBytes != 0 || cs.Entries != 0 {
		t.Fatalf("cache must be off: %+v", cs)
	}
}

func TestOpenDiskRejectsInvalidOptions(t *testing.T) {
	_, path := buildDiskCheckpoint(t, 3, 500)
	if _, err := OpenDisk(path, WithDiskCache(-1)); err == nil {
		t.Error("negative cache budget accepted")
	}
	if _, err := OpenDisk(path, WithReadahead(-1)); err == nil {
		t.Error("negative readahead accepted")
	}
	if _, err := OpenDisk(filepath.Join(t.TempDir(), "absent.acdb")); err == nil {
		t.Error("opening an absent checkpoint must fail")
	}
}
