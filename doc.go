// Package accluster is a Go implementation of the adaptive cost-based
// clustering index for multidimensional extended objects described in
//
//	Cristian-Augustin Saita, François Llirbat:
//	"Clustering Multidimensional Extended Objects to Speed Up Execution of
//	Spatial Queries", EDBT 2004.
//
// A multidimensional extended object (hyper-rectangle) defines a range
// interval in every dimension of a [0,1]^d data space. The package answers
// spatial selections over large collections of such objects:
//
//   - intersection queries: objects overlapping a query rectangle,
//   - containment queries: objects contained in a query rectangle,
//   - enclosure queries: objects enclosing a query rectangle — with
//     point-enclosing queries (an event point against a subscription
//     database) as the motivating special case.
//
// The primary index, NewAdaptive, clusters objects with similar interval
// bounds on a restrained number of dimensions and adapts the clustering to
// the observed data and query distributions with a cost model of the storage
// scenario (in-memory or disk-based). Two baselines from the paper's
// evaluation are provided under the same interface: NewSeqScan (sequential
// scan) and NewRStar (the R*-tree of Beckmann et al. 1990).
//
// # Quick start
//
//	ix, _ := accluster.NewAdaptive(16)
//	_ = ix.Insert(1, accluster.MustRect(
//		[]float32{0.1, 0.2 /* ... */}, []float32{0.3, 0.4 /* ... */}))
//	ids, _ := ix.SearchIDs(q, accluster.Intersects)
//
// # Reorganization
//
// The adaptive index pays for cheap queries with periodic reorganization:
// every WithReorgEvery queries (default 100) a reorganization epoch begins,
// aging the query statistics by WithDecay and queueing every materialized
// cluster for a cost-model revisit — merge into the parent when profitable,
// otherwise materialize profitable candidate subclusters (§3.4). The queue
// is ordered by each cluster's last observed benefit and drained
// incrementally: by default each query runs one bounded step
// (WithReorgBudget, default 32 cluster revisits and 128 object relocations;
// merges and materializations are chunked, so the relocation bound caps
// every step outright). The worst query therefore carries a bounded slice
// of maintenance instead of a stop-the-world full pass — pass Unbudgeted
// budgets to restore the synchronous behaviour.
//
// Statistics aging is equivalent under either schedule: the window decays
// eagerly once per epoch and per-cluster indicators decay lazily by
// Decay^(elapsed epochs) when next touched, so every access probability a
// reorganization decision reads matches what the synchronous full pass
// would have used; only the position of the merge/split work in the query
// stream moves.
//
// WithBackgroundReorg moves even the bounded steps off the query path:
// queries only schedule work, and a drainer goroutine per index (per shard
// for NewSharded) acquires the engine lock once per step. Indexes built
// with it own a goroutine — call Close when done. Reorganize still forces a
// full round synchronously, the convergence hook after bulk loading and in
// calibration.
//
// # Concurrency
//
// All indexes are safe for concurrent use, and on the adaptive engines
// searches take a shared lock: any number of concurrent Search, SearchIDs,
// SearchIDsAppend, Count and Get calls execute in parallel — on NewAdaptive
// within the one index, on NewSharded within every shard as well as across
// shards — while Insert, Update, Delete and reorganization steps take the
// lock exclusive. Read-only query throughput therefore scales with client
// goroutines × cores, not with the shard count alone.
//
// The paper couples every query with statistics bookkeeping; the query path
// splits that off: each search records its statistics updates privately and
// publishes them after its shared phase, under a brief exclusive
// acquisition taken only when the lock is free (blocking once a small
// backlog watermark is reached). Reorganization maintenance likewise runs
// between queries — piggybacked on those publication slots, or on the
// WithBackgroundReorg drainer goroutine — so readers never wait on
// maintenance. Published increments are exactly the serial ones, so after
// the backlog drains (any mutation, Reorganize, or an idle-lock moment),
// concurrent and serial execution of the same query set leave identical
// clustering statistics up to the commutative reordering of additions. emit
// callbacks must not call back into the same index.
//
// NewSharded remains the multi-core engine of choice for mixed workloads:
// it hash-partitions objects by id across independent adaptive indexes (one
// reader/writer lock each), routes Insert, Update, Delete and Get to the
// owning shard — mutations on different shards run in parallel — and fans
// every Search out to all shards on a bounded worker pool. It returns
// exactly the same result sets as NewAdaptive over the same data.
//
// NewSeqScan, NewRStar and NewXTree serialize on a single mutex (their
// searches mutate traversal state), capping each at one core.
//
// Pick NewAdaptive for read-heavy workloads, when reproducing the paper's
// experiments (one clustering over the whole database), or when modeled
// cost accounting per clustering decision matters; pick NewSharded when
// mutations must also scale or query fan-out should use every core.
//
// # Storage layout and allocation behaviour
//
// Internally each cluster stores its members in column-major
// (structure-of-arrays) order: one contiguous lo/hi float32 column per
// dimension, plus a flat side-array mirroring every cluster signature. A
// selection therefore runs as two linear scans — signatures first, then,
// per explored cluster, a bitmap-driven block scan of the dimension columns
// (most selective dimensions first, early exit when the bitmap empties,
// columns skipped entirely when the signature already proves them). The
// on-disk store format keeps the interleaved row-major layout and is
// transposed at save/load, so segments persist unchanged across versions;
// since format version 2 each segment also carries the adaptive query
// statistics (per-cluster and per-candidate indicators plus the decayed
// window), so OpenAdaptive and OpenSharded resume adaptation warm instead
// of re-learning the query distribution from scratch. Version-1 segments
// still load and re-gather statistics.
//
// Steady-state searches are allocation-free: the verification bitmap, the
// matching-cluster list and the statistics delta live in pooled per-query
// scratch (each in-flight concurrent query owns its own set), and
// SearchIDsAppend reuses the caller's result buffer (the sharded engine
// merges its fan-out through pooled per-shard buffers). Use SearchIDsAppend
// with a retained buffer in hot loops; SearchIDs is the convenience form
// that allocates a fresh result slice per call.
//
// # Batched queries
//
// SearchIDsBatch answers N queries in one engine pass: the signature mirror
// is scanned once for the whole batch (the query rectangles become
// per-dimension coordinate columns and each signature the scalar side of
// the columnar kernels), every matched cluster is verified against all its
// interested queries while its member columns are hot, and the whole
// batch's statistics publish as a single mailbox entry. Per-query answers,
// meters and clustering statistics are exactly those of looping
// SearchIDsAppend — batching saves passes, never work accounting. A batch
// of all-point queries (Min == Max everywhere, the pub/sub event regime)
// takes a faster kernel still: the batch's coordinates are sorted once per
// dimension and each signature binary-searches its narrowest membership
// interval — precomputed alongside the mirror — instead of scanning the
// batch. On the disk engine a batch unions the cluster misses of all
// queries into one coalesced, seek-ordered read plan, probing the region
// cache once per distinct cluster. Reuse the *BatchResult across calls for
// allocation-free steady state; every engine supports the call (the
// baselines loop internally), and the networked broker coalesces queued
// publishes into the pub/sub tier's PublishBatch.
//
// # Disk scenario
//
// OpenDisk queries a SaveFile checkpoint directly in the paper's disk
// storage scenario (§5.ii): only the directory and signatures are loaded —
// member regions stay on the device — so databases far larger than RAM
// remain queryable. Explored regions pass through a fixed-budget cache of
// decoded columns (WithDiskCache, default 64 MiB, CLOCK eviction, pinned
// while concurrent searches verify against them): a cache hit verifies in
// memory and charges no Seeks and no BytesTransferred (Stats.CacheHits and
// Stats.CacheMisses record the split; ObjectsVerified accrues either way),
// while missed regions are fetched with seek-coalescing readahead
// (WithReadahead, default 256 KiB) — regions adjacent or near-adjacent on
// the device merge into single sequential reads, one Seek each. The cache
// is invalidated by reopening: a Disk opened after a new SaveFile starts a
// fresh cache generation. Fully cached selections allocate nothing.
//
// # Durability and recovery
//
// Checkpoints are atomic and generational. SaveFile writes the new image to
// a temporary file, syncs it and the directory, then renames it over the
// old checkpoint; SaveDir writes a complete new generation of per-shard
// segments and commits it by atomically flipping the checksummed manifest,
// garbage-collecting the previous generation only after the flip. A crash,
// I/O error or full disk at any point therefore leaves either the previous
// checkpoint or the new one loadable — never a torn mix, never total loss
// (the property is proven by power-fail loop tests that crash a save at
// every injectable I/O operation; see internal/faultio). Every load
// validates every checksum; integrity failures wrap ErrCorrupt and carry a
// *CorruptError detail. OpenSharded with WithSalvage degrades instead of
// failing when segments are damaged: corrupt shards are quarantined and the
// healthy partitions served, with the damage reported by Quarantined and
// Stats.QuarantinedPartitions and repaired online via RestoreQuarantined —
// or offline with cmd/acfsck, which verifies checkpoints and restores
// damaged segments from a peer copy.
//
// # Observability
//
// Every engine accepts a flight recorder: WithTelemetry attaches a shared
// Telemetry whose sampler captures engine gauges (object/cluster counts,
// the operation meter, reorg backlog and epoch, per-shard counts, region
// cache residency, Go runtime stats) once per interval into a fixed-budget
// in-memory ring, and records every query's latency into a log-bucketed
// histogram — one atomic increment plus one atomic add, preserving the
// allocation-free warm search path. WithTelemetryAddr instead gives the
// engine its own recorder plus a live introspection endpoint serving
// /telemetry (JSON), /telemetry/dump (the delta-encoded, CRC-checksummed
// binary ring dump — decode with cmd/acstat), expvar and net/http/pprof;
// the endpoint stops with Close. Recorder memory is bounded by
// construction (WithTelemetryRing): the ring evicts whole chunks
// oldest-first and each chunk carries its own schema, so old dumps stay
// decodable.
//
// # Networked notification
//
// The §1 selective-dissemination broker (internal/pubsub) also serves over
// TCP: internal/netbroker wraps a pubsub.Broker in a streaming server —
// standing subscriptions registered over the wire, matches pushed to
// subscribers as events arrive — with a reconnecting client on the other
// end. Frames are length-prefixed and CRC-checked (corruption wraps
// ErrCorrupt and closes the connection, mirroring the storage integrity
// convention), slow consumers degrade per a configurable bounded-queue
// policy (drop-oldest, drop-newest or disconnect), dead peers are detected
// by heartbeat, and the client redials with capped jittered backoff and
// re-registers its subscriptions. cmd/sdid -listen / -connect serve and
// drive a broker interactively; cmd/acbench -brokerjson runs the loopback
// load harness behind BENCH_broker.json.
//
// # Enforced invariants
//
// Several of the guarantees above are conventions the compiler cannot
// check: read paths hold only the shared lock and never call exclusive
// operations, statistics publication (TryDrainStats) happens strictly after
// RUnlock, the warm search paths allocate nothing, cost-meter counts are
// recorded into per-query scratch and published through SyncMeter.Merge,
// and every integrity failure wraps ErrCorrupt so errors.Is can classify
// it. These invariants are machine-enforced by cmd/acvet, a static-analysis
// suite (internal/analysis) run in CI as a `go vet -vettool` backend. The
// contracts are declared in source with annotations — //ac:excl marks
// operations requiring the write lock, //ac:noalloc pins a function as an
// allocation-free hot path (also driven at runtime by
// TestNoAllocAnnotatedPaths under testing.AllocsPerRun), //ac:scratch and
// //ac:serialmeter mark the approved meter-mutation containers — and a
// finding is suppressed only by an "//acvet:ignore <analyzer>
// <justification>" comment whose justification is mandatory.
package accluster
