package accluster

import (
	"time"

	"accluster/internal/diskengine"
	"accluster/internal/store"
	"accluster/internal/telemetry"
)

// Disk is a read-only query engine over a checkpoint written by SaveFile,
// executing the paper's disk storage scenario (§5.ii): the directory and
// cluster signatures stay in memory, member regions are read from the file
// on demand. Unlike OpenAdaptive — which loads the whole database back into
// an in-memory index — OpenDisk touches only the header and directory, so
// it serves selections over databases far larger than RAM.
//
// The query path keeps a fixed-budget cache of decoded cluster regions
// (WithDiskCache): explorations whose region is resident verify in memory
// and charge no Seeks and no BytesTransferred (CacheHits/CacheMisses in
// Stats record the split), while missed regions are fetched with
// seek-coalescing readahead (WithReadahead) — adjacent and near-adjacent
// regions merge into single sequential reads. The cache is invalidated by
// reopening: a Disk opened after a new SaveFile starts a fresh cache
// generation and never sees stale regions.
//
// Disk is safe for concurrent use. It reflects the checkpoint at open time;
// mutations to the live index become visible by checkpointing again and
// reopening.
type Disk struct {
	eng *diskengine.Engine
	dev *store.FileDevice

	// Flight recorder (WithTelemetry / WithTelemetryAddr); see Adaptive.
	tel    *Telemetry
	ownTel bool
	qhist  *telemetry.Histogram
}

// OpenDisk opens a database file written by SaveFile for direct
// disk-scenario querying. WithDiskCache and WithReadahead tune the query
// path; the other options are ignored.
func OpenDisk(path string, opts ...Option) (*Disk, error) {
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	dev, err := store.OpenFileDevice(path)
	if err != nil {
		return nil, err
	}
	cfg := diskengine.Config{}
	if o.diskCacheSet {
		cfg.CacheBytes = o.diskCache
		if o.diskCache == 0 {
			cfg.CacheBytes = -1 // explicit “no cache”
		}
	}
	if o.readaheadSet {
		cfg.ReadaheadGap = o.readaheadGap
		if o.readaheadGap == 0 {
			cfg.ReadaheadGap = -1 // explicit “no coalescing”
		}
	}
	eng, err := diskengine.OpenConfig(dev, cfg)
	if err != nil {
		dev.Close()
		return nil, err
	}
	d := &Disk{eng: eng, dev: dev}
	if err := d.initTelemetry(o); err != nil {
		dev.Close()
		return nil, err
	}
	return d, nil
}

// Close releases the underlying file and, when the engine owns its flight
// recorder (WithTelemetryAddr), stops the telemetry sampler and endpoint.
// The cache is dropped with the engine.
func (d *Disk) Close() error {
	err := d.dev.Close()
	if d.ownTel && d.tel != nil {
		_ = d.tel.Close()
		d.ownTel = false
	}
	return err
}

// Search calls emit for every object satisfying the relation with q; emit
// returning false stops the search (regions not yet read stay unread). The
// emission order across clusters is unspecified.
//
//ac:noalloc
func (d *Disk) Search(q Rect, rel Relation, emit func(id uint32) bool) error {
	var t0 time.Time
	if d.qhist != nil {
		t0 = time.Now()
	}
	err := d.eng.Search(q, rel, emit)
	if d.qhist != nil {
		d.qhist.Record(int64(time.Since(t0)))
	}
	return err
}

// SearchIDs collects all qualifying identifiers.
func (d *Disk) SearchIDs(q Rect, rel Relation) ([]uint32, error) {
	var t0 time.Time
	if d.qhist != nil {
		t0 = time.Now()
	}
	ids, err := d.eng.SearchIDs(q, rel)
	if d.qhist != nil {
		d.qhist.Record(int64(time.Since(t0)))
	}
	return ids, err
}

// SearchIDsAppend appends all qualifying identifiers to dst and returns the
// extended slice; with a reused dst, selections whose regions are all
// cached allocate nothing.
//
//ac:noalloc
func (d *Disk) SearchIDsAppend(dst []uint32, q Rect, rel Relation) ([]uint32, error) {
	var t0 time.Time
	if d.qhist != nil {
		t0 = time.Now()
	}
	ids, err := d.eng.SearchIDsAppend(dst, q, rel)
	if d.qhist != nil {
		d.qhist.Record(int64(time.Since(t0)))
	}
	return ids, err
}

// SearchIDsBatch executes every query of the batch with one engine pass and
// one multi-query read plan: the candidate clusters of all queries are
// unioned, the block cache is probed once per distinct cluster, and the
// misses are read as a single coalesced seek-sorted sweep — each region
// decoded once and verified against every interested query while hot. A
// batch therefore costs strictly fewer seeks than looping its queries
// whenever they share clusters or their clusters adjoin on the device. With
// a reused dst a fully cached batch allocates nothing. The latency
// histogram records one sample for the whole batch.
//
//ac:noalloc
func (d *Disk) SearchIDsBatch(dst *BatchResult, qs []Rect, rel Relation) (*BatchResult, error) {
	if dst == nil {
		//acvet:ignore noalloc nil-dst convenience; steady-state callers pass a reused BatchResult
		dst = new(BatchResult)
	}
	var t0 time.Time
	if d.qhist != nil {
		t0 = time.Now()
	}
	err := d.eng.SearchIDsBatch(&dst.b, qs, rel)
	if d.qhist != nil {
		d.qhist.Record(int64(time.Since(t0)))
	}
	return dst, err
}

// Count returns the number of qualifying objects.
//
//ac:noalloc
func (d *Disk) Count(q Rect, rel Relation) (int, error) {
	var t0 time.Time
	if d.qhist != nil {
		t0 = time.Now()
	}
	n, err := d.eng.Count(q, rel)
	if d.qhist != nil {
		d.qhist.Record(int64(time.Since(t0)))
	}
	return n, err
}

// Len returns the number of stored objects.
func (d *Disk) Len() int { return d.eng.Len() }

// Dims returns the data space dimensionality.
func (d *Disk) Dims() int { return d.eng.Dims() }

// Clusters returns the number of clusters in the checkpoint directory.
func (d *Disk) Clusters() int { return d.eng.Clusters() }

// Stats returns a snapshot of the operation counters, including the
// CacheHits/CacheMisses split of explorations.
func (d *Disk) Stats() Stats {
	return statsFrom(d.eng.Meter(), d.eng.Len(), d.eng.Clusters(), d.eng.Dims())
}

// ResetStats zeroes the operation counters (cached regions are kept).
func (d *Disk) ResetStats() { d.eng.ResetMeter() }

// DiskCacheStats describes the decoded-region cache of a Disk engine.
type DiskCacheStats struct {
	// Hits and Misses count cache lookups by explorations.
	Hits, Misses int64
	// Evictions counts regions evicted to respect the memory budget, and
	// Rejected counts regions that could not be admitted at all.
	Evictions, Rejected int64
	// Entries is the number of resident decoded regions.
	Entries int
	// Pinned is the number of resident regions currently pinned by
	// in-flight queries (never evictable); PinnedBytes is their budget
	// charge.
	Pinned      int
	PinnedBytes int64
	// UsedBytes and BudgetBytes describe the memory budget.
	UsedBytes, BudgetBytes int64
}

// CacheStats returns a snapshot of the decoded-region cache counters (all
// zero when the cache is disabled).
func (d *Disk) CacheStats() DiskCacheStats {
	s := d.eng.CacheStats()
	return DiskCacheStats{
		Hits:        s.Hits,
		Misses:      s.Misses,
		Evictions:   s.Evictions,
		Rejected:    s.Rejected,
		Entries:     s.Entries,
		Pinned:      s.Pinned,
		PinnedBytes: s.PinnedBytes,
		UsedBytes:   s.UsedBytes,
		BudgetBytes: s.BudgetBytes,
	}
}
