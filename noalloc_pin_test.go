package accluster

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
	"unicode"
	"unicode/utf8"

	"accluster/internal/analysis"
	"accluster/internal/core"
	"accluster/internal/geom"
	"accluster/internal/sig"
	"accluster/internal/telemetry"
)

// noallocEntry drives one //ac:noalloc-annotated exported path. Key is the
// annotation-table key (pkgpath.Name or pkgpath.Recv.Name) the entry
// covers; run executes one warm call of that path.
type noallocEntry struct {
	key string
	run func()
}

// exportedNoallocKey reports whether every identifier segment of the key —
// the receiver (if any) and the function name — is exported; unexported
// paths are exercised transitively through these.
func exportedNoallocKey(key string) bool {
	rest := key
	if i := strings.LastIndexByte(rest, '/'); i >= 0 {
		rest = rest[i+1:]
	}
	segs := strings.Split(rest, ".")
	if len(segs) < 2 {
		return false
	}
	for _, s := range segs[1:] {
		r, _ := utf8.DecodeRuneInString(s)
		if !unicode.IsUpper(r) {
			return false
		}
	}
	return true
}

// TestNoAllocAnnotatedPaths is the runtime half of the noalloc analyzer:
// every exported path annotated //ac:noalloc is driven warm under
// testing.AllocsPerRun and must allocate nothing. The table is cross-checked
// against the module's annotation scan, so adding //ac:noalloc to an
// exported function without extending the table (or renaming an annotated
// function the table names) fails the test.
func TestNoAllocAnnotatedPaths(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}

	// geom kernel fixtures: one 256-object column pair.
	const kn = 256
	rng := rand.New(rand.NewSource(11))
	lo := make([]float32, kn)
	hi := make([]float32, kn)
	for i := range lo {
		size := rng.Float32() * 0.3
		lo[i] = rng.Float32() * (1 - size)
		hi[i] = lo[i] + size
	}
	bits := make([]uint64, geom.BitmapWords(kn))
	kids := make([]uint32, kn)
	for i := range kids {
		kids[i] = uint32(i)
	}
	surv := make([]uint32, 0, kn)
	q4 := MustRect([]float32{0.2, 0.2, 0.2, 0.2}, []float32{0.6, 0.6, 0.6, 0.6})
	order := make([]int, 4)
	widths := make([]float32, 4)

	// sig fixtures: a flat mirror of 16 root signatures.
	rootSig := sig.Root(4)
	var sb []float32
	for i := 0; i < 16; i++ {
		sb = sig.AppendBounds(sb, rootSig)
	}
	matched := make([]int32, 0, 16)
	selBuf := make([]uint8, 0, 64)

	// core fixtures: a small in-memory index queried directly through the
	// read-phase entry points, draining the stats mailbox after each query
	// the way the lock-owning wrappers do.
	ix, err := core.New(core.Config{Dims: 2, ReorgEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(0); id < 500; id++ {
		size := rng.Float32() * 0.2
		x := rng.Float32() * (1 - size)
		y := rng.Float32() * (1 - size)
		r := geom.Rect{Min: []float32{x, y}, Max: []float32{x + size, y + size}}
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	var ixMu sync.RWMutex
	q2 := MustRect([]float32{0.1, 0.1}, []float32{0.5, 0.5})
	cdst := make([]uint32, 0, 1024)

	// telemetry fixture.
	hist := telemetry.NewHistogram("pin")
	t0 := time.Now()

	// Adaptive fixture: the paper's memory scenario.
	a, err := NewAdaptive(4, WithReorgEvery(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for id := uint32(0); id < 2000; id++ {
		r := NewRect(4)
		for d := 0; d < 4; d++ {
			size := rng.Float32() * 0.3
			r.Min[d] = rng.Float32() * (1 - size)
			r.Max[d] = r.Min[d] + size
		}
		if err := a.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	adst := make([]uint32, 0, 4096)

	// Disk fixture: a checkpoint queried through the disk scenario with the
	// region cache holding the whole working set (the pinned path is the
	// warm hit pass).
	src, path := buildDiskCheckpoint(t, 4, 3000)
	defer src.Close()
	d, err := OpenDisk(path, WithDiskCache(64<<20), WithReadahead(128<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ddst := make([]uint32, 0, 4096)

	// Batch fixtures: reused query batches and result carriers (the batch
	// plane's contract is zero steady-state allocations with reused buffers).
	qs4 := make([]Rect, 8)
	for i := range qs4 {
		r := NewRect(4)
		for dd := 0; dd < 4; dd++ {
			size := rng.Float32() * 0.3
			r.Min[dd] = rng.Float32() * (1 - size)
			r.Max[dd] = r.Min[dd] + size
		}
		qs4[i] = r
	}
	qs2 := make([]geom.Rect, 6)
	for i := range qs2 {
		r := geom.NewRect(2)
		for dd := 0; dd < 2; dd++ {
			size := rng.Float32() * 0.3
			r.Min[dd] = rng.Float32() * (1 - size)
			r.Max[dd] = r.Min[dd] + size
		}
		qs2[i] = r
	}
	var idb, cb, dcb geom.IDBatch
	idb.Reset(8)
	abr, dbr := new(BatchResult), new(BatchResult)
	var bq sig.BatchQueries
	var bm sig.BatchMatch
	qbits := make([]uint64, geom.BitmapWords(len(qs4)))

	emit := func(id uint32) bool { return true }
	var runErr error
	entries := []noallocEntry{
		{"accluster/internal/geom.InitBitmap", func() { geom.InitBitmap(bits, kn) }},
		{"accluster/internal/geom.FilterIntersects", func() { geom.FilterIntersects(lo, hi, 0.2, 0.6, bits) }},
		{"accluster/internal/geom.FilterContainedBy", func() { geom.FilterContainedBy(lo, hi, 0.2, 0.6, bits) }},
		{"accluster/internal/geom.FilterEncloses", func() { geom.FilterEncloses(lo, hi, 0.4, 0.5, bits) }},
		{"accluster/internal/geom.FilterDim", func() { geom.FilterDim(Intersects, lo, hi, 0.2, 0.6, bits) }},
		{"accluster/internal/geom.QueryDimOrder", func() { geom.QueryDimOrder(order, widths, q4, Intersects) }},
		{"accluster/internal/geom.AppendSurvivors", func() { surv = geom.AppendSurvivors(surv[:0], kids, bits) }},
		{"accluster/internal/sig.MatchBounds", func() { matched = sig.MatchBounds(sb, 16, 4, q4, Intersects, matched[:0]) }},
		{"accluster/internal/sig.BoundsImplyDim", func() { sig.BoundsImplyDim(Intersects, sb, 1, 0.2, 0.6) }},
		{"accluster/internal/sig.BatchQueries.Reset", func() { bq.Reset(qs4, 4) }},
		{"accluster/internal/sig.BatchMatch.Reset", func() { bm.Reset() }},
		{"accluster/internal/sig.MatchBoundsBatch", func() { sig.MatchBoundsBatch(sb, 16, 4, &bq, Intersects, nil, qbits, &bm) }},
		{"accluster/internal/geom.IDBatch.Reset", func() { idb.Reset(8) }},
		{"accluster/internal/geom.IDBatch.Queries", func() { _ = idb.Queries() }},
		{"accluster/internal/geom.IDBatch.Query", func() { _ = idb.Query(0) }},
		{"accluster/internal/sig.AppendBounds", func() { sb = sig.AppendBounds(sb[:0], rootSig) }},
		{"accluster/internal/sig.AppendSelectors", func() { selBuf = sig.AppendSelectors(selBuf[:0], sb[:16], 4) }},
		{"accluster/internal/core.Index.SearchRead", func() {
			runErr = ix.SearchRead(q2, Intersects, emit)
			ix.TryDrainStats(&ixMu)
		}},
		{"accluster/internal/core.Index.SearchIDsAppendRead", func() {
			cdst, runErr = ix.SearchIDsAppendRead(cdst[:0], q2, Intersects)
			ix.TryDrainStats(&ixMu)
		}},
		{"accluster/internal/core.Index.CountRead", func() {
			_, runErr = ix.CountRead(q2, Intersects)
			ix.TryDrainStats(&ixMu)
		}},
		{"accluster/internal/core.Index.SearchBatchRead", func() {
			runErr = ix.SearchBatchRead(&cb, qs2, Intersects)
			ix.TryDrainStats(&ixMu)
		}},
		{"accluster/internal/telemetry.Histogram.Record", func() { hist.Record(12345) }},
		{"accluster/internal/telemetry.Histogram.RecordSince", func() { hist.RecordSince(t0) }},
		{"accluster.Adaptive.Search", func() { runErr = a.Search(q4, Intersects, emit) }},
		{"accluster.Adaptive.SearchIDsAppend", func() { adst, runErr = a.SearchIDsAppend(adst[:0], q4, Intersects) }},
		{"accluster.Adaptive.Count", func() { _, runErr = a.Count(q4, Intersects) }},
		{"accluster.Adaptive.SearchIDsBatch", func() { _, runErr = a.SearchIDsBatch(abr, qs4, Intersects) }},
		{"accluster.Disk.Search", func() { runErr = d.Search(q4, Intersects, emit) }},
		{"accluster.Disk.SearchIDsAppend", func() { ddst, runErr = d.SearchIDsAppend(ddst[:0], q4, Intersects) }},
		{"accluster.Disk.Count", func() { _, runErr = d.Count(q4, Intersects) }},
		{"accluster.Disk.SearchIDsBatch", func() { _, runErr = d.SearchIDsBatch(dbr, qs4, Intersects) }},
		{"accluster/internal/diskengine.Engine.Search", func() { runErr = d.eng.Search(q4, Intersects, emit) }},
		{"accluster/internal/diskengine.Engine.SearchIDsAppend", func() { ddst, runErr = d.eng.SearchIDsAppend(ddst[:0], q4, Intersects) }},
		{"accluster/internal/diskengine.Engine.Count", func() { _, runErr = d.eng.Count(q4, Intersects) }},
		{"accluster/internal/diskengine.Engine.SearchIDsBatch", func() { runErr = d.eng.SearchIDsBatch(&dcb, qs4, Intersects) }},
	}

	// Drift check: the table and the module's annotation scan must agree on
	// the exported //ac:noalloc surface.
	annot, err := analysis.ScanModule(".")
	if err != nil {
		t.Fatal(err)
	}
	annotated := annot.Keys("noalloc")
	covered := make(map[string]bool, len(entries))
	for _, e := range entries {
		if covered[e.key] {
			t.Errorf("duplicate table entry %s", e.key)
		}
		covered[e.key] = true
	}
	isAnnotated := make(map[string]bool, len(annotated))
	for _, key := range annotated {
		isAnnotated[key] = true
		if exportedNoallocKey(key) && !covered[key] {
			t.Errorf("exported //ac:noalloc path %s has no AllocsPerRun table entry", key)
		}
	}
	for _, e := range entries {
		if !isAnnotated[e.key] {
			t.Errorf("table entry %s does not name an //ac:noalloc-annotated declaration (renamed or de-annotated?)", e.key)
		}
	}

	for _, e := range entries {
		for i := 0; i < 50; i++ { // warm pools, caches and append buffers
			e.run()
		}
		if runErr != nil {
			t.Fatalf("%s: %v", e.key, runErr)
		}
		if allocs := testing.AllocsPerRun(100, e.run); allocs != 0 {
			t.Errorf("%s allocates %.1f/op warm, want 0", e.key, allocs)
		}
		if runErr != nil {
			t.Fatalf("%s: %v", e.key, runErr)
		}
	}
}
