package accluster

// Tail-latency regression tests for the incremental budgeted reorganization
// scheduler, plus race stress for the background drainer goroutines.

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// reorgHeavyLoad bulk-loads n small objects so that concentrated queries
// materialize many clusters and keep the reorganization schedule busy.
func reorgHeavyLoad(t testing.TB, ix Index, n int, seed int64) {
	t.Helper()
	dims := ix.Dims()
	rng := rand.New(rand.NewSource(seed))
	r := NewRect(dims)
	for id := uint32(0); id < uint32(n); id++ {
		for d := 0; d < dims; d++ {
			size := rng.Float32() * 0.05
			lo := rng.Float32() * (1 - size)
			r.Min[d], r.Max[d] = lo, lo+size
		}
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
}

// hotQuery fills q with a selective box around a corner that drifts with i,
// so clusters keep forming and merging (reorg-heavy, never fully converged).
func hotQuery(q Rect, i int) {
	base := float32(i%5) * 0.18
	for d := 0; d < len(q.Min); d++ {
		q.Min[d], q.Max[d] = base, base+0.15
	}
}

// TestReorgLatencySmoothing drives a reorg-heavy query stream through the
// budgeted scheduler and asserts the worst single query stays within a
// factor of the median — the latency cliff this PR removes was the
// ReorgEvery-th query absorbing a full merge/split pass, two to three
// decimal orders above the median on this workload. Wall-clock bounds are
// inherently environment-sensitive, so the factor is generous and the test
// is skipped under -short and under the race detector's overhead.
func TestReorgLatencySmoothing(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock latency distribution test; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race detector overhead distorts the latency distribution")
	}
	run := func(opts ...Option) (median, p99, max time.Duration, rounds int64) {
		ix, err := NewAdaptive(8, append([]Option{WithReorgEvery(50)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		reorgHeavyLoad(t, ix, 30000, 1)
		const n = 1500
		q := NewRect(8)
		lat := make([]time.Duration, 0, n)
		var buf []uint32
		for i := 0; i < n; i++ {
			hotQuery(q, i)
			start := time.Now()
			buf, err = ix.SearchIDsAppend(buf[:0], q, Intersects)
			if err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], lat[len(lat)*99/100], lat[len(lat)-1], ix.ReorgRounds()
	}
	syncMed, syncP99, syncMax, _ := run(WithReorgBudget(Unbudgeted, Unbudgeted))
	med, p99, max, rounds := run() // default budgets
	t.Logf("synchronous full pass: median %v, p99 %v, max %v", syncMed, syncP99, syncMax)
	t.Logf("budgeted scheduler:    median %v, p99 %v, max %v (%d reorg rounds)", med, p99, max, rounds)
	if rounds < 10 {
		t.Fatalf("only %d reorganization rounds — workload does not exercise the scheduler", rounds)
	}
	// The synchronous pass put the full O(clusters)+relocation cost on one
	// query (observed here: max thousands of times the median); the
	// budgeted scheduler bounds every query's maintenance share. The
	// limit is 150× the budgeted median — with an escape hatch at ⅛ of
	// the measured synchronous max, so a slow or noisy machine that
	// inflates both distributions does not fail the relative claim.
	limit := med * 150
	if alt := syncMax / 8; alt > limit {
		limit = alt
	}
	if max > limit {
		t.Errorf("budgeted max query latency %v exceeds %v (median %v, sync max %v) — reorganization cliff is back",
			max, limit, med, syncMax)
	}
}

// TestBackgroundReorgStress hammers background-reorg indexes from many
// goroutines; run under -race it checks the drainer's locking discipline,
// and the final invariant checks prove maintenance never corrupts the
// structures it rebuilds.
func TestBackgroundReorgStress(t *testing.T) {
	t.Run("adaptive", func(t *testing.T) {
		ix, err := NewAdaptive(4, WithReorgEvery(20), WithBackgroundReorg(), WithReorgBudget(8, 512))
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		stressEngine(t, ix, 20000)
		if err := ix.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		ix.Reorganize() // drain whatever Close left pending
		if err := ix.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("sharded", func(t *testing.T) {
		ix, err := NewSharded(4, WithShards(4), WithReorgEvery(20), WithBackgroundReorg(), WithReorgBudget(8, 512))
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		stressEngine(t, ix, 40000)
		if err := ix.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		ix.Reorganize()
		if err := ix.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// stressEngine runs concurrent searches, counts, inserts and deletes against
// ix while its background drainers work.
func stressEngine(t *testing.T, ix interface {
	Index
	Reorganize()
}, baseID uint32) {
	t.Helper()
	reorgHeavyLoad(t, ix, 5000, 7)
	const (
		workers = 4
		rounds  = 300
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 101))
			dims := ix.Dims()
			q := NewRect(dims)
			r := NewRect(dims)
			id := baseID + uint32(w)*1000
			var buf []uint32
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0, 1:
					hotQuery(q, rng.Intn(10))
					ids, err := ix.SearchIDsAppend(buf[:0], q, Intersects)
					if err != nil {
						errs <- err
						return
					}
					buf = ids
				case 2:
					for d := 0; d < dims; d++ {
						lo := rng.Float32() * 0.9
						r.Min[d], r.Max[d] = lo, lo+0.05
					}
					if err := ix.Insert(id, r); err != nil {
						errs <- err
						return
					}
					id++
				case 3:
					if id > baseID+uint32(w)*1000 {
						ix.Delete(id - 1)
						id--
					}
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
