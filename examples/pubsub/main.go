// Publish/subscribe over the public API: the paper's motivating SDI scenario
// (§1). Apartment-listing subscriptions are multidimensional extended
// objects (one dimension per attribute, values normalized into [0,1]);
// listing events are points matched with point-enclosing queries, which the
// paper identifies as the best case for the adaptive index.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"accluster"
)

// The attribute schema: distance [0,100] miles, price [0,5000] $,
// rooms [1,10], baths [1,5].
var attrMin = []float32{0, 0, 1, 1}
var attrMax = []float32{100, 5000, 10, 5}

// norm maps native attribute values into the unit domain.
func norm(d int, v float32) float32 { return (v - attrMin[d]) / (attrMax[d] - attrMin[d]) }

func main() {
	ix, err := accluster.NewAdaptive(4, accluster.WithReorgEvery(100))
	if err != nil {
		log.Fatal(err)
	}

	// The paper's example subscription: "apartments within 30 miles, rent
	// 400$-700$, 3 to 5 rooms, 2 baths".
	paperSub := accluster.MustRect(
		[]float32{norm(0, 0), norm(1, 400), norm(2, 3), norm(3, 2)},
		[]float32{norm(0, 30), norm(1, 700), norm(2, 5), norm(3, 2)},
	)
	if err := ix.Insert(0, paperSub); err != nil {
		log.Fatal(err)
	}

	// 200,000 random range subscriptions.
	rng := rand.New(rand.NewSource(7))
	sub := accluster.NewRect(4)
	for id := uint32(1); id <= 200000; id++ {
		for d := 0; d < 4; d++ {
			width := attrMax[d] - attrMin[d]
			lo := attrMin[d] + rng.Float32()*width*0.8
			hi := lo + rng.Float32()*(attrMax[d]-lo)
			sub.Min[d], sub.Max[d] = norm(d, lo), norm(d, hi)
		}
		if err := ix.Insert(id, sub); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("subscription database: %d subscriptions\n", ix.Len())

	// The paper's example event: a concrete apartment 12 miles away,
	// 550$, 4 rooms, 2 baths.
	event := accluster.Point([]float32{norm(0, 12), norm(1, 550), norm(2, 4), norm(3, 2)})
	ids, err := ix.SearchIDs(event, accluster.Encloses)
	if err != nil {
		log.Fatal(err)
	}
	hit := false
	for _, id := range ids {
		if id == 0 {
			hit = true
		}
	}
	fmt.Printf("event (12mi, $550, 4 rooms, 2 baths) notifies %d subscribers; paper's subscription matched: %v\n",
		len(ids), hit)

	// High-rate event stream: each event is a point-enclosing query; the
	// index clusters the subscriptions to keep notification latency low.
	for i := 0; i < 2000; i++ {
		p := accluster.Point([]float32{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()})
		if _, err := ix.Count(p, accluster.Encloses); err != nil {
			log.Fatal(err)
		}
	}
	st := ix.Stats()
	fmt.Printf("\nafter 2000 events: %d clusters, %.1f%% of subscriptions verified per event\n",
		ix.Clusters(), 100*st.VerifiedFraction())
	fmt.Printf("modeled matching latency: %.3f ms/event in memory (sequential scan would verify 100%%)\n",
		st.ModeledMSPerQuery(accluster.MemoryScenario()))
}
