// Quickstart: build an adaptive clustering index, run the three spatial
// selections of the paper (intersection, containment, enclosure) and watch
// the index adapt its clustering to the query load.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"accluster"
)

func main() {
	const dims = 8

	// The adaptive index needs only the dimensionality; options tune the
	// cost scenario and the reorganization cadence.
	ix, err := accluster.NewAdaptive(dims, accluster.WithReorgEvery(100))
	if err != nil {
		log.Fatal(err)
	}

	// Insert 50,000 random extended objects (hyper-rectangles in [0,1]^8).
	rng := rand.New(rand.NewSource(42))
	r := accluster.NewRect(dims)
	for id := uint32(0); id < 50000; id++ {
		for d := 0; d < dims; d++ {
			size := rng.Float32() * 0.2
			lo := rng.Float32() * (1 - size)
			r.Min[d], r.Max[d] = lo, lo+size
		}
		if err := ix.Insert(id, r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d objects in %d dimensions\n", ix.Len(), ix.Dims())

	// A query rectangle around the center of the space.
	q := accluster.NewRect(dims)
	for d := 0; d < dims; d++ {
		q.Min[d], q.Max[d] = 0.45, 0.65
	}

	// The three relations of the paper.
	for _, rel := range []accluster.Relation{
		accluster.Intersects, accluster.ContainedBy, accluster.Encloses,
	} {
		n, err := ix.Count(q, rel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13v -> %6d objects\n", rel, n)
	}

	// Point-enclosing: which objects cover this point?
	p := accluster.Point([]float32{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5})
	n, err := ix.Count(p, accluster.Encloses)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point-enclosing -> %6d objects\n", n)

	// Drive the adaptation: repeated queries trigger cost-based
	// reorganization every 100 queries.
	for i := 0; i < 1000; i++ {
		for d := 0; d < dims; d++ {
			c := rng.Float32()
			q.Min[d], q.Max[d] = c*0.9, c*0.9+0.1
		}
		if _, err := ix.Count(q, accluster.Intersects); err != nil {
			log.Fatal(err)
		}
	}
	st := ix.Stats()
	fmt.Printf("\nafter 1000 queries: %d clusters (%d reorganizations, %d splits, %d merges)\n",
		ix.Clusters(), ix.ReorgRounds(), ix.Splits(), ix.Merges())
	fmt.Printf("avg %.1f%% of clusters explored, %.1f%% of objects verified per query\n",
		100*st.ExploredFraction(), 100*st.VerifiedFraction())
	fmt.Printf("modeled per-query time: %.3f ms in memory, %.1f ms on disk\n",
		st.ModeledMSPerQuery(accluster.MemoryScenario()),
		st.ModeledMSPerQuery(accluster.DiskScenario()))
}
