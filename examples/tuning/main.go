// Cost-model tuning and adaptivity: the same data clustered under the
// in-memory and the disk scenario (the disk's 15 ms seek makes fine clusters
// unprofitable, §5), adaptation to a query-distribution shift (clusters that
// stop paying for themselves are merged back, §3.4), and the reorganization
// scheduler knobs — budgeted incremental steps versus the synchronous full
// pass, and the opt-in background drainer.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"accluster"
)

const dims = 10

func load(ix accluster.Index, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	r := accluster.NewRect(dims)
	for id := uint32(0); id < uint32(n); id++ {
		for d := 0; d < dims; d++ {
			size := rng.Float32() * 0.25
			lo := rng.Float32() * (1 - size)
			r.Min[d], r.Max[d] = lo, lo+size
		}
		if err := ix.Insert(id, r); err != nil {
			return err
		}
	}
	return nil
}

// corner generates queries focused on a hyper-corner of the space.
func corner(rng *rand.Rand, q accluster.Rect, base float32) {
	for d := 0; d < dims; d++ {
		c := base + rng.Float32()*0.15
		q.Min[d], q.Max[d] = c, c+0.05
	}
}

func main() {
	const n = 40000

	// Part 1: scenario comparison. Identical data and queries; only the
	// cost parameters differ.
	fmt.Println("=== storage scenario drives cluster granularity ===")
	for _, sc := range []accluster.Scenario{accluster.MemoryScenario(), accluster.DiskScenario()} {
		ix, err := accluster.NewAdaptive(dims, accluster.WithScenario(sc), accluster.WithReorgEvery(100))
		if err != nil {
			log.Fatal(err)
		}
		if err := load(ix, n, 1); err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		q := accluster.NewRect(dims)
		for i := 0; i < 1200; i++ {
			corner(rng, q, rng.Float32()*0.8)
			if _, err := ix.Count(q, accluster.Intersects); err != nil {
				log.Fatal(err)
			}
		}
		st := ix.Stats()
		fmt.Printf("%-7s scenario: %5d clusters, %5.1f%% objects verified, modeled %.3f ms (mem) / %.1f ms (disk)\n",
			sc.Name, ix.Clusters(), 100*st.VerifiedFraction(),
			st.ModeledMSPerQuery(accluster.MemoryScenario()),
			st.ModeledMSPerQuery(accluster.DiskScenario()))
	}

	// Part 2: adaptation to a query-distribution shift.
	fmt.Println("\n=== adaptation to query distribution shift ===")
	ix, err := accluster.NewAdaptive(dims, accluster.WithReorgEvery(100), accluster.WithDecay(0.3))
	if err != nil {
		log.Fatal(err)
	}
	if err := load(ix, n, 3); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	q := accluster.NewRect(dims)

	// Phase A: queries concentrated near the origin corner.
	for i := 0; i < 1500; i++ {
		corner(rng, q, 0)
		if _, err := ix.Count(q, accluster.Intersects); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("phase A (corner queries): %d clusters, %d splits, %d merges\n",
		ix.Clusters(), ix.Splits(), ix.Merges())

	// Phase B: the workload moves to the opposite corner; statistics
	// decay lets the index unwind now-useless clusters and build new
	// ones where the queries are.
	splitsA, mergesA := ix.Splits(), ix.Merges()
	for i := 0; i < 3000; i++ {
		corner(rng, q, 0.8)
		if _, err := ix.Count(q, accluster.Intersects); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("phase B (shifted queries): %d clusters, +%d splits, +%d merges\n",
		ix.Clusters(), ix.Splits()-splitsA, ix.Merges()-mergesA)
	fmt.Println("merges > 0 shows clusters from phase A being folded back (§3.4 merging operation)")

	// Part 3: the reorganization scheduler. Reorganization normally rides
	// the query path; the knobs decide how much of it one query may carry.
	// WithReorgBudget(Unbudgeted, Unbudgeted) restores the synchronous
	// full pass — every ReorgEvery-th query absorbs the whole merge/split
	// round — while the default budgets chunk the same work into bounded
	// steps, flattening the worst query at the same throughput.
	fmt.Println("\n=== reorganization budgets flatten the latency tail ===")
	for _, mode := range []struct {
		name string
		opts []accluster.Option
	}{
		{"synchronous", []accluster.Option{accluster.WithReorgBudget(accluster.Unbudgeted, accluster.Unbudgeted)}},
		{"budgeted", nil},
	} {
		ix, err := accluster.NewAdaptive(dims, append([]accluster.Option{accluster.WithReorgEvery(100)}, mode.opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		if err := load(ix, n, 5); err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		q := accluster.NewRect(dims)
		lat := make([]time.Duration, 0, 1500)
		for i := 0; i < 1500; i++ {
			// The hot corner shifts every reorganization period, so
			// every round has real merge/split work to do.
			corner(rng, q, float32((i/100)%4)*0.2)
			start := time.Now()
			if _, err := ix.Count(q, accluster.Intersects); err != nil {
				log.Fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Printf("%-11s reorg: median %8v  p99 %8v  worst query %8v  (%d rounds)\n",
			mode.name, lat[len(lat)/2].Round(time.Microsecond),
			lat[len(lat)*99/100].Round(time.Microsecond),
			lat[len(lat)-1].Round(time.Microsecond), ix.ReorgRounds())
	}

	// Part 4: the background drainer takes even the bounded steps off the
	// query path — queries only schedule revisits, a per-index (or
	// per-shard, for NewSharded) goroutine drains them, holding the lock
	// one bounded step at a time. Indexes with a drainer own a goroutine:
	// Close releases it.
	fmt.Println("\n=== background reorganization (WithBackgroundReorg) ===")
	bg, err := accluster.NewAdaptive(dims, accluster.WithReorgEvery(100), accluster.WithBackgroundReorg())
	if err != nil {
		log.Fatal(err)
	}
	defer bg.Close()
	if err := load(bg, n, 7); err != nil {
		log.Fatal(err)
	}
	rng = rand.New(rand.NewSource(8))
	q = accluster.NewRect(dims)
	for i := 0; i < 1500; i++ {
		corner(rng, q, float32((i/100)%4)*0.2)
		if _, err := bg.Count(q, accluster.Intersects); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let the drainer finish the tail
	fmt.Printf("background mode: %d clusters, %d splits, %d merges — maintenance ran off the query path\n",
		bg.Clusters(), bg.Splits(), bg.Merges())
}
