// Cost-model tuning and adaptivity: the same data clustered under the
// in-memory and the disk scenario (the disk's 15 ms seek makes fine clusters
// unprofitable, §5), and adaptation to a query-distribution shift (clusters
// that stop paying for themselves are merged back, §3.4).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"accluster"
)

const dims = 10

func load(ix accluster.Index, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	r := accluster.NewRect(dims)
	for id := uint32(0); id < uint32(n); id++ {
		for d := 0; d < dims; d++ {
			size := rng.Float32() * 0.25
			lo := rng.Float32() * (1 - size)
			r.Min[d], r.Max[d] = lo, lo+size
		}
		if err := ix.Insert(id, r); err != nil {
			return err
		}
	}
	return nil
}

// corner generates queries focused on a hyper-corner of the space.
func corner(rng *rand.Rand, q accluster.Rect, base float32) {
	for d := 0; d < dims; d++ {
		c := base + rng.Float32()*0.15
		q.Min[d], q.Max[d] = c, c+0.05
	}
}

func main() {
	const n = 40000

	// Part 1: scenario comparison. Identical data and queries; only the
	// cost parameters differ.
	fmt.Println("=== storage scenario drives cluster granularity ===")
	for _, sc := range []accluster.Scenario{accluster.MemoryScenario(), accluster.DiskScenario()} {
		ix, err := accluster.NewAdaptive(dims, accluster.WithScenario(sc), accluster.WithReorgEvery(100))
		if err != nil {
			log.Fatal(err)
		}
		if err := load(ix, n, 1); err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		q := accluster.NewRect(dims)
		for i := 0; i < 1200; i++ {
			corner(rng, q, rng.Float32()*0.8)
			if _, err := ix.Count(q, accluster.Intersects); err != nil {
				log.Fatal(err)
			}
		}
		st := ix.Stats()
		fmt.Printf("%-7s scenario: %5d clusters, %5.1f%% objects verified, modeled %.3f ms (mem) / %.1f ms (disk)\n",
			sc.Name, ix.Clusters(), 100*st.VerifiedFraction(),
			st.ModeledMSPerQuery(accluster.MemoryScenario()),
			st.ModeledMSPerQuery(accluster.DiskScenario()))
	}

	// Part 2: adaptation to a query-distribution shift.
	fmt.Println("\n=== adaptation to query distribution shift ===")
	ix, err := accluster.NewAdaptive(dims, accluster.WithReorgEvery(100), accluster.WithDecay(0.3))
	if err != nil {
		log.Fatal(err)
	}
	if err := load(ix, n, 3); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	q := accluster.NewRect(dims)

	// Phase A: queries concentrated near the origin corner.
	for i := 0; i < 1500; i++ {
		corner(rng, q, 0)
		if _, err := ix.Count(q, accluster.Intersects); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("phase A (corner queries): %d clusters, %d splits, %d merges\n",
		ix.Clusters(), ix.Splits(), ix.Merges())

	// Phase B: the workload moves to the opposite corner; statistics
	// decay lets the index unwind now-useless clusters and build new
	// ones where the queries are.
	splitsA, mergesA := ix.Splits(), ix.Merges()
	for i := 0; i < 3000; i++ {
		corner(rng, q, 0.8)
		if _, err := ix.Count(q, accluster.Intersects); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("phase B (shifted queries): %d clusters, +%d splits, +%d merges\n",
		ix.Clusters(), ix.Splits()-splitsA, ix.Merges()-mergesA)
	fmt.Println("merges > 0 shows clusters from phase A being folded back (§3.4 merging operation)")
}
