// Sharded: build the parallel partitioned adaptive index, bulk-load it with
// a pre-bucketed batch, hammer it with concurrent queries from all cores,
// and round-trip it through the multi-segment directory checkpoint.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"accluster"
)

func main() {
	const dims = 8
	const objects = 50000

	// Shard count defaults to the next power of two >= GOMAXPROCS.
	ix, err := accluster.NewSharded(dims, accluster.WithReorgEvery(100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharded engine: %d shards over %d dims\n", ix.Shards(), ix.Dims())

	// Bulk load: the batch is pre-bucketed by owning shard and every shard
	// ingests its bucket under a single lock acquisition, in parallel.
	rng := rand.New(rand.NewSource(42))
	ids := make([]uint32, objects)
	rects := make([]accluster.Rect, objects)
	for k := range ids {
		ids[k] = uint32(k)
		r := accluster.NewRect(dims)
		for d := 0; d < dims; d++ {
			size := rng.Float32() * 0.2
			lo := rng.Float32() * (1 - size)
			r.Min[d], r.Max[d] = lo, lo+size
		}
		rects[k] = r
	}
	start := time.Now()
	if err := ix.InsertBatch(ids, rects); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk-loaded %d objects in %v\n", ix.Len(), time.Since(start).Round(time.Millisecond))

	// Concurrent query load: every worker issues intersection queries; the
	// shards answer in parallel instead of queueing on one mutex.
	workers := runtime.GOMAXPROCS(0)
	const queriesPerWorker = 500
	var wg sync.WaitGroup
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			q := accluster.NewRect(dims)
			for i := 0; i < queriesPerWorker; i++ {
				for d := 0; d < dims; d++ {
					size := 0.1 + rng.Float32()*0.3
					lo := rng.Float32() * (1 - size)
					q.Min[d], q.Max[d] = lo, lo+size
				}
				if _, err := ix.Count(q, accluster.Intersects); err != nil {
					log.Fatal(err)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := workers * queriesPerWorker
	fmt.Printf("%d queries from %d goroutines: %.0f queries/s\n",
		total, workers, float64(total)/elapsed.Seconds())

	st := ix.Stats()
	fmt.Printf("aggregated: %s\n", st)
	for i, ss := range ix.ShardStats() {
		fmt.Printf("  shard %d: %d objects, %d clusters\n", i, ss.Objects, ss.Partitions)
	}

	// Checkpoint all shards into one directory and recover.
	dir := filepath.Join(os.TempDir(), "accluster-sharded-example")
	defer os.RemoveAll(dir)
	if err := ix.SaveDir(dir); err != nil {
		log.Fatal(err)
	}
	re, err := accluster.OpenSharded(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d objects across %d shards from %s\n", re.Len(), re.Shards(), dir)
}
