// Compare: the paper's evaluation in miniature, through the public API —
// the same workload loaded into Sequential Scan, the R*-tree, the X-tree and
// the Adaptive Clustering index, with per-method data-access statistics and
// modeled execution times under both storage scenarios.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"accluster"
)

const (
	dims    = 16
	objects = 30000
	queries = 300
	warmup  = 600
)

func randomRect(rng *rand.Rand, maxSize float32) accluster.Rect {
	r := accluster.NewRect(dims)
	for d := 0; d < dims; d++ {
		size := rng.Float32() * maxSize
		lo := rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
	return r
}

func main() {
	methods := []struct {
		name string
		ix   accluster.Index
	}{}
	ss, err := accluster.NewSeqScan(dims)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := accluster.NewRStar(dims)
	if err != nil {
		log.Fatal(err)
	}
	xt, err := accluster.NewXTree(dims)
	if err != nil {
		log.Fatal(err)
	}
	ac, err := accluster.NewAdaptive(dims)
	if err != nil {
		log.Fatal(err)
	}
	methods = append(methods,
		struct {
			name string
			ix   accluster.Index
		}{"SeqScan", ss},
		struct {
			name string
			ix   accluster.Index
		}{"R*-tree", rs},
		struct {
			name string
			ix   accluster.Index
		}{"X-tree", xt},
		struct {
			name string
			ix   accluster.Index
		}{"Adaptive", ac},
	)

	// Identical object stream for every method.
	for _, m := range methods {
		rng := rand.New(rand.NewSource(1))
		for id := uint32(0); id < objects; id++ {
			if err := m.ix.Insert(id, randomRect(rng, 1)); err != nil {
				log.Fatalf("%s: %v", m.name, err)
			}
		}
	}
	fmt.Printf("loaded %d objects x %d dims into %d methods\n\n", objects, dims, len(methods))

	// Warm the adaptive clustering, then measure everyone on the same
	// query stream.
	qrng := rand.New(rand.NewSource(2))
	warm := make([]accluster.Rect, warmup)
	for i := range warm {
		warm[i] = randomRect(qrng, 0.35)
	}
	meas := make([]accluster.Rect, queries)
	for i := range meas {
		meas[i] = randomRect(qrng, 0.35)
	}
	for _, q := range warm {
		if _, err := ac.Count(q, accluster.Intersects); err != nil {
			log.Fatal(err)
		}
	}
	for _, m := range methods {
		m.ix.ResetStats()
		for _, q := range meas {
			if _, err := m.ix.Count(q, accluster.Intersects); err != nil {
				log.Fatalf("%s: %v", m.name, err)
			}
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tpartitions\texplored%\tverified%\tmem ms/q\tdisk ms/q")
	for _, m := range methods {
		st := m.ix.Stats()
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.3f\t%.1f\n",
			m.name, st.Partitions,
			100*st.ExploredFraction(), 100*st.VerifiedFraction(),
			st.ModeledMSPerQuery(accluster.MemoryScenario()),
			st.ModeledMSPerQuery(accluster.DiskScenario()))
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptive index: %d clusters after %d reorganizations (%d splits, %d merges)\n",
		ac.Clusters(), ac.ReorgRounds(), ac.Splits(), ac.Merges())
	fmt.Println("note: the X-tree typically degenerates to a single supernode on this workload (§2)")
	fmt.Println("note: this adaptive index is tuned for the memory scenario; a disk deployment")
	fmt.Println("      (WithScenario(DiskScenario())) forms ~10-20x fewer clusters to avoid seeks")
}
