// Disk persistence and fail recovery (§6): checkpoint an adaptive index to a
// database file — clusters stored sequentially with reserved slots, a
// checksummed directory in front — then recover it and verify the clustering
// and the answers survived. The second half queries the checkpoint in the
// disk storage scenario (§5.ii) through accluster.OpenDisk: only the
// directory lives in memory, member regions are read on demand through the
// decoded-region cache with seek-coalescing readahead.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"accluster"
)

func main() {
	const dims = 12
	dir, err := os.MkdirTemp("", "accluster-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "spatial.acdb")

	// Build a disk-scenario index: the cost model knows random seeks are
	// expensive (15 ms) so it forms fewer, larger clusters than in
	// memory.
	ix, err := accluster.NewAdaptive(dims,
		accluster.WithScenario(accluster.DiskScenario()),
		accluster.WithReorgEvery(50))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	r := accluster.NewRect(dims)
	for id := uint32(0); id < 30000; id++ {
		for d := 0; d < dims; d++ {
			size := rng.Float32() * 0.3
			lo := rng.Float32() * (1 - size)
			r.Min[d], r.Max[d] = lo, lo+size
		}
		if err := ix.Insert(id, r); err != nil {
			log.Fatal(err)
		}
	}
	// Converge the clustering under a query load.
	q := accluster.NewRect(dims)
	for i := 0; i < 600; i++ {
		for d := 0; d < dims; d++ {
			c := rng.Float32() * 0.8
			q.Min[d], q.Max[d] = c, c+0.2
		}
		if _, err := ix.Count(q, accluster.Intersects); err != nil {
			log.Fatal(err)
		}
	}
	for d := 0; d < dims; d++ {
		q.Min[d], q.Max[d] = 0.4, 0.6
	}
	before, err := ix.SearchIDs(q, accluster.Intersects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before checkpoint: %d objects, %d clusters, probe query -> %d results\n",
		ix.Len(), ix.Clusters(), len(before))

	// Checkpoint.
	if err := ix.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed to %s (%d KiB)\n", filepath.Base(path), st.Size()/1024)

	// Crash… and recover.
	recovered, err := accluster.OpenAdaptive(path,
		accluster.WithScenario(accluster.DiskScenario()),
		accluster.WithReorgEvery(50))
	if err != nil {
		log.Fatal(err)
	}
	after, err := recovered.SearchIDs(q, accluster.Intersects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery:    %d objects, %d clusters, probe query -> %d results\n",
		recovered.Len(), recovered.Clusters(), len(after))
	if len(before) != len(after) {
		log.Fatalf("answer sets differ: %d vs %d", len(before), len(after))
	}
	if err := recovered.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered index passes all structural invariants")

	// Statistics are re-gathered after recovery (the paper keeps them
	// optional in the checkpoint): keep querying and the index keeps
	// adapting.
	for i := 0; i < 200; i++ {
		if _, err := recovered.Count(q, accluster.Intersects); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after 200 post-recovery queries: %d clusters (%d reorganizations)\n",
		recovered.Clusters(), recovered.ReorgRounds())

	// Disk storage scenario: query the checkpoint directly from the file.
	// Only the header and directory are loaded; explored regions are read
	// on demand into a fixed-budget cache of decoded columns, and regions
	// adjacent on the device coalesce into single sequential reads.
	dsk, err := accluster.OpenDisk(path,
		accluster.WithDiskCache(8<<20),   // 8 MiB of decoded regions
		accluster.WithReadahead(256<<10)) // bridge gaps up to 256 KiB
	if err != nil {
		log.Fatal(err)
	}
	defer dsk.Close()
	var onDisk []uint32
	for i := 0; i < 50; i++ { // repeated queries: the cache warms up
		if onDisk, err = dsk.SearchIDsAppend(onDisk[:0], q, accluster.Intersects); err != nil {
			log.Fatal(err)
		}
	}
	if len(onDisk) != len(before) {
		log.Fatalf("disk scenario answers differ: %d vs %d", len(onDisk), len(before))
	}
	ds := dsk.Stats()
	cs := dsk.CacheStats()
	fmt.Printf("disk scenario:     probe query -> %d results; %d explorations = %d cache hits + %d misses\n",
		len(onDisk), ds.PartitionsExplored, ds.CacheHits, ds.CacheMisses)
	fmt.Printf("                   %d seeks, %d bytes read, cache %d KiB used / %d regions resident\n",
		ds.Seeks, ds.BytesTransferred, cs.UsedBytes/1024, cs.Entries)
}
