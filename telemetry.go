package accluster

import (
	"fmt"
	"io"

	"accluster/internal/cost"
	"accluster/internal/telemetry"
)

// Telemetry is the engine flight recorder: a sampler goroutine captures
// per-second gauges from every attached engine (plus Go runtime stats) into
// a bounded in-memory ring, and the query paths of attached engines record
// per-query latency histograms. Attach engines with WithTelemetry, or give
// an engine its own private recorder + HTTP endpoint with WithTelemetryAddr.
//
// The memory bound is fixed: the ring holds at most WithTelemetryRing bytes
// (default 1 MiB) of delta-encoded samples — roughly several hours of
// per-second history for a typical gauge set — and evicts the oldest
// samples when full, so the recorder can stay on for the life of the
// process. WriteDump emits the ring in a compact checksummed binary format
// decoded by cmd/acstat; the live endpoint (Serve) additionally exposes
// current gauges and percentiles as JSON and expvar plus net/http/pprof.
type Telemetry struct {
	rec *telemetry.Recorder
	srv *telemetry.Server
}

// NewTelemetry builds a flight recorder shared by any number of engines and
// starts its sampler. Honored options: WithTelemetryRing,
// WithTelemetryInterval, and WithTelemetryAddr (which also starts the HTTP
// endpoint). Call Close when done.
func NewTelemetry(opts ...Option) (*Telemetry, error) {
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.telemetry != nil {
		return nil, fmt.Errorf("accluster: WithTelemetry is for engine constructors, not NewTelemetry")
	}
	t := newTelemetry(o)
	if o.telemetryAddr != "" {
		if _, err := t.Serve(o.telemetryAddr); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// newTelemetry builds and starts a recorder from gathered options.
func newTelemetry(o options) *Telemetry {
	rec := telemetry.New(telemetry.Config{
		RingBytes: o.telemetryRing,
		Interval:  o.telemetryInterval,
	})
	rec.Register(telemetry.RuntimeSource())
	rec.Start()
	return &Telemetry{rec: rec}
}

// Serve starts the live introspection endpoint on addr (":0" picks a free
// port) and returns the bound address. Routes: /telemetry (JSON gauges +
// histogram percentiles), /telemetry/dump (binary ring dump), /debug/vars
// (expvar), /debug/pprof/. Serving twice returns the existing address.
func (t *Telemetry) Serve(addr string) (string, error) {
	if t.srv != nil {
		return t.srv.Addr(), nil
	}
	srv, err := telemetry.Serve(t.rec, addr)
	if err != nil {
		return "", err
	}
	t.srv = srv
	return srv.Addr(), nil
}

// Addr returns the endpoint's bound address ("" when not serving).
func (t *Telemetry) Addr() string {
	if t.srv == nil {
		return ""
	}
	return t.srv.Addr()
}

// WriteDump writes the current ring contents and histogram counters to w in
// the binary dump format (decode with cmd/acstat). The recorder keeps
// running.
func (t *Telemetry) WriteDump(w io.Writer) error { return t.rec.DumpTo(w) }

// Sample captures one gauge row immediately, in addition to the periodic
// sampler; useful for deterministic tests and final pre-dump snapshots.
func (t *Telemetry) Sample() { t.rec.Sample() }

// Close stops the sampler and the HTTP endpoint (if serving). Attached
// engines stay usable; their histogram recording becomes inert overhead of
// one atomic add per query.
func (t *Telemetry) Close() error {
	if t.srv != nil {
		_ = t.srv.Close()
		t.srv = nil
	}
	return t.rec.Close()
}

// resolveTelemetry maps the gathered options to an engine's recorder:
// the shared one from WithTelemetry, a new owned one (serving HTTP) from
// WithTelemetryAddr, or none.
func resolveTelemetry(o options) (t *Telemetry, owned bool, err error) {
	if o.telemetry != nil {
		return o.telemetry, false, nil
	}
	if o.telemetryAddr == "" {
		return nil, false, nil
	}
	t = newTelemetry(o)
	if _, err := t.Serve(o.telemetryAddr); err != nil {
		t.Close()
		return nil, false, err
	}
	return t, true, nil
}

// meterCols is the gauge schema shared by every engine source: the full
// cost.SyncMeter counter set.
var meterCols = []string{
	"queries", "sig_checks", "explorations", "seeks", "objects_verified",
	"bytes_verified", "bytes_transferred", "cache_hits", "cache_misses", "results",
}

func appendMeter(dst []int64, m cost.Meter) []int64 {
	return append(dst, m.Queries, m.SigChecks, m.Explorations, m.Seeks,
		m.ObjectsVerified, m.BytesVerified, m.BytesTransferred,
		m.CacheHits, m.CacheMisses, m.Results)
}

// initTelemetry attaches the adaptive index to the options' recorder:
// a gauge source covering object/cluster counts, reorg queue depth, the
// pending-stats backlog, the epoch and the full meter, plus the per-query
// latency histogram on the search paths.
func (a *Adaptive) initTelemetry(o options) error {
	t, owned, err := resolveTelemetry(o)
	if err != nil || t == nil {
		return err
	}
	a.tel, a.ownTel = t, owned
	cols := append([]string{"objects", "clusters", "reorg_backlog", "stats_backlog",
		"epoch", "reorg_rounds", "splits", "merges"}, meterCols...)
	name := t.rec.Register(telemetry.Source{
		Name: "adaptive",
		Cols: cols,
		Read: func(dst []int64) []int64 {
			a.mu.RLock()
			dst = append(dst, int64(a.ix.Len()), int64(a.ix.Clusters()),
				int64(a.ix.ReorgBacklog()), int64(a.ix.StatsBacklog()),
				a.ix.Epoch(), a.ix.ReorgRounds(), a.ix.Splits(), a.ix.Merges())
			a.mu.RUnlock()
			return appendMeter(dst, a.ix.Meter())
		},
	})
	a.qhist = t.rec.Histogram(name + ".search_ns")
	return nil
}

// initTelemetry attaches the sharded index: engine-wide aggregates plus
// per-shard object/cluster counts and reorg backlogs (the shard count is
// fixed for the life of the engine, so the column schema is static).
func (s *Sharded) initTelemetry(o options) error {
	t, owned, err := resolveTelemetry(o)
	if err != nil || t == nil {
		return err
	}
	s.tel, s.ownTel = t, owned
	cols := append([]string{"objects", "clusters", "reorg_backlog", "stats_backlog", "epoch",
		"generation", "quarantined"}, meterCols...)
	for i := 0; i < s.e.Shards(); i++ {
		cols = append(cols,
			fmt.Sprintf("shard%d_objects", i),
			fmt.Sprintf("shard%d_clusters", i),
			fmt.Sprintf("shard%d_reorg_backlog", i))
	}
	name := t.rec.Register(telemetry.Source{
		Name: "sharded",
		Cols: cols,
		Read: func(dst []int64) []int64 {
			infos := s.e.ShardInfos()
			var objects, clusters, reorgQ, statsQ int64
			var epoch int64
			for _, in := range infos {
				objects += int64(in.Objects)
				clusters += int64(in.Clusters)
				reorgQ += int64(in.ReorgBacklog)
				statsQ += int64(in.StatsBacklog)
				if in.Epoch > epoch {
					epoch = in.Epoch
				}
			}
			dst = append(dst, objects, clusters, reorgQ, statsQ, epoch,
				int64(s.e.Generation()), int64(s.e.QuarantinedCount()))
			dst = appendMeter(dst, s.e.Meter())
			for _, in := range infos {
				dst = append(dst, int64(in.Objects), int64(in.Clusters), int64(in.ReorgBacklog))
			}
			return dst
		},
	})
	s.qhist = t.rec.Histogram(name + ".search_ns")
	return nil
}

// initTelemetry attaches the disk query engine: the meter plus the decoded-
// region cache gauges (hits/misses are part of the meter; residency,
// eviction and pinning figures come from the cache itself).
func (d *Disk) initTelemetry(o options) error {
	t, owned, err := resolveTelemetry(o)
	if err != nil || t == nil {
		return err
	}
	d.tel, d.ownTel = t, owned
	cols := append(append([]string{}, meterCols...),
		"cache_entries", "cache_pinned", "cache_pinned_bytes",
		"cache_used_bytes", "cache_budget_bytes", "cache_evictions", "cache_rejected")
	name := t.rec.Register(telemetry.Source{
		Name: "disk",
		Cols: cols,
		Read: func(dst []int64) []int64 {
			dst = appendMeter(dst, d.eng.Meter())
			cs := d.eng.CacheStats()
			return append(dst, int64(cs.Entries), int64(cs.Pinned), cs.PinnedBytes,
				cs.UsedBytes, cs.BudgetBytes, cs.Evictions, cs.Rejected)
		},
	})
	d.qhist = t.rec.Histogram(name + ".search_ns")
	return nil
}

// TelemetryAddr returns the bound address of the engine's live
// introspection endpoint ("" when the engine was not built with
// WithTelemetryAddr); useful with ":0".
func (a *Adaptive) TelemetryAddr() string {
	if a.tel == nil {
		return ""
	}
	return a.tel.Addr()
}

// TelemetryAddr returns the bound address of the engine's live
// introspection endpoint ("" without WithTelemetryAddr).
func (s *Sharded) TelemetryAddr() string {
	if s.tel == nil {
		return ""
	}
	return s.tel.Addr()
}

// TelemetryAddr returns the bound address of the engine's live
// introspection endpoint ("" without WithTelemetryAddr).
func (d *Disk) TelemetryAddr() string {
	if d.tel == nil {
		return ""
	}
	return d.tel.Addr()
}
