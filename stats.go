package accluster

import (
	"fmt"

	"accluster/internal/cost"
	"accluster/internal/geom"
)

// objectBytes returns the storage footprint of one object (8·dims+4 bytes).
func objectBytes(dims int) int { return geom.ObjectBytes(dims) }

// Stats is a snapshot of an index's operation counters. The counters are
// storage neutral; ModeledMSPerQuery converts them into expected execution
// time under a given scenario, which is how the benchmark harness reports
// the paper's in-memory and disk-based charts from the same run.
type Stats struct {
	// Objects is the number of stored objects.
	Objects int
	// Dims is the data space dimensionality.
	Dims int
	// Partitions is the number of storage units: materialized clusters
	// for the adaptive index, tree nodes for the R*-tree, 1 for
	// sequential scan.
	Partitions int
	// Queries is the number of executed selections.
	Queries int64
	// PartitionsChecked counts signature (or node entry) checks.
	PartitionsChecked int64
	// PartitionsExplored counts explored clusters / visited nodes.
	PartitionsExplored int64
	// Seeks counts random disk accesses in the disk scenario.
	Seeks int64
	// ObjectsVerified counts objects checked against the selection.
	ObjectsVerified int64
	// BytesVerified counts coordinate bytes actually inspected during
	// verification: early-exit aware on the scalar engines, per-column
	// survivor bytes on the columnar adaptive engine (columns proven by
	// the cluster signature cost — and count — zero, so this can be far
	// below ObjectsVerified·8·Dims).
	BytesVerified int64
	// BytesTransferred counts bytes read from disk in the disk scenario.
	BytesTransferred int64
	// CacheHits counts explorations served from the decoded-region cache
	// of a Disk engine: verified in memory, no Seeks and no
	// BytesTransferred charged (ObjectsVerified still counts). Zero on
	// engines without a region cache.
	CacheHits int64
	// CacheMisses counts explorations that read their region from the
	// device. Zero on engines without a region cache.
	CacheMisses int64
	// Results counts emitted answers.
	Results int64
	// QuarantinedPartitions counts shards quarantined by a salvage open
	// (WithSalvage): partitions whose checkpoint segment was damaged and
	// which therefore started empty. Zero on healthy engines and on
	// engines without shards. In a per-shard snapshot (ShardStats) the
	// field is 1 on the quarantined shard itself.
	QuarantinedPartitions int
}

// meter reconstructs the internal counter view.
func (s Stats) meter() cost.Meter {
	return cost.Meter{
		Queries:          s.Queries,
		SigChecks:        s.PartitionsChecked,
		Explorations:     s.PartitionsExplored,
		Seeks:            s.Seeks,
		ObjectsVerified:  s.ObjectsVerified,
		BytesVerified:    s.BytesVerified,
		BytesTransferred: s.BytesTransferred,
		CacheHits:        s.CacheHits,
		CacheMisses:      s.CacheMisses,
		Results:          s.Results,
	}
}

// ModeledMSPerQuery returns the average modeled execution time per query (in
// milliseconds) under the given scenario's cost parameters, using the
// paper's cost-model accounting: every verified object is charged the full
// per-object verification cost C (eq. 1). Early-exit verification — a real
// effect visible in wall time and in BytesVerified — is deliberately not
// modeled, matching the model the adaptive index optimizes; this is the
// accounting under which the adaptive index never loses to sequential scan.
func (s Stats) ModeledMSPerQuery(sc Scenario) float64 {
	return s.meter().ModelMSPerQuery(sc, objectBytes(s.Dims))
}

// ExploredFraction returns the average fraction of partitions explored per
// query (the "Clusters Explored %" column of the paper's tables).
func (s Stats) ExploredFraction() float64 {
	if s.Queries == 0 || s.Partitions == 0 {
		return 0
	}
	return float64(s.PartitionsExplored) / float64(s.Queries) / float64(s.Partitions)
}

// VerifiedFraction returns the average fraction of objects verified per
// query (the "Objects %" column of the paper's tables).
func (s Stats) VerifiedFraction() float64 {
	if s.Queries == 0 || s.Objects == 0 {
		return 0
	}
	return float64(s.ObjectsVerified) / float64(s.Queries) / float64(s.Objects)
}

// String summarizes the snapshot. Engines with a region cache (Disk) append
// the cache hit/miss split of explorations.
func (s Stats) String() string {
	base := fmt.Sprintf("objects=%d partitions=%d queries=%d explored=%.1f%% verified=%.1f%%",
		s.Objects, s.Partitions, s.Queries, 100*s.ExploredFraction(), 100*s.VerifiedFraction())
	if s.CacheHits+s.CacheMisses > 0 {
		base += fmt.Sprintf(" cache=%d/%d hits", s.CacheHits, s.CacheMisses+s.CacheHits)
	}
	if s.QuarantinedPartitions > 0 {
		base += fmt.Sprintf(" QUARANTINED=%d", s.QuarantinedPartitions)
	}
	return base
}
