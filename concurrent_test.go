package accluster

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// engines under the concurrent-read contract: shared-lock searches,
// exclusive mutations.
func concurrentEngines(t *testing.T, dims int, opts ...Option) map[string]Index {
	t.Helper()
	ac, err := NewAdaptive(dims, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(dims, append([]Option{WithShards(4)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ac.Close(); sh.Close() })
	return map[string]Index{"adaptive": ac, "sharded": sh}
}

// TestConcurrentReadersStress hammers both engines with reader goroutines
// racing concurrent inserts, deletes and background reorganization — the
// interleavings the shared-lock query path must survive. Run under -race in
// CI (the dedicated multi-reader job repeats it).
func TestConcurrentReadersStress(t *testing.T) {
	const dims = 4
	for name, ix := range concurrentEngines(t, dims, WithReorgEvery(25), WithBackgroundReorg()) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(61))
			for id := uint32(0); id < 4000; id++ {
				if err := ix.Insert(id, randomRect(rng, dims, 0.3)); err != nil {
					t.Fatal(err)
				}
			}
			var (
				readers, writers sync.WaitGroup
				stop             atomic.Bool
			)
			// Writers: churn inserts/updates/deletes in a disjoint id range
			// until the readers finish.
			for w := 0; w < 2; w++ {
				writers.Add(1)
				go func(w int) {
					defer writers.Done()
					rng := rand.New(rand.NewSource(int64(100 + w)))
					base := uint32(10000 + w*10000)
					for i := uint32(0); !stop.Load(); i++ {
						id := base + i%500
						switch i % 3 {
						case 0:
							_ = ix.Insert(id, randomRect(rng, dims, 0.2))
						case 1:
							_ = ix.Update(id, randomRect(rng, dims, 0.2))
						default:
							ix.Delete(id)
						}
					}
				}(w)
			}
			// Readers: searches, counts and gets racing the writers.
			for r := 0; r < 6; r++ {
				readers.Add(1)
				go func(r int) {
					defer readers.Done()
					rng := rand.New(rand.NewSource(int64(200 + r)))
					var buf []uint32
					for i := 0; i < 400; i++ {
						q := randomRect(rng, dims, 0.3)
						switch i % 3 {
						case 0:
							out, err := ix.SearchIDsAppend(buf[:0], q, Intersects)
							if err != nil {
								t.Errorf("reader %d: %v", r, err)
								return
							}
							buf = out
						case 1:
							if _, err := ix.Count(q, ContainedBy); err != nil {
								t.Errorf("reader %d: %v", r, err)
								return
							}
						default:
							ix.Get(uint32(rng.Intn(4000)))
						}
					}
				}(r)
			}
			readers.Wait()
			stop.Store(true)
			writers.Wait()
			type checker interface{ CheckInvariants() error }
			if err := ix.(checker).CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentDeterminism pins exactness of the shared-lock query path:
// with the database frozen, the same query set run by 8 goroutines must
// return exactly the ID sets the serial run returns, on both engines.
func TestConcurrentDeterminism(t *testing.T) {
	const dims = 5
	for name, ix := range concurrentEngines(t, dims, WithReorgEvery(50)) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(71))
			for id := uint32(0); id < 3000; id++ {
				if err := ix.Insert(id, randomRect(rng, dims, 0.3)); err != nil {
					t.Fatal(err)
				}
			}
			// Converge a clustering so searches traverse real structure.
			for i := 0; i < 300; i++ {
				if _, err := ix.Count(randomRect(rng, dims, 0.25), Intersects); err != nil {
					t.Fatal(err)
				}
			}
			qs := make([]Rect, 48)
			rels := make([]Relation, len(qs))
			want := make([][]uint32, len(qs))
			for i := range qs {
				qs[i] = randomRect(rng, dims, 0.35)
				rels[i] = Relation(i % 3)
				ids, err := ix.SearchIDs(qs[i], rels[i])
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
				want[i] = ids
			}
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := range qs {
						got, err := ix.SearchIDs(qs[i], rels[i])
						if err != nil {
							t.Errorf("worker %d query %d: %v", w, i, err)
							return
						}
						sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
						if len(got) != len(want[i]) {
							t.Errorf("worker %d query %d: %d results, want %d", w, i, len(got), len(want[i]))
							return
						}
						for k := range got {
							if got[k] != want[i][k] {
								t.Errorf("worker %d query %d: mismatch at %d", w, i, k)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
