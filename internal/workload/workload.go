// Package workload generates the experimental workloads of the paper (§7):
// uniformly distributed hyper-rectangles, the skewed distribution of the
// dimensionality experiment (a random quarter of the dimensions twice as
// selective per object), query rectangles with calibrated selectivity, and
// point events for point-enclosing queries. All generators are
// deterministically seeded.
package workload

import (
	"fmt"
	"math/rand"

	"accluster/internal/geom"
)

// ObjectSpec describes a database object distribution.
type ObjectSpec struct {
	// Dims is the data space dimensionality.
	Dims int
	// MaxSize bounds the per-dimension interval size: sizes are uniform
	// in [MinSize, MaxSize] and positions uniform in the remaining domain
	// ("sizes and positions randomly distributed", §7.2). Default 1.
	MaxSize float32
	// MinSize bounds interval sizes from below (default 0). Setting it
	// above 0 models genuinely extended objects — range subscriptions
	// with meaningful widths — where grouping by minimum bounding cannot
	// descend because no object fits a sub-region.
	MinSize float32
	// Skewed activates the Fig. 8 distribution: per object a random
	// quarter of the dimensions is two times more selective (half-size
	// intervals) than the rest.
	Skewed bool
	// Seed seeds the generator.
	Seed int64
}

func (s *ObjectSpec) setDefaults() error {
	if s.Dims < 1 {
		return fmt.Errorf("workload: invalid dimensionality %d", s.Dims)
	}
	if s.MaxSize == 0 {
		s.MaxSize = 1
	}
	if s.MaxSize < 0 || s.MaxSize > 1 {
		return fmt.Errorf("workload: MaxSize must be in (0,1], got %g", s.MaxSize)
	}
	if s.MinSize < 0 || s.MinSize > s.MaxSize {
		return fmt.Errorf("workload: MinSize must be in [0,MaxSize], got %g", s.MinSize)
	}
	return nil
}

// ObjectGen produces database objects.
type ObjectGen struct {
	spec ObjectSpec
	rng  *rand.Rand
	perm []int // scratch for selective dimension choice
}

// NewObjectGen builds a generator for the given spec.
func NewObjectGen(spec ObjectSpec) (*ObjectGen, error) {
	if err := spec.setDefaults(); err != nil {
		return nil, err
	}
	return &ObjectGen{
		spec: spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
		perm: make([]int, spec.Dims),
	}, nil
}

// Fill writes the next object into r, which must have the spec's
// dimensionality.
func (g *ObjectGen) Fill(r geom.Rect) {
	selective := g.perm[:0]
	if g.spec.Skewed {
		// Choose a random quarter of the dimensions.
		q := g.spec.Dims / 4
		if q < 1 {
			q = 1
		}
		g.perm = g.perm[:g.spec.Dims]
		for i := range g.perm {
			g.perm[i] = i
		}
		g.rng.Shuffle(len(g.perm), func(i, j int) { g.perm[i], g.perm[j] = g.perm[j], g.perm[i] })
		selective = g.perm[:q]
	}
	isSelective := func(d int) bool {
		for _, s := range selective {
			if s == d {
				return true
			}
		}
		return false
	}
	for d := 0; d < g.spec.Dims; d++ {
		size := g.spec.MinSize + g.rng.Float32()*(g.spec.MaxSize-g.spec.MinSize)
		if g.spec.Skewed && isSelective(d) {
			size /= 2
		}
		lo := g.rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
}

// Rect allocates and returns the next object.
func (g *ObjectGen) Rect() geom.Rect {
	r := geom.NewRect(g.spec.Dims)
	g.Fill(r)
	return r
}

// QuerySpec describes a query workload.
type QuerySpec struct {
	// Dims is the data space dimensionality.
	Dims int
	// Size is the nominal per-dimension interval size of query objects.
	// 0 generates point queries.
	Size float32
	// Jitter spreads individual sizes uniformly in
	// [Size·(1−Jitter), Size·(1+Jitter)], implementing the paper's
	// "minimal/maximal interval sizes enforced to control selectivity";
	// default 0.5 when Size > 0.
	Jitter float32
	// Focus, when non-nil, confines query centers to the given
	// rectangle, producing a skewed query distribution.
	Focus *geom.Rect
	// Seed seeds the generator.
	Seed int64
}

func (s *QuerySpec) setDefaults() error {
	if s.Dims < 1 {
		return fmt.Errorf("workload: invalid dimensionality %d", s.Dims)
	}
	if s.Size < 0 || s.Size > 1 {
		return fmt.Errorf("workload: Size must be in [0,1], got %g", s.Size)
	}
	if s.Jitter == 0 && s.Size > 0 {
		s.Jitter = 0.5
	}
	if s.Jitter < 0 || s.Jitter > 1 {
		return fmt.Errorf("workload: Jitter must be in [0,1], got %g", s.Jitter)
	}
	if s.Focus != nil && s.Focus.Dims() != s.Dims {
		return fmt.Errorf("workload: focus dimensionality %d != %d", s.Focus.Dims(), s.Dims)
	}
	return nil
}

// QueryGen produces query rectangles (or points when Size is 0).
type QueryGen struct {
	spec QuerySpec
	rng  *rand.Rand
}

// NewQueryGen builds a generator for the given spec.
func NewQueryGen(spec QuerySpec) (*QueryGen, error) {
	if err := spec.setDefaults(); err != nil {
		return nil, err
	}
	return &QueryGen{spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}, nil
}

// Fill writes the next query into q.
func (g *QueryGen) Fill(q geom.Rect) {
	for d := 0; d < g.spec.Dims; d++ {
		size := g.spec.Size
		if size > 0 && g.spec.Jitter > 0 {
			size *= 1 - g.spec.Jitter + 2*g.spec.Jitter*g.rng.Float32()
			if size > 1 {
				size = 1
			}
		}
		var center float32
		if f := g.spec.Focus; f != nil {
			center = f.Min[d] + g.rng.Float32()*(f.Max[d]-f.Min[d])
		} else {
			center = g.rng.Float32()
		}
		lo := center - size/2
		if lo < 0 {
			lo = 0
		}
		if lo > 1-size {
			lo = 1 - size
		}
		q.Min[d], q.Max[d] = lo, lo+size
	}
}

// Rect allocates and returns the next query.
func (g *QueryGen) Rect() geom.Rect {
	q := geom.NewRect(g.spec.Dims)
	g.Fill(q)
	return q
}
