package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"accluster/internal/geom"
)

// Workload files (as written by cmd/acgen) are plain text, one object per
// line:
//
//	id lo1 hi1 lo2 hi2 ... loN hiN
//
// Blank lines and lines starting with '#' are skipped. Dimensionality is
// inferred from the first record and enforced on the rest.

// WriteObjects writes the (id, rect) pairs in workload file format.
func WriteObjects(w io.Writer, ids []uint32, rects []geom.Rect) error {
	if len(ids) != len(rects) {
		return fmt.Errorf("workload: %d ids but %d rects", len(ids), len(rects))
	}
	bw := bufio.NewWriter(w)
	for i, r := range rects {
		if _, err := fmt.Fprintf(bw, "%d", ids[i]); err != nil {
			return err
		}
		for d := 0; d < r.Dims(); d++ {
			if _, err := fmt.Fprintf(bw, " %g %g", r.Min[d], r.Max[d]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadObjects parses a workload file. It returns the ids and rectangles in
// file order.
func ReadObjects(r io.Reader) ([]uint32, []geom.Rect, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var ids []uint32
	var rects []geom.Rect
	dims := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 || (len(fields)-1)%2 != 0 {
			return nil, nil, fmt.Errorf("workload: line %d: want 'id lo hi [lo hi ...]', got %d fields", line, len(fields))
		}
		d := (len(fields) - 1) / 2
		if dims == -1 {
			dims = d
		} else if d != dims {
			return nil, nil, fmt.Errorf("workload: line %d: %d dims, first record had %d", line, d, dims)
		}
		id64, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: line %d: bad id %q", line, fields[0])
		}
		rect := geom.NewRect(dims)
		for k := 0; k < dims; k++ {
			lo, err := strconv.ParseFloat(fields[1+2*k], 32)
			if err != nil {
				return nil, nil, fmt.Errorf("workload: line %d: bad bound %q", line, fields[1+2*k])
			}
			hi, err := strconv.ParseFloat(fields[2+2*k], 32)
			if err != nil {
				return nil, nil, fmt.Errorf("workload: line %d: bad bound %q", line, fields[2+2*k])
			}
			rect.Min[k], rect.Max[k] = float32(lo), float32(hi)
		}
		if !rect.Valid() {
			return nil, nil, fmt.Errorf("workload: line %d: invalid rectangle %v", line, rect)
		}
		ids = append(ids, uint32(id64))
		rects = append(rects, rect)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("workload: empty file")
	}
	return ids, rects, nil
}
