package workload

import (
	"bytes"
	"strings"
	"testing"

	"accluster/internal/geom"
)

func TestObjectsRoundTrip(t *testing.T) {
	g, err := NewObjectGen(ObjectSpec{Dims: 5, MaxSize: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint32
	var rects []geom.Rect
	for i := uint32(0); i < 200; i++ {
		ids = append(ids, i*3)
		rects = append(rects, g.Rect())
	}
	var buf bytes.Buffer
	if err := WriteObjects(&buf, ids, rects); err != nil {
		t.Fatal(err)
	}
	gotIDs, gotRects, err := ReadObjects(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != 200 {
		t.Fatalf("read %d records", len(gotIDs))
	}
	for i := range gotIDs {
		if gotIDs[i] != ids[i] {
			t.Fatalf("record %d: id %d, want %d", i, gotIDs[i], ids[i])
		}
		// float32 → %g → float32 is exact.
		if !gotRects[i].Equal(rects[i]) {
			t.Fatalf("record %d: %v != %v", i, gotRects[i], rects[i])
		}
	}
}

func TestWriteObjectsValidation(t *testing.T) {
	if err := WriteObjects(&bytes.Buffer{}, []uint32{1}, nil); err == nil {
		t.Error("mismatched lengths must fail")
	}
}

func TestReadObjectsSkipsCommentsAndBlanks(t *testing.T) {
	in := "# workload\n\n1 0.1 0.2 0.3 0.4\n# more\n2 0.5 0.6 0.7 0.8\n"
	ids, rects, err := ReadObjects(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || rects[0].Dims() != 2 {
		t.Fatalf("parsed %d records, dims %d", len(ids), rects[0].Dims())
	}
}

func TestReadObjectsErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"comment only":     "# nothing\n",
		"odd fields":       "1 0.1 0.2 0.3\n",
		"too few":          "1 0.5\n",
		"bad id":           "x 0.1 0.2\n",
		"bad bound":        "1 zero 0.2\n",
		"inverted":         "1 0.9 0.1\n",
		"out of domain":    "1 0.5 1.5\n",
		"inconsistent dim": "1 0.1 0.2\n2 0.1 0.2 0.3 0.4\n",
	}
	for name, in := range cases {
		if _, _, err := ReadObjects(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}
