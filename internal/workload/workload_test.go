package workload

import (
	"math"
	"testing"

	"accluster/internal/geom"
)

func TestObjectSpecValidation(t *testing.T) {
	if _, err := NewObjectGen(ObjectSpec{Dims: 0}); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := NewObjectGen(ObjectSpec{Dims: 2, MaxSize: 1.5}); err == nil {
		t.Error("MaxSize > 1 must fail")
	}
	if _, err := NewObjectGen(ObjectSpec{Dims: 2, MaxSize: 0.4, MinSize: 0.5}); err == nil {
		t.Error("MinSize > MaxSize must fail")
	}
	if _, err := NewObjectGen(ObjectSpec{Dims: 2, MinSize: -0.1}); err == nil {
		t.Error("negative MinSize must fail")
	}
}

func TestMinSizeEnforced(t *testing.T) {
	g, err := NewObjectGen(ObjectSpec{Dims: 4, MaxSize: 0.6, MinSize: 0.3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		r := g.Rect()
		if !r.Valid() {
			t.Fatalf("invalid object %v", r)
		}
		for d := 0; d < 4; d++ {
			size := r.Max[d] - r.Min[d]
			if size < 0.3-1e-6 || size > 0.6+1e-6 {
				t.Fatalf("size %g outside [0.3,0.6]", size)
			}
		}
	}
}

func TestObjectGenValidityAndDeterminism(t *testing.T) {
	g1, err := NewObjectGen(ObjectSpec{Dims: 8, MaxSize: 0.4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewObjectGen(ObjectSpec{Dims: 8, MaxSize: 0.4, Seed: 9})
	for i := 0; i < 500; i++ {
		a, b := g1.Rect(), g2.Rect()
		if !a.Valid() {
			t.Fatalf("invalid object %v", a)
		}
		if !a.Equal(b) {
			t.Fatal("same seed must reproduce the same stream")
		}
		for d := 0; d < 8; d++ {
			if a.Max[d]-a.Min[d] > 0.4 {
				t.Fatalf("interval size %g exceeds MaxSize", a.Max[d]-a.Min[d])
			}
		}
	}
	g3, _ := NewObjectGen(ObjectSpec{Dims: 8, MaxSize: 0.4, Seed: 10})
	if g3.Rect().Equal(g1.Rect()) {
		t.Error("different seeds should diverge")
	}
}

func TestSkewedObjects(t *testing.T) {
	g, err := NewObjectGen(ObjectSpec{Dims: 16, MaxSize: 0.5, Skewed: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Per object, 4 of 16 dimensions should have roughly half-sized
	// intervals; across many objects, per-dimension mean sizes stay
	// uniform (the selective quarter moves around), but the count of
	// small intervals per object must be ≥ the quarter.
	smallTotal := 0
	n := 2000
	var meanSize float64
	for i := 0; i < n; i++ {
		r := g.Rect()
		if !r.Valid() {
			t.Fatalf("invalid skewed object %v", r)
		}
		for d := 0; d < 16; d++ {
			meanSize += float64(r.Max[d] - r.Min[d])
			if r.Max[d]-r.Min[d] < 0.125 { // < MaxSize/4: likely selective
				smallTotal++
			}
		}
	}
	meanSize /= float64(n * 16)
	// Uniform sizes would average MaxSize/2 = 0.25; the skew lowers it:
	// 12/16·0.25 + 4/16·0.125 = 0.21875.
	if math.Abs(meanSize-0.21875) > 0.01 {
		t.Errorf("mean interval size = %g, want ≈ 0.219", meanSize)
	}
	if smallTotal == 0 {
		t.Error("expected selective dimensions")
	}
}

func TestQuerySpecValidation(t *testing.T) {
	if _, err := NewQueryGen(QuerySpec{Dims: 0}); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := NewQueryGen(QuerySpec{Dims: 2, Size: 2}); err == nil {
		t.Error("Size > 1 must fail")
	}
	f := geom.NewRect(3)
	if _, err := NewQueryGen(QuerySpec{Dims: 2, Focus: &f}); err == nil {
		t.Error("focus dims mismatch must fail")
	}
}

func TestPointQueries(t *testing.T) {
	g, err := NewQueryGen(QuerySpec{Dims: 5, Size: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		q := g.Rect()
		if !q.IsPoint() || !q.Valid() {
			t.Fatalf("expected a valid point, got %v", q)
		}
	}
}

func TestQuerySizesWithinJitter(t *testing.T) {
	g, err := NewQueryGen(QuerySpec{Dims: 3, Size: 0.2, Jitter: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		q := g.Rect()
		if !q.Valid() {
			t.Fatalf("invalid query %v", q)
		}
		for d := 0; d < 3; d++ {
			size := q.Max[d] - q.Min[d]
			if size < 0.2*0.5-1e-6 || size > 0.2*1.5+1e-6 {
				t.Fatalf("query size %g outside jitter band", size)
			}
		}
	}
}

func TestFocusedQueries(t *testing.T) {
	focus := geom.Rect{Min: []float32{0.8, 0.8}, Max: []float32{0.9, 0.9}}
	g, err := NewQueryGen(QuerySpec{Dims: 2, Size: 0.05, Focus: &focus, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		q := g.Rect()
		for d := 0; d < 2; d++ {
			center := (q.Min[d] + q.Max[d]) / 2
			if center < 0.7 || center > 1.0 {
				t.Fatalf("query center %g strayed from focus", center)
			}
		}
	}
}

func TestEstimateSelectivityValidation(t *testing.T) {
	spec := ObjectSpec{Dims: 2}
	if _, err := EstimateSelectivity(spec, geom.Relation(9), 0.1, 100, 10, 1); err == nil {
		t.Error("bad relation must fail")
	}
	if _, err := EstimateSelectivity(spec, geom.Intersects, 0.1, 0, 10, 1); err == nil {
		t.Error("bad sample must fail")
	}
}

func TestEstimateSelectivityMonotonicity(t *testing.T) {
	spec := ObjectSpec{Dims: 8, MaxSize: 0.3, Seed: 1}
	sSmall, err := EstimateSelectivity(spec, geom.Intersects, 0.01, 1000, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	sBig, err := EstimateSelectivity(spec, geom.Intersects, 0.5, 1000, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sBig <= sSmall {
		t.Errorf("intersection selectivity must grow with query size: %g vs %g", sSmall, sBig)
	}
	// Enclosure: bigger queries are enclosed by fewer objects.
	eSmall, _ := EstimateSelectivity(spec, geom.Encloses, 0.0, 1000, 16, 1)
	eBig, _ := EstimateSelectivity(spec, geom.Encloses, 0.3, 1000, 16, 1)
	if eBig >= eSmall {
		t.Errorf("enclosure selectivity must shrink with query size: %g vs %g", eSmall, eBig)
	}
}

func TestCalibrateQuerySizeHitsTarget(t *testing.T) {
	spec := ObjectSpec{Dims: 16, MaxSize: 0.5, Seed: 7}
	for _, target := range []float64{5e-5, 5e-3, 5e-2} {
		size, achieved, err := CalibrateQuerySize(spec, geom.Intersects, target, 11)
		if err != nil {
			t.Fatal(err)
		}
		if size <= 0 || size > 1 {
			t.Fatalf("target %g: size %g out of range", target, size)
		}
		ratio := achieved / target
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("target %g: achieved %g (size %g), off by more than 2x", target, achieved, size)
		}
	}
}

func TestCalibrateTinyTarget(t *testing.T) {
	// The per-dimension factorization must reach selectivities far below
	// 1/sampleSize (paper sweeps down to 5e-7).
	spec := ObjectSpec{Dims: 16, MaxSize: 0.3, Seed: 8}
	size, achieved, err := CalibrateQuerySize(spec, geom.Intersects, 5e-7, 13)
	if err != nil {
		t.Fatal(err)
	}
	if achieved <= 0 {
		t.Fatal("achieved selectivity must be positive")
	}
	ratio := achieved / 5e-7
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("tiny target: achieved %g for size %g", achieved, size)
	}
}

func TestCalibrateValidation(t *testing.T) {
	if _, _, err := CalibrateQuerySize(ObjectSpec{Dims: 2}, geom.Intersects, 0, 1); err == nil {
		t.Error("target 0 must fail")
	}
	if _, _, err := CalibrateQuerySize(ObjectSpec{Dims: 2}, geom.Intersects, 2, 1); err == nil {
		t.Error("target > 1 must fail")
	}
}

func TestMeasureSelectivity(t *testing.T) {
	// A search function that matches everything gives selectivity 1.
	qg, _ := NewQueryGen(QuerySpec{Dims: 2, Size: 0.1, Seed: 1})
	all := func(q geom.Rect, rel geom.Relation) (int, error) { return 50, nil }
	s, err := MeasureSelectivity(all, qg, geom.Intersects, 50, 10)
	if err != nil || s != 1 {
		t.Fatalf("MeasureSelectivity = %g, %v", s, err)
	}
	if _, err := MeasureSelectivity(all, qg, geom.Intersects, 0, 10); err == nil {
		t.Error("0 objects must fail")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a, b := Shuffle(100, 5), Shuffle(100, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same permutation")
		}
	}
	seen := make([]bool, 100)
	for _, v := range a {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
}
