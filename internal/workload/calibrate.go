package workload

import (
	"fmt"
	"math"
	"math/rand"

	"accluster/internal/geom"
)

// Selectivity calibration (§7.2). The paper controls average query
// selectivity by enforcing query interval sizes; we invert that relation by
// bisection. Because every generator draws its dimensions independently, the
// expected selectivity of a query factorizes into per-dimension match
// probabilities; estimating those per dimension on an object sample and
// multiplying reaches selectivities far below 1/sampleSize (down to the
// paper's 5e-7) with good accuracy.

// EstimateSelectivity returns the expected fraction of objects drawn from
// objSpec matched by queries with the given nominal size under rel,
// estimated with sampleN objects and trials query draws.
func EstimateSelectivity(objSpec ObjectSpec, rel geom.Relation, size float32, sampleN, trials int, seed int64) (float64, error) {
	if err := objSpec.setDefaults(); err != nil {
		return 0, err
	}
	if !rel.Valid() {
		return 0, fmt.Errorf("workload: invalid relation %v", rel)
	}
	if sampleN < 1 || trials < 1 {
		return 0, fmt.Errorf("workload: sampleN and trials must be positive")
	}
	sampleSpec := objSpec
	sampleSpec.Seed = seed
	og, err := NewObjectGen(sampleSpec)
	if err != nil {
		return 0, err
	}
	dims := objSpec.Dims
	// sample[d] holds the (lo,hi) pairs of every sampled object in
	// dimension d.
	sample := make([][2][]float32, dims)
	for d := range sample {
		sample[d][0] = make([]float32, sampleN)
		sample[d][1] = make([]float32, sampleN)
	}
	r := geom.NewRect(dims)
	for i := 0; i < sampleN; i++ {
		og.Fill(r)
		for d := 0; d < dims; d++ {
			sample[d][0][i] = r.Min[d]
			sample[d][1][i] = r.Max[d]
		}
	}
	qg, err := NewQueryGen(QuerySpec{Dims: dims, Size: size, Seed: seed + 1})
	if err != nil {
		return 0, err
	}
	q := geom.NewRect(dims)
	total := 0.0
	for trial := 0; trial < trials; trial++ {
		qg.Fill(q)
		p := 1.0
		for d := 0; d < dims && p > 0; d++ {
			match := 0
			lows, highs := sample[d][0], sample[d][1]
			switch rel {
			case geom.Intersects:
				for i := 0; i < sampleN; i++ {
					if lows[i] <= q.Max[d] && q.Min[d] <= highs[i] {
						match++
					}
				}
			case geom.ContainedBy:
				for i := 0; i < sampleN; i++ {
					if lows[i] >= q.Min[d] && highs[i] <= q.Max[d] {
						match++
					}
				}
			case geom.Encloses:
				for i := 0; i < sampleN; i++ {
					if lows[i] <= q.Min[d] && highs[i] >= q.Max[d] {
						match++
					}
				}
			}
			p *= float64(match) / float64(sampleN)
		}
		total += p
	}
	return total / float64(trials), nil
}

// CalibrateQuerySize finds a query size whose expected selectivity under rel
// approximates target, by bisection over [0,1]. It returns the size and the
// achieved selectivity estimate. Selectivity grows with query size for
// intersection and containment and shrinks for enclosure; both directions
// are handled.
func CalibrateQuerySize(objSpec ObjectSpec, rel geom.Relation, target float64, seed int64) (float32, float64, error) {
	if target <= 0 || target > 1 {
		return 0, 0, fmt.Errorf("workload: target selectivity must be in (0,1], got %g", target)
	}
	const sampleN, trials = 2000, 48
	eval := func(size float32) (float64, error) {
		return EstimateSelectivity(objSpec, rel, size, sampleN, trials, seed)
	}
	increasing := rel != geom.Encloses
	lo, hi := float32(0), float32(1)
	var achieved float64
	size := float32(0.5)
	for iter := 0; iter < 28; iter++ {
		size = (lo + hi) / 2
		s, err := eval(size)
		if err != nil {
			return 0, 0, err
		}
		achieved = s
		if math.Abs(math.Log(math.Max(s, 1e-300))-math.Log(target)) < 0.05 {
			break
		}
		if (s < target) == increasing {
			lo = size
		} else {
			hi = size
		}
	}
	return size, achieved, nil
}

// MeasureSelectivity runs actual queries against an index-like Search
// function and returns the observed average selectivity; used by tests to
// validate calibration end to end.
func MeasureSelectivity(search func(q geom.Rect, rel geom.Relation) (int, error),
	qg *QueryGen, rel geom.Relation, nObjects, queries int) (float64, error) {
	if nObjects < 1 || queries < 1 {
		return 0, fmt.Errorf("workload: nothing to measure")
	}
	q := geom.NewRect(qg.spec.Dims)
	total := 0.0
	for i := 0; i < queries; i++ {
		qg.Fill(q)
		n, err := search(q, rel)
		if err != nil {
			return 0, err
		}
		total += float64(n) / float64(nObjects)
	}
	return total / float64(queries), nil
}

// Shuffle returns a deterministic permutation of 0..n-1, handy for insert
// order randomization in experiments.
func Shuffle(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	p := rng.Perm(n)
	return p
}
