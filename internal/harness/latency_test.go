package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunLatencyShape(t *testing.T) {
	o := tinyOptions()
	o.Objects = 8000
	exp, err := RunLatency(o)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "latency" || len(exp.Points) != 1 {
		t.Fatalf("experiment shape: %+v", exp)
	}
	p := exp.Points[0]
	for _, m := range []string{MethodACSync, MethodACInc} {
		r, ok := p.Results[m]
		if !ok {
			t.Fatalf("missing method %s", m)
		}
		if r.P50US <= 0 || r.P90US < r.P50US || r.P99US < r.P90US || r.MaxUS < r.P99US {
			t.Errorf("%s: latency distribution not monotone: %+v", m, r)
		}
		if r.Partitions < 2 {
			t.Errorf("%s: workload did not cluster (%d partitions)", m, r.Partitions)
		}
	}
	// The budgeted scheduler must not lose throughput to the maintenance
	// interleaving (the acceptance bar is 5%; the tiny workload is noisy,
	// so assert a looser sanity factor here — the real measurement is the
	// acbench latency experiment at full scale).
	sync, inc := p.Results[MethodACSync], p.Results[MethodACInc]
	if inc.MeasuredUS > sync.MeasuredUS*2 {
		t.Errorf("budgeted throughput collapsed: %.0f µs/query vs sync %.0f", inc.MeasuredUS, sync.MeasuredUS)
	}

	var buf bytes.Buffer
	if err := exp.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"latency", "per-query wall-clock latency", "p99", "AC-inc max"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
	buf.Reset()
	if err := exp.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p99_us") {
		t.Error("CSV missing latency columns")
	}
}
