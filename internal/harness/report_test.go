package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestScenarioMethodSelection(t *testing.T) {
	methods := []string{MethodSS, MethodRS, MethodACMem, MethodACDisk}
	mem := scenarioMethods(methods, false)
	disk := scenarioMethods(methods, true)
	has := func(list []string, m string) bool {
		for _, x := range list {
			if x == m {
				return true
			}
		}
		return false
	}
	if !has(mem, MethodACMem) || has(mem, MethodACDisk) {
		t.Errorf("memory section methods: %v", mem)
	}
	if !has(disk, MethodACDisk) || has(disk, MethodACMem) {
		t.Errorf("disk section methods: %v", disk)
	}
	if !has(mem, MethodSS) || !has(disk, MethodSS) {
		t.Error("SS must appear in both sections")
	}
}

func TestDisplayName(t *testing.T) {
	if displayName(MethodACMem) != "AC" || displayName(MethodACDisk) != "AC" {
		t.Error("adaptive variants display as AC")
	}
	if displayName(MethodSS) != "SS" || displayName(MethodXT) != "XT" {
		t.Error("other methods display verbatim")
	}
}

func TestRenderSectionsShowTheRightAdaptiveVariant(t *testing.T) {
	exp := chartExperiment()
	var buf bytes.Buffer
	if err := exp.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	memIdx := strings.Index(out, "Memory Storage Scenario")
	diskIdx := strings.Index(out, "Disk Storage Scenario")
	if memIdx < 0 || diskIdx < 0 || memIdx > diskIdx {
		t.Fatalf("section layout wrong:\n%s", out)
	}
	memSection := out[memIdx:diskIdx]
	// The memory section must carry AC-mem's modeled value (5.1), the
	// disk section AC-disk's (149).
	if !strings.Contains(memSection, "5.1") {
		t.Errorf("memory section missing AC-mem value:\n%s", memSection)
	}
	diskSection := out[diskIdx:]
	if !strings.Contains(diskSection, "149") {
		t.Errorf("disk section missing AC-disk value:\n%s", diskSection)
	}
}

func TestRenderHandlesMissingMethods(t *testing.T) {
	exp := &Experiment{
		ID: "x", Title: "partial", XLabel: "p",
		Methods: []string{MethodSS, MethodRS},
		Points: []Point{{
			Label:   "1",
			Results: map[string]MethodResult{MethodSS: {ModeledMemMS: 1, ModeledDiskMS: 2, Partitions: 1}},
		}},
	}
	var buf bytes.Buffer
	if err := exp.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Error("missing methods must render as dashes")
	}
	buf.Reset()
	if err := exp.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 { // header + the one present method
		t.Errorf("CSV lines: %d", len(lines))
	}
}
