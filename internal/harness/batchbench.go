package harness

// Batched-selection micro-benchmark emitting the "batch" section of
// BENCH_queries.json: the converged point-enclosing workload is measured
// batched (one SearchIDsBatch call per group of N queries — one
// signature-mirror pass, one statistics publication) against the looped
// single-query baseline (N SearchIDsAppend calls) across a batch-size
// sweep, single-threaded, medians of three runs. A disk row then pins the
// coalesced multi-query read plan on the virtual device: one batch of the
// repeated-query workload against its looped equivalent, comparing vdisk
// seeks cold and allocations warm.

import (
	"fmt"
	"testing"

	"accluster/internal/cost"
	"accluster/internal/diskengine"
	"accluster/internal/geom"
	"accluster/internal/store"
	"accluster/internal/vdisk"
)

// defaultBatchSizes is the standard batch-size sweep.
var defaultBatchSizes = []int{1, 4, 16, 64, 256}

// BatchBenchResult is one point of the batch sweep: a batch size measured
// through the batch plane against its looped single-query equivalent on
// the same converged structure.
type BatchBenchResult struct {
	// Workload is "point-enclosing" (in-memory sweep) or "disk-intersects"
	// (the coalesced read-plan row).
	Workload string `json:"workload"`
	// Batch is the number of queries per SearchIDsBatch call.
	Batch int `json:"batch"`
	// NsPerQuery and QueriesPerSec describe the batched path (median of
	// three single-threaded runs, per query — NsPerOp of the batch call
	// divided by the batch size).
	NsPerQuery    float64 `json:"ns_per_query"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	// LoopedNsPerQuery is the looped SearchIDsAppend baseline over the
	// same query set, and Speedup is LoopedNsPerQuery / NsPerQuery.
	LoopedNsPerQuery float64 `json:"looped_ns_per_query"`
	Speedup          float64 `json:"speedup"`
	// AllocsPerOp counts allocations per batch call, warm (0 is the batch
	// plane's steady-state contract).
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BatchSeeks and LoopedSeeks are the virtual-device seek counts of one
	// cold pass of the disk row's query set (omitted on in-memory rows):
	// the coalesced plan must come in strictly lower.
	BatchSeeks  int64 `json:"batch_seeks,omitempty"`
	LoopedSeeks int64 `json:"looped_seeks,omitempty"`
}

// chunkQueries slices qs into len(qs)/n batches of n (qs' length is a
// multiple of every standard sweep size).
func chunkQueries(qs []geom.Rect, n int) [][]geom.Rect {
	var out [][]geom.Rect
	for i := 0; i+n <= len(qs); i += n {
		out = append(out, qs[i:i+n])
	}
	if len(out) == 0 {
		out = append(out, qs)
	}
	return out
}

// runBatchSweep measures the in-memory batch sweep plus the disk read-plan
// row for the standard batch sizes (capped by o.BatchMax when set).
func runBatchSweep(o Options) ([]BatchBenchResult, error) {
	if o.BatchMax < 0 {
		return nil, nil
	}
	sizes := make([]int, 0, len(defaultBatchSizes))
	for _, n := range defaultBatchSizes {
		if o.BatchMax > 0 && n > o.BatchMax {
			break
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, nil
	}

	// In-memory sweep: the paper's point-enclosing experiment (§7.2) — a
	// database of skewed range subscriptions probed by uniform event
	// points, the SDI regime batching exists for (most events match few
	// subscriptions, so the shared signature-mirror pass dominates). The
	// object width is pinned to subscription scale (cf. the broker
	// benchmark's width-0.08 subscriptions) rather than o.MaxObjSize, so
	// the batch section measures one fixed workload regardless of the
	// -maxsize flag; looped and batched run against the identical
	// converged structure either way.
	om := o
	om.MaxObjSize = 0.1
	w := benchWorkload{name: "point-enclosing", params: cost.Memory(), rel: geom.Encloses, skewed: true}
	ix, queries, err := buildConverged(w, om)
	if err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	o.logf("batch: measuring looped baseline (%s)", w.name)
	var buf []uint32
	loopedNs, err := medianOf3(func() (float64, error) {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := ix.SearchIDsAppend(buf[:0], queries[i%len(queries)], w.rel)
				if err != nil {
					b.Fatal(err)
				}
				buf = out
			}
		})
		return float64(res.NsPerOp()), nil
	})
	if err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}

	var out []BatchBenchResult
	for _, n := range sizes {
		o.logf("batch: measuring %s batch=%d", w.name, n)
		batches := chunkQueries(queries, n)
		var dst geom.IDBatch
		var allocs int64
		ns, err := medianOf3(func() (float64, error) {
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := ix.SearchIDsBatch(&dst, batches[i%len(batches)], w.rel); err != nil {
						b.Fatal(err)
					}
				}
			})
			allocs = res.AllocsPerOp()
			return float64(res.NsPerOp()) / float64(n), nil
		})
		if err != nil {
			return nil, fmt.Errorf("batch: %w", err)
		}
		r := BatchBenchResult{
			Workload:         w.name,
			Batch:            n,
			NsPerQuery:       ns,
			LoopedNsPerQuery: loopedNs,
			AllocsPerOp:      allocs,
		}
		if ns > 0 {
			r.QueriesPerSec = 1e9 / ns
			r.Speedup = loopedNs / ns
		}
		out = append(out, r)
	}

	disk, err := runDiskBatchRow(o)
	if err != nil {
		return nil, err
	}
	out = append(out, disk)
	return out, nil
}

// runDiskBatchRow measures the multi-query read plan on the virtual disk:
// the disk benchmark's checkpoint is queried once with a single 64-query
// batch and once with the 64 looped singles, cache off, comparing device
// seeks — then warm with the cache on for the allocation and throughput
// figures.
func runDiskBatchRow(o Options) (BatchBenchResult, error) {
	const batchN = 64
	ix, queries, err := buildConverged(benchWorkload{
		name:        "disk",
		params:      cost.Memory(), // see RunDiskBench on why not cost.Disk()
		rel:         geom.Intersects,
		selectivity: 5e-3,
	}, o)
	if err != nil {
		return BatchBenchResult{}, fmt.Errorf("batch: disk: %w", err)
	}
	if len(queries) > batchN {
		queries = queries[:batchN]
	}
	dev := vdisk.New(cost.DiskAccessMS, cost.TransferMSPerByte)
	if err := store.Save(ix, dev); err != nil {
		return BatchBenchResult{}, fmt.Errorf("batch: disk: %w", err)
	}

	// Cold, cache off: every exploration reads the device, so the seek
	// counts isolate the read plans — per-query coalescing for the loop,
	// one batch-wide coalesced sweep for the batch.
	r := BatchBenchResult{Workload: "disk-intersects", Batch: len(queries)}
	var dst geom.IDBatch
	{
		eng, err := diskengine.OpenConfig(dev, diskengine.Config{CacheBytes: -1})
		if err != nil {
			return BatchBenchResult{}, fmt.Errorf("batch: disk: %w", err)
		}
		s0 := dev.Stats().Seeks
		var buf []uint32
		for _, q := range queries {
			if buf, err = eng.SearchIDsAppend(buf[:0], q, geom.Intersects); err != nil {
				return BatchBenchResult{}, fmt.Errorf("batch: disk: %w", err)
			}
		}
		r.LoopedSeeks = dev.Stats().Seeks - s0
		s0 = dev.Stats().Seeks
		if err := eng.SearchIDsBatch(&dst, queries, geom.Intersects); err != nil {
			return BatchBenchResult{}, fmt.Errorf("batch: disk: %w", err)
		}
		r.BatchSeeks = dev.Stats().Seeks - s0
	}

	// Warm, cache on: the steady-state repeated-query regime — wall time
	// and allocations per batch call with the working set resident.
	eng, err := diskengine.OpenConfig(dev, diskengine.Config{CacheBytes: diskengine.DefaultCacheBytes})
	if err != nil {
		return BatchBenchResult{}, fmt.Errorf("batch: disk: %w", err)
	}
	var buf []uint32
	for _, q := range queries { // warm the cache
		if buf, err = eng.SearchIDsAppend(buf[:0], q, geom.Intersects); err != nil {
			return BatchBenchResult{}, fmt.Errorf("batch: disk: %w", err)
		}
	}
	o.logf("batch: measuring disk-intersects batch=%d", len(queries))
	loopedNs, err := medianOf3(func() (float64, error) {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := eng.SearchIDsAppend(buf[:0], queries[i%len(queries)], geom.Intersects)
				if err != nil {
					b.Fatal(err)
				}
				buf = out
			}
		})
		return float64(res.NsPerOp()), nil
	})
	if err != nil {
		return BatchBenchResult{}, fmt.Errorf("batch: disk: %w", err)
	}
	ns, err := medianOf3(func() (float64, error) {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := eng.SearchIDsBatch(&dst, queries, geom.Intersects); err != nil {
					b.Fatal(err)
				}
			}
		})
		r.AllocsPerOp = res.AllocsPerOp()
		return float64(res.NsPerOp()) / float64(len(queries)), nil
	})
	if err != nil {
		return BatchBenchResult{}, fmt.Errorf("batch: disk: %w", err)
	}
	r.NsPerQuery = ns
	r.LoopedNsPerQuery = loopedNs
	if ns > 0 {
		r.QueriesPerSec = 1e9 / ns
		r.Speedup = loopedNs / ns
	}
	return r, nil
}
