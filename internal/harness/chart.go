package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ASCII chart rendering: the paper presents Figs. 7 and 8 as line charts
// (query execution time against selectivity or dimensionality, the disk
// charts on a logarithmic time scale). RenderChart regenerates that visual
// shape in the terminal so crossovers are visible at a glance. The generic
// renderer, RenderSeries, is shared with the telemetry decoder (cmd/acstat),
// which plots per-second flight-recorder gauges with it.

const (
	chartHeight = 16
	chartColGap = 8
)

// seriesGlyphs assigns one plot glyph per method.
var seriesGlyphs = map[string]byte{
	MethodSS:     'S',
	MethodRS:     'R',
	MethodACMem:  'A',
	MethodACDisk: 'A',
	MethodMBB:    'M',
	MethodXT:     'X',
}

// chartValue extracts the plotted value for a method at a point.
func chartValue(r MethodResult, disk bool) float64 {
	if disk {
		return r.ModeledDiskMS
	}
	return r.ModeledMemMS
}

// Series is one plotted line: a display name, a plot glyph, and one value
// per x label. Values ≤ 0 or NaN are treated as missing and skipped.
type Series struct {
	Name   string
	Glyph  byte
	Values []float64
}

// RenderSeries draws an ASCII line chart of the given series over the shared
// x labels. Title is printed above the grid; logScale switches the y axis to
// logarithmic (values must be positive either way — non-positive points are
// skipped). It is the rendering core of RenderChart and is also used by
// cmd/acstat for flight-recorder gauge series.
func RenderSeries(w io.Writer, title string, labels []string, series []Series, logScale bool) error {
	if len(labels) == 0 || len(series) == 0 {
		return fmt.Errorf("harness: nothing to chart")
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if v <= 0 || math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if !(hi >= lo) {
		return fmt.Errorf("harness: no positive values to chart")
	}
	if hi == lo {
		hi = lo * 1.01
	}
	yOf := func(v float64) int {
		var frac float64
		if logScale {
			frac = (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
		} else {
			frac = (v - lo) / (hi - lo)
		}
		row := int(math.Round(frac * float64(chartHeight-1)))
		if row < 0 {
			row = 0
		}
		if row > chartHeight-1 {
			row = chartHeight - 1
		}
		return chartHeight - 1 - row // row 0 is the top
	}

	width := len(labels) * chartColGap
	grid := make([][]byte, chartHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for pi := range labels {
		x := pi*chartColGap + chartColGap/2
		for _, s := range series {
			if pi >= len(s.Values) {
				continue
			}
			v := s.Values[pi]
			if v <= 0 || math.IsNaN(v) {
				continue
			}
			y := yOf(v)
			g := s.Glyph
			if g == 0 {
				g = '*'
			}
			if grid[y][x] == ' ' {
				grid[y][x] = g
			} else if grid[y][x] != g {
				grid[y][x] = '+' // collision marker
			}
			// Move overlapping glyphs one column right so close
			// series stay distinguishable.
			if grid[y][x] == '+' && x+1 < width && grid[y][x+1] == ' ' {
				grid[y][x+1] = g
			}
		}
	}

	fmt.Fprintln(w, title)
	for i, row := range grid {
		var label string
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g", hi)
		case chartHeight - 1:
			label = fmt.Sprintf("%8.3g", lo)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	var xaxis strings.Builder
	xaxis.WriteString(strings.Repeat(" ", 10))
	for _, l := range labels {
		xaxis.WriteString(fmt.Sprintf("%-*s", chartColGap, l))
	}
	fmt.Fprintln(w, strings.TrimRight(xaxis.String(), " "))
	var legend []string
	seen := map[byte]bool{}
	for _, s := range series {
		g := s.Glyph
		if g == 0 {
			g = '*'
		}
		if !seen[g] {
			seen[g] = true
			legend = append(legend, fmt.Sprintf("%c=%s", g, s.Name))
		}
	}
	fmt.Fprintf(w, "%s (+ = overlap)\n\n", strings.Join(legend, "  "))
	return nil
}

// RenderChart draws the experiment's modeled per-query times as an ASCII
// line chart for one storage scenario. Log scale mirrors the paper's disk
// charts.
func (e *Experiment) RenderChart(w io.Writer, disk, logScale bool) error {
	methods := scenarioMethods(e.Methods, disk)
	if len(methods) == 0 || len(e.Points) == 0 {
		return fmt.Errorf("harness: nothing to chart")
	}
	scenario := "memory"
	if disk {
		scenario = "disk"
	}
	scale := "linear"
	if logScale {
		scale = "log"
	}

	labels := make([]string, len(e.Points))
	for i, p := range e.Points {
		labels[i] = p.Label
	}
	series := make([]Series, 0, len(methods))
	for _, m := range methods {
		s := Series{Name: displayName(m), Glyph: seriesGlyphs[m]}
		s.Values = make([]float64, len(e.Points))
		for i, p := range e.Points {
			if r, ok := p.Results[m]; ok {
				s.Values[i] = chartValue(r, disk)
			}
		}
		series = append(series, s)
	}
	title := fmt.Sprintf("%s — %s scenario, modeled ms/query (%s scale)", e.Title, scenario, scale)
	return RenderSeries(w, title, labels, series, logScale)
}
