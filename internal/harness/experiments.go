package harness

import (
	"fmt"

	"accluster/internal/geom"
	"accluster/internal/workload"
)

// RunFig7 reproduces Fig. 7 and its two data-access tables (E1–E4): uniform
// workload, intersection queries, query selectivity swept from 5e-7 to 5e-1,
// both storage scenarios. The paper runs 2,000,000 objects in 16 dimensions;
// Options.Objects scales the database.
func RunFig7(o Options) (*Experiment, error) {
	o.setDefaults()
	exp := &Experiment{
		ID:      "fig7",
		Title:   "query performance when varying query selectivity (uniform workload)",
		XLabel:  "selectivity",
		Methods: []string{MethodSS, MethodRS, MethodACMem, MethodACDisk},
	}
	objSpec := workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize, Seed: o.Seed}

	// SS and RS do not adapt to the query distribution: build them once.
	static := map[string]Engine{}
	for _, m := range []string{MethodSS, MethodRS} {
		e, err := newEngine(m, o.Dims, o.ReorgEvery)
		if err != nil {
			return nil, err
		}
		static[m] = e
	}
	o.logf("fig7: loading %d objects x %d dims into SS and RS", o.Objects, o.Dims)
	if err := load(static, objSpec, o.Objects); err != nil {
		return nil, err
	}

	for pi, sel := range o.Selectivities {
		size, achieved, err := workload.CalibrateQuerySize(objSpec, geom.Intersects, sel, o.Seed+100)
		if err != nil {
			return nil, err
		}
		o.logf("fig7: selectivity %.2g -> query size %.4f (estimated %.2g)", sel, size, achieved)
		qspec := workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + int64(pi)*7 + 3}
		warmQs, err := genQueries(qspec, o.Warmup)
		if err != nil {
			return nil, err
		}
		measQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: qspec.Seed + 1}, o.Queries)
		if err != nil {
			return nil, err
		}

		point := Point{Label: fmt.Sprintf("%.0e", sel), X: sel, Results: map[string]MethodResult{}}
		for name, e := range static {
			r, err := measure(e, measQs, geom.Intersects)
			if err != nil {
				return nil, err
			}
			point.Results[name] = r
		}
		// The adaptive index clusters differently per scenario and per
		// query distribution: fresh build per point.
		for _, m := range []string{MethodACMem, MethodACDisk} {
			e, err := newEngine(m, o.Dims, o.ReorgEvery)
			if err != nil {
				return nil, err
			}
			if err := load(map[string]Engine{m: e}, objSpec, o.Objects); err != nil {
				return nil, err
			}
			if err := warmup(e, warmQs, geom.Intersects); err != nil {
				return nil, err
			}
			r, err := measure(e, measQs, geom.Intersects)
			if err != nil {
				return nil, err
			}
			point.Results[m] = r
			o.logf("fig7: %s at %.0e: %d clusters, %.1f%% explored", m, sel, r.Partitions, r.ExploredPct)
		}
		exp.Points = append(exp.Points, point)
	}
	return exp, nil
}

// RunFig8 reproduces Fig. 8 and its tables (E5–E7): skewed workload
// (per object, a random quarter of the dimensions is twice as selective),
// dimensionality swept (paper: 16–40), average query selectivity held at
// Options.Target (paper: 0.05%).
func RunFig8(o Options) (*Experiment, error) {
	o.setDefaults()
	exp := &Experiment{
		ID:      "fig8",
		Title:   "query performance when varying space dimensionality (skewed data)",
		XLabel:  "dims",
		Methods: []string{MethodSS, MethodRS, MethodACMem, MethodACDisk},
	}
	for pi, dims := range o.DimsSweep {
		objSpec := workload.ObjectSpec{Dims: dims, MaxSize: o.MaxObjSize, Skewed: true, Seed: o.Seed + int64(pi)}
		size, achieved, err := workload.CalibrateQuerySize(objSpec, geom.Intersects, o.Target, o.Seed+200+int64(pi))
		if err != nil {
			return nil, err
		}
		o.logf("fig8: dims %d -> query size %.4f (estimated %.2g)", dims, size, achieved)
		warmQs, err := genQueries(workload.QuerySpec{Dims: dims, Size: size, Seed: o.Seed + int64(pi)*13 + 5}, o.Warmup)
		if err != nil {
			return nil, err
		}
		measQs, err := genQueries(workload.QuerySpec{Dims: dims, Size: size, Seed: o.Seed + int64(pi)*13 + 6}, o.Queries)
		if err != nil {
			return nil, err
		}
		point := Point{Label: fmt.Sprintf("%d", dims), X: float64(dims), Results: map[string]MethodResult{}}
		for _, m := range exp.Methods {
			e, err := newEngine(m, dims, o.ReorgEvery)
			if err != nil {
				return nil, err
			}
			o.logf("fig8: loading %d objects x %d dims into %s", o.Objects, dims, m)
			if err := load(map[string]Engine{m: e}, objSpec, o.Objects); err != nil {
				return nil, err
			}
			if m == MethodACMem || m == MethodACDisk {
				if err := warmup(e, warmQs, geom.Intersects); err != nil {
					return nil, err
				}
			}
			r, err := measure(e, measQs, geom.Intersects)
			if err != nil {
				return nil, err
			}
			point.Results[m] = r
		}
		exp.Points = append(exp.Points, point)
	}
	return exp, nil
}

// RunPointEnclosing reproduces the point-enclosing experiment of §7.2 (E8):
// events are points verified against a database of range subscriptions; the
// paper reports AC up to 16× faster than SS in memory and up to 4× on disk.
func RunPointEnclosing(o Options) (*Experiment, error) {
	o.setDefaults()
	exp := &Experiment{
		ID:      "point",
		Title:   "point-enclosing queries (publish/subscribe events)",
		XLabel:  "dims",
		Methods: []string{MethodSS, MethodRS, MethodACMem, MethodACDisk},
	}
	for pi, dims := range []int{o.Dims} {
		// Skewed data, as in the paper: "For point-enclosing queries on
		// skewed data, gain can reach a factor of 16 in memory."
		objSpec := workload.ObjectSpec{Dims: dims, MaxSize: o.MaxObjSize, Skewed: true, Seed: o.Seed + int64(pi)}
		warmQs, err := genQueries(workload.QuerySpec{Dims: dims, Size: 0, Seed: o.Seed + 31}, o.Warmup)
		if err != nil {
			return nil, err
		}
		measQs, err := genQueries(workload.QuerySpec{Dims: dims, Size: 0, Seed: o.Seed + 32}, o.Queries)
		if err != nil {
			return nil, err
		}
		point := Point{Label: fmt.Sprintf("%d", dims), X: float64(dims), Results: map[string]MethodResult{}}
		for _, m := range exp.Methods {
			e, err := newEngine(m, dims, o.ReorgEvery)
			if err != nil {
				return nil, err
			}
			o.logf("point: loading %d objects x %d dims into %s", o.Objects, dims, m)
			if err := load(map[string]Engine{m: e}, objSpec, o.Objects); err != nil {
				return nil, err
			}
			if m == MethodACMem || m == MethodACDisk {
				if err := warmup(e, warmQs, geom.Encloses); err != nil {
					return nil, err
				}
			}
			r, err := measure(e, measQs, geom.Encloses)
			if err != nil {
				return nil, err
			}
			point.Results[m] = r
		}
		if ss, ok := point.Results[MethodSS]; ok {
			if ac, ok := point.Results[MethodACMem]; ok && ac.ModeledMemMS > 0 {
				exp.Notes = append(exp.Notes, fmt.Sprintf(
					"dims %d: AC vs SS speedup %.1fx in memory (paper: up to 16x)",
					dims, ss.ModeledMemMS/ac.ModeledMemMS))
			}
			if ac, ok := point.Results[MethodACDisk]; ok && ac.ModeledDiskMS > 0 {
				exp.Notes = append(exp.Notes, fmt.Sprintf(
					"dims %d: AC vs SS speedup %.1fx on disk (paper: up to 4x)",
					dims, ss.ModeledDiskMS/ac.ModeledDiskMS))
			}
		}
		exp.Points = append(exp.Points, point)
	}
	return exp, nil
}
