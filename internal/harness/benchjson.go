package harness

// Query micro-benchmark emitting machine-readable JSON (BENCH_queries.json):
// single-threaded queries/s, ns/op and allocs/op over the paper's standard
// workloads. Unlike the figure experiments, the measured loop runs on a
// converged index with reorganization frozen, so the numbers isolate the
// steady-state query path (signature scan + member verification) that the
// columnar kernels accelerate; clustering maintenance is exercised during
// warm-up only.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/workload"
)

// QueryBenchResult is one measured (workload, op) pair.
type QueryBenchResult struct {
	Workload      string  `json:"workload"`
	Op            string  `json:"op"`
	Objects       int     `json:"objects"`
	Dims          int     `json:"dims"`
	Relation      string  `json:"relation"`
	Clusters      int     `json:"clusters"`
	AvgResults    float64 `json:"avg_results"`
	NsPerOp       float64 `json:"ns_per_op"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	// Latency distribution of individually timed queries (reorg-churn
	// workloads only; zero for the converged steady-state workloads).
	P50Ns float64 `json:"p50_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
	MaxNs float64 `json:"max_ns,omitempty"`
}

// ConcurrencyResult is one point of the client-goroutine sweep: read-only
// throughput of a converged engine at a given concurrency level.
type ConcurrencyResult struct {
	// Engine is "adaptive" (one partition behind one reader/writer lock —
	// the NewAdaptive locking discipline) or "sharded" (the default
	// partition count).
	Engine        string  `json:"engine"`
	Shards        int     `json:"shards"`
	Goroutines    int     `json:"goroutines"`
	Queries       int64   `json:"queries"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	// Speedup is QueriesPerSec over the engine's 1-goroutine figure.
	Speedup float64 `json:"speedup"`
}

// QueryBenchReport is the document written to BENCH_queries.json.
type QueryBenchReport struct {
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Runs       []QueryBenchResult `json:"runs"`
	// Concurrency is the read-only client-goroutine sweep (shared-lock
	// query path): queries/s at 1,2,4,…  goroutines per engine. Speedup
	// beyond 1.0 requires a multi-core runner.
	Concurrency []ConcurrencyResult `json:"concurrency,omitempty"`
	// Batch is the batched-selection sweep: SearchIDsBatch against its
	// looped single-query equivalent per batch size, plus the disk
	// read-plan row (see BatchBenchResult).
	Batch []BatchBenchResult `json:"batch,omitempty"`
}

// benchWorkload names one standard benchmark scenario.
type benchWorkload struct {
	name        string
	params      cost.Params
	rel         geom.Relation
	selectivity float64 // 0 = point queries
	skewed      bool    // the paper's skewed object distribution (§7.2, Fig. 8)
}

func benchWorkloads() []benchWorkload {
	return []benchWorkload{
		{name: "fig7-memory", params: cost.Memory(), rel: geom.Intersects, selectivity: 5e-3},
		{name: "fig7-disk", params: cost.Disk(), rel: geom.Intersects, selectivity: 5e-3},
		{name: "point-enclosing", params: cost.Memory(), rel: geom.Encloses},
	}
}

// benchConfig is the frozen-schedule core configuration of the converged
// builders: warm-up reorganizes manually, the measured loop never does.
func benchConfig(w benchWorkload, o Options) core.Config {
	return core.Config{
		Dims:       o.Dims,
		Params:     w.params,
		ReorgEvery: 1 << 30,
	}
}

// convergeEngine drives the shared load-and-warm-up pipeline of the
// benchjson builders over any engine: generate and insert the workload's
// objects, run o.Warmup queries with a reorganization round after every
// o.ReorgEvery of them (the schedule Search would follow with the automatic
// trigger frozen), and capture the measurement queries. Keeping one
// pipeline guarantees the query benches and the concurrency sweep measure
// identically-converged databases.
func convergeEngine(w benchWorkload, o Options,
	insertBatch func(ids []uint32, rects []geom.Rect) error,
	search func(q geom.Rect) error,
	reorganize func(),
) ([]geom.Rect, error) {
	objSpec := workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize, Skewed: w.skewed, Seed: o.Seed}
	og, err := workload.NewObjectGen(objSpec)
	if err != nil {
		return nil, err
	}
	ids := make([]uint32, o.Objects)
	rects := make([]geom.Rect, o.Objects)
	for id := range ids {
		ids[id] = uint32(id)
		rects[id] = og.Rect()
	}
	if err := insertBatch(ids, rects); err != nil {
		return nil, err
	}
	size := float32(0)
	if w.selectivity > 0 {
		size, _, err = workload.CalibrateQuerySize(objSpec, w.rel, w.selectivity, o.Seed+99)
		if err != nil {
			return nil, err
		}
	}
	qg, err := workload.NewQueryGen(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + 1})
	if err != nil {
		return nil, err
	}
	q := geom.NewRect(o.Dims)
	for i := 1; i <= o.Warmup; i++ {
		qg.Fill(q)
		if err := search(q); err != nil {
			return nil, err
		}
		if i%o.ReorgEvery == 0 {
			reorganize()
		}
	}
	queries := make([]geom.Rect, 256)
	for i := range queries {
		queries[i] = qg.Rect()
	}
	return queries, nil
}

// buildConverged loads a fresh index with the workload's objects and runs
// the shared warm-up pipeline, leaving a converged index whose measured
// loop performs no maintenance.
func buildConverged(w benchWorkload, o Options) (*core.Index, []geom.Rect, error) {
	ix, err := core.New(benchConfig(w, o))
	if err != nil {
		return nil, nil, err
	}
	queries, err := convergeEngine(w, o,
		func(ids []uint32, rects []geom.Rect) error {
			for k := range ids {
				if err := ix.Insert(ids[k], rects[k]); err != nil {
					return err
				}
			}
			return nil
		},
		func(q geom.Rect) error { return ix.Search(q, w.rel, func(uint32) bool { return true }) },
		ix.Reorganize,
	)
	if err != nil {
		return nil, nil, err
	}
	return ix, queries, nil
}

// RunQueryBench measures every standard workload and returns the report.
func RunQueryBench(o Options) (*QueryBenchReport, error) {
	o.setDefaults()
	rep := &QueryBenchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, w := range benchWorkloads() {
		o.logf("benchjson: building %s (n=%d dims=%d)", w.name, o.Objects, o.Dims)
		ix, queries, err := buildConverged(w, o)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %s: %w", w.name, err)
		}
		var results int64
		ix.ResetMeter()
		for _, q := range queries {
			if err := ix.Search(q, w.rel, func(uint32) bool { return true }); err != nil {
				return nil, err
			}
		}
		results = ix.Meter().Results
		common := QueryBenchResult{
			Workload:   w.name,
			Objects:    o.Objects,
			Dims:       o.Dims,
			Relation:   w.rel.String(),
			Clusters:   ix.Clusters(),
			AvgResults: float64(results) / float64(len(queries)),
		}
		ops := []struct {
			op  string
			run func(b *testing.B)
		}{
			{"SearchIDs", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ix.SearchIDs(queries[i%len(queries)], w.rel); err != nil {
						b.Fatal(err)
					}
				}
			}},
			{"SearchIDsAppend", func(b *testing.B) {
				b.ReportAllocs()
				var buf []uint32
				for i := 0; i < b.N; i++ {
					out, err := ix.SearchIDsAppend(buf[:0], queries[i%len(queries)], w.rel)
					if err != nil {
						b.Fatal(err)
					}
					buf = out
				}
			}},
		}
		for _, op := range ops {
			o.logf("benchjson: measuring %s/%s", w.name, op.op)
			res := testing.Benchmark(op.run)
			r := common
			r.Op = op.op
			r.NsPerOp = float64(res.NsPerOp())
			if r.NsPerOp > 0 {
				r.QueriesPerSec = 1e9 / r.NsPerOp
			}
			r.AllocsPerOp = res.AllocsPerOp()
			r.BytesPerOp = res.AllocedBytesPerOp()
			rep.Runs = append(rep.Runs, r)
		}
	}
	for _, mode := range []struct {
		name      string
		unbounded bool
	}{{"reorg-churn-sync", true}, {"reorg-churn-budgeted", false}} {
		o.logf("benchjson: measuring %s (n=%d dims=%d)", mode.name, o.Objects, o.Dims)
		r, err := runChurnLatency(o, mode.unbounded)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %s: %w", mode.name, err)
		}
		r.Workload = mode.name
		rep.Runs = append(rep.Runs, r)
	}
	if o.Parallel > 0 {
		conc, err := runConcurrencySweep(o)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %w", err)
		}
		rep.Concurrency = conc
	}
	batch, err := runBatchSweep(o)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	rep.Batch = batch
	return rep, nil
}

// runChurnLatency times every query of a reorg-heavy stream (the shared
// runChurnStream regime) and reports the latency distribution — the quantity
// the incremental budgeted scheduler exists to improve over the synchronous
// full pass. Unlike the steady-state workloads, the scenario's schedule is
// fixed (reorganization every 50 queries, hot region shifting every period)
// so the recorded numbers stay comparable across runs regardless of the
// -reorg flag.
func runChurnLatency(o Options, unbounded bool) (QueryBenchResult, error) {
	const (
		churnReorgEvery = 50
		queries         = 2000
	)
	ix, lat, elapsed, err := runChurnStream(o, churnReorgEvery, queries, unbounded)
	if err != nil {
		return QueryBenchResult{}, err
	}
	res := QueryBenchResult{
		Op:         "SearchTimed",
		Objects:    o.Objects,
		Dims:       o.Dims,
		Relation:   geom.Intersects.String(),
		Clusters:   ix.Clusters(),
		AvgResults: float64(ix.Meter().Results) / queries,
		NsPerOp:    float64(elapsed.Nanoseconds()) / queries,
		P50Ns:      float64(lat[queries/2].Nanoseconds()),
		P99Ns:      float64(lat[queries*99/100].Nanoseconds()),
		MaxNs:      float64(lat[queries-1].Nanoseconds()),
	}
	if res.NsPerOp > 0 {
		res.QueriesPerSec = 1e9 / res.NsPerOp
	}
	return res, nil
}

// WriteJSON renders the report as indented JSON.
func (r *QueryBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
