package harness

import (
	"strings"
	"testing"
)

func TestRunRecovery(t *testing.T) {
	o := tinyOptions()
	o.Objects = 600
	o.ShardSweep = []int{1, 4}
	exp, err := RunRecovery(o)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "recovery" || len(exp.Points) != 2 {
		t.Fatalf("experiment %q with %d points, want recovery/2", exp.ID, len(exp.Points))
	}
	// The single-shard point times save/load only: corrupting the one
	// segment would leave no healthy partition for salvage to serve.
	p1 := exp.Points[0]
	if _, ok := p1.Results[phaseSave]; !ok {
		t.Error("1-shard point missing save phase")
	}
	if _, ok := p1.Results[phaseSalvage]; ok {
		t.Error("1-shard point must not run the salvage phase")
	}
	p4 := exp.Points[1]
	for _, phase := range []string{phaseSave, phaseLoad, phaseSalvage, phaseRestore} {
		r, ok := p4.Results[phase]
		if !ok {
			t.Fatalf("4-shard point missing phase %s", phase)
		}
		if r.MeasuredUS <= 0 || r.Partitions != 4 {
			t.Errorf("phase %s implausible result: %+v", phase, r)
		}
	}
	if len(exp.Notes) != 2 || !strings.Contains(exp.Notes[0], "torn=0") {
		t.Errorf("Notes = %v, want crash-sample split with torn=0", exp.Notes)
	}
}
