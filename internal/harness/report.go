package harness

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Point is one x-position of an experiment sweep (a selectivity, a
// dimensionality, a division factor, …) with the per-method results.
type Point struct {
	// Label is the x value rendered for the tables ("5e-05", "16", …).
	Label string
	// X is the numeric x value.
	X float64
	// Results maps method names (MethodSS, …) to their measurements.
	Results map[string]MethodResult
}

// Experiment is the reproduced artifact: an identifier matching DESIGN.md's
// per-experiment index, a title, the swept points, and the method names in
// display order.
type Experiment struct {
	ID      string
	Title   string
	XLabel  string
	Methods []string
	Points  []Point
	// Notes carries free-form observations (speedups, convergence
	// rounds) appended after the tables.
	Notes []string
}

// Result returns the measurement for a method at point i.
func (e *Experiment) Result(i int, method string) (MethodResult, bool) {
	if i < 0 || i >= len(e.Points) {
		return MethodResult{}, false
	}
	r, ok := e.Points[i].Results[method]
	return r, ok
}

// scenarioOf maps a method name to the adaptive engine relevant in a
// scenario section: the memory section shows AC-mem, the disk section
// AC-disk; other methods appear in both.
func scenarioMethods(methods []string, disk bool) []string {
	var out []string
	for _, m := range methods {
		if m == MethodACMem && disk {
			continue
		}
		if m == MethodACDisk && !disk {
			continue
		}
		out = append(out, m)
	}
	return out
}

func displayName(method string) string {
	switch method {
	case MethodACMem, MethodACDisk:
		return "AC"
	default:
		return method
	}
}

// Render prints the experiment in the paper's layout: a chart table with
// per-query times and a data-access table per storage scenario.
func (e *Experiment) Render(w io.Writer) error {
	fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
	for _, disk := range []bool{false, true} {
		scenario := "Memory Storage Scenario"
		if disk {
			scenario = "Disk Storage Scenario"
		}
		methods := scenarioMethods(e.Methods, disk)
		if len(methods) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n-- %s: modeled query execution time [ms] (measured wall µs in parens) --\n", scenario)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		header := []string{e.XLabel}
		for _, m := range methods {
			header = append(header, displayName(m))
		}
		fmt.Fprintln(tw, strings.Join(header, "\t"))
		for _, p := range e.Points {
			row := []string{p.Label}
			for _, m := range methods {
				r, ok := p.Results[m]
				if !ok {
					row = append(row, "-")
					continue
				}
				ms := r.ModeledMemMS
				if disk {
					ms = r.ModeledDiskMS
				}
				row = append(row, fmt.Sprintf("%.3g (%.0f)", ms, r.MeasuredUS))
			}
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\n-- %s: data access --\n", scenario)
		cached := e.hasCache(methods)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		header = []string{e.XLabel}
		for _, m := range methods {
			n := displayName(m)
			header = append(header, n+" parts", n+" expl%", n+" objs%")
			if cached {
				header = append(header, n+" hit%")
			}
		}
		fmt.Fprintln(tw, strings.Join(header, "\t"))
		for _, p := range e.Points {
			row := []string{p.Label}
			for _, m := range methods {
				r, ok := p.Results[m]
				if !ok {
					row = append(row, "-", "-", "-")
					if cached {
						row = append(row, "-")
					}
					continue
				}
				row = append(row,
					fmt.Sprintf("%d", r.Partitions),
					fmt.Sprintf("%.1f", r.ExploredPct),
					fmt.Sprintf("%.1f", r.VerifiedPct))
				if cached {
					row = append(row, cacheHitPct(r))
				}
			}
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if e.hasLatency() {
		fmt.Fprintf(w, "\n-- per-query wall-clock latency [µs] --\n")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		header := []string{e.XLabel}
		for _, m := range e.Methods {
			n := displayName(m)
			header = append(header, n+" p50", n+" p90", n+" p99", n+" max")
		}
		fmt.Fprintln(tw, strings.Join(header, "\t"))
		for _, p := range e.Points {
			row := []string{p.Label}
			for _, m := range e.Methods {
				r, ok := p.Results[m]
				if !ok {
					row = append(row, "-", "-", "-", "-")
					continue
				}
				row = append(row,
					fmt.Sprintf("%.0f", r.P50US),
					fmt.Sprintf("%.0f", r.P90US),
					fmt.Sprintf("%.0f", r.P99US),
					fmt.Sprintf("%.0f", r.MaxUS))
			}
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	for _, n := range e.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

// hasLatency reports whether any result carries a latency distribution.
func (e *Experiment) hasLatency() bool {
	for _, p := range e.Points {
		for _, r := range p.Results {
			if r.MaxUS > 0 {
				return true
			}
		}
	}
	return false
}

// hasCache reports whether any of the given methods saw region-cache
// activity at any point; only then does the data-access table carry the
// hit-rate column.
func (e *Experiment) hasCache(methods []string) bool {
	for _, p := range e.Points {
		for _, m := range methods {
			if r, ok := p.Results[m]; ok && r.CacheHits+r.CacheMisses > 0 {
				return true
			}
		}
	}
	return false
}

// cacheHitPct formats a result's region-cache hit rate, "-" without cache
// activity.
func cacheHitPct(r MethodResult) string {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(r.CacheHits)/float64(total))
}

// CSV writes the experiment as comma-separated values, one line per
// (point, method).
func (e *Experiment) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "experiment,x,method,partitions,explored_pct,verified_pct,modeled_mem_ms,modeled_disk_ms,measured_us,avg_results,p50_us,p90_us,p99_us,max_us,cache_hits,cache_misses"); err != nil {
		return err
	}
	for _, p := range e.Points {
		for _, m := range e.Methods {
			r, ok := p.Results[m]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%.4f,%.4f,%.6f,%.6f,%.1f,%.2f,%.1f,%.1f,%.1f,%.1f,%d,%d\n",
				e.ID, p.Label, m, r.Partitions, r.ExploredPct, r.VerifiedPct,
				r.ModeledMemMS, r.ModeledDiskMS, r.MeasuredUS, r.AvgResults,
				r.P50US, r.P90US, r.P99US, r.MaxUS, r.CacheHits, r.CacheMisses); err != nil {
				return err
			}
		}
	}
	return nil
}
