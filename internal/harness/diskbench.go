package harness

// Disk-scenario query micro-benchmark emitting machine-readable JSON
// (BENCH_disk.json): a converged clustering is checkpointed into the
// paper's on-device layout on a virtual disk, and a repeated-query workload
// then runs against the device through two executors — the seed-era scalar
// engine (one allocation and one region read per explored cluster, virtual
// signature matcher, per-object verification) and the columnar engine
// (signature mirror, decoded-region cache, seek-coalescing readahead,
// batch-kernel verification) across a cache-budget sweep. Each
// configuration measures a cold phase (fresh cache, every region read from
// the device) and, for cached configurations, a warm phase (the working set
// resident). Wall-clock numbers are CPU throughput — the virtual disk
// advances a simulated clock, reported separately as vdisk_seeks and
// vdisk_elapsed_ms, which is where the seek-coalescing gain shows.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"testing"
	"time"

	"accluster/internal/cost"
	"accluster/internal/diskengine"
	"accluster/internal/geom"
	"accluster/internal/store"
	"accluster/internal/vdisk"
)

// DiskBenchRun is one measured (engine, cache size, phase) configuration.
type DiskBenchRun struct {
	// Engine is "seed-scalar" (the pre-overhaul executor, kept as the
	// before-reference) or "columnar" (the block-cache engine).
	Engine string `json:"engine"`
	// CacheBytes is the decoded-region cache budget; -1 when disabled.
	CacheBytes int64 `json:"cache_bytes"`
	// Phase is "cold" (fresh cache, every region read) or "warm" (the
	// query set's working set is resident).
	Phase string `json:"phase"`
	// NsPerOp and QueriesPerSec are medians of three wall-clock runs.
	NsPerOp       float64 `json:"ns_per_op"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	// AllocsPerOp and BytesPerOp are reported for warm phases (measured
	// through testing.Benchmark); -1 on cold phases.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// VdiskSeeks and VdiskElapsedMS describe the simulated device's
	// access pattern over one deterministic pass of the query set.
	VdiskSeeks     int64   `json:"vdisk_seeks"`
	VdiskElapsedMS float64 `json:"vdisk_elapsed_ms"`
	// CacheHits and CacheMisses are the meter's split over that pass.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// AvgResults is the average answer-set size.
	AvgResults float64 `json:"avg_results"`
}

// DiskBenchReport is the document written to BENCH_disk.json.
type DiskBenchReport struct {
	Generated  string         `json:"generated"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Objects    int            `json:"objects"`
	Dims       int            `json:"dims"`
	Clusters   int            `json:"clusters"`
	Queries    int            `json:"queries"`
	Runs       []DiskBenchRun `json:"runs"`
}

// WriteJSON renders the report as indented JSON.
func (r *DiskBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// seedScalarSearch replicates the pre-overhaul disk executor: virtual
// signature matcher per directory entry, one allocating region read per
// explored cluster, scalar per-object verification. It exists as the
// benchmark's before-reference so BENCH_disk.json carries the comparison on
// whatever machine re-runs it.
func seedScalarSearch(dev store.Device, dir []store.DirEntry, dims int, q geom.Rect, rel geom.Relation) (results int64, err error) {
	for _, entry := range dir {
		if !entry.Signature.MatchesQuery(q, rel) {
			continue
		}
		ids, data, err := store.ReadRegion(dev, entry, dims)
		if err != nil {
			return results, err
		}
		for i := range ids {
			if ok, _ := geom.FlatMatches(data, i, q, rel); ok {
				results++
			}
		}
	}
	return results, nil
}

// medianOf3 runs f three times and returns the median of its results,
// stopping at the first error.
func medianOf3(f func() (float64, error)) (float64, error) {
	vals := make([]float64, 3)
	for i := range vals {
		v, err := f()
		if err != nil {
			return 0, err
		}
		vals[i] = v
	}
	sort.Float64s(vals)
	return vals[1], nil
}

// RunDiskBench builds the disk-scenario checkpoint and measures the
// repeated-query workload across engines, cache sizes and phases.
func RunDiskBench(o Options) (*DiskBenchReport, error) {
	o.setDefaults()
	// Cluster under the memory cost model: at benchmark scales the disk
	// model's 15 ms seek term keeps everything in one cluster, which
	// would leave the multi-cluster read path unmeasured. Both executors
	// run the same checkpoint, so the comparison is unaffected.
	ix, queries, err := buildConverged(benchWorkload{
		name:        "disk",
		params:      cost.Memory(),
		rel:         geom.Intersects,
		selectivity: 5e-3,
	}, o)
	if err != nil {
		return nil, fmt.Errorf("diskbench: %w", err)
	}
	// Repeated-query workload: a bounded set replayed over and over — the
	// regime a warm cache exists for.
	if len(queries) > 32 {
		queries = queries[:32]
	}
	disk := vdisk.New(cost.DiskAccessMS, cost.TransferMSPerByte)
	if err := store.Save(ix, disk); err != nil {
		return nil, fmt.Errorf("diskbench: %w", err)
	}
	dir, dims, err := store.ReadDirectory(disk)
	if err != nil {
		return nil, fmt.Errorf("diskbench: %w", err)
	}
	rep := &DiskBenchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Objects:    o.Objects,
		Dims:       o.Dims,
		Clusters:   len(dir),
		Queries:    len(queries),
	}
	nq := float64(len(queries))

	// Before-reference: the seed scalar executor (stateless, cold only).
	o.logf("diskbench: measuring seed-scalar (%d clusters)", len(dir))
	var seedResults int64
	seedNs, err := medianOf3(func() (float64, error) {
		start := time.Now()
		seedResults = 0
		for _, q := range queries {
			n, err := seedScalarSearch(disk, dir, dims, q, geom.Intersects)
			if err != nil {
				return 0, err
			}
			seedResults += n
		}
		return float64(time.Since(start).Nanoseconds()) / nq, nil
	})
	if err != nil {
		return nil, fmt.Errorf("diskbench: %w", err)
	}
	disk.ResetClock()
	for _, q := range queries {
		if _, err := seedScalarSearch(disk, dir, dims, q, geom.Intersects); err != nil {
			return nil, err
		}
	}
	seedStats := disk.Stats()
	rep.Runs = append(rep.Runs, DiskBenchRun{
		Engine:         "seed-scalar",
		CacheBytes:     -1,
		Phase:          "cold",
		NsPerOp:        seedNs,
		QueriesPerSec:  1e9 / seedNs,
		AllocsPerOp:    -1,
		BytesPerOp:     -1,
		VdiskSeeks:     seedStats.Seeks,
		VdiskElapsedMS: seedStats.ElapsedMS,
		AvgResults:     float64(seedResults) / nq,
	})

	for _, cacheBytes := range []int64{-1, o.DiskCache / 16, o.DiskCache} {
		if cacheBytes == 0 {
			continue
		}
		cfg := diskengine.Config{CacheBytes: cacheBytes}
		o.logf("diskbench: measuring columnar cache=%d", cacheBytes)

		// Cold: a fresh engine per pass, so every region comes off the
		// device (and the coalescer plans every read).
		var buf []uint32
		coldNs, err := medianOf3(func() (float64, error) {
			eng, err := diskengine.OpenConfig(disk, cfg)
			if err != nil {
				return 0, err
			}
			start := time.Now()
			for _, q := range queries {
				if buf, err = eng.SearchIDsAppend(buf[:0], q, geom.Intersects); err != nil {
					return 0, err
				}
			}
			return float64(time.Since(start).Nanoseconds()) / nq, nil
		})
		if err != nil {
			return nil, fmt.Errorf("diskbench: %w", err)
		}
		eng, err := diskengine.OpenConfig(disk, cfg)
		if err != nil {
			return nil, err
		}
		disk.ResetClock()
		for _, q := range queries {
			if buf, err = eng.SearchIDsAppend(buf[:0], q, geom.Intersects); err != nil {
				return nil, err
			}
		}
		coldStats := disk.Stats()
		coldMeter := eng.Meter()
		rep.Runs = append(rep.Runs, DiskBenchRun{
			Engine:         "columnar",
			CacheBytes:     cacheBytes,
			Phase:          "cold",
			NsPerOp:        coldNs,
			QueriesPerSec:  1e9 / coldNs,
			AllocsPerOp:    -1,
			BytesPerOp:     -1,
			VdiskSeeks:     coldStats.Seeks,
			VdiskElapsedMS: coldStats.ElapsedMS,
			CacheHits:      coldMeter.CacheHits,
			CacheMisses:    coldMeter.CacheMisses,
			AvgResults:     float64(coldMeter.Results) / nq,
		})

		if cacheBytes < 0 {
			continue // no warm phase without a cache
		}
		// Warm: the engine above already replayed the set once; measure
		// steady-state repetition (testing.Benchmark for allocs/op).
		eng.ResetMeter()
		disk.ResetClock()
		for _, q := range queries {
			if buf, err = eng.SearchIDsAppend(buf[:0], q, geom.Intersects); err != nil {
				return nil, err
			}
		}
		warmStats := disk.Stats()
		warmMeter := eng.Meter()
		var allocs, bytesPer int64
		warmNs, err := medianOf3(func() (float64, error) {
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := eng.SearchIDsAppend(buf[:0], queries[i%len(queries)], geom.Intersects)
					if err != nil {
						b.Fatal(err)
					}
					buf = out
				}
			})
			allocs, bytesPer = res.AllocsPerOp(), res.AllocedBytesPerOp()
			return float64(res.NsPerOp()), nil
		})
		if err != nil {
			return nil, fmt.Errorf("diskbench: %w", err)
		}
		rep.Runs = append(rep.Runs, DiskBenchRun{
			Engine:         "columnar",
			CacheBytes:     cacheBytes,
			Phase:          "warm",
			NsPerOp:        warmNs,
			QueriesPerSec:  1e9 / warmNs,
			AllocsPerOp:    allocs,
			BytesPerOp:     bytesPer,
			VdiskSeeks:     warmStats.Seeks,
			VdiskElapsedMS: warmStats.ElapsedMS,
			CacheHits:      warmMeter.CacheHits,
			CacheMisses:    warmMeter.CacheMisses,
			AvgResults:     float64(warmMeter.Results) / nq,
		})
	}
	return rep, nil
}
