package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/shard"
	"accluster/internal/workload"
)

// MethodACPar is the sharded parallel adaptive engine.
const MethodACPar = "AC-par"

// shardEngine adapts shard.Engine to the harness Engine interface.
type shardEngine struct{ *shard.Engine }

func (e shardEngine) Partitions() int { return e.Clusters() }

// measureParallel runs the query set against e from `workers` concurrent
// client goroutines (each replaying a disjoint chunk) and summarizes the
// counters. MeasuredUS is wall time divided by total queries — the effective
// per-query latency under parallel load, i.e. the inverse throughput — while
// the modeled times still describe total sequential work per query.
func measureParallel(e Engine, queries []geom.Rect, rel geom.Relation, workers int) (MethodResult, error) {
	e.ResetMeter()
	chunk := (len(queries) + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, qs []geom.Rect) {
			defer wg.Done()
			for _, q := range qs {
				if err := e.Search(q, rel, func(uint32) bool { return true }); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, queries[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return MethodResult{}, err
		}
	}
	m := e.Meter()
	nq := float64(len(queries))
	objBytes := geom.ObjectBytes(queries[0].Dims())
	res := MethodResult{
		Partitions:    e.Partitions(),
		ModeledMemMS:  m.ModelMSPerQuery(cost.Memory(), objBytes),
		ModeledDiskMS: m.ModelMSPerQuery(cost.Disk(), objBytes),
		MeasuredUS:    float64(elapsed.Microseconds()) / nq,
		AvgResults:    float64(m.Results) / nq,
	}
	if e.Partitions() > 0 {
		res.ExploredPct = 100 * float64(m.Explorations) / nq / float64(e.Partitions())
	}
	if e.Len() > 0 {
		res.VerifiedPct = 100 * float64(m.ObjectsVerified) / nq / float64(e.Len())
	}
	return res, nil
}

// RunSharded measures the sharded parallel engine against the single-mutex
// adaptive index: the shard count is swept (1 means one index behind one
// mutex — the pre-sharding engine) and every point is measured under
// concurrent client load, so the table's measured wall times are inverse
// throughput. Modeled times stay flat across shard counts by design — the
// total work per query is unchanged; partitioning buys parallelism, not
// fewer verifications.
func RunSharded(o Options) (*Experiment, error) {
	o.setDefaults()
	clients := runtime.GOMAXPROCS(0)
	exp := &Experiment{
		ID:      "sharded",
		Title:   fmt.Sprintf("parallel query throughput by shard count (%d client goroutines)", clients),
		XLabel:  "shards",
		Methods: []string{MethodACPar},
	}
	objSpec := workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize, Seed: o.Seed}
	size, achieved, err := workload.CalibrateQuerySize(objSpec, geom.Intersects, o.Target, o.Seed+100)
	if err != nil {
		return nil, err
	}
	o.logf("sharded: selectivity %.2g -> query size %.4f (estimated %.2g)", o.Target, size, achieved)
	qspec := workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + 3}
	warmQs, err := genQueries(qspec, o.Warmup)
	if err != nil {
		return nil, err
	}
	measQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: qspec.Seed + 1}, o.Queries*clients)
	if err != nil {
		return nil, err
	}

	var baseUS float64
	for _, shards := range o.ShardSweep {
		e, err := shard.New(shard.Config{
			Shards: shards,
			Core:   core.Config{Dims: o.Dims, Params: cost.Memory(), ReorgEvery: o.ReorgEvery},
		})
		if err != nil {
			return nil, err
		}
		eng := shardEngine{e}
		o.logf("sharded: loading %d objects into %d shards", o.Objects, e.Shards())
		if err := load(map[string]Engine{MethodACPar: eng}, objSpec, o.Objects); err != nil {
			return nil, err
		}
		if err := warmup(eng, warmQs, geom.Intersects); err != nil {
			return nil, err
		}
		r, err := measureParallel(eng, measQs, geom.Intersects, clients)
		if err != nil {
			return nil, err
		}
		point := Point{Label: fmt.Sprintf("%d", e.Shards()), X: float64(e.Shards()),
			Results: map[string]MethodResult{MethodACPar: r}}
		exp.Points = append(exp.Points, point)
		qps := 1e6 / r.MeasuredUS
		if baseUS == 0 {
			baseUS = r.MeasuredUS
			exp.Notes = append(exp.Notes, fmt.Sprintf("%d shard(s): %.0f queries/s", e.Shards(), qps))
		} else {
			exp.Notes = append(exp.Notes, fmt.Sprintf("%d shards: %.0f queries/s (%.2fx over 1 shard)",
				e.Shards(), qps, baseUS/r.MeasuredUS))
		}
		o.logf("sharded: %d shards: %.1f µs/query under load (%.0f q/s)", e.Shards(), r.MeasuredUS, qps)
	}
	return exp, nil
}
