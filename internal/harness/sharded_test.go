package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSharded(t *testing.T) {
	o := tinyOptions()
	o.ShardSweep = []int{1, 4}
	exp, err := RunSharded(o)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "sharded" || len(exp.Points) != 2 {
		t.Fatalf("experiment %q with %d points, want sharded/2", exp.ID, len(exp.Points))
	}
	if exp.Points[0].Label != "1" || exp.Points[1].Label != "4" {
		t.Errorf("point labels %q/%q, want 1/4", exp.Points[0].Label, exp.Points[1].Label)
	}
	for i, p := range exp.Points {
		r, ok := p.Results[MethodACPar]
		if !ok {
			t.Fatalf("point %d missing %s", i, MethodACPar)
		}
		if r.MeasuredUS <= 0 || r.ModeledMemMS <= 0 || r.Partitions < 1 {
			t.Errorf("point %d implausible result: %+v", i, r)
		}
		if r.AvgResults <= 0 {
			t.Errorf("point %d: queries matched nothing (AvgResults=%g)", i, r.AvgResults)
		}
	}
	if len(exp.Notes) != 2 || !strings.Contains(exp.Notes[1], "queries/s") {
		t.Errorf("Notes = %v, want per-point throughput notes", exp.Notes)
	}
	var buf bytes.Buffer
	if err := exp.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "shards") {
		t.Error("rendered report lacks the shards column")
	}
	var csv bytes.Buffer
	if err := exp.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "sharded,"); got != 2 {
		t.Errorf("CSV has %d sharded rows, want 2", got)
	}
}

func TestRunShardedDispatch(t *testing.T) {
	o := tinyOptions()
	o.Objects = 800
	o.Warmup = 100
	o.Queries = 10
	o.ShardSweep = []int{2}
	exp, err := Run("sharded", o)
	if err != nil || exp.ID != "sharded" {
		t.Fatalf("dispatch: %v", err)
	}
}
