package harness

import (
	"bytes"
	"strings"
	"testing"
)

func chartExperiment() *Experiment {
	return &Experiment{
		ID:      "fig7",
		Title:   "test chart",
		XLabel:  "selectivity",
		Methods: []string{MethodSS, MethodRS, MethodACMem, MethodACDisk},
		Points: []Point{
			{Label: "5e-5", X: 5e-5, Results: map[string]MethodResult{
				MethodSS:     {ModeledMemMS: 8.4, ModeledDiskMS: 149},
				MethodRS:     {ModeledMemMS: 6.6, ModeledDiskMS: 1610},
				MethodACMem:  {ModeledMemMS: 5.1, ModeledDiskMS: 500},
				MethodACDisk: {ModeledMemMS: 7.9, ModeledDiskMS: 149},
			}},
			{Label: "5e-1", X: 5e-1, Results: map[string]MethodResult{
				MethodSS:     {ModeledMemMS: 8.4, ModeledDiskMS: 149},
				MethodRS:     {ModeledMemMS: 13.6, ModeledDiskMS: 3300},
				MethodACMem:  {ModeledMemMS: 8.6, ModeledDiskMS: 600},
				MethodACDisk: {ModeledMemMS: 8.4, ModeledDiskMS: 149},
			}},
		},
	}
}

func TestRenderChartMemoryLinear(t *testing.T) {
	var buf bytes.Buffer
	if err := chartExperiment().RenderChart(&buf, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"memory scenario", "linear scale", "S=SS", "R=RS", "A=AC", "5e-5", "5e-1"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The AC-disk series must not appear in the memory chart (only
	// AC-mem renders as 'A' there).
	lines := strings.Split(out, "\n")
	if len(lines) < chartHeight {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
	// Glyph presence: all three glyphs must be plotted somewhere.
	for _, g := range []string{"S", "R", "A"} {
		if !strings.Contains(out, g) {
			t.Errorf("glyph %s not plotted", g)
		}
	}
}

func TestRenderChartDiskLog(t *testing.T) {
	var buf bytes.Buffer
	if err := chartExperiment().RenderChart(&buf, true, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "disk scenario") || !strings.Contains(out, "log scale") {
		t.Errorf("chart header wrong:\n%s", out)
	}
	// Axis bounds reflect the extreme disk values.
	if !strings.Contains(out, "149") {
		t.Errorf("lower bound missing:\n%s", out)
	}
}

func TestRenderChartErrors(t *testing.T) {
	empty := &Experiment{Methods: []string{MethodSS}}
	if err := empty.RenderChart(&bytes.Buffer{}, false, false); err == nil {
		t.Error("empty experiment must fail")
	}
	zero := &Experiment{
		Methods: []string{MethodSS},
		Points:  []Point{{Label: "x", Results: map[string]MethodResult{MethodSS: {}}}},
	}
	if err := zero.RenderChart(&bytes.Buffer{}, false, false); err == nil {
		t.Error("all-zero values must fail")
	}
}

func TestRenderChartEqualValues(t *testing.T) {
	e := &Experiment{
		Title:   "flat",
		Methods: []string{MethodSS},
		Points: []Point{
			{Label: "a", Results: map[string]MethodResult{MethodSS: {ModeledMemMS: 5}}},
			{Label: "b", Results: map[string]MethodResult{MethodSS: {ModeledMemMS: 5}}},
		},
	}
	var buf bytes.Buffer
	if err := e.RenderChart(&buf, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "S") {
		t.Error("flat series must still plot")
	}
}
