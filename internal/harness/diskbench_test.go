package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunDiskBenchShape smoke-tests the disk benchmark at a tiny scale: the
// report must carry the seed-scalar reference plus cold and warm columnar
// runs per cache size, the warm default-cache run must hit for every
// exploration without touching the device, and the cold coalesced runs must
// seek no more than the seed executor.
func TestRunDiskBenchShape(t *testing.T) {
	o := tinyOptions()
	o.Objects = 4000
	o.Warmup = 300
	o.DiskCache = 8 << 20
	rep, err := RunDiskBench(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clusters < 2 {
		t.Fatalf("checkpoint must be multi-cluster, got %d", rep.Clusters)
	}
	var seed, coldNoCache, warmDefault *DiskBenchRun
	for i := range rep.Runs {
		r := &rep.Runs[i]
		switch {
		case r.Engine == "seed-scalar":
			seed = r
		case r.Engine == "columnar" && r.CacheBytes == -1 && r.Phase == "cold":
			coldNoCache = r
		case r.Engine == "columnar" && r.CacheBytes == o.DiskCache && r.Phase == "warm":
			warmDefault = r
		}
	}
	if seed == nil || coldNoCache == nil || warmDefault == nil {
		t.Fatalf("missing runs: %+v", rep.Runs)
	}
	if seed.NsPerOp <= 0 || coldNoCache.NsPerOp <= 0 || warmDefault.NsPerOp <= 0 {
		t.Fatal("unmeasured runs")
	}
	// Identical answers across executors.
	if seed.AvgResults != coldNoCache.AvgResults || seed.AvgResults != warmDefault.AvgResults {
		t.Fatalf("avg results differ: seed %g cold %g warm %g", seed.AvgResults, coldNoCache.AvgResults, warmDefault.AvgResults)
	}
	// Seek coalescing: the cold columnar engine never seeks more than the
	// per-cluster seed executor.
	if coldNoCache.VdiskSeeks > seed.VdiskSeeks {
		t.Fatalf("coalesced cold run seeks more than seed: %d > %d", coldNoCache.VdiskSeeks, seed.VdiskSeeks)
	}
	// Warm default cache: everything hits, nothing reaches the device.
	if warmDefault.CacheMisses != 0 || warmDefault.CacheHits == 0 {
		t.Fatalf("warm run missed: %+v", warmDefault)
	}
	if warmDefault.VdiskSeeks != 0 || warmDefault.VdiskElapsedMS != 0 {
		t.Fatalf("warm run touched the device: %+v", warmDefault)
	}
	if !raceEnabled && warmDefault.AllocsPerOp != 0 {
		t.Fatalf("warm hit path allocates %d/op, want 0", warmDefault.AllocsPerOp)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seed-scalar", "columnar", "vdisk_seeks", "cache_hits"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}
