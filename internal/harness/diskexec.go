package harness

import (
	"fmt"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/diskengine"
	"accluster/internal/geom"
	"accluster/internal/store"
	"accluster/internal/vdisk"
	"accluster/internal/workload"
)

// RunDiskExec (E16) executes the disk storage scenario end to end instead of
// modeling it from counters: the adaptive index is clustered under the disk
// cost model, checkpointed into the paper's on-device layout on a virtual
// disk (15 ms seek, 20 MB/s transfer), and the query stream then *runs
// against the device* — the virtual clock accumulates simulated I/O time
// from the actual access pattern. A single-cluster checkpoint of the same
// data serves as the sequential-scan reference. The experiment also
// cross-checks that the executed time agrees with the counter-based model
// (they must, since the layout is sequential per cluster).
func RunDiskExec(o Options) (*Experiment, error) {
	o.setDefaults()
	exp := &Experiment{
		ID:      "disk-exec",
		Title:   "disk scenario executed on a virtual disk (checkpointed layout)",
		XLabel:  "selectivity",
		Methods: []string{MethodSS, MethodACDisk},
	}
	objSpec := workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize, Seed: o.Seed}

	for pi, sel := range o.Selectivities {
		size, _, err := workload.CalibrateQuerySize(objSpec, geom.Intersects, sel, o.Seed+900)
		if err != nil {
			return nil, err
		}
		warmQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + int64(pi)*29}, o.Warmup)
		if err != nil {
			return nil, err
		}
		measQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + int64(pi)*29 + 1}, o.Queries)
		if err != nil {
			return nil, err
		}

		// Cluster in memory under the disk cost model, then checkpoint.
		ix, err := core.New(core.Config{Dims: o.Dims, Params: cost.Disk(), ReorgEvery: o.ReorgEvery})
		if err != nil {
			return nil, err
		}
		if err := load(map[string]Engine{MethodACDisk: coreEngine{ix}}, objSpec, o.Objects); err != nil {
			return nil, err
		}
		if err := warmup(coreEngine{ix}, warmQs, geom.Intersects); err != nil {
			return nil, err
		}
		point := Point{Label: fmt.Sprintf("%.0e", sel), X: sel, Results: map[string]MethodResult{}}

		run := func(ixToSave *core.Index) (MethodResult, float64, error) {
			disk := vdisk.New(cost.DiskAccessMS, cost.TransferMSPerByte)
			if err := store.Save(ixToSave, disk); err != nil {
				return MethodResult{}, 0, err
			}
			// The decoded-region cache is disabled here: this experiment
			// cross-checks the executed I/O time against the counter
			// model, so every exploration must really touch the device.
			// Seek-coalescing readahead stays on — it changes the access
			// pattern and the counters consistently. The cache-size
			// story is the disk benchmark's (RunDiskBench).
			eng, err := diskengine.OpenConfig(disk, diskengine.Config{CacheBytes: -1})
			if err != nil {
				return MethodResult{}, 0, err
			}
			disk.ResetClock()
			for _, q := range measQs {
				if err := eng.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
					return MethodResult{}, 0, err
				}
			}
			m := eng.Meter()
			nq := float64(len(measQs))
			execMS := disk.ElapsedMS() / nq
			res := MethodResult{
				Partitions:    eng.Clusters(),
				ModeledMemMS:  m.ModelMSPerQuery(cost.Memory(), geom.ObjectBytes(o.Dims)),
				ModeledDiskMS: m.ModelMSPerQuery(cost.Disk(), geom.ObjectBytes(o.Dims)),
				AvgResults:    float64(m.Results) / nq,
			}
			if eng.Clusters() > 0 {
				res.ExploredPct = 100 * float64(m.Explorations) / nq / float64(eng.Clusters())
			}
			if eng.Len() > 0 {
				res.VerifiedPct = 100 * float64(m.ObjectsVerified) / nq / float64(eng.Len())
			}
			// Report the executed virtual time in the measured slot
			// (µs) so it prints alongside the modeled value.
			res.MeasuredUS = execMS * 1000
			return res, execMS, nil
		}

		acRes, acExecMS, err := run(ix)
		if err != nil {
			return nil, err
		}
		point.Results[MethodACDisk] = acRes

		// Sequential-scan reference: the same objects in one cluster
		// (an index checkpointed before any query has only the root).
		ssIx, err := core.New(core.Config{Dims: o.Dims, Params: cost.Disk(), ReorgEvery: o.ReorgEvery})
		if err != nil {
			return nil, err
		}
		if err := load(map[string]Engine{MethodSS: coreEngine{ssIx}}, objSpec, o.Objects); err != nil {
			return nil, err
		}
		ssRes, ssExecMS, err := run(ssIx)
		if err != nil {
			return nil, err
		}
		point.Results[MethodSS] = ssRes

		exp.Notes = append(exp.Notes, fmt.Sprintf(
			"%.0e: executed %.0f ms/query (AC, %d clusters) vs %.0f ms/query (scan); counter model said %.0f vs %.0f",
			sel, acExecMS, acRes.Partitions, ssExecMS, acRes.ModeledDiskMS, ssRes.ModeledDiskMS))
		exp.Points = append(exp.Points, point)
	}
	return exp, nil
}
