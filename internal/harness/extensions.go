package harness

import (
	"fmt"
	"time"

	"accluster/internal/geom"
	"accluster/internal/workload"
)

// Extension experiments beyond the paper's published charts (DESIGN.md E13,
// E14). The paper's §7 evaluates intersection and point-enclosing queries;
// its problem statement also covers containment and enclosure selections and
// demands support for "frequent updates" — these two experiments close that
// gap.

// RunRelationSweep (E13) compares the three spatial relations at a fixed
// intersection-equivalent query size, per method. Enclosure queries are the
// most selective (the signature's start/end grouping prunes them best);
// containment sits between enclosure and intersection.
func RunRelationSweep(o Options) (*Experiment, error) {
	o.setDefaults()
	exp := &Experiment{
		ID:      "relations",
		Title:   "spatial relations compared (intersection / containment / enclosure)",
		XLabel:  "relation",
		Methods: []string{MethodSS, MethodRS, MethodACMem, MethodACDisk},
	}
	objSpec := workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize, Seed: o.Seed}
	size, _, err := workload.CalibrateQuerySize(objSpec, geom.Intersects, o.Target, o.Seed+600)
	if err != nil {
		return nil, err
	}
	relations := []geom.Relation{geom.Intersects, geom.ContainedBy, geom.Encloses}
	// Containment queries need room to contain objects; reuse the same
	// size and let the observed result counts differ — the comparison is
	// about pruning behaviour, not matched cardinality.
	for _, rel := range relations {
		warmQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + 61}, o.Warmup)
		if err != nil {
			return nil, err
		}
		measQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + 62}, o.Queries)
		if err != nil {
			return nil, err
		}
		point := Point{Label: rel.String(), X: float64(rel), Results: map[string]MethodResult{}}
		for _, m := range exp.Methods {
			e, err := newEngine(m, o.Dims, o.ReorgEvery)
			if err != nil {
				return nil, err
			}
			o.logf("relations: loading %d objects into %s for %v", o.Objects, m, rel)
			if err := load(map[string]Engine{m: e}, objSpec, o.Objects); err != nil {
				return nil, err
			}
			if m == MethodACMem || m == MethodACDisk {
				if err := warmup(e, warmQs, rel); err != nil {
					return nil, err
				}
			}
			r, err := measure(e, measQs, rel)
			if err != nil {
				return nil, err
			}
			point.Results[m] = r
		}
		exp.Points = append(exp.Points, point)
	}
	return exp, nil
}

// RunBaselines (E15) adds the X-tree — the supernode approach the paper's
// related work discusses (§2) — to the selectivity sweep next to SS, R* and
// AC. In high dimensions with extended objects, low-overlap splits become
// impossible and the X-tree degenerates toward few huge supernodes, i.e.
// sequential scan with tree overhead.
func RunBaselines(o Options) (*Experiment, error) {
	o.setDefaults()
	exp := &Experiment{
		ID:      "baselines",
		Title:   "all access methods incl. X-tree (uniform workload)",
		XLabel:  "selectivity",
		Methods: []string{MethodSS, MethodRS, MethodXT, MethodACMem},
	}
	objSpec := workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize, Seed: o.Seed}
	static := map[string]Engine{}
	for _, m := range []string{MethodSS, MethodRS, MethodXT} {
		e, err := newEngine(m, o.Dims, o.ReorgEvery)
		if err != nil {
			return nil, err
		}
		static[m] = e
	}
	o.logf("baselines: loading %d objects x %d dims into SS, RS, XT", o.Objects, o.Dims)
	if err := load(static, objSpec, o.Objects); err != nil {
		return nil, err
	}
	for pi, sel := range o.Selectivities {
		size, _, err := workload.CalibrateQuerySize(objSpec, geom.Intersects, sel, o.Seed+800)
		if err != nil {
			return nil, err
		}
		warmQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + int64(pi)*23}, o.Warmup)
		if err != nil {
			return nil, err
		}
		measQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + int64(pi)*23 + 1}, o.Queries)
		if err != nil {
			return nil, err
		}
		point := Point{Label: fmt.Sprintf("%.0e", sel), X: sel, Results: map[string]MethodResult{}}
		for name, e := range static {
			r, err := measure(e, measQs, geom.Intersects)
			if err != nil {
				return nil, err
			}
			point.Results[name] = r
		}
		ac, err := newEngine(MethodACMem, o.Dims, o.ReorgEvery)
		if err != nil {
			return nil, err
		}
		if err := load(map[string]Engine{MethodACMem: ac}, objSpec, o.Objects); err != nil {
			return nil, err
		}
		if err := warmup(ac, warmQs, geom.Intersects); err != nil {
			return nil, err
		}
		r, err := measure(ac, measQs, geom.Intersects)
		if err != nil {
			return nil, err
		}
		point.Results[MethodACMem] = r
		exp.Points = append(exp.Points, point)
	}
	if xt, ok := static[MethodXT].(xtreeEngine); ok {
		exp.Notes = append(exp.Notes, fmt.Sprintf(
			"X-tree built %d nodes of which %d supernodes", xt.Nodes(), xt.Supernodes()))
	}
	return exp, nil
}

// RunUpdates (E14) interleaves object insertions and deletions with the
// query stream (10% churn between measurement rounds) to verify the
// clustering absorbs frequent updates: answers stay exact (tested
// elsewhere), clusters stay bounded, and per-query cost stays near the
// static case. The X axis is the churn round.
func RunUpdates(o Options) (*Experiment, error) {
	o.setDefaults()
	const rounds = 6
	exp := &Experiment{
		ID:      "updates",
		Title:   "query performance under continuous updates (10% churn per round)",
		XLabel:  "round",
		Methods: []string{MethodACMem},
	}
	objSpec := workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize, Seed: o.Seed}
	size, _, err := workload.CalibrateQuerySize(objSpec, geom.Intersects, o.Target, o.Seed+700)
	if err != nil {
		return nil, err
	}
	e, err := newEngine(MethodACMem, o.Dims, o.ReorgEvery)
	if err != nil {
		return nil, err
	}
	if err := load(map[string]Engine{MethodACMem: e}, objSpec, o.Objects); err != nil {
		return nil, err
	}
	ce := e.(coreEngine)
	warmQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + 71}, o.Warmup)
	if err != nil {
		return nil, err
	}
	if err := warmup(e, warmQs, geom.Intersects); err != nil {
		return nil, err
	}
	og, err := workload.NewObjectGen(workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize, Seed: o.Seed + 72})
	if err != nil {
		return nil, err
	}
	nextID := uint32(o.Objects)
	churn := o.Objects / 10
	r := geom.NewRect(o.Dims)
	var updateNS int64
	for round := 1; round <= rounds; round++ {
		if round > 1 {
			start := time.Now()
			for k := 0; k < churn; k++ {
				ce.Index.Delete(nextID - uint32(o.Objects)) // oldest live id
				og.Fill(r)
				if err := ce.Insert(nextID, r); err != nil {
					return nil, err
				}
				nextID++
			}
			updateNS = time.Since(start).Nanoseconds() / int64(2*churn)
		}
		measQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + 73 + int64(round)}, o.Queries)
		if err != nil {
			return nil, err
		}
		res, err := measure(e, measQs, geom.Intersects)
		if err != nil {
			return nil, err
		}
		exp.Points = append(exp.Points, Point{
			Label:   fmt.Sprintf("%d", round),
			X:       float64(round),
			Results: map[string]MethodResult{MethodACMem: res},
		})
		if round > 1 {
			exp.Notes = append(exp.Notes, fmt.Sprintf(
				"round %d: %d clusters after churn, avg update %d ns", round, res.Partitions, updateNS))
		}
	}
	return exp, nil
}
