//go:build !race

package harness

// raceEnabled reports whether the race detector instruments this build; its
// instrumentation allocates, so allocation-count assertions only hold
// without it.
const raceEnabled = false
