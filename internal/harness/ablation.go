package harness

import (
	"fmt"
	"math"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/workload"
)

// RunAblationGrouping isolates the paper's second contribution (E10): the
// signature grouping criterion versus classical minimum bounding in all
// dimensions, with the cost-based reorganization held identical. Two
// workload regimes are swept:
//
//   - "free": interval sizes uniform in [0, MaxObjSize] — small objects
//     exist, so region containment can descend and the two criteria compete;
//   - "ext": sizes uniform in [MaxObjSize/2, MaxObjSize] — every object is
//     genuinely extended (the paper's range-subscription setting). Objects
//     straddle every sub-region boundary, minimum bounding cannot separate
//     them, and only the start/end signature criterion keeps clustering.
func RunAblationGrouping(o Options) (*Experiment, error) {
	o.setDefaults()
	exp := &Experiment{
		ID:      "ablation-grouping",
		Title:   "signature grouping vs minimum-bounding grouping (same cost model)",
		XLabel:  "workload",
		Methods: []string{MethodACMem, MethodMBB},
	}
	regimes := []struct {
		name    string
		minSize float32
	}{
		{"free", 0},
		{"ext", o.MaxObjSize / 2},
	}
	for ri, regime := range regimes {
		objSpec := workload.ObjectSpec{
			Dims: o.Dims, MaxSize: o.MaxObjSize, MinSize: regime.minSize, Seed: o.Seed,
		}
		for pi, sel := range o.Selectivities {
			size, _, err := workload.CalibrateQuerySize(objSpec, geom.Intersects, sel, o.Seed+300+int64(ri))
			if err != nil {
				return nil, err
			}
			warmQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + int64(pi)*17}, o.Warmup)
			if err != nil {
				return nil, err
			}
			measQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + int64(pi)*17 + 1}, o.Queries)
			if err != nil {
				return nil, err
			}
			point := Point{
				Label:   fmt.Sprintf("%s %.0e", regime.name, sel),
				X:       sel,
				Results: map[string]MethodResult{},
			}
			for _, m := range exp.Methods {
				e, err := newEngine(m, o.Dims, o.ReorgEvery)
				if err != nil {
					return nil, err
				}
				if err := load(map[string]Engine{m: e}, objSpec, o.Objects); err != nil {
					return nil, err
				}
				if err := warmup(e, warmQs, geom.Intersects); err != nil {
					return nil, err
				}
				r, err := measure(e, measQs, geom.Intersects)
				if err != nil {
					return nil, err
				}
				point.Results[m] = r
			}
			if regime.name == "ext" {
				ac, mbb := point.Results[MethodACMem], point.Results[MethodMBB]
				exp.Notes = append(exp.Notes, fmt.Sprintf(
					"ext %.0e: AC %d clusters / %.1f%% verified vs MBB %d / %.1f%%",
					sel, ac.Partitions, ac.VerifiedPct, mbb.Partitions, mbb.VerifiedPct))
			}
			exp.Points = append(exp.Points, point)
		}
	}
	return exp, nil
}

// RunAblationDivision sweeps the clustering function's division factor f
// (E11): larger f yields finer candidates but more statistics to maintain
// (§4.2 discusses the trade-off; §6 fixes f=4).
func RunAblationDivision(o Options) (*Experiment, error) {
	o.setDefaults()
	factors := []int{2, 3, 4, 6, 8}
	exp := &Experiment{
		ID:      "ablation-f",
		Title:   "division factor trade-off (adaptive index, memory scenario)",
		XLabel:  "f",
		Methods: []string{MethodACMem},
	}
	objSpec := workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize, Seed: o.Seed}
	sel := 5e-4
	size, _, err := workload.CalibrateQuerySize(objSpec, geom.Intersects, sel, o.Seed+400)
	if err != nil {
		return nil, err
	}
	warmQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + 41}, o.Warmup)
	if err != nil {
		return nil, err
	}
	measQs, err := genQueries(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + 42}, o.Queries)
	if err != nil {
		return nil, err
	}
	for _, f := range factors {
		ix, err := core.New(core.Config{Dims: o.Dims, Params: cost.Memory(), ReorgEvery: o.ReorgEvery, DivisionFactor: f})
		if err != nil {
			return nil, err
		}
		e := coreEngine{ix}
		if err := load(map[string]Engine{MethodACMem: e}, objSpec, o.Objects); err != nil {
			return nil, err
		}
		if err := warmup(e, warmQs, geom.Intersects); err != nil {
			return nil, err
		}
		r, err := measure(e, measQs, geom.Intersects)
		if err != nil {
			return nil, err
		}
		exp.Points = append(exp.Points, Point{
			Label:   fmt.Sprintf("%d", f),
			X:       float64(f),
			Results: map[string]MethodResult{MethodACMem: r},
		})
	}
	return exp, nil
}

// RunConvergence tracks the clustering across reorganization rounds (E12).
// The paper reports that with a stable query distribution the process
// reaches a stable state in fewer than 10 reorganization steps.
func RunConvergence(o Options) (*Experiment, error) {
	o.setDefaults()
	const rounds = 15
	exp := &Experiment{
		ID:      "convergence",
		Title:   "clustering convergence across reorganization rounds",
		XLabel:  "round",
		Methods: []string{MethodACMem},
	}
	objSpec := workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize, Seed: o.Seed}
	sel := 5e-4
	size, _, err := workload.CalibrateQuerySize(objSpec, geom.Intersects, sel, o.Seed+500)
	if err != nil {
		return nil, err
	}
	ix, err := core.New(core.Config{Dims: o.Dims, Params: cost.Memory(), ReorgEvery: o.ReorgEvery})
	if err != nil {
		return nil, err
	}
	e := coreEngine{ix}
	if err := load(map[string]Engine{MethodACMem: e}, objSpec, o.Objects); err != nil {
		return nil, err
	}
	qg, err := workload.NewQueryGen(workload.QuerySpec{Dims: o.Dims, Size: size, Seed: o.Seed + 51})
	if err != nil {
		return nil, err
	}
	stableAt := -1
	prev := ix.Clusters()
	for round := 1; round <= rounds; round++ {
		batch := make([]geom.Rect, o.ReorgEvery)
		for i := range batch {
			batch[i] = qg.Rect()
		}
		r, err := measure(e, batch, geom.Intersects)
		if err != nil {
			return nil, err
		}
		exp.Points = append(exp.Points, Point{
			Label:   fmt.Sprintf("%d", round),
			X:       float64(round),
			Results: map[string]MethodResult{MethodACMem: r},
		})
		cur := ix.Clusters()
		if stableAt < 0 && round > 1 {
			change := math.Abs(float64(cur-prev)) / math.Max(1, float64(prev))
			if change < 0.02 {
				stableAt = round
			}
		}
		prev = cur
	}
	if stableAt > 0 {
		exp.Notes = append(exp.Notes, fmt.Sprintf(
			"cluster count stabilized at round %d (paper: stable in <10 steps)", stableAt))
	} else {
		exp.Notes = append(exp.Notes, "cluster count did not stabilize within the observed rounds")
	}
	return exp, nil
}

// Run dispatches an experiment by its DESIGN.md identifier.
func Run(id string, o Options) (*Experiment, error) {
	switch id {
	case "fig7":
		return RunFig7(o)
	case "fig8":
		return RunFig8(o)
	case "point":
		return RunPointEnclosing(o)
	case "ablation-grouping":
		return RunAblationGrouping(o)
	case "ablation-f":
		return RunAblationDivision(o)
	case "convergence":
		return RunConvergence(o)
	case "relations":
		return RunRelationSweep(o)
	case "updates":
		return RunUpdates(o)
	case "baselines":
		return RunBaselines(o)
	case "disk-exec":
		return RunDiskExec(o)
	case "sharded":
		return RunSharded(o)
	case "latency":
		return RunLatency(o)
	case "recovery":
		return RunRecovery(o)
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (want one of %v)", id, Experiments())
	}
}

// Experiments lists the available experiment identifiers.
func Experiments() []string {
	return []string{"fig7", "fig8", "point", "ablation-grouping", "ablation-f", "convergence", "relations", "updates", "baselines", "disk-exec", "sharded", "latency", "recovery"}
}
