package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOptions keeps experiment runtime test-friendly.
func tinyOptions() Options {
	return Options{
		Objects:       3000,
		Dims:          8,
		Queries:       40,
		Warmup:        300,
		ReorgEvery:    50,
		Seed:          7,
		Selectivities: []float64{5e-4, 5e-2},
		DimsSweep:     []int{8, 12},
		Target:        5e-3,
		MaxObjSize:    0.6,
	}
}

func TestRunFig7Shape(t *testing.T) {
	exp, err := RunFig7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "fig7" || len(exp.Points) != 2 {
		t.Fatalf("experiment shape: %+v", exp)
	}
	for i, p := range exp.Points {
		for _, m := range exp.Methods {
			r, ok := p.Results[m]
			if !ok {
				t.Fatalf("point %d missing method %s", i, m)
			}
			if r.Partitions < 1 {
				t.Errorf("point %d %s: partitions %d", i, m, r.Partitions)
			}
			if r.ModeledMemMS <= 0 || r.ModeledDiskMS <= 0 {
				t.Errorf("point %d %s: modeled times %g/%g", i, m, r.ModeledMemMS, r.ModeledDiskMS)
			}
		}
		ss := p.Results[MethodSS]
		if ss.Partitions != 1 || ss.VerifiedPct < 99 {
			t.Errorf("SS must verify everything: %+v", ss)
		}
		// The headline claim: the cost model guarantees AC beats or
		// matches SS in its own scenario.
		ac := p.Results[MethodACMem]
		if ac.ModeledMemMS > ss.ModeledMemMS*1.05 {
			t.Errorf("point %d: AC-mem %.4g ms > SS %.4g ms", i, ac.ModeledMemMS, ss.ModeledMemMS)
		}
		acd := p.Results[MethodACDisk]
		if acd.ModeledDiskMS > ss.ModeledDiskMS*1.05 {
			t.Errorf("point %d: AC-disk %.4g ms > SS %.4g ms", i, acd.ModeledDiskMS, ss.ModeledDiskMS)
		}
		// AC should verify fewer objects than SS at selective points.
		if p.X <= 5e-4 && ac.VerifiedPct >= 100 {
			t.Errorf("point %d: AC verified %.1f%%", i, ac.VerifiedPct)
		}
	}
	var buf bytes.Buffer
	if err := exp.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig7", "Memory Storage Scenario", "Disk Storage Scenario", "expl%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
	buf.Reset()
	if err := exp.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 2 points × 4 methods
	if len(lines) != 1+2*4 {
		t.Errorf("CSV lines = %d, want 9", len(lines))
	}
}

func TestRunFig8Shape(t *testing.T) {
	o := tinyOptions()
	o.Objects = 2000
	o.Warmup = 200
	exp, err := RunFig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "fig8" || len(exp.Points) != 2 {
		t.Fatalf("experiment shape: %+v", exp)
	}
	if exp.Points[0].Label != "8" || exp.Points[1].Label != "12" {
		t.Errorf("labels: %s, %s", exp.Points[0].Label, exp.Points[1].Label)
	}
	for i, p := range exp.Points {
		ss := p.Results[MethodSS]
		ac := p.Results[MethodACMem]
		if ac.ModeledMemMS > ss.ModeledMemMS*1.05 {
			t.Errorf("dims point %d: AC %.4g > SS %.4g", i, ac.ModeledMemMS, ss.ModeledMemMS)
		}
	}
}

func TestRunPointEnclosing(t *testing.T) {
	o := tinyOptions()
	o.Objects = 2000
	exp, err := RunPointEnclosing(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 1 {
		t.Fatalf("points: %d", len(exp.Points))
	}
	if len(exp.Notes) == 0 {
		t.Error("expected speedup notes")
	}
	p := exp.Points[0]
	ss, ac := p.Results[MethodSS], p.Results[MethodACMem]
	// Point-enclosing queries are the best case (§7.2): AC must verify a
	// clearly smaller fraction than SS.
	if ac.VerifiedPct >= ss.VerifiedPct {
		t.Errorf("AC verified %.1f%%, SS %.1f%%", ac.VerifiedPct, ss.VerifiedPct)
	}
}

func TestRunAblationGrouping(t *testing.T) {
	o := tinyOptions()
	o.Objects = 2500
	o.Selectivities = []float64{5e-3}
	exp, err := RunAblationGrouping(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 2 {
		t.Fatalf("expected free+ext regimes, got %d points", len(exp.Points))
	}
	// Extended regime: every interval size is ≥ MaxObjSize/2 = 0.3,
	// wider than the f=4 sub-regions (width 0.25), so minimum-bounding
	// grouping cannot descend at all while the signature criterion still
	// clusters by interval starts/ends — the paper's claim 2 isolated.
	ext := exp.Points[1]
	ac, mbb := ext.Results[MethodACMem], ext.Results[MethodMBB]
	if mbb.Partitions != 1 {
		t.Errorf("MBB grouping should be stuck at the root with always-extended objects, got %d clusters", mbb.Partitions)
	}
	if ac.Partitions < 2 {
		t.Errorf("signature grouping should still cluster, got %d", ac.Partitions)
	}
	if ac.VerifiedPct >= mbb.VerifiedPct {
		t.Errorf("ext regime: AC verified %.1f%% >= MBB %.1f%%", ac.VerifiedPct, mbb.VerifiedPct)
	}
	if len(exp.Notes) == 0 {
		t.Error("expected regime notes")
	}
}

func TestRunAblationDivision(t *testing.T) {
	o := tinyOptions()
	o.Objects = 1500
	o.Warmup = 200
	exp, err := RunAblationDivision(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 5 {
		t.Fatalf("points: %d", len(exp.Points))
	}
	for _, p := range exp.Points {
		if _, ok := p.Results[MethodACMem]; !ok {
			t.Fatalf("missing result at f=%s", p.Label)
		}
	}
}

func TestRunConvergence(t *testing.T) {
	o := tinyOptions()
	o.Objects = 2000
	exp, err := RunConvergence(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 15 {
		t.Fatalf("points: %d", len(exp.Points))
	}
	if len(exp.Notes) == 0 {
		t.Error("expected a convergence note")
	}
}

func TestRunRelationSweep(t *testing.T) {
	o := tinyOptions()
	o.Objects = 1500
	o.Warmup = 150
	exp, err := RunRelationSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 3 {
		t.Fatalf("points: %d", len(exp.Points))
	}
	labels := []string{"intersects", "contained-by", "encloses"}
	for i, p := range exp.Points {
		if p.Label != labels[i] {
			t.Errorf("point %d label %q, want %q", i, p.Label, labels[i])
		}
		ss, ac := p.Results[MethodSS], p.Results[MethodACMem]
		if ac.ModeledMemMS > ss.ModeledMemMS*1.1 {
			t.Errorf("%s: AC %.4g > SS %.4g", p.Label, ac.ModeledMemMS, ss.ModeledMemMS)
		}
	}
}

func TestRunUpdates(t *testing.T) {
	o := tinyOptions()
	o.Objects = 2000
	o.Warmup = 200
	exp, err := RunUpdates(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 6 {
		t.Fatalf("points: %d", len(exp.Points))
	}
	if len(exp.Notes) == 0 {
		t.Error("expected churn notes")
	}
	// The clustering must stay useful under churn: the last round still
	// verifies well below 100% of objects.
	last := exp.Points[len(exp.Points)-1].Results[MethodACMem]
	if last.VerifiedPct >= 100 {
		t.Errorf("after churn AC verifies %.1f%%", last.VerifiedPct)
	}
}

func TestRunDiskExec(t *testing.T) {
	o := tinyOptions()
	o.Objects = 2500
	o.Warmup = 200
	o.Selectivities = []float64{5e-3}
	exp, err := RunDiskExec(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 1 || len(exp.Notes) != 1 {
		t.Fatalf("shape: %d points, %d notes", len(exp.Points), len(exp.Notes))
	}
	p := exp.Points[0]
	ac, ss := p.Results[MethodACDisk], p.Results[MethodSS]
	if ss.Partitions != 1 {
		t.Fatalf("scan reference must be one cluster, got %d", ss.Partitions)
	}
	// Executed virtual time (µs in MeasuredUS) must be within 20% of the
	// counter-based disk model for both engines: the layout is
	// sequential per cluster, so the two accountings coincide up to
	// region slack.
	for name, r := range map[string]MethodResult{"AC": ac, "SS": ss} {
		exec := r.MeasuredUS / 1000
		if r.ModeledDiskMS <= 0 {
			t.Fatalf("%s: no modeled time", name)
		}
		ratio := exec / r.ModeledDiskMS
		if ratio < 0.8 || ratio > 1.3 {
			t.Errorf("%s: executed %.1f ms vs modeled %.1f ms (ratio %.2f)", name, exec, r.ModeledDiskMS, ratio)
		}
	}
	// AC must not execute slower than the scan.
	if ac.MeasuredUS > ss.MeasuredUS*1.1 {
		t.Errorf("AC executed %.0f µs > scan %.0f µs", ac.MeasuredUS, ss.MeasuredUS)
	}
}

func TestRunBaselines(t *testing.T) {
	o := tinyOptions()
	o.Objects = 2000
	o.Warmup = 200
	o.Selectivities = []float64{5e-3}
	exp, err := RunBaselines(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 1 {
		t.Fatalf("points: %d", len(exp.Points))
	}
	p := exp.Points[0]
	for _, m := range []string{MethodSS, MethodRS, MethodXT, MethodACMem} {
		if _, ok := p.Results[m]; !ok {
			t.Fatalf("missing method %s", m)
		}
	}
	xt := p.Results[MethodXT]
	if xt.Partitions < 1 || xt.ModeledMemMS <= 0 {
		t.Fatalf("X-tree result: %+v", xt)
	}
	if len(exp.Notes) == 0 {
		t.Error("expected a supernode note")
	}
}

func TestRunDispatchAndErrors(t *testing.T) {
	if _, err := Run("nope", tinyOptions()); err == nil {
		t.Error("unknown experiment must fail")
	}
	if len(Experiments()) != 13 {
		t.Errorf("Experiments() = %v", Experiments())
	}
	o := tinyOptions()
	o.Objects = 800
	o.Warmup = 100
	o.Queries = 20
	o.Selectivities = []float64{5e-3}
	exp, err := Run("ablation-grouping", o)
	if err != nil || exp.ID != "ablation-grouping" {
		t.Fatalf("dispatch: %v", err)
	}
}

func TestResultAccessor(t *testing.T) {
	exp := &Experiment{Points: []Point{{Results: map[string]MethodResult{"SS": {Partitions: 1}}}}}
	if _, ok := exp.Result(0, "SS"); !ok {
		t.Error("Result(0, SS)")
	}
	if _, ok := exp.Result(0, "AC"); ok {
		t.Error("missing method must report false")
	}
	if _, ok := exp.Result(5, "SS"); ok {
		t.Error("out of range must report false")
	}
}

func TestNewEngineUnknown(t *testing.T) {
	if _, err := newEngine("bogus", 2, 10); err == nil {
		t.Error("unknown method must fail")
	}
}
