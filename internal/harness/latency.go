package harness

// Tail-latency experiment for the reorganization scheduler: the synchronous
// full pass (unlimited budgets, the pre-incremental behaviour) makes every
// ReorgEvery-th query absorb an O(clusters)+relocations spike, while the
// budgeted incremental scheduler spreads the same maintenance over bounded
// per-query steps. The experiment drives a reorg-heavy query stream — the
// hot region shifts every few reorganization periods, so merge/split churn
// never dies down — and reports the per-query latency distribution (p50,
// p90, p99, max) next to throughput and the clustering outcome for both
// modes. The win criterion: p99 and max improve; queries/s and the
// steady-state clustering hold.

import (
	"fmt"
	"sort"
	"time"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/workload"
)

// Latency-mode method names.
const (
	MethodACSync = "AC-sync" // synchronous full-pass reorganization
	MethodACInc  = "AC-inc"  // incremental budgeted reorganization
)

// latencyQuery fills q with the phase's hot box: the corner drifts every
// phaseLen queries so the clustering keeps reorganizing during measurement.
func latencyQuery(q geom.Rect, i, phaseLen int) {
	base := float32((i/phaseLen)%5) * 0.18
	for d := range q.Min {
		q.Min[d], q.Max[d] = base, base+0.15
	}
}

// runChurnStream is the shared reorg-heavy measurement: build a fresh index
// under the given reorganization schedule, load the workload's objects
// (small extents, so the hot boxes stay selective), then time each query of
// a stream whose hot region shifts every phaseLen queries. Both the latency
// experiment and the benchjson churn record run exactly this, so their
// numbers stay comparable. The returned latencies are sorted ascending.
func runChurnStream(o Options, reorgEvery, queries int, unbounded bool) (*core.Index, []time.Duration, time.Duration, error) {
	cfg := core.Config{Dims: o.Dims, Params: cost.Memory(), ReorgEvery: reorgEvery}
	if unbounded {
		cfg.ReorgBudgetClusters, cfg.ReorgBudgetObjects = -1, -1
	}
	ix, err := core.New(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	og, err := workload.NewObjectGen(workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize * 0.05, Seed: o.Seed})
	if err != nil {
		return nil, nil, 0, err
	}
	r := geom.NewRect(o.Dims)
	for id := 0; id < o.Objects; id++ {
		og.Fill(r)
		if err := ix.Insert(uint32(id), r); err != nil {
			return nil, nil, 0, err
		}
	}
	q := geom.NewRect(o.Dims)
	lat := make([]time.Duration, 0, queries)
	ix.ResetMeter()
	start := time.Now()
	for i := 0; i < queries; i++ {
		latencyQuery(q, i, reorgEvery)
		qStart := time.Now()
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			return nil, nil, 0, err
		}
		lat = append(lat, time.Since(qStart))
	}
	elapsed := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return ix, lat, elapsed, nil
}

// RunLatency measures the per-query latency distribution under the
// synchronous and the budgeted reorganization schedule over the identical
// workload.
func RunLatency(o Options) (*Experiment, error) {
	o.setDefaults()
	queries := o.Queries
	if queries < 1000 {
		// Percentiles need a population; the default figure-experiment
		// query count (200) is too small to place a p99.
		queries = 3000
	}

	exp := &Experiment{
		ID:      "latency",
		Title:   "query latency distribution under reorganization (budgeted vs synchronous)",
		XLabel:  "mode",
		Methods: []string{MethodACSync, MethodACInc},
	}
	point := Point{Label: "reorg-heavy", X: 0, Results: map[string]MethodResult{}}

	for _, m := range exp.Methods {
		o.logf("latency: %s over %d objects x %d dims", m, o.Objects, o.Dims)
		ix, lat, elapsed, err := runChurnStream(o, o.ReorgEvery, queries, m == MethodACSync)
		if err != nil {
			return nil, err
		}
		meter := ix.Meter()
		us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
		res := MethodResult{
			Partitions:    ix.Clusters(),
			ModeledMemMS:  meter.ModelMSPerQuery(cost.Memory(), geom.ObjectBytes(o.Dims)),
			ModeledDiskMS: meter.ModelMSPerQuery(cost.Disk(), geom.ObjectBytes(o.Dims)),
			MeasuredUS:    float64(elapsed.Microseconds()) / float64(queries),
			AvgResults:    float64(meter.Results) / float64(queries),
			P50US:         us(lat[len(lat)/2]),
			P90US:         us(lat[len(lat)*90/100]),
			P99US:         us(lat[len(lat)*99/100]),
			MaxUS:         us(lat[len(lat)-1]),
		}
		if ix.Clusters() > 0 {
			res.ExploredPct = 100 * float64(meter.Explorations) / float64(queries) / float64(ix.Clusters())
		}
		if ix.Len() > 0 {
			res.VerifiedPct = 100 * float64(meter.ObjectsVerified) / float64(queries) / float64(ix.Len())
		}
		point.Results[m] = res
		exp.Notes = append(exp.Notes, fmt.Sprintf(
			"%s: p50 %.0f µs, p99 %.0f µs, max %.0f µs, %.0f queries/s, %d clusters, %d splits, %d merges, %d rounds",
			m, res.P50US, res.P99US, res.MaxUS, 1e6/res.MeasuredUS,
			ix.Clusters(), ix.Splits(), ix.Merges(), ix.ReorgRounds()))
		o.logf("latency: %s p99 %.0f µs, max %.0f µs", m, res.P99US, res.MaxUS)
	}
	exp.Points = append(exp.Points, point)

	sync, inc := point.Results[MethodACSync], point.Results[MethodACInc]
	if inc.MaxUS > 0 && sync.MaxUS > 0 {
		exp.Notes = append(exp.Notes, fmt.Sprintf(
			"budgeted vs synchronous: max %.1fx lower, p99 %.1fx, throughput %.2fx",
			sync.MaxUS/inc.MaxUS, sync.P99US/inc.P99US, sync.MeasuredUS/inc.MeasuredUS))
	}
	return exp, nil
}
