package harness

// Concurrency sweep of the benchjson report: read-only throughput of the
// shared-lock query path at increasing client-goroutine counts. The measured
// engines are converged and frozen (reorganization schedule disabled during
// measurement), so every goroutine runs pure searches: the sweep isolates
// how far concurrent readers of the same database scale before lock
// contention, statistics publication or the memory system caps them. The
// single-partition engine exercises concurrent readers within one index
// (the NewAdaptive discipline); the default-partition engine layers the
// fan-out parallelism of the sharded engine on top.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"accluster/internal/geom"
	"accluster/internal/shard"
)

// buildConvergedEngine loads and warm-converges a sharded engine for the
// concurrency sweep through the same pipeline as the query benches
// (shards=1 reproduces the single-index locking discipline; shards=0 picks
// the engine's GOMAXPROCS-based default).
func buildConvergedEngine(shards int, w benchWorkload, o Options) (*shard.Engine, []geom.Rect, error) {
	e, err := shard.New(shard.Config{Shards: shards, Core: benchConfig(w, o)})
	if err != nil {
		return nil, nil, err
	}
	queries, err := convergeEngine(w, o, e.InsertBatch,
		func(q geom.Rect) error { return e.Search(q, w.rel, func(uint32) bool { return true }) },
		e.Reorganize,
	)
	if err != nil {
		return nil, nil, err
	}
	return e, queries, nil
}

// measureReadThroughput runs the query mix on g client goroutines for
// roughly d and returns the completed query count and throughput.
func measureReadThroughput(e *shard.Engine, queries []geom.Rect, rel geom.Relation, g int, d time.Duration) (int64, float64, error) {
	var (
		stop    atomic.Bool
		total   atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstE  error
	)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []uint32
			n := int64(0)
			for i := w; !stop.Load(); i++ {
				out, err := e.SearchIDsAppend(buf[:0], queries[i%len(queries)], rel)
				if err != nil {
					errOnce.Do(func() { firstE = err })
					break
				}
				buf = out
				n++
			}
			total.Add(n)
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if firstE != nil {
		return 0, 0, firstE
	}
	return total.Load(), float64(total.Load()) / elapsed, nil
}

// runConcurrencySweep measures the fig7-style read-only workload at
// 1,2,4,…,Parallel client goroutines on the single-partition and (on
// multi-core machines) default-partition engines.
func runConcurrencySweep(o Options) ([]ConcurrencyResult, error) {
	w := benchWorkloads()[0] // fig7-memory: intersection at 0.5% selectivity
	const perPoint = 400 * time.Millisecond
	engines := []struct {
		name   string
		shards int // shard.Config value: 0 = the engine's default
	}{{"adaptive", 1}}
	if runtime.GOMAXPROCS(0) > 1 {
		engines = append(engines, struct {
			name   string
			shards int
		}{"sharded", 0})
	}
	var out []ConcurrencyResult
	for _, eng := range engines {
		o.logf("benchjson: concurrency sweep %s (n=%d dims=%d)", eng.name, o.Objects, o.Dims)
		e, queries, err := buildConvergedEngine(eng.shards, w, o)
		if err != nil {
			return nil, fmt.Errorf("concurrency %s: %w", eng.name, err)
		}
		base := 0.0
		for g := 1; g <= o.Parallel; g <<= 1 {
			n, qps, err := measureReadThroughput(e, queries, w.rel, g, perPoint)
			if err != nil {
				return nil, fmt.Errorf("concurrency %s g=%d: %w", eng.name, g, err)
			}
			if g == 1 {
				base = qps
			}
			r := ConcurrencyResult{
				Engine:        eng.name,
				Shards:        e.Shards(),
				Goroutines:    g,
				Queries:       n,
				QueriesPerSec: qps,
			}
			if base > 0 {
				r.Speedup = qps / base
			}
			o.logf("benchjson: %s goroutines=%d %.0f queries/s (%.2fx)", eng.name, g, qps, r.Speedup)
			out = append(out, r)
		}
	}
	return out, nil
}
