// Package harness regenerates every figure and table of the paper's
// evaluation (§7) plus the ablations called out in DESIGN.md. Experiments
// build the competing access methods (Adaptive Clustering, Sequential Scan,
// R*-tree, and the MBB-grouping ablation) over generated workloads, run
// warm-up queries so the adaptive clustering converges (the paper reports
// convergence within 10 reorganization steps), then measure: wall-clock time
// per query, modeled time under the in-memory and disk cost scenarios, the
// number of partitions (clusters/nodes), and the explored/verified fractions
// reported in the paper's data-access tables.
package harness

import (
	"fmt"
	"io"
	"time"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/diskengine"
	"accluster/internal/geom"
	"accluster/internal/mbbclust"
	"accluster/internal/rstar"
	"accluster/internal/seqscan"
	"accluster/internal/workload"
	"accluster/internal/xtree"
)

// Engine abstracts the access methods under test.
type Engine interface {
	Insert(id uint32, r geom.Rect) error
	Search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error
	Meter() cost.Meter
	ResetMeter()
	Partitions() int
	Len() int
}

// engine adapters

type coreEngine struct{ *core.Index }

func (e coreEngine) Partitions() int { return e.Clusters() }

type scanEngine struct{ *seqscan.Store }

func (e scanEngine) Partitions() int { return 1 }

type rstarEngine struct{ *rstar.Tree }

func (e rstarEngine) Partitions() int { return e.Nodes() }

type mbbEngine struct{ *mbbclust.Index }

func (e mbbEngine) Partitions() int { return e.Clusters() }

type xtreeEngine struct{ *xtree.Tree }

func (e xtreeEngine) Partitions() int { return e.Nodes() }

// Method names used across experiments.
const (
	MethodSS     = "SS"      // Sequential Scan
	MethodRS     = "RS"      // R*-tree
	MethodACMem  = "AC-mem"  // Adaptive Clustering tuned for the memory scenario
	MethodACDisk = "AC-disk" // Adaptive Clustering tuned for the disk scenario
	MethodMBB    = "MBB"     // minimum-bounding grouping ablation
	MethodXT     = "XT"      // X-tree (supernodes, §2 related work)
)

// Options control experiment scale. The zero value picks defaults suitable
// for a few-minute run; the paper-scale values (2,000,000 objects) are
// reachable by setting Objects explicitly.
type Options struct {
	// Objects is the database size (default 100000).
	Objects int
	// Dims is the dimensionality for the selectivity experiments
	// (default 16); the dimensionality experiment uses DimsSweep.
	Dims int
	// Queries is the number of measured queries per point (default 200).
	Queries int
	// Warmup is the number of queries run before measuring so that the
	// adaptive clustering converges (default 10·ReorgEvery).
	Warmup int
	// ReorgEvery is the adaptive index reorganization period (default
	// 100, as in §7.1).
	ReorgEvery int
	// Seed drives all generators (default 1).
	Seed int64
	// Selectivities is the Fig. 7 sweep (default the paper's
	// 5e-7 … 5e-1).
	Selectivities []float64
	// DimsSweep is the Fig. 8 sweep (default 16,20,24,28,32,36,40).
	DimsSweep []int
	// Target is the Fig. 8 query selectivity (default 5e-4, the paper's
	// 0.05%).
	Target float64
	// MaxObjSize bounds object interval sizes (default 1).
	MaxObjSize float32
	// ShardSweep is the shard-count sweep of the sharded-engine
	// experiment (default 1,2,4,8; values are rounded up to powers of
	// two).
	ShardSweep []int
	// Parallel is the maximum client-goroutine count of the benchjson
	// concurrency sweep (default 8; the sweep doubles 1,2,4,…,Parallel;
	// negative skips the sweep).
	Parallel int
	// DiskCache is the decoded-region cache budget (bytes) of the disk
	// benchmark's largest sweep point (default 64 MiB; non-positive
	// values clamp to the default — the sweep always includes a
	// cache-disabled point, so disabling the cache outright is not a
	// flag concern).
	DiskCache int64
	// BatchMax caps the benchjson batch-size sweep (default sweep
	// 1,4,16,64,256; 0 keeps the full sweep, negative skips the batch
	// section entirely).
	BatchMax int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (o *Options) setDefaults() {
	// Non-positive values (reachable through command-line flags) clamp to
	// the defaults: a negative ReorgEvery would otherwise disable the
	// reorganization schedule the experiments are about.
	if o.Objects <= 0 {
		o.Objects = 100000
	}
	if o.Dims <= 0 {
		o.Dims = 16
	}
	if o.Queries <= 0 {
		o.Queries = 200
	}
	if o.ReorgEvery <= 0 {
		o.ReorgEvery = 100
	}
	if o.Warmup <= 0 {
		o.Warmup = 10 * o.ReorgEvery
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Selectivities) == 0 {
		o.Selectivities = []float64{5e-7, 5e-6, 5e-5, 5e-4, 5e-3, 5e-2, 5e-1}
	}
	if len(o.DimsSweep) == 0 {
		o.DimsSweep = []int{16, 20, 24, 28, 32, 36, 40}
	}
	if o.Target == 0 {
		o.Target = 5e-4
	}
	if o.MaxObjSize == 0 {
		o.MaxObjSize = 1
	}
	if o.Parallel == 0 {
		o.Parallel = 8
	}
	// Negative Parallel passes through: it disables the benchjson
	// concurrency sweep entirely.
	if len(o.ShardSweep) == 0 {
		o.ShardSweep = []int{1, 2, 4, 8}
	}
	if o.DiskCache <= 0 {
		o.DiskCache = diskengine.DefaultCacheBytes
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// newEngine constructs one of the named methods.
func newEngine(method string, dims, reorgEvery int) (Engine, error) {
	switch method {
	case MethodSS:
		s, err := seqscan.New(dims)
		if err != nil {
			return nil, err
		}
		return scanEngine{s}, nil
	case MethodRS:
		t, err := rstar.New(rstar.Config{Dims: dims})
		if err != nil {
			return nil, err
		}
		return rstarEngine{t}, nil
	case MethodACMem:
		ix, err := core.New(core.Config{Dims: dims, Params: cost.Memory(), ReorgEvery: reorgEvery})
		if err != nil {
			return nil, err
		}
		return coreEngine{ix}, nil
	case MethodACDisk:
		ix, err := core.New(core.Config{Dims: dims, Params: cost.Disk(), ReorgEvery: reorgEvery})
		if err != nil {
			return nil, err
		}
		return coreEngine{ix}, nil
	case MethodMBB:
		ix, err := mbbclust.New(mbbclust.Config{Dims: dims, Params: cost.Memory(), ReorgEvery: reorgEvery})
		if err != nil {
			return nil, err
		}
		return mbbEngine{ix}, nil
	case MethodXT:
		tr, err := xtree.New(xtree.Config{Dims: dims})
		if err != nil {
			return nil, err
		}
		return xtreeEngine{tr}, nil
	default:
		return nil, fmt.Errorf("harness: unknown method %q", method)
	}
}

// load inserts objects generated from spec into every engine.
func load(engines map[string]Engine, spec workload.ObjectSpec, n int) error {
	gens := make(map[string]*workload.ObjectGen, len(engines))
	for name := range engines {
		// Every engine receives the identical object stream.
		g, err := workload.NewObjectGen(spec)
		if err != nil {
			return err
		}
		gens[name] = g
	}
	r := geom.NewRect(spec.Dims)
	for name, e := range engines {
		g := gens[name]
		for id := 0; id < n; id++ {
			g.Fill(r)
			if err := e.Insert(uint32(id), r); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	return nil
}

// MethodResult aggregates one method's behaviour at one experiment point.
type MethodResult struct {
	// Partitions is the number of clusters/nodes after the run.
	Partitions int
	// ExploredPct is the average percentage of partitions explored.
	ExploredPct float64
	// VerifiedPct is the average percentage of objects verified.
	VerifiedPct float64
	// ModeledMemMS and ModeledDiskMS are the modeled per-query times.
	ModeledMemMS, ModeledDiskMS float64
	// MeasuredUS is the measured wall-clock time per query (µs).
	MeasuredUS float64
	// AvgResults is the average answer-set size (observed selectivity ×
	// objects).
	AvgResults float64
	// P50US, P90US, P99US and MaxUS describe the per-query wall-clock
	// latency distribution (µs). Only experiments that time queries
	// individually (the latency experiment) fill them; zero elsewhere.
	P50US, P90US, P99US, MaxUS float64
	// CacheHits and CacheMisses are the region-cache split of explorations
	// over the run; zero on engines without a region cache.
	CacheHits, CacheMisses int64
}

// measure runs the query set against e and summarizes the counters. The
// modeled times use the paper's cost-model accounting (full per-object
// verification cost, see cost.Meter.ModelMS); early-exit effects show up in
// the measured wall time.
func measure(e Engine, queries []geom.Rect, rel geom.Relation) (MethodResult, error) {
	e.ResetMeter()
	start := time.Now()
	for _, q := range queries {
		if err := e.Search(q, rel, func(uint32) bool { return true }); err != nil {
			return MethodResult{}, err
		}
	}
	elapsed := time.Since(start)
	m := e.Meter()
	nq := float64(len(queries))
	objBytes := geom.ObjectBytes(queries[0].Dims())
	res := MethodResult{
		Partitions:    e.Partitions(),
		ModeledMemMS:  m.ModelMSPerQuery(cost.Memory(), objBytes),
		ModeledDiskMS: m.ModelMSPerQuery(cost.Disk(), objBytes),
		MeasuredUS:    float64(elapsed.Microseconds()) / nq,
		AvgResults:    float64(m.Results) / nq,
		CacheHits:     m.CacheHits,
		CacheMisses:   m.CacheMisses,
	}
	if e.Partitions() > 0 {
		res.ExploredPct = 100 * float64(m.Explorations) / nq / float64(e.Partitions())
	}
	if e.Len() > 0 {
		res.VerifiedPct = 100 * float64(m.ObjectsVerified) / nq / float64(e.Len())
	}
	return res, nil
}

// warmup runs queries without measuring, letting adaptive engines converge.
func warmup(e Engine, queries []geom.Rect, rel geom.Relation) error {
	for _, q := range queries {
		if err := e.Search(q, rel, func(uint32) bool { return true }); err != nil {
			return err
		}
	}
	return nil
}

// genQueries produces n query rectangles from the given spec.
func genQueries(spec workload.QuerySpec, n int) ([]geom.Rect, error) {
	g, err := workload.NewQueryGen(spec)
	if err != nil {
		return nil, err
	}
	out := make([]geom.Rect, n)
	for i := range out {
		out[i] = g.Rect()
	}
	return out, nil
}
