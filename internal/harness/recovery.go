package harness

import (
	"fmt"
	"math/rand"
	"time"

	"accluster/internal/core"
	"accluster/internal/faultio"
	"accluster/internal/geom"
	"accluster/internal/shard"
	"accluster/internal/workload"
)

// Recovery drill phase names (the "methods" of the recovery experiment).
const (
	phaseSave    = "save"
	phaseLoad    = "load"
	phaseSalvage = "salvage"
	phaseRestore = "restore"
)

// RunRecovery measures the durability machinery across the shard sweep: the
// wall time of a generational checkpoint save, of a full validated load, of
// a degraded (salvage) open with one corrupted segment, and of the
// quarantine restore — all over the crash-simulating in-memory filesystem,
// so the figures isolate the format and validation work from media speed.
// After the timed phases it runs a randomized crash-point sample: the save
// is crashed at uniformly drawn I/O operations and the survivor must load
// as exactly the old or the new checkpoint; the observed split is appended
// to the notes, and any torn survivor is an error.
func RunRecovery(o Options) (*Experiment, error) {
	o.setDefaults()
	exp := &Experiment{
		ID:      "recovery",
		Title:   fmt.Sprintf("Checkpoint save/recovery drill (%d objects, %d dims)", o.Objects, o.Dims),
		XLabel:  "shards",
		Methods: []string{phaseSave, phaseLoad, phaseSalvage, phaseRestore},
	}
	gen, err := workload.NewObjectGen(workload.ObjectSpec{Dims: o.Dims, MaxSize: o.MaxObjSize, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	ids := make([]uint32, o.Objects)
	rects := make([]geom.Rect, o.Objects)
	for i := range ids {
		ids[i], rects[i] = uint32(i), gen.Rect()
	}
	for _, shards := range o.ShardSweep {
		if o.Log != nil {
			fmt.Fprintf(o.Log, "recovery: %d shards\n", shards)
		}
		e, err := shard.New(shard.Config{Shards: shards, Core: core.Config{Dims: o.Dims, ReorgEvery: o.ReorgEvery}})
		if err != nil {
			return nil, err
		}
		if err := e.InsertBatch(ids, rects); err != nil {
			return nil, err
		}
		fsys := faultio.NewMemFS()
		point := Point{Label: fmt.Sprint(shards), X: float64(shards), Results: map[string]MethodResult{}}
		timed := func(phase string, fn func() error) error {
			start := time.Now()
			if err := fn(); err != nil {
				return fmt.Errorf("recovery %s (%d shards): %w", phase, shards, err)
			}
			point.Results[phase] = MethodResult{
				Partitions: e.Shards(),
				MeasuredUS: float64(time.Since(start).Microseconds()),
			}
			return nil
		}
		if err := timed(phaseSave, func() error { return e.SaveDirFS(fsys, "ckpt") }); err != nil {
			return nil, err
		}
		if err := timed(phaseLoad, func() error {
			_, err := shard.LoadDirFS(fsys, "ckpt", shard.Config{})
			return err
		}); err != nil {
			return nil, err
		}
		// Corrupt one segment, open degraded, restore. With a single shard
		// there is no healthy partition left to serve, so salvage correctly
		// refuses — the degraded phases only make sense from 2 shards up.
		if shards < 2 {
			exp.Points = append(exp.Points, point)
			continue
		}
		if err := fsys.Corrupt(fmt.Sprintf("ckpt/shard-0000-g%06d.acdb", e.Generation()), 100); err != nil {
			return nil, err
		}
		var degraded *shard.Engine
		if err := timed(phaseSalvage, func() error {
			var err error
			degraded, err = shard.LoadDirFS(fsys, "ckpt", shard.Config{Salvage: true})
			return err
		}); err != nil {
			return nil, err
		}
		if got := degraded.QuarantinedCount(); got != 1 {
			return nil, fmt.Errorf("recovery: salvage quarantined %d shards, want 1", got)
		}
		if err := timed(phaseRestore, func() error { return degraded.RestoreQuarantined(ids, rects) }); err != nil {
			return nil, err
		}
		if degraded.Len() != o.Objects {
			return nil, fmt.Errorf("recovery: restored engine has %d objects, want %d", degraded.Len(), o.Objects)
		}
		exp.Points = append(exp.Points, point)
	}

	// Randomized crash-point sample on the last sweep point.
	oldLoaded, newLoaded, err := crashSample(o, ids, rects, 40)
	if err != nil {
		return nil, err
	}
	exp.Notes = append(exp.Notes,
		fmt.Sprintf("crash sample: %d random crash points during a re-save; survivors loaded as old=%d new=%d, torn=0",
			oldLoaded+newLoaded, oldLoaded, newLoaded),
		"timings over the crash-simulating in-memory filesystem (format + validation cost, no media)")
	return exp, nil
}

// crashSample crashes a checkpoint re-save at n uniformly drawn I/O
// operations and verifies every survivor loads as exactly the old or the
// new state, returning the observed split.
func crashSample(o Options, ids []uint32, rects []geom.Rect, n int) (oldLoaded, newLoaded int, err error) {
	dims := rects[0].Dims()
	build := func(count int) (*shard.Engine, error) {
		e, err := shard.New(shard.Config{Shards: 4, Workers: 1, Core: core.Config{Dims: dims, ReorgEvery: o.ReorgEvery}})
		if err != nil {
			return nil, err
		}
		return e, e.InsertBatch(ids[:count], rects[:count])
	}
	oldN := len(ids) / 2
	eOld, err := build(oldN)
	if err != nil {
		return 0, 0, err
	}
	eNew, err := build(len(ids))
	if err != nil {
		return 0, 0, err
	}
	base := faultio.NewMemFS()
	if err := eOld.SaveDirFS(base, "ckpt"); err != nil {
		return 0, 0, err
	}
	probe := faultio.NewSchedule(o.Seed)
	if err := eNew.SaveDirFS(faultio.WrapFS(base.Clone(), probe), "ckpt"); err != nil {
		return 0, 0, err
	}
	total := probe.Ops()
	rng := rand.New(rand.NewSource(o.Seed + 1))
	for i := 0; i < n; i++ {
		k := rng.Int63n(total) + 1
		s := faultio.NewSchedule(o.Seed + int64(i))
		s.SetFault(k, faultio.Crash)
		fsys := base.Clone()
		if err := eNew.SaveDirFS(faultio.WrapFS(fsys, s), "ckpt"); err == nil {
			return 0, 0, fmt.Errorf("recovery: crashed save at op %d/%d reported success", k, total)
		}
		back, err := shard.LoadDirFS(fsys.Crash(), "ckpt", shard.Config{})
		if err != nil {
			return 0, 0, fmt.Errorf("recovery: crash at op %d/%d left no loadable checkpoint: %w", k, total, err)
		}
		switch back.Len() {
		case oldN:
			oldLoaded++
		case len(ids):
			newLoaded++
		default:
			return 0, 0, fmt.Errorf("recovery: crash at op %d/%d loaded torn state (%d objects)", k, total, back.Len())
		}
	}
	return oldLoaded, newLoaded, nil
}
