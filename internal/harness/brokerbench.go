package harness

// Networked-broker load harness emitting machine-readable JSON
// (BENCH_broker.json): a netbroker server fronting the adaptive index is
// loaded over real loopback TCP with a standing-subscription population
// and a paced event stream, measuring end-to-end delivery latency —
// publisher timestamp to subscriber handler — through the wire protocol,
// the per-connection bounded queues and the client dispatch path. Events
// carry their publish timestamp's serial in a dedicated attribute that
// subscriptions leave unconstrained, so correlation is exact without a
// side channel.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync/atomic"
	"time"

	"accluster/internal/netbroker"
	"accluster/internal/pubsub"
	"accluster/internal/telemetry"
)

// BrokerBenchReport is the document written to BENCH_broker.json.
type BrokerBenchReport struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Subscriptions is the standing-subscription population;
	// SubscriberConns is how many client connections share it.
	Subscriptions   int `json:"subscriptions"`
	SubscriberConns int `json:"subscriber_conns"`
	// Events is the published event count; TargetEventsPerSec the pacing
	// goal and EventsPerSec the achieved rate.
	Events             int     `json:"events"`
	TargetEventsPerSec float64 `json:"target_events_per_sec"`
	EventsPerSec       float64 `json:"events_per_sec"`
	// Delivered counts handler invocations across all subscriber conns;
	// AvgMatches is deliveries per event.
	Delivered  int64   `json:"delivered"`
	AvgMatches float64 `json:"avg_matches"`
	// Delivery latency, publisher clock to handler clock, milliseconds.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
	// Server-side accounting for the run.
	DroppedOldest int64   `json:"dropped_oldest"`
	DroppedNewest int64   `json:"dropped_newest"`
	MaxQueueDepth int64   `json:"max_queue_depth"`
	DrainMS       float64 `json:"drain_ms"`
}

// WriteJSON renders the report as indented JSON.
func (r *BrokerBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// brokerBenchConfig sizes the load; the defaults are the acceptance
// numbers (10k standing subscriptions, 1k events/s sustained on one core).
type brokerBenchConfig struct {
	subs   int
	conns  int
	events int
	rate   float64 // events per second
	dims   int     // spatial attributes
	width  float64 // per-dimension subscription width
	queue  int     // per-connection delivery queue depth
}

// RunBrokerBench runs the loopback broker load harness.
func RunBrokerBench(o Options) (*BrokerBenchReport, error) {
	cfg := brokerBenchConfig{
		subs:   10_000,
		conns:  4,
		events: 3_300,
		// Target 10% above the 1k events/s acceptance floor so pacing
		// overhead cannot pull the achieved rate below it.
		rate: 1_100,
		dims: 3,
		// 10k subs x width^3 ≈ 5 matches per point event.
		width: 0.08,
		queue: 1024,
	}
	return runBrokerBench(cfg, &o)
}

func runBrokerBench(cfg brokerBenchConfig, o *Options) (*BrokerBenchReport, error) {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	schema := make(pubsub.Schema, 0, cfg.dims+1)
	for d := 0; d < cfg.dims; d++ {
		schema = append(schema, pubsub.Attribute{Name: fmt.Sprintf("x%d", d), Min: 0, Max: 1})
	}
	schema = append(schema, pubsub.Attribute{Name: "serial", Min: 0, Max: 1e9})

	broker, err := pubsub.NewBroker(schema, pubsub.Options{})
	if err != nil {
		return nil, err
	}
	defer broker.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv, err := netbroker.Serve(broker, ln, netbroker.Options{QueueDepth: cfg.queue})
	if err != nil {
		ln.Close()
		return nil, err
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Publish timestamps by serial; handlers on the subscriber read
	// goroutines correlate without locks.
	published := make([]atomic.Int64, cfg.events)
	hist := telemetry.NewHistogram("broker_delivery_ns")
	var delivered atomic.Int64
	handler := func(_ uint32, ev pubsub.Event) {
		s := int(ev["serial"].Lo)
		if s < 0 || s >= len(published) {
			return
		}
		if t0 := published[s].Load(); t0 != 0 {
			hist.Record(time.Now().UnixNano() - t0)
		}
		delivered.Add(1)
	}

	// Standing subscriptions, spread across cfg.conns client connections.
	rng := rand.New(rand.NewSource(seed))
	clients := make([]*netbroker.Client, 0, cfg.conns)
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	for i := 0; i < cfg.conns; i++ {
		cl, err := netbroker.Dial(ctx, ln.Addr().String(), netbroker.ClientOptions{Seed: seed + int64(i)})
		if err != nil {
			return nil, err
		}
		clients = append(clients, cl)
	}
	start := time.Now()
	for i := 0; i < cfg.subs; i++ {
		sub := make(pubsub.Subscription, cfg.dims)
		for d := 0; d < cfg.dims; d++ {
			lo := rng.Float64() * (1 - cfg.width)
			sub[fmt.Sprintf("x%d", d)] = pubsub.Range{Lo: lo, Hi: lo + cfg.width}
		}
		if _, err := clients[i%cfg.conns].Subscribe(ctx, sub, handler); err != nil {
			return nil, fmt.Errorf("subscribe %d: %w", i, err)
		}
	}
	o.logf("brokerbench: %d subscriptions registered in %v", cfg.subs, time.Since(start).Round(time.Millisecond))

	pub, err := netbroker.Dial(ctx, ln.Addr().String(), netbroker.ClientOptions{Seed: seed + 100})
	if err != nil {
		return nil, err
	}
	defer pub.Close()

	// Paced publish loop: batches every tick, catching up if behind.
	var matches int64
	tick := 10 * time.Millisecond
	perTick := cfg.rate * tick.Seconds()
	begin := time.Now()
	sent := 0
	for sent < cfg.events {
		due := int(time.Since(begin).Seconds()*cfg.rate + perTick)
		if due > cfg.events {
			due = cfg.events
		}
		for ; sent < due; sent++ {
			ev := make(pubsub.Event, cfg.dims+1)
			for d := 0; d < cfg.dims; d++ {
				ev[fmt.Sprintf("x%d", d)] = pubsub.Value(rng.Float64())
			}
			ev["serial"] = pubsub.Value(float64(sent))
			published[sent].Store(time.Now().UnixNano())
			n, err := pub.Publish(ctx, ev)
			if err != nil {
				return nil, fmt.Errorf("publish %d: %w", sent, err)
			}
			matches += int64(n)
		}
		if sent < cfg.events {
			time.Sleep(tick)
		}
	}
	elapsed := time.Since(begin)

	// Let in-flight deliveries land, then drain the server so the queues
	// flush deterministically before reading the counters.
	waitUntil := time.Now().Add(5 * time.Second)
	for delivered.Load() < matches && time.Now().Before(waitUntil) {
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.Stats()
	drain := srv.Shutdown()

	snap := hist.Snapshot()
	rep := &BrokerBenchReport{
		Generated:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:          runtime.Version(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		Subscriptions:      cfg.subs,
		SubscriberConns:    cfg.conns,
		Events:             cfg.events,
		TargetEventsPerSec: cfg.rate,
		EventsPerSec:       float64(cfg.events) / elapsed.Seconds(),
		Delivered:          delivered.Load(),
		AvgMatches:         float64(matches) / float64(cfg.events),
		P50MS:              float64(snap.Quantile(0.5)) / 1e6,
		P99MS:              float64(snap.Quantile(0.99)) / 1e6,
		MaxMS:              float64(snap.Max()) / 1e6,
		DroppedOldest:      st.DroppedOldest,
		DroppedNewest:      st.DroppedNewest,
		MaxQueueDepth:      st.MaxQueueDepth,
		DrainMS:            float64(drain) / float64(time.Millisecond),
	}
	o.logf("brokerbench: %d events at %.0f/s, %d delivered (%.1f avg matches), p50=%.2fms p99=%.2fms max=%.2fms",
		rep.Events, rep.EventsPerSec, rep.Delivered, rep.AvgMatches, rep.P50MS, rep.P99MS, rep.MaxMS)
	return rep, nil
}
