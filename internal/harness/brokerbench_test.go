package harness

import "testing"

// TestBrokerBenchSmall exercises the loopback broker harness end to end at
// a CI-friendly scale and checks the report's internal consistency.
func TestBrokerBenchSmall(t *testing.T) {
	cfg := brokerBenchConfig{
		subs:   200,
		conns:  2,
		events: 100,
		rate:   2_000,
		dims:   3,
		width:  0.2,
		queue:  256,
	}
	o := Options{Seed: 7}
	rep, err := runBrokerBench(cfg, &o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Subscriptions != cfg.subs || rep.Events != cfg.events {
		t.Fatalf("report sizing = %+v", rep)
	}
	if rep.EventsPerSec <= 0 {
		t.Fatalf("events/s = %v", rep.EventsPerSec)
	}
	if rep.Delivered == 0 {
		t.Fatal("no deliveries: subscription widths should match some events")
	}
	if rep.P50MS < 0 || rep.P99MS < rep.P50MS || rep.MaxMS < rep.P99MS {
		t.Fatalf("latency ordering violated: p50=%v p99=%v max=%v", rep.P50MS, rep.P99MS, rep.MaxMS)
	}
	if rep.Generated == "" || rep.GoVersion == "" {
		t.Fatalf("missing provenance header: %+v", rep)
	}
}
