package pubsub

import (
	"math/rand"
	"sync"
	"testing"
)

func apartmentSchema() Schema {
	return Schema{
		{Name: "distance", Min: 0, Max: 100},
		{Name: "price", Min: 0, Max: 5000},
		{Name: "rooms", Min: 1, Max: 10},
		{Name: "baths", Min: 1, Max: 5},
	}
}

func mustBroker(t *testing.T) *Broker {
	t.Helper()
	b, err := NewBroker(apartmentSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSchemaValidation(t *testing.T) {
	if err := (Schema{}).Validate(); err == nil {
		t.Error("empty schema must fail")
	}
	if err := (Schema{{Name: "", Min: 0, Max: 1}}).Validate(); err == nil {
		t.Error("empty name must fail")
	}
	if err := (Schema{{Name: "a", Min: 0, Max: 1}, {Name: "a", Min: 0, Max: 2}}).Validate(); err == nil {
		t.Error("duplicate names must fail")
	}
	if err := (Schema{{Name: "a", Min: 3, Max: 3}}).Validate(); err == nil {
		t.Error("empty domain must fail")
	}
	if _, err := NewBroker(Schema{}, Options{}); err == nil {
		t.Error("NewBroker with bad schema must fail")
	}
}

func TestPaperExampleSubscription(t *testing.T) {
	// §1: "Notify me of all new apartments within 30 miles from Newark,
	// with a rent price between 400$ and 700$, having between 3 and 5
	// rooms, and 2 baths."
	b := mustBroker(t)
	id, err := b.Subscribe(Subscription{
		"distance": {Lo: 0, Hi: 30},
		"price":    {Lo: 400, Hi: 700},
		"rooms":    {Lo: 3, Hi: 5},
		"baths":    Value(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A matching point event: one concrete apartment.
	got, err := b.Match(Event{
		"distance": Value(12),
		"price":    Value(550),
		"rooms":    Value(4),
		"baths":    Value(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != id {
		t.Fatalf("expected match of %d, got %v", id, got)
	}
	// Too expensive: no match.
	got, err = b.Match(Event{
		"distance": Value(12),
		"price":    Value(900),
		"rooms":    Value(4),
		"baths":    Value(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected no match, got %v", got)
	}
	// §1's range event: "Apartments for rent in Newark: 3 to 5 rooms, 1
	// or 2 baths, 600$-900$" — overlaps the subscription's price range.
	got, err = b.Match(Event{
		"distance": Value(0),
		"price":    {Lo: 600, Hi: 900},
		"rooms":    {Lo: 3, Hi: 5},
		"baths":    {Lo: 1, Hi: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("range event should match via intersection, got %v", got)
	}
}

func TestSubscriptionDefaultsToFullDomain(t *testing.T) {
	b := mustBroker(t)
	id, err := b.Subscribe(Subscription{"price": {Lo: 1000, Hi: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Match(Event{
		"distance": Value(99),
		"price":    Value(1500),
		"rooms":    Value(9),
		"baths":    Value(5),
	})
	if err != nil || len(got) != 1 || got[0] != id {
		t.Fatalf("unbounded attributes must accept anything: %v, %v", got, err)
	}
}

func TestValidationErrors(t *testing.T) {
	b := mustBroker(t)
	if _, err := b.Subscribe(Subscription{"bogus": Value(1)}); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := b.Subscribe(Subscription{"price": {Lo: 700, Hi: 400}}); err == nil {
		t.Error("inverted range must fail")
	}
	if _, err := b.Subscribe(Subscription{"price": Value(9999)}); err == nil {
		t.Error("out-of-domain value must fail")
	}
	if _, err := b.Match(Event{"price": Value(-5)}); err == nil {
		t.Error("out-of-domain event must fail")
	}
}

func TestUnsubscribe(t *testing.T) {
	b := mustBroker(t)
	id, _ := b.Subscribe(Subscription{"rooms": {Lo: 2, Hi: 4}})
	if !b.Unsubscribe(id) {
		t.Fatal("unsubscribe failed")
	}
	if b.Unsubscribe(id) {
		t.Fatal("double unsubscribe must report false")
	}
	got, _ := b.Match(Event{
		"distance": Value(10), "price": Value(100),
		"rooms": Value(3), "baths": Value(2),
	})
	if len(got) != 0 {
		t.Fatalf("removed subscription still matches: %v", got)
	}
}

func TestPublishHandlers(t *testing.T) {
	b := mustBroker(t)
	var mu sync.Mutex
	notified := map[uint32]int{}
	handler := func(sub uint32, ev Event) {
		mu.Lock()
		notified[sub]++
		mu.Unlock()
	}
	cheap, _ := b.SubscribeFunc(Subscription{"price": {Lo: 0, Hi: 1000}}, handler)
	pricey, _ := b.SubscribeFunc(Subscription{"price": {Lo: 3000, Hi: 5000}}, handler)
	silent, _ := b.Subscribe(Subscription{"price": {Lo: 0, Hi: 5000}})
	n, err := b.Publish(Event{
		"distance": Value(5), "price": Value(500),
		"rooms": Value(3), "baths": Value(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // cheap + silent match; pricey does not
		t.Fatalf("published to %d, want 2", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if notified[cheap] != 1 || notified[pricey] != 0 || notified[silent] != 0 {
		t.Fatalf("handler calls: %v", notified)
	}
}

func TestHighVolumeMatchingWithClustering(t *testing.T) {
	b, err := NewBroker(apartmentSchema(), Options{ReorgEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	type spec struct {
		lo, hi float64
	}
	subs := make(map[uint32]spec, 3000)
	for i := 0; i < 3000; i++ {
		lo := rng.Float64() * 4000
		hi := lo + rng.Float64()*(5000-lo)
		id, err := b.Subscribe(Subscription{"price": {Lo: lo, Hi: hi}})
		if err != nil {
			t.Fatal(err)
		}
		subs[id] = spec{lo, hi}
	}
	for i := 0; i < 300; i++ {
		price := rng.Float64() * 5000
		got, err := b.Match(Event{
			"distance": Value(rng.Float64() * 100),
			"price":    Value(price),
			"rooms":    Value(1 + rng.Float64()*9),
			"baths":    Value(1 + rng.Float64()*4),
		})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, s := range subs {
			if price >= s.lo && price <= s.hi {
				want++
			}
		}
		// Normalization to float32 can shift boundaries by at most one
		// ulp; with random continuous data exact equality is expected.
		if len(got) != want {
			t.Fatalf("event %d: %d matches, want %d", i, len(got), want)
		}
	}
	st := b.Stats()
	if st.Subscriptions != 3000 || st.Events != 300 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Clusters < 2 {
		t.Error("expected the subscription database to cluster under event load")
	}
	if len(b.Schema()) != 4 {
		t.Error("Schema accessor")
	}
}
