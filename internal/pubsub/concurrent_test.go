package pubsub

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentBrokerUse hammers the broker from many goroutines mixing
// subscriptions, unsubscriptions, matches and publishes; run with -race.
func TestConcurrentBrokerUse(t *testing.T) {
	b, err := NewBroker(apartmentSchema(), Options{ReorgEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	handler := func(sub uint32, ev Event) { delivered.Add(1) }
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []uint32
			for i := 0; i < 200; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					lo := rng.Float64() * 4000
					hi := lo + rng.Float64()*(5000-lo)
					id, err := b.SubscribeFunc(Subscription{"price": {Lo: lo, Hi: hi}}, handler)
					if err != nil {
						t.Errorf("subscribe: %v", err)
						return
					}
					mine = append(mine, id)
				case 2:
					if len(mine) > 0 {
						b.Unsubscribe(mine[rng.Intn(len(mine))])
					}
				default:
					_, err := b.Publish(Event{
						"distance": Value(rng.Float64() * 100),
						"price":    Value(rng.Float64() * 5000),
						"rooms":    Value(1 + rng.Float64()*9),
						"baths":    Value(1 + rng.Float64()*4),
					})
					if err != nil {
						t.Errorf("publish: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := b.Stats()
	if st.Events == 0 {
		t.Error("no events processed")
	}
	_ = delivered.Load()
}
