package pubsub

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestShardedBrokerMatchesSingle proves a broker on the sharded engine
// notifies exactly the subscriptions a single-index broker does.
func TestShardedBrokerMatchesSingle(t *testing.T) {
	schema := apartmentSchema()
	single, err := NewBroker(schema, Options{ReorgEvery: 25})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewBroker(schema, Options{ReorgEvery: 25, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	sub := func() Subscription {
		priceLo := rng.Float64() * 4000
		priceHi := priceLo + rng.Float64()*(5000-priceLo)
		roomsLo := float64(1 + rng.Intn(5))
		roomsHi := roomsLo + float64(rng.Intn(3))
		if roomsHi > 6 {
			roomsHi = 6
		}
		return Subscription{
			"price": {Lo: priceLo, Hi: priceHi},
			"rooms": {Lo: roomsLo, Hi: roomsHi},
		}
	}
	for i := 0; i < 800; i++ {
		s := sub()
		if _, err := single.Subscribe(s); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Subscribe(s); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		ev := Event{
			"price": Value(rng.Float64() * 5000),
			"rooms": Value(float64(1 + rng.Intn(6))),
		}
		a, err := single.Match(ev)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sharded.Match(ev)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if len(a) != len(b) {
			t.Fatalf("event %d: single matched %d, sharded %d", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("event %d: match sets diverge at %d", i, k)
			}
		}
	}
	ss, st := single.Stats(), sharded.Stats()
	if ss.Subscriptions != st.Subscriptions || ss.Events != st.Events || ss.Matches != st.Matches {
		t.Errorf("stats diverged: single=%+v sharded=%+v", ss, st)
	}
}

// TestShardedBrokerConcurrent hammers a sharded broker from many goroutines;
// run with -race.
func TestShardedBrokerConcurrent(t *testing.T) {
	b, err := NewBroker(apartmentSchema(), Options{ReorgEvery: 20, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var mine []uint32
			for i := 0; i < 150; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					lo := rng.Float64() * 4000
					id, err := b.Subscribe(Subscription{"price": {Lo: lo, Hi: lo + 500}})
					if err != nil {
						t.Errorf("subscribe: %v", err)
						return
					}
					mine = append(mine, id)
				case 2:
					if len(mine) > 0 {
						b.Unsubscribe(mine[rng.Intn(len(mine))])
					}
				default:
					ev := Event{
						"price": Value(rng.Float64() * 5000),
						"rooms": Value(float64(1 + rng.Intn(6))),
					}
					if _, err := b.Publish(ev); err != nil {
						t.Errorf("publish: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := b.Stats()
	if st.Events == 0 {
		t.Error("no events recorded")
	}
}
