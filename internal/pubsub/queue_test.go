package pubsub

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func queuedBroker(t *testing.T, depth int) *Broker {
	t.Helper()
	b, err := NewBroker(apartmentSchema(), Options{QueueDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestQueuedDelivery(t *testing.T) {
	b := queuedBroker(t, 16)
	defer b.Close()
	var got atomic.Int64
	id, err := b.SubscribeFunc(Subscription{
		"price": {Lo: 400, Hi: 700},
	}, func(sub uint32, ev Event) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	const events = 10
	for i := 0; i < events; i++ {
		n, err := b.Publish(Event{
			"distance": Value(10), "price": Value(550), "rooms": Value(4), "baths": Value(2),
		})
		if err != nil || n != 1 {
			t.Fatalf("publish %d: n=%d err=%v", i, n, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() < events {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d events", got.Load(), events)
		}
		time.Sleep(time.Millisecond)
	}
	s := b.Stats()
	if s.Delivered != events || s.Dropped != 0 {
		t.Fatalf("stats = %+v, want %d delivered, 0 dropped", s, events)
	}
	if s.MaxQueueDepth < 1 || s.MaxQueueDepth > 16 {
		t.Fatalf("max queue depth = %d, want within [1,16]", s.MaxQueueDepth)
	}
	ss := b.SubscriberStats()
	if len(ss) != 1 || ss[0].ID != id || ss[0].Delivered != events {
		t.Fatalf("subscriber stats = %+v", ss)
	}
}

func TestQueueFullDrops(t *testing.T) {
	b := queuedBroker(t, 2)
	defer b.Close()
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	if _, err := b.SubscribeFunc(Subscription{}, func(sub uint32, ev Event) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-block
	}); err != nil {
		t.Fatal(err)
	}
	ev := Event{"distance": Value(10), "price": Value(550), "rooms": Value(4), "baths": Value(2)}
	if _, err := b.Publish(ev); err != nil { // occupies the handler
		t.Fatal(err)
	}
	<-started
	// Two more fill the queue; everything beyond must drop, not block.
	for i := 0; i < 5; i++ {
		if _, err := b.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	s := b.Stats()
	if s.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3 (queue depth 2, 5 overflow publishes)", s.Dropped)
	}
	if s.DroppedFull != 3 || s.DroppedClosed != 0 {
		t.Fatalf("drop split = full %d / closed %d, want 3 / 0", s.DroppedFull, s.DroppedClosed)
	}
	if ss := b.SubscriberStats(); len(ss) != 1 || ss[0].DroppedFull != 3 || ss[0].Dropped != 3 {
		t.Fatalf("subscriber drop split = %+v", ss)
	}
	if s.Queued != 2 {
		t.Fatalf("queued = %d, want full queue of 2", s.Queued)
	}
	if s.MaxQueueDepth != 2 {
		t.Fatalf("max queue depth = %d, want 2", s.MaxQueueDepth)
	}
	close(block)
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().Delivered < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d delivered after unblock", b.Stats().Delivered)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseDrainsQueues(t *testing.T) {
	b := queuedBroker(t, 64)
	var got atomic.Int64
	if _, err := b.SubscribeFunc(Subscription{}, func(sub uint32, ev Event) {
		time.Sleep(100 * time.Microsecond)
		got.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	ev := Event{"distance": Value(10), "price": Value(550), "rooms": Value(4), "baths": Value(2)}
	const events = 20
	for i := 0; i < events; i++ {
		if _, err := b.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Load() != events {
		t.Fatalf("Close returned with %d of %d events delivered", got.Load(), events)
	}
	if err := b.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// Publishing after Close must still match without blocking or panicking.
	if n, err := b.Publish(ev); err != nil || n != 1 {
		t.Fatalf("publish after close: n=%d err=%v", n, err)
	}
}

func TestUnsubscribeStopsDeliverer(t *testing.T) {
	b := queuedBroker(t, 8)
	defer b.Close()
	id, err := b.SubscribeFunc(Subscription{}, func(sub uint32, ev Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Unsubscribe(id) {
		t.Fatal("unsubscribe reported missing id")
	}
	if ss := b.SubscriberStats(); len(ss) != 0 {
		t.Fatalf("subscriber stats after unsubscribe = %+v", ss)
	}
	ev := Event{"distance": Value(10), "price": Value(550), "rooms": Value(4), "baths": Value(2)}
	if n, err := b.Publish(ev); err != nil || n != 0 {
		t.Fatalf("publish after unsubscribe: n=%d err=%v", n, err)
	}
}

func TestNegativeQueueDepthRejected(t *testing.T) {
	if _, err := NewBroker(apartmentSchema(), Options{QueueDepth: -1}); err == nil {
		t.Fatal("negative queue depth accepted")
	}
}

// TestQueuedBrokerConcurrent is the -race stress: concurrent publishers,
// subscribe/unsubscribe churn, and stats readers against queued delivery.
func TestQueuedBrokerConcurrent(t *testing.T) {
	b, err := NewBroker(apartmentSchema(), Options{QueueDepth: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := Event{"distance": Value(10), "price": Value(550), "rooms": Value(4), "baths": Value(2)}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := b.Publish(ev); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // churn
		defer wg.Done()
		for i := 0; i < 200; i++ {
			id, err := b.SubscribeFunc(Subscription{"price": {Lo: 400, Hi: 700}},
				func(sub uint32, ev Event) {})
			if err != nil {
				t.Errorf("subscribe: %v", err)
				return
			}
			if i%2 == 0 {
				b.Unsubscribe(id)
			}
		}
	}()
	wg.Add(1)
	go func() { // stats reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = b.Stats()
			_ = b.SubscriberStats()
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	s := b.Stats()
	if s.Events == 0 {
		t.Fatal("no events matched during stress")
	}
}

// TestDroppedClosedCause pins the second drop cause: an event that matches
// a subscriber whose queue has been stopped (here by Close) is counted as
// dropped_closed, not dropped_full.
func TestDroppedClosedCause(t *testing.T) {
	b := queuedBroker(t, 4)
	if _, err := b.SubscribeFunc(Subscription{}, func(uint32, Event) {}); err != nil {
		t.Fatal(err)
	}
	b.Close() // stops the deliverer; the subscription still matches
	ev := Event{"distance": Value(10), "price": Value(550), "rooms": Value(4), "baths": Value(2)}
	if _, err := b.Publish(ev); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.DroppedClosed != 1 || s.DroppedFull != 0 || s.Dropped != 1 {
		t.Fatalf("drop split after close = %+v", s)
	}
}
