// Package pubsub implements the paper's motivating application (§1): a
// selective-dissemination-of-information (SDI) notification system. Range
// subscriptions ("apartments between 400$ and 700$, 3 to 5 rooms") are
// multidimensional extended objects over a typed attribute schema; incoming
// events — points ("this apartment costs 550$, has 4 rooms") or ranges
// ("apartments for rent: 600$-900$") — are matched against the subscription
// database through the adaptive clustering index, which is exactly the
// workload the index was designed for: millions of subscriptions, tens of
// attributes, high event rates.
package pubsub

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/shard"
	"accluster/internal/telemetry"
)

// Attribute defines one dimension of the subscription schema with its value
// domain; values are normalized into the index's [0,1] domain.
type Attribute struct {
	Name     string
	Min, Max float64
}

// Schema is an ordered attribute list.
type Schema []Attribute

// Validate checks the schema for duplicates and empty domains.
func (s Schema) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("pubsub: empty schema")
	}
	seen := make(map[string]bool, len(s))
	for _, a := range s {
		if a.Name == "" {
			return fmt.Errorf("pubsub: attribute with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("pubsub: duplicate attribute %q", a.Name)
		}
		seen[a.Name] = true
		if !(a.Max > a.Min) {
			return fmt.Errorf("pubsub: attribute %q has empty domain [%g,%g]", a.Name, a.Min, a.Max)
		}
	}
	return nil
}

// Range is a closed interval over one attribute's native domain.
type Range struct{ Lo, Hi float64 }

// Value returns the degenerate range for a single value.
func Value(v float64) Range { return Range{Lo: v, Hi: v} }

// Subscription is a conjunction of per-attribute ranges; attributes absent
// from the map accept any value.
type Subscription map[string]Range

// Event carries the attribute values (or ranges) of a published item.
// Attributes absent from a point event match only subscriptions that accept
// the whole domain on them; for range matching, absent attributes are
// treated as the full domain.
type Event map[string]Range

// Handler receives matched events for a subscription.
type Handler func(sub uint32, ev Event)

// engine is the index surface the broker needs; it must be internally
// synchronized. lockedIndex (one adaptive index behind a mutex) and
// shard.Engine (the parallel partitioned index) both satisfy it.
type engine interface {
	Insert(id uint32, r geom.Rect) error
	Delete(id uint32) bool
	SearchIDs(q geom.Rect, rel geom.Relation) ([]uint32, error)
	SearchIDsBatch(dst *geom.IDBatch, qs []geom.Rect, rel geom.Relation) error
	Len() int
	Clusters() int
}

// lockedIndex guards a single adaptive index with a reader/writer lock:
// event matching holds it shared, so concurrent Publish/Match calls execute
// in parallel even on the single-index broker; subscribe/unsubscribe hold
// it exclusive. Statistics publish after the shared phase via
// core.TryDrainStats — matching never waits on index maintenance.
type lockedIndex struct {
	mu sync.RWMutex
	ix *core.Index
}

func (l *lockedIndex) Insert(id uint32, r geom.Rect) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ix.Insert(id, r)
}

func (l *lockedIndex) Delete(id uint32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ix.Delete(id)
}

func (l *lockedIndex) SearchIDs(q geom.Rect, rel geom.Relation) ([]uint32, error) {
	l.mu.RLock()
	ids, err := l.ix.SearchIDsAppendRead(nil, q, rel)
	l.mu.RUnlock()
	l.ix.TryDrainStats(&l.mu)
	return ids, err
}

func (l *lockedIndex) SearchIDsBatch(dst *geom.IDBatch, qs []geom.Rect, rel geom.Relation) error {
	l.mu.RLock()
	err := l.ix.SearchBatchRead(dst, qs, rel)
	l.mu.RUnlock()
	l.ix.TryDrainStats(&l.mu)
	return err
}

func (l *lockedIndex) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ix.Len()
}

func (l *lockedIndex) Clusters() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ix.Clusters()
}

// subscriber is the delivery state of one handler-bearing subscription.
// delivered/dropped are atomics so the asynchronous deliverer and the stats
// surface never contend with the broker lock.
type subscriber struct {
	id        uint32
	h         Handler
	q         chan Event    // nil in synchronous mode
	done      chan struct{} // closed when the deliverer drained out
	closed    bool          // guarded by Broker.mu; q has been closed
	delivered atomic.Int64
	// Drops split by cause, matching the netbroker server's convention so
	// the in-process and networked delivery paths report identically:
	// droppedFull counts queue-overflow sheds, droppedClosed counts
	// matches that arrived after the subscriber was stopped but before it
	// was unregistered.
	droppedFull   atomic.Int64
	droppedClosed atomic.Int64
}

// run is the per-subscriber deliverer goroutine: it drains the queue in
// order, invoking the handler outside every broker lock, and keeps draining
// whatever was enqueued before close.
func (s *subscriber) run() {
	defer close(s.done)
	for ev := range s.q {
		s.h(s.id, ev)
		s.delivered.Add(1)
	}
}

// Broker is the notification engine. It is safe for concurrent use.
type Broker struct {
	schema Schema
	dims   map[string]int
	ix     engine
	depth  int // per-subscriber queue capacity (0 = synchronous)

	mu       sync.Mutex
	nextID   uint32
	subs     map[uint32]*subscriber
	events   int64
	matches  int64
	closed   bool
	maxDepth atomic.Int64 // high-water mark of any subscriber queue
}

// Options tune the underlying adaptive index.
type Options struct {
	// Scenario selects the cost model (default in-memory).
	Scenario cost.Params
	// ReorgEvery is the reorganization period (default 100 events).
	ReorgEvery int
	// Shards, when > 1, runs the broker on the sharded parallel engine
	// with that many partitions (rounded up to a power of two) instead of
	// a single mutex-serialized index — events on a busy broker then
	// match concurrently across cores. 0 or 1 keeps the single index.
	Shards int
	// QueueDepth, when > 0, makes notification delivery asynchronous:
	// every handler-bearing subscription gets a bounded queue of this
	// capacity drained by its own goroutine, so one slow handler delays
	// only its own subscriber instead of the publisher. A full queue
	// drops the event for that subscriber (counted per subscriber);
	// call Close to stop the deliverers. 0 keeps the synchronous
	// invoke-from-Publish behavior.
	QueueDepth int
}

// NewBroker builds a broker over the given schema.
func NewBroker(schema Schema, opts Options) (*Broker, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("pubsub: queue depth must be ≥ 0, got %d", opts.QueueDepth)
	}
	cfg := core.Config{
		Dims:       len(schema),
		Params:     opts.Scenario,
		ReorgEvery: opts.ReorgEvery,
	}
	var ix engine
	if opts.Shards > 1 {
		e, err := shard.New(shard.Config{Shards: opts.Shards, Core: cfg})
		if err != nil {
			return nil, err
		}
		ix = e
	} else {
		cix, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		ix = &lockedIndex{ix: cix}
	}
	dims := make(map[string]int, len(schema))
	for i, a := range schema {
		dims[a.Name] = i
	}
	return &Broker{
		schema: schema,
		dims:   dims,
		ix:     ix,
		depth:  opts.QueueDepth,
		subs:   make(map[uint32]*subscriber),
	}, nil
}

// normalize maps a native value into [0,1] for attribute d.
func (b *Broker) normalize(d int, v float64) (float32, error) {
	a := b.schema[d]
	if v < a.Min || v > a.Max {
		return 0, fmt.Errorf("pubsub: value %g outside domain [%g,%g] of %q", v, a.Min, a.Max, a.Name)
	}
	return float32((v - a.Min) / (a.Max - a.Min)), nil
}

// rectOf converts per-attribute ranges into an index rectangle; missing
// attributes span the full domain.
func (b *Broker) rectOf(ranges map[string]Range) (geom.Rect, error) {
	r := geom.NewRect(len(b.schema))
	for d := range b.schema {
		r.Max[d] = 1
	}
	for name, rg := range ranges {
		d, ok := b.dims[name]
		if !ok {
			return geom.Rect{}, fmt.Errorf("pubsub: unknown attribute %q", name)
		}
		if rg.Hi < rg.Lo {
			return geom.Rect{}, fmt.Errorf("pubsub: inverted range for %q", name)
		}
		lo, err := b.normalize(d, rg.Lo)
		if err != nil {
			return geom.Rect{}, err
		}
		hi, err := b.normalize(d, rg.Hi)
		if err != nil {
			return geom.Rect{}, err
		}
		r.Min[d], r.Max[d] = lo, hi
	}
	return r, nil
}

// Subscribe registers a subscription and returns its identifier.
func (b *Broker) Subscribe(sub Subscription) (uint32, error) {
	return b.SubscribeFunc(sub, nil)
}

// SubscribeFunc registers a subscription with a notification handler invoked
// for every matching event — directly from Publish in synchronous mode, or
// by the subscriber's deliverer goroutine with Options.QueueDepth > 0.
func (b *Broker) SubscribeFunc(sub Subscription, h Handler) (uint32, error) {
	r, err := b.rectOf(sub)
	if err != nil {
		return 0, err
	}
	// The handler is registered before the index insert: the subscription
	// cannot match until it is in the index, and a handler for an absent
	// id is inert.
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	if h != nil {
		s := &subscriber{id: id, h: h}
		if b.depth > 0 && !b.closed {
			s.q = make(chan Event, b.depth)
			s.done = make(chan struct{})
			go s.run()
		}
		b.subs[id] = s
	}
	b.mu.Unlock()
	if err := b.ix.Insert(id, r); err != nil {
		b.mu.Lock()
		if s := b.subs[id]; s != nil {
			b.stopLocked(s)
			delete(b.subs, id)
		}
		b.mu.Unlock()
		return 0, err
	}
	return id, nil
}

// stopLocked closes a subscriber's queue (the deliverer drains what is
// already enqueued, then exits). Caller holds b.mu.
func (b *Broker) stopLocked(s *subscriber) {
	if s.q != nil && !s.closed {
		s.closed = true
		close(s.q)
	}
}

// Unsubscribe removes a subscription, reporting whether it existed. Events
// already queued for the subscriber are still delivered.
func (b *Broker) Unsubscribe(id uint32) bool {
	b.mu.Lock()
	if s := b.subs[id]; s != nil {
		b.stopLocked(s)
		delete(b.subs, id)
	}
	b.mu.Unlock()
	return b.ix.Delete(id)
}

// Close stops all deliverer goroutines, waiting until every queued event has
// been handled. The broker stays usable for Match afterwards; Publish still
// matches but no longer invokes handlers of queued subscribers. No-op in
// synchronous mode (and idempotent in both).
func (b *Broker) Close() error {
	b.mu.Lock()
	b.closed = true
	var waits []chan struct{}
	for _, s := range b.subs {
		b.stopLocked(s)
		if s.done != nil {
			waits = append(waits, s.done)
		}
	}
	b.mu.Unlock()
	for _, d := range waits {
		<-d
	}
	return nil
}

// Match returns the subscriptions matching the event: subscriptions whose
// ranges enclose a point event, or intersect a range event (range events let
// subscribers see offers close to their wishes, §1).
func (b *Broker) Match(ev Event) ([]uint32, error) {
	q, rel, err := b.eventQuery(ev)
	if err != nil {
		return nil, err
	}
	ids, err := b.ix.SearchIDs(q, rel)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.events++
	b.matches += int64(len(ids))
	b.mu.Unlock()
	return ids, nil
}

// Publish matches the event and notifies the handlers of all matching
// subscriptions: synchronously (outside the broker lock) by default, or by
// bounded per-subscriber queues with Options.QueueDepth > 0 — a full queue
// drops the event for that subscriber and counts the drop, so one slow
// consumer can never stall the publisher or its peers.
func (b *Broker) Publish(ev Event) (int, error) {
	ids, err := b.Match(ev)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	var direct []*subscriber
	for _, id := range ids {
		s := b.subs[id]
		if s == nil {
			continue
		}
		if s.q == nil {
			direct = append(direct, s)
			continue
		}
		if s.closed {
			s.droppedClosed.Add(1)
			continue
		}
		// Non-blocking enqueue under b.mu: the lock orders us against
		// stopLocked, so a send on a closed queue is impossible.
		select {
		case s.q <- ev:
			if d := int64(len(s.q)); d > b.maxDepth.Load() {
				b.maxDepth.Store(d)
			}
		default:
			s.droppedFull.Add(1)
		}
	}
	b.mu.Unlock()
	for _, s := range direct {
		s.h(s.id, ev)
		s.delivered.Add(1)
	}
	return len(ids), nil
}

// directDelivery is one synchronous handler invocation owed by a batch:
// subscriber s matched event evs[ev].
type directDelivery struct {
	s  *subscriber
	ev int
}

// PublishBatch publishes a batch of events through at most two batched index
// passes — the point events as one Encloses batch, the range events as one
// Intersects batch — instead of one index pass per event, and delivers every
// match under a single broker lock acquisition in event order. The returned
// slices are positional: counts[i] is the number of subscriptions event i
// matched and errs[i] its error (nil on success) — one malformed event fails
// only itself, never its batchmates. Per-event matching, delivery and drop
// accounting (DroppedFull/DroppedClosed) are exactly those of looped Publish
// calls; only Events/Matches bookkeeping and delivery locking are coalesced.
func (b *Broker) PublishBatch(evs []Event) ([]int, []error) {
	counts := make([]int, len(evs))
	errs := make([]error, len(evs))
	if len(evs) == 0 {
		return counts, errs
	}
	// Partition the batch by relation; each partition is one index batch.
	var (
		encQ, intQ     []geom.Rect
		encIdx, intIdx []int
	)
	for i, ev := range evs {
		q, rel, err := b.eventQuery(ev)
		if err != nil {
			errs[i] = err
			continue
		}
		if rel == geom.Encloses {
			encQ, encIdx = append(encQ, q), append(encIdx, i)
		} else {
			intQ, intIdx = append(intQ, q), append(intIdx, i)
		}
	}
	ids := make([][]uint32, len(evs))
	var encRes, intRes geom.IDBatch
	if len(encQ) > 0 {
		if err := b.ix.SearchIDsBatch(&encRes, encQ, geom.Encloses); err != nil {
			for _, i := range encIdx {
				errs[i] = err
			}
		} else {
			for k, i := range encIdx {
				ids[i] = encRes.Query(k)
			}
		}
	}
	if len(intQ) > 0 {
		if err := b.ix.SearchIDsBatch(&intRes, intQ, geom.Intersects); err != nil {
			for _, i := range intIdx {
				errs[i] = err
			}
		} else {
			for k, i := range intIdx {
				ids[i] = intRes.Query(k)
			}
		}
	}
	// Delivery: one lock acquisition for the whole batch, events in order.
	// Synchronous handlers run outside the lock afterwards, also in order.
	b.mu.Lock()
	var direct []directDelivery
	for i := range evs {
		if errs[i] != nil {
			continue
		}
		b.events++
		b.matches += int64(len(ids[i]))
		counts[i] = len(ids[i])
		for _, id := range ids[i] {
			s := b.subs[id]
			if s == nil {
				continue
			}
			if s.q == nil {
				direct = append(direct, directDelivery{s: s, ev: i})
				continue
			}
			if s.closed {
				s.droppedClosed.Add(1)
				continue
			}
			select {
			case s.q <- evs[i]:
				if d := int64(len(s.q)); d > b.maxDepth.Load() {
					b.maxDepth.Store(d)
				}
			default:
				s.droppedFull.Add(1)
			}
		}
	}
	b.mu.Unlock()
	for _, d := range direct {
		d.s.h(d.s.id, evs[d.ev])
		d.s.delivered.Add(1)
	}
	return counts, errs
}

// eventQuery converts an event into a query rectangle and relation.
func (b *Broker) eventQuery(ev Event) (geom.Rect, geom.Relation, error) {
	point := true
	for _, rg := range ev {
		if rg.Hi != rg.Lo {
			point = false
			break
		}
	}
	if point && len(ev) != len(b.schema) {
		// A point event must bind every attribute; otherwise treat the
		// free attributes as full ranges and fall back to intersection.
		point = false
	}
	q, err := b.rectOf(ev)
	if err != nil {
		return geom.Rect{}, 0, err
	}
	if point {
		return q, geom.Encloses, nil
	}
	return q, geom.Intersects, nil
}

// Stats summarizes broker activity.
type Stats struct {
	Subscriptions int
	Events        int64
	Matches       int64
	// Delivered totals the per-subscriber handler invocations. Dropped
	// totals every shed delivery, split by cause: DroppedFull counts
	// queue-overflow sheds, DroppedClosed counts matches that raced a
	// subscriber's shutdown. In synchronous mode all three are always 0.
	Delivered     int64
	Dropped       int64
	DroppedFull   int64
	DroppedClosed int64
	// Queued is the number of events currently waiting in subscriber
	// queues; MaxQueueDepth is the high-water mark any single queue
	// reached. Both are 0 in synchronous mode.
	Queued        int64
	MaxQueueDepth int64
	Clusters      int
}

// Stats returns a snapshot of broker activity.
func (b *Broker) Stats() Stats {
	subs, clusters := b.ix.Len(), b.ix.Clusters()
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Stats{
		Subscriptions: subs,
		Events:        b.events,
		Matches:       b.matches,
		MaxQueueDepth: b.maxDepth.Load(),
		Clusters:      clusters,
	}
	for _, sub := range b.subs {
		s.Delivered += sub.delivered.Load()
		s.DroppedFull += sub.droppedFull.Load()
		s.DroppedClosed += sub.droppedClosed.Load()
		if sub.q != nil {
			s.Queued += int64(len(sub.q))
		}
	}
	s.Dropped = s.DroppedFull + s.DroppedClosed
	return s
}

// SubscriberStats describes the delivery state of one handler-bearing
// subscription.
type SubscriberStats struct {
	// ID is the subscription identifier.
	ID uint32
	// Delivered counts handler invocations; Dropped totals lost events,
	// split into DroppedFull (queue overflow) and DroppedClosed (matched
	// while the subscriber was shutting down).
	Delivered, Dropped         int64
	DroppedFull, DroppedClosed int64
	// QueueLen is the current queue occupancy (0 in synchronous mode).
	QueueLen int
}

// SubscriberStats returns per-subscriber delivery counters in id order
// (subscriptions without handlers have no delivery state and are omitted).
func (b *Broker) SubscriberStats() []SubscriberStats {
	b.mu.Lock()
	out := make([]SubscriberStats, 0, len(b.subs))
	for _, s := range b.subs {
		st := SubscriberStats{ID: s.id, Delivered: s.delivered.Load(),
			DroppedFull: s.droppedFull.Load(), DroppedClosed: s.droppedClosed.Load()}
		st.Dropped = st.DroppedFull + st.DroppedClosed
		if s.q != nil {
			st.QueueLen = len(s.q)
		}
		out = append(out, st)
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TelemetrySource exposes broker activity as a flight-recorder gauge source.
func (b *Broker) TelemetrySource() telemetry.Source {
	return telemetry.Source{
		Name: "pubsub",
		Cols: []string{"subscriptions", "events", "matches", "delivered",
			"dropped_full", "dropped_closed", "queued", "max_queue_depth", "clusters"},
		Read: func(dst []int64) []int64 {
			s := b.Stats()
			return append(dst, int64(s.Subscriptions), s.Events, s.Matches,
				s.Delivered, s.DroppedFull, s.DroppedClosed, s.Queued,
				s.MaxQueueDepth, int64(s.Clusters))
		},
	}
}

// Schema returns the broker's attribute schema.
func (b *Broker) Schema() Schema { return b.schema }
