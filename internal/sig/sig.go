// Package sig implements cluster signatures and the clustering function of
// the paper (§4). A signature stores, for every dimension, a variation
// interval for object interval starts ([amin,amax]) and one for object
// interval ends ([bmin,bmax]). Objects whose per-dimension start/end fall in
// the corresponding variation intervals match the signature; queries match
// through relation-specific necessary conditions, so signature pruning never
// produces false negatives.
//
// Variation intervals are half-open [min,max) except when the upper bound is
// the domain maximum 1, where they are closed. This convention makes nested
// subdivision exact (paper §4.2 Example 3 uses the same scheme) and lets the
// root signature accept every object.
package sig

import (
	"fmt"
	"strings"

	"accluster/internal/geom"
)

// Signature describes the grouping characteristics of a cluster. All four
// slices have the same length (the dimensionality). The zero value is not
// usable; construct with Root or Child.
type Signature struct {
	ALo, AHi []float32 // variation interval for interval starts, per dim
	BLo, BHi []float32 // variation interval for interval ends, per dim
}

// Root returns the signature of the root cluster: complete domains in all
// dimensions, accepting any spatial object (§4.1 Example 1).
func Root(dims int) Signature {
	s := Signature{
		ALo: make([]float32, dims), AHi: make([]float32, dims),
		BLo: make([]float32, dims), BHi: make([]float32, dims),
	}
	for d := 0; d < dims; d++ {
		s.AHi[d] = 1
		s.BHi[d] = 1
	}
	return s
}

// Dims returns the dimensionality of s.
func (s Signature) Dims() int { return len(s.ALo) }

// Clone returns a deep copy of s.
func (s Signature) Clone() Signature {
	c := Signature{
		ALo: append([]float32(nil), s.ALo...),
		AHi: append([]float32(nil), s.AHi...),
		BLo: append([]float32(nil), s.BLo...),
		BHi: append([]float32(nil), s.BHi...),
	}
	return c
}

// Equal reports whether s and o have identical variation intervals.
func (s Signature) Equal(o Signature) bool {
	if s.Dims() != o.Dims() {
		return false
	}
	for d := range s.ALo {
		if s.ALo[d] != o.ALo[d] || s.AHi[d] != o.AHi[d] ||
			s.BLo[d] != o.BLo[d] || s.BHi[d] != o.BHi[d] {
			return false
		}
	}
	return true
}

// IsRoot reports whether s places no constraint on any dimension.
func (s Signature) IsRoot() bool {
	for d := range s.ALo {
		if s.ALo[d] != 0 || s.AHi[d] != 1 || s.BLo[d] != 0 || s.BHi[d] != 1 {
			return false
		}
	}
	return true
}

// Constrained reports whether dimension d carries a real grouping constraint.
func (s Signature) Constrained(d int) bool {
	return s.ALo[d] != 0 || s.AHi[d] != 1 || s.BLo[d] != 0 || s.BHi[d] != 1
}

// inVar reports membership of x in the variation interval [lo,hi), closed at
// the top when hi is the domain maximum 1.
func inVar(x, lo, hi float32) bool {
	if x < lo || x > hi {
		return false
	}
	if x == hi {
		return hi == 1
	}
	return true
}

// MatchesObject reports whether the object r qualifies for s: in every
// dimension its start lies in [ALo,AHi) and its end in [BLo,BHi).
func (s Signature) MatchesObject(r geom.Rect) bool {
	for d := range s.ALo {
		if !inVar(r.Min[d], s.ALo[d], s.AHi[d]) || !inVar(r.Max[d], s.BLo[d], s.BHi[d]) {
			return false
		}
	}
	return true
}

// MatchesObjectFlat is MatchesObject over the flat float32 layout, avoiding a
// Rect materialization. buf holds objects of s.Dims() dimensions; i indexes
// the object.
func (s Signature) MatchesObjectFlat(buf []float32, i int) bool {
	dims := s.Dims()
	base := i * 2 * dims
	for d := 0; d < dims; d++ {
		if !inVar(buf[base+2*d], s.ALo[d], s.AHi[d]) ||
			!inVar(buf[base+2*d+1], s.BLo[d], s.BHi[d]) {
			return false
		}
	}
	return true
}

// queryMatchesDim evaluates the per-dimension necessary condition for a
// query interval [qlo,qhi] to possibly select some object matching the
// variation intervals [alo,ahi) x [blo,bhi). The conditions are conservative
// (closed comparisons), so pruning never loses answers.
func queryMatchesDim(rel geom.Relation, qlo, qhi, alo, ahi, blo, bhi float32) bool {
	switch rel {
	case geom.Intersects:
		// Some object with lo ≥ alo and hi ≤ bhi can overlap [qlo,qhi]
		// iff alo ≤ qhi and qlo ≤ bhi.
		return alo <= qhi && qlo <= bhi
	case geom.ContainedBy:
		// Need an object with lo ≥ qlo (possible iff ahi ≥ qlo) and
		// hi ≤ qhi (possible iff blo ≤ qhi).
		return ahi >= qlo && blo <= qhi
	case geom.Encloses:
		// Need an object with lo ≤ qlo (possible iff alo ≤ qlo) and
		// hi ≥ qhi (possible iff bhi ≥ qhi).
		return alo <= qlo && bhi >= qhi
	default:
		return false
	}
}

// MatchesQuery reports whether a query with rectangle q and the given
// relation must explore a cluster carrying signature s.
func (s Signature) MatchesQuery(q geom.Rect, rel geom.Relation) bool {
	for d := range s.ALo {
		if !queryMatchesDim(rel, q.Min[d], q.Max[d], s.ALo[d], s.AHi[d], s.BLo[d], s.BHi[d]) {
			return false
		}
	}
	return true
}

// Covers reports whether every object matching sub necessarily matches s
// (the backward compatibility property of the clustering function, §3.3).
// It holds when each of s's variation intervals contains sub's.
func (s Signature) Covers(sub Signature) bool {
	if s.Dims() != sub.Dims() {
		return false
	}
	for d := range s.ALo {
		if sub.ALo[d] < s.ALo[d] || sub.AHi[d] > s.AHi[d] ||
			sub.BLo[d] < s.BLo[d] || sub.BHi[d] > s.BHi[d] {
			return false
		}
	}
	return true
}

// String renders the constrained dimensions of s compactly.
func (s Signature) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for d := range s.ALo {
		if !s.Constrained(d) {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "d%d[%.4g,%.4g):[%.4g,%.4g)", d+1, s.ALo[d], s.AHi[d], s.BLo[d], s.BHi[d])
	}
	if first {
		b.WriteString("root")
	}
	b.WriteByte('}')
	return b.String()
}
