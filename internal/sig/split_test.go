package sig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accluster/internal/geom"
)

func TestEnumerateCountsOnRoot(t *testing.T) {
	// On the root, both variation intervals of every dimension coincide
	// ([0,1]), so symmetry leaves f(f+1)/2 feasible combinations per
	// dimension (§4.2 footnote 3): for f=4 that is 10 per dimension.
	for _, dims := range []int{1, 2, 16, 40} {
		splits := Enumerate(Root(dims), 4)
		want := dims * 10
		if len(splits) != want {
			t.Errorf("dims=%d: %d candidates, want %d", dims, len(splits), want)
		}
	}
	// Division factor 2: 2*3/2 = 3 per dimension.
	if got := len(Enumerate(Root(3), 2)); got != 9 {
		t.Errorf("f=2 dims=3: %d candidates, want 9", got)
	}
}

func TestEnumerateCountsAsymmetric(t *testing.T) {
	// When the two variation intervals differ, all feasible combinations
	// are kept; with A entirely below B, every combination is feasible:
	// f² per refined dimension.
	s := Root(1)
	s.ALo[0], s.AHi[0] = 0.0, 0.25
	s.BLo[0], s.BHi[0] = 0.75, 1.0
	if got := len(Enumerate(s, 4)); got != 16 {
		t.Errorf("asymmetric: %d candidates, want 16", got)
	}
}

func TestEnumerateBoundsPaperExample3(t *testing.T) {
	// §4.2 Example 3: refining c1 = {d1[0,0.25):[0,0.25), d2 root} on d1
	// with f=4 yields subintervals of width 0.0625 and only 10 distinct
	// combinations.
	s := Root(2)
	s.ALo[0], s.AHi[0] = 0, 0.25
	s.BLo[0], s.BHi[0] = 0, 0.25
	var d0 []Split
	for _, sp := range Enumerate(s, 4) {
		if sp.Dim == 0 {
			d0 = append(d0, sp)
		}
	}
	if len(d0) != 10 {
		t.Fatalf("d1 candidates = %d, want 10", len(d0))
	}
	// The first candidate corresponds to starts in [0,0.0625) and ends in
	// [0,0.0625).
	found := false
	for _, sp := range d0 {
		aLo, aHi, bLo, bHi := sp.Bounds(s)
		if aLo == 0 && aHi == 0.0625 && bLo == 0 && bHi == 0.0625 {
			found = true
		}
		if aLo > bHi {
			t.Errorf("infeasible candidate emitted: a=[%g,%g) b=[%g,%g)", aLo, aHi, bLo, bHi)
		}
	}
	if !found {
		t.Error("expected candidate σ1 = d1[0,0.0625):[0,0.0625)")
	}
}

func TestChildBackwardCompatibility(t *testing.T) {
	// Property (§3.3): any object qualifying for a subcluster qualifies
	// for the cluster. Check over random refinement chains.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(4) + 1
		s := Root(dims)
		for depth := 0; depth < 3; depth++ {
			splits := Enumerate(s, 4)
			if len(splits) == 0 {
				return true
			}
			sp := splits[rng.Intn(len(splits))]
			child := sp.Child(s)
			if !s.Covers(child) {
				return false
			}
			for i := 0; i < 30; i++ {
				o := randomRect(rng, dims)
				if child.MatchesObject(o) && !s.MatchesObject(o) {
					return false
				}
			}
			s = child
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChildrenPartitionParentMembers(t *testing.T) {
	// For a fixed dimension the candidates tile the parent's variation
	// rectangle: every parent member matches at least one candidate on
	// that dimension, and no two distinct candidates of the same dimension
	// share a member.
	s := Root(2)
	splits := Enumerate(s, 4)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		o := randomRect(rng, 2)
		for d := 0; d < 2; d++ {
			matches := 0
			for _, sp := range splits {
				if sp.Dim != d {
					continue
				}
				if sp.MatchesObjectDim(s, o.Min[d], o.Max[d]) {
					matches++
				}
			}
			if matches != 1 {
				t.Fatalf("object %v matches %d candidates on dim %d, want exactly 1", o, matches, d)
			}
		}
	}
}

func TestMatchesObjectDimAgreesWithChildSignature(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(4) + 1
		s := Root(dims)
		if n := rng.Intn(3); n > 0 {
			for k := 0; k < n; k++ {
				splits := Enumerate(s, 4)
				if len(splits) == 0 {
					break
				}
				s = splits[rng.Intn(len(splits))].Child(s)
			}
		}
		splits := Enumerate(s, 4)
		for i := 0; i < 20; i++ {
			o := randomRect(rng, dims)
			if !s.MatchesObject(o) {
				continue
			}
			for _, sp := range splits {
				fast := sp.MatchesObjectDim(s, o.Min[sp.Dim], o.Max[sp.Dim])
				slow := sp.Child(s).MatchesObject(o)
				if fast != slow {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMatchesQueryDimAgreesWithChildSignature(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(4) + 1
		s := Root(dims)
		splits := Enumerate(s, 4)
		for i := 0; i < 20; i++ {
			q := randomRect(rng, dims)
			for _, rel := range []geom.Relation{geom.Intersects, geom.ContainedBy, geom.Encloses} {
				if !s.MatchesQuery(q, rel) {
					continue
				}
				for _, sp := range splits {
					fast := sp.MatchesQueryDim(s, rel, q.Min[sp.Dim], q.Max[sp.Dim])
					slow := sp.Child(s).MatchesQuery(q, rel)
					if fast != slow {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEnumerateSkipsDegenerate(t *testing.T) {
	s := Root(2)
	// Dimension 0 fully degenerate: no candidates from it.
	s.ALo[0], s.AHi[0] = 0.5, 0.5
	s.BLo[0], s.BHi[0] = 0.5, 0.5
	for _, sp := range Enumerate(s, 4) {
		if sp.Dim == 0 {
			t.Fatalf("degenerate dimension produced candidate %+v", sp)
		}
	}
	// Only the A side degenerate: B still refined, f candidates.
	s2 := Root(1)
	s2.ALo[0], s2.AHi[0] = 0.5, 0.5
	s2.BLo[0], s2.BHi[0] = 0.5, 1.0
	got := Enumerate(s2, 4)
	if len(got) != 4 {
		t.Fatalf("A-degenerate dimension: %d candidates, want 4", len(got))
	}
	for _, sp := range got {
		if sp.FA != 1 || sp.FB != 4 {
			t.Fatalf("unexpected division: %+v", sp)
		}
	}
}

func TestEnumerateRejectsSmallFactor(t *testing.T) {
	if Enumerate(Root(2), 1) != nil || Enumerate(Root(2), 0) != nil {
		t.Error("division factor < 2 must produce no candidates")
	}
}

func TestMatchesObjectFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := Root(3)
	splits := Enumerate(s, 4)
	s = splits[rng.Intn(len(splits))].Child(s)
	var buf []float32
	var rects []geom.Rect
	for i := 0; i < 100; i++ {
		r := randomRect(rng, 3)
		rects = append(rects, r)
		buf = geom.AppendFlat(buf, r)
	}
	for i, r := range rects {
		if s.MatchesObjectFlat(buf, i) != s.MatchesObject(r) {
			t.Fatalf("flat/rect mismatch on object %d", i)
		}
	}
}

func TestMaxCandidates(t *testing.T) {
	if MaxCandidates(16, 4) != 256 {
		t.Errorf("MaxCandidates(16,4) = %d, want 256", MaxCandidates(16, 4))
	}
	// Paper §6: 16-dim space has between 160 and 256 candidates.
	n := len(Enumerate(Root(16), 4))
	if n < 160 || n > 256 {
		t.Errorf("root candidates for 16 dims = %d, want within [160,256]", n)
	}
}
