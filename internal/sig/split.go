package sig

import "accluster/internal/geom"

// The clustering function (§4.2): given a cluster signature, candidate
// subcluster signatures are produced by picking one dimension, dividing both
// of its variation intervals into f subintervals (the division factor) and
// combining every feasible pair of subintervals. Candidates are virtual: a
// Split records only the dimension and the two subinterval indices, and the
// concrete bounds are derived from the parent signature on demand, keeping
// per-candidate state small (the paper keeps only performance indicators).

// Split identifies one candidate subcluster of a parent signature: the
// refined dimension and the subinterval chosen for the start-variation (IA)
// and end-variation (IB) intervals. FA and FB record how many subdivisions
// were used for each side (1 when a side is left unrefined because it is
// degenerate).
type Split struct {
	Dim    int
	IA, IB int
	FA, FB int
}

// subBound returns the k-th division bound of [lo,hi] cut into f parts.
// Endpoints are returned exactly to keep nested subdivision consistent.
func subBound(lo, hi float32, k, f int) float32 {
	switch k {
	case 0:
		return lo
	case f:
		return hi
	default:
		return lo + (hi-lo)*float32(k)/float32(f)
	}
}

// Bounds derives the candidate's variation intervals for the refined
// dimension from the parent signature.
func (sp Split) Bounds(parent Signature) (aLo, aHi, bLo, bHi float32) {
	d := sp.Dim
	aLo = subBound(parent.ALo[d], parent.AHi[d], sp.IA, sp.FA)
	aHi = subBound(parent.ALo[d], parent.AHi[d], sp.IA+1, sp.FA)
	bLo = subBound(parent.BLo[d], parent.BHi[d], sp.IB, sp.FB)
	bHi = subBound(parent.BLo[d], parent.BHi[d], sp.IB+1, sp.FB)
	return
}

// Child materializes the candidate signature: the parent signature with the
// refined dimension's variation intervals replaced.
func (sp Split) Child(parent Signature) Signature {
	c := parent.Clone()
	aLo, aHi, bLo, bHi := sp.Bounds(parent)
	c.ALo[sp.Dim], c.AHi[sp.Dim] = aLo, aHi
	c.BLo[sp.Dim], c.BHi[sp.Dim] = bLo, bHi
	return c
}

// MatchesObjectDim checks whether an object whose refined-dimension interval
// is [lo,hi] qualifies for the candidate, assuming it already matches the
// parent signature (candidates differ from the parent only in sp.Dim).
func (sp Split) MatchesObjectDim(parent Signature, lo, hi float32) bool {
	aLo, aHi, bLo, bHi := sp.Bounds(parent)
	return inVar(lo, aLo, aHi) && inVar(hi, bLo, bHi)
}

// MatchesQueryDim checks whether a query already matching the parent
// signature also matches the candidate, by evaluating the relation condition
// on the refined dimension only.
func (sp Split) MatchesQueryDim(parent Signature, rel geom.Relation, qlo, qhi float32) bool {
	aLo, aHi, bLo, bHi := sp.Bounds(parent)
	return queryMatchesDim(rel, qlo, qhi, aLo, aHi, bLo, bHi)
}

// Enumerate produces every feasible candidate split of the parent signature
// with division factor f (§4.2). For each dimension both variation intervals
// are divided into f subintervals and all combinations are emitted, except:
//
//   - combinations that cannot host any object (the start subinterval lies
//     entirely above the end subinterval, so lo ≤ hi is impossible) — when
//     the two variation intervals coincide this symmetry leaves f(f+1)/2
//     combinations (§4.2 footnote 3);
//   - degenerate variation intervals (zero width) are not subdivided; if
//     both sides of a dimension are degenerate the dimension yields no
//     candidates;
//   - the identity combination equal to the parent signature.
//
// The result length is therefore at most dims·f².
func Enumerate(parent Signature, f int) []Split {
	if f < 2 {
		return nil
	}
	var out []Split
	for d := 0; d < parent.Dims(); d++ {
		fa, fb := f, f
		aw := parent.AHi[d] - parent.ALo[d]
		bw := parent.BHi[d] - parent.BLo[d]
		if aw <= 0 {
			fa = 1
		}
		if bw <= 0 {
			fb = 1
		}
		if fa == 1 && fb == 1 {
			continue
		}
		// Guard against float underflow: if subdividing produces
		// zero-width intervals, leave the side unrefined.
		if fa > 1 && parent.ALo[d]+aw/float32(fa) == parent.ALo[d] {
			fa = 1
		}
		if fb > 1 && parent.BLo[d]+bw/float32(fb) == parent.BLo[d] {
			fb = 1
		}
		if fa == 1 && fb == 1 {
			continue
		}
		for ia := 0; ia < fa; ia++ {
			for ib := 0; ib < fb; ib++ {
				if fa == 1 && fb == 1 {
					continue
				}
				sp := Split{Dim: d, IA: ia, IB: ib, FA: fa, FB: fb}
				aLo, _, _, bHi := sp.Bounds(parent)
				// Feasibility: some object must satisfy lo ≤ hi
				// with lo ≥ aLo and hi < bHi (≤ when closed).
				if aLo > bHi || (aLo == bHi && bHi != 1) {
					continue
				}
				out = append(out, sp)
			}
		}
	}
	return out
}

// MaxCandidates returns the upper bound dims·f² on the number of candidates
// produced by Enumerate, useful for sizing.
func MaxCandidates(dims, f int) int { return dims * f * f }
