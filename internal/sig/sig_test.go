package sig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accluster/internal/geom"
)

func randomRect(rng *rand.Rand, dims int) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		a, b := rng.Float32(), rng.Float32()
		if a > b {
			a, b = b, a
		}
		r.Min[d], r.Max[d] = a, b
	}
	return r
}

func TestRootAcceptsEverything(t *testing.T) {
	root := Root(4)
	if !root.IsRoot() {
		t.Fatal("Root() must be unconstrained")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		r := randomRect(rng, 4)
		if !root.MatchesObject(r) {
			t.Fatalf("root must accept %v", r)
		}
		for _, rel := range []geom.Relation{geom.Intersects, geom.ContainedBy, geom.Encloses} {
			if !root.MatchesQuery(r, rel) {
				t.Fatalf("root must be explored by every query (%v, %v)", rel, r)
			}
		}
	}
	// Boundary objects: lo or hi exactly 0 or 1.
	for _, r := range []geom.Rect{
		geom.Point([]float32{0, 0, 0, 0}),
		geom.Point([]float32{1, 1, 1, 1}),
		{Min: []float32{0, 0, 0, 0}, Max: []float32{1, 1, 1, 1}},
	} {
		if !root.MatchesObject(r) {
			t.Errorf("root must accept boundary object %v", r)
		}
	}
}

func TestInVarBoundarySemantics(t *testing.T) {
	// [0.25, 0.5) half-open: 0.5 excluded.
	if inVar(0.5, 0.25, 0.5) {
		t.Error("upper bound < 1 must be exclusive")
	}
	if !inVar(0.25, 0.25, 0.5) {
		t.Error("lower bound is inclusive")
	}
	// [0.75, 1] closed at the domain maximum.
	if !inVar(1, 0.75, 1) {
		t.Error("upper bound == 1 must be inclusive")
	}
	if inVar(0.2, 0.25, 0.5) || inVar(0.6, 0.25, 0.5) {
		t.Error("values outside the interval must not match")
	}
}

func TestPaperExample2(t *testing.T) {
	// §4.1 Example 2: three sample clusters in 2 dimensions.
	o1 := geom.Rect{Min: []float32{0.05, 0.10}, Max: []float32{0.20, 0.30}}
	o2 := geom.Rect{Min: []float32{0.10, 0.55}, Max: []float32{0.15, 0.80}}
	c1 := Root(2)
	c1.ALo[0], c1.AHi[0] = 0.00, 0.25
	c1.BLo[0], c1.BHi[0] = 0.00, 0.25
	if !c1.MatchesObject(o1) || !c1.MatchesObject(o2) {
		t.Error("O1 and O2 must match c1 (d1 start and end in first quart)")
	}
	o3 := geom.Rect{Min: []float32{0.30, 0.55}, Max: []float32{0.80, 0.85}}
	if c1.MatchesObject(o3) {
		t.Error("O3 starts in [0.25,0.50) on d1 and must not match c1")
	}
	c2 := Root(2)
	c2.ALo[0], c2.AHi[0] = 0.25, 0.50
	c2.BLo[0], c2.BHi[0] = 0.75, 1.00
	c2.ALo[1], c2.AHi[1] = 0.50, 0.75
	c2.BLo[1], c2.BHi[1] = 0.75, 1.00
	o4 := geom.Rect{Min: []float32{0.30, 0.60}, Max: []float32{0.90, 0.95}}
	if !c2.MatchesObject(o4) {
		t.Error("O4 must match c2")
	}
	if c2.MatchesObject(o1) {
		t.Error("O1 must not match c2")
	}
}

func TestQueryMatchConditions(t *testing.T) {
	s := Root(1)
	s.ALo[0], s.AHi[0] = 0.25, 0.50 // starts in [0.25,0.50)
	s.BLo[0], s.BHi[0] = 0.50, 0.75 // ends in [0.50,0.75)

	q := func(lo, hi float32) geom.Rect {
		return geom.Rect{Min: []float32{lo}, Max: []float32{hi}}
	}
	// Intersection: feasible iff alo <= qhi and qlo <= bhi.
	if s.MatchesQuery(q(0.80, 0.90), geom.Intersects) {
		t.Error("query entirely above bhi cannot intersect any member")
	}
	if s.MatchesQuery(q(0.0, 0.2), geom.Intersects) {
		t.Error("query entirely below alo cannot intersect any member")
	}
	if !s.MatchesQuery(q(0.4, 0.6), geom.Intersects) {
		t.Error("overlapping query must match")
	}
	// Containment: need ahi >= qlo and blo <= qhi.
	if s.MatchesQuery(q(0.55, 0.95), geom.ContainedBy) {
		t.Error("no member can start at/after 0.55")
	}
	if !s.MatchesQuery(q(0.2, 0.8), geom.ContainedBy) {
		t.Error("wide query can contain members")
	}
	// Enclosure: need alo <= qlo and bhi >= qhi.
	if s.MatchesQuery(q(0.1, 0.2), geom.Encloses) {
		t.Error("members start at >= 0.25 and cannot enclose q.lo=0.1")
	}
	if !s.MatchesQuery(q(0.45, 0.55), geom.Encloses) {
		t.Error("members can enclose [0.45,0.55]")
	}
}

// TestQueryMatchIsConservative is the key pruning-soundness property: if an
// object matches a signature and a query selects the object, then the query
// must match the signature (no false negatives).
func TestQueryMatchIsConservative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(5) + 1
		parent := Root(dims)
		// Refine the root a few times to get a deep random signature.
		s := parent
		for k := 0; k < rng.Intn(4); k++ {
			splits := Enumerate(s, 4)
			if len(splits) == 0 {
				break
			}
			s = splits[rng.Intn(len(splits))].Child(s)
		}
		for i := 0; i < 50; i++ {
			o := randomRect(rng, dims)
			if !s.MatchesObject(o) {
				continue
			}
			q := randomRect(rng, dims)
			for _, rel := range []geom.Relation{geom.Intersects, geom.ContainedBy, geom.Encloses} {
				if o.Matches(rel, q) && !s.MatchesQuery(q, rel) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCovers(t *testing.T) {
	parent := Root(3)
	splits := Enumerate(parent, 4)
	for _, sp := range splits {
		child := sp.Child(parent)
		if !parent.Covers(child) {
			t.Fatalf("parent must cover child %v", child)
		}
		if child.Covers(parent) && !child.Equal(parent) {
			t.Fatalf("strict child must not cover parent: %v", child)
		}
	}
	if parent.Covers(Root(2)) {
		t.Error("different dimensionality never covers")
	}
}

func TestCloneEqualString(t *testing.T) {
	s := Root(2)
	s.ALo[1], s.AHi[1] = 0.25, 0.5
	c := s.Clone()
	if !c.Equal(s) {
		t.Fatal("clone must equal original")
	}
	c.ALo[1] = 0
	if c.Equal(s) {
		t.Fatal("clone must not share storage")
	}
	if got := Root(1).String(); got != "{root}" {
		t.Errorf("root String() = %q", got)
	}
	if got := s.String(); got == "{root}" {
		t.Errorf("constrained signature should render its dimension, got %q", got)
	}
}

func TestConstrained(t *testing.T) {
	s := Root(2)
	if s.Constrained(0) || s.Constrained(1) {
		t.Error("root has no constrained dimensions")
	}
	s.BHi[1] = 0.5
	if s.Constrained(0) || !s.Constrained(1) {
		t.Error("only dimension 1 is constrained")
	}
}
