package sig

import (
	mbits "math/bits"
	"sort"

	"accluster/internal/geom"
)

// Batched signature matching: one pass over the flat signature mirror for N
// queries. The single-query MatchBounds streams the mirror per query, so a
// batch of N pays N scans of the same 4·dims·clusters floats. The batch
// kernel transposes the member-verification layout onto the query set
// instead: the N query rectangles become per-dimension coordinate columns
// (BatchQueries), each signature's bounds become the scalar "query" of the
// geom block-scan kernels, and a per-signature bitmap of surviving queries is
// narrowed one dimension at a time — switching to scalar per-query completion
// once few queries survive, since a selective dimension usually leaves a
// handful of survivors that die within a dimension or two. The mirror is read
// once per batch and the per-(signature,query) conditions are bit-identical
// to MatchBounds, so the matched set per query — and therefore every
// downstream meter and statistics increment — equals the looped single-query
// scan.

// BatchQueries is the query-coordinate SoA of one batched selection: for each
// dimension d, LoCol[d·N+i] and HiCol[d·N+i] hold query i's interval in that
// dimension. When every rectangle is a point (Min == Max in every dimension,
// no NaNs), Points is set and Key/Perm additionally hold, per dimension, the
// batch's coordinates in ascending order with the original query index of
// each — the sorted view the point kernel binary-searches instead of running
// columnar passes. The sort is what batching buys: its cost is paid once per
// batch and amortizes over every signature in the mirror.
//
//ac:scratch
type BatchQueries struct {
	Dims, N      int
	LoCol, HiCol []float32
	Points       bool
	Key          []float32
	Perm         []int32
	srt          dimSorter
}

// dimSorter sorts one dimension's Key slice ascending, carrying Perm along.
type dimSorter struct {
	key  []float32
	perm []int32
}

func (s *dimSorter) Len() int           { return len(s.key) }
func (s *dimSorter) Less(i, j int) bool { return s.key[i] < s.key[j] }
func (s *dimSorter) Swap(i, j int) {
	s.key[i], s.key[j] = s.key[j], s.key[i]
	s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
}

// Reset rebuilds the SoA for a new batch, reusing the backing arrays. All
// rectangles must have dims dimensions (the caller validates).
//
//ac:noalloc
func (bq *BatchQueries) Reset(qs []geom.Rect, dims int) {
	n := len(qs)
	bq.Dims, bq.N = dims, n
	if cap(bq.LoCol) < dims*n {
		bq.LoCol = make([]float32, 0, dims*n) //acvet:ignore noalloc amortized growth of the query-column arena
		bq.HiCol = make([]float32, 0, dims*n) //acvet:ignore noalloc amortized growth of the query-column arena
	}
	bq.LoCol, bq.HiCol = bq.LoCol[:dims*n], bq.HiCol[:dims*n]
	points := true
	for d := 0; d < dims; d++ {
		lo, hi := bq.LoCol[d*n:d*n+n], bq.HiCol[d*n:d*n+n]
		for i, q := range qs {
			mn, mx := q.Min[d], q.Max[d]
			lo[i], hi[i] = mn, mx
			// mn != mn catches NaN, which would break the sorted
			// order the point kernel's binary searches rely on.
			if mn != mx || mn != mn {
				points = false
			}
		}
	}
	bq.Points = points
	if !points {
		return
	}
	if cap(bq.Key) < dims*n {
		bq.Key = make([]float32, 0, dims*n) //acvet:ignore noalloc amortized growth of the sorted-coordinate arena
		bq.Perm = make([]int32, 0, dims*n)  //acvet:ignore noalloc amortized growth of the sort-permutation arena
	}
	bq.Key, bq.Perm = bq.Key[:dims*n], bq.Perm[:dims*n]
	copy(bq.Key, bq.LoCol)
	for d := 0; d < dims; d++ {
		perm := bq.Perm[d*n : d*n+n]
		for i := range perm {
			perm[i] = int32(i)
		}
		bq.srt.key, bq.srt.perm = bq.Key[d*n:d*n+n], perm
		sort.Sort(&bq.srt)
	}
	bq.srt.key, bq.srt.perm = nil, nil
}

// MaxSelectorDims is the largest dimensionality the per-signature dimension
// selectors can encode (they store dimension numbers as bytes). Callers with
// more dimensions simply skip maintaining selectors; the point kernel falls
// back to scanning widths inline.
const MaxSelectorDims = 256

// narrowestPair returns the dimensions of b (one signature's bounds block)
// with the narrowest and second-narrowest membership interval [b[4d+o0],
// b[4d+o1]], the order the point kernel probes dimensions in. best2 is -1
// when dims == 1. Ties and NaN widths resolve to the earlier dimension —
// a selectivity choice, never a correctness one.
func narrowestPair(b []float32, dims, o0, o1 int) (best, best2 int) {
	bw := b[o1] - b[o0]
	best2 = -1
	var b2w float32
	for d := 1; d < dims; d++ {
		w := b[4*d+o1] - b[4*d+o0]
		if w < bw || best2 < 0 {
			if w < bw {
				best2, b2w = best, bw
				best, bw = d, w
			} else {
				best2, b2w = d, w
			}
		} else if w < b2w {
			best2, b2w = d, w
		}
	}
	return best, best2
}

// AppendSelectors appends the 4-byte dimension-selector block of one
// signature's bounds block b (stride 4·dims floats) to dst: the narrowest and
// second-narrowest membership dimensions for the Intersects/Encloses interval
// [aLo,bHi] and for the ContainedBy interval [bLo,aHi], in that order. The
// selectors depend only on the signature, so maintaining them alongside the
// mirror (one computation per materialization) lets every batch skip the
// per-signature width scan. A missing runner-up (dims == 1) is encoded as the
// best dimension itself. dims must be at most MaxSelectorDims.
//
//ac:noalloc
func AppendSelectors(dst []uint8, b []float32, dims int) []uint8 {
	bIE, b2IE := narrowestPair(b, dims, 0, 3)
	bCB, b2CB := narrowestPair(b, dims, 2, 1)
	if b2IE < 0 {
		b2IE = bIE
	}
	if b2CB < 0 {
		b2CB = bCB
	}
	return append(dst, uint8(bIE), uint8(b2IE), uint8(bCB), uint8(b2CB))
}

// BatchMatch is the cluster-major output of MatchBoundsBatch: Clusters lists
// the mirror positions matching at least one query (in mirror order), QOff
// has one entry per matched cluster plus a final sentinel, and
// QIdx[QOff[j]:QOff[j+1]] are the batch-local indices of the queries cluster
// Clusters[j] matches, ascending. Flat slices so a pooled caller reuses the
// arenas across batches.
//
//ac:scratch
type BatchMatch struct {
	Clusters []int32
	QOff     []int32
	QIdx     []int32
}

// Reset empties the match for reuse.
//
//ac:noalloc
func (m *BatchMatch) Reset() {
	m.Clusters = m.Clusters[:0]
	m.QOff = append(m.QOff[:0], 0)
	m.QIdx = m.QIdx[:0]
}

// filterQueriesDim narrows the query-survivor bitmap to the queries whose
// interval in dimension d satisfies the relation's signature condition for
// bounds block b, by mapping the condition onto the geom block-scan kernels
// over the query columns. The mappings mirror MatchBounds exactly:
//
//   - Intersects keeps aLo ≤ qhi && qlo ≤ bHi — FilterIntersects with the
//     scalar interval [aLo,bHi].
//   - ContainedBy keeps aHi ≥ qlo && bLo ≤ qhi — FilterIntersects with the
//     scalar interval [bLo,aHi].
//   - Encloses keeps aLo ≤ qlo && qhi ≤ bHi — FilterContainedBy with the
//     scalar interval [aLo,bHi].
//
//ac:noalloc
func filterQueriesDim(rel geom.Relation, b []float32, bq *BatchQueries, d int, bits []uint64) int {
	n := bq.N
	lo, hi := bq.LoCol[d*n:d*n+n], bq.HiCol[d*n:d*n+n]
	switch rel {
	case geom.Intersects:
		return geom.FilterIntersects(lo, hi, b[4*d], b[4*d+3], bits)
	case geom.ContainedBy:
		return geom.FilterIntersects(lo, hi, b[4*d+2], b[4*d+1], bits)
	case geom.Encloses:
		return geom.FilterContainedBy(lo, hi, b[4*d], b[4*d+3], bits)
	}
	return 0
}

// matchQueryTail finishes one surviving query scalar: it applies the
// per-dimension signature condition (the same conditions filterQueriesDim
// applies columnar) for dimensions d0..dims-1 to query qi, with the
// single-query kernel's per-dimension early exit.
//
//ac:noalloc
func matchQueryTail(rel geom.Relation, b []float32, bq *BatchQueries, qi, d0 int) bool {
	n, dims := bq.N, bq.Dims
	switch rel {
	case geom.Intersects:
		for d := d0; d < dims; d++ {
			if !(b[4*d] <= bq.HiCol[d*n+qi] && bq.LoCol[d*n+qi] <= b[4*d+3]) {
				return false
			}
		}
	case geom.ContainedBy:
		for d := d0; d < dims; d++ {
			if !(b[4*d+2] <= bq.HiCol[d*n+qi] && bq.LoCol[d*n+qi] <= b[4*d+1]) {
				return false
			}
		}
	case geom.Encloses:
		for d := d0; d < dims; d++ {
			if !(b[4*d] <= bq.LoCol[d*n+qi] && bq.HiCol[d*n+qi] <= b[4*d+3]) {
				return false
			}
		}
	}
	return true
}

// MatchBoundsBatch scans a flat signature mirror — n signatures stored as
// 4·dims contiguous floats [aLo,aHi,bLo,bHi] per dimension — once for every
// query in bq, appending the cluster-major matches to out. bits is
// caller-provided scratch of at least geom.BitmapWords(bq.N) words. sel, when
// it holds exactly 4·n bytes, is the mirror's precomputed dimension-selector
// side array (AppendSelectors per signature); pass nil (or an array of any
// other length) to have the point kernel scan widths inline instead. For every
// query i the set {c : i ∈ out queries of c} equals MatchBounds(sb, n, dims,
// qs[i], rel, nil), in the same mirror order.
//
// Per signature the kernel stays columnar (one branchless pass over the
// query columns per dimension) while more than a quarter of the batch survives,
// then switches to scalar completion of the surviving queries with the
// single-query early exit — the shape that wins when dimensions are
// selective and most of the batch dies in the first pass.
//
//ac:noalloc
func MatchBoundsBatch(sb []float32, n, dims int, bq *BatchQueries, rel geom.Relation, sel []uint8, bits []uint64, out *BatchMatch) {
	out.Reset()
	if bq.N == 0 {
		return
	}
	if bq.Points {
		matchPointsBatch(sb, n, dims, bq, rel, sel, out)
		return
	}
	stride := 4 * dims
	sparse := bq.N / 4
	for ci := 0; ci < n; ci++ {
		b := sb[ci*stride : ci*stride+stride]
		geom.InitBitmap(bits, bq.N)
		alive := filterQueriesDim(rel, b, bq, 0, bits)
		d := 1
		for ; d < dims && alive > sparse; d++ {
			alive = filterQueriesDim(rel, b, bq, d, bits)
		}
		if alive == 0 {
			continue
		}
		start := len(out.QIdx)
		if d == dims {
			out.QIdx = appendSetBits(out.QIdx, bits)
		} else {
			for w, word := range bits {
				base := int32(w << 6)
				for word != 0 {
					j := mbits.TrailingZeros64(word)
					word &= word - 1
					qi := base + int32(j)
					if matchQueryTail(rel, b, bq, int(qi), d) {
						out.QIdx = append(out.QIdx, qi)
					}
				}
			}
		}
		if len(out.QIdx) > start {
			out.Clusters = append(out.Clusters, int32(ci))
			out.QOff = append(out.QOff, int32(len(out.QIdx)))
		}
	}
}

// matchPointsBatch is the point-query fast path of MatchBoundsBatch. A
// degenerate query reduces queryMatchesDim to interval membership — the point
// must lie in [aLo,bHi] (Intersects, Encloses) or [bLo,aHi] (ContainedBy) of
// every dimension — so instead of columnar passes the kernel, per signature,
// picks the dimension with the narrowest membership interval, finds that
// dimension's surviving queries as a contiguous run of the batch's sorted
// coordinates (two binary searches, ~2·log₂N comparisons against N columnar
// lane evaluations), and completes the few survivors scalar with the
// single-query early exit. The matched set per query is bit-identical to
// MatchBounds.
//
// With a full-length sel side array the narrowest dimensions come
// precomputed (AppendSelectors) and the kernel touches only the searched
// dimension's 4 floats for most signatures; without one it scans the widths
// inline, reading the whole bounds block. The selector choice only steers
// which dimension is binary-searched and which the tail probes first —
// every dimension except the searched one is re-checked in the tail, so a
// stale or absent selector can never change the matched set.
//
//ac:noalloc
func matchPointsBatch(sb []float32, n, dims int, bq *BatchQueries, rel geom.Relation, sel []uint8, out *BatchMatch) {
	// Offsets of the membership interval inside a 4-float dimension block
	// [aLo,aHi,bLo,bHi]: aLo..bHi for Intersects/Encloses, bLo..aHi for
	// ContainedBy (see queryMatchesDim with qlo == qhi). so0 selects the
	// relation's selector pair inside a 4-byte selector block
	// [bestIE, best2IE, bestCB, best2CB].
	o0, o1, so0 := 0, 3, 0
	if rel == geom.ContainedBy {
		o0, o1, so0 = 2, 1, 2
	}
	if len(sel) != 4*n {
		sel = nil
	}
	nq := bq.N
	stride := 4 * dims
	for ci := 0; ci < n; ci++ {
		b := sb[ci*stride : ci*stride+stride]
		var best, best2 int
		if sel != nil {
			best, best2 = int(sel[ci*4+so0]), int(sel[ci*4+so0+1])
			if best2 == best { // dims == 1: no runner-up
				best2 = -1
			}
		} else {
			best, best2 = narrowestPair(b, dims, o0, o1)
		}
		lo, hi := b[4*best+o0], b[4*best+o1]
		key := bq.Key[best*nq : best*nq+nq]
		// first = first coordinate ≥ lo, then i advances to the first
		// coordinate > hi: the queries at [first,i) are exactly those
		// with lo ≤ p ≤ hi.
		i, j := 0, nq
		for i < j {
			h := int(uint(i+j) >> 1)
			if key[h] < lo {
				i = h + 1
			} else {
				j = h
			}
		}
		first := i
		j = nq
		for i < j {
			h := int(uint(i+j) >> 1)
			if key[h] <= hi {
				i = h + 1
			} else {
				j = h
			}
		}
		start := len(out.QIdx)
		perm := bq.Perm[best*nq : best*nq+nq]
		for pos := first; pos < i; pos++ {
			qi := perm[pos]
			if matchPointTail(b, bq, int(qi), best, best2, o0, o1) {
				out.QIdx = insertAscending(out.QIdx, start, qi)
			}
		}
		if len(out.QIdx) > start {
			out.Clusters = append(out.Clusters, int32(ci))
			out.QOff = append(out.QOff, int32(len(out.QIdx)))
		}
	}
}

// matchPointTail checks the membership interval of every dimension except the
// binary-searched one for point query qi, with the single-query early exit.
// The runner-up dimension skip2 (-1 when dims == 1) is tested first: it is
// the most selective of the remaining dimensions, so most survivors die on
// it.
//
//ac:noalloc
func matchPointTail(b []float32, bq *BatchQueries, qi, skip, skip2, o0, o1 int) bool {
	n, dims := bq.N, bq.Dims
	if skip2 >= 0 {
		p := bq.LoCol[skip2*n+qi]
		if !(b[4*skip2+o0] <= p && p <= b[4*skip2+o1]) {
			return false
		}
	}
	for d := 0; d < dims; d++ {
		if d == skip || d == skip2 {
			continue
		}
		p := bq.LoCol[d*n+qi]
		if !(b[4*d+o0] <= p && p <= b[4*d+o1]) {
			return false
		}
	}
	return true
}

// insertAscending appends v keeping dst[start:] ascending — the sorted-run
// iteration emits queries in coordinate order, while BatchMatch's contract is
// ascending query index within each cluster. Matches per cluster are few, so
// a shifting insert beats re-sorting.
//
//ac:noalloc
func insertAscending(dst []int32, start int, v int32) []int32 {
	dst = append(dst, v)
	i := len(dst) - 1
	for i > start && dst[i-1] > v {
		dst[i] = dst[i-1]
		i--
	}
	dst[i] = v
	return dst
}

// appendSetBits appends the index of every set bit in bits to dst, ascending.
//
//ac:noalloc
func appendSetBits(dst []int32, bits []uint64) []int32 {
	for w, word := range bits {
		base := int32(w << 6)
		for word != 0 {
			j := mbits.TrailingZeros64(word)
			word &= word - 1
			dst = append(dst, base+int32(j))
		}
	}
	return dst
}
