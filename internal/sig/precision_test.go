package sig

import (
	"math/rand"
	"testing"

	"accluster/internal/geom"
)

// TestDeepSubdivisionStaysConsistent refines a signature to extreme depth:
// the clustering function must either keep producing feasible candidates or
// stop cleanly when float32 resolution is exhausted — never emit candidates
// whose membership contradicts the parent's.
func TestDeepSubdivisionStaysConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	s := Root(1)
	for depth := 0; depth < 64; depth++ {
		splits := Enumerate(s, 4)
		if len(splits) == 0 {
			// Resolution exhausted: acceptable terminal state.
			if depth < 8 {
				t.Fatalf("enumeration died too early at depth %d (%v)", depth, s)
			}
			return
		}
		sp := splits[rng.Intn(len(splits))]
		child := sp.Child(s)
		if !s.Covers(child) {
			t.Fatalf("depth %d: child %v escapes parent %v", depth, child, s)
		}
		// Candidate bounds must be ordered.
		aLo, aHi, bLo, bHi := sp.Bounds(s)
		if aLo > aHi || bLo > bHi {
			t.Fatalf("depth %d: inverted bounds a=[%g,%g] b=[%g,%g]", depth, aLo, aHi, bLo, bHi)
		}
		s = child
	}
}

// TestSubBoundEndpointsExact pins that division bounds hit the interval
// endpoints exactly (no float drift), which the nesting correctness relies
// on.
func TestSubBoundEndpointsExact(t *testing.T) {
	cases := []struct{ lo, hi float32 }{
		{0, 1}, {0.1, 0.3}, {0.0625, 0.125}, {0.9999, 1},
	}
	for _, c := range cases {
		for _, f := range []int{2, 3, 4, 8} {
			if got := subBound(c.lo, c.hi, 0, f); got != c.lo {
				t.Errorf("subBound(%g,%g,0,%d) = %g", c.lo, c.hi, f, got)
			}
			if got := subBound(c.lo, c.hi, f, f); got != c.hi {
				t.Errorf("subBound(%g,%g,%d,%d) = %g", c.lo, c.hi, f, f, got)
			}
			// Interior bounds are monotone.
			prev := c.lo
			for k := 1; k <= f; k++ {
				b := subBound(c.lo, c.hi, k, f)
				if b < prev {
					t.Errorf("non-monotone bounds for [%g,%g] f=%d", c.lo, c.hi, f)
				}
				prev = b
			}
		}
	}
}

// TestBoundaryObjectAlwaysHasAHome: for any signature and any object it
// accepts, at least one candidate of every refinable dimension accepts the
// object too (the tiling property that guarantees objects can always descend
// during splits).
func TestBoundaryObjectAlwaysHasAHome(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 200; trial++ {
		dims := rng.Intn(3) + 1
		s := Root(dims)
		for k := 0; k < rng.Intn(3); k++ {
			splits := Enumerate(s, 4)
			if len(splits) == 0 {
				break
			}
			s = splits[rng.Intn(len(splits))].Child(s)
		}
		// Draw an object inside the signature by rejection sampling.
		var o geom.Rect
		found := false
		for attempt := 0; attempt < 2000; attempt++ {
			o = randomRect(rng, dims)
			if s.MatchesObject(o) {
				found = true
				break
			}
		}
		if !found {
			continue // deep signatures can be tiny; skip
		}
		splits := Enumerate(s, 4)
		byDim := map[int]int{}
		for _, sp := range splits {
			if sp.MatchesObjectDim(s, o.Min[sp.Dim], o.Max[sp.Dim]) {
				byDim[sp.Dim]++
			}
		}
		for d := 0; d < dims; d++ {
			has := false
			for _, sp := range splits {
				if sp.Dim == d {
					has = true
					break
				}
			}
			if has && byDim[d] == 0 {
				t.Fatalf("object %v in %v has no candidate on dim %d", o, s, d)
			}
		}
	}
}
