package sig

import "accluster/internal/geom"

// InVar reports membership of x in the variation interval [lo,hi), closed at
// the top when hi is the domain maximum 1. Exported for engines that cache
// candidate bounds instead of re-deriving them through Split.Bounds.
func InVar(x, lo, hi float32) bool { return inVar(x, lo, hi) }

// QueryDimMatch evaluates the per-dimension query/signature necessary
// condition for the given relation over explicit variation-interval bounds.
func QueryDimMatch(rel geom.Relation, qlo, qhi, alo, ahi, blo, bhi float32) bool {
	return queryMatchesDim(rel, qlo, qhi, alo, ahi, blo, bhi)
}

// MatchBounds scans a flat signature mirror — n signatures stored as 4·dims
// contiguous floats [aLo,aHi,bLo,bHi] per dimension — and appends the
// positions of the signatures matching the query to dst, in mirror order.
// The per-position conditions are the relation-specific necessary conditions
// of Signature.MatchesQuery, specialized per relation so the whole pass is
// one linear scan over contiguous floats with no per-entry dispatch. Both
// the in-memory index and the disk engine keep such a mirror; this is the
// shared A-term kernel of the cost model.
//
// The conditions are written in their positive form (not the De Morgan
// negation) so NaN query coordinates fail every dimension and match nothing
// — the behavior of Signature.MatchesQuery and of the batched kernels, which
// the batch-vs-looped differentials pin.
//
//ac:noalloc
func MatchBounds(sb []float32, n, dims int, q geom.Rect, rel geom.Relation, dst []int32) []int32 {
	stride := 4 * dims
	switch rel {
	case geom.Intersects:
		for ci := 0; ci < n; ci++ {
			b := sb[ci*stride : ci*stride+stride]
			ok := true
			for d := 0; d < dims; d++ {
				if !(b[4*d] <= q.Max[d] && q.Min[d] <= b[4*d+3]) {
					ok = false
					break
				}
			}
			if ok {
				dst = append(dst, int32(ci))
			}
		}
	case geom.ContainedBy:
		for ci := 0; ci < n; ci++ {
			b := sb[ci*stride : ci*stride+stride]
			ok := true
			for d := 0; d < dims; d++ {
				if !(b[4*d+1] >= q.Min[d] && b[4*d+2] <= q.Max[d]) {
					ok = false
					break
				}
			}
			if ok {
				dst = append(dst, int32(ci))
			}
		}
	case geom.Encloses:
		for ci := 0; ci < n; ci++ {
			b := sb[ci*stride : ci*stride+stride]
			ok := true
			for d := 0; d < dims; d++ {
				if !(b[4*d] <= q.Min[d] && b[4*d+3] >= q.Max[d]) {
					ok = false
					break
				}
			}
			if ok {
				dst = append(dst, int32(ci))
			}
		}
	}
	return dst
}

// BoundsImplyDim reports whether one signature's bounds block b — the
// 4·dims [aLo,aHi,bLo,bHi] layout MatchBounds scans — proves that every
// member of the cluster satisfies the relation's predicate in dimension d
// for the query interval [qlo,qhi], making the verification column scan of
// that dimension a provable no-op. Members have lo < aHi (lo ≤ 1 when aHi
// is the closed domain maximum) and hi ≥ bLo, which makes each condition
// sufficient for all members:
//
//   - Intersects: lo ≤ qhi forced by aHi ≤ qhi; qlo ≤ hi by qlo ≤ bLo.
//   - ContainedBy: lo ≥ qlo forced by aLo ≥ qlo; hi ≤ qhi by bHi ≤ qhi.
//   - Encloses: lo ≤ qlo forced by aHi ≤ qlo; hi ≥ qhi by bLo ≥ qhi.
//
// Both columnar engines (the in-memory core and the disk executor) share
// this skip, so their BytesVerified accounting agrees by construction.
//
//ac:noalloc
func BoundsImplyDim(rel geom.Relation, b []float32, d int, qlo, qhi float32) bool {
	switch rel {
	case geom.Intersects:
		return b[4*d+1] <= qhi && qlo <= b[4*d+2]
	case geom.ContainedBy:
		return b[4*d] >= qlo && b[4*d+3] <= qhi
	case geom.Encloses:
		return b[4*d+1] <= qlo && b[4*d+2] >= qhi
	}
	return false
}

// AppendBounds mirrors s onto the end of a flat signature mirror in the
// layout MatchBounds scans.
//
//ac:noalloc
func AppendBounds(dst []float32, s Signature) []float32 {
	for d := 0; d < s.Dims(); d++ {
		dst = append(dst, s.ALo[d], s.AHi[d], s.BLo[d], s.BHi[d])
	}
	return dst
}
