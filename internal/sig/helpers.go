package sig

import "accluster/internal/geom"

// InVar reports membership of x in the variation interval [lo,hi), closed at
// the top when hi is the domain maximum 1. Exported for engines that cache
// candidate bounds instead of re-deriving them through Split.Bounds.
func InVar(x, lo, hi float32) bool { return inVar(x, lo, hi) }

// QueryDimMatch evaluates the per-dimension query/signature necessary
// condition for the given relation over explicit variation-interval bounds.
func QueryDimMatch(rel geom.Relation, qlo, qhi, alo, ahi, blo, bhi float32) bool {
	return queryMatchesDim(rel, qlo, qhi, alo, ahi, blo, bhi)
}
