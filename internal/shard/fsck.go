package shard

import (
	"fmt"
	"path/filepath"
	"strings"

	"accluster/internal/store"
)

// SegmentCheck is the verification outcome of one shard segment.
type SegmentCheck struct {
	// Shard is the partition index, Name the segment file name.
	Shard int
	Name  string
	// Err is nil for a fully valid segment; open failures and checksum
	// mismatches (store.ErrCorrupt) are both reported here.
	Err error
}

// CheckReport is the full verification result of a checkpoint directory.
type CheckReport struct {
	// Dir is the checked directory.
	Dir string
	// ManifestErr is non-nil when the manifest itself is unreadable or
	// corrupt; the per-segment fields are then empty.
	ManifestErr error
	// Generation, Shards and Dims echo the committed manifest.
	Generation uint64
	Shards     int
	Dims       int
	// Segments holds one entry per shard of the committed generation.
	Segments []SegmentCheck
	// Stray lists files that are not part of the committed checkpoint
	// (previous or aborted generations, leftover temporaries).
	Stray []string
}

// Healthy reports whether the checkpoint is fully intact (stray files are
// cleanup candidates, not damage).
func (r CheckReport) Healthy() bool {
	if r.ManifestErr != nil {
		return false
	}
	for _, s := range r.Segments {
		if s.Err != nil {
			return false
		}
	}
	return true
}

// CorruptSegments returns the shard indexes of damaged segments.
func (r CheckReport) CorruptSegments() []int {
	var out []int
	for _, s := range r.Segments {
		if s.Err != nil {
			out = append(out, s.Shard)
		}
	}
	return out
}

// CheckDir verifies a checkpoint directory offline: the manifest, then
// every checksum of every segment of the committed generation. It never
// modifies the directory.
func CheckDir(fsys store.FS, dir string) CheckReport {
	r := CheckReport{Dir: dir}
	m, err := readManifest(fsys, dir)
	if err != nil {
		r.ManifestErr = err
		return r
	}
	r.Generation, r.Shards, r.Dims = m.gen, m.shards, m.dims
	for i := 0; i < m.shards; i++ {
		name := segmentName(i, m.gen)
		r.Segments = append(r.Segments, SegmentCheck{
			Shard: i,
			Name:  name,
			Err:   store.VerifyFileFS(fsys, filepath.Join(dir, name)),
		})
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return r
	}
	for _, name := range names {
		if name == manifestName {
			continue
		}
		if i, g, ok := parseSegmentName(name); ok && g == m.gen && i < m.shards {
			continue
		}
		if ok := strings.HasSuffix(name, ".tmp"); ok {
			r.Stray = append(r.Stray, name)
			continue
		}
		if _, _, ok := parseSegmentName(name); ok {
			r.Stray = append(r.Stray, name)
		}
	}
	return r
}

// RepairDir repairs a checkpoint directory in place and returns the
// post-repair report. Damaged segments are restored from peer — another
// checkpoint directory of the same database (same shard count and
// dimensionality, e.g. a replica's shipped copy); pass "" for no peer.
// Stray files of previous or aborted generations are removed. A corrupt or
// missing manifest is rebuilt: preferentially from a complete valid
// generation already present in the directory, otherwise by copying the
// whole peer checkpoint.
func RepairDir(fsys store.FS, dir, peer string) (CheckReport, error) {
	r := CheckDir(fsys, dir)
	if r.ManifestErr != nil {
		if err := repairManifest(fsys, dir, peer); err != nil {
			return r, err
		}
		r = CheckDir(fsys, dir)
	}
	if corrupt := r.CorruptSegments(); len(corrupt) > 0 {
		if peer == "" {
			return r, fmt.Errorf("shard: repair %s: %d damaged segments and no peer checkpoint to restore from", dir, len(corrupt))
		}
		pm, err := readManifest(fsys, peer)
		if err != nil {
			return r, fmt.Errorf("shard: repair: peer: %w", err)
		}
		if pm.shards != r.Shards || pm.dims != r.Dims {
			return r, fmt.Errorf("shard: repair: peer has %d shards × %d dims, want %d × %d",
				pm.shards, pm.dims, r.Shards, r.Dims)
		}
		for _, i := range corrupt {
			src := filepath.Join(peer, segmentName(i, pm.gen))
			if err := store.VerifyFileFS(fsys, src); err != nil {
				return r, fmt.Errorf("shard: repair: peer segment %d: %w", i, err)
			}
			data, err := fsys.ReadFile(src)
			if err != nil {
				return r, fmt.Errorf("shard: repair: peer segment %d: %w", i, err)
			}
			dst := filepath.Join(dir, segmentName(i, r.Generation))
			if err := store.WriteFileAtomic(fsys, dst, data); err != nil {
				return r, fmt.Errorf("shard: repair segment %d: %w", i, err)
			}
		}
	}
	if err := gcDir(fsys, dir, r.Shards, r.Generation); err != nil {
		return CheckDir(fsys, dir), fmt.Errorf("shard: repair: cleanup: %w", err)
	}
	return CheckDir(fsys, dir), nil
}

// repairManifest rebuilds a destroyed manifest: from the newest generation
// already complete and valid in the directory, or failing that from the
// peer checkpoint (copying its segments and manifest wholesale).
func repairManifest(fsys store.FS, dir, peer string) error {
	if m, ok := salvageableGeneration(fsys, dir); ok {
		man := encodeManifest(m)
		if err := store.WriteFileAtomic(fsys, filepath.Join(dir, manifestName), man); err != nil {
			return fmt.Errorf("shard: repair manifest: %w", err)
		}
		return nil
	}
	if peer == "" {
		return fmt.Errorf("shard: repair %s: manifest destroyed, no complete generation on disk and no peer checkpoint", dir)
	}
	pm, err := readManifest(fsys, peer)
	if err != nil {
		return fmt.Errorf("shard: repair: peer: %w", err)
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("shard: repair: %w", err)
	}
	for i := 0; i < pm.shards; i++ {
		src := filepath.Join(peer, segmentName(i, pm.gen))
		if err := store.VerifyFileFS(fsys, src); err != nil {
			return fmt.Errorf("shard: repair: peer segment %d: %w", i, err)
		}
		data, err := fsys.ReadFile(src)
		if err != nil {
			return fmt.Errorf("shard: repair: peer segment %d: %w", i, err)
		}
		if err := store.WriteFileAtomic(fsys, filepath.Join(dir, segmentName(i, pm.gen)), data); err != nil {
			return fmt.Errorf("shard: repair segment %d: %w", i, err)
		}
	}
	if err := store.WriteFileAtomic(fsys, filepath.Join(dir, manifestName), encodeManifest(pm)); err != nil {
		return fmt.Errorf("shard: repair manifest: %w", err)
	}
	return nil
}

// salvageableGeneration scans dir for the newest generation whose segment
// set is complete (a power-of-two count of valid segments 0..n-1, all equal
// dimensionality) and returns a manifest describing it.
func salvageableGeneration(fsys store.FS, dir string) (manifest, bool) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return manifest{}, false
	}
	gens := make(map[uint64]map[int]bool)
	for _, name := range names {
		if i, g, ok := parseSegmentName(name); ok {
			if gens[g] == nil {
				gens[g] = make(map[int]bool)
			}
			gens[g][i] = true
		}
	}
	var best uint64
	found := false
	var bestShards int
	for g, set := range gens {
		n := len(set)
		if n < 1 || n > maxShards || n != ceilPow2(n) {
			continue
		}
		complete := true
		for i := 0; i < n; i++ {
			if !set[i] {
				complete = false
				break
			}
		}
		if !complete || (found && g <= best) {
			continue
		}
		// Validate every segment and read the dimensionality off shard 0.
		valid := true
		for i := 0; i < n; i++ {
			if store.VerifyFileFS(fsys, filepath.Join(dir, segmentName(i, g))) != nil {
				valid = false
				break
			}
		}
		if valid {
			best, bestShards, found = g, n, true
		}
	}
	if !found {
		return manifest{}, false
	}
	dims, err := segmentDims(fsys, filepath.Join(dir, segmentName(0, best)))
	if err != nil {
		return manifest{}, false
	}
	version := 2
	if best == 0 {
		version = 1
	}
	return manifest{version: version, shards: bestShards, dims: dims, gen: best}, true
}

// segmentDims reads a segment's dimensionality via its directory header.
func segmentDims(fsys store.FS, path string) (int, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	_, dims, err := store.ReadDirectory(f)
	return dims, err
}
