package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"testing"

	"accluster/internal/core"
	"accluster/internal/faultio"
	"accluster/internal/geom"
	"accluster/internal/store"
)

// crashEngine builds a single-worker engine (deterministic sequential
// segment writes) holding n random objects.
func crashEngine(t *testing.T, shards, n int, seed int64) (*Engine, []uint32, []geom.Rect) {
	t.Helper()
	e, err := New(Config{Shards: shards, Workers: 1, Core: core.Config{Dims: 2, ReorgEvery: 25}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	ids := make([]uint32, n)
	rects := make([]geom.Rect, n)
	for i := 0; i < n; i++ {
		r := geom.NewRect(2)
		for d := 0; d < 2; d++ {
			size := rng.Float32() * 0.2
			lo := rng.Float32() * (1 - size)
			r.Min[d], r.Max[d] = lo, lo+size
		}
		ids[i], rects[i] = uint32(i), r
		if err := e.Insert(uint32(i), r); err != nil {
			t.Fatal(err)
		}
	}
	return e, ids, rects
}

// TestSaveDirPowerFailLoop is the generational crash harness: with an old
// checkpoint committed, attempt a new save while crashing at every
// injectable I/O operation in turn. Whatever survives the crash must load
// as exactly the old state or exactly the new one — never a mix of
// generations, never an unloadable directory.
func TestSaveDirPowerFailLoop(t *testing.T) {
	eOld, _, _ := crashEngine(t, 4, 260, 31)
	eNew, _, _ := crashEngine(t, 4, 410, 47)

	base := faultio.NewMemFS()
	if err := eOld.SaveDirFS(base, "ckpt"); err != nil {
		t.Fatal(err)
	}
	oldGen := eOld.Generation()

	probe := faultio.NewSchedule(1)
	if err := eNew.SaveDirFS(faultio.WrapFS(base.Clone(), probe), "ckpt"); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("implausibly few ops in a 4-shard save: %d", total)
	}

	oldLen, newLen := eOld.Len(), eNew.Len()
	for k := int64(1); k <= total; k++ {
		s := faultio.NewSchedule(1000 + k)
		s.SetFault(k, faultio.Crash)
		fsys := base.Clone()
		if err := eNew.SaveDirFS(faultio.WrapFS(fsys, s), "ckpt"); err == nil {
			t.Fatalf("crash at op %d/%d: save reported success", k, total)
		}
		crashed := fsys.Crash()
		back, err := LoadDirFS(crashed, "ckpt", Config{Workers: 1})
		if err != nil {
			t.Fatalf("crash at op %d/%d: no loadable checkpoint: %v", k, total, err)
		}
		got := back.Len()
		switch {
		case got == oldLen && back.Generation() == oldGen:
		case got == newLen && back.Generation() == oldGen+1:
		default:
			t.Fatalf("crash at op %d/%d: loaded %d objects at generation %d, want %d@%d or %d@%d",
				k, total, got, back.Generation(), oldLen, oldGen, newLen, oldGen+1)
		}
		if err := back.CheckInvariants(); err != nil {
			t.Fatalf("crash at op %d/%d: survivor invalid: %v", k, total, err)
		}
	}
}

// TestSaveDirCrashThenResaveRecovers pins that a directory littered by a
// crashed save (uncommitted higher-generation segments) accepts a clean
// follow-up save that commits and garbage-collects all residue.
func TestSaveDirCrashThenResaveRecovers(t *testing.T) {
	e, _, _ := crashEngine(t, 2, 180, 7)
	base := faultio.NewMemFS()
	if err := e.SaveDirFS(base, "ckpt"); err != nil {
		t.Fatal(err)
	}
	// Crash a second save halfway.
	s := faultio.NewSchedule(5)
	s.SetFault(9, faultio.Crash)
	if err := e.SaveDirFS(faultio.WrapFS(base, s), "ckpt"); err == nil {
		t.Fatal("crashed save reported success")
	}
	fsys := base.Crash()
	// A clean save on the crashed remains must fully commit.
	if err := e.SaveDirFS(fsys, "ckpt"); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.ReadDir("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	m, err := readManifest(fsys, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{manifestName: true}
	for i := 0; i < m.shards; i++ {
		want[segmentName(i, m.gen)] = true
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("residue %q survived the follow-up save (manifest gen %d)", n, m.gen)
		}
	}
	if len(names) != len(want) {
		t.Fatalf("directory has %d files, want %d", len(names), len(want))
	}
}

// TestSaveDirShrinkingShardCountGCsStaleSegments pins the stale-file
// satellite: re-saving a directory from an engine with fewer shards leaves
// no segments of the wider layout behind.
func TestSaveDirShrinkingShardCountGCsStaleSegments(t *testing.T) {
	wide, _, _ := crashEngine(t, 8, 300, 13)
	narrow, _, _ := crashEngine(t, 2, 120, 17)
	fsys := faultio.NewMemFS()
	if err := wide.SaveDirFS(fsys, "ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := narrow.SaveDirFS(fsys, "ckpt"); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.ReadDir("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 { // MANIFEST + 2 segments
		t.Fatalf("after narrower re-save: %d files %v, want 3", len(names), names)
	}
	back, err := LoadDirFS(fsys, "ckpt", Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if back.Shards() != 2 || back.Len() != narrow.Len() {
		t.Fatalf("reload: %d shards / %d objects, want 2 / %d", back.Shards(), back.Len(), narrow.Len())
	}
}

// TestSalvageOpenServesHealthyShards corrupts one segment and requires the
// salvage open to quarantine exactly that shard, serve the rest, and come
// back to full health through RestoreQuarantined.
func TestSalvageOpenServesHealthyShards(t *testing.T) {
	e, ids, rects := crashEngine(t, 4, 500, 3)
	fsys := faultio.NewMemFS()
	if err := e.SaveDirFS(fsys, "ckpt"); err != nil {
		t.Fatal(err)
	}
	victim := 2
	if err := fsys.Corrupt("ckpt/"+segmentName(victim, e.Generation()), 100); err != nil {
		t.Fatal(err)
	}

	// Without salvage: load refuses, and the error says corruption.
	if _, err := LoadDirFS(fsys, "ckpt", Config{Workers: 1}); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("strict load err = %v, want ErrCorrupt", err)
	}

	// With salvage: the engine opens degraded.
	back, err := LoadDirFS(fsys, "ckpt", Config{Workers: 1, Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	q := back.Quarantined()
	if len(q) != 1 || q[0].Shard != victim || !errors.Is(q[0].Err, store.ErrCorrupt) {
		t.Fatalf("quarantine = %+v, want shard %d with ErrCorrupt", q, victim)
	}
	if back.QuarantinedCount() != 1 {
		t.Fatalf("QuarantinedCount = %d", back.QuarantinedCount())
	}
	infos := back.ShardInfos()
	for i, in := range infos {
		if in.Quarantined != (i == victim) {
			t.Fatalf("shard %d Quarantined = %v", i, in.Quarantined)
		}
	}

	// The survivors answer: every loaded object routes to a healthy shard.
	wantHealthy := 0
	for _, id := range ids {
		if back.route(id) != victim {
			wantHealthy++
			if _, ok := back.Get(id); !ok {
				t.Fatalf("healthy object %d missing from salvaged engine", id)
			}
		}
	}
	if back.Len() != wantHealthy {
		t.Fatalf("salvaged engine has %d objects, want %d", back.Len(), wantHealthy)
	}

	// Restore from the authoritative object set and verify full recovery.
	if err := back.RestoreQuarantined(ids, rects); err != nil {
		t.Fatal(err)
	}
	if back.QuarantinedCount() != 0 {
		t.Fatal("quarantine not cleared after restore")
	}
	if back.Len() != len(ids) {
		t.Fatalf("restored engine has %d objects, want %d", back.Len(), len(ids))
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// And the repaired state checkpoints + reloads cleanly.
	if err := back.SaveDirFS(fsys, "ckpt"); err != nil {
		t.Fatal(err)
	}
	again, err := LoadDirFS(fsys, "ckpt", Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != len(ids) {
		t.Fatalf("re-saved repair reloads %d objects, want %d", again.Len(), len(ids))
	}
}

// TestSalvageAllShardsDamagedFails pins the floor: salvage refuses to open
// a checkpoint with zero loadable segments rather than fabricating an empty
// database.
func TestSalvageAllShardsDamagedFails(t *testing.T) {
	e, _, _ := crashEngine(t, 2, 100, 29)
	fsys := faultio.NewMemFS()
	if err := e.SaveDirFS(fsys, "ckpt"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := fsys.Corrupt("ckpt/"+segmentName(i, e.Generation()), 50); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadDirFS(fsys, "ckpt", Config{Workers: 1, Salvage: true}); err == nil {
		t.Fatal("salvage of a fully destroyed checkpoint succeeded")
	}
}

// TestLoadLegacyV1Layout pins backward compatibility: a directory in the
// pre-generational layout (version-1 manifest, un-tagged segment names)
// still loads, and the next save migrates it to the generational layout.
func TestLoadLegacyV1Layout(t *testing.T) {
	e, ids, _ := crashEngine(t, 2, 150, 41)
	fsys := faultio.NewMemFS()
	if err := fsys.MkdirAll("ckpt"); err != nil {
		t.Fatal(err)
	}
	// Write the legacy layout by hand: gen-0 segment names + v1 manifest.
	err := e.forEachShard(func(i int, s *lockedShard) error {
		f, err := fsys.Create(fmt.Sprintf("ckpt/shard-%04d.acdb", i))
		if err != nil {
			return err
		}
		defer f.Close()
		return store.Save(s.ix, f)
	})
	if err != nil {
		t.Fatal(err)
	}
	man := make([]byte, manifestSizeV1)
	binary.LittleEndian.PutUint32(man[0:], manifestMagic)
	binary.LittleEndian.PutUint32(man[4:], 1)
	binary.LittleEndian.PutUint32(man[8:], 2)  // shards
	binary.LittleEndian.PutUint32(man[12:], 2) // dims
	binary.LittleEndian.PutUint32(man[16:], crc32.ChecksumIEEE(man[:16]))
	if err := store.WriteFileAtomic(fsys, "ckpt/MANIFEST", man); err != nil {
		t.Fatal(err)
	}

	back, err := LoadDirFS(fsys, "ckpt", Config{Workers: 1})
	if err != nil {
		t.Fatalf("legacy layout failed to load: %v", err)
	}
	if back.Len() != len(ids) || back.Generation() != 0 {
		t.Fatalf("legacy load: %d objects at generation %d, want %d at 0", back.Len(), back.Generation(), len(ids))
	}
	// The next save migrates to generation 1 and removes the legacy files.
	if err := back.SaveDirFS(fsys, "ckpt"); err != nil {
		t.Fatal(err)
	}
	if back.Generation() != 1 {
		t.Fatalf("post-migration generation = %d, want 1", back.Generation())
	}
	names, _ := fsys.ReadDir("ckpt")
	for _, n := range names {
		if _, g, ok := parseSegmentName(n); ok && g == 0 {
			t.Fatalf("legacy segment %q survived the migrating save", n)
		}
	}
}
