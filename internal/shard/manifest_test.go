package shard

import (
	"errors"
	"path/filepath"
	"testing"

	"accluster/internal/faultio"
	"accluster/internal/store"
)

// TestManifestEveryBitFlipDetected flips every single bit of a valid v2
// manifest and requires the decoder to reject each mutation: the CRC covers
// the whole block, so no single-bit damage may decode.
func TestManifestEveryBitFlipDetected(t *testing.T) {
	man := encodeManifest(manifest{version: 2, shards: 4, dims: 3, gen: 9})
	if _, err := decodeManifest(man); err != nil {
		t.Fatalf("pristine manifest rejected: %v", err)
	}
	for byteOff := range man {
		for bit := 0; bit < 8; bit++ {
			man[byteOff] ^= 1 << bit
			_, err := decodeManifest(man)
			man[byteOff] ^= 1 << bit
			if err == nil {
				t.Fatalf("flip of byte %d bit %d decoded silently", byteOff, bit)
			}
			if !errors.Is(err, store.ErrCorrupt) {
				t.Fatalf("flip of byte %d bit %d: error not ErrCorrupt: %v", byteOff, bit, err)
			}
		}
	}
}

// TestManifestTruncationsAndPadding rejects every prefix and every padded
// extension of a valid manifest except the two exact wire sizes.
func TestManifestTruncationsAndPadding(t *testing.T) {
	man := encodeManifest(manifest{version: 2, shards: 2, dims: 5, gen: 3})
	for n := 0; n <= len(man)+8; n++ {
		if n == manifestSizeV2 {
			continue
		}
		buf := make([]byte, n)
		copy(buf, man)
		if _, err := decodeManifest(buf); err == nil {
			t.Fatalf("%d-byte mutation decoded silently", n)
		}
	}
}

// TestManifestImplausibleValuesRejected pins the semantic validation layer
// behind the CRC: re-checksummed manifests with out-of-range fields must
// still be rejected.
func TestManifestImplausibleValuesRejected(t *testing.T) {
	cases := []manifest{
		{version: 2, shards: 0, dims: 3, gen: 1},             // no shards
		{version: 2, shards: 3, dims: 3, gen: 1},             // not a power of two
		{version: 2, shards: maxShards * 2, dims: 3, gen: 1}, // too wide
		{version: 2, shards: 4, dims: 0, gen: 1},             // no dims
		{version: 2, shards: 4, dims: 3, gen: 0},             // v2 without generation
	}
	for _, m := range cases {
		if _, err := decodeManifest(encodeManifest(m)); err == nil {
			t.Fatalf("implausible manifest %+v decoded silently", m)
		}
	}
}

// TestLoadDirMixedGenerationsRefused pins that a manifest pointing at a
// generation with missing segments fails (or salvages) instead of silently
// mixing segments of different generations.
func TestLoadDirMixedGenerationsRefused(t *testing.T) {
	e, _, _ := crashEngine(t, 2, 160, 59)
	fsys := faultio.NewMemFS()
	if err := e.SaveDirFS(fsys, "ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveDirFS(fsys, "ckpt"); err != nil {
		t.Fatal(err)
	}
	gen := e.Generation()
	// Replace one committed segment with one named for a future generation:
	// the committed set is now incomplete even though a same-index segment
	// of another generation sits in the directory.
	old := filepath.Join("ckpt", segmentName(1, gen))
	data, err := fsys.ReadFile(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFileAtomic(fsys, filepath.Join("ckpt", segmentName(1, gen+5)), data); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(old); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadDirFS(fsys, "ckpt", Config{Workers: 1}); err == nil {
		t.Fatal("load mixed generations silently")
	}
	// Salvage still works — it serves the present generation's survivors
	// and quarantines the missing shard; it never reads the foreign file.
	back, err := LoadDirFS(fsys, "ckpt", Config{Workers: 1, Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if back.QuarantinedCount() != 1 || back.Quarantined()[0].Shard != 1 {
		t.Fatalf("quarantine = %+v, want shard 1", back.Quarantined())
	}
}

// FuzzManifest fuzzes the decoder: arbitrary bytes must either fail or
// decode to a manifest that re-encodes canonically (round-trip closure for
// v2) — and must never panic.
func FuzzManifest(f *testing.F) {
	f.Add(encodeManifest(manifest{version: 2, shards: 4, dims: 3, gen: 7}))
	f.Add(encodeManifest(manifest{version: 2, shards: 1, dims: 1, gen: 1}))
	v1 := encodeManifest(manifest{version: 2, shards: 2, dims: 2, gen: 1})[:manifestSizeV1]
	f.Add(v1)
	f.Add([]byte{})
	f.Add([]byte("ACSM"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		if m.shards < 1 || m.shards > maxShards || m.shards != ceilPow2(m.shards) || m.dims < 1 {
			t.Fatalf("decoder accepted implausible manifest %+v", m)
		}
		if m.version == 2 {
			if m.gen == 0 {
				t.Fatalf("decoder accepted v2 manifest with generation 0: %+v", m)
			}
			enc := encodeManifest(m)
			back, err := decodeManifest(enc)
			if err != nil || back != m {
				t.Fatalf("round trip: %+v -> %+v (%v)", m, back, err)
			}
		}
	})
}
