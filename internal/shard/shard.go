// Package shard partitions an adaptive clustering database across several
// independent core indexes so that operations on different partitions run in
// parallel. Objects are hash-partitioned by identifier (Fibonacci hashing
// over a power-of-two shard count, so routing is one multiply and one
// shift); point operations — Insert, Update, Delete, Get — lock only the
// owning shard, while spatial selections fan out to every shard on a bounded
// worker pool and merge the per-shard answers.
//
// Each shard is guarded by a reader/writer lock: selections hold it shared,
// so concurrent queries execute in parallel *within* a shard as well as
// across shards — throughput scales with clients × cores, not with the
// shard count alone. Mutations and reorganization steps hold the lock
// exclusive; query statistics publish after the shared phase through
// core.TryDrainStats, so readers never wait on maintenance.
//
// Every shard is a complete adaptive index: it keeps its own clustering,
// query statistics and reorganization schedule. Because a selection visits
// all shards, each shard observes the full query stream and converges on the
// same cadence as a single index, just over its slice of the objects.
//
// Exactness is unaffected by partitioning: cluster signatures only prune,
// and every candidate object is verified against the selection individually,
// so the union of the shard answers equals the single-index answer.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/geom"
)

// maxShards bounds the shard count; beyond this the per-query fan-out
// overhead dwarfs any conceivable parallelism win.
const maxShards = 1 << 10

// Config parameterizes a sharded engine.
type Config struct {
	// Shards is the number of partitions, rounded up to a power of two;
	// 0 picks the next power of two ≥ GOMAXPROCS.
	Shards int
	// Workers bounds the fan-out worker pool; 0 picks
	// min(Shards, GOMAXPROCS).
	Workers int
	// Salvage makes LoadDir degrade instead of fail when segments are
	// corrupt: damaged shards are quarantined (started empty) and the
	// readable partitions are served. New ignores it.
	Salvage bool
	// Core configures every shard's adaptive index (Dims is required).
	Core core.Config
}

// ceilPow2 returns the smallest power of two ≥ n.
func ceilPow2(n int) int {
	k := 1
	for k < n {
		k <<= 1
	}
	return k
}

func (c *Config) setDefaults() error {
	if c.Shards == 0 {
		c.Shards = ceilPow2(runtime.GOMAXPROCS(0))
	}
	if c.Shards < 0 || c.Shards > maxShards {
		return fmt.Errorf("shard: shard count %d out of range [1,%d]", c.Shards, maxShards)
	}
	c.Shards = ceilPow2(c.Shards)
	if c.Workers <= 0 {
		c.Workers = c.Shards
		if p := runtime.GOMAXPROCS(0); p < c.Workers {
			c.Workers = p
		}
	}
	return nil
}

// lockedShard pairs one partition's index with its reader/writer lock and,
// under background reorganization, the wake channel of its drainer
// goroutine. Selections hold the lock shared — concurrent queries verify
// the same shard in parallel — while point operations and reorganization
// steps hold it exclusive; each query's statistics publication happens
// after the shared phase via core.TryDrainStats.
type lockedShard struct {
	mu   sync.RWMutex
	ix   *core.Index
	wake chan struct{} // nil unless Core.BackgroundReorg
}

// notifyReorg wakes the shard's drainer (non-blocking; a pending wake-up
// already covers the new work).
func (s *lockedShard) notifyReorg() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// publishStats runs one query's publication phase on this shard: apply the
// queued statistics deltas under a brief exclusive acquisition when the
// lock is free (core.TryDrainStats blocks only at the backlog watermark)
// and wake the background drainer when maintenance is pending. Queries on
// other readers' critical paths never wait for this.
func (s *lockedShard) publishStats() {
	pending := s.ix.TryDrainStats(&s.mu)
	if s.wake != nil && (pending || s.ix.StatsBacklog() > 0) {
		s.notifyReorg()
	}
}

// Engine is the sharded adaptive clustering engine. All methods are safe for
// concurrent use.
type Engine struct {
	cfg    Config
	shift  uint // 32 - log2(shards), for Fibonacci routing
	shards []*lockedShard
	// queries counts logical selections (each fans out to every shard, so
	// the per-shard meters would overcount by the shard factor).
	queries atomic.Int64
	// merge pools the per-shard result buffers of the fan-out so that
	// steady-state selections reuse the same backing arrays instead of
	// allocating one answer slice per shard per query.
	merge sync.Pool
	// Background reorganization lifecycle (Core.BackgroundReorg): one
	// drainer goroutine per shard, stopped by Close.
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	// generation is the committed checkpoint generation this engine was
	// loaded from (and advanced by every SaveDir); 0 before any save.
	generation atomic.Uint64
	// quarantined records shards whose checkpoint segments failed
	// validation in a salvage load; guarded by qmu.
	qmu         sync.Mutex
	quarantined []QuarantinedShard
}

// QuarantinedShard records one partition whose checkpoint segment was
// missing or failed validation during a salvage load. The shard serves an
// empty partition until restored.
type QuarantinedShard struct {
	// Shard is the partition's routing position.
	Shard int
	// Err is the validation failure (matches store.ErrCorrupt for
	// integrity damage).
	Err error
}

// mergeBuffers is one pooled set of per-shard answer buffers: perShard backs
// the single-query fan-out, batch the batched fan-out (one IDBatch per
// shard, merged query-major after the barrier).
type mergeBuffers struct {
	perShard [][]uint32
	batch    []geom.IDBatch
}

func (e *Engine) getMergeBuffers() *mergeBuffers {
	if b, ok := e.merge.Get().(*mergeBuffers); ok {
		return b
	}
	return &mergeBuffers{perShard: make([][]uint32, len(e.shards))}
}

// New builds an empty sharded engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	shards := make([]*lockedShard, cfg.Shards)
	for i := range shards {
		ix, err := core.New(cfg.Core)
		if err != nil {
			return nil, err
		}
		shards[i] = &lockedShard{ix: ix}
	}
	// core.New applied the per-shard defaults; keep the effective config.
	cfg.Core = shards[0].ix.Config()
	return newEngine(cfg, shards), nil
}

// Wrap assembles an engine from pre-built shard indexes (the load path).
// The index count must be a power of two and all dimensionalities equal.
func Wrap(cfg Config, ixs []*core.Index) (*Engine, error) {
	if len(ixs) == 0 || len(ixs) != ceilPow2(len(ixs)) || len(ixs) > maxShards {
		return nil, fmt.Errorf("shard: shard count %d is not a power of two in [1,%d]", len(ixs), maxShards)
	}
	cfg.Shards = len(ixs)
	cfg.Core = ixs[0].Config()
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	shards := make([]*lockedShard, len(ixs))
	for i, ix := range ixs {
		if ix.Dims() != cfg.Core.Dims {
			return nil, fmt.Errorf("shard: shard %d has %d dims, shard 0 has %d", i, ix.Dims(), cfg.Core.Dims)
		}
		shards[i] = &lockedShard{ix: ix}
	}
	return newEngine(cfg, shards), nil
}

func newEngine(cfg Config, shards []*lockedShard) *Engine {
	shift := uint(32)
	for k := 1; k < len(shards); k <<= 1 {
		shift--
	}
	e := &Engine{cfg: cfg, shift: shift, shards: shards}
	if cfg.Core.BackgroundReorg {
		e.done = make(chan struct{})
		for _, s := range shards {
			s.wake = make(chan struct{}, 1)
			e.wg.Add(1)
			go e.reorgLoop(s)
		}
	}
	return e
}

// reorgLoop drains one shard's pending reorganization work, taking the shard
// lock once per bounded step so concurrent queries and point operations on
// the shard interleave with maintenance.
func (e *Engine) reorgLoop(s *lockedShard) {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case <-s.wake:
		}
		for {
			s.mu.Lock()
			more := s.ix.ReorgStep()
			s.mu.Unlock()
			if !more {
				break
			}
			select {
			case <-e.done:
				return
			default:
			}
		}
	}
}

// Close stops the background reorganization goroutines (no-op unless
// Core.BackgroundReorg). The engine stays usable afterwards.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		if e.done != nil {
			close(e.done)
			e.wg.Wait()
		}
	})
	return nil
}

// Config returns the effective configuration (defaults applied).
func (e *Engine) Config() Config { return e.cfg }

// Shards returns the number of partitions.
func (e *Engine) Shards() int { return len(e.shards) }

// Dims returns the data space dimensionality.
func (e *Engine) Dims() int { return e.cfg.Core.Dims }

// route returns the owning shard's position for an object id: Fibonacci
// hashing spreads arbitrary id patterns (sequential, strided, clustered)
// evenly over the power-of-two shard count.
func (e *Engine) route(id uint32) int {
	return int((id * 2654435761) >> e.shift)
}

// forEachShard runs fn over every shard on at most cfg.Workers goroutines
// and returns the first error. fn is responsible for the shard's lock.
func (e *Engine) forEachShard(fn func(i int, s *lockedShard) error) error {
	if len(e.shards) == 1 {
		return fn(0, e.shards[0])
	}
	if e.cfg.Workers == 1 {
		// Single-worker pool (e.g. GOMAXPROCS=1): run inline, the
		// goroutine round-trips would be pure overhead.
		for i, s := range e.shards {
			if err := fn(i, s); err != nil {
				return err
			}
		}
		return nil
	}
	workers := e.cfg.Workers
	if workers > len(e.shards) {
		workers = len(e.shards)
	}
	var (
		next     atomic.Int32
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(e.shards) {
					return
				}
				if err := fn(i, e.shards[i]); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Insert adds an object to its owning shard.
func (e *Engine) Insert(id uint32, r geom.Rect) error {
	s := e.shards[e.route(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Insert(id, r)
}

// Update replaces the rectangle stored under id in its owning shard.
func (e *Engine) Update(id uint32, r geom.Rect) error {
	s := e.shards[e.route(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Update(id, r)
}

// Delete removes an object from its owning shard, reporting whether it
// existed.
func (e *Engine) Delete(id uint32) bool {
	s := e.shards[e.route(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Delete(id)
}

// Get returns the rectangle stored under id. Concurrent Gets and searches
// on the same shard run in parallel (shared lock).
func (e *Engine) Get(id uint32) (geom.Rect, bool) {
	s := e.shards[e.route(id)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.Get(id)
}

// InsertBatch bulk-loads a batch: ids are pre-bucketed by owning shard, then
// every shard ingests its bucket under a single lock acquisition, with the
// shards loading in parallel. On error the batch may be partially applied;
// objects inserted before the failure remain.
func (e *Engine) InsertBatch(ids []uint32, rects []geom.Rect) error {
	if len(ids) != len(rects) {
		return fmt.Errorf("shard: batch has %d ids but %d rectangles", len(ids), len(rects))
	}
	if len(ids) == 0 {
		return nil
	}
	buckets := make([][]int32, len(e.shards))
	for k := range ids {
		b := e.route(ids[k])
		buckets[b] = append(buckets[b], int32(k))
	}
	return e.forEachShard(func(i int, s *lockedShard) error {
		if len(buckets[i]) == 0 {
			return nil
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, k := range buckets[i] {
			if err := s.ix.Insert(ids[k], rects[k]); err != nil {
				return err
			}
		}
		return nil
	})
}

// Search executes a spatial selection: the query fans out to every shard in
// parallel, each shard runs the selection over its partition (updating its
// own clustering statistics), and the merged answers are emitted in shard
// order. emit returning false stops the emission; shard-side statistics for
// the query are still recorded, as in the single index.
func (e *Engine) Search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error {
	bufs, err := e.fanOut(q, rel)
	if err != nil {
		return err
	}
	defer e.merge.Put(bufs)
	for _, ids := range bufs.perShard {
		for _, id := range ids {
			if !emit(id) {
				return nil
			}
		}
	}
	return nil
}

// fanOut runs the selection on every shard into pooled per-shard buffers.
// The caller must return bufs to the pool when done with the answers.
func (e *Engine) fanOut(q geom.Rect, rel geom.Relation) (*mergeBuffers, error) {
	bufs := e.getMergeBuffers()
	err := e.forEachShard(func(i int, s *lockedShard) error {
		s.mu.RLock()
		ids, err := s.ix.SearchIDsAppendRead(bufs.perShard[i][:0], q, rel)
		bufs.perShard[i] = ids
		s.mu.RUnlock()
		s.publishStats()
		return err
	})
	if err != nil {
		e.merge.Put(bufs)
		return nil, err
	}
	e.queries.Add(1)
	return bufs, nil
}

// SearchIDs collects the identifiers of all qualifying objects.
func (e *Engine) SearchIDs(q geom.Rect, rel geom.Relation) ([]uint32, error) {
	return e.SearchIDsAppend(nil, q, rel)
}

// SearchIDsAppend appends the identifiers of all qualifying objects to dst
// and returns the extended slice; with a reused dst of sufficient capacity
// the merged fan-out performs no steady-state allocations.
func (e *Engine) SearchIDsAppend(dst []uint32, q geom.Rect, rel geom.Relation) ([]uint32, error) {
	bufs, err := e.fanOut(q, rel)
	if err != nil {
		return dst, err
	}
	defer e.merge.Put(bufs)
	for _, ids := range bufs.perShard {
		dst = append(dst, ids...)
	}
	return dst, nil
}

// SearchIDsBatch executes every query in qs in one engine pass and fills dst
// with the per-query result sets. One *batch* — not N queries — fans out to
// each shard: every shard runs core.SearchBatchRead once over its partition
// (one signature-mirror scan, one statistics publication for the whole
// batch) into a pooled per-shard result batch, and the per-query answers
// merge in shard order, exactly the order SearchIDsAppend produces. An
// invalid query fails the whole batch with no shard charged.
func (e *Engine) SearchIDsBatch(dst *geom.IDBatch, qs []geom.Rect, rel geom.Relation) error {
	dst.Reset(len(qs))
	if len(qs) == 0 {
		return nil
	}
	bufs := e.getMergeBuffers()
	defer e.merge.Put(bufs)
	if bufs.batch == nil {
		bufs.batch = make([]geom.IDBatch, len(e.shards))
	}
	err := e.forEachShard(func(i int, s *lockedShard) error {
		s.mu.RLock()
		err := s.ix.SearchBatchRead(&bufs.batch[i], qs, rel)
		s.mu.RUnlock()
		s.publishStats()
		return err
	})
	if err != nil {
		return err
	}
	e.queries.Add(int64(len(qs)))
	for qi := range qs {
		for i := range bufs.batch {
			dst.IDs = append(dst.IDs, bufs.batch[i].Query(qi)...)
		}
		dst.Off[qi+1] = int32(len(dst.IDs))
	}
	return nil
}

// Count returns the number of objects satisfying the selection. Unlike the
// retrieval paths it never materializes ids: each shard counts locally.
func (e *Engine) Count(q geom.Rect, rel geom.Relation) (int, error) {
	var total atomic.Int64
	err := e.forEachShard(func(i int, s *lockedShard) error {
		s.mu.RLock()
		n, err := s.ix.CountRead(q, rel)
		total.Add(int64(n))
		s.mu.RUnlock()
		s.publishStats()
		return err
	})
	if err != nil {
		return 0, err
	}
	e.queries.Add(1)
	return int(total.Load()), nil
}

// Len returns the number of stored objects across all shards.
func (e *Engine) Len() int {
	n := 0
	for _, s := range e.shards {
		s.mu.RLock()
		n += s.ix.Len()
		s.mu.RUnlock()
	}
	return n
}

// Clusters returns the number of materialized clusters across all shards.
func (e *Engine) Clusters() int {
	n := 0
	for _, s := range e.shards {
		s.mu.RLock()
		n += s.ix.Clusters()
		s.mu.RUnlock()
	}
	return n
}

// Meter returns the engine-wide operation counters: the sum of the shard
// meters, with Queries being the number of logical selections (every
// selection visits all shards; summing the shard query counts would inflate
// it by the shard factor). The summed counters are total work, so modeled
// per-query times represent sequential cost — the parallel speedup shows up
// in wall time, not in the model.
func (e *Engine) Meter() cost.Meter {
	var m cost.Meter
	for _, s := range e.shards {
		// Per-shard meters are internally synchronized (each query merges
		// its counter delta race-free), so no shard lock is needed.
		m.Add(s.ix.Meter())
	}
	m.Queries = e.queries.Load()
	return m
}

// ResetMeter zeroes the operation counters (clustering statistics are kept).
func (e *Engine) ResetMeter() {
	for _, s := range e.shards {
		s.ix.ResetMeter()
	}
	e.queries.Store(0)
}

// Reorganize forces a reorganization round on every shard, in parallel.
func (e *Engine) Reorganize() {
	_ = e.forEachShard(func(_ int, s *lockedShard) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.ix.Reorganize()
		return nil
	})
}

// ReorgRounds returns the total number of reorganization rounds across all
// shards.
func (e *Engine) ReorgRounds() int64 {
	var n int64
	for _, s := range e.shards {
		s.mu.RLock()
		n += s.ix.ReorgRounds()
		s.mu.RUnlock()
	}
	return n
}

// Splits returns the total number of cluster materializations.
func (e *Engine) Splits() int64 {
	var n int64
	for _, s := range e.shards {
		s.mu.RLock()
		n += s.ix.Splits()
		s.mu.RUnlock()
	}
	return n
}

// Merges returns the total number of cluster merges.
func (e *Engine) Merges() int64 {
	var n int64
	for _, s := range e.shards {
		s.mu.RLock()
		n += s.ix.Merges()
		s.mu.RUnlock()
	}
	return n
}

// ShardInfo summarizes one partition for balance monitoring and telemetry.
type ShardInfo struct {
	// Objects is the number of objects the shard stores.
	Objects int
	// Clusters is the shard's materialized cluster count.
	Clusters int
	// ReorgBacklog is the number of clusters queued for revisiting by the
	// shard's incremental reorganizer.
	ReorgBacklog int
	// StatsBacklog is the number of deferred statistics publications
	// waiting to be applied.
	StatsBacklog int
	// Epoch is the shard's reorganization epoch.
	Epoch int64
	// Quarantined reports whether the shard's checkpoint segment failed
	// validation in a salvage load and has not been restored yet.
	Quarantined bool
	// Meter is the shard-local operation counters.
	Meter cost.Meter
}

// ShardInfos reports every partition in routing order.
func (e *Engine) ShardInfos() []ShardInfo {
	quarantined := make(map[int]bool)
	for _, q := range e.Quarantined() {
		quarantined[q.Shard] = true
	}
	out := make([]ShardInfo, len(e.shards))
	for i, s := range e.shards {
		s.mu.RLock()
		out[i] = ShardInfo{
			Objects:      s.ix.Len(),
			Clusters:     s.ix.Clusters(),
			ReorgBacklog: s.ix.ReorgBacklog(),
			StatsBacklog: s.ix.StatsBacklog(),
			Epoch:        s.ix.Epoch(),
			Quarantined:  quarantined[i],
			Meter:        s.ix.Meter(),
		}
		s.mu.RUnlock()
	}
	return out
}

// Generation returns the committed checkpoint generation the engine was
// loaded from or last saved as (0 before any save of a fresh engine).
func (e *Engine) Generation() uint64 { return e.generation.Load() }

// Quarantined returns the shards degraded by a salvage load, in routing
// order; empty on a healthy engine.
func (e *Engine) Quarantined() []QuarantinedShard {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	return append([]QuarantinedShard(nil), e.quarantined...)
}

// QuarantinedCount returns the number of quarantined shards.
func (e *Engine) QuarantinedCount() int {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	return len(e.quarantined)
}

// RestoreQuarantined rebuilds quarantined shards from the original objects
// (or a peer's full object set): objects routing to a quarantined shard are
// inserted, everything else is skipped, and the quarantine is lifted. On
// error the quarantine stays in place.
func (e *Engine) RestoreQuarantined(ids []uint32, rects []geom.Rect) error {
	if len(ids) != len(rects) {
		return fmt.Errorf("shard: restore has %d ids but %d rectangles", len(ids), len(rects))
	}
	quarantined := make(map[int]bool)
	for _, q := range e.Quarantined() {
		quarantined[q.Shard] = true
	}
	if len(quarantined) == 0 {
		return nil
	}
	for k := range ids {
		i := e.route(ids[k])
		if !quarantined[i] {
			continue
		}
		s := e.shards[i]
		s.mu.Lock()
		err := s.ix.Insert(ids[k], rects[k])
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard: restore shard %d: %w", i, err)
		}
	}
	e.qmu.Lock()
	e.quarantined = nil
	e.qmu.Unlock()
	return nil
}

// ClusterInfos reports every materialized cluster, shard by shard in routing
// order (each shard's root first).
func (e *Engine) ClusterInfos() []core.ClusterInfo {
	var out []core.ClusterInfo
	for _, s := range e.shards {
		s.mu.Lock()
		out = append(out, s.ix.ClusterInfos()...)
		s.mu.Unlock()
	}
	return out
}

// CheckInvariants validates every shard's structural invariants plus the
// routing invariant (every object lives in the shard its id hashes to); it
// is expensive and intended for tests.
func (e *Engine) CheckInvariants() error {
	return e.forEachShard(func(i int, s *lockedShard) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if err := s.ix.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		for _, cs := range s.ix.Snapshot() {
			for _, id := range cs.IDs {
				if e.route(id) != i {
					return fmt.Errorf("shard %d: object %d routes to shard %d", i, id, e.route(id))
				}
			}
		}
		return nil
	})
}
