package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"accluster/internal/core"
	"accluster/internal/store"
)

// A sharded database is a directory: one store-format segment per shard
// (shard-NNNN.acdb, §6 disk layout) plus a checksummed MANIFEST recording
// the shard count and dimensionality. The shard count is part of the data's
// identity — objects were partitioned by the save-time hash — so a load
// always restores the saved count regardless of the configured default.

const (
	manifestName  = "MANIFEST"
	manifestMagic = 0x4143534d // "ACSM"
	manifestSize  = 20
)

// segmentName returns the file name of one shard's segment.
func segmentName(i int) string { return fmt.Sprintf("shard-%04d.acdb", i) }

// SaveDir checkpoints every shard into dir (created if missing), replacing
// any previous sharded database there. Shards are written in parallel; the
// manifest is written last so a torn save is detected as corrupt. Each shard
// is checkpointed under its own lock, so a save concurrent with writes is
// internally consistent per shard but not a point-in-time snapshot of the
// whole engine — quiesce writers for that.
func (e *Engine) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	// Remove a stale manifest first: if this save fails halfway, the old
	// manifest must not validate a mixed-generation directory.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("shard: save: %w", err)
	}
	err := e.forEachShard(func(i int, s *lockedShard) error {
		dev, err := store.OpenFileDevice(filepath.Join(dir, segmentName(i)))
		if err != nil {
			return err
		}
		defer dev.Close()
		s.mu.Lock()
		defer s.mu.Unlock()
		return store.Save(s.ix, dev)
	})
	if err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	// Drop segments a previous, wider generation left behind.
	stale, err := filepath.Glob(filepath.Join(dir, "shard-*.acdb"))
	if err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	for _, p := range stale {
		var i int
		if _, err := fmt.Sscanf(filepath.Base(p), "shard-%d.acdb", &i); err == nil && i >= len(e.shards) {
			if err := os.Remove(p); err != nil {
				return fmt.Errorf("shard: save: %w", err)
			}
		}
	}
	man := make([]byte, manifestSize)
	binary.LittleEndian.PutUint32(man[0:], manifestMagic)
	binary.LittleEndian.PutUint32(man[4:], 1) // version
	binary.LittleEndian.PutUint32(man[8:], uint32(len(e.shards)))
	binary.LittleEndian.PutUint32(man[12:], uint32(e.Dims()))
	binary.LittleEndian.PutUint32(man[16:], crc32.ChecksumIEEE(man[:16]))
	if err := os.WriteFile(filepath.Join(dir, manifestName), man, 0o644); err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	return nil
}

// readManifest validates and decodes the directory manifest.
func readManifest(dir string) (shards, dims int, err error) {
	man, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, 0, fmt.Errorf("shard: open manifest: %w", err)
	}
	if len(man) != manifestSize ||
		crc32.ChecksumIEEE(man[:16]) != binary.LittleEndian.Uint32(man[16:]) {
		return 0, 0, fmt.Errorf("shard: corrupt manifest in %s", dir)
	}
	if binary.LittleEndian.Uint32(man[0:]) != manifestMagic {
		return 0, 0, fmt.Errorf("shard: %s is not a sharded database", dir)
	}
	if v := binary.LittleEndian.Uint32(man[4:]); v != 1 {
		return 0, 0, fmt.Errorf("shard: unsupported manifest version %d", v)
	}
	shards = int(binary.LittleEndian.Uint32(man[8:]))
	dims = int(binary.LittleEndian.Uint32(man[12:]))
	if shards < 1 || shards > maxShards || shards != ceilPow2(shards) || dims < 1 {
		return 0, 0, fmt.Errorf("shard: implausible manifest: shards=%d dims=%d", shards, dims)
	}
	return shards, dims, nil
}

// LoadDir recovers a sharded engine from a directory written by SaveDir,
// validating every segment checksum. cfg supplies the runtime parameters;
// the shard count and dimensionality come from the manifest (cfg.Core.Dims
// must match the stored dimensionality or be zero to adopt it).
func LoadDir(dir string, cfg Config) (*Engine, error) {
	shards, dims, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if cfg.Core.Dims != 0 && cfg.Core.Dims != dims {
		return nil, fmt.Errorf("shard: database has %d dims, config wants %d", dims, cfg.Core.Dims)
	}
	cfg.Core.Dims = dims
	ixs := make([]*core.Index, shards)
	for i := range ixs {
		dev, err := store.OpenFileDevice(filepath.Join(dir, segmentName(i)))
		if err != nil {
			return nil, fmt.Errorf("shard: open segment %d: %w", i, err)
		}
		ix, err := store.Load(dev, cfg.Core)
		dev.Close()
		if err != nil {
			return nil, fmt.Errorf("shard: segment %d: %w", i, err)
		}
		ixs[i] = ix
	}
	return Wrap(cfg, ixs)
}
