package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strings"

	"accluster/internal/core"
	"accluster/internal/store"
)

// A sharded database is a directory: one store-format segment per shard
// plus a checksummed MANIFEST recording the shard count, dimensionality and
// the committed generation. Checkpoints are generational: SaveDir writes a
// complete new generation of segments (shard-NNNN-gGGGGGG.acdb), syncs them
// to media, then atomically flips the manifest to point at it; the previous
// generation is garbage-collected only after the flip. A crash at any point
// therefore leaves either the old or the new checkpoint loadable — never a
// mix, never total loss. The shard count is part of the data's identity —
// objects were partitioned by the save-time hash — so a load always
// restores the saved count regardless of the configured default.

const (
	manifestName   = "MANIFEST"
	manifestMagic  = 0x4143534d // "ACSM"
	manifestSizeV1 = 20
	manifestSizeV2 = 28
)

// manifest is the decoded directory manifest.
type manifest struct {
	version int
	shards  int
	dims    int
	gen     uint64 // committed generation; 0 on version-1 manifests
}

// corruptf builds a store.CorruptError, so manifest damage matches
// store.ErrCorrupt under errors.Is like every other integrity failure.
func corruptf(format string, args ...any) error {
	return &store.CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// segmentName returns the file name of one shard's segment in a generation;
// generation 0 is the legacy un-tagged layout of version-1 manifests.
func segmentName(i int, gen uint64) string {
	if gen == 0 {
		return fmt.Sprintf("shard-%04d.acdb", i)
	}
	return fmt.Sprintf("shard-%04d-g%06d.acdb", i, gen)
}

// parseSegmentName decodes a segment file name; ok is false for any file
// that is not exactly a segment of some generation.
func parseSegmentName(name string) (shard int, gen uint64, ok bool) {
	if _, err := fmt.Sscanf(name, "shard-%d-g%d.acdb", &shard, &gen); err == nil {
		if shard >= 0 && gen > 0 && name == segmentName(shard, gen) {
			return shard, gen, true
		}
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(name, "shard-%d.acdb", &shard); err == nil {
		if shard >= 0 && name == segmentName(shard, 0) {
			return shard, 0, true
		}
	}
	return 0, 0, false
}

// encodeManifest renders a version-2 manifest block.
func encodeManifest(m manifest) []byte {
	man := make([]byte, manifestSizeV2)
	binary.LittleEndian.PutUint32(man[0:], manifestMagic)
	binary.LittleEndian.PutUint32(man[4:], 2)
	binary.LittleEndian.PutUint32(man[8:], uint32(m.shards))
	binary.LittleEndian.PutUint32(man[12:], uint32(m.dims))
	binary.LittleEndian.PutUint64(man[16:], m.gen)
	binary.LittleEndian.PutUint32(man[24:], crc32.ChecksumIEEE(man[:24]))
	return man
}

// decodeManifest validates and decodes a manifest block of either version.
func decodeManifest(man []byte) (manifest, error) {
	var m manifest
	switch len(man) {
	case manifestSizeV1, manifestSizeV2:
	default:
		return m, corruptf("manifest has %d bytes", len(man))
	}
	if crc32.ChecksumIEEE(man[:len(man)-4]) != binary.LittleEndian.Uint32(man[len(man)-4:]) {
		return m, corruptf("manifest checksum mismatch")
	}
	if binary.LittleEndian.Uint32(man[0:]) != manifestMagic {
		return m, corruptf("not a sharded database manifest")
	}
	m.version = int(binary.LittleEndian.Uint32(man[4:]))
	switch {
	case m.version == 1 && len(man) == manifestSizeV1:
	case m.version == 2 && len(man) == manifestSizeV2:
		m.gen = binary.LittleEndian.Uint64(man[16:])
		if m.gen == 0 {
			return manifest{}, corruptf("version-2 manifest with generation 0")
		}
	default:
		return manifest{}, corruptf("unsupported manifest version %d (%d bytes)", m.version, len(man))
	}
	m.shards = int(binary.LittleEndian.Uint32(man[8:]))
	m.dims = int(binary.LittleEndian.Uint32(man[12:]))
	if m.shards < 1 || m.shards > maxShards || m.shards != ceilPow2(m.shards) || m.dims < 1 {
		return manifest{}, corruptf("implausible manifest: shards=%d dims=%d", m.shards, m.dims)
	}
	return m, nil
}

// readManifest reads, validates and decodes the directory manifest.
func readManifest(fsys store.FS, dir string) (manifest, error) {
	man, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return manifest{}, fmt.Errorf("shard: open manifest: %w", err)
	}
	m, err := decodeManifest(man)
	if err != nil {
		return manifest{}, fmt.Errorf("shard: manifest in %s: %w", dir, err)
	}
	return m, nil
}

// nextGeneration picks the generation for a new checkpoint: one past both
// the committed generation and any uncommitted segments a crashed save left
// behind, so a new save never collides with leftovers.
func nextGeneration(fsys store.FS, dir string) uint64 {
	var g uint64
	if man, err := fsys.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		if m, err := decodeManifest(man); err == nil {
			g = m.gen
		}
	}
	if names, err := fsys.ReadDir(dir); err == nil {
		for _, name := range names {
			if _, sg, ok := parseSegmentName(name); ok && sg > g {
				g = sg
			}
		}
	}
	return g + 1
}

// SaveDir checkpoints every shard into dir (created if missing) as a new
// generation, atomically replacing any previous checkpoint there: segments
// are fully written and synced (file and directory) before the manifest
// flips, and only then is the previous generation garbage-collected — a
// crash, I/O error or full disk at any point leaves either the old or the
// new checkpoint loadable. Shards are written in parallel (sequentially on
// single-worker engines); each shard is checkpointed under its own lock, so
// a save concurrent with writes is internally consistent per shard but not
// a point-in-time snapshot of the whole engine — quiesce writers for that.
func (e *Engine) SaveDir(dir string) error { return e.SaveDirFS(store.OS, dir) }

// SaveDirFS is SaveDir over an explicit filesystem (fault injection).
func (e *Engine) SaveDirFS(fsys store.FS, dir string) error {
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	gen := nextGeneration(fsys, dir)
	err := e.forEachShard(func(i int, s *lockedShard) error {
		f, err := fsys.Create(filepath.Join(dir, segmentName(i, gen)))
		if err != nil {
			return err
		}
		s.mu.Lock()
		err = store.Save(s.ix, f) // writes, truncates and syncs the segment
		s.mu.Unlock()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	})
	if err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	// Make the new generation's names durable before the manifest can
	// reference them.
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	man := encodeManifest(manifest{version: 2, shards: len(e.shards), dims: e.Dims(), gen: gen})
	if err := store.WriteFileAtomic(fsys, filepath.Join(dir, manifestName), man); err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	e.generation.Store(gen)
	// The flip is durable; dropping the previous generation is cleanup.
	// A failure here is reported but the new checkpoint stays committed.
	if err := gcDir(fsys, dir, len(e.shards), gen); err != nil {
		return fmt.Errorf("shard: save: checkpoint committed, stale-file cleanup failed: %w", err)
	}
	return nil
}

// gcDir removes every file of dir that is not part of the committed
// generation: segments of other generations, out-of-range shard indexes and
// leftover temporary files. Unrecognized names are left alone.
func gcDir(fsys store.FS, dir string, shards int, keep uint64) error {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, name := range names {
		stale := strings.HasSuffix(name, ".tmp")
		if i, g, ok := parseSegmentName(name); ok && (g != keep || i >= shards) {
			stale = true
		}
		if !stale {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// loadSegment opens and validates one shard's segment.
func loadSegment(fsys store.FS, path string, cfg core.Config) (*core.Index, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return store.Load(f, cfg)
}

// LoadDir recovers a sharded engine from a directory written by SaveDir,
// validating every segment checksum. cfg supplies the runtime parameters;
// the shard count and dimensionality come from the manifest (cfg.Core.Dims
// must match the stored dimensionality or be zero to adopt it).
//
// With cfg.Salvage the load degrades instead of failing: segments that are
// missing or fail validation are quarantined — the engine starts with those
// shards empty and serves the remaining partitions — and the damage is
// reported by Quarantined and ShardInfos. Selections on a degraded engine
// return the answers of the healthy shards only. Repopulate with
// RestoreQuarantined (or repair the directory offline with cmd/acfsck) to
// return to full health.
func LoadDir(dir string, cfg Config) (*Engine, error) { return LoadDirFS(store.OS, dir, cfg) }

// LoadDirFS is LoadDir over an explicit filesystem.
func LoadDirFS(fsys store.FS, dir string, cfg Config) (*Engine, error) {
	m, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	if cfg.Core.Dims != 0 && cfg.Core.Dims != m.dims {
		return nil, fmt.Errorf("shard: database has %d dims, config wants %d", m.dims, cfg.Core.Dims)
	}
	cfg.Core.Dims = m.dims
	ixs := make([]*core.Index, m.shards)
	var quarantined []QuarantinedShard
	for i := range ixs {
		ix, err := loadSegment(fsys, filepath.Join(dir, segmentName(i, m.gen)), cfg.Core)
		if err != nil {
			if !cfg.Salvage {
				return nil, fmt.Errorf("shard: segment %d: %w", i, err)
			}
			quarantined = append(quarantined, QuarantinedShard{Shard: i, Err: err})
			continue
		}
		ixs[i] = ix
	}
	if len(quarantined) == len(ixs) {
		return nil, fmt.Errorf("shard: salvage %s: no loadable segments (first: %w)", dir, quarantined[0].Err)
	}
	for i := range ixs {
		if ixs[i] != nil {
			continue
		}
		ix, err := core.New(cfg.Core)
		if err != nil {
			return nil, fmt.Errorf("shard: salvage: %w", err)
		}
		ixs[i] = ix
	}
	e, err := Wrap(cfg, ixs)
	if err != nil {
		return nil, err
	}
	e.generation.Store(m.gen)
	e.quarantined = quarantined
	return e, nil
}
