package shard

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"accluster/internal/core"
	"accluster/internal/geom"
)

func testConfig(dims, shards int) Config {
	return Config{Shards: shards, Core: core.Config{Dims: dims}}
}

// randRect produces a small random rectangle in [0,1]^dims.
func randRect(rng *rand.Rand, dims int) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		lo := rng.Float32() * 0.9
		r.Min[d] = lo
		r.Max[d] = lo + rng.Float32()*(1-lo)
	}
	return r
}

func TestConfigDefaults(t *testing.T) {
	e, err := New(testConfig(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Shards(); s&(s-1) != 0 || s < 1 {
		t.Errorf("default shard count %d is not a power of two", s)
	}
	for _, in := range []int{1, 2, 3, 5, 8, 9} {
		e, err := New(testConfig(4, in))
		if err != nil {
			t.Fatal(err)
		}
		want := ceilPow2(in)
		if e.Shards() != want {
			t.Errorf("Shards=%d rounded to %d, want %d", in, e.Shards(), want)
		}
	}
	if _, err := New(testConfig(4, -1)); err == nil {
		t.Error("negative shard count must fail")
	}
	if _, err := New(testConfig(4, maxShards+1)); err == nil {
		t.Error("huge shard count must fail")
	}
	if _, err := New(testConfig(0, 4)); err == nil {
		t.Error("zero dims must fail")
	}
}

func TestRoutingBalance(t *testing.T) {
	e, err := New(testConfig(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Sequential ids — the common case — must spread over all shards.
	r := geom.NewRect(2)
	r.Max[0], r.Max[1] = 1, 1
	const n = 8000
	for id := uint32(0); id < n; id++ {
		if err := e.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if e.Len() != n {
		t.Fatalf("Len=%d, want %d", e.Len(), n)
	}
	for i, info := range e.ShardInfos() {
		frac := float64(info.Objects) / n
		if frac < 0.5/8 || frac > 2.0/8 {
			t.Errorf("shard %d holds %.1f%% of objects, want near %.1f%%", i, 100*frac, 100.0/8)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPointOperations(t *testing.T) {
	e, err := New(testConfig(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rects := make(map[uint32]geom.Rect)
	for id := uint32(0); id < 500; id++ {
		r := randRect(rng, 3)
		rects[id] = r
		if err := e.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Insert(42, rects[42]); !errors.Is(err, core.ErrDuplicateID) {
		t.Errorf("duplicate insert: %v, want ErrDuplicateID", err)
	}
	for id, want := range rects {
		got, ok := e.Get(id)
		if !ok || !got.Equal(want) {
			t.Fatalf("Get(%d) = %v,%v, want %v", id, got, ok, want)
		}
	}
	// Update relocates within the owning shard.
	nu := randRect(rng, 3)
	if err := e.Update(42, nu); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Get(42); !got.Equal(nu) {
		t.Errorf("after Update, Get(42) = %v, want %v", got, nu)
	}
	if err := e.Update(99999, nu); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("Update of absent id: %v, want ErrNotFound", err)
	}
	if !e.Delete(42) || e.Delete(42) {
		t.Error("Delete must succeed once then report absence")
	}
	if _, ok := e.Get(42); ok {
		t.Error("Get after Delete must miss")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertBatch(t *testing.T) {
	dims := 3
	a, err := New(testConfig(dims, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testConfig(dims, 4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var ids []uint32
	var rects []geom.Rect
	for id := uint32(0); id < 1000; id++ {
		ids = append(ids, id)
		rects = append(rects, randRect(rng, dims))
	}
	for k := range ids {
		if err := a.Insert(ids[k], rects[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.InsertBatch(ids, rects); err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("batch Len=%d, loop Len=%d", b.Len(), a.Len())
	}
	q := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		q.Min[d], q.Max[d] = 0.2, 0.8
	}
	for _, rel := range []geom.Relation{geom.Intersects, geom.ContainedBy, geom.Encloses} {
		wantIDs, err := a.SearchIDs(q, rel)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs, err := b.SearchIDs(q, rel)
		if err != nil {
			t.Fatal(err)
		}
		sortIDs(wantIDs)
		sortIDs(gotIDs)
		if !equalIDs(wantIDs, gotIDs) {
			t.Errorf("rel %v: batch-loaded engine answers differ", rel)
		}
	}
	if err := b.InsertBatch([]uint32{1, 2}, rects[:1]); err == nil {
		t.Error("mismatched batch lengths must fail")
	}
	if err := b.InsertBatch(ids[:2], rects[:2]); !errors.Is(err, core.ErrDuplicateID) {
		t.Errorf("duplicate batch insert: %v, want ErrDuplicateID", err)
	}
	if err := b.InsertBatch(nil, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestSearchEarlyExitAndErrors(t *testing.T) {
	e, err := New(testConfig(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	r := geom.NewRect(2)
	r.Max[0], r.Max[1] = 1, 1
	for id := uint32(0); id < 100; id++ {
		if err := e.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.NewRect(2)
	q.Max[0], q.Max[1] = 1, 1
	seen := 0
	if err := e.Search(q, geom.Intersects, func(uint32) bool { seen++; return seen < 5 }); err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Errorf("early exit emitted %d, want 5", seen)
	}
	bad := geom.NewRect(3)
	if err := e.Search(bad, geom.Intersects, func(uint32) bool { return true }); err == nil {
		t.Error("dimensionality mismatch must propagate from the fan-out")
	}
	n, err := e.Count(q, geom.Intersects)
	if err != nil || n != 100 {
		t.Errorf("Count=%d,%v, want 100", n, err)
	}
}

func TestMeterAggregation(t *testing.T) {
	e, err := New(testConfig(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for id := uint32(0); id < 400; id++ {
		if err := e.Insert(id, randRect(rng, 2)); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.NewRect(2)
	q.Max[0], q.Max[1] = 1, 1
	const queries = 7
	for i := 0; i < queries; i++ {
		if _, err := e.SearchIDs(q, geom.Intersects); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Meter()
	if m.Queries != queries {
		t.Errorf("Meter.Queries=%d, want %d logical queries (not shards x queries)", m.Queries, queries)
	}
	// Every object intersects the full-domain query: total verification
	// work across shards must equal a single index's.
	if m.ObjectsVerified != int64(queries)*400 {
		t.Errorf("ObjectsVerified=%d, want %d", m.ObjectsVerified, queries*400)
	}
	e.ResetMeter()
	if m := e.Meter(); m.Queries != 0 || m.ObjectsVerified != 0 {
		t.Errorf("after ResetMeter: %+v", m)
	}
}

func TestSaveLoadDir(t *testing.T) {
	dims := 3
	e, err := New(testConfig(dims, 4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for id := uint32(0); id < 800; id++ {
		if err := e.Insert(id, randRect(rng, dims)); err != nil {
			t.Fatal(err)
		}
	}
	q := randRect(rng, dims)
	want, err := e.SearchIDs(q, geom.Intersects)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := e.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	// The saved shard count wins over the configured default.
	loaded, err := LoadDir(dir, Config{Shards: 16, Core: core.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 4 {
		t.Errorf("loaded %d shards, want the saved 4", loaded.Shards())
	}
	if loaded.Len() != e.Len() || loaded.Dims() != dims {
		t.Errorf("loaded Len=%d Dims=%d, want %d/%d", loaded.Len(), loaded.Dims(), e.Len(), dims)
	}
	got, err := loaded.SearchIDs(q, geom.Intersects)
	if err != nil {
		t.Fatal(err)
	}
	sortIDs(want)
	sortIDs(got)
	if !equalIDs(want, got) {
		t.Error("loaded engine answers differ from saved engine")
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Error(err)
	}

	if _, err := LoadDir(dir, Config{Core: core.Config{Dims: dims + 1}}); err == nil {
		t.Error("dims mismatch must fail")
	}

	// Corrupting the manifest must be detected.
	man := filepath.Join(dir, manifestName)
	buf, err := os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	buf[8] ^= 0xFF
	if err := os.WriteFile(man, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir, Config{}); err == nil {
		t.Error("corrupt manifest must fail to load")
	}
	if _, err := LoadDir(t.TempDir(), Config{}); err == nil {
		t.Error("missing manifest must fail to load")
	}
}

func TestSaveDirReplacesPreviousGeneration(t *testing.T) {
	dims := 2
	dir := filepath.Join(t.TempDir(), "db")
	wide, err := New(testConfig(dims, 8))
	if err != nil {
		t.Fatal(err)
	}
	r := geom.NewRect(dims)
	r.Max[0], r.Max[1] = 1, 1
	for id := uint32(0); id < 64; id++ {
		if err := wide.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := wide.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	narrow, err := New(testConfig(dims, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := narrow.Insert(1, r); err != nil {
		t.Fatal(err)
	}
	if err := narrow.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "shard-*.acdb"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Errorf("directory holds %d segments after narrower save, want 2: %v", len(segs), segs)
	}
	loaded, err := LoadDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 2 || loaded.Len() != 1 {
		t.Errorf("reloaded shards=%d len=%d, want 2/1", loaded.Shards(), loaded.Len())
	}
}

func sortIDs(ids []uint32) { sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] }) }

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSearchIDsAppendPooled checks the pooled fan-out merge: the append
// variant returns exactly the Search answer in the same order, reuses the
// caller's buffer, and stays correct when many goroutines cycle buffers
// through the engine's pool concurrently.
func TestSearchIDsAppendPooled(t *testing.T) {
	e, err := New(testConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for id := uint32(0); id < 3000; id++ {
		if err := e.Insert(id, randRect(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([]geom.Rect, 32)
	for i := range queries {
		queries[i] = randRect(rng, 4)
	}
	// Sequential agreement plus buffer reuse.
	buf := make([]uint32, 0, 64)
	for _, q := range queries {
		want, err := e.SearchIDs(q, geom.Intersects)
		if err != nil {
			t.Fatal(err)
		}
		buf = buf[:0]
		buf, err = e.SearchIDsAppend(buf, q, geom.Intersects)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != len(want) {
			t.Fatalf("append returned %d ids, Search %d", len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("merge order differs at %d: %d vs %d", i, buf[i], want[i])
			}
		}
	}
	// Concurrent pool cycling: every goroutine must see its own complete
	// answer even though merge buffers are shared through the pool. The
	// ongoing queries trigger reorganizations, which may legally reorder
	// answers — compare id sets, not emission order.
	wants := make([][]uint32, len(queries))
	for i, q := range queries {
		wants[i], _ = e.SearchIDs(q, geom.Intersects)
		sort.Slice(wants[i], func(a, b int) bool { return wants[i][a] < wants[i][b] })
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			var local []uint32
			for k := 0; k < 40; k++ {
				i := (g*13 + k) % len(queries)
				var err error
				local, err = e.SearchIDsAppend(local[:0], queries[i], geom.Intersects)
				if err != nil {
					done <- err
					return
				}
				sort.Slice(local, func(a, b int) bool { return local[a] < local[b] })
				if len(local) != len(wants[i]) {
					done <- errors.New("concurrent append lost or duplicated ids")
					return
				}
				for j := range local {
					if local[j] != wants[i][j] {
						//acvet:ignore corrupterr test assertion message, not an integrity classification
						done <- errors.New("concurrent append corrupted an answer")
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentFanoutStats pins per-shard statistics accounting under the
// shared-lock query path: every logical selection visits every shard, so
// after all deferred publications drain, each shard's statistics window
// must count every query exactly once — none lost to concurrency, none
// double-applied — and the engine meter must agree.
func TestConcurrentFanoutStats(t *testing.T) {
	const (
		dims    = 4
		queries = 160
		workers = 8
	)
	cfg := testConfig(dims, 4)
	cfg.Core.ReorgEvery = 1 << 30 // keep every query inside one epoch
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(81))
	for id := uint32(0); id < 2000; id++ {
		if err := e.Insert(id, randRect(rng, dims)); err != nil {
			t.Fatal(err)
		}
	}
	e.ResetMeter()
	qs := make([]geom.Rect, queries)
	for i := range qs {
		qs[i] = randRect(rng, dims)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(qs); i += workers {
				if _, err := e.Count(qs[i], geom.Intersects); err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Force the remaining deferred publications through the exclusive path.
	for _, s := range e.shards {
		s.mu.Lock()
		s.ix.DrainStats()
		s.mu.Unlock()
	}
	for i, s := range e.shards {
		if w := s.ix.StatsWindow(); w != queries {
			t.Errorf("shard %d: statistics window %g, want %d", i, w, queries)
		}
		if q := s.ix.Meter().Queries; q != queries {
			t.Errorf("shard %d: meter queries %d, want %d", i, q, queries)
		}
	}
	if m := e.Meter(); m.Queries != queries {
		t.Errorf("engine meter queries %d, want %d", m.Queries, queries)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
