package geom

// BenchmarkSearchKernel isolates the columnar verification kernels from
// clustering behaviour: one synthetic cluster of fixed size, dimensionality
// swept over {4, 8, 16, 32} and per-dimension selectivity over {0.1, 0.5,
// 0.9} (the fraction of objects surviving each dimension column — low
// selectivity values empty the bitmap quickly, high values keep it dense).
// The scalar variant runs the per-object FlatMatches verifier over the
// interleaved layout the engine used before the columnar rewrite, so
// kernel regressions show up as a shrinking kernel/scalar gap. Run with
// -benchmem: the kernels must not allocate.

import (
	"fmt"
	"math/rand"
	"testing"
)

const kernelBenchObjects = 4096

// benchData builds columns where each dimension passes the query interval
// [0, qhi] with probability ≈ pass.
func benchData(dims int, pass float64) (lo, hi [][]float32, flat []float32, q Rect) {
	rng := rand.New(rand.NewSource(99))
	lo = make([][]float32, dims)
	hi = make([][]float32, dims)
	for d := 0; d < dims; d++ {
		lo[d] = make([]float32, kernelBenchObjects)
		hi[d] = make([]float32, kernelBenchObjects)
	}
	q = NewRect(dims)
	r := NewRect(dims)
	for d := 0; d < dims; d++ {
		q.Min[d], q.Max[d] = 0, float32(pass)
	}
	for i := 0; i < kernelBenchObjects; i++ {
		for d := 0; d < dims; d++ {
			// Degenerate member intervals: [x,x] intersects [0,pass]
			// iff x ≤ pass, giving the target per-column survival.
			x := rng.Float32()
			lo[d][i], hi[d][i] = x, x
			r.Min[d], r.Max[d] = x, x
		}
		flat = AppendFlat(flat, r)
	}
	return lo, hi, flat, q
}

func BenchmarkSearchKernel(b *testing.B) {
	for _, dims := range []int{4, 8, 16, 32} {
		for _, pass := range []float64{0.1, 0.5, 0.9} {
			lo, hi, flat, q := benchData(dims, pass)
			bits := make([]uint64, BitmapWords(kernelBenchObjects))
			b.Run(fmt.Sprintf("dims=%d/sel=%.1f/kernel", dims, pass), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(kernelBenchObjects) * 8)
				survivors := 0
				for i := 0; i < b.N; i++ {
					InitBitmap(bits, kernelBenchObjects)
					alive := kernelBenchObjects
					for d := 0; d < dims && alive > 0; d++ {
						alive = FilterIntersects(lo[d], hi[d], q.Min[d], q.Max[d], bits)
					}
					survivors += alive
				}
				_ = survivors
			})
			b.Run(fmt.Sprintf("dims=%d/sel=%.1f/scalar", dims, pass), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(kernelBenchObjects) * 8)
				survivors := 0
				for i := 0; i < b.N; i++ {
					for k := 0; k < kernelBenchObjects; k++ {
						if ok, _ := FlatMatches(flat, k, q, Intersects); ok {
							survivors++
						}
					}
				}
				_ = survivors
			})
		}
	}
}
