package geom

import mbits "math/bits"

// Columnar block-scan kernels. The clustering engine stores each cluster's
// members as per-dimension coordinate columns (lo[d][i], hi[d][i]); a
// selection verifies one cluster by walking a candidate bitmap through the
// columns, pruning one dimension at a time. Each kernel evaluates a single
// dimension for every candidate still alive in bits and clears the bits of
// the objects failing the relation's per-dimension predicate.
//
// The bitmap packs object i into bits[i/64] bit i%64. Callers must clear the
// tail bits beyond the object count (InitBitmap does); the kernels only
// narrow the bitmap, so the tail stays clear.
//
// Lanes are processed a 64-bit word at a time. Dense words (at least
// sparseCutoff survivors) take a branch-free full-word pass where each
// comparison materializes as a flag bit (SETcc), not a jump; sparse words
// iterate only their set bits, so lanes killed by earlier dimensions cost
// nothing — the columnar equivalent of the scalar verifier's per-object
// early exit. Fully zeroed words are skipped outright, and the returned
// survivor count lets the caller stop as soon as the bitmap empties.

// BitmapWords returns the number of uint64 words needed for n objects.
func BitmapWords(n int) int { return (n + 63) >> 6 }

// InitBitmap marks the first n objects alive and clears the tail bits. It
// requires len(bits) ≥ BitmapWords(n) and leaves words beyond that count
// untouched.
//
//ac:noalloc
func InitBitmap(bits []uint64, n int) {
	full := n >> 6
	for w := 0; w < full; w++ {
		bits[w] = ^uint64(0)
	}
	if rem := n & 63; rem != 0 {
		bits[full] = (uint64(1) << rem) - 1
	}
}

// sparseCutoff is the survivor count below which per-set-bit iteration beats
// the branch-free full-word pass: a full pass costs 64 lane evaluations
// regardless of how many lanes are still alive, while a set-bit step costs
// only slightly more than one lane evaluation (find/clear the bit plus two
// indexed loads), so sparse iteration wins already at moderate density.
const sparseCutoff = 48

// b2u converts a comparison outcome into a 0/1 lane bit; the compiler turns
// it into a flag materialization (SETcc), keeping the dense pass branch-free.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// FilterIntersects narrows bits to objects whose interval [lo[i],hi[i]]
// overlaps the query interval [qlo,qhi] and returns the survivor count.
//
//ac:noalloc
func FilterIntersects(lo, hi []float32, qlo, qhi float32, bits []uint64) int {
	survivors := 0
	n := len(lo)
	for w := range bits {
		word := bits[w]
		if word == 0 {
			continue
		}
		base := w << 6
		m := n - base
		if m > 64 {
			m = 64
		}
		l, h := lo[base:base+m], hi[base:base+m]
		var keep uint64
		if mbits.OnesCount64(word) < sparseCutoff {
			// The &63 mask proves the index < 64 to the compiler,
			// eliding bounds checks on full words (the bitmap
			// invariant guarantees set bits index live objects).
			for rest := word; rest != 0; rest &= rest - 1 {
				j := mbits.TrailingZeros64(rest)
				keep |= (b2u(l[j&63] <= qhi) & b2u(qlo <= h[j&63])) << uint(j)
			}
		} else {
			for j := 0; j < m; j++ {
				keep |= (b2u(l[j] <= qhi) & b2u(qlo <= h[j])) << uint(j)
			}
		}
		word &= keep
		bits[w] = word
		survivors += mbits.OnesCount64(word)
	}
	return survivors
}

// FilterContainedBy narrows bits to objects contained in the query interval
// (lo[i] ≥ qlo and hi[i] ≤ qhi) and returns the survivor count.
//
//ac:noalloc
func FilterContainedBy(lo, hi []float32, qlo, qhi float32, bits []uint64) int {
	survivors := 0
	n := len(lo)
	for w := range bits {
		word := bits[w]
		if word == 0 {
			continue
		}
		base := w << 6
		m := n - base
		if m > 64 {
			m = 64
		}
		l, h := lo[base:base+m], hi[base:base+m]
		var keep uint64
		if mbits.OnesCount64(word) < sparseCutoff {
			// The &63 mask proves the index < 64 to the compiler,
			// eliding bounds checks on full words (the bitmap
			// invariant guarantees set bits index live objects).
			for rest := word; rest != 0; rest &= rest - 1 {
				j := mbits.TrailingZeros64(rest)
				keep |= (b2u(l[j&63] >= qlo) & b2u(h[j&63] <= qhi)) << uint(j)
			}
		} else {
			for j := 0; j < m; j++ {
				keep |= (b2u(l[j] >= qlo) & b2u(h[j] <= qhi)) << uint(j)
			}
		}
		word &= keep
		bits[w] = word
		survivors += mbits.OnesCount64(word)
	}
	return survivors
}

// FilterEncloses narrows bits to objects enclosing the query interval
// (lo[i] ≤ qlo and hi[i] ≥ qhi) and returns the survivor count.
//
//ac:noalloc
func FilterEncloses(lo, hi []float32, qlo, qhi float32, bits []uint64) int {
	survivors := 0
	n := len(lo)
	for w := range bits {
		word := bits[w]
		if word == 0 {
			continue
		}
		base := w << 6
		m := n - base
		if m > 64 {
			m = 64
		}
		l, h := lo[base:base+m], hi[base:base+m]
		var keep uint64
		if mbits.OnesCount64(word) < sparseCutoff {
			// The &63 mask proves the index < 64 to the compiler,
			// eliding bounds checks on full words (the bitmap
			// invariant guarantees set bits index live objects).
			for rest := word; rest != 0; rest &= rest - 1 {
				j := mbits.TrailingZeros64(rest)
				keep |= (b2u(l[j&63] <= qlo) & b2u(h[j&63] >= qhi)) << uint(j)
			}
		} else {
			for j := 0; j < m; j++ {
				keep |= (b2u(l[j] <= qlo) & b2u(h[j] >= qhi)) << uint(j)
			}
		}
		word &= keep
		bits[w] = word
		survivors += mbits.OnesCount64(word)
	}
	return survivors
}

// QueryDimOrder fills order with the query's dimensions most-selective-first
// for the verification kernels: ascending query width for Intersects and
// ContainedBy (a narrow query interval disqualifies the most objects),
// descending for Encloses (a wide demanded interval does). order and widths
// are caller-provided scratch of length q.Dims() — widths backs the sort
// keys — so a pooled caller computes the order allocation-free once per
// query and applies it to every explored cluster or cached region.
//
//ac:noalloc
func QueryDimOrder(order []int, widths []float32, q Rect, rel Relation) []int {
	dims := q.Dims()
	desc := rel == Encloses
	for d := 0; d < dims; d++ {
		order[d] = d
		w := q.Max[d] - q.Min[d]
		if desc {
			w = -w
		}
		widths[d] = w
	}
	// Insertion sort, stable on dimension index: dims are small (≤ a few
	// dozen) and the caller's scratch keeps this allocation-free.
	for i := 1; i < dims; i++ {
		d, w := order[i], widths[i]
		j := i - 1
		for j >= 0 && widths[j] > w {
			order[j+1], widths[j+1] = order[j], widths[j]
			j--
		}
		order[j+1], widths[j+1] = d, w
	}
	return order
}

// AppendSurvivors appends ids[i] for every bit i set in bits to dst and
// returns the extended slice — the shared bitmap-to-answer step after the
// filter kernels have narrowed a cluster's candidates.
//
//ac:noalloc
func AppendSurvivors(dst []uint32, ids []uint32, bits []uint64) []uint32 {
	for w, word := range bits {
		base := w << 6
		for word != 0 {
			j := mbits.TrailingZeros64(word)
			word &= word - 1
			dst = append(dst, ids[base+j])
		}
	}
	return dst
}

// FilterDim dispatches to the relation's kernel for one dimension column.
//
//ac:noalloc
func FilterDim(rel Relation, lo, hi []float32, qlo, qhi float32, bits []uint64) int {
	switch rel {
	case Intersects:
		return FilterIntersects(lo, hi, qlo, qhi, bits)
	case ContainedBy:
		return FilterContainedBy(lo, hi, qlo, qhi, bits)
	case Encloses:
		return FilterEncloses(lo, hi, qlo, qhi, bits)
	default:
		return 0
	}
}
