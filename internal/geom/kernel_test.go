package geom

import (
	"math/rand"
	"testing"
)

// randColumns builds n random objects as per-dimension columns plus the
// equivalent interleaved flat buffer, with coordinates snapped to a coarse
// grid so exact-boundary cases (including 0 and 1) occur often.
func randColumns(rng *rand.Rand, n, dims int) (lo, hi [][]float32, flat []float32) {
	lo = make([][]float32, dims)
	hi = make([][]float32, dims)
	for d := 0; d < dims; d++ {
		lo[d] = make([]float32, n)
		hi[d] = make([]float32, n)
	}
	grid := func() float32 { return float32(rng.Intn(9)) / 8 }
	r := NewRect(dims)
	for i := 0; i < n; i++ {
		for d := 0; d < dims; d++ {
			a, b := grid(), grid()
			if a > b {
				a, b = b, a
			}
			lo[d][i], hi[d][i] = a, b
			r.Min[d], r.Max[d] = a, b
		}
		flat = AppendFlat(flat, r)
	}
	return lo, hi, flat
}

func randQuery(rng *rand.Rand, dims int) Rect {
	q := NewRect(dims)
	for d := 0; d < dims; d++ {
		a, b := float32(rng.Intn(9))/8, float32(rng.Intn(9))/8
		if a > b {
			a, b = b, a
		}
		q.Min[d], q.Max[d] = a, b
	}
	return q
}

// TestFilterKernelsMatchScalar is the differential property test: filtering
// all dimension columns through the block kernels must select exactly the
// objects the scalar FlatMatches verifier accepts, for every relation,
// across bitmap tail lengths (n not a multiple of 64) and boundary
// coordinates.
func TestFilterKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 3, 63, 64, 65, 127, 128, 200, 1000} {
		for _, dims := range []int{1, 2, 5, 16} {
			lo, hi, flat := randColumns(rng, n, dims)
			bits := make([]uint64, BitmapWords(n))
			for _, rel := range []Relation{Intersects, ContainedBy, Encloses} {
				for trial := 0; trial < 20; trial++ {
					q := randQuery(rng, dims)
					InitBitmap(bits, n)
					alive := n
					for d := 0; d < dims && alive > 0; d++ {
						alive = FilterDim(rel, lo[d], hi[d], q.Min[d], q.Max[d], bits)
					}
					count := 0
					for i := 0; i < n; i++ {
						want, _ := FlatMatches(flat, i, q, rel)
						got := bits[i>>6]&(1<<uint(i&63)) != 0
						if alive == 0 {
							got = false
						}
						if got != want {
							t.Fatalf("n=%d dims=%d rel=%v obj=%d: kernel=%v scalar=%v (q=%v)",
								n, dims, rel, i, got, want, q)
						}
						if want {
							count++
						}
					}
					if alive != count {
						t.Fatalf("n=%d dims=%d rel=%v: survivor count %d, want %d", n, dims, rel, alive, count)
					}
				}
			}
		}
	}
}

// TestFilterSurvivorCount pins the per-column return value: it must equal
// the popcount of the narrowed bitmap after each single column.
func TestFilterSurvivorCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 150
	lo, hi, _ := randColumns(rng, n, 1)
	bits := make([]uint64, BitmapWords(n))
	for _, rel := range []Relation{Intersects, ContainedBy, Encloses} {
		q := randQuery(rng, 1)
		InitBitmap(bits, n)
		alive := FilterDim(rel, lo[0], hi[0], q.Min[0], q.Max[0], bits)
		pop := 0
		for i := 0; i < n; i++ {
			if bits[i>>6]&(1<<uint(i&63)) != 0 {
				pop++
			}
		}
		if alive != pop {
			t.Fatalf("rel=%v: returned %d, bitmap holds %d", rel, alive, pop)
		}
	}
}

// TestFilterTailBitsStayClear verifies the kernels never resurrect tail bits
// beyond the object count.
func TestFilterTailBitsStayClear(t *testing.T) {
	const n = 70 // two words, 58 tail bits in the second
	lo := make([]float32, n)
	hi := make([]float32, n)
	for i := range lo {
		lo[i], hi[i] = 0, 1 // every object passes any predicate
	}
	bits := make([]uint64, BitmapWords(n))
	for _, rel := range []Relation{Intersects, ContainedBy, Encloses} {
		InitBitmap(bits, n)
		alive := FilterDim(rel, lo, hi, 0, 1, bits)
		if alive != n {
			t.Fatalf("rel=%v: %d survivors, want %d", rel, alive, n)
		}
		if got := bits[1] >> uint(n-64); got != 0 {
			t.Fatalf("rel=%v: tail bits set: %b", rel, got)
		}
	}
}

// TestInitBitmap checks the alive prefix and clear tail for assorted sizes.
func TestInitBitmap(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 129} {
		bits := make([]uint64, BitmapWords(n))
		for i := range bits {
			bits[i] = 0xdeadbeefdeadbeef // stale garbage must be overwritten
		}
		InitBitmap(bits, n)
		for i := 0; i < len(bits)*64; i++ {
			got := bits[i>>6]&(1<<uint(i&63)) != 0
			if got != (i < n) {
				t.Fatalf("n=%d bit %d = %v", n, i, got)
			}
		}
	}
}

// TestFilterDimUnknownRelation mirrors FlatMatches: an undefined relation
// selects nothing.
func TestFilterDimUnknownRelation(t *testing.T) {
	lo, hi := []float32{0}, []float32{1}
	bits := make([]uint64, 1)
	InitBitmap(bits, 1)
	if got := FilterDim(Relation(9), lo, hi, 0, 1, bits); got != 0 {
		t.Fatalf("unknown relation: %d survivors, want 0", got)
	}
}

// FuzzFilterKernels fuzzes the kernels against the scalar verifier: the
// input bytes seed object coordinates (clamped to [0,1], NaN-free by
// construction), an object count exercising bitmap tails and a query
// rectangle; every relation must agree with FlatMatches on every object.
func FuzzFilterKernels(f *testing.F) {
	f.Add(uint16(1), byte(0), byte(8), byte(2), byte(6))
	f.Add(uint16(64), byte(0), byte(0), byte(8), byte(8))
	f.Add(uint16(65), byte(3), byte(3), byte(3), byte(3))
	f.Add(uint16(200), byte(8), byte(0), byte(1), byte(7))
	f.Fuzz(func(t *testing.T, nRaw uint16, q0, q1, q2, q3 byte) {
		n := int(nRaw)%300 + 1
		const dims = 2
		rng := rand.New(rand.NewSource(int64(nRaw)<<32 | int64(q0)<<24 | int64(q1)<<16 | int64(q2)<<8 | int64(q3)))
		lo, hi, flat := randColumns(rng, n, dims)
		q := NewRect(dims)
		bnd := func(b byte) float32 { return float32(b%9) / 8 }
		q.Min[0], q.Max[0] = bnd(q0), bnd(q1)
		if q.Min[0] > q.Max[0] {
			q.Min[0], q.Max[0] = q.Max[0], q.Min[0]
		}
		q.Min[1], q.Max[1] = bnd(q2), bnd(q3)
		if q.Min[1] > q.Max[1] {
			q.Min[1], q.Max[1] = q.Max[1], q.Min[1]
		}
		bits := make([]uint64, BitmapWords(n))
		for _, rel := range []Relation{Intersects, ContainedBy, Encloses} {
			InitBitmap(bits, n)
			alive := n
			for d := 0; d < dims && alive > 0; d++ {
				alive = FilterDim(rel, lo[d], hi[d], q.Min[d], q.Max[d], bits)
			}
			for i := 0; i < n; i++ {
				want, _ := FlatMatches(flat, i, q, rel)
				got := alive > 0 && bits[i>>6]&(1<<uint(i&63)) != 0
				if got != want {
					t.Fatalf("n=%d rel=%v obj=%d: kernel=%v scalar=%v", n, rel, i, got, want)
				}
			}
		}
	})
}
