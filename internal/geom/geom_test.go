package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkRect(t *testing.T, lo, hi []float32) Rect {
	t.Helper()
	if len(lo) != len(hi) {
		t.Fatalf("mkRect: mismatched dims %d vs %d", len(lo), len(hi))
	}
	return Rect{Min: lo, Max: hi}
}

func TestRelationString(t *testing.T) {
	cases := map[Relation]string{
		Intersects:   "intersects",
		ContainedBy:  "contained-by",
		Encloses:     "encloses",
		Relation(99): "relation(99)",
	}
	for rel, want := range cases {
		if got := rel.String(); got != want {
			t.Errorf("Relation(%d).String() = %q, want %q", int(rel), got, want)
		}
	}
}

func TestRelationValid(t *testing.T) {
	for _, rel := range []Relation{Intersects, ContainedBy, Encloses} {
		if !rel.Valid() {
			t.Errorf("%v should be valid", rel)
		}
	}
	if Relation(-1).Valid() || Relation(3).Valid() {
		t.Error("out-of-range relations should be invalid")
	}
}

func TestPointAndIsPoint(t *testing.T) {
	p := Point([]float32{0.25, 0.5})
	if !p.IsPoint() {
		t.Fatal("Point() result should be a point")
	}
	if p.Min[0] != 0.25 || p.Max[1] != 0.5 {
		t.Fatalf("unexpected point coords: %v", p)
	}
	r := mkRect(t, []float32{0, 0}, []float32{0.1, 0})
	if r.IsPoint() {
		t.Error("rect with extent in dim 0 is not a point")
	}
}

func TestValid(t *testing.T) {
	tests := []struct {
		name string
		r    Rect
		want bool
	}{
		{"ok", mkRect(t, []float32{0, 0.2}, []float32{0.5, 0.9}), true},
		{"degenerate ok", Point([]float32{1, 1}), true},
		{"inverted", mkRect(t, []float32{0.6}, []float32{0.5}), false},
		{"below domain", mkRect(t, []float32{-0.1}, []float32{0.5}), false},
		{"above domain", mkRect(t, []float32{0.5}, []float32{1.1}), false},
		{"empty", Rect{}, false},
		{"mismatched", Rect{Min: []float32{0}, Max: []float32{0, 1}}, false},
		{"nan", mkRect(t, []float32{float32(nan())}, []float32{0.5}), false},
	}
	for _, tc := range tests {
		if got := tc.r.Valid(); got != tc.want {
			t.Errorf("%s: Valid() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func nan() float64 { return float64(0) / zero() }

func zero() float64 { return 0 }

func TestIntersects(t *testing.T) {
	a := mkRect(t, []float32{0.1, 0.1}, []float32{0.4, 0.4})
	b := mkRect(t, []float32{0.3, 0.3}, []float32{0.6, 0.6})
	c := mkRect(t, []float32{0.5, 0.5}, []float32{0.7, 0.7})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b overlap")
	}
	if a.Intersects(c) {
		t.Error("a and c are disjoint")
	}
	// Touching boundaries intersect under closed semantics.
	d := mkRect(t, []float32{0.4, 0.4}, []float32{0.5, 0.5})
	if !a.Intersects(d) {
		t.Error("touching rectangles intersect (closed intervals)")
	}
}

func TestContainedByAndEncloses(t *testing.T) {
	inner := mkRect(t, []float32{0.2, 0.2}, []float32{0.3, 0.3})
	outer := mkRect(t, []float32{0.1, 0.1}, []float32{0.4, 0.4})
	if !inner.ContainedBy(outer) {
		t.Error("inner ⊆ outer")
	}
	if outer.ContainedBy(inner) {
		t.Error("outer ⊄ inner")
	}
	if !outer.Encloses(inner) {
		t.Error("outer ⊇ inner")
	}
	if !inner.ContainedBy(inner) || !inner.Encloses(inner) {
		t.Error("containment and enclosure are reflexive")
	}
}

func TestMatchesDispatch(t *testing.T) {
	o := mkRect(t, []float32{0.2}, []float32{0.6})
	q := mkRect(t, []float32{0.1}, []float32{0.7})
	if !o.Matches(Intersects, q) || !o.Matches(ContainedBy, q) {
		t.Error("o intersects and is contained by q")
	}
	if o.Matches(Encloses, q) {
		t.Error("o does not enclose q")
	}
	if o.Matches(Relation(42), q) {
		t.Error("unknown relation never matches")
	}
}

func TestVolumeMarginCenter(t *testing.T) {
	r := mkRect(t, []float32{0, 0.5}, []float32{0.5, 1})
	if v := r.Volume(); v < 0.2499 || v > 0.2501 {
		t.Errorf("Volume = %g, want 0.25", v)
	}
	if m := r.Margin(); m < 0.9999 || m > 1.0001 {
		t.Errorf("Margin = %g, want 1", m)
	}
	c := r.Center(nil)
	if c[0] != 0.25 || c[1] != 0.75 {
		t.Errorf("Center = %v, want [0.25 0.75]", c)
	}
}

func TestUnionExtend(t *testing.T) {
	a := mkRect(t, []float32{0.1, 0.4}, []float32{0.2, 0.5})
	b := mkRect(t, []float32{0.0, 0.45}, []float32{0.15, 0.9})
	u := a.Union(b)
	want := mkRect(t, []float32{0.0, 0.4}, []float32{0.2, 0.9})
	if !u.Equal(want) {
		t.Errorf("Union = %v, want %v", u, want)
	}
	if !a.ContainedBy(u) || !b.ContainedBy(u) {
		t.Error("union must cover both inputs")
	}
}

func TestIntersectionVolume(t *testing.T) {
	a := mkRect(t, []float32{0, 0}, []float32{0.5, 0.5})
	b := mkRect(t, []float32{0.25, 0.25}, []float32{0.75, 0.75})
	if v := a.IntersectionVolume(b); v < 0.0624 || v > 0.0626 {
		t.Errorf("IntersectionVolume = %g, want 0.0625", v)
	}
	c := mkRect(t, []float32{0.6, 0.6}, []float32{0.7, 0.7})
	if v := a.IntersectionVolume(c); v != 0 {
		t.Errorf("disjoint IntersectionVolume = %g, want 0", v)
	}
}

func TestEnlargement(t *testing.T) {
	a := mkRect(t, []float32{0, 0}, []float32{0.5, 0.5})
	inside := mkRect(t, []float32{0.1, 0.1}, []float32{0.2, 0.2})
	if e := a.Enlargement(inside); e != 0 {
		t.Errorf("Enlargement by inner rect = %g, want 0", e)
	}
	outside := mkRect(t, []float32{0, 0}, []float32{1, 0.5})
	if e := a.Enlargement(outside); e < 0.2499 || e > 0.2501 {
		t.Errorf("Enlargement = %g, want 0.25", e)
	}
}

func TestObjectBytes(t *testing.T) {
	// Paper §7.1: 16 dims -> 132 bytes, 40 dims -> 324 bytes.
	if got := ObjectBytes(16); got != 132 {
		t.Errorf("ObjectBytes(16) = %d, want 132", got)
	}
	if got := ObjectBytes(40); got != 324 {
		t.Errorf("ObjectBytes(40) = %d, want 324", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := mkRect(t, []float32{0.1}, []float32{0.2})
	b := a.Clone()
	b.Min[0] = 0.9
	if a.Min[0] != 0.1 {
		t.Error("Clone must not share storage")
	}
}

func TestStringRendering(t *testing.T) {
	r := mkRect(t, []float32{0, 0.5}, []float32{0.25, 1})
	if got := r.String(); got != "[0,0.25]x[0.5,1]" {
		t.Errorf("String() = %q", got)
	}
}

// randomRect draws a valid rectangle in the unit domain.
func randomRect(rng *rand.Rand, dims int) Rect {
	r := NewRect(dims)
	for d := 0; d < dims; d++ {
		a, b := rng.Float32(), rng.Float32()
		if a > b {
			a, b = b, a
		}
		r.Min[d], r.Max[d] = a, b
	}
	return r
}

func TestPropertyRelationAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, dimsRaw uint8) bool {
		dims := int(dimsRaw%8) + 1
		local := rand.New(rand.NewSource(seed))
		o := randomRect(local, dims)
		q := randomRect(local, dims)
		// Symmetry of intersection.
		if o.Intersects(q) != q.Intersects(o) {
			return false
		}
		// Containment implies intersection (both rects are non-empty).
		if o.ContainedBy(q) && !o.Intersects(q) {
			return false
		}
		if o.Encloses(q) && !o.Intersects(q) {
			return false
		}
		// Duality: o ⊆ q iff q ⊇ o.
		if o.ContainedBy(q) != q.Encloses(o) {
			return false
		}
		// Union covers both and intersects anything either intersects.
		u := o.Union(q)
		if !o.ContainedBy(u) || !q.ContainedBy(u) {
			return false
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVolumeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := randomRect(local, 4)
		b := randomRect(local, 4)
		u := a.Union(b)
		return u.Volume() >= a.Volume() && u.Volume() >= b.Volume() &&
			a.IntersectionVolume(b) <= a.Volume()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
