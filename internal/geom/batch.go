package geom

// IDBatch carries the per-query answers of one batched selection in a single
// pair of flat slices: Off has one entry per query plus a final sentinel, and
// IDs[Off[i]:Off[i+1]] is query i's result set. The layout is the result-side
// twin of the flat signature mirror — one allocation-free growable arena
// instead of N slices — so engines can retain and reuse one IDBatch across
// batches the same way SearchIDsAppend callers retain a result buffer.
type IDBatch struct {
	IDs []uint32
	Off []int32
}

// Reset prepares the batch for nq queries, reusing the backing arrays. After
// Reset the batch reports nq empty result sets.
//
//ac:noalloc
func (b *IDBatch) Reset(nq int) {
	b.IDs = b.IDs[:0]
	if cap(b.Off) < nq+1 {
		b.Off = make([]int32, 0, nq+1) //acvet:ignore noalloc amortized growth of the offset arena
	}
	b.Off = b.Off[:nq+1]
	for i := range b.Off {
		b.Off[i] = 0
	}
}

// Queries returns the number of per-query result sets the batch holds.
//
//ac:noalloc
func (b *IDBatch) Queries() int {
	if len(b.Off) == 0 {
		return 0
	}
	return len(b.Off) - 1
}

// Query returns query i's result IDs. The slice aliases the batch arena and
// is valid until the next Reset.
//
//ac:noalloc
func (b *IDBatch) Query(i int) []uint32 {
	return b.IDs[b.Off[i]:b.Off[i+1]]
}
