package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dims = 5
	var buf []float32
	var rects []Rect
	for i := 0; i < 20; i++ {
		r := randomRect(rng, dims)
		rects = append(rects, r)
		buf = AppendFlat(buf, r)
	}
	if len(buf) != FlatLen(20, dims) {
		t.Fatalf("flat length = %d, want %d", len(buf), FlatLen(20, dims))
	}
	for i, want := range rects {
		got := FromFlat(buf, i, dims)
		if !got.Equal(want) {
			t.Fatalf("object %d: round trip %v != %v", i, got, want)
		}
	}
}

func TestWriteFlat(t *testing.T) {
	const dims = 3
	buf := make([]float32, FlatLen(4, dims))
	r := Rect{Min: []float32{0.1, 0.2, 0.3}, Max: []float32{0.4, 0.5, 0.6}}
	WriteFlat(buf, 2, r)
	if got := FromFlat(buf, 2, dims); !got.Equal(r) {
		t.Fatalf("WriteFlat: got %v, want %v", got, r)
	}
	// Neighbouring slots untouched.
	if got := FromFlat(buf, 1, dims); got.Volume() != 0 {
		t.Fatalf("slot 1 should still be zero, got %v", got)
	}
}

func TestFlatMatchesAgainstRect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(6) + 1
		var buf []float32
		var rects []Rect
		for i := 0; i < 8; i++ {
			r := randomRect(rng, dims)
			rects = append(rects, r)
			buf = AppendFlat(buf, r)
		}
		q := randomRect(rng, dims)
		for _, rel := range []Relation{Intersects, ContainedBy, Encloses} {
			for i, r := range rects {
				got, checked := FlatMatches(buf, i, q, rel)
				if got != r.Matches(rel, q) {
					return false
				}
				if checked < 1 || checked > dims {
					return false
				}
				if got && checked != dims {
					return false // a match must inspect every dimension
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFlatMatchesEarlyExit(t *testing.T) {
	// Object fails the intersection test in dimension 0: exactly one
	// dimension must be inspected.
	buf := AppendFlat(nil, Rect{Min: []float32{0.8, 0.1}, Max: []float32{0.9, 0.2}})
	q := Rect{Min: []float32{0.0, 0.0}, Max: []float32{0.1, 1.0}}
	ok, checked := FlatMatches(buf, 0, q, Intersects)
	if ok || checked != 1 {
		t.Fatalf("expected miss after 1 dim, got ok=%v checked=%d", ok, checked)
	}
}

func TestFlatMatchesUnknownRelation(t *testing.T) {
	buf := AppendFlat(nil, Point([]float32{0.5}))
	ok, checked := FlatMatches(buf, 0, Point([]float32{0.5}), Relation(9))
	if ok || checked != 0 {
		t.Fatalf("unknown relation: ok=%v checked=%d", ok, checked)
	}
}
