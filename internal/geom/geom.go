// Package geom provides hyper-rectangle geometry for multidimensional
// extended objects: the Rect type, the spatial relations used by the paper
// (intersection, containment, enclosure), and helpers for the flat float32
// layout used by the storage engines.
//
// All coordinates live in the unit domain [0,1] per dimension and intervals
// are closed: an object o defines [o.Lo(d), o.Hi(d)] in every dimension d.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Relation identifies the spatial predicate requested between a query
// rectangle q and a database object o.
type Relation int

const (
	// Intersects selects objects o with o ∩ q ≠ ∅.
	Intersects Relation = iota
	// ContainedBy selects objects o with o ⊆ q (the paper's "containment").
	ContainedBy
	// Encloses selects objects o with o ⊇ q (the paper's "enclosure");
	// point-enclosing queries are Encloses with a degenerate q.
	Encloses
)

// NumRelations is the number of distinct Relation values.
const NumRelations = 3

// String returns the relation name.
func (r Relation) String() string {
	switch r {
	case Intersects:
		return "intersects"
	case ContainedBy:
		return "contained-by"
	case Encloses:
		return "encloses"
	default:
		return fmt.Sprintf("relation(%d)", int(r))
	}
}

// Valid reports whether r is one of the defined relations.
func (r Relation) Valid() bool { return r >= Intersects && r <= Encloses }

// Rect is a multidimensional extended object (hyper-rectangle): a closed
// interval [Min[d], Max[d]] in each dimension d. A point is a Rect with
// Min[d] == Max[d] for all d.
//
// The zero value is not usable; construct with NewRect or FromFlat.
type Rect struct {
	Min []float32
	Max []float32
}

// NewRect allocates a rectangle with the given number of dimensions,
// initialized to the degenerate point at the origin.
func NewRect(dims int) Rect {
	return Rect{Min: make([]float32, dims), Max: make([]float32, dims)}
}

// Point builds a degenerate rectangle from point coordinates. The returned
// Rect shares no storage with p.
func Point(p []float32) Rect {
	r := NewRect(len(p))
	copy(r.Min, p)
	copy(r.Max, p)
	return r
}

// Dims returns the dimensionality of r.
func (r Rect) Dims() int { return len(r.Min) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	c := NewRect(r.Dims())
	copy(c.Min, r.Min)
	copy(c.Max, r.Max)
	return c
}

// Valid reports whether r has matching dimension slices, ordered bounds and
// all coordinates inside the unit domain.
func (r Rect) Valid() bool {
	if len(r.Min) != len(r.Max) || len(r.Min) == 0 {
		return false
	}
	for d := range r.Min {
		lo, hi := r.Min[d], r.Max[d]
		if math.IsNaN(float64(lo)) || math.IsNaN(float64(hi)) {
			return false
		}
		if lo > hi || lo < 0 || hi > 1 {
			return false
		}
	}
	return true
}

// Equal reports whether r and s have identical bounds.
func (r Rect) Equal(s Rect) bool {
	if r.Dims() != s.Dims() {
		return false
	}
	for d := range r.Min {
		if r.Min[d] != s.Min[d] || r.Max[d] != s.Max[d] {
			return false
		}
	}
	return true
}

// IsPoint reports whether r is degenerate in every dimension.
func (r Rect) IsPoint() bool {
	for d := range r.Min {
		if r.Min[d] != r.Max[d] {
			return false
		}
	}
	return true
}

// Intersects reports whether r ∩ q ≠ ∅ (closed intervals).
func (r Rect) Intersects(q Rect) bool {
	for d := range r.Min {
		if r.Min[d] > q.Max[d] || q.Min[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// ContainedBy reports whether r ⊆ q.
func (r Rect) ContainedBy(q Rect) bool {
	for d := range r.Min {
		if r.Min[d] < q.Min[d] || r.Max[d] > q.Max[d] {
			return false
		}
	}
	return true
}

// Encloses reports whether r ⊇ q.
func (r Rect) Encloses(q Rect) bool { return q.ContainedBy(r) }

// Matches evaluates the given relation with r as the database object and q as
// the query rectangle.
func (r Rect) Matches(rel Relation, q Rect) bool {
	switch rel {
	case Intersects:
		return r.Intersects(q)
	case ContainedBy:
		return r.ContainedBy(q)
	case Encloses:
		return r.Encloses(q)
	default:
		return false
	}
}

// Volume returns the product of the side lengths of r.
func (r Rect) Volume() float64 {
	v := 1.0
	for d := range r.Min {
		v *= float64(r.Max[d] - r.Min[d])
	}
	return v
}

// Margin returns the sum of the side lengths of r (the L1 "perimeter"
// surrogate used by the R*-tree split heuristic).
func (r Rect) Margin() float64 {
	m := 0.0
	for d := range r.Min {
		m += float64(r.Max[d] - r.Min[d])
	}
	return m
}

// Center writes the center point of r into dst (allocating when dst is nil
// or too short) and returns it.
func (r Rect) Center(dst []float32) []float32 {
	if cap(dst) < r.Dims() {
		dst = make([]float32, r.Dims())
	}
	dst = dst[:r.Dims()]
	for d := range r.Min {
		dst[d] = (r.Min[d] + r.Max[d]) / 2
	}
	return dst
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	u := r.Clone()
	u.Extend(s)
	return u
}

// Extend grows r in place to cover s.
func (r Rect) Extend(s Rect) {
	for d := range r.Min {
		if s.Min[d] < r.Min[d] {
			r.Min[d] = s.Min[d]
		}
		if s.Max[d] > r.Max[d] {
			r.Max[d] = s.Max[d]
		}
	}
}

// IntersectionVolume returns the volume of r ∩ q (0 when disjoint).
func (r Rect) IntersectionVolume(q Rect) float64 {
	v := 1.0
	for d := range r.Min {
		lo := r.Min[d]
		if q.Min[d] > lo {
			lo = q.Min[d]
		}
		hi := r.Max[d]
		if q.Max[d] < hi {
			hi = q.Max[d]
		}
		if hi <= lo {
			return 0
		}
		v *= float64(hi - lo)
	}
	return v
}

// Enlargement returns the volume increase of r when extended to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	v := 1.0
	for d := range r.Min {
		lo := r.Min[d]
		if s.Min[d] < lo {
			lo = s.Min[d]
		}
		hi := r.Max[d]
		if s.Max[d] > hi {
			hi = s.Max[d]
		}
		v *= float64(hi - lo)
	}
	return v - r.Volume()
}

// String renders r as "[lo,hi]x[lo,hi]...".
func (r Rect) String() string {
	var b strings.Builder
	for d := range r.Min {
		if d > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "[%.4g,%.4g]", r.Min[d], r.Max[d])
	}
	return b.String()
}

// ObjectBytes returns the storage footprint in bytes of one object with the
// given dimensionality: 2 interval limits of 4 bytes per dimension plus a
// 4-byte identifier, as in the paper's experimental setup (§7.1).
func ObjectBytes(dims int) int { return 8*dims + 4 }
