package geom

// The storage engines keep object coordinates in flat []float32 buffers for
// data locality (the paper stores each cluster's members sequentially to
// benefit from cache lines and sequential disk transfer). The layout for an
// object at index i with Nd dimensions is
//
//	buf[i*2*Nd + 2*d]   = Min[d]
//	buf[i*2*Nd + 2*d+1] = Max[d]
//
// Flat provides bounds-checked views over such buffers.

// FlatLen returns the number of float32 slots used by n objects of the given
// dimensionality.
func FlatLen(n, dims int) int { return n * 2 * dims }

// AppendFlat appends the coordinates of r to buf in flat layout.
func AppendFlat(buf []float32, r Rect) []float32 {
	for d := range r.Min {
		buf = append(buf, r.Min[d], r.Max[d])
	}
	return buf
}

// FromFlat copies the i-th object out of buf into a fresh Rect.
func FromFlat(buf []float32, i, dims int) Rect {
	r := NewRect(dims)
	base := i * 2 * dims
	for d := 0; d < dims; d++ {
		r.Min[d] = buf[base+2*d]
		r.Max[d] = buf[base+2*d+1]
	}
	return r
}

// WriteFlat overwrites the i-th object slot of buf with r.
func WriteFlat(buf []float32, i int, r Rect) {
	base := i * 2 * r.Dims()
	for d := range r.Min {
		buf[base+2*d] = r.Min[d]
		buf[base+2*d+1] = r.Max[d]
	}
}

// FlatMatches evaluates rel between the i-th object in buf and the query q
// without materializing a Rect. It returns the match outcome and the number
// of dimensions inspected before the verdict (early exit on the first failing
// dimension), which feeds the byte-level verification cost accounting.
func FlatMatches(buf []float32, i int, q Rect, rel Relation) (ok bool, dimsChecked int) {
	dims := q.Dims()
	base := i * 2 * dims
	switch rel {
	case Intersects:
		for d := 0; d < dims; d++ {
			lo, hi := buf[base+2*d], buf[base+2*d+1]
			if lo > q.Max[d] || q.Min[d] > hi {
				return false, d + 1
			}
		}
	case ContainedBy:
		for d := 0; d < dims; d++ {
			lo, hi := buf[base+2*d], buf[base+2*d+1]
			if lo < q.Min[d] || hi > q.Max[d] {
				return false, d + 1
			}
		}
	case Encloses:
		for d := 0; d < dims; d++ {
			lo, hi := buf[base+2*d], buf[base+2*d+1]
			if lo > q.Min[d] || hi < q.Max[d] {
				return false, d + 1
			}
		}
	default:
		return false, 0
	}
	return true, dims
}
