package blockcache

import (
	"math/rand"
	"sync"
	"testing"
)

// mkRegion builds a filled region of n members in dims dimensions.
func mkRegion(n, dims int, fill float32) *Region {
	r := new(Region)
	r.Reset(n, dims)
	for i := range r.IDs {
		r.IDs[i] = uint32(i)
	}
	for d := 0; d < dims; d++ {
		for i := 0; i < n; i++ {
			r.Lo[d][i] = fill
			r.Hi[d][i] = fill + 1
		}
	}
	return r
}

func TestRegionResetLayout(t *testing.T) {
	r := new(Region)
	r.Reset(10, 3)
	if r.Len() != 10 || len(r.Lo) != 3 || len(r.Hi) != 3 {
		t.Fatalf("shape: len=%d lo=%d hi=%d", r.Len(), len(r.Lo), len(r.Hi))
	}
	for d := 0; d < 3; d++ {
		if len(r.Lo[d]) != 10 || len(r.Hi[d]) != 10 {
			t.Fatalf("column %d: %d/%d", d, len(r.Lo[d]), len(r.Hi[d]))
		}
	}
	// Columns must not alias: writing one must not leak into neighbours.
	r.Lo[0][9] = 42
	r.Hi[0][0] = 43
	if r.Hi[0][9] == 42 || r.Lo[1][0] == 43 {
		t.Fatal("columns alias each other")
	}
	// Shrinking reuses the slab; the layout must stay disjoint.
	slabBefore := &r.slab[0]
	r.Reset(4, 3)
	if &r.slab[0] != slabBefore {
		t.Fatal("shrink reallocated the slab")
	}
	r.Lo[2][3] = 7
	if r.Hi[2][0] == 7 || r.Lo[1][3] == 7 {
		t.Fatal("columns alias after shrink")
	}
}

func TestGetPutHitMiss(t *testing.T) {
	c := New(1 << 20)
	k := Key{Gen: 1, Cluster: 7}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	r := mkRegion(8, 2, 0.5)
	got := c.Put(k, r)
	if got != r {
		t.Fatal("first Put must admit the caller's region")
	}
	c.Unpin(got)
	again, ok := c.Get(k)
	if !ok || again != r {
		t.Fatal("resident region not returned")
	}
	c.Unpin(again)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.UsedBytes != r.Bytes() {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPutRace_KeepsCanonical(t *testing.T) {
	c := New(1 << 20)
	k := Key{Gen: 1, Cluster: 1}
	first := mkRegion(8, 2, 0.1)
	second := mkRegion(8, 2, 0.2)
	a := c.Put(k, first)
	b := c.Put(k, second) // concurrent decode of the same key lost the race
	if a != first || b != first {
		t.Fatal("Put must return the first-admitted region for the key")
	}
	c.Unpin(a)
	c.Unpin(b)
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("duplicate insert created %d entries", st.Entries)
	}
}

func TestGenerationIsolation(t *testing.T) {
	c := New(1 << 20)
	r1 := mkRegion(4, 2, 0.1)
	c.Unpin(c.Put(Key{Gen: 1, Cluster: 0}, r1))
	if _, ok := c.Get(Key{Gen: 2, Cluster: 0}); ok {
		t.Fatal("a new generation must not see the old generation's entries")
	}
	g1, g2 := NextGen(), NextGen()
	if g1 == g2 {
		t.Fatal("generations must be unique")
	}
}

func TestBudgetEvictionClock(t *testing.T) {
	// Budget sized for ~4 of the 8 regions.
	one := mkRegion(64, 4, 0).Bytes()
	c := New(4 * one)
	for i := 0; i < 8; i++ {
		r := mkRegion(64, 4, float32(i))
		c.Unpin(c.Put(Key{Gen: 1, Cluster: int32(i)}, r))
	}
	st := c.Stats()
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("over budget: %+v", st)
	}
	if st.Evictions == 0 || st.Entries > 4 {
		t.Fatalf("no eviction happened: %+v", st)
	}
	// Second chance: a just-referenced entry survives the next eviction —
	// the sweep grants it another pass, and every other entry it clears on
	// the way is evictable before the hand can come around again.
	var kept Key
	for i := 7; i >= 0; i-- {
		k := Key{Gen: 1, Cluster: int32(i)}
		if c.Contains(k) {
			kept = k
			break
		}
	}
	for i := 8; i < 11; i++ {
		r, ok := c.Get(kept)
		if !ok {
			t.Fatalf("referenced entry %v evicted", kept)
		}
		c.Unpin(r)
		c.Unpin(c.Put(Key{Gen: 1, Cluster: int32(i)}, mkRegion(64, 4, float32(i))))
		if !c.Contains(kept) {
			t.Fatalf("entry %v evicted immediately after being referenced", kept)
		}
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	one := mkRegion(64, 4, 0).Bytes()
	c := New(2 * one)
	pinned := c.Put(Key{Gen: 1, Cluster: 0}, mkRegion(64, 4, 0)) // stays pinned
	for i := 1; i < 8; i++ {
		c.Unpin(c.Put(Key{Gen: 1, Cluster: int32(i)}, mkRegion(64, 4, float32(i))))
	}
	if !c.Contains(Key{Gen: 1, Cluster: 0}) {
		t.Fatal("pinned entry evicted")
	}
	// The pinned columns must still be intact.
	if pinned.Lo[0][0] != 0 || pinned.Hi[0][0] != 1 {
		t.Fatal("pinned region corrupted")
	}
	c.Unpin(pinned)
}

func TestOversizeAndAllPinnedRejected(t *testing.T) {
	small := mkRegion(4, 2, 0)
	c := New(small.Bytes() + 1) // holds exactly one small region
	big := mkRegion(1024, 8, 0)
	if got := c.Put(Key{Gen: 1, Cluster: 0}, big); got != big {
		t.Fatal("oversize Put must hand back the caller's region")
	}
	c.Unpin(big) // must be a no-op for a never-admitted region
	if st := c.Stats(); st.Entries != 0 || st.Rejected != 1 {
		t.Fatalf("oversize region admitted: %+v", st)
	}
	// Admit one small region and keep it pinned: the next insert finds
	// nothing evictable and must be rejected, not admitted over budget.
	held := c.Put(Key{Gen: 1, Cluster: 1}, small)
	other := mkRegion(4, 2, 1)
	if got := c.Put(Key{Gen: 1, Cluster: 2}, other); got != other {
		t.Fatal("Put with everything pinned must not evict")
	}
	if !c.Contains(Key{Gen: 1, Cluster: 1}) {
		t.Fatal("pinned entry lost")
	}
	if st := c.Stats(); st.UsedBytes > st.BudgetBytes {
		t.Fatalf("budget exceeded: %+v", st)
	}
	c.Unpin(held)
}

// TestMultiEvictionAdmission pins the sweep-limit regression: admitting a
// region that needs several evictions must not abort mid-sweep because the
// evictions themselves shrank the ring — with everything unpinned and
// referenced, one admission evicts as many entries as the budget demands.
func TestMultiEvictionAdmission(t *testing.T) {
	small := mkRegion(16, 2, 0)
	c := New(10 * small.Bytes())
	for i := 0; i < 10; i++ {
		c.Unpin(c.Put(Key{Gen: 1, Cluster: int32(i)}, mkRegion(16, 2, float32(i))))
	}
	// All ten resident and referenced; a region several times the size
	// needs several evictions behind a full ref-clearing pass.
	big := mkRegion(16*5, 2, 99)
	if got := c.Put(Key{Gen: 1, Cluster: 99}, big); got != big {
		t.Fatal("multi-eviction admission refused")
	}
	c.Unpin(big)
	st := c.Stats()
	if !c.Contains(Key{Gen: 1, Cluster: 99}) || st.Rejected != 0 {
		t.Fatalf("big region not admitted: %+v", st)
	}
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("over budget: %+v", st)
	}
}

// TestConcurrentCacheStress hammers Get/Put/Unpin from many goroutines over
// a tiny budget (run under -race in CI): pins must protect every region a
// worker is reading, and the bookkeeping must stay consistent.
func TestConcurrentCacheStress(t *testing.T) {
	one := mkRegion(64, 4, 0).Bytes()
	c := New(3 * one)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				k := Key{Gen: 1, Cluster: int32(rng.Intn(16))}
				r, ok := c.Get(k)
				if !ok {
					r = c.Put(k, mkRegion(64, 4, float32(k.Cluster)))
				}
				// Read through the pin; the fill value must match the
				// key no matter what eviction does around us.
				if r.Lo[0][0] != float32(k.Cluster) {
					t.Errorf("worker %d: region %d holds value %g", w, k.Cluster, r.Lo[0][0])
					c.Unpin(r)
					return
				}
				c.Unpin(r)
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("budget exceeded at rest: %+v", st)
	}
	if st.Hits == 0 || st.Evictions == 0 {
		t.Fatalf("stress exercised nothing: %+v", st)
	}
}

func TestStatsPinnedAndEvictionAccounting(t *testing.T) {
	r0 := mkRegion(16, 2, 0)
	per := r0.Bytes()
	c := New(4 * per) // room for exactly four regions
	regions := make([]*Region, 4)
	for i := range regions {
		regions[i] = c.Put(Key{Gen: 1, Cluster: int32(i)}, mkRegion(16, 2, 0))
	}
	// All four resident and pinned (Put returns pinned).
	s := c.Stats()
	if s.Entries != 4 || s.Pinned != 4 || s.PinnedBytes != 4*per {
		t.Fatalf("after 4 pinned puts: %+v (per=%d)", s, per)
	}
	if s.UsedBytes != 4*per || s.BudgetBytes != 4*per {
		t.Fatalf("byte accounting: %+v", s)
	}
	// Release two pins: pinned figures must drop, residency must not.
	c.Unpin(regions[0])
	c.Unpin(regions[1])
	s = c.Stats()
	if s.Entries != 4 || s.Pinned != 2 || s.PinnedBytes != 2*per {
		t.Fatalf("after 2 unpins: %+v", s)
	}
	// Admitting a fifth region forces evictions of unpinned entries only.
	c.Put(Key{Gen: 1, Cluster: 100}, mkRegion(16, 2, 0))
	s = c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", s)
	}
	if s.Entries+int(s.Evictions) != 5 {
		t.Fatalf("entries (%d) + evictions (%d) must account for all 5 puts", s.Entries, s.Evictions)
	}
	for i := 2; i < 4; i++ { // the still-pinned regions must have survived
		if !c.Contains(Key{Gen: 1, Cluster: int32(i)}) {
			t.Fatalf("pinned region %d was evicted", i)
		}
	}
	if s.UsedBytes != int64(s.Entries)*per {
		t.Fatalf("used bytes %d do not match %d resident entries", s.UsedBytes, s.Entries)
	}
}
