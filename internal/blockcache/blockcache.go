// Package blockcache is a fixed-memory-budget, concurrency-safe cache of
// decoded cluster regions for the disk storage scenario (§5.ii). A disk
// deployment keeps signatures and the directory in memory while cluster
// members live on the device; every explored cluster therefore costs a seek,
// a sequential transfer and a decode. Production query streams re-explore
// the same hot clusters over and over — the adaptive clustering exists
// precisely because the query distribution is skewed — so caching *decoded*
// regions converts repeat explorations into pure in-memory column scans:
// no seek, no transfer, no decode, no allocation.
//
// Entries are keyed by (checkpoint generation, cluster position). The
// generation is drawn from a process-wide counter at engine open time, so
// engines sharing one cache never mix entries and re-opening a checkpoint
// (after a new store.Save) implicitly invalidates everything the previous
// engine cached: stale entries simply stop being requested and age out.
//
// Eviction is CLOCK (second-chance): each hit sets the entry's reference
// bit, the hand sweeps the ring clearing bits and evicts the first
// unreferenced entry. Entries are pinned while a query verifies against
// their columns — concurrent searches share one decoded region without
// copying — and pinned entries are never evicted; if the sweep cannot free
// enough room (everything pinned, or the region alone exceeds the budget)
// the region is simply not admitted and stays a private, uncached buffer of
// the requesting query.
package blockcache

import (
	"sync"
	"sync/atomic"
)

// Key identifies one decoded cluster region.
type Key struct {
	// Gen is the checkpoint generation (NextGen at engine open).
	Gen uint64
	// Cluster is the cluster's position in the checkpoint directory.
	Cluster int32
}

// generation is the process-wide checkpoint generation counter.
var generation atomic.Uint64

// NextGen returns a fresh checkpoint generation. Every engine opening draws
// one, so cache keys from different openings never collide.
func NextGen() uint64 { return generation.Add(1) }

// Region is one decoded cluster region in the core's structure-of-arrays
// column layout: IDs[i] pairs with Lo[d][i], Hi[d][i]. The columns are
// slab-backed (one allocation) and sized to the live member count, so the
// verification kernels (internal/geom) run over them directly. While a
// Region is pinned its columns are immutable and safe to read from any
// number of goroutines.
type Region struct {
	IDs []uint32
	Lo  [][]float32 // Lo[d][i] = interval start of member i in dimension d
	Hi  [][]float32 // Hi[d][i] = interval end of member i in dimension d

	slab  []float32
	bytes int64

	// Cache bookkeeping, guarded by the owning Cache's mutex.
	key      Key
	pins     int32
	ref      bool
	resident bool
}

// regionOverhead approximates the fixed per-entry footprint (struct, slice
// headers, map entry, ring slot) charged against the budget so that many
// tiny regions cannot blow past it.
const regionOverhead = 192

// Reset prepares the region to hold n members of the given dimensionality,
// reusing previously allocated storage when capacities allow. The contents
// are undefined until the caller fills the columns.
func (r *Region) Reset(n, dims int) {
	if cap(r.IDs) < n {
		r.IDs = make([]uint32, n)
	} else {
		r.IDs = r.IDs[:n]
	}
	if cap(r.Lo) < dims {
		r.Lo = make([][]float32, dims)
		r.Hi = make([][]float32, dims)
	} else {
		r.Lo, r.Hi = r.Lo[:dims], r.Hi[:dims]
	}
	if need := 2 * dims * n; cap(r.slab) < need {
		r.slab = make([]float32, need)
	} else {
		r.slab = r.slab[:need]
	}
	for d := 0; d < dims; d++ {
		r.Lo[d] = r.slab[(2*d)*n : (2*d+1)*n : (2*d+1)*n]
		r.Hi[d] = r.slab[(2*d+1)*n : (2*d+2)*n : (2*d+2)*n]
	}
	r.bytes = int64(4*cap(r.IDs)) + int64(4*cap(r.slab)) + regionOverhead
}

// Len returns the number of members.
func (r *Region) Len() int { return len(r.IDs) }

// Bytes returns the budget charge of the region.
func (r *Region) Bytes() int64 { return r.bytes }

// Stats describes the cache's observed behaviour.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Evictions counts entries removed by the CLOCK sweep.
	Evictions int64
	// Rejected counts regions that could not be admitted (everything
	// evictable was pinned, or the region alone exceeds the budget).
	Rejected int64
	// Entries is the current number of resident regions.
	Entries int
	// Pinned is the number of resident regions currently pinned by
	// in-flight queries; PinnedBytes is their budget charge. Pinned
	// entries are never evicted, so PinnedBytes bounds how much of
	// UsedBytes a sweep could not reclaim right now.
	Pinned      int
	PinnedBytes int64
	// UsedBytes and BudgetBytes describe the memory budget.
	UsedBytes, BudgetBytes int64
}

// Cache is the fixed-budget region cache. All methods are safe for
// concurrent use; the mutex guards only map/ring bookkeeping (never I/O or
// decoding, which callers do outside).
type Cache struct {
	mu        sync.Mutex
	budget    int64
	used      int64
	entries   map[Key]*Region
	ring      []*Region
	hand      int
	hits      int64
	misses    int64
	evictions int64
	rejected  int64
}

// New builds a cache with the given memory budget in bytes (the decoded
// footprint of resident regions, including a fixed per-entry overhead).
func New(budgetBytes int64) *Cache {
	return &Cache{budget: budgetBytes, entries: make(map[Key]*Region)}
}

// Get returns the resident region under k pinned, or nil. The caller must
// Unpin it after verifying.
func (c *Cache) Get(k Key) (*Region, bool) {
	c.mu.Lock()
	r := c.entries[k]
	if r == nil {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	r.pins++
	r.ref = true
	c.hits++
	c.mu.Unlock()
	return r, true
}

// Put admits the freshly decoded r under k and returns the canonical region
// for the key, pinned: r itself when admitted, the already-resident region
// when another query inserted the key first (r is then discarded), or r
// unmanaged when the cache cannot make room — the caller uses it exactly the
// same way and the later Unpin is a no-op. The caller must not touch r
// again after Put except through the returned region.
func (c *Cache) Put(k Key, r *Region) *Region {
	c.mu.Lock()
	defer c.mu.Unlock()
	if exist := c.entries[k]; exist != nil {
		exist.pins++
		exist.ref = true
		return exist
	}
	if r.bytes > c.budget || !c.makeRoom(r.bytes) {
		c.rejected++
		return r
	}
	r.key = k
	r.resident = true
	r.pins = 1
	r.ref = true
	c.entries[k] = r
	c.ring = append(c.ring, r)
	c.used += r.bytes
	return r
}

// makeRoom sweeps the CLOCK hand until need bytes fit in the budget,
// skipping pinned entries and granting one second chance per referenced
// entry. It reports whether the space was freed. The examination limit is
// fixed at entry — two passes over the ring as it was, enough to clear
// every reference bit once and come around again — so a multi-eviction
// admission is not cut short just because earlier evictions shrank the
// ring; once the limit is reached everything left is pinned and the
// admission is refused.
func (c *Cache) makeRoom(need int64) bool {
	limit := 2 * len(c.ring)
	examined := 0
	for c.used+need > c.budget {
		if len(c.ring) == 0 || examined >= limit {
			return false
		}
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		e := c.ring[c.hand]
		examined++
		if e.pins > 0 {
			c.hand++
			continue
		}
		if e.ref {
			e.ref = false
			c.hand++
			continue
		}
		// Evict: swap-remove from the ring (the hand stays, now pointing
		// at the swapped-in tail entry) and drop the map entry.
		last := len(c.ring) - 1
		c.ring[c.hand] = c.ring[last]
		c.ring = c.ring[:last]
		delete(c.entries, e.key)
		c.used -= e.bytes
		e.resident = false
		c.evictions++
	}
	return true
}

// Unpin releases a region obtained from Get or Put. Unpinning a region the
// cache never admitted is a no-op.
func (c *Cache) Unpin(r *Region) {
	c.mu.Lock()
	if r.resident && r.pins > 0 {
		r.pins--
	}
	c.mu.Unlock()
}

// Stats returns a consistent snapshot of the cache counters. The pinned
// figures are computed by walking the ring under the mutex — bounded by the
// entry count and intended for periodic sampling, not hot paths.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Rejected:    c.rejected,
		Entries:     len(c.ring),
		UsedBytes:   c.used,
		BudgetBytes: c.budget,
	}
	for _, e := range c.ring {
		if e.pins > 0 {
			s.Pinned++
			s.PinnedBytes += e.bytes
		}
	}
	return s
}

// Contains reports whether k is resident (without pinning or touching the
// reference bit); intended for tests.
func (c *Cache) Contains(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[k] != nil
}
