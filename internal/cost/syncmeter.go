package cost

import "sync"

// SyncMeter is a Meter safe for concurrent accumulation. Query paths that
// run under a shared (read) lock cannot increment a plain Meter's fields —
// concurrent searches would tear each other's counters — so they accumulate
// a private per-query Meter delta and Merge it once at the end of the query.
// Merge and Snapshot serialize on one short mutex, held only for the eight
// integer additions (or copies), so a merge costs nanoseconds against a
// microsecond-scale query; Snapshot returns all counters from one critical
// section, never a torn mix of two in-flight merges.
type SyncMeter struct {
	mu sync.Mutex
	m  Meter
}

// Merge atomically accumulates a per-query delta into the meter.
func (s *SyncMeter) Merge(d Meter) {
	s.mu.Lock()
	s.m.Add(d)
	s.mu.Unlock()
}

// Snapshot returns a consistent copy of the accumulated counters: every
// previously completed Merge is fully included and no Merge is included
// partially.
func (s *SyncMeter) Snapshot() Meter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}

// Reset zeroes all counters.
func (s *SyncMeter) Reset() {
	s.mu.Lock()
	s.m.Reset()
	s.mu.Unlock()
}
