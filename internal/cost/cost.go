// Package cost implements the paper's cost model (§5): the expected query
// execution time of a cluster, the materialization and merging benefit
// functions driving the adaptive clustering, and a Meter that converts
// operation counts into modeled execution time for the in-memory and
// disk-based storage scenarios.
//
// The model for one cluster c is
//
//	T = A + p · (B + n·C)                                  (eq. 1)
//
// where p is the access probability, n the number of member objects, A the
// signature verification time, B the exploration setup time (plus one disk
// seek in the disk scenario), and C the per-object verification time (plus
// per-object transfer on disk).
package cost

// Reference I/O and CPU operation costs from paper Table 2 (§6), expressed
// in milliseconds.
const (
	// DiskAccessMS is the random disk access (seek) time: 15 ms.
	DiskAccessMS = 15.0
	// TransferMSPerByte is the sequential disk transfer cost per byte,
	// 20 MB/s ≈ 4.77e-5 ms per byte.
	TransferMSPerByte = 4.77e-5
	// SigCheckMS is the cluster signature check cost: 5e-7 ms.
	SigCheckMS = 5e-7
	// VerifyMSPerByte is the object verification cost per byte,
	// 300 MB/s ≈ 3.18e-6 ms per byte.
	VerifyMSPerByte = 3.18e-6
	// DefaultExploreSetupMS is the default exploration setup cost (the
	// memory part of B: the call, the scan initialization and the
	// statistics update for the cluster and its candidate subclusters,
	// §5.i). The paper measures it on its platform but does not list it
	// in Table 2. Updating the indicators of up to dims·f² candidates
	// dominates this cost; 25 µs reproduces the paper's observed cluster
	// granularity (≈80 objects per cluster at 2,000,000 objects,
	// Fig. 7 Table 1).
	DefaultExploreSetupMS = 2.5e-2
)

// Params holds the database and system parameters of one storage scenario.
// The zero value models a free machine; use Memory or Disk for realistic
// presets, then override fields as needed.
type Params struct {
	// Name labels the scenario in reports ("memory", "disk").
	Name string
	// SigCheckMS is A: the time to check one cluster signature.
	SigCheckMS float64
	// ExploreSetupMS is the storage-independent part of B: preparing the
	// exploration and updating query statistics.
	ExploreSetupMS float64
	// SeekMS is the disk head positioning time paid once per explored
	// cluster (0 in the memory scenario).
	SeekMS float64
	// VerifyMSPerByte is the CPU cost to check one byte of object data.
	VerifyMSPerByte float64
	// TransferMSPerByte is the disk→memory transfer cost per byte
	// (0 in the memory scenario).
	TransferMSPerByte float64
}

// Memory returns the in-memory storage scenario (§5.i) with the paper's CPU
// constants and no I/O costs.
func Memory() Params {
	return Params{
		Name:            "memory",
		SigCheckMS:      SigCheckMS,
		ExploreSetupMS:  DefaultExploreSetupMS,
		VerifyMSPerByte: VerifyMSPerByte,
	}
}

// Disk returns the disk-based storage scenario (§5.ii): signatures and
// statistics in memory, members on disk stored sequentially per cluster.
func Disk() Params {
	return Params{
		Name:              "disk",
		SigCheckMS:        SigCheckMS,
		ExploreSetupMS:    DefaultExploreSetupMS,
		SeekMS:            DiskAccessMS,
		VerifyMSPerByte:   VerifyMSPerByte,
		TransferMSPerByte: TransferMSPerByte,
	}
}

// A returns the signature check cost.
func (p Params) A() float64 { return p.SigCheckMS }

// B returns the full exploration setup cost for the scenario: setup plus one
// disk seek in the disk scenario (§5.ii).
func (p Params) B() float64 { return p.ExploreSetupMS + p.SeekMS }

// C returns the full per-object cost for objects of the given byte size:
// verification plus transfer in the disk scenario.
func (p Params) C(objBytes int) float64 {
	return float64(objBytes) * (p.VerifyMSPerByte + p.TransferMSPerByte)
}

// ClusterTime evaluates eq. 1: the expected per-query time contributed by a
// cluster with access probability pAccess and n objects of objBytes each.
func (p Params) ClusterTime(pAccess float64, n, objBytes int) float64 {
	return p.A() + pAccess*(p.B()+float64(n)*p.C(objBytes))
}

// MaterializationBenefit evaluates β(s,c) (eq. 3): the expected per-query
// gain from materializing a candidate subcluster with access probability ps
// and ns matching objects out of a cluster with access probability pc.
// Positive values mean materialization is profitable.
func (p Params) MaterializationBenefit(pc, ps float64, ns, objBytes int) float64 {
	return (pc-ps)*float64(ns)*p.C(objBytes) - ps*p.B() - p.A()
}

// MergingBenefit evaluates μ(c,a) (eq. 5): the expected per-query gain from
// merging a cluster (probability pc, nc objects) back into its parent
// (probability pa). Positive values mean merging is profitable.
func (p Params) MergingBenefit(pc, pa float64, nc, objBytes int) float64 {
	return p.A() + pc*p.B() - (pa-pc)*float64(nc)*p.C(objBytes)
}
