package cost

import "fmt"

// Meter accumulates storage-neutral operation counts during query execution.
// The same counts convert into modeled execution time under any scenario's
// Params, which is how the harness reports both the in-memory and the
// disk-based charts from one run. This is the substitution for the paper's
// physical testbed (2004 SCSI disk, 64 MB RAM cap): the disk-scenario results
// depend only on counted seeks and transferred bytes multiplied by constant
// rates, which a virtual clock reproduces deterministically.
type Meter struct {
	// Queries is the number of queries executed.
	Queries int64
	// SigChecks counts cluster signature (or tree node entry) predicate
	// evaluations paid by every query: the A term.
	SigChecks int64
	// Explorations counts explored clusters/nodes: the B term.
	Explorations int64
	// Seeks counts random disk accesses in the disk scenario. For
	// cluster stores this equals Explorations; for sequential scan it is
	// one per query; for an R*-tree it is one per node access.
	Seeks int64
	// ObjectsVerified counts objects individually checked against the
	// selection criterion.
	ObjectsVerified int64
	// BytesVerified counts coordinate bytes actually inspected during
	// verification. Scalar engines stop at the first failing dimension
	// per object (the paper's footnote 4 effect); the columnar adaptive
	// engine aggregates per-column survivor counts instead, and columns
	// the cluster signature already proves contribute zero — so
	// BytesVerified can be well below ObjectsVerified·8·dims (even zero
	// for a query the signatures fully answer). Cross-engine modeled
	// comparisons use ModelMS, which charges ObjectsVerified and is
	// unaffected by either convention.
	BytesVerified int64
	// BytesTransferred counts bytes read from disk in the disk scenario
	// (whole clusters/nodes/files, independent of early exit).
	BytesTransferred int64
	// CacheHits counts explorations served from a decoded-region cache
	// (internal/blockcache): the cluster was verified without touching the
	// device, so the exploration charged no Seeks and no BytesTransferred
	// (ObjectsVerified still accrues — the members are checked either way).
	// Zero on engines without a region cache.
	CacheHits int64
	// CacheMisses counts explorations that had to read their region from
	// the device because the cache did not hold it. Zero on engines
	// without a region cache.
	CacheMisses int64
	// Results counts objects returned in answer sets.
	Results int64
}

// Add accumulates o into m.
func (m *Meter) Add(o Meter) {
	m.Queries += o.Queries
	m.SigChecks += o.SigChecks
	m.Explorations += o.Explorations
	m.Seeks += o.Seeks
	m.ObjectsVerified += o.ObjectsVerified
	m.BytesVerified += o.BytesVerified
	m.BytesTransferred += o.BytesTransferred
	m.CacheHits += o.CacheHits
	m.CacheMisses += o.CacheMisses
	m.Results += o.Results
}

// Sub returns m - o, useful for measuring a window between two snapshots.
func (m Meter) Sub(o Meter) Meter {
	return Meter{
		Queries:          m.Queries - o.Queries,
		SigChecks:        m.SigChecks - o.SigChecks,
		Explorations:     m.Explorations - o.Explorations,
		Seeks:            m.Seeks - o.Seeks,
		ObjectsVerified:  m.ObjectsVerified - o.ObjectsVerified,
		BytesVerified:    m.BytesVerified - o.BytesVerified,
		BytesTransferred: m.BytesTransferred - o.BytesTransferred,
		CacheHits:        m.CacheHits - o.CacheHits,
		CacheMisses:      m.CacheMisses - o.CacheMisses,
		Results:          m.Results - o.Results,
	}
}

// Reset zeroes all counters.
func (m *Meter) Reset() { *m = Meter{} }

// ModeledMS converts the accumulated counts into total modeled execution
// time (milliseconds) under the given scenario parameters.
func (m Meter) ModeledMS(p Params) float64 {
	return float64(m.SigChecks)*p.SigCheckMS +
		float64(m.Explorations)*p.ExploreSetupMS +
		float64(m.Seeks)*p.SeekMS +
		float64(m.BytesVerified)*p.VerifyMSPerByte +
		float64(m.BytesTransferred)*p.TransferMSPerByte
}

// ModeledMSPerQuery averages ModeledMS over the executed queries; it returns
// 0 when no query ran.
func (m Meter) ModeledMSPerQuery(p Params) float64 {
	if m.Queries == 0 {
		return 0
	}
	return m.ModeledMS(p) / float64(m.Queries)
}

// ModelMS converts the counts into the paper's cost-model time (eq. 1
// aggregated): every verified object is charged the full per-object
// verification cost C for objects of objBytes — the model does not know
// about early-exit verification, which only shows up in measured wall time
// and in BytesVerified. This is the accounting under which the clustering
// decisions guarantee AC ≤ Sequential Scan.
func (m Meter) ModelMS(p Params, objBytes int) float64 {
	return float64(m.SigChecks)*p.SigCheckMS +
		float64(m.Explorations)*p.ExploreSetupMS +
		float64(m.Seeks)*p.SeekMS +
		float64(m.ObjectsVerified)*float64(objBytes)*p.VerifyMSPerByte +
		float64(m.BytesTransferred)*p.TransferMSPerByte
}

// ModelMSPerQuery averages ModelMS over the executed queries.
func (m Meter) ModelMSPerQuery(p Params, objBytes int) float64 {
	if m.Queries == 0 {
		return 0
	}
	return m.ModelMS(p, objBytes) / float64(m.Queries)
}

// String summarizes the meter.
func (m Meter) String() string {
	return fmt.Sprintf("queries=%d sigChecks=%d explorations=%d seeks=%d objsVerified=%d bytesVerified=%d bytesTransferred=%d cacheHits=%d cacheMisses=%d results=%d",
		m.Queries, m.SigChecks, m.Explorations, m.Seeks, m.ObjectsVerified, m.BytesVerified, m.BytesTransferred, m.CacheHits, m.CacheMisses, m.Results)
}
