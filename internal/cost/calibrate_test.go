package cost

import "testing"

func TestCalibrateProducesUsableParams(t *testing.T) {
	c := Calibrate(16)
	if c.SigCheckMS <= 0 || c.VerifyMSPerByte <= 0 || c.ExploreSetupMS <= 0 {
		t.Fatalf("non-positive calibration: %+v", c)
	}
	// Sanity bands: a signature check is sub-microsecond on anything
	// modern; verification faster than 1 ms per byte.
	if c.SigCheckMS > 1e-2 {
		t.Errorf("signature check %g ms implausibly slow", c.SigCheckMS)
	}
	if c.VerifyMSPerByte > 1e-3 {
		t.Errorf("verification %g ms/B implausibly slow", c.VerifyMSPerByte)
	}
	// Exploration setup covers many candidate updates: it must exceed a
	// single signature check.
	if c.ExploreSetupMS <= c.SigCheckMS {
		t.Errorf("explore setup %g not above sig check %g", c.ExploreSetupMS, c.SigCheckMS)
	}
}

func TestCalibratedScenarios(t *testing.T) {
	c := Calibrate(8)
	mem := c.MemoryParams()
	if mem.Name != "memory-calibrated" || mem.SeekMS != 0 || mem.TransferMSPerByte != 0 {
		t.Fatalf("memory params: %+v", mem)
	}
	dsk := c.DiskParams()
	if dsk.SeekMS != DiskAccessMS || dsk.TransferMSPerByte != TransferMSPerByte {
		t.Fatalf("disk params must keep the reference disk: %+v", dsk)
	}
	if dsk.B() <= mem.B() {
		t.Error("disk B must include the seek")
	}
	// The benefit algebra holds for calibrated params too.
	if mem.MaterializationBenefit(1, 0, 1_000_000, 132) <= 0 {
		t.Error("a huge cold candidate must be profitable")
	}
}

func TestCalibrateDegenerateDims(t *testing.T) {
	c := Calibrate(0) // clamped to 1
	if c.SigCheckMS <= 0 {
		t.Fatalf("calibration with clamped dims: %+v", c)
	}
}
