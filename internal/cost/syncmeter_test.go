package cost

import (
	"sync"
	"testing"
)

// TestSyncMeterConcurrentMerge pins the no-torn-reads contract: under -race
// this fails on any unsynchronized field access, and the final snapshot must
// contain every merged delta exactly once.
func TestSyncMeterConcurrentMerge(t *testing.T) {
	var m SyncMeter
	const (
		workers = 8
		merges  = 2000
	)
	delta := Meter{
		Queries:          1,
		SigChecks:        3,
		Explorations:     2,
		Seeks:            2,
		ObjectsVerified:  7,
		BytesVerified:    56,
		BytesTransferred: 128,
		Results:          5,
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < merges; i++ {
				m.Merge(delta)
				// Concurrent snapshots must always observe whole deltas:
				// every counter a multiple of its per-delta contribution.
				if i%64 == 0 {
					s := m.Snapshot()
					if s.SigChecks != 3*s.Queries || s.Results != 5*s.Queries {
						t.Errorf("torn snapshot: %+v", s)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	want := Meter{}
	for i := 0; i < workers*merges; i++ {
		want.Add(delta)
	}
	if got := m.Snapshot(); got != want {
		t.Fatalf("lost updates: got %+v want %+v", got, want)
	}
	m.Reset()
	if got := m.Snapshot(); got != (Meter{}) {
		t.Fatalf("reset left %+v", got)
	}
}
