package cost

import (
	"time"

	"accluster/internal/geom"
)

// The paper (§6, Cost Model Parameters) allows A, B and C to be "either
// experimentally measured and hard-coded in the cost model, or dynamically
// evaluated". Calibrate implements the dynamic path: it micro-benchmarks
// this machine's signature-check and object-verification speeds and returns
// scenario parameters reflecting them. I/O constants cannot be probed
// portably without touching real devices, so the disk variant keeps the
// paper's reference disk (15 ms / 20 MB/s) unless the caller overrides it.

// CalibrationResult carries the measured CPU parameters.
type CalibrationResult struct {
	// SigCheckMS is the measured per-signature check cost.
	SigCheckMS float64
	// VerifyMSPerByte is the measured per-byte object verification cost.
	VerifyMSPerByte float64
	// ExploreSetupMS is the estimated exploration setup cost, dominated
	// by per-candidate statistics updates.
	ExploreSetupMS float64
}

// Calibrate measures CPU cost parameters on the current machine. dims is
// the intended data space dimensionality (it shapes both the signature
// check and the per-object verification work). The measurement takes a few
// milliseconds.
func Calibrate(dims int) CalibrationResult {
	if dims < 1 {
		dims = 1
	}
	const objects = 4096
	buf := make([]float32, geom.FlatLen(objects, dims))
	// Deterministic pseudo-data: mixed hits and misses so early exit
	// behaves like production.
	state := uint32(2463534242)
	next := func() float32 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return float32(state%1000) / 1000
	}
	for i := 0; i < objects; i++ {
		for d := 0; d < dims; d++ {
			a, b := next(), next()
			if a > b {
				a, b = b, a
			}
			buf[i*2*dims+2*d] = a
			buf[i*2*dims+2*d+1] = b
		}
	}
	q := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		q.Min[d], q.Max[d] = 0.25, 0.75
	}

	// Object verification throughput: scan the flat buffer, count bytes
	// actually inspected (the model charges full objects; measuring per
	// inspected byte keeps the rate hardware-true).
	sink := 0
	var bytes int64
	start := time.Now()
	const verifyRounds = 8
	for r := 0; r < verifyRounds; r++ {
		for i := 0; i < objects; i++ {
			ok, checked := geom.FlatMatches(buf, i, q, geom.Intersects)
			bytes += int64(checked) * 8
			if ok {
				sink++
			}
		}
	}
	verifyMS := float64(time.Since(start).Nanoseconds()) / 1e6
	verifyPerByte := verifyMS / float64(bytes)

	// Signature check cost: one early-exiting per-dimension predicate,
	// approximated by a single-object verification.
	start = time.Now()
	const sigRounds = 1 << 16
	for r := 0; r < sigRounds; r++ {
		ok, _ := geom.FlatMatches(buf, r%objects, q, geom.Intersects)
		if ok {
			sink++
		}
	}
	sigMS := float64(time.Since(start).Nanoseconds()) / 1e6 / sigRounds

	// Exploration setup: dominated by updating the indicators of up to
	// dims·f² candidates (f=4); approximate each update as one signature
	// check on the refined dimension.
	exploreMS := sigMS * float64(dims*16)
	if exploreMS <= 0 {
		exploreMS = DefaultExploreSetupMS
	}
	_ = sink
	return CalibrationResult{
		SigCheckMS:      sigMS,
		VerifyMSPerByte: verifyPerByte,
		ExploreSetupMS:  exploreMS,
	}
}

// MemoryParams builds an in-memory scenario from the measurement.
func (c CalibrationResult) MemoryParams() Params {
	return Params{
		Name:            "memory-calibrated",
		SigCheckMS:      c.SigCheckMS,
		ExploreSetupMS:  c.ExploreSetupMS,
		VerifyMSPerByte: c.VerifyMSPerByte,
	}
}

// DiskParams builds a disk scenario from the measurement, keeping the
// paper's reference disk characteristics (override SeekMS and
// TransferMSPerByte for a different device).
func (c CalibrationResult) DiskParams() Params {
	p := c.MemoryParams()
	p.Name = "disk-calibrated"
	p.SeekMS = DiskAccessMS
	p.TransferMSPerByte = TransferMSPerByte
	return p
}
