package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestPaperTable2Constants(t *testing.T) {
	// Pin the reference constants of paper Table 2 (§6).
	if DiskAccessMS != 15.0 {
		t.Errorf("DiskAccessMS = %g, want 15", DiskAccessMS)
	}
	if SigCheckMS != 5e-7 {
		t.Errorf("SigCheckMS = %g, want 5e-7", SigCheckMS)
	}
	// 20 MB/s: 1/(20·2^20) s/B ≈ 4.77e-5 ms/B (paper rounds to 4.77e-5).
	if math.Abs(TransferMSPerByte-4.77e-5) > 1e-7 {
		t.Errorf("TransferMSPerByte = %g, want ≈4.77e-5", TransferMSPerByte)
	}
	// 300 MB/s ≈ 3.18e-6 ms/B.
	if math.Abs(VerifyMSPerByte-3.18e-6) > 1e-8 {
		t.Errorf("VerifyMSPerByte = %g, want ≈3.18e-6", VerifyMSPerByte)
	}
}

func TestScenarioComposition(t *testing.T) {
	mem, dsk := Memory(), Disk()
	if mem.Name != "memory" || dsk.Name != "disk" {
		t.Error("scenario names")
	}
	if mem.SeekMS != 0 || mem.TransferMSPerByte != 0 {
		t.Error("memory scenario must have no I/O costs")
	}
	if dsk.B() <= mem.B() {
		t.Error("disk B must include the seek (B' = B + access time, §5.ii)")
	}
	if !almost(dsk.B()-mem.B(), DiskAccessMS) {
		t.Errorf("disk B - memory B = %g, want %g", dsk.B()-mem.B(), DiskAccessMS)
	}
	objBytes := 132 // 16 dims
	if !almost(dsk.C(objBytes)-mem.C(objBytes), float64(objBytes)*TransferMSPerByte) {
		t.Error("disk C must add the per-object transfer time (C' = C + read time)")
	}
	if mem.A() != dsk.A() {
		t.Error("A is storage independent (§5.ii: A' = A)")
	}
}

func TestClusterTimeEquation(t *testing.T) {
	p := Disk()
	// T = A + p(B + nC) spelled out.
	pAccess, n, objBytes := 0.25, 1000, 132
	want := p.A() + pAccess*(p.B()+float64(n)*p.C(objBytes))
	if got := p.ClusterTime(pAccess, n, objBytes); !almost(got, want) {
		t.Errorf("ClusterTime = %g, want %g", got, want)
	}
	// Zero access probability costs only the signature check.
	if got := p.ClusterTime(0, 1e6, objBytes); !almost(got, p.A()) {
		t.Errorf("never-accessed cluster costs %g, want A=%g", got, p.A())
	}
}

// TestBenefitDerivation checks the closed forms of eq. 3 and eq. 5 against
// their definitions as differences of eq. 1 terms (β = T_c − (T_c' + T_s),
// μ = (T_c + T_a) − T_a'), under the paper's assumptions p_c' = p_c,
// n_c' = n_c − n_s for splits and p_a' = p_a, n_a' = n_a + n_c for merges.
func TestBenefitDerivation(t *testing.T) {
	check := func(p Params) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			objBytes := 4 + 8*(1+rng.Intn(40))
			pc := rng.Float64()
			ps := pc * rng.Float64() // candidate probability ≤ cluster probability
			nc := rng.Intn(100000) + 1
			ns := rng.Intn(nc + 1)

			// Split derivation.
			tBefore := p.ClusterTime(pc, nc, objBytes)
			tAfter := p.ClusterTime(pc, nc-ns, objBytes) + p.ClusterTime(ps, ns, objBytes)
			if !almost(p.MaterializationBenefit(pc, ps, ns, objBytes), tBefore-tAfter) {
				return false
			}

			// Merge derivation: cluster c with parent a.
			pa := math.Min(1, pc+rng.Float64()*(1-pc))
			na := rng.Intn(100000) + 1
			tBefore = p.ClusterTime(pc, nc, objBytes) + p.ClusterTime(pa, na, objBytes)
			tAfter = p.ClusterTime(pa, na+nc, objBytes)
			return almost(p.MergingBenefit(pc, pa, nc, objBytes), tBefore-tAfter)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s scenario: %v", p.Name, err)
		}
	}
	check(Memory())
	check(Disk())
}

func TestBenefitMonotonicity(t *testing.T) {
	p := Disk()
	objBytes := 132
	// Lower candidate access probability → higher materialization benefit.
	b1 := p.MaterializationBenefit(0.8, 0.1, 5000, objBytes)
	b2 := p.MaterializationBenefit(0.8, 0.5, 5000, objBytes)
	if b1 <= b2 {
		t.Error("benefit must grow as candidate probability drops (§5)")
	}
	// More matching objects → higher benefit.
	if p.MaterializationBenefit(0.8, 0.1, 10000, objBytes) <= b1 {
		t.Error("benefit must grow with the number of qualifying objects")
	}
	// Merging pays when child probability approaches the parent's.
	m1 := p.MergingBenefit(0.75, 0.8, 100, objBytes)
	m2 := p.MergingBenefit(0.10, 0.8, 100, objBytes)
	if m1 <= m2 {
		t.Error("merging benefit must grow as p_c approaches p_a")
	}
	// Splitting a candidate with the cluster's own probability never pays.
	if p.MaterializationBenefit(0.5, 0.5, 100000, objBytes) > 0 {
		t.Error("no gain when the candidate is explored as often as the cluster")
	}
}

func TestDiskDiscouragesFineClusters(t *testing.T) {
	// The disk seek makes small clusters unprofitable: a candidate worth
	// materializing in memory can be worthless on disk (§7.2 observes far
	// fewer clusters on disk). Example: 500 objects, p_s = p_c/2.
	objBytes := 132
	mem, dsk := Memory(), Disk()
	if mem.MaterializationBenefit(1.0, 0.5, 500, objBytes) <= 0 {
		t.Error("500-object candidate should be profitable in memory")
	}
	if dsk.MaterializationBenefit(1.0, 0.5, 500, objBytes) >= 0 {
		t.Error("500-object candidate should be unprofitable on disk")
	}
	// But a large candidate pays even on disk (threshold ≈ B'/C' ≈ 2240
	// objects at 16 dims).
	if dsk.MaterializationBenefit(1.0, 0.5, 100000, objBytes) <= 0 {
		t.Error("100k-object candidate should be profitable on disk")
	}
	// Very small candidates do not pay even in memory: the exploration
	// setup B bounds cluster granularity (≈ B/C ≈ 60 objects at 16 dims).
	if mem.MaterializationBenefit(1.0, 0.5, 10, objBytes) >= 0 {
		t.Error("10-object candidate should be unprofitable in memory")
	}
}

func TestMeterAccumulation(t *testing.T) {
	var m Meter
	m.Add(Meter{Queries: 2, SigChecks: 10, Explorations: 3, Seeks: 3,
		ObjectsVerified: 100, BytesVerified: 800, BytesTransferred: 1320, Results: 7})
	m.Add(Meter{Queries: 1, SigChecks: 5, Explorations: 1, Seeks: 1,
		ObjectsVerified: 50, BytesVerified: 400, BytesTransferred: 660, Results: 3})
	if m.Queries != 3 || m.SigChecks != 15 || m.Results != 10 {
		t.Fatalf("Add: %v", m)
	}
	d := m.Sub(Meter{Queries: 1, SigChecks: 5, Explorations: 1, Seeks: 1,
		ObjectsVerified: 50, BytesVerified: 400, BytesTransferred: 660, Results: 3})
	if d.Queries != 2 || d.BytesTransferred != 1320 {
		t.Fatalf("Sub: %v", d)
	}
	m.Reset()
	if m != (Meter{}) {
		t.Fatal("Reset must zero the meter")
	}
}

func TestMeterModeledTime(t *testing.T) {
	m := Meter{
		Queries:          2,
		SigChecks:        1000,
		Explorations:     10,
		Seeks:            10,
		BytesVerified:    1 << 20,
		BytesTransferred: 1 << 20,
	}
	mem := Memory()
	wantMem := 1000*mem.SigCheckMS + 10*mem.ExploreSetupMS + float64(1<<20)*mem.VerifyMSPerByte
	if got := m.ModeledMS(mem); !almost(got, wantMem) {
		t.Errorf("memory modeled = %g, want %g", got, wantMem)
	}
	dsk := Disk()
	wantDisk := wantMem + 10*DiskAccessMS + float64(1<<20)*TransferMSPerByte
	if got := m.ModeledMS(dsk); !almost(got, wantDisk) {
		t.Errorf("disk modeled = %g, want %g", got, wantDisk)
	}
	if got := m.ModeledMSPerQuery(dsk); !almost(got, wantDisk/2) {
		t.Errorf("per-query = %g, want %g", got, wantDisk/2)
	}
	if (Meter{}).ModeledMSPerQuery(mem) != 0 {
		t.Error("no queries → per-query time 0")
	}
	if m.String() == "" {
		t.Error("String must render")
	}
}
