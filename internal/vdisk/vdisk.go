// Package vdisk simulates a disk with a virtual clock. Every read or write
// advances simulated time: a head seek (paper Table 2: 15 ms) whenever the
// access is not sequential with the previous one, plus transfer time
// proportional to the byte count (20 MB/s). This substitutes for the paper's
// physical SCSI testbed: the disk-scenario results depend only on the
// sequence of accesses and the two constants, which the virtual clock
// reproduces deterministically — and unlike a bare operation counter, it
// distinguishes sequential from random access patterns on the actual layout.
package vdisk

import (
	"fmt"
	"sync"
)

// Disk is a virtual-time block device implementing the store.Device
// interface. It is safe for concurrent use, though concurrent accesses
// serialize on the single disk head (as on real spinning media).
type Disk struct {
	seekMS            float64
	transferMSPerByte float64

	mu      sync.Mutex
	buf     []byte
	touched bool  // false until the first access (which always seeks)
	headPos int64 // byte position after the last access
	clockMS float64
	seeks   int64
	reads   int64
	writes  int64
	bytes   int64
}

// New builds an empty virtual disk with the given characteristics.
func New(seekMS, transferMSPerByte float64) *Disk {
	return &Disk{seekMS: seekMS, transferMSPerByte: transferMSPerByte}
}

// advance charges one access at off of n bytes.
func (d *Disk) advance(off int64, n int) {
	if !d.touched || off != d.headPos {
		d.clockMS += d.seekMS
		d.seeks++
		d.touched = true
	}
	d.clockMS += float64(n) * d.transferMSPerByte
	d.headPos = off + int64(n)
	d.bytes += int64(n)
}

// ReadAt implements store.Device.
func (d *Disk) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off >= int64(len(d.buf)) {
		return 0, fmt.Errorf("vdisk: read at %d beyond size %d", off, len(d.buf))
	}
	n := copy(p, d.buf[off:])
	d.reads++
	d.advance(off, n)
	if n < len(p) {
		return n, fmt.Errorf("vdisk: short read at %d", off)
	}
	return n, nil
}

// WriteAt implements store.Device, growing the disk as needed.
func (d *Disk) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("vdisk: negative offset")
	}
	end := off + int64(len(p))
	if end > int64(len(d.buf)) {
		grown := make([]byte, end)
		copy(grown, d.buf)
		d.buf = grown
	}
	copy(d.buf[off:], p)
	d.writes++
	d.advance(off, len(p))
	return len(p), nil
}

// Truncate implements store.Device.
func (d *Disk) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("vdisk: negative size")
	}
	if size <= int64(len(d.buf)) {
		d.buf = d.buf[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, d.buf)
	d.buf = grown
	return nil
}

// Size implements store.Device.
func (d *Disk) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.buf)), nil
}

// Sync implements store.Device (the virtual disk is always durable).
func (d *Disk) Sync() error { return nil }

// Corrupt flips one stored byte without touching the clock or counters,
// simulating silent media bit-rot for recovery tests.
func (d *Disk) Corrupt(off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off >= int64(len(d.buf)) {
		return fmt.Errorf("vdisk: corrupt offset %d out of range [0,%d)", off, len(d.buf))
	}
	d.buf[off] ^= 0xFF
	return nil
}

// ElapsedMS returns the simulated time consumed so far.
func (d *Disk) ElapsedMS() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clockMS
}

// Stats describes the access pattern observed by the disk.
type Stats struct {
	Seeks, Reads, Writes, Bytes int64
	ElapsedMS                   float64
}

// Stats returns a snapshot of the disk counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Seeks: d.seeks, Reads: d.reads, Writes: d.writes, Bytes: d.bytes, ElapsedMS: d.clockMS}
}

// ResetClock zeroes the virtual clock and counters (the content and head
// position are kept), marking the start of a measurement window.
func (d *Disk) ResetClock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clockMS, d.seeks, d.reads, d.writes, d.bytes = 0, 0, 0, 0, 0
}
