package vdisk

import (
	"math"
	"testing"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSequentialVsRandomAccess(t *testing.T) {
	const seek, perByte = 15.0, 1e-4
	d := New(seek, perByte)
	if _, err := d.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	d.ResetClock()

	// Sequential read in two chunks: one seek (position 0 differs from
	// the head position after the write), then pure transfer.
	buf := make([]byte, 1024)
	if _, err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(buf, 1024); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Seeks != 1 {
		t.Fatalf("sequential chunks: %d seeks, want 1", st.Seeks)
	}
	want := seek + 2048*perByte
	if !almost(st.ElapsedMS, want) {
		t.Fatalf("elapsed %g, want %g", st.ElapsedMS, want)
	}

	// A random jump costs another seek.
	if _, err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Seeks; got != 2 {
		t.Fatalf("random jump: %d seeks, want 2", got)
	}
}

func TestWriteAccounting(t *testing.T) {
	d := New(10, 1e-3)
	if _, err := d.WriteAt(make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	// Sequential continuation: no extra seek.
	if _, err := d.WriteAt(make([]byte, 100), 100); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Seeks != 1 || st.Writes != 2 || st.Bytes != 200 {
		t.Fatalf("stats: %+v", st)
	}
	if !almost(st.ElapsedMS, 10+200*1e-3) {
		t.Fatalf("elapsed %g", st.ElapsedMS)
	}
}

func TestDeviceSemantics(t *testing.T) {
	d := New(1, 1e-6)
	if _, err := d.ReadAt(make([]byte, 8), 0); err == nil {
		t.Error("read from empty disk must fail")
	}
	if _, err := d.WriteAt([]byte{1}, -1); err == nil {
		t.Error("negative write offset must fail")
	}
	if err := d.Truncate(-1); err == nil {
		t.Error("negative truncate must fail")
	}
	if _, err := d.WriteAt([]byte{1, 2, 3, 4}, 4); err != nil {
		t.Fatal(err)
	}
	if sz, _ := d.Size(); sz != 8 {
		t.Fatalf("size %d, want 8", sz)
	}
	if err := d.Truncate(16); err != nil {
		t.Fatal(err)
	}
	if sz, _ := d.Size(); sz != 16 {
		t.Fatalf("size after grow %d", sz)
	}
	if err := d.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if sz, _ := d.Size(); sz != 2 {
		t.Fatalf("size after shrink %d", sz)
	}
	if err := d.Sync(); err != nil {
		t.Error("Sync must succeed")
	}
	buf := make([]byte, 2)
	if _, err := d.ReadAt(buf, 0); err != nil || buf[0] != 0 {
		t.Fatalf("read back: %v %v", buf, err)
	}
	// Short read at the tail.
	if _, err := d.ReadAt(make([]byte, 10), 1); err == nil {
		t.Error("short read must report an error")
	}
}

func TestResetClockKeepsContent(t *testing.T) {
	d := New(5, 1e-5)
	if _, err := d.WriteAt([]byte{9, 8, 7}, 0); err != nil {
		t.Fatal(err)
	}
	d.ResetClock()
	if st := d.Stats(); st.ElapsedMS != 0 || st.Seeks != 0 {
		t.Fatalf("clock not reset: %+v", st)
	}
	buf := make([]byte, 3)
	if _, err := d.ReadAt(buf, 0); err != nil || buf[0] != 9 {
		t.Fatalf("content lost after reset: %v %v", buf, err)
	}
}
