package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"accluster/internal/geom"
)

func randomRect(rng *rand.Rand, dims int, maxSize float32) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		size := rng.Float32() * maxSize
		lo := rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
	return r
}

func mustNew(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dims: 0}); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := New(Config{Dims: 2, MinFill: 0.9}); err == nil {
		t.Error("MinFill > 0.5 must fail")
	}
	if _, err := New(Config{Dims: 2, ReinsertFrac: 1.5}); err == nil {
		t.Error("ReinsertFrac ≥ 1 must fail")
	}
	if _, err := New(Config{Dims: 40, PageSize: 100}); err == nil {
		t.Error("page too small for dims must fail")
	}
}

func TestFanOutMatchesPaper(t *testing.T) {
	// §7.1: with 16 KB pages an entry of 8·dims+4 bytes gives a fan-out
	// of 124 at 16 dims and 50 at 40 dims (the paper quotes 86 and 35
	// after applying 70% utilization).
	tr16 := mustNew(t, Config{Dims: 16})
	if tr16.MaxEntries() != 16384/132 {
		t.Errorf("16-dim fan-out = %d, want %d", tr16.MaxEntries(), 16384/132)
	}
	tr40 := mustNew(t, Config{Dims: 40})
	if tr40.MaxEntries() != 16384/324 {
		t.Errorf("40-dim fan-out = %d, want %d", tr40.MaxEntries(), 16384/324)
	}
}

func TestInsertValidation(t *testing.T) {
	tr := mustNew(t, Config{Dims: 2})
	r := geom.Rect{Min: []float32{0.1, 0.1}, Max: []float32{0.2, 0.2}}
	if err := tr.Insert(1, r); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, r); err == nil {
		t.Error("duplicate id must fail")
	}
	if err := tr.Insert(2, geom.Point([]float32{0.5})); err == nil {
		t.Error("wrong dims must fail")
	}
	if err := tr.Insert(3, geom.Rect{Min: []float32{0.9, 0}, Max: []float32{0.1, 1}}); err == nil {
		t.Error("invalid rect must fail")
	}
}

func TestGrowthAndInvariants(t *testing.T) {
	// Small pages force deep trees quickly.
	tr := mustNew(t, Config{Dims: 2, PageSize: 200}) // M = 10
	rng := rand.New(rand.NewSource(1))
	for id := uint32(0); id < 2000; id++ {
		if err := tr.Insert(id, randomRect(rng, 2, 0.1)); err != nil {
			t.Fatal(err)
		}
		if id%500 == 499 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", id+1, err)
			}
		}
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, expected a deep tree with M=10", tr.Height())
	}
	if tr.Nodes() < 100 {
		t.Errorf("nodes = %d, expected many nodes", tr.Nodes())
	}
}

func TestDifferentialSearch(t *testing.T) {
	for _, dims := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(dims)))
		tr := mustNew(t, Config{Dims: dims, PageSize: 64 * geom.ObjectBytes(dims) / 4})
		type obj struct {
			id uint32
			r  geom.Rect
		}
		var objs []obj
		for id := uint32(0); id < 1200; id++ {
			r := randomRect(rng, dims, 0.4)
			objs = append(objs, obj{id, r})
			if err := tr.Insert(id, r); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 120; qi++ {
			q := randomRect(rng, dims, 0.6)
			rel := geom.Relation(qi % 3)
			got, err := tr.SearchIDs(q, rel)
			if err != nil {
				t.Fatal(err)
			}
			var want []uint32
			for _, o := range objs {
				if o.r.Matches(rel, q) {
					want = append(want, o.id)
				}
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("dims=%d rel=%v: %d results, want %d", dims, rel, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("dims=%d rel=%v: result mismatch", dims, rel)
				}
			}
		}
	}
}

func TestPointEnclosing(t *testing.T) {
	tr := mustNew(t, Config{Dims: 3, PageSize: 400})
	rng := rand.New(rand.NewSource(9))
	var objs []geom.Rect
	for id := uint32(0); id < 600; id++ {
		r := randomRect(rng, 3, 0.5)
		objs = append(objs, r)
		if err := tr.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 80; i++ {
		p := geom.Point([]float32{rng.Float32(), rng.Float32(), rng.Float32()})
		got, err := tr.Count(p, geom.Encloses)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, r := range objs {
			if r.Encloses(p) {
				want++
			}
		}
		if got != want {
			t.Fatalf("point query %d: %d, want %d", i, got, want)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := mustNew(t, Config{Dims: 2, PageSize: 200})
	rng := rand.New(rand.NewSource(4))
	live := make(map[uint32]geom.Rect)
	for id := uint32(0); id < 1500; id++ {
		r := randomRect(rng, 2, 0.2)
		live[id] = r
		if err := tr.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	// Delete in random order, checking invariants periodically and
	// differentially validating queries.
	ids := make([]uint32, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for k, id := range ids[:1200] {
		if !tr.Delete(id) {
			t.Fatalf("Delete(%d) failed", id)
		}
		delete(live, id)
		if k%200 == 199 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", k+1, err)
			}
			q := randomRect(rng, 2, 0.5)
			got, err := tr.Count(q, geom.Intersects)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for _, r := range live {
				if r.Intersects(q) {
					want++
				}
			}
			if got != want {
				t.Fatalf("after %d deletes: count %d, want %d", k+1, got, want)
			}
		}
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d, want 300", tr.Len())
	}
	if tr.Delete(ids[0]) {
		t.Error("double delete must report false")
	}
	// Delete everything.
	for _, id := range ids[1200:] {
		if !tr.Delete(id) {
			t.Fatalf("Delete(%d) failed", id)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty: %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGet(t *testing.T) {
	tr := mustNew(t, Config{Dims: 2})
	r := geom.Rect{Min: []float32{0.2, 0.3}, Max: []float32{0.4, 0.5}}
	if err := tr.Insert(7, r); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Get(7)
	if !ok || !got.Equal(r) {
		t.Fatalf("Get(7) = %v,%v", got, ok)
	}
	if _, ok := tr.Get(8); ok {
		t.Error("absent id")
	}
}

func TestSearchValidationAndEarlyStop(t *testing.T) {
	tr := mustNew(t, Config{Dims: 2})
	if err := tr.Search(geom.Point([]float32{0.5}), geom.Intersects, func(uint32) bool { return true }); err == nil {
		t.Error("wrong dims must fail")
	}
	if err := tr.Search(geom.Point([]float32{0.5, 0.5}), geom.Relation(9), func(uint32) bool { return true }); err == nil {
		t.Error("invalid relation must fail")
	}
	for id := uint32(0); id < 50; id++ {
		if err := tr.Insert(id, geom.Rect{Min: []float32{0.4, 0.4}, Max: []float32{0.6, 0.6}}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := tr.Search(geom.Point([]float32{0.5, 0.5}), geom.Encloses, func(uint32) bool {
		n++
		return n < 4
	})
	if err != nil || n != 4 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

func TestMeterCountsNodeAccesses(t *testing.T) {
	tr := mustNew(t, Config{Dims: 2, PageSize: 200})
	rng := rand.New(rand.NewSource(6))
	for id := uint32(0); id < 800; id++ {
		if err := tr.Insert(id, randomRect(rng, 2, 0.05)); err != nil {
			t.Fatal(err)
		}
	}
	tr.ResetMeter()
	if _, err := tr.Count(randomRect(rng, 2, 0.3), geom.Intersects); err != nil {
		t.Fatal(err)
	}
	m := tr.Meter()
	if m.Queries != 1 {
		t.Fatalf("queries = %d", m.Queries)
	}
	if m.Explorations < 1 || m.Explorations != m.Seeks {
		t.Fatalf("node accesses: %v", m)
	}
	if m.BytesTransferred != m.Explorations*int64(tr.cfg.PageSize) {
		t.Fatalf("transfer accounting: %v", m)
	}
	if m.Explorations > int64(tr.Nodes()) {
		t.Fatalf("visited %d nodes out of %d", m.Explorations, tr.Nodes())
	}
}

func TestForcedReinsertionHappens(t *testing.T) {
	// Forced reinsertion should be exercised by clustered inserts; we
	// detect it indirectly: with ReinsertFrac close to 0 rejected by
	// validation, instrument by comparing node counts with/without a
	// tiny fraction. At minimum, inserting beyond M entries must keep
	// invariants and produce a multi-node tree.
	tr := mustNew(t, Config{Dims: 2, PageSize: 200})
	rng := rand.New(rand.NewSource(8))
	for id := uint32(0); id < 200; id++ {
		if err := tr.Insert(id, randomRect(rng, 2, 0.02)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Nodes() < 3 {
		t.Errorf("expected splits, nodes = %d", tr.Nodes())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSkewDoesNotBreakSplit(t *testing.T) {
	// Many identical rectangles stress ChooseSplitIndex with zero-width
	// distributions.
	tr := mustNew(t, Config{Dims: 2, PageSize: 200})
	r := geom.Rect{Min: []float32{0.5, 0.5}, Max: []float32{0.5, 0.5}}
	for id := uint32(0); id < 300; id++ {
		if err := tr.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	n, err := tr.Count(geom.Point([]float32{0.5, 0.5}), geom.Encloses)
	if err != nil || n != 300 {
		t.Fatalf("identical rects: n=%d err=%v", n, err)
	}
}
