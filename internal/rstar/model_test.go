package rstar

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"accluster/internal/geom"
)

// TestStatefulModel runs randomized insert/delete/search sequences against a
// map model, checking answers and structural invariants throughout — the
// package's main correctness property.
func TestStatefulModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(5) + 1
		// Small pages force frequent splits, reinsertion and condensing.
		pageSize := geom.ObjectBytes(dims) * (8 + rng.Intn(24))
		tr, err := New(Config{Dims: dims, PageSize: pageSize})
		if err != nil {
			t.Logf("config: %v", err)
			return false
		}
		model := make(map[uint32]geom.Rect)
		nextID := uint32(0)
		for op := 0; op < 700; op++ {
			switch k := rng.Intn(10); {
			case k < 5:
				r := randomRect(rng, dims, 0.4)
				if err := tr.Insert(nextID, r); err != nil {
					t.Logf("insert: %v", err)
					return false
				}
				model[nextID] = r
				nextID++
			case k < 8:
				if len(model) == 0 {
					continue
				}
				var id uint32
				for id = range model {
					break
				}
				if !tr.Delete(id) {
					t.Logf("delete %d failed", id)
					return false
				}
				delete(model, id)
			default:
				q := randomRect(rng, dims, 0.6)
				rel := geom.Relation(rng.Intn(3))
				got, err := tr.SearchIDs(q, rel)
				if err != nil {
					return false
				}
				var want []uint32
				for id, r := range model {
					if r.Matches(rel, q) {
						want = append(want, id)
					}
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(got) != len(want) {
					t.Logf("seed %d op %d: %d vs %d results", seed, op, len(got), len(want))
					return false
				}
				for i := range got {
					if got[i] != want[i] {
						return false
					}
				}
			}
			if op%150 == 149 {
				if err := tr.CheckInvariants(); err != nil {
					t.Logf("seed %d op %d: %v", seed, op, err)
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		return tr.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
