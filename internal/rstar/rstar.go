// Package rstar implements the R*-tree of Beckmann, Kriegel, Schneider and
// Seeger (SIGMOD 1990), the strongest R-tree variant still supporting
// multidimensional extended objects and the comparison baseline of the paper
// (§7.1). It provides ChooseSubtree with minimum overlap enlargement at the
// leaf level, forced reinsertion (30%), the margin-driven split axis choice
// with the overlap-driven split index, deletion with tree condensation, and
// relation-aware search with node access accounting.
//
// The tree uses a node page size in bytes (16 KB in the paper's setup); the
// fan-out M derives from the entry size 8·dims+4.
package rstar

import (
	"fmt"

	"accluster/internal/cost"
	"accluster/internal/geom"
)

// Config parameterizes an R*-tree.
type Config struct {
	// Dims is the data space dimensionality (required).
	Dims int
	// PageSize is the node page size in bytes; default 16384 (§7.1).
	PageSize int
	// MinFill is the minimum node utilization m as a fraction of M;
	// default 0.4 (the R*-tree paper's recommendation).
	MinFill float64
	// ReinsertFrac is the fraction of entries force-reinserted on first
	// overflow of a level; default 0.3.
	ReinsertFrac float64
}

func (c *Config) setDefaults() error {
	if c.Dims < 1 {
		return fmt.Errorf("rstar: invalid dimensionality %d", c.Dims)
	}
	if c.PageSize == 0 {
		c.PageSize = 16384
	}
	if c.MinFill == 0 {
		c.MinFill = 0.4
	}
	if c.ReinsertFrac == 0 {
		c.ReinsertFrac = 0.3
	}
	if c.MinFill <= 0 || c.MinFill > 0.5 {
		return fmt.Errorf("rstar: MinFill must be in (0,0.5], got %g", c.MinFill)
	}
	if c.ReinsertFrac <= 0 || c.ReinsertFrac >= 1 {
		return fmt.Errorf("rstar: ReinsertFrac must be in (0,1), got %g", c.ReinsertFrac)
	}
	entry := geom.ObjectBytes(c.Dims)
	if c.PageSize < 4*entry {
		return fmt.Errorf("rstar: page size %d too small for %d dims (need ≥ %d)", c.PageSize, c.Dims, 4*entry)
	}
	return nil
}

// entry is a node slot: an MBB plus either a child node (internal) or an
// object id (leaf).
type entry struct {
	rect  geom.Rect
	child *node
	id    uint32
}

// node is a tree node. level 0 is the leaf level.
type node struct {
	level   int
	entries []entry
}

func (n *node) leaf() bool { return n.level == 0 }

// mbr returns the minimum bounding rectangle of all entries of n.
func (n *node) mbr() geom.Rect {
	r := n.entries[0].rect.Clone()
	for _, e := range n.entries[1:] {
		r.Extend(e.rect)
	}
	return r
}

// Tree is an R*-tree over multidimensional extended objects. It is not safe
// for concurrent use: every operation holds the caller's exclusive lock, so
// the embedded cost meter is written directly.
//
//ac:serialmeter
type Tree struct {
	cfg        Config
	maxEntries int // M
	minEntries int // m
	reinsertP  int // entries removed by forced reinsertion

	root  *node
	size  int
	nodes int

	rects map[uint32]geom.Rect // id → rect, for Delete/Get

	meter cost.Meter

	// reinsertedAtLevel tracks OverflowTreatment's "first call at this
	// level during one insertion" rule.
	reinsertedAtLevel map[int]bool
}

// New builds an empty R*-tree.
func New(cfg Config) (*Tree, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	m := cfg.PageSize / geom.ObjectBytes(cfg.Dims)
	t := &Tree{
		cfg:        cfg,
		maxEntries: m,
		minEntries: int(float64(m) * cfg.MinFill),
		reinsertP:  int(float64(m+1) * cfg.ReinsertFrac),
		root:       &node{level: 0},
		nodes:      1,
		rects:      make(map[uint32]geom.Rect),
	}
	if t.minEntries < 1 {
		t.minEntries = 1
	}
	if t.reinsertP < 1 {
		t.reinsertP = 1
	}
	return t, nil
}

// Dims returns the data space dimensionality.
func (t *Tree) Dims() int { return t.cfg.Dims }

// Len returns the number of stored objects.
func (t *Tree) Len() int { return t.size }

// Nodes returns the number of tree nodes (pages).
func (t *Tree) Nodes() int { return t.nodes }

// Height returns the number of levels (1 for a single leaf root).
func (t *Tree) Height() int { return t.root.level + 1 }

// MaxEntries returns the node fan-out M.
func (t *Tree) MaxEntries() int { return t.maxEntries }

// Meter returns the accumulated operation counters.
func (t *Tree) Meter() cost.Meter { return t.meter }

// ResetMeter zeroes the operation counters.
func (t *Tree) ResetMeter() { t.meter.Reset() }

// Get returns the rectangle stored under id.
func (t *Tree) Get(id uint32) (geom.Rect, bool) {
	r, ok := t.rects[id]
	return r, ok
}

// Insert adds an object to the tree.
func (t *Tree) Insert(id uint32, r geom.Rect) error {
	if r.Dims() != t.cfg.Dims {
		return fmt.Errorf("rstar: object has %d dims, tree has %d", r.Dims(), t.cfg.Dims)
	}
	if !r.Valid() {
		return fmt.Errorf("rstar: invalid rectangle %v", r)
	}
	if _, dup := t.rects[id]; dup {
		return fmt.Errorf("rstar: duplicate object id %d", id)
	}
	t.rects[id] = r.Clone()
	t.reinsertedAtLevel = make(map[int]bool)
	t.insertAtLevel(entry{rect: r.Clone(), id: id}, 0)
	t.size++
	return nil
}

// insertAtLevel inserts e into a node of the given level, handling overflow
// by forced reinsertion or splitting (R*-tree InsertData/OverflowTreatment).
func (t *Tree) insertAtLevel(e entry, level int) {
	path := t.choosePath(e.rect, level)
	n := path[len(path)-1]
	n.entries = append(n.entries, e)
	// Adjust MBBs along the path.
	t.adjustPath(path, e.rect)
	// Overflow treatment bottom-up.
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.entries) <= t.maxEntries {
			break
		}
		if n != t.root && !t.reinsertedAtLevel[n.level] {
			t.reinsertedAtLevel[n.level] = true
			t.forcedReinsert(n, path[:i+1])
			break // reinsertion re-enters insertAtLevel for each entry
		}
		nn := t.split(n)
		t.nodes++
		if n == t.root {
			newRoot := &node{
				level: n.level + 1,
				entries: []entry{
					{rect: n.mbr(), child: n},
					{rect: nn.mbr(), child: nn},
				},
			}
			t.root = newRoot
			t.nodes++
			break
		}
		parent := path[i-1]
		t.refreshChildRect(parent, n)
		parent.entries = append(parent.entries, entry{rect: nn.mbr(), child: nn})
	}
}

// choosePath descends from the root to a node of the target level using the
// R*-tree ChooseSubtree criterion, returning the nodes along the way.
func (t *Tree) choosePath(r geom.Rect, level int) []*node {
	path := []*node{t.root}
	n := t.root
	for n.level > level {
		i := t.chooseSubtree(n, r)
		n = n.entries[i].child
		path = append(path, n)
	}
	return path
}

// adjustPath extends the parent entries covering each node of the path by r.
func (t *Tree) adjustPath(path []*node, r geom.Rect) {
	for i := 0; i < len(path)-1; i++ {
		parent, child := path[i], path[i+1]
		for k := range parent.entries {
			if parent.entries[k].child == child {
				parent.entries[k].rect.Extend(r)
				break
			}
		}
	}
}

// refreshChildRect recomputes the parent entry MBB for child.
func (t *Tree) refreshChildRect(parent, child *node) {
	for k := range parent.entries {
		if parent.entries[k].child == child {
			parent.entries[k].rect = child.mbr()
			return
		}
	}
}

// chooseSubtree picks the child of n to descend into for rectangle r.
// When the children are leaves it minimizes overlap enlargement (resolving
// ties by area enlargement, then area); otherwise it minimizes area
// enlargement (ties by area). For large fan-outs only the 32 entries with
// the least area enlargement are considered for the quadratic overlap test,
// as recommended by the R*-tree paper.
func (t *Tree) chooseSubtree(n *node, r geom.Rect) int {
	if n.level == 1 {
		cand := candidateEntries(n, r, 32)
		best, bestOverlap, bestEnl, bestArea := -1, 0.0, 0.0, 0.0
		for _, i := range cand {
			e := &n.entries[i]
			ext := e.rect.Union(r)
			var over float64
			for j := range n.entries {
				if j == i {
					continue
				}
				over += ext.IntersectionVolume(n.entries[j].rect) -
					e.rect.IntersectionVolume(n.entries[j].rect)
			}
			enl := e.rect.Enlargement(r)
			area := e.rect.Volume()
			if best < 0 || over < bestOverlap ||
				(over == bestOverlap && (enl < bestEnl || (enl == bestEnl && area < bestArea))) {
				best, bestOverlap, bestEnl, bestArea = i, over, enl, area
			}
		}
		return best
	}
	best, bestEnl, bestArea := -1, 0.0, 0.0
	for i := range n.entries {
		enl := n.entries[i].rect.Enlargement(r)
		area := n.entries[i].rect.Volume()
		if best < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// candidateEntries returns the indexes of the k entries of n with least area
// enlargement for r (all entries when n has ≤ k).
func candidateEntries(n *node, r geom.Rect, k int) []int {
	idx := make([]int, len(n.entries))
	for i := range idx {
		idx[i] = i
	}
	if len(idx) <= k {
		return idx
	}
	enl := make([]float64, len(n.entries))
	for i := range n.entries {
		enl[i] = n.entries[i].rect.Enlargement(r)
	}
	// Partial selection sort for the k smallest enlargements.
	for a := 0; a < k; a++ {
		min := a
		for b := a + 1; b < len(idx); b++ {
			if enl[idx[b]] < enl[idx[min]] {
				min = b
			}
		}
		idx[a], idx[min] = idx[min], idx[a]
	}
	return idx[:k]
}
