package rstar

import (
	"fmt"

	"accluster/internal/geom"
)

// matchCount evaluates rel between object o and query q with early exit,
// returning the verdict and the number of dimensions inspected.
func matchCount(o, q geom.Rect, rel geom.Relation) (bool, int) {
	switch rel {
	case geom.Intersects:
		for d := range o.Min {
			if o.Min[d] > q.Max[d] || q.Min[d] > o.Max[d] {
				return false, d + 1
			}
		}
	case geom.ContainedBy:
		for d := range o.Min {
			if o.Min[d] < q.Min[d] || o.Max[d] > q.Max[d] {
				return false, d + 1
			}
		}
	case geom.Encloses:
		for d := range o.Min {
			if o.Min[d] > q.Min[d] || o.Max[d] < q.Max[d] {
				return false, d + 1
			}
		}
	default:
		return false, 0
	}
	return true, len(o.Min)
}

// pruneRelation maps the object relation to the node-MBB pruning predicate:
// a node can host an intersecting or contained object only if its MBB
// intersects the query; it can host an enclosing object only if its MBB
// encloses the query (the MBB covers every member).
func pruneRelation(rel geom.Relation) geom.Relation {
	if rel == geom.Encloses {
		return geom.Encloses
	}
	return geom.Intersects
}

// Search walks the tree and emits every object satisfying the relation with
// q. Every visited node counts as one random page access (§7.1 measures node
// accesses; random reads dominate the disk scenario). emit returning false
// stops the search.
func (t *Tree) Search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error {
	if q.Dims() != t.cfg.Dims {
		return fmt.Errorf("rstar: query has %d dims, tree has %d", q.Dims(), t.cfg.Dims)
	}
	if !rel.Valid() {
		return fmt.Errorf("rstar: invalid relation %v", rel)
	}
	t.meter.Queries++
	t.searchNode(t.root, q, rel, emit)
	return nil
}

// searchNode returns false when the consumer stopped the search.
func (t *Tree) searchNode(n *node, q geom.Rect, rel geom.Relation, emit func(id uint32) bool) bool {
	t.meter.Explorations++
	t.meter.Seeks++
	t.meter.BytesTransferred += int64(t.cfg.PageSize)
	if n.leaf() {
		for i := range n.entries {
			t.meter.ObjectsVerified++
			ok, checked := matchCount(n.entries[i].rect, q, rel)
			t.meter.BytesVerified += int64(checked) * 8
			if ok {
				t.meter.Results++
				if !emit(n.entries[i].id) {
					return false
				}
			}
		}
		return true
	}
	prel := pruneRelation(rel)
	for i := range n.entries {
		ok, checked := matchCount(n.entries[i].rect, q, prel)
		t.meter.BytesVerified += int64(checked) * 8
		if !ok {
			continue
		}
		if !t.searchNode(n.entries[i].child, q, rel, emit) {
			return false
		}
	}
	return true
}

// Count returns the number of objects satisfying the selection.
func (t *Tree) Count(q geom.Rect, rel geom.Relation) (int, error) {
	n := 0
	err := t.Search(q, rel, func(uint32) bool { n++; return true })
	return n, err
}

// SearchIDs collects the identifiers of all qualifying objects.
func (t *Tree) SearchIDs(q geom.Rect, rel geom.Relation) ([]uint32, error) {
	var out []uint32
	err := t.Search(q, rel, func(id uint32) bool { out = append(out, id); return true })
	return out, err
}

// Delete removes the object with the given id, condensing the tree: nodes
// falling under the minimum fill are dissolved and their entries reinserted
// at their original level; the root shrinks when reduced to one child.
func (t *Tree) Delete(id uint32) bool {
	r, ok := t.rects[id]
	if !ok {
		return false
	}
	path := t.findLeafPath(t.root, r, id)
	if path == nil {
		// The location map and tree disagree; repair the map and report
		// the object as absent rather than corrupting the size counter.
		delete(t.rects, id)
		return false
	}
	leaf := path[len(path)-1]
	for i := range leaf.entries {
		if leaf.entries[i].child == nil && leaf.entries[i].id == id {
			leaf.entries[i] = leaf.entries[len(leaf.entries)-1]
			leaf.entries[len(leaf.entries)-1] = entry{}
			leaf.entries = leaf.entries[:len(leaf.entries)-1]
			break
		}
	}
	delete(t.rects, id)
	t.size--

	type orphan struct {
		level int
		e     entry
	}
	var orphans []orphan
	for i := len(path) - 1; i >= 1; i-- {
		n, parent := path[i], path[i-1]
		if len(n.entries) < t.minEntries {
			for k := range parent.entries {
				if parent.entries[k].child == n {
					parent.entries[k] = parent.entries[len(parent.entries)-1]
					parent.entries[len(parent.entries)-1] = entry{}
					parent.entries = parent.entries[:len(parent.entries)-1]
					break
				}
			}
			t.nodes--
			for _, e := range n.entries {
				orphans = append(orphans, orphan{level: n.level, e: e})
			}
		} else {
			t.refreshChildRect(parent, n)
		}
	}
	for _, o := range orphans {
		t.reinsertedAtLevel = make(map[int]bool)
		t.insertAtLevel(o.e, o.level)
	}
	for !t.root.leaf() && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.nodes--
	}
	return true
}

// findLeafPath locates the leaf holding the entry for id (whose rectangle is
// r), returning the root→leaf path, or nil when absent.
func (t *Tree) findLeafPath(n *node, r geom.Rect, id uint32) []*node {
	if n.leaf() {
		for i := range n.entries {
			if n.entries[i].id == id {
				return []*node{n}
			}
		}
		return nil
	}
	for i := range n.entries {
		if !n.entries[i].rect.Encloses(r) {
			continue
		}
		if sub := t.findLeafPath(n.entries[i].child, r, id); sub != nil {
			return append([]*node{n}, sub...)
		}
	}
	return nil
}

// CheckInvariants validates the structural invariants of the tree: uniform
// leaf depth, fill factors within [m,M] (except the root), exact parent
// MBBs, and the size counter matching the stored entries. Intended for tests.
func (t *Tree) CheckInvariants() error {
	count := 0
	var walk func(n *node, isRoot bool) error
	walk = func(n *node, isRoot bool) error {
		if len(n.entries) > t.maxEntries {
			return fmt.Errorf("node at level %d overflows: %d > %d", n.level, len(n.entries), t.maxEntries)
		}
		if !isRoot && len(n.entries) < t.minEntries {
			return fmt.Errorf("node at level %d underflows: %d < %d", n.level, len(n.entries), t.minEntries)
		}
		if isRoot && !n.leaf() && len(n.entries) < 2 {
			return fmt.Errorf("internal root has %d entries", len(n.entries))
		}
		if n.leaf() {
			for i := range n.entries {
				if n.entries[i].child != nil {
					return fmt.Errorf("leaf entry with child pointer")
				}
				stored, ok := t.rects[n.entries[i].id]
				if !ok || !stored.Equal(n.entries[i].rect) {
					return fmt.Errorf("leaf entry %d disagrees with rects map", n.entries[i].id)
				}
				count++
			}
			return nil
		}
		for i := range n.entries {
			c := n.entries[i].child
			if c == nil {
				return fmt.Errorf("internal entry without child")
			}
			if c.level != n.level-1 {
				return fmt.Errorf("child level %d under node level %d", c.level, n.level)
			}
			if len(c.entries) == 0 {
				return fmt.Errorf("empty child node")
			}
			if !n.entries[i].rect.Equal(c.mbr()) {
				return fmt.Errorf("parent MBB %v != child MBB %v", n.entries[i].rect, c.mbr())
			}
			if err := walk(c, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d, tree holds %d entries", t.size, count)
	}
	if count != len(t.rects) {
		return fmt.Errorf("rects map holds %d, tree holds %d", len(t.rects), count)
	}
	return nil
}
