package rstar

import (
	"math"
	"sort"

	"accluster/internal/geom"
)

// split performs the R*-tree topological split of an overflowing node:
// ChooseSplitAxis minimizes the margin sum over all distributions,
// ChooseSplitIndex minimizes overlap (ties: total area). The first group
// stays in n; the second group is returned as a new node.
func (t *Tree) split(n *node) *node {
	m := t.minEntries
	total := len(n.entries)
	// Distributions per sort order: k = 1 .. M-2m+2 with M+1 entries in
	// the overflowing node, i.e. total-2m+1; both groups keep ≥ m entries.
	maxK := total - 2*m + 1
	if maxK < 1 {
		maxK = 1
	}

	axis := t.chooseSplitAxis(n, m, maxK)

	// ChooseSplitIndex along the chosen axis.
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	bestSort, bestK := 0, 1
	for s := 0; s < 2; s++ {
		sortEntries(n.entries, axis, s == 1)
		prefix, suffix := boundSweeps(n.entries)
		for k := 1; k <= maxK; k++ {
			cut := m - 1 + k
			bb1, bb2 := prefix[cut-1], suffix[cut]
			over := bb1.IntersectionVolume(bb2)
			area := bb1.Volume() + bb2.Volume()
			if over < bestOverlap || (over == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = over, area
				bestSort, bestK = s, k
			}
		}
	}
	sortEntries(n.entries, axis, bestSort == 1)
	cut := m - 1 + bestK
	nn := &node{level: n.level}
	nn.entries = append(nn.entries, n.entries[cut:]...)
	// Truncate in place, releasing references in the tail.
	tail := n.entries[cut:]
	for i := range tail {
		tail[i] = entry{}
	}
	n.entries = n.entries[:cut]
	return nn
}

// chooseSplitAxis returns the axis with the minimum sum of group margins
// over all distributions and both sort orders (R*-tree ChooseSplitAxis).
func (t *Tree) chooseSplitAxis(n *node, m, maxK int) int {
	bestAxis, bestMargin := 0, math.Inf(1)
	for axis := 0; axis < t.cfg.Dims; axis++ {
		margin := 0.0
		for s := 0; s < 2; s++ {
			sortEntries(n.entries, axis, s == 1)
			prefix, suffix := boundSweeps(n.entries)
			for k := 1; k <= maxK; k++ {
				cut := m - 1 + k
				margin += prefix[cut-1].Margin() + suffix[cut].Margin()
			}
		}
		if margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}
	return bestAxis
}

// sortEntries orders entries by (lower, upper) bounds on the axis, or by
// (upper, lower) when byUpper is set.
func sortEntries(es []entry, axis int, byUpper bool) {
	if byUpper {
		sort.SliceStable(es, func(i, j int) bool {
			a, b := es[i].rect, es[j].rect
			if a.Max[axis] != b.Max[axis] {
				return a.Max[axis] < b.Max[axis]
			}
			return a.Min[axis] < b.Min[axis]
		})
		return
	}
	sort.SliceStable(es, func(i, j int) bool {
		a, b := es[i].rect, es[j].rect
		if a.Min[axis] != b.Min[axis] {
			return a.Min[axis] < b.Min[axis]
		}
		return a.Max[axis] < b.Max[axis]
	})
}

// boundSweeps returns prefix[i] = MBB(entries[0..i]) and
// suffix[i] = MBB(entries[i..]) for the current entry order.
func boundSweeps(es []entry) (prefix, suffix []geom.Rect) {
	prefix = make([]geom.Rect, len(es))
	suffix = make([]geom.Rect, len(es)+1)
	acc := es[0].rect.Clone()
	prefix[0] = acc.Clone()
	for i := 1; i < len(es); i++ {
		acc.Extend(es[i].rect)
		prefix[i] = acc.Clone()
	}
	acc = es[len(es)-1].rect.Clone()
	suffix[len(es)-1] = acc.Clone()
	for i := len(es) - 2; i >= 0; i-- {
		acc = acc.Union(es[i].rect)
		suffix[i] = acc
	}
	return prefix, suffix
}

// forcedReinsert removes the ReinsertFrac entries whose centers lie farthest
// from the node's MBB center and reinserts them (close-first), letting the
// tree reshape itself instead of splitting immediately (R*-tree
// OverflowTreatment).
func (t *Tree) forcedReinsert(n *node, path []*node) {
	center := n.mbr().Center(nil)
	type distEntry struct {
		d float64
		e entry
	}
	ds := make([]distEntry, len(n.entries))
	buf := make([]float32, t.cfg.Dims)
	for i, e := range n.entries {
		c := e.rect.Center(buf)
		d := 0.0
		for k := range c {
			dx := float64(c[k] - center[k])
			d += dx * dx
		}
		ds[i] = distEntry{d: d, e: e}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	keep := len(ds) - t.reinsertP
	n.entries = n.entries[:0]
	for i := 0; i < keep; i++ {
		n.entries = append(n.entries, ds[i].e)
	}
	// Tighten MBBs along the path after shrinking n.
	for i := len(path) - 1; i >= 1; i-- {
		t.refreshChildRect(path[i-1], path[i])
	}
	for i := keep; i < len(ds); i++ {
		t.insertAtLevel(ds[i].e, n.level)
	}
}
