package diskengine

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/store"
	"accluster/internal/vdisk"
)

func randomRect(rng *rand.Rand, dims int, maxSize float32) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		size := rng.Float32() * maxSize
		lo := rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
	return r
}

// buildCheckpoint creates a clustered index, checkpoints it onto a virtual
// disk and returns both. The clustering runs under the memory cost model:
// at these test scales the disk model's 15 ms seek keeps everything in one
// cluster, which would leave the multi-cluster query path untested — the
// engine executes whatever clustering the checkpoint carries.
func buildCheckpoint(t *testing.T, dims, n int) (*core.Index, *vdisk.Disk) {
	t.Helper()
	ix, err := core.New(core.Config{Dims: dims, Params: cost.Memory(), ReorgEvery: 40})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for id := 0; id < n; id++ {
		if err := ix.Insert(uint32(id), randomRect(rng, dims, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		q := randomRect(rng, dims, 0.1)
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	disk := vdisk.New(cost.DiskAccessMS, cost.TransferMSPerByte)
	if err := store.Save(ix, disk); err != nil {
		t.Fatal(err)
	}
	return ix, disk
}

func TestOpenAndMetadata(t *testing.T) {
	ix, disk := buildCheckpoint(t, 4, 3000)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	if e.Dims() != 4 || e.Clusters() != ix.Clusters() || e.Len() != ix.Len() {
		t.Fatalf("metadata: dims=%d clusters=%d len=%d", e.Dims(), e.Clusters(), e.Len())
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	disk := vdisk.New(15, 4.77e-5)
	if _, err := disk.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(disk); err == nil {
		t.Error("garbage device must fail to open")
	}
}

// TestAnswersMatchInMemoryIndex pins the disk engine's answers ID-for-ID
// against the in-memory core index on the same checkpoint, across all
// relations and across cache configurations: disabled (every query reads
// the device), default (repeat queries hit), and a tiny budget that churns
// the eviction path mid-stream. Each query runs twice so the cached
// re-execution is differentially checked too.
func TestAnswersMatchInMemoryIndex(t *testing.T) {
	ix, disk := buildCheckpoint(t, 5, 4000)
	configs := map[string]Config{
		"nocache":     {CacheBytes: -1},
		"default":     {},
		"tiny-evict":  {CacheBytes: 64 << 10},
		"noreadahead": {ReadaheadGap: -1},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			e, err := OpenConfig(disk, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(21))
			for qi := 0; qi < 60; qi++ {
				q := randomRect(rng, 5, 0.4)
				rel := geom.Relation(qi % 3)
				want, err := ix.SearchIDs(q, rel)
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				for pass := 0; pass < 2; pass++ {
					got, err := e.SearchIDs(q, rel)
					if err != nil {
						t.Fatal(err)
					}
					sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
					if len(got) != len(want) {
						t.Fatalf("query %d rel %v pass %d: %d results, want %d", qi, rel, pass, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("query %d rel %v pass %d: mismatch", qi, rel, pass)
						}
					}
					n, err := e.Count(q, rel)
					if err != nil {
						t.Fatal(err)
					}
					if n != len(want) {
						t.Fatalf("query %d rel %v pass %d: count %d, want %d", qi, rel, pass, n, len(want))
					}
				}
			}
		})
	}
}

func TestVirtualTimeMatchesAccessPattern(t *testing.T) {
	_, disk := buildCheckpoint(t, 4, 3000)
	// Cache disabled so every query really drives the device; coalescing
	// stays on — the point is that the meter and the virtual clock agree
	// on the coalesced access pattern.
	e, err := OpenConfig(disk, Config{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	disk.ResetClock()
	e.ResetMeter()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20; i++ {
		q := randomRect(rng, 4, 0.2)
		if _, err := e.Count(q, geom.Intersects); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Meter()
	st := disk.Stats()
	// Every coalesced run is one device read, charged as one Seek by the
	// meter; the run count is at most the exploration count (coalescing
	// only merges).
	if st.Reads != m.Seeks {
		t.Fatalf("disk reads %d != meter seeks %d", st.Reads, m.Seeks)
	}
	if m.Seeks > m.Explorations {
		t.Fatalf("more seeks than explorations: %+v", m)
	}
	if st.Bytes != m.BytesTransferred {
		t.Fatalf("disk bytes %d != meter bytes transferred %d", st.Bytes, m.BytesTransferred)
	}
	if st.Seeks > st.Reads {
		t.Fatalf("more seeks than reads: %+v", st)
	}
	// The virtual clock must agree with the counter-based model: seeks ×
	// 15 ms + bytes × transfer. Regions include reserved slots, so use
	// the disk's own byte count.
	want := float64(st.Seeks)*cost.DiskAccessMS + float64(st.Bytes)*cost.TransferMSPerByte
	if st.ElapsedMS < want*0.999 || st.ElapsedMS > want*1.001 {
		t.Fatalf("virtual clock %g, want %g", st.ElapsedMS, want)
	}
	// And it must be in the same ballpark as the meter's modeled disk
	// time (the meter transfers regions too).
	modeled := m.ModeledMS(cost.Disk()) // byte-level accounting
	if modeled <= 0 {
		t.Fatal("modeled time must be positive")
	}
	ratio := st.ElapsedMS / modeled
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("virtual clock %g vs modeled %g (ratio %g)", st.ElapsedMS, modeled, ratio)
	}
}

func TestSequentialScanLayoutIsOneSeek(t *testing.T) {
	// A database checkpointed before any query has a single cluster (the
	// root): the disk engine's scan must then be one seek plus one
	// sequential transfer — exactly the sequential-scan disk behaviour.
	ix, err := core.New(core.Config{Dims: 3, Params: cost.Disk()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for id := 0; id < 2000; id++ {
		if err := ix.Insert(uint32(id), randomRect(rng, 3, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	disk := vdisk.New(cost.DiskAccessMS, cost.TransferMSPerByte)
	if err := store.Save(ix, disk); err != nil {
		t.Fatal(err)
	}
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	if e.Clusters() != 1 {
		t.Fatalf("expected the root cluster only, got %d", e.Clusters())
	}
	disk.ResetClock()
	if _, err := e.Count(randomRect(rng, 3, 0.5), geom.Intersects); err != nil {
		t.Fatal(err)
	}
	st := disk.Stats()
	// One region read; at most one seek (zero when the head happens to
	// rest exactly at the region start after Open read the directory).
	if st.Reads != 1 || st.Seeks > 1 {
		t.Fatalf("full scan should be one region read: %+v", st)
	}
	wantMS := float64(st.Seeks)*cost.DiskAccessMS + float64(st.Bytes)*cost.TransferMSPerByte
	if st.ElapsedMS < wantMS*0.999 || st.ElapsedMS > wantMS*1.001 {
		t.Fatalf("elapsed %g, want %g", st.ElapsedMS, wantMS)
	}
}

func TestSearchValidationAndEarlyStop(t *testing.T) {
	_, disk := buildCheckpoint(t, 4, 1000)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Search(geom.Point([]float32{0.5}), geom.Intersects, func(uint32) bool { return true }); err == nil {
		t.Error("wrong dims must fail")
	}
	if err := e.Search(geom.Point([]float32{0.5, 0.5, 0.5, 0.5}), geom.Relation(9), func(uint32) bool { return true }); err == nil {
		t.Error("bad relation must fail")
	}
	full := geom.Rect{Min: []float32{0, 0, 0, 0}, Max: []float32{1, 1, 1, 1}}
	n := 0
	if err := e.Search(full, geom.Intersects, func(uint32) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop delivered %d", n)
	}
}

func TestCorruptRegionSurfacesDuringSearch(t *testing.T) {
	_, disk := buildCheckpoint(t, 4, 1500)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the device (inside some region, past
	// the directory).
	size, _ := disk.Size()
	if err := disk.Corrupt(size - 3); err != nil {
		t.Fatal(err)
	}
	full := geom.Rect{Min: []float32{0, 0, 0, 0}, Max: []float32{1, 1, 1, 1}}
	if err := e.Search(full, geom.Intersects, func(uint32) bool { return true }); err == nil {
		t.Error("corrupt region must surface as an error on exploration")
	}
}

// TestMeterCacheAccounting pins the accounting rules of the cached query
// path: a cache hit charges no Seeks and no BytesTransferred but still
// counts Explorations and ObjectsVerified, and the hit/miss counters track
// residency.
func TestMeterCacheAccounting(t *testing.T) {
	_, disk := buildCheckpoint(t, 4, 3000)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	q := randomRect(rand.New(rand.NewSource(61)), 4, 0.3)

	e.ResetMeter()
	if _, err := e.Count(q, geom.Intersects); err != nil {
		t.Fatal(err)
	}
	cold := e.Meter()
	if cold.Explorations == 0 {
		t.Fatal("query explored nothing; widen it")
	}
	if cold.CacheMisses != cold.Explorations || cold.CacheHits != 0 {
		t.Fatalf("cold query: hits=%d misses=%d explorations=%d", cold.CacheHits, cold.CacheMisses, cold.Explorations)
	}
	if cold.Seeks == 0 || cold.BytesTransferred == 0 {
		t.Fatalf("cold query transferred nothing: %+v", cold)
	}

	disk.ResetClock()
	e.ResetMeter()
	if _, err := e.Count(q, geom.Intersects); err != nil {
		t.Fatal(err)
	}
	warm := e.Meter()
	if warm.CacheHits != cold.Explorations || warm.CacheMisses != 0 {
		t.Fatalf("warm query: hits=%d misses=%d, want %d hits", warm.CacheHits, warm.CacheMisses, cold.Explorations)
	}
	if warm.Seeks != 0 || warm.BytesTransferred != 0 {
		t.Fatalf("cache hits must charge no I/O: %+v", warm)
	}
	if warm.Explorations != cold.Explorations || warm.ObjectsVerified != cold.ObjectsVerified {
		t.Fatalf("hits must still count explorations and verified objects: warm %+v cold %+v", warm, cold)
	}
	if warm.Results != cold.Results {
		t.Fatalf("warm results %d != cold results %d", warm.Results, cold.Results)
	}
	if st := disk.Stats(); st.Reads != 0 {
		t.Fatalf("warm query touched the device: %+v", st)
	}
	if cs := e.CacheStats(); cs.Hits == 0 || cs.Entries == 0 {
		t.Fatalf("cache stats empty after warm query: %+v", cs)
	}
}

// TestCoalescedReadsCutSeeks pins the readahead claim: a cold multi-cluster
// query with coalescing issues strictly fewer device reads (= seeks in the
// meter) than one without, and both return identical answers.
func TestCoalescedReadsCutSeeks(t *testing.T) {
	_, disk := buildCheckpoint(t, 4, 6000)
	q := geom.Rect{Min: []float32{0, 0, 0, 0}, Max: []float32{1, 1, 1, 1}}

	run := func(gap int64) (cost.Meter, []uint32) {
		e, err := OpenConfig(disk, Config{CacheBytes: -1, ReadaheadGap: gap})
		if err != nil {
			t.Fatal(err)
		}
		ids, err := e.SearchIDs(q, geom.Intersects)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return e.Meter(), ids
	}
	plain, plainIDs := run(-1)
	coal, coalIDs := run(DefaultReadaheadGap)
	if plain.Explorations < 4 {
		t.Fatalf("need a multi-cluster checkpoint, explored %d", plain.Explorations)
	}
	if plain.Seeks != plain.Explorations {
		t.Fatalf("uncoalesced engine must seek per exploration: %+v", plain)
	}
	if coal.Seeks >= plain.Seeks {
		t.Fatalf("coalescing did not cut seeks: %d vs %d", coal.Seeks, plain.Seeks)
	}
	if len(plainIDs) != len(coalIDs) {
		t.Fatalf("answer sets differ: %d vs %d", len(plainIDs), len(coalIDs))
	}
	for i := range plainIDs {
		if plainIDs[i] != coalIDs[i] {
			t.Fatal("answer mismatch between coalesced and individual reads")
		}
	}
	// Coalesced runs may transfer gap bytes, but never more than the gap
	// bound per merged region.
	if coal.BytesTransferred < plain.BytesTransferred {
		t.Fatalf("coalesced read transferred fewer bytes than the regions: %d < %d", coal.BytesTransferred, plain.BytesTransferred)
	}
}

// TestZeroAllocWarmPath pins the steady-state allocation contract: once the
// working set is cached, SearchIDsAppend with a reused buffer and Count
// allocate nothing.
func TestZeroAllocWarmPath(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	_, disk := buildCheckpoint(t, 4, 3000)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	queries := make([]geom.Rect, 8)
	for i := range queries {
		queries[i] = randomRect(rng, 4, 0.3)
	}
	var buf []uint32
	for _, q := range queries { // warm the cache and the scratch pool
		if buf, err = e.SearchIDsAppend(buf[:0], q, geom.Intersects); err != nil {
			t.Fatal(err)
		}
	}
	qi := 0
	allocs := testing.AllocsPerRun(50, func() {
		q := queries[qi%len(queries)]
		qi++
		out, err := e.SearchIDsAppend(buf[:0], q, geom.Intersects)
		if err != nil {
			t.Fatal(err)
		}
		buf = out
		if _, err := e.Count(q, geom.Intersects); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm hit path allocates %.1f times per query pair, want 0", allocs)
	}
}

// TestConcurrentSearchEvictionStress races concurrent searches against a
// cache whose budget holds only a fraction of the working set, so pins,
// insertions and CLOCK evictions interleave constantly (run under -race in
// CI). Every answer must still match the serial reference.
func TestConcurrentSearchEvictionStress(t *testing.T) {
	ix, disk := buildCheckpoint(t, 4, 3000)
	e, err := OpenConfig(disk, Config{CacheBytes: 48 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(81))
	queries := make([]geom.Rect, 16)
	want := make([][]uint32, len(queries))
	for i := range queries {
		queries[i] = randomRect(rng, 4, 0.3)
		ids, err := ix.SearchIDs(queries[i], geom.Intersects)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		want[i] = ids
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []uint32
			for round := 0; round < 6; round++ {
				for i := range queries {
					got, err := e.SearchIDsAppend(buf[:0], queries[i], geom.Intersects)
					if err != nil {
						t.Errorf("worker %d query %d: %v", w, i, err)
						return
					}
					buf = got
					sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
					if len(got) != len(want[i]) {
						t.Errorf("worker %d query %d: %d results, want %d", w, i, len(got), len(want[i]))
						return
					}
					for k := range got {
						if got[k] != want[i][k] {
							t.Errorf("worker %d query %d: answer mismatch", w, i)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	cs := e.CacheStats()
	if cs.Evictions == 0 {
		t.Fatalf("stress never evicted — budget too large for the working set: %+v", cs)
	}
	if cs.UsedBytes > cs.BudgetBytes {
		t.Fatalf("cache exceeded its budget at rest: %+v", cs)
	}
}

// TestConcurrentSearch pins the concurrent-read contract: many goroutines
// querying one Engine must return the serial answer sets and lose no meter
// counts (run under -race in CI).
func TestConcurrentSearch(t *testing.T) {
	ix, disk := buildCheckpoint(t, 4, 3000)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	queries := make([]geom.Rect, 32)
	want := make([][]uint32, len(queries))
	for i := range queries {
		queries[i] = randomRect(rng, 4, 0.3)
		ids, err := ix.SearchIDs(queries[i], geom.Intersects)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		want[i] = ids
	}
	e.ResetMeter()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range queries {
				got, err := e.SearchIDs(queries[i], geom.Intersects)
				if err != nil {
					t.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
				if len(got) != len(want[i]) {
					t.Errorf("worker %d query %d: %d results, want %d", w, i, len(got), len(want[i]))
					return
				}
				for k := range got {
					if got[k] != want[i][k] {
						t.Errorf("worker %d query %d: answer mismatch", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if q := e.Meter().Queries; q != int64(workers*len(queries)) {
		t.Fatalf("meter lost queries: %d, want %d", q, workers*len(queries))
	}
}
