package diskengine

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/store"
	"accluster/internal/vdisk"
)

func randomRect(rng *rand.Rand, dims int, maxSize float32) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		size := rng.Float32() * maxSize
		lo := rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
	return r
}

// buildCheckpoint creates a clustered index, checkpoints it onto a virtual
// disk and returns both.
func buildCheckpoint(t *testing.T, dims, n int) (*core.Index, *vdisk.Disk) {
	t.Helper()
	ix, err := core.New(core.Config{Dims: dims, Params: cost.Disk(), ReorgEvery: 40})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for id := 0; id < n; id++ {
		if err := ix.Insert(uint32(id), randomRect(rng, dims, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		q := randomRect(rng, dims, 0.1)
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	disk := vdisk.New(cost.DiskAccessMS, cost.TransferMSPerByte)
	if err := store.Save(ix, disk); err != nil {
		t.Fatal(err)
	}
	return ix, disk
}

func TestOpenAndMetadata(t *testing.T) {
	ix, disk := buildCheckpoint(t, 4, 3000)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	if e.Dims() != 4 || e.Clusters() != ix.Clusters() || e.Len() != ix.Len() {
		t.Fatalf("metadata: dims=%d clusters=%d len=%d", e.Dims(), e.Clusters(), e.Len())
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	disk := vdisk.New(15, 4.77e-5)
	if _, err := disk.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(disk); err == nil {
		t.Error("garbage device must fail to open")
	}
}

func TestAnswersMatchInMemoryIndex(t *testing.T) {
	ix, disk := buildCheckpoint(t, 5, 4000)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for qi := 0; qi < 60; qi++ {
		q := randomRect(rng, 5, 0.4)
		rel := geom.Relation(qi % 3)
		want, err := ix.SearchIDs(q, rel)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.SearchIDs(q, rel)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d rel %v: %d results, want %d", qi, rel, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d rel %v: mismatch", qi, rel)
			}
		}
	}
}

func TestVirtualTimeMatchesAccessPattern(t *testing.T) {
	_, disk := buildCheckpoint(t, 4, 3000)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	disk.ResetClock()
	e.ResetMeter()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20; i++ {
		q := randomRect(rng, 4, 0.2)
		if _, err := e.Count(q, geom.Intersects); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Meter()
	st := disk.Stats()
	// Every exploration is one region read; region reads at random
	// offsets each cost one seek on the virtual disk.
	if st.Reads != m.Explorations {
		t.Fatalf("disk reads %d != explorations %d", st.Reads, m.Explorations)
	}
	if st.Seeks > st.Reads {
		t.Fatalf("more seeks than reads: %+v", st)
	}
	// The virtual clock must agree with the counter-based model: seeks ×
	// 15 ms + bytes × transfer. Regions include reserved slots, so use
	// the disk's own byte count.
	want := float64(st.Seeks)*cost.DiskAccessMS + float64(st.Bytes)*cost.TransferMSPerByte
	if st.ElapsedMS < want*0.999 || st.ElapsedMS > want*1.001 {
		t.Fatalf("virtual clock %g, want %g", st.ElapsedMS, want)
	}
	// And it must be in the same ballpark as the meter's modeled disk
	// time (the meter transfers regions too).
	modeled := m.ModeledMS(cost.Disk()) // byte-level accounting
	if modeled <= 0 {
		t.Fatal("modeled time must be positive")
	}
	ratio := st.ElapsedMS / modeled
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("virtual clock %g vs modeled %g (ratio %g)", st.ElapsedMS, modeled, ratio)
	}
}

func TestSequentialScanLayoutIsOneSeek(t *testing.T) {
	// A database checkpointed before any query has a single cluster (the
	// root): the disk engine's scan must then be one seek plus one
	// sequential transfer — exactly the sequential-scan disk behaviour.
	ix, err := core.New(core.Config{Dims: 3, Params: cost.Disk()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for id := 0; id < 2000; id++ {
		if err := ix.Insert(uint32(id), randomRect(rng, 3, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	disk := vdisk.New(cost.DiskAccessMS, cost.TransferMSPerByte)
	if err := store.Save(ix, disk); err != nil {
		t.Fatal(err)
	}
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	if e.Clusters() != 1 {
		t.Fatalf("expected the root cluster only, got %d", e.Clusters())
	}
	disk.ResetClock()
	if _, err := e.Count(randomRect(rng, 3, 0.5), geom.Intersects); err != nil {
		t.Fatal(err)
	}
	st := disk.Stats()
	// One region read; at most one seek (zero when the head happens to
	// rest exactly at the region start after Open read the directory).
	if st.Reads != 1 || st.Seeks > 1 {
		t.Fatalf("full scan should be one region read: %+v", st)
	}
	wantMS := float64(st.Seeks)*cost.DiskAccessMS + float64(st.Bytes)*cost.TransferMSPerByte
	if st.ElapsedMS < wantMS*0.999 || st.ElapsedMS > wantMS*1.001 {
		t.Fatalf("elapsed %g, want %g", st.ElapsedMS, wantMS)
	}
}

func TestSearchValidationAndEarlyStop(t *testing.T) {
	_, disk := buildCheckpoint(t, 4, 1000)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Search(geom.Point([]float32{0.5}), geom.Intersects, func(uint32) bool { return true }); err == nil {
		t.Error("wrong dims must fail")
	}
	if err := e.Search(geom.Point([]float32{0.5, 0.5, 0.5, 0.5}), geom.Relation(9), func(uint32) bool { return true }); err == nil {
		t.Error("bad relation must fail")
	}
	full := geom.Rect{Min: []float32{0, 0, 0, 0}, Max: []float32{1, 1, 1, 1}}
	n := 0
	if err := e.Search(full, geom.Intersects, func(uint32) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop delivered %d", n)
	}
}

func TestCorruptRegionSurfacesDuringSearch(t *testing.T) {
	_, disk := buildCheckpoint(t, 4, 1500)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the device (inside some region, past
	// the directory).
	size, _ := disk.Size()
	// vdisk has no Corrupt helper; overwrite one byte.
	if _, err := disk.WriteAt([]byte{0xFF}, size-3); err != nil {
		t.Fatal(err)
	}
	full := geom.Rect{Min: []float32{0, 0, 0, 0}, Max: []float32{1, 1, 1, 1}}
	if err := e.Search(full, geom.Intersects, func(uint32) bool { return true }); err == nil {
		t.Error("corrupt region must surface as an error on exploration")
	}
}

// TestConcurrentSearch pins the concurrent-read contract: many goroutines
// querying one Engine must return the serial answer sets and lose no meter
// counts (run under -race in CI).
func TestConcurrentSearch(t *testing.T) {
	ix, disk := buildCheckpoint(t, 4, 3000)
	e, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	queries := make([]geom.Rect, 32)
	want := make([][]uint32, len(queries))
	for i := range queries {
		queries[i] = randomRect(rng, 4, 0.3)
		ids, err := ix.SearchIDs(queries[i], geom.Intersects)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		want[i] = ids
	}
	e.ResetMeter()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range queries {
				got, err := e.SearchIDs(queries[i], geom.Intersects)
				if err != nil {
					t.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
				if len(got) != len(want[i]) {
					t.Errorf("worker %d query %d: %d results, want %d", w, i, len(got), len(want[i]))
					return
				}
				for k := range got {
					if got[k] != want[i][k] {
						t.Errorf("worker %d query %d: answer mismatch", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if q := e.Meter().Queries; q != int64(workers*len(queries)) {
		t.Fatalf("meter lost queries: %d, want %d", q, workers*len(queries))
	}
}
