package diskengine

import (
	"math/rand"
	"testing"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/store"
	"accluster/internal/vdisk"
)

// benchCheckpoint builds one shared multi-cluster checkpoint for the disk
// search benchmarks.
func benchCheckpoint(b *testing.B, dims, n int) (*vdisk.Disk, []geom.Rect) {
	b.Helper()
	ix, err := core.New(core.Config{Dims: dims, Params: cost.Memory(), ReorgEvery: 40})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for id := 0; id < n; id++ {
		if err := ix.Insert(uint32(id), benchRect(rng, dims, 0.3)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		if err := ix.Search(benchRect(rng, dims, 0.1), geom.Intersects, func(uint32) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
	disk := vdisk.New(cost.DiskAccessMS, cost.TransferMSPerByte)
	if err := store.Save(ix, disk); err != nil {
		b.Fatal(err)
	}
	queries := make([]geom.Rect, 32)
	for i := range queries {
		queries[i] = benchRect(rng, dims, 0.25)
	}
	return disk, queries
}

func benchRect(rng *rand.Rand, dims int, maxSize float32) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		size := rng.Float32() * maxSize
		lo := rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
	return r
}

// BenchmarkDiskSearch measures the disk query path cold (cache disabled —
// every op reads, decodes and verifies its regions, with and without
// seek-coalescing) and warm (cache budgets from eviction-churn small to
// everything-resident) on a repeated-query workload. CI runs it through
// benchstat; the warm variants report 0 allocs/op at steady state.
func BenchmarkDiskSearch(b *testing.B) {
	disk, queries := benchCheckpoint(b, 8, 20000)
	variants := []struct {
		name string
		cfg  Config
	}{
		{"cold-nocache", Config{CacheBytes: -1}},
		{"cold-nocache-noreadahead", Config{CacheBytes: -1, ReadaheadGap: -1}},
		{"warm-cache1MiB", Config{CacheBytes: 1 << 20}},
		{"warm-cache64MiB", Config{}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			eng, err := OpenConfig(disk, v.cfg)
			if err != nil {
				b.Fatal(err)
			}
			var buf []uint32
			for _, q := range queries { // converge cache + scratch pool
				if buf, err = eng.SearchIDsAppend(buf[:0], q, geom.Intersects); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := eng.SearchIDsAppend(buf[:0], queries[i%len(queries)], geom.Intersects)
				if err != nil {
					b.Fatal(err)
				}
				buf = out
			}
			b.StopTimer()
			m := eng.Meter()
			if m.Explorations > 0 {
				b.ReportMetric(float64(m.CacheHits)/float64(m.Explorations), "hit-ratio")
			}
		})
	}
}

// BenchmarkSeedScalarDiskSearch is the pre-overhaul executor on the same
// checkpoint and workload — the benchstat before-reference for the columnar
// engine (virtual signature matcher, allocating per-cluster region reads,
// scalar verification).
func BenchmarkSeedScalarDiskSearch(b *testing.B) {
	disk, queries := benchCheckpoint(b, 8, 20000)
	dir, dims, err := store.ReadDirectory(disk)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		n := 0
		for _, entry := range dir {
			if !entry.Signature.MatchesQuery(q, geom.Intersects) {
				continue
			}
			ids, data, err := store.ReadRegion(disk, entry, dims)
			if err != nil {
				b.Fatal(err)
			}
			for k := range ids {
				if ok, _ := geom.FlatMatches(data, k, q, geom.Intersects); ok {
					n++
				}
			}
		}
		_ = n
	}
}
