//go:build race

package diskengine

// raceEnabled reports whether the race detector instruments this build; its
// instrumentation allocates, so the allocation-count assertions only hold
// without it.
const raceEnabled = true
