package diskengine

import (
	"errors"
	"testing"

	"accluster/internal/geom"
	"accluster/internal/store"
)

// TestOpenCorruptHeaderClassified pins the error taxonomy on the direct
// disk query path: damage in the header or directory — the only parts Open
// touches — must fail with an error wrapping store.ErrCorrupt, so callers
// can distinguish bit-rot from transient I/O trouble.
func TestOpenCorruptHeaderClassified(t *testing.T) {
	_, dev := buildCheckpoint(t, 3, 400)
	// Sweep the header and the start of the directory; the clean open is
	// validated by every other test in the package.
	for off := int64(0); off < 96; off += 7 {
		if err := dev.Corrupt(off); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dev)
		if uerr := dev.Corrupt(off); uerr != nil {
			t.Fatal(uerr)
		}
		if err == nil {
			t.Fatalf("open with flipped byte %d succeeded", off)
		}
		if !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("flip at %d: error not classified as ErrCorrupt: %v", off, err)
		}
	}
	// And the image is pristine again after undoing the flips.
	if _, err := Open(dev); err != nil {
		t.Fatalf("restored image fails to open: %v", err)
	}
}

// TestQueryRegionRotClassified pins read-path verification on the uncached
// engine: a region rotted after open is caught by the per-region checksum
// when a query explores it, and the error is classified as ErrCorrupt.
func TestQueryRegionRotClassified(t *testing.T) {
	_, dev := buildCheckpoint(t, 2, 600)
	eng, err := OpenConfig(dev, Config{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	size, _ := dev.Size()
	// Rot a byte late in the file — inside some cluster region.
	if err := dev.Corrupt(size - 64); err != nil {
		t.Fatal(err)
	}
	// A full-space query explores every cluster and must hit the rot.
	full := geom.Rect{Min: []float32{0, 0}, Max: []float32{1, 1}}
	err = eng.Search(full, geom.Intersects, func(uint32) bool { return true })
	if err == nil {
		t.Fatal("query over rotted region succeeded")
	}
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("rot error not classified: %v", err)
	}
}
