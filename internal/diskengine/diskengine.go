// Package diskengine executes spatial queries against a cluster database in
// its on-device layout — the paper's disk storage scenario made concrete
// (§5.ii): cluster signatures and the directory live in memory, member
// objects are read from the device per explored cluster, sequentially within
// a cluster. Pointed at a vdisk.Disk it yields simulated disk-scenario
// execution times from the real access pattern, complementing the pure
// counter-based model in internal/cost.
//
// The engine is a read-only executor over a checkpoint written by
// store.Save; reorganization happens in the in-memory index (internal/core)
// and becomes visible on the next checkpoint (reopening the checkpoint
// starts a fresh cache generation, so nothing stale survives).
//
// The query path mirrors the in-memory core engine's columnar design:
//
//   - The signature pass scans a flat contiguous mirror of all directory
//     signatures (sig.MatchBounds) instead of calling the per-entry virtual
//     matcher — the A term is one linear pass over packed floats.
//   - Explored regions come from a fixed-budget cache of decoded
//     structure-of-arrays columns (internal/blockcache), keyed by
//     (checkpoint generation, cluster) and shared by concurrent searches
//     through per-entry pinning. A cache hit verifies without touching the
//     device: it charges no Seeks and no BytesTransferred, only CacheHits
//     and the CPU-side counters (ObjectsVerified, BytesVerified).
//   - Cache misses are read with seek-coalescing readahead: the missed
//     regions are sorted by device offset and adjacent/near-adjacent ones
//     merge into single sequential reads (store.PlanReadRuns), so a
//     multi-cluster query pays one seek per run instead of one per cluster.
//     Each coalesced run charges one Seek and its full byte length
//     (gaps included) as BytesTransferred, plus one CacheMiss per region.
//   - Verification runs through the columnar batch kernels
//     (geom.FilterIntersects/FilterContainedBy/FilterEncloses) over a pooled
//     candidate bitmap, most selective dimensions first, with
//     signature-implied column skips — identical accounting to the core
//     engine (BytesVerified aggregates per-column survivor bytes).
//
// Steady-state queries whose regions are all cached allocate nothing: the
// match list, bitmap, dimension order and read plan live in pooled per-query
// scratch, and SearchIDsAppend reuses the caller's result buffer.
package diskengine

import (
	"fmt"
	mbits "math/bits"
	"sync"

	"accluster/internal/blockcache"
	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/sig"
	"accluster/internal/store"
)

// Default knobs of the disk query path.
const (
	// DefaultCacheBytes is the decoded-region cache budget used when the
	// configuration leaves it zero: 64 MiB, a small fraction of the
	// paper-scale databases yet enough to hold every hot cluster of a
	// skewed query distribution.
	DefaultCacheBytes = 64 << 20
	// DefaultReadaheadGap is the largest byte gap bridged by one coalesced
	// read when the configuration leaves it zero: 256 KiB, safely below
	// the seek-time byte equivalent of the paper's disk model (15 ms at
	// 20 MB/s ≈ 300 KB), so bridging a gap is never slower than seeking
	// over it.
	DefaultReadaheadGap = 256 << 10
)

// Config tunes the disk query path. The zero value selects the defaults.
type Config struct {
	// CacheBytes is the decoded-region cache budget in bytes: 0 selects
	// DefaultCacheBytes, negative disables the cache entirely (every
	// exploration reads the device, as the seed engine did).
	CacheBytes int64
	// ReadaheadGap is the maximum byte gap between two regions that one
	// coalesced sequential read bridges: 0 selects DefaultReadaheadGap,
	// negative disables coalescing (one read per missed region).
	ReadaheadGap int64
	// Cache, when non-nil, is a shared decoded-region cache used instead
	// of a private one (CacheBytes is then ignored). Engines sharing a
	// cache are isolated by checkpoint generation.
	Cache *blockcache.Cache
}

// Engine answers spatial selections from a checkpointed cluster database.
// It is safe for concurrent use: the directory, signature mirror and cache
// handle are immutable after Open, every Search works from pooled per-call
// scratch, cached regions are shared read-only under pins, operation
// counters merge race-free per query, and the device serializes its own
// head (vdisk.Disk models one arm; a real *os.File's ReadAt is reentrant).
type Engine struct {
	dev       store.Device
	dims      int
	objBytes  int
	dir       []store.DirEntry
	sigBounds []float32 // flat signature mirror, 4·dims floats per cluster
	sigSel    []uint8   // its dimension-selector side array (sig.AppendSelectors)
	cache     *blockcache.Cache
	gen       uint64
	maxGap    int64
	meter     cost.SyncMeter
	scratch   sync.Pool // *searchScratch
}

// searchScratch holds the per-query buffers of one in-flight selection so
// the fully cached (hit) path allocates nothing.
//
//ac:scratch
type searchScratch struct {
	matched []int32         // signature-matching cluster positions
	miss    []int32         // matched positions absent from the cache
	runs    []store.ReadRun // coalesced read plan over miss
	buf     []byte          // device image of the run being processed
	bits    []uint64        // candidate bitmap for the filter kernels
	order   []int           // per-query dimension processing order
	widths  []float32       // sort keys backing order
	// local is the decode target reused across misses when the engine has
	// no cache (with a cache, each miss decodes into a fresh Region that
	// the cache may retain).
	local *blockcache.Region
	meter cost.Meter
}

// ensureBits returns the bitmap sized for n objects.
//
//ac:noalloc
func (sc *searchScratch) ensureBits(n int) []uint64 {
	w := geom.BitmapWords(n)
	if cap(sc.bits) < w {
		//acvet:ignore noalloc amortized scratch growth; no alloc once bits reaches dataset size
		sc.bits = make([]uint64, w)
	}
	return sc.bits[:w]
}

// Open reads and validates the directory of a database written by
// store.Save and prepares the default query path (DefaultCacheBytes,
// DefaultReadaheadGap). Only the header and directory are read; cluster
// regions stay on the device until explored.
func Open(dev store.Device) (*Engine, error) {
	return OpenConfig(dev, Config{})
}

// OpenConfig is Open with explicit cache and readahead configuration.
func OpenConfig(dev store.Device, cfg Config) (*Engine, error) {
	dir, dims, err := store.ReadDirectory(dev)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		dev:      dev,
		dims:     dims,
		objBytes: geom.ObjectBytes(dims),
		dir:      dir,
		gen:      blockcache.NextGen(),
	}
	e.sigBounds = make([]float32, 0, len(dir)*4*dims)
	for _, d := range dir {
		e.sigBounds = sig.AppendBounds(e.sigBounds, d.Signature)
	}
	if dims <= sig.MaxSelectorDims {
		e.sigSel = make([]uint8, 0, len(dir)*4)
		for ci := range dir {
			e.sigSel = sig.AppendSelectors(e.sigSel, e.sigBounds[ci*4*dims:(ci+1)*4*dims], dims)
		}
	}
	switch {
	case cfg.Cache != nil:
		e.cache = cfg.Cache
	case cfg.CacheBytes == 0:
		e.cache = blockcache.New(DefaultCacheBytes)
	case cfg.CacheBytes > 0:
		e.cache = blockcache.New(cfg.CacheBytes)
	}
	e.maxGap = cfg.ReadaheadGap
	if e.maxGap == 0 {
		e.maxGap = DefaultReadaheadGap
	}
	e.scratch.New = func() any { return &searchScratch{} }
	return e, nil
}

// Dims returns the data space dimensionality.
func (e *Engine) Dims() int { return e.dims }

// Clusters returns the number of clusters in the directory.
func (e *Engine) Clusters() int { return len(e.dir) }

// Len returns the number of stored objects.
func (e *Engine) Len() int {
	n := 0
	for _, d := range e.dir {
		n += d.Count
	}
	return n
}

// Meter returns a consistent snapshot of the accumulated operation
// counters; each query merges its counter delta race-free on completion.
func (e *Engine) Meter() cost.Meter { return e.meter.Snapshot() }

// ResetMeter zeroes the operation counters.
func (e *Engine) ResetMeter() { e.meter.Reset() }

// CacheStats returns a snapshot of the decoded-region cache counters (the
// zero Stats when the cache is disabled). With a shared cache the numbers
// cover every engine using it.
func (e *Engine) CacheStats() blockcache.Stats {
	if e.cache == nil {
		return blockcache.Stats{}
	}
	return e.cache.Stats()
}

// Search checks every cluster signature in memory and verifies the members
// of matching clusters — from the decoded-region cache when resident,
// otherwise reading the missed regions with coalesced sequential reads.
// Cached clusters are verified first (no I/O), then the misses in device
// offset order; the emission order across clusters is therefore
// unspecified. emit returning false stops the search: remaining regions are
// neither read nor charged. Concurrent Searches are safe and share cached
// regions without copying.
//
//ac:noalloc
func (e *Engine) Search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error {
	return e.search(q, rel, emit, nil, nil)
}

// Count returns the number of objects satisfying the selection. It sums the
// per-region survivor counts of the block scan directly — no ids are
// extracted, no closure is allocated.
//
//ac:noalloc
func (e *Engine) Count(q geom.Rect, rel geom.Relation) (int, error) {
	n := 0
	err := e.search(q, rel, nil, nil, &n)
	return n, err
}

// SearchIDs collects the identifiers of all qualifying objects.
func (e *Engine) SearchIDs(q geom.Rect, rel geom.Relation) ([]uint32, error) {
	return e.SearchIDsAppend(nil, q, rel)
}

// SearchIDsAppend appends the identifiers of all qualifying objects to dst
// and returns the extended slice. With a reused dst of sufficient capacity a
// fully cached selection allocates nothing.
//
//ac:noalloc
func (e *Engine) SearchIDsAppend(dst []uint32, q geom.Rect, rel geom.Relation) ([]uint32, error) {
	err := e.search(q, rel, nil, &dst, nil)
	return dst, err
}

// search is the shared query path; qualifying ids go to exactly one of emit
// (early-stop support), out (append) or count.
//
//ac:noalloc
func (e *Engine) search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool, out *[]uint32, count *int) error {
	if q.Dims() != e.dims {
		//acvet:ignore noalloc cold argument-validation failure path
		return fmt.Errorf("diskengine: query has %d dims, database has %d", q.Dims(), e.dims)
	}
	if !rel.Valid() {
		//acvet:ignore noalloc cold argument-validation failure path
		return fmt.Errorf("diskengine: invalid relation %v", rel)
	}
	sc := e.scratch.Get().(*searchScratch)
	sc.meter = cost.Meter{}
	sc.meter.Queries++
	sc.meter.SigChecks += int64(len(e.dir))
	sc.matched = sig.MatchBounds(e.sigBounds, len(e.dir), e.dims, q, rel, sc.matched[:0])
	if cap(sc.order) < e.dims {
		//acvet:ignore noalloc amortized scratch growth; no alloc once order fits query dims
		sc.order = make([]int, e.dims)
		//acvet:ignore noalloc amortized scratch growth; no alloc once widths fits query dims
		sc.widths = make([]float32, e.dims)
	}
	order := geom.QueryDimOrder(sc.order[:e.dims], sc.widths[:e.dims], q, rel)

	// Hit pass: verify every cached region first — free of I/O, so an
	// early stop may finish the query without touching the device. Misses
	// are deferred to the coalesced read pass.
	sc.miss = sc.miss[:0]
	stopped := false
	for _, ci := range sc.matched {
		if e.cache != nil {
			if r, ok := e.cache.Get(blockcache.Key{Gen: e.gen, Cluster: ci}); ok {
				sc.meter.CacheHits++
				sc.meter.Explorations++
				sc.meter.ObjectsVerified += int64(r.Len())
				keep := e.verifyRegion(sc, r, int(ci), q, rel, order, emit, out, count)
				e.cache.Unpin(r)
				if !keep {
					stopped = true
					break
				}
				continue
			}
		}
		sc.miss = append(sc.miss, ci)
	}
	var err error
	if !stopped && len(sc.miss) > 0 {
		err = e.readAndVerify(sc, q, rel, order, emit, out, count)
	}
	e.meter.Merge(sc.meter)
	e.scratch.Put(sc)
	return err
}

// readAndVerify runs the miss pass: plan coalesced reads over the missed
// regions (sorted by device offset), then read run by run, decoding and
// verifying each region as it arrives — an early stop leaves later runs
// unread and uncharged. Decoded regions are offered to the cache.
//
//ac:noalloc
func (e *Engine) readAndVerify(sc *searchScratch, q geom.Rect, rel geom.Relation, order []int, emit func(id uint32) bool, out *[]uint32, count *int) error {
	sc.runs = store.PlanReadRuns(e.dir, sc.miss, e.dims, e.maxGap, sc.runs[:0])
	for _, run := range sc.runs {
		if int64(cap(sc.buf)) < run.Bytes {
			//acvet:ignore noalloc amortized read-buffer growth to the largest coalesced run
			sc.buf = make([]byte, run.Bytes)
		}
		buf := sc.buf[:run.Bytes]
		if _, err := e.dev.ReadAt(buf, run.Offset); err != nil {
			//acvet:ignore noalloc cold device-failure path
			return fmt.Errorf("diskengine: read run at %d: %w", run.Offset, err)
		}
		sc.meter.Seeks++
		sc.meter.BytesTransferred += run.Bytes
		for k := 0; k < run.N; k++ {
			ci := sc.miss[run.First+k]
			ent := e.dir[ci]
			img := buf[ent.Offset-run.Offset : ent.Offset-run.Offset+int64(ent.RegionBytes(e.dims))]
			var r *blockcache.Region
			if e.cache != nil {
				//acvet:ignore noalloc cache-miss region insert; the pinned warm path is all hits
				r = new(blockcache.Region)
			} else {
				if sc.local == nil {
					//acvet:ignore noalloc one-time lazy init of the cacheless scratch region
					sc.local = new(blockcache.Region)
				}
				r = sc.local
			}
			r.Reset(ent.Count, e.dims)
			if err := store.DecodeRegionColumns(img, ent, e.dims, r.IDs, r.Lo, r.Hi); err != nil {
				return err
			}
			if e.cache != nil {
				sc.meter.CacheMisses++
				r = e.cache.Put(blockcache.Key{Gen: e.gen, Cluster: ci}, r)
			}
			sc.meter.Explorations++
			sc.meter.ObjectsVerified += int64(ent.Count)
			keep := e.verifyRegion(sc, r, int(ci), q, rel, order, emit, out, count)
			if e.cache != nil {
				e.cache.Unpin(r)
			}
			if !keep {
				return nil
			}
		}
	}
	return nil
}

// verifyRegion narrows the region's members through the columnar filter
// kernels and delivers the survivors; it reports whether the search should
// continue (false only when emit stopped it).
//
//ac:noalloc
func (e *Engine) verifyRegion(sc *searchScratch, r *blockcache.Region, ci int, q geom.Rect, rel geom.Relation, order []int, emit func(id uint32) bool, out *[]uint32, count *int) bool {
	n := r.Len()
	if n == 0 {
		return true
	}
	bits := sc.ensureBits(n)
	geom.InitBitmap(bits, n)
	alive := n
	stride := 4 * e.dims
	sb := e.sigBounds[ci*stride : (ci+1)*stride]
	for _, dd := range order {
		// Signature-implied skip: the cluster's variation intervals prove
		// every member passes this dimension, so the column scan is a
		// no-op (sig.BoundsImplyDim, shared with the in-memory engine).
		if sig.BoundsImplyDim(rel, sb, dd, q.Min[dd], q.Max[dd]) {
			continue
		}
		sc.meter.BytesVerified += int64(alive) * 8
		alive = geom.FilterDim(rel, r.Lo[dd], r.Hi[dd], q.Min[dd], q.Max[dd], bits)
		if alive == 0 {
			break
		}
	}
	if alive == 0 {
		return true
	}
	if count != nil {
		sc.meter.Results += int64(alive)
		*count += alive
		return true
	}
	if out != nil {
		sc.meter.Results += int64(alive)
		*out = geom.AppendSurvivors(*out, r.IDs, bits)
		return true
	}
	for w, word := range bits {
		base := w << 6
		for word != 0 {
			j := mbits.TrailingZeros64(word)
			word &= word - 1
			sc.meter.Results++
			if !emit(r.IDs[base+j]) {
				return false
			}
		}
	}
	return true
}
