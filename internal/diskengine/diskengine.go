// Package diskengine executes spatial queries against a cluster database in
// its on-device layout — the paper's disk storage scenario made concrete
// (§5.ii): cluster signatures and the directory live in memory, member
// objects are read from the device per explored cluster, sequentially within
// a cluster. Pointed at a vdisk.Disk it yields simulated disk-scenario
// execution times from the real access pattern (one seek per explored
// cluster, sequential transfer of its region), complementing the pure
// counter-based model in internal/cost.
//
// The engine is a read-only executor over a checkpoint written by
// store.Save; reorganization happens in the in-memory index (internal/core)
// and becomes visible on the next checkpoint.
package diskengine

import (
	"fmt"

	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/store"
)

// Engine answers spatial selections from a checkpointed cluster database.
// It is safe for concurrent use: the directory and signatures are immutable
// after Open, every Search reads regions into per-call buffers, operation
// counters merge race-free per query, and the device serializes its own
// head (vdisk.Disk models one arm; a real *os.File's ReadAt is reentrant).
type Engine struct {
	dev      store.Device
	dims     int
	objBytes int
	dir      []store.DirEntry
	meter    cost.SyncMeter
}

// Open reads and validates the directory of a database written by
// store.Save. Only the header and directory are read; cluster regions stay
// on the device until explored.
func Open(dev store.Device) (*Engine, error) {
	dir, dims, err := store.ReadDirectory(dev)
	if err != nil {
		return nil, err
	}
	return &Engine{
		dev:      dev,
		dims:     dims,
		objBytes: geom.ObjectBytes(dims),
		dir:      dir,
	}, nil
}

// Dims returns the data space dimensionality.
func (e *Engine) Dims() int { return e.dims }

// Clusters returns the number of clusters in the directory.
func (e *Engine) Clusters() int { return len(e.dir) }

// Len returns the number of stored objects.
func (e *Engine) Len() int {
	n := 0
	for _, d := range e.dir {
		n += d.Count
	}
	return n
}

// Meter returns a consistent snapshot of the accumulated operation
// counters; each query merges its counter delta race-free on completion.
func (e *Engine) Meter() cost.Meter { return e.meter.Snapshot() }

// ResetMeter zeroes the operation counters.
func (e *Engine) ResetMeter() { e.meter.Reset() }

// Search checks every cluster signature in memory and reads the regions of
// matching clusters from the device (one sequential region read each),
// verifying members individually. emit returning false stops the search.
// Concurrent Searches are safe: each call verifies from its own region
// buffers and accumulates its counters privately, merging once on return.
func (e *Engine) Search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error {
	if q.Dims() != e.dims {
		return fmt.Errorf("diskengine: query has %d dims, database has %d", q.Dims(), e.dims)
	}
	if !rel.Valid() {
		return fmt.Errorf("diskengine: invalid relation %v", rel)
	}
	var m cost.Meter
	defer func() { e.meter.Merge(m) }()
	m.Queries++
	m.SigChecks += int64(len(e.dir))
	for _, entry := range e.dir {
		if !entry.Signature.MatchesQuery(q, rel) {
			continue
		}
		m.Explorations++
		m.Seeks++
		ids, data, err := store.ReadRegion(e.dev, entry, e.dims)
		if err != nil {
			return err
		}
		m.BytesTransferred += int64(entry.RegionBytes(e.dims))
		m.ObjectsVerified += int64(len(ids))
		for i := range ids {
			ok, checked := geom.FlatMatches(data, i, q, rel)
			m.BytesVerified += int64(checked) * 8
			if ok {
				m.Results++
				if !emit(ids[i]) {
					return nil
				}
			}
		}
	}
	return nil
}

// Count returns the number of objects satisfying the selection.
func (e *Engine) Count(q geom.Rect, rel geom.Relation) (int, error) {
	n := 0
	err := e.Search(q, rel, func(uint32) bool { n++; return true })
	return n, err
}

// SearchIDs collects the identifiers of all qualifying objects.
func (e *Engine) SearchIDs(q geom.Rect, rel geom.Relation) ([]uint32, error) {
	var out []uint32
	err := e.Search(q, rel, func(id uint32) bool { out = append(out, id); return true })
	return out, err
}
