package diskengine

// Batched execution against the on-device layout: one multi-query-aware
// read plan for N queries. A looped single-query caller probes the cache
// and plans a read pass per query, so clusters matched by several queries
// are probed N times and — when evicted between queries or with the cache
// disabled — read N times. The batch path unions the candidate clusters of
// the whole batch first (the cluster-major signature match), checks the
// block cache once per cluster, and feeds the misses to store.PlanReadRuns
// as a single coalesced pass: each distinct cluster is decoded exactly
// once and verified against every interested query while its columns are
// hot, and the seek-sorted sweep coalesces across query boundaries — a
// batch costs strictly fewer seeks than its looped equivalent whenever
// queries share clusters or their clusters adjoin on the device.
//
// Accounting: the per-(cluster,query) CPU charges (Explorations,
// ObjectsVerified, BytesVerified, Results) are exactly the looped
// single-query ones. The I/O charges reflect the actual device traffic the
// batch saves: one CacheHit or CacheMiss per distinct cluster, one Seek and
// the run's byte length per coalesced run over the union.

import (
	"fmt"
	"sync"

	"accluster/internal/blockcache"
	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/sig"
	"accluster/internal/store"
)

// batchScratch holds the per-batch buffers of one in-flight batched
// selection so the fully cached warm path allocates nothing.
//
//ac:scratch
type batchScratch struct {
	bq    sig.BatchQueries // query-coordinate SoA of the batch
	match sig.BatchMatch   // cluster-major signature matches
	qbits []uint64         // query-survivor bitmap of the signature pass

	orders []int     // flat nq×dims per-query dimension orders
	widths []float32 // sort keys backing orders
	perQ   [][]uint32

	miss []int32         // matched positions absent from the cache (each once)
	runs []store.ReadRun // coalesced read plan over miss
	buf  []byte          // device image of the run being processed
	bits []uint64        // candidate bitmap for the filter kernels
	// local is the decode target reused across misses when the engine has
	// no cache.
	local *blockcache.Region
	meter cost.Meter
}

// ensureBits returns the bitmap sized for n objects.
//
//ac:noalloc
func (sc *batchScratch) ensureBits(n int) []uint64 {
	w := geom.BitmapWords(n)
	if cap(sc.bits) < w {
		//acvet:ignore noalloc amortized scratch growth; no alloc once bits reaches dataset size
		sc.bits = make([]uint64, w)
	}
	return sc.bits[:w]
}

// pairOf returns the position of cluster ci in the cluster-major match
// (binary search; match.Clusters is ascending by construction).
//
//ac:noalloc
func (sc *batchScratch) pairOf(ci int32) int {
	lo, hi := 0, len(sc.match.Clusters)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sc.match.Clusters[mid] < ci {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// batchPool lazily initializes the batch scratch pool (engines predating a
// batch call never pay for it).
var batchPool = sync.Pool{New: func() any { return &batchScratch{} }}

// SearchIDsBatch executes every query in qs in one engine pass and fills
// dst with the per-query result sets (dst.Query(i) holds query i's ids).
// The batch unions the candidate clusters of all queries, verifies cached
// regions first, then reads the union's misses as one coalesced seek-sorted
// sweep — each distinct region decoded once and verified against every
// interested query. Result order within a query follows the pass order
// (cached regions, then misses by device offset), as in the single-query
// path. An invalid query fails the whole batch before any of it executes.
// With every region cached a warm batch allocates nothing.
//
//ac:noalloc
func (e *Engine) SearchIDsBatch(dst *geom.IDBatch, qs []geom.Rect, rel geom.Relation) error {
	if !rel.Valid() {
		//acvet:ignore noalloc cold argument-validation failure path
		return fmt.Errorf("diskengine: invalid relation %v", rel)
	}
	for i := range qs {
		if qs[i].Dims() != e.dims {
			//acvet:ignore noalloc cold argument-validation failure path
			return fmt.Errorf("diskengine: batch query %d has %d dims, database has %d", i, qs[i].Dims(), e.dims)
		}
	}
	dst.Reset(len(qs))
	nq := len(qs)
	if nq == 0 {
		return nil
	}
	sc := batchPool.Get().(*batchScratch)
	sc.meter = cost.Meter{}
	sc.meter.Queries += int64(nq)
	sc.meter.SigChecks += int64(nq) * int64(len(e.dir))

	// One pass over the signature mirror for the whole batch.
	sc.bq.Reset(qs, e.dims)
	qw := geom.BitmapWords(nq)
	if cap(sc.qbits) < qw {
		//acvet:ignore noalloc amortized scratch growth; no alloc once qbits covers the batch size
		sc.qbits = make([]uint64, qw)
	}
	sig.MatchBoundsBatch(e.sigBounds, len(e.dir), e.dims, &sc.bq, rel, e.sigSel, sc.qbits[:qw], &sc.match)

	// Per-query dimension orders, computed once per batch.
	if cap(sc.orders) < nq*e.dims {
		//acvet:ignore noalloc amortized scratch growth; no alloc once orders covers the batch size
		sc.orders = make([]int, 0, nq*e.dims)
		//acvet:ignore noalloc amortized scratch growth; no alloc once widths covers the batch size
		sc.widths = make([]float32, 0, nq*e.dims)
	}
	sc.orders, sc.widths = sc.orders[:nq*e.dims], sc.widths[:nq*e.dims]
	for qi := range qs {
		geom.QueryDimOrder(sc.orders[qi*e.dims:qi*e.dims+e.dims], sc.widths[qi*e.dims:qi*e.dims+e.dims], qs[qi], rel)
	}
	if cap(sc.perQ) < nq {
		//acvet:ignore noalloc amortized scratch growth; no alloc once perQ covers the batch size
		next := make([][]uint32, nq)
		copy(next, sc.perQ)
		sc.perQ = next
	}
	sc.perQ = sc.perQ[:nq]
	for i := range sc.perQ {
		sc.perQ[i] = sc.perQ[i][:0]
	}

	// Hit pass: the union's cached regions verify against all their
	// interested queries while pinned — one cache probe per distinct
	// cluster, no I/O. Misses defer to the single coalesced read pass.
	sc.miss = sc.miss[:0]
	for p, ci := range sc.match.Clusters {
		if e.cache != nil {
			if r, ok := e.cache.Get(blockcache.Key{Gen: e.gen, Cluster: ci}); ok {
				sc.meter.CacheHits++
				e.verifyRegionBatch(sc, r, int(ci), p, qs, rel)
				e.cache.Unpin(r)
				continue
			}
		}
		sc.miss = append(sc.miss, ci)
	}
	var err error
	if len(sc.miss) > 0 {
		err = e.readAndVerifyBatch(sc, qs, rel)
	}
	e.meter.Merge(sc.meter)

	// Concatenate the per-query accumulators into the flat result batch.
	for qi := 0; qi < nq; qi++ {
		dst.IDs = append(dst.IDs, sc.perQ[qi]...)
		dst.Off[qi+1] = int32(len(dst.IDs))
	}
	batchPool.Put(sc)
	return err
}

// readAndVerifyBatch runs the batch miss pass: one coalesced read plan over
// the union of the batch's missed regions, each region decoded once and
// verified against every query interested in it.
//
//ac:noalloc
func (e *Engine) readAndVerifyBatch(sc *batchScratch, qs []geom.Rect, rel geom.Relation) error {
	sc.runs = store.PlanReadRuns(e.dir, sc.miss, e.dims, e.maxGap, sc.runs[:0])
	for _, run := range sc.runs {
		if int64(cap(sc.buf)) < run.Bytes {
			//acvet:ignore noalloc amortized read-buffer growth to the largest coalesced run
			sc.buf = make([]byte, run.Bytes)
		}
		buf := sc.buf[:run.Bytes]
		if _, err := e.dev.ReadAt(buf, run.Offset); err != nil {
			//acvet:ignore noalloc cold device-failure path
			return fmt.Errorf("diskengine: read run at %d: %w", run.Offset, err)
		}
		sc.meter.Seeks++
		sc.meter.BytesTransferred += run.Bytes
		for k := 0; k < run.N; k++ {
			ci := sc.miss[run.First+k]
			ent := e.dir[ci]
			img := buf[ent.Offset-run.Offset : ent.Offset-run.Offset+int64(ent.RegionBytes(e.dims))]
			var r *blockcache.Region
			if e.cache != nil {
				//acvet:ignore noalloc cache-miss region insert; the pinned warm path is all hits
				r = new(blockcache.Region)
			} else {
				if sc.local == nil {
					//acvet:ignore noalloc one-time lazy init of the cacheless scratch region
					sc.local = new(blockcache.Region)
				}
				r = sc.local
			}
			r.Reset(ent.Count, e.dims)
			if err := store.DecodeRegionColumns(img, ent, e.dims, r.IDs, r.Lo, r.Hi); err != nil {
				return err
			}
			if e.cache != nil {
				sc.meter.CacheMisses++
				r = e.cache.Put(blockcache.Key{Gen: e.gen, Cluster: ci}, r)
			}
			e.verifyRegionBatch(sc, r, int(ci), sc.pairOf(ci), qs, rel)
			if e.cache != nil {
				e.cache.Unpin(r)
			}
		}
	}
	return nil
}

// verifyRegionBatch narrows one region's members against every query
// interested in the cluster — the columns walked back-to-back per query
// while hot — appending each query's survivors to its accumulator. The
// per-(cluster,query) kernel work and meter charges equal the single-query
// verifyRegion.
//
//ac:noalloc
func (e *Engine) verifyRegionBatch(sc *batchScratch, r *blockcache.Region, ci, pair int, qs []geom.Rect, rel geom.Relation) {
	n := r.Len()
	stride := 4 * e.dims
	sb := e.sigBounds[ci*stride : (ci+1)*stride]
	for _, q32 := range sc.match.QIdx[sc.match.QOff[pair]:sc.match.QOff[pair+1]] {
		qi := int(q32)
		q := qs[qi]
		sc.meter.Explorations++
		sc.meter.ObjectsVerified += int64(n)
		if n == 0 {
			continue
		}
		bits := sc.ensureBits(n)
		geom.InitBitmap(bits, n)
		alive := n
		for _, dd := range sc.orders[qi*e.dims : qi*e.dims+e.dims] {
			if sig.BoundsImplyDim(rel, sb, dd, q.Min[dd], q.Max[dd]) {
				continue
			}
			sc.meter.BytesVerified += int64(alive) * 8
			alive = geom.FilterDim(rel, r.Lo[dd], r.Hi[dd], q.Min[dd], q.Max[dd], bits)
			if alive == 0 {
				break
			}
		}
		if alive == 0 {
			continue
		}
		sc.meter.Results += int64(alive)
		sc.perQ[qi] = geom.AppendSurvivors(sc.perQ[qi], r.IDs, bits)
	}
}
