package telemetry

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"
)

// Source is one subsystem's gauge contribution to the flight recorder: a
// fixed column schema plus a read callback. Read appends exactly one value
// per column to dst and returns the extended slice; it is called from the
// sampler goroutine once per interval, so it must be safe to call
// concurrently with the subsystem's normal operation (read atomics, take a
// shared lock, or snapshot a SyncMeter — never block for long). Short reads
// are zero-padded and long reads truncated, so a misbehaving source cannot
// corrupt the row schema.
type Source struct {
	// Name prefixes every column ("name.col"); duplicates are uniquified
	// at registration.
	Name string
	// Cols names the gauges this source contributes, in Read order.
	Cols []string
	// Read appends len(Cols) current gauge values to dst.
	Read func(dst []int64) []int64
}

// Config tunes a Recorder. The zero value is usable: 1 MiB ring, 1 s
// sampling interval, 64 samples per chunk.
type Config struct {
	// RingBytes bounds the encoded ring size; when the budget fills, the
	// oldest sealed chunks are evicted whole. Default 1 MiB.
	RingBytes int
	// Interval is the sampling period of the background sampler started
	// by Start. Default 1 s.
	Interval time.Duration
	// MaxChunkSamples caps rows per chunk; a sealed chunk is immutable
	// and carries its own schema header and CRC, so eviction and partial
	// dumps stay self-describing. Default 64.
	MaxChunkSamples int
}

const (
	defaultRingBytes       = 1 << 20
	defaultInterval        = time.Second
	defaultMaxChunkSamples = 64
)

// Recorder is the flight recorder: it samples all registered sources into a
// bounded in-memory ring of delta-encoded chunks and owns the process's
// latency histograms. All methods are safe for concurrent use.
type Recorder struct {
	cfg Config
	now func() time.Time // test seam; time.Now otherwise

	mu      sync.Mutex
	sources []Source
	cols    []string // full row schema: "ts_ms" + per-source columns
	sealed  [][]byte // encoded immutable chunks, oldest first
	sealedB int      // total bytes across sealed
	cur     chunkEnc // chunk being appended to
	lastRow []int64  // most recent sample, for live gauges
	samples int64    // rows captured since creation (survives eviction)

	histMu sync.Mutex
	hists  []*Histogram
	histIx map[string]*Histogram

	stop chan struct{}
	done chan struct{}
}

// chunkEnc accumulates one chunk's delta-encoded rows.
type chunkEnc struct {
	cols []string // schema captured when the chunk opened
	n    int      // rows encoded
	prev []int64  // previous row, for deltas
	buf  []byte   // encoded row bytes (no header yet)
}

// New builds a Recorder. Register sources, then Start the sampler (or drive
// Sample manually, e.g. from tests).
func New(cfg Config) *Recorder {
	if cfg.RingBytes <= 0 {
		cfg.RingBytes = defaultRingBytes
	}
	if cfg.Interval <= 0 {
		cfg.Interval = defaultInterval
	}
	if cfg.MaxChunkSamples <= 0 {
		cfg.MaxChunkSamples = defaultMaxChunkSamples
	}
	r := &Recorder{
		cfg:    cfg,
		now:    time.Now,
		cols:   []string{"ts_ms"},
		histIx: make(map[string]*Histogram),
	}
	return r
}

// Interval returns the configured sampling period.
func (r *Recorder) Interval() time.Duration { return r.cfg.Interval }

// Register adds a gauge source. Registering while the recorder is running is
// allowed: the current chunk is sealed so every chunk's embedded schema stays
// exact. A duplicate source name gets a "#n" suffix; the uniquified name is
// returned.
func (r *Recorder) Register(src Source) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := src.Name
	for n := 2; r.hasSourceLocked(name); n++ {
		name = fmt.Sprintf("%s#%d", src.Name, n)
	}
	src.Name = name
	r.sealLocked()
	r.sources = append(r.sources, src)
	cols := make([]string, 0, len(r.cols)+len(src.Cols))
	cols = append(cols, r.cols...)
	for _, c := range src.Cols {
		cols = append(cols, name+"."+c)
	}
	r.cols = cols
	r.lastRow = nil
	return name
}

func (r *Recorder) hasSourceLocked(name string) bool {
	for _, s := range r.sources {
		if s.Name == name {
			return true
		}
	}
	return false
}

// Histogram returns the latency histogram registered under name, creating it
// on first use. Histograms are included in ring dumps and in the live
// introspection surface.
func (r *Recorder) Histogram(name string) *Histogram {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	if h, ok := r.histIx[name]; ok {
		return h
	}
	h := NewHistogram(name)
	r.histIx[name] = h
	r.hists = append(r.hists, h)
	return h
}

// Histograms snapshots every registered histogram, in name order.
func (r *Recorder) Histograms() []HistSnapshot {
	r.histMu.Lock()
	hs := make([]*Histogram, len(r.hists))
	copy(hs, r.hists)
	r.histMu.Unlock()
	out := make([]HistSnapshot, len(hs))
	for i, h := range hs {
		out[i] = h.Snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Sample captures one row from all registered sources into the ring. The
// background sampler calls this once per interval; tests may call it
// directly.
func (r *Recorder) Sample() {
	r.mu.Lock()
	defer r.mu.Unlock()
	row := r.lastRow[:0]
	row = append(row, r.now().UnixMilli())
	for _, src := range r.sources {
		want := len(row) + len(src.Cols)
		row = src.Read(row)
		for len(row) < want { // short read: zero-pad
			row = append(row, 0)
		}
		row = row[:want] // long read: truncate
	}
	r.lastRow = row
	r.appendLocked(row)
	r.samples++
}

// appendLocked delta-encodes one row into the current chunk, sealing and
// evicting as budgets dictate.
func (r *Recorder) appendLocked(row []int64) {
	c := &r.cur
	if c.n == 0 {
		c.cols = r.cols
		// First row of a chunk is absolute.
		for _, v := range row {
			c.buf = binary.AppendVarint(c.buf, v)
		}
	} else {
		for i, v := range row {
			c.buf = binary.AppendVarint(c.buf, v-c.prev[i])
		}
	}
	c.prev = append(c.prev[:0], row...)
	c.n++
	if c.n >= r.cfg.MaxChunkSamples {
		r.sealLocked()
	}
	for r.sealedB+len(r.cur.buf) > r.cfg.RingBytes && len(r.sealed) > 0 {
		r.sealedB -= len(r.sealed[0])
		r.sealed[0] = nil
		r.sealed = r.sealed[1:]
	}
}

// sealLocked freezes the current chunk (schema header + row count + rows +
// CRC32) and opens a fresh one. No-op when the chunk is empty.
func (r *Recorder) sealLocked() {
	if r.cur.n == 0 {
		return
	}
	b := sealChunk(&r.cur)
	r.sealed = append(r.sealed, b)
	r.sealedB += len(b)
	r.cur.n = 0
	r.cur.buf = nil // sealed data may alias; start fresh
	r.cur.cols = nil
}

// sealChunk assembles the immutable encoding of a chunk:
//
//	uvarint ncols, (uvarint len + bytes)*  column names
//	uvarint nrows
//	rows: varint per column, first row absolute, later rows deltas
//	uint32 CRC32-IEEE of everything above (little-endian)
func sealChunk(c *chunkEnc) []byte {
	b := binary.AppendUvarint(nil, uint64(len(c.cols)))
	for _, col := range c.cols {
		b = binary.AppendUvarint(b, uint64(len(col)))
		b = append(b, col...)
	}
	b = binary.AppendUvarint(b, uint64(c.n))
	b = append(b, c.buf...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// Gauges returns the latest sampled row as (schema, values); values is nil
// when no sample has been captured since the last schema change.
func (r *Recorder) Gauges() (cols []string, row []int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cols = append(cols, r.cols...)
	if r.lastRow != nil {
		row = append(row, r.lastRow...)
	}
	return cols, row
}

// Samples returns the number of rows captured since creation (including rows
// whose chunks have since been evicted).
func (r *Recorder) Samples() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples
}

// RingBytes returns the current encoded ring size in bytes.
func (r *Recorder) RingBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sealedB + len(r.cur.buf)
}

// Start launches the background sampler goroutine; Close stops it. Start is
// idempotent while running.
func (r *Recorder) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.loop(r.stop, r.done)
}

func (r *Recorder) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			r.Sample()
		}
	}
}

// Close stops the background sampler (if running). The recorder stays
// readable — and manually sampleable — afterwards.
func (r *Recorder) Close() error {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return nil
}
