package telemetry

import "runtime"

// RuntimeSource returns the Go runtime gauge source: goroutine count, heap
// bytes and objects, cumulative GC cycles and total GC pause nanoseconds.
// runtime.ReadMemStats briefly stops the world, which is why it belongs in a
// 1 Hz sampler rather than on any hot path.
func RuntimeSource() Source {
	return Source{
		Name: "runtime",
		Cols: []string{"goroutines", "heap_alloc", "heap_objects", "gc_cycles", "gc_pause_total_ns"},
		Read: func(dst []int64) []int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return append(dst,
				int64(runtime.NumGoroutine()),
				int64(ms.HeapAlloc),
				int64(ms.HeapObjects),
				int64(ms.NumGC),
				int64(ms.PauseTotalNs),
			)
		},
	}
}
