package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestBucketBounds(t *testing.T) {
	vals := []int64{0, 1, 7, 8, 15, 16, 17, 100, 1000, 4095, 4096, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for _, v := range vals {
		i := bucketOf(v)
		if i < 0 || i >= HistBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, i)
		}
		if lo, hi := bucketLow(i), bucketHigh(i); v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d bounds [%d,%d]", v, i, lo, hi)
		}
	}
	// Bucket bounds must tile the non-negative range without gaps.
	for i := 1; i < HistBuckets; i++ {
		if bucketLow(i) != bucketHigh(i-1)+1 {
			t.Fatalf("gap between buckets %d and %d: high=%d low=%d",
				i-1, i, bucketHigh(i-1), bucketLow(i))
		}
	}
}

func TestBucketRelativeError(t *testing.T) {
	for v := int64(16); v < 1<<30; v = v*17/16 + 1 {
		i := bucketOf(v)
		lo, hi := bucketLow(i), bucketHigh(i)
		if width := float64(hi-lo+1) / float64(lo); width > 0.126 {
			t.Fatalf("bucket %d [%d,%d] relative width %.3f > 12.5%%", i, lo, hi, width)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("q")
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if got := s.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	if mean := s.Mean(); math.Abs(mean-500.5) > 1e-9 {
		t.Fatalf("mean = %g, want 500.5", mean)
	}
	checks := []struct {
		q    float64
		want int64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}, {1.0, 1000}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*1.13 {
			t.Errorf("q%.2f = %d, want within 13%% above %d", c.q, got, c.want)
		}
	}
	if max := s.Max(); max < 1000 || max > 1024 {
		t.Fatalf("max = %d, want within [1000,1024]", max)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram("e")
	s := h.Snapshot()
	if s.Count() != 0 || s.Quantile(0.5) != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram must read as zeros")
	}
	h.Record(-42) // clamps to 0
	s = h.Snapshot()
	if s.Count() != 1 || s.Counts[0] != 1 || s.Sum != 0 {
		t.Fatalf("negative record not clamped: %+v", s)
	}
}

// TestHistogramConcurrent is the -race stress for concurrent recording: many
// writers against a snapshotting reader, with an exact total afterwards.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("c")
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				_ = s.Quantile(0.99)
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(seed int64) {
			defer ww.Done()
			v := seed
			for i := 0; i < perWriter; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				h.Record(v >> 33 & 0xfffff)
			}
		}(int64(w + 1))
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := h.Snapshot().Count(); got != writers*perWriter {
		t.Fatalf("lost updates: count = %d, want %d", got, writers*perWriter)
	}
}
