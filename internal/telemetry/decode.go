package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Segment is a maximal run of decoded samples sharing one column schema.
// Adjacent chunks with identical schemas are merged, so a dump from a
// recorder whose sources never changed decodes to a single segment.
type Segment struct {
	// Cols is the row schema; Cols[0] is always "ts_ms".
	Cols []string
	// Rows holds one decoded gauge row per sample, oldest first.
	Rows [][]int64
}

// Dump is the decoded form of a flight-recorder dump.
type Dump struct {
	// IntervalMS is the recorder's sampling period in milliseconds.
	IntervalMS uint64
	// Segments holds the time series, oldest first.
	Segments []Segment
	// Hists holds the histogram snapshots, in dump order.
	Hists []HistSnapshot
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("telemetry: corrupt dump: "+format, args...)
}

// ReadDump parses a binary dump produced by Recorder.DumpTo, verifying every
// CRC.
func ReadDump(r io.Reader) (*Dump, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) < 16 {
		return nil, corrupt("truncated header (%d bytes)", len(raw))
	}
	if m := binary.LittleEndian.Uint32(raw[0:]); m != dumpMagic {
		return nil, corrupt("bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(raw[4:]); v != dumpVersion {
		return nil, fmt.Errorf("telemetry: unsupported dump version %d", v)
	}
	d := &Dump{IntervalMS: binary.LittleEndian.Uint64(raw[8:])}
	b := raw[16:]
	for {
		n, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, corrupt("bad chunk length")
		}
		b = b[sz:]
		if n == 0 {
			break
		}
		if uint64(len(b)) < n {
			return nil, corrupt("chunk overruns dump (%d > %d)", n, len(b))
		}
		cols, rows, err := decodeChunk(b[:n])
		if err != nil {
			return nil, err
		}
		b = b[n:]
		if k := len(d.Segments); k > 0 && equalCols(d.Segments[k-1].Cols, cols) {
			d.Segments[k-1].Rows = append(d.Segments[k-1].Rows, rows...)
		} else {
			d.Segments = append(d.Segments, Segment{Cols: cols, Rows: rows})
		}
	}
	hists, err := decodeHists(b)
	if err != nil {
		return nil, err
	}
	d.Hists = hists
	return d, nil
}

// decodeChunk parses one sealed chunk (see sealChunk for the layout).
func decodeChunk(b []byte) (cols []string, rows [][]int64, err error) {
	if len(b) < 4 {
		return nil, nil, corrupt("short chunk (%d bytes)", len(b))
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, nil, corrupt("chunk checksum mismatch (%#x != %#x)", got, sum)
	}
	ncols, sz := binary.Uvarint(body)
	if sz <= 0 || ncols == 0 || ncols > 1<<16 {
		return nil, nil, corrupt("bad column count")
	}
	body = body[sz:]
	cols = make([]string, ncols)
	for i := range cols {
		n, sz := binary.Uvarint(body)
		if sz <= 0 || uint64(len(body)-sz) < n {
			return nil, nil, corrupt("bad column name")
		}
		cols[i] = string(body[sz : sz+int(n)])
		body = body[sz+int(n):]
	}
	nrows, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, nil, corrupt("bad row count")
	}
	body = body[sz:]
	rows = make([][]int64, nrows)
	prev := make([]int64, ncols)
	for i := range rows {
		row := make([]int64, ncols)
		for j := range row {
			v, sz := binary.Varint(body)
			if sz <= 0 {
				return nil, nil, corrupt("truncated row %d", i)
			}
			body = body[sz:]
			if i == 0 {
				row[j] = v // first row is absolute
			} else {
				row[j] = prev[j] + v
			}
		}
		copy(prev, row)
		rows[i] = row
	}
	if len(body) != 0 {
		return nil, nil, corrupt("%d trailing chunk bytes", len(body))
	}
	return cols, rows, nil
}

// decodeHists parses the trailing histogram section.
func decodeHists(b []byte) ([]HistSnapshot, error) {
	if len(b) < 4 {
		return nil, corrupt("short histogram section (%d bytes)", len(b))
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, corrupt("histogram checksum mismatch (%#x != %#x)", got, sum)
	}
	nh, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, corrupt("bad histogram count")
	}
	body = body[sz:]
	out := make([]HistSnapshot, 0, nh)
	for i := uint64(0); i < nh; i++ {
		var h HistSnapshot
		n, sz := binary.Uvarint(body)
		if sz <= 0 || uint64(len(body)-sz) < n {
			return nil, corrupt("bad histogram name")
		}
		h.Name = string(body[sz : sz+int(n)])
		body = body[sz+int(n):]
		v, vsz := binary.Varint(body)
		if vsz <= 0 {
			return nil, corrupt("bad histogram sum")
		}
		h.Sum = v
		body = body[vsz:]
		nz, sz2 := binary.Uvarint(body)
		if sz2 <= 0 {
			return nil, corrupt("bad histogram bucket count")
		}
		body = body[sz2:]
		for j := uint64(0); j < nz; j++ {
			idx, s1 := binary.Uvarint(body)
			if s1 <= 0 {
				return nil, corrupt("bad bucket index")
			}
			body = body[s1:]
			cnt, s2 := binary.Uvarint(body)
			if s2 <= 0 {
				return nil, corrupt("bad bucket value")
			}
			body = body[s2:]
			if idx >= HistBuckets {
				return nil, corrupt("bucket index %d out of range", idx)
			}
			h.Counts[idx] = cnt
		}
		out = append(out, h)
	}
	if len(body) != 0 {
		return nil, corrupt("%d trailing bytes", len(body))
	}
	return out, nil
}

func equalCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Column returns the per-sample series of the named column in the segment,
// or an error if the column is absent.
func (s *Segment) Column(name string) ([]int64, error) {
	for i, c := range s.Cols {
		if c == name {
			out := make([]int64, len(s.Rows))
			for j, row := range s.Rows {
				out[j] = row[i]
			}
			return out, nil
		}
	}
	return nil, errors.New("telemetry: no column " + name)
}
