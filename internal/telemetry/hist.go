// Package telemetry is the engine's flight recorder: an always-on,
// fixed-overhead observability substrate for production deployments. It has
// three pieces, mirroring the shape of MongoDB's FTDC ("full-time diagnostic
// data capture"):
//
//   - Per-query latency histograms (Histogram): log-bucketed HDR-style
//     counters recorded lock-free on the query hot paths — one atomic add
//     per observation, no allocation, bounded relative error (~6% from 8
//     sub-buckets per power of two).
//   - A metrics ring (Recorder): a sampler goroutine captures, once per
//     second, a gauge row from every registered Source into a preallocated
//     in-memory ring of bounded bytes. Rows are delta-encoded into chunks
//     (schema header + zigzag varints + CRC32, following the store-format
//     conventions), so hours of per-second history fit in about a megabyte
//     and the memory bound holds no matter how long the process runs: when
//     the budget fills, the oldest chunks fall off whole.
//   - A live introspection surface (Handler/Serve): current gauges and
//     histogram percentiles as JSON and expvar, net/http/pprof under the
//     same mux, and a ring-dump trigger for post-hoc analysis with
//     cmd/acstat.
//
// The recorder answers "what was the cache hit ratio / reorg backlog / p99
// when latency spiked thirty seconds ago" on a running process — the
// question pull-based Stats snapshots cannot, because by the time someone
// asks, the state that mattered is gone.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: 8 sub-buckets per power of two (HDR style).
// Values 0..15 are exact; above that each power of two splits into 8
// log-linear buckets, so any recorded value lands in a bucket whose bounds
// are within 1/8 (12.5%) of each other — percentile error is bounded by
// half of that. 512 buckets cover the full non-negative int64 range.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	// HistBuckets is the fixed bucket count of every Histogram.
	HistBuckets = (63-histSubBits+1)*histSub + histSub
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 2*histSub {
		return int(u) // exact buckets 0..15
	}
	exp := bits.Len64(u) - 1 // ≥ histSubBits+1
	sub := (u >> (uint(exp) - histSubBits)) & (histSub - 1)
	return (exp-histSubBits)*histSub + histSub + int(sub)
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i < 2*histSub {
		return int64(i)
	}
	exp := i/histSub + histSubBits - 1
	sub := i % histSub
	return int64(1)<<uint(exp) | int64(sub)<<uint(exp-histSubBits)
}

// bucketHigh returns the largest value mapping to bucket i.
func bucketHigh(i int) int64 {
	if i >= HistBuckets-1 {
		return int64(^uint64(0) >> 1)
	}
	return bucketLow(i+1) - 1
}

// Histogram is a log-bucketed latency histogram safe for concurrent
// recording from any number of goroutines. Record is one atomic increment
// plus one atomic add — no locks, no allocation — so it belongs on query
// hot paths. The zero value is NOT usable; create histograms through
// Recorder.Histogram (which also includes them in ring dumps) or NewHistogram.
type Histogram struct {
	name   string
	counts [HistBuckets]atomic.Uint64
	sum    atomic.Int64
}

// NewHistogram builds a standalone named histogram.
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// Name returns the histogram's registration name.
func (h *Histogram) Name() string { return h.name }

// Record adds one observation (negative values clamp to zero).
//
//ac:noalloc
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// RecordSince records the nanoseconds elapsed since t0.
//
//ac:noalloc
func (h *Histogram) RecordSince(t0 time.Time) {
	h.Record(int64(time.Since(t0)))
}

// Snapshot returns a consistent-enough copy of the counters: every bucket
// value is atomically loaded, so each is exact as of some instant during the
// call; observations racing with the snapshot may or may not be included.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Name: h.name, Sum: h.sum.Load()}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}

// HistSnapshot is an immutable copy of a histogram's counters.
type HistSnapshot struct {
	// Name is the histogram's registration name.
	Name string
	// Counts holds the per-bucket observation counts.
	Counts [HistBuckets]uint64
	// Sum is the total of all recorded values (for the mean).
	Sum int64
}

// Count returns the number of observations.
func (s HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the average observation (0 when empty).
func (s HistSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

// Quantile returns an upper bound for the q-quantile observation (q in
// [0,1]): the upper bound of the bucket holding that observation, which is
// within the bucket's 12.5% relative width of the true value. Returns 0 when
// the histogram is empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			return bucketHigh(i)
		}
	}
	return bucketHigh(HistBuckets - 1)
}

// Max returns an upper bound of the largest observation (0 when empty).
func (s HistSnapshot) Max() int64 {
	for i := HistBuckets - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			return bucketHigh(i)
		}
	}
	return 0
}
