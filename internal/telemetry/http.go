package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Routes served by Handler/Serve:
//
//	/telemetry       current gauges + histogram percentiles, JSON
//	/telemetry/dump  the binary ring dump (decode with cmd/acstat)
//	/debug/vars      expvar (process globals + the recorder's gauges)
//	/debug/pprof/    the standard net/http/pprof profiles
//
// The gauge set is additionally published through the package-level expvar
// variable "accluster", so an existing expvar scraper picks it up without
// knowing the /telemetry route.

// histJSON is the JSON shape of one histogram in the /telemetry response.
type histJSON struct {
	Name   string  `json:"name"`
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P90NS  int64   `json:"p90_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// telemetryJSON is the /telemetry response body.
type telemetryJSON struct {
	IntervalMS int64            `json:"interval_ms"`
	Samples    int64            `json:"samples"`
	RingBytes  int              `json:"ring_bytes"`
	Gauges     map[string]int64 `json:"gauges"`
	Hists      []histJSON       `json:"hists"`
}

func (r *Recorder) telemetryBody() telemetryJSON {
	cols, row := r.Gauges()
	g := make(map[string]int64, len(row))
	for i := range row {
		g[cols[i]] = row[i]
	}
	body := telemetryJSON{
		IntervalMS: r.cfg.Interval.Milliseconds(),
		Samples:    r.Samples(),
		RingBytes:  r.RingBytes(),
		Gauges:     g,
		Hists:      []histJSON{},
	}
	for _, h := range r.Histograms() {
		body.Hists = append(body.Hists, histJSON{
			Name:   h.Name,
			Count:  h.Count(),
			MeanNS: h.Mean(),
			P50NS:  h.Quantile(0.50),
			P90NS:  h.Quantile(0.90),
			P99NS:  h.Quantile(0.99),
			MaxNS:  h.Max(),
		})
	}
	return body
}

// expvar publication: a single package-level "accluster" variable lists the
// gauge maps of every live recorder (expvar.Publish panics on duplicates, so
// per-recorder variables would break multi-engine processes and tests).
var (
	expMu      sync.Mutex
	expRecs    []*Recorder
	expPublish sync.Once
)

func expvarAttach(r *Recorder) {
	expMu.Lock()
	defer expMu.Unlock()
	for _, x := range expRecs {
		if x == r {
			return
		}
	}
	expRecs = append(expRecs, r)
	expPublish.Do(func() {
		expvar.Publish("accluster", expvar.Func(func() any {
			expMu.Lock()
			recs := make([]*Recorder, len(expRecs))
			copy(recs, expRecs)
			expMu.Unlock()
			out := make([]telemetryJSON, len(recs))
			for i, rec := range recs {
				out[i] = rec.telemetryBody()
			}
			return out
		}))
	})
}

func expvarDetach(r *Recorder) {
	expMu.Lock()
	defer expMu.Unlock()
	for i, x := range expRecs {
		if x == r {
			expRecs = append(expRecs[:i], expRecs[i+1:]...)
			return
		}
	}
}

// Handler returns the introspection mux for the recorder and registers the
// recorder's gauges with expvar.
func Handler(r *Recorder) http.Handler {
	expvarAttach(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.telemetryBody())
	})
	mux.HandleFunc("/telemetry/dump", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="accluster.actm"`)
		_ = r.DumpTo(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live introspection endpoint bound to one recorder.
type Server struct {
	rec *Recorder
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (":0" picks a free port;
// see Addr). The recorder is registered with expvar until the server — or
// the recorder it serves — is closed.
func Serve(r *Recorder, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{rec: r, ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down and detaches the recorder from expvar.
func (s *Server) Close() error {
	expvarDetach(s.rec)
	return s.srv.Close()
}
