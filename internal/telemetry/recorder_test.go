package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// fixedClock yields deterministic, strictly advancing sample timestamps.
func fixedClock() func() time.Time {
	t0 := time.UnixMilli(1_700_000_000_000)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func counterSource(name string, c *atomic.Int64) Source {
	return Source{
		Name: name,
		Cols: []string{"n", "twice"},
		Read: func(dst []int64) []int64 {
			v := c.Load()
			return append(dst, v, 2*v)
		},
	}
}

func TestRecorderDumpRoundTrip(t *testing.T) {
	r := New(Config{MaxChunkSamples: 4})
	r.now = fixedClock()
	var c atomic.Int64
	r.Register(counterSource("eng", &c))
	h := r.Histogram("search_ns")
	want := make([][]int64, 0, 10)
	for i := 0; i < 10; i++ {
		c.Store(int64(i * i))
		r.Sample()
		h.Record(int64(100 + i))
		want = append(want, []int64{0, int64(i * i), int64(2 * i * i)})
	}

	var buf bytes.Buffer
	if err := r.DumpTo(&buf); err != nil {
		t.Fatalf("DumpTo: %v", err)
	}
	// A second dump with no intervening samples must be byte-exact.
	var buf2 bytes.Buffer
	if err := r.DumpTo(&buf2); err != nil {
		t.Fatalf("DumpTo #2: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("repeated dumps of unchanged state differ")
	}

	d, err := ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if d.IntervalMS != 1000 {
		t.Fatalf("IntervalMS = %d, want 1000", d.IntervalMS)
	}
	if len(d.Segments) != 1 {
		t.Fatalf("got %d segments, want 1 (same-schema chunks must merge)", len(d.Segments))
	}
	seg := d.Segments[0]
	wantCols := []string{"ts_ms", "eng.n", "eng.twice"}
	if !equalCols(seg.Cols, wantCols) {
		t.Fatalf("cols = %v, want %v", seg.Cols, wantCols)
	}
	if len(seg.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(seg.Rows), len(want))
	}
	for i, row := range seg.Rows {
		wantTS := int64(1_700_000_000_000) + int64(i+1)*1000
		if row[0] != wantTS {
			t.Fatalf("row %d ts = %d, want %d", i, row[0], wantTS)
		}
		if row[1] != want[i][1] || row[2] != want[i][2] {
			t.Fatalf("row %d = %v, want gauge values %v", i, row[1:], want[i][1:])
		}
	}
	if len(d.Hists) != 1 || d.Hists[0].Name != "search_ns" {
		t.Fatalf("hists = %+v, want one search_ns", d.Hists)
	}
	if got, want := d.Hists[0], h.Snapshot(); got != want {
		t.Fatal("decoded histogram differs from live snapshot")
	}
}

func TestRecorderRingWraparound(t *testing.T) {
	// A tiny ring with tiny chunks: old chunks must be evicted whole, the
	// byte budget must hold, and the survivors must decode to an exact
	// suffix of what was sampled.
	r := New(Config{RingBytes: 512, MaxChunkSamples: 4})
	r.now = fixedClock()
	var c atomic.Int64
	r.Register(counterSource("eng", &c))
	const total = 500
	for i := 0; i < total; i++ {
		c.Store(int64(i))
		r.Sample()
	}
	if rb := r.RingBytes(); rb > 512 {
		t.Fatalf("ring grew to %d bytes, budget 512", rb)
	}
	if r.Samples() != total {
		t.Fatalf("Samples() = %d, want %d", r.Samples(), total)
	}
	var buf bytes.Buffer
	if err := r.DumpTo(&buf); err != nil {
		t.Fatalf("DumpTo: %v", err)
	}
	d, err := ReadDump(&buf)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if len(d.Segments) != 1 {
		t.Fatalf("got %d segments, want 1", len(d.Segments))
	}
	rows := d.Segments[0].Rows
	if len(rows) == 0 || len(rows) >= total {
		t.Fatalf("wraparound kept %d rows of %d, want a proper non-empty suffix", len(rows), total)
	}
	first := rows[0][1]
	for i, row := range rows {
		if row[1] != first+int64(i) {
			t.Fatalf("row %d gauge = %d, want contiguous suffix starting at %d", i, row[1], first)
		}
	}
	if last := rows[len(rows)-1][1]; last != total-1 {
		t.Fatalf("last surviving sample = %d, want %d", last, total-1)
	}
}

func TestRecorderSchemaChange(t *testing.T) {
	r := New(Config{})
	r.now = fixedClock()
	var a, b atomic.Int64
	r.Register(counterSource("a", &a))
	r.Sample()
	r.Sample()
	r.Register(counterSource("b", &b)) // seals the open chunk
	r.Sample()
	var buf bytes.Buffer
	if err := r.DumpTo(&buf); err != nil {
		t.Fatalf("DumpTo: %v", err)
	}
	d, err := ReadDump(&buf)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if len(d.Segments) != 2 {
		t.Fatalf("got %d segments, want 2 after schema change", len(d.Segments))
	}
	if n := len(d.Segments[0].Cols); n != 3 {
		t.Fatalf("segment 0 has %d cols, want 3", n)
	}
	if n := len(d.Segments[1].Cols); n != 5 {
		t.Fatalf("segment 1 has %d cols, want 5", n)
	}
}

func TestRecorderSourceMisbehavior(t *testing.T) {
	r := New(Config{})
	r.now = fixedClock()
	r.Register(Source{
		Name: "short",
		Cols: []string{"x", "y"},
		Read: func(dst []int64) []int64 { return append(dst, 7) }, // one of two
	})
	r.Register(Source{
		Name: "long",
		Cols: []string{"z"},
		Read: func(dst []int64) []int64 { return append(dst, 1, 2, 3) }, // three of one
	})
	r.Sample()
	cols, row := r.Gauges()
	if len(cols) != 4 || len(row) != 4 {
		t.Fatalf("cols=%v row=%v, want 4 columns", cols, row)
	}
	if row[1] != 7 || row[2] != 0 || row[3] != 1 {
		t.Fatalf("row = %v, want short read padded and long read truncated", row)
	}
}

func TestRecorderDuplicateSourceNames(t *testing.T) {
	r := New(Config{})
	var c atomic.Int64
	if got := r.Register(counterSource("eng", &c)); got != "eng" {
		t.Fatalf("first registration renamed to %q", got)
	}
	if got := r.Register(counterSource("eng", &c)); got != "eng#2" {
		t.Fatalf("duplicate registration = %q, want eng#2", got)
	}
}

func TestReadDumpCorruption(t *testing.T) {
	r := New(Config{})
	r.now = fixedClock()
	var c atomic.Int64
	r.Register(counterSource("eng", &c))
	for i := 0; i < 5; i++ {
		r.Sample()
	}
	var buf bytes.Buffer
	if err := r.DumpTo(&buf); err != nil {
		t.Fatalf("DumpTo: %v", err)
	}
	good := buf.Bytes()
	if _, err := ReadDump(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine dump rejected: %v", err)
	}
	// Flip one byte in the chunk body: the CRC must catch it.
	bad := append([]byte(nil), good...)
	bad[20] ^= 0xff
	if _, err := ReadDump(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted dump accepted")
	}
	// Truncation anywhere must error, never panic.
	for n := 0; n < len(good); n += 7 {
		if _, err := ReadDump(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncated dump (%d bytes) accepted", n)
		}
	}
}

func TestRecorderStartClose(t *testing.T) {
	r := New(Config{Interval: time.Millisecond})
	var c atomic.Int64
	r.Register(counterSource("eng", &c))
	r.Start()
	r.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for r.Samples() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("sampler captured no rows")
		}
		time.Sleep(time.Millisecond)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	n := r.Samples()
	time.Sleep(5 * time.Millisecond)
	if r.Samples() != n {
		t.Fatal("sampler still running after Close")
	}
	if err := r.Close(); err != nil { // double close
		t.Fatalf("second Close: %v", err)
	}
}

func TestServeEndpoint(t *testing.T) {
	r := New(Config{Interval: time.Hour})
	var c atomic.Int64
	c.Store(42)
	r.Register(counterSource("eng", &c))
	r.Histogram("search_ns").Record(1234)
	r.Sample()

	srv, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/telemetry")
	if err != nil {
		t.Fatalf("GET /telemetry: %v", err)
	}
	var body telemetryJSON
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /telemetry: %v", err)
	}
	resp.Body.Close()
	if body.Gauges["eng.n"] != 42 {
		t.Fatalf("gauges = %v, want eng.n=42", body.Gauges)
	}
	if len(body.Hists) != 1 || body.Hists[0].Count != 1 {
		t.Fatalf("hists = %+v, want one search_ns observation", body.Hists)
	}

	resp, err = http.Get(base + "/telemetry/dump")
	if err != nil {
		t.Fatalf("GET /telemetry/dump: %v", err)
	}
	d, err := ReadDump(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode dump from endpoint: %v", err)
	}
	if len(d.Segments) != 1 || len(d.Segments[0].Rows) != 1 {
		t.Fatalf("dump = %+v, want the one sampled row", d.Segments)
	}

	resp, err = http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	vars, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(vars, []byte(`"accluster"`)) {
		t.Fatal("/debug/vars does not expose the accluster variable")
	}

	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline: %v (status %v)", err, resp)
	}
	resp.Body.Close()
}

// TestRecorderConcurrentStress runs the sampler flat out against sources
// backed by mutating atomics plus concurrent histogram writers and dump
// readers — the -race exercise for the whole recorder surface.
func TestRecorderConcurrentStress(t *testing.T) {
	r := New(Config{Interval: 100 * time.Microsecond, RingBytes: 4096, MaxChunkSamples: 8})
	var counters [4]atomic.Int64
	for i := range counters {
		r.Register(counterSource(fmt.Sprintf("s%d", i), &counters[i]))
	}
	h := r.Histogram("stress_ns")
	r.Start()
	defer r.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				counters[w].Add(1)
				h.Record(int64(i & 0xffff))
				if i%64 == 0 {
					var buf bytes.Buffer
					if err := r.DumpTo(&buf); err != nil {
						t.Errorf("DumpTo under load: %v", err)
						return
					}
					if _, err := ReadDump(&buf); err != nil {
						t.Errorf("ReadDump under load: %v", err)
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	for i := 0; i < 4; i++ {
		<-done
	}
}
