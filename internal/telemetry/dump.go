package telemetry

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
)

// Dump file format (all integers little-endian or varint as noted),
// mirroring the internal/store conventions (magic + version header, CRC32
// checksums over every self-contained section):
//
//	uint32  magic "ACTM" (0x4D544341)
//	uint32  version (1)
//	uint64  sampling interval, milliseconds
//	chunks: (uvarint chunkLen, chunkLen bytes)*  — see sealChunk
//	uvarint 0  (chunk terminator)
//	histogram section:
//	  uvarint nhists
//	  per histogram:
//	    uvarint len(name), name bytes
//	    varint  sum
//	    uvarint count of non-zero buckets
//	    per non-zero bucket: uvarint index, uvarint count
//	  uint32 CRC32-IEEE of the section (from nhists up to here)
//
// Every chunk embeds its own schema, so a dump remains decodable even after
// the ring evicted arbitrary whole chunks or a source registration changed
// the schema mid-flight.
const (
	dumpMagic   = 0x4D544341 // "ACTM" little-endian
	dumpVersion = 1
)

// DumpTo writes the complete ring (sealed chunks plus the in-progress chunk)
// and all histogram counters to w in the binary dump format. The recorder
// keeps running; the dump is a consistent copy, not a drain.
func (r *Recorder) DumpTo(w io.Writer) error {
	r.mu.Lock()
	chunks := make([][]byte, 0, len(r.sealed)+1)
	chunks = append(chunks, r.sealed...)
	if r.cur.n > 0 {
		// Seal a copy under the lock: the live buffer keeps growing after
		// we release it.
		chunks = append(chunks, sealChunk(&r.cur))
	}
	intervalMS := uint64(r.cfg.Interval.Milliseconds())
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], dumpMagic)
	binary.LittleEndian.PutUint32(hdr[4:], dumpVersion)
	binary.LittleEndian.PutUint64(hdr[8:], intervalMS)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var scratch []byte
	for _, c := range chunks {
		scratch = binary.AppendUvarint(scratch[:0], uint64(len(c)))
		if _, err := bw.Write(scratch); err != nil {
			return err
		}
		if _, err := bw.Write(c); err != nil {
			return err
		}
	}
	scratch = binary.AppendUvarint(scratch[:0], 0)
	if _, err := bw.Write(scratch); err != nil {
		return err
	}

	hists := r.Histograms()
	sec := binary.AppendUvarint(nil, uint64(len(hists)))
	for i := range hists {
		h := &hists[i]
		sec = binary.AppendUvarint(sec, uint64(len(h.Name)))
		sec = append(sec, h.Name...)
		sec = binary.AppendVarint(sec, h.Sum)
		nz := 0
		for _, c := range h.Counts {
			if c != 0 {
				nz++
			}
		}
		sec = binary.AppendUvarint(sec, uint64(nz))
		for i, c := range h.Counts {
			if c != 0 {
				sec = binary.AppendUvarint(sec, uint64(i))
				sec = binary.AppendUvarint(sec, c)
			}
		}
	}
	sec = binary.LittleEndian.AppendUint32(sec, crc32.ChecksumIEEE(sec))
	if _, err := bw.Write(sec); err != nil {
		return err
	}
	return bw.Flush()
}
