package mbbclust

import (
	"math/rand"
	"sort"
	"testing"

	"accluster/internal/cost"
	"accluster/internal/geom"
)

func randomRect(rng *rand.Rand, dims int, maxSize float32) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		size := rng.Float32() * maxSize
		lo := rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dims: 0}); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := New(Config{Dims: 2, DivisionFactor: 1}); err == nil {
		t.Error("f=1 must fail")
	}
	if _, err := New(Config{Dims: 2, Decay: 2}); err == nil {
		t.Error("decay=2 must fail")
	}
	ix, err := New(Config{Dims: 2})
	if err != nil || ix.Dims() != 2 || ix.Clusters() != 1 {
		t.Fatalf("New: %v", err)
	}
}

func TestCRUD(t *testing.T) {
	ix, _ := New(Config{Dims: 3})
	rng := rand.New(rand.NewSource(1))
	rects := map[uint32]geom.Rect{}
	for id := uint32(0); id < 400; id++ {
		r := randomRect(rng, 3, 0.3)
		rects[id] = r
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Insert(0, rects[0]); err == nil {
		t.Error("duplicate must fail")
	}
	for id, want := range rects {
		got, ok := ix.Get(id)
		if !ok || !got.Equal(want) {
			t.Fatalf("Get(%d)", id)
		}
	}
	for id := uint32(0); id < 100; id++ {
		if !ix.Delete(id) {
			t.Fatalf("Delete(%d)", id)
		}
		delete(rects, id)
	}
	if ix.Delete(5) {
		t.Error("double delete")
	}
	if ix.Len() != 300 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestDifferentialWithReorganization(t *testing.T) {
	ix, _ := New(Config{Dims: 4, ReorgEvery: 20})
	rng := rand.New(rand.NewSource(2))
	type obj struct {
		id uint32
		r  geom.Rect
	}
	var objs []obj
	for id := uint32(0); id < 1200; id++ {
		r := randomRect(rng, 4, 0.3)
		objs = append(objs, obj{id, r})
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	for qi := 0; qi < 120; qi++ {
		q := randomRect(rng, 4, 0.4)
		rel := geom.Relation(qi % 3)
		var got []uint32
		if err := ix.Search(q, rel, func(id uint32) bool { got = append(got, id); return true }); err != nil {
			t.Fatal(err)
		}
		var want []uint32
		for _, o := range objs {
			if o.r.Matches(rel, q) {
				want = append(want, o.id)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d rel %v: %d results, want %d (clusters=%d)", qi, rel, len(got), len(want), ix.Clusters())
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d rel %v: mismatch", qi, rel)
			}
		}
	}
}

func TestClustersFormForPointData(t *testing.T) {
	// With small objects (near points), region grouping works and
	// clusters should materialize under selective queries.
	ix, _ := New(Config{Dims: 2, ReorgEvery: 25})
	rng := rand.New(rand.NewSource(3))
	for id := uint32(0); id < 4000; id++ {
		if err := ix.Insert(id, randomRect(rng, 2, 0.01)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		q := randomRect(rng, 2, 0.05)
		if _, err := ix.Count(q, geom.Intersects); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Clusters() < 2 {
		t.Errorf("expected clusters for point-like data, got %d", ix.Clusters())
	}
	if ix.Splits() == 0 {
		t.Error("no splits recorded")
	}
}

func TestStraddlersStayCoarse(t *testing.T) {
	// The structural weakness: objects spanning the domain center cannot
	// descend on that dimension. With all objects straddling 0.5 in dim
	// 0, any materialized cluster still holds them via other dims, but a
	// 1-dimensional space cannot cluster at all.
	ix, _ := New(Config{Dims: 1, ReorgEvery: 25})
	for id := uint32(0); id < 2000; id++ {
		r := geom.Rect{Min: []float32{0.4}, Max: []float32{0.6}}
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		q := geom.Rect{Min: []float32{0.45}, Max: []float32{0.46}}
		if _, err := ix.Count(q, geom.Intersects); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Clusters() != 1 {
		t.Errorf("straddling objects must stay in the root, clusters=%d", ix.Clusters())
	}
}

func TestMeterAndReset(t *testing.T) {
	ix, _ := New(Config{Dims: 2})
	rng := rand.New(rand.NewSource(4))
	for id := uint32(0); id < 100; id++ {
		if err := ix.Insert(id, randomRect(rng, 2, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ix.Count(randomRect(rng, 2, 0.4), geom.Intersects); err != nil {
		t.Fatal(err)
	}
	if m := ix.Meter(); m.Queries != 1 || m.Explorations != 1 {
		t.Fatalf("meter: %v", m)
	}
	ix.ResetMeter()
	if ix.Meter() != (cost.Meter{}) {
		t.Error("ResetMeter")
	}
	_ = ix.Merges()
}

func TestSearchValidation(t *testing.T) {
	ix, _ := New(Config{Dims: 2})
	if err := ix.Search(geom.Point([]float32{0.1}), geom.Intersects, func(uint32) bool { return true }); err == nil {
		t.Error("wrong dims must fail")
	}
	if err := ix.Search(geom.Point([]float32{0.1, 0.2}), geom.Relation(9), func(uint32) bool { return true }); err == nil {
		t.Error("bad relation must fail")
	}
	if err := ix.Insert(1, geom.Point([]float32{0.5})); err == nil {
		t.Error("wrong insert dims must fail")
	}
	if err := ix.Insert(1, geom.Rect{Min: []float32{0.9, 0.9}, Max: []float32{0.1, 0.1}}); err == nil {
		t.Error("invalid rect must fail")
	}
}
