// Package mbbclust implements the classical grouping criterion the paper
// argues against (§1, contribution 2; §4): clusters defined by minimum
// bounding in all dimensions. A cluster owns a region rectangle and hosts
// only objects entirely contained in the region; candidate subclusters
// narrow the region on one dimension into f sub-ranges. Everything else —
// performance indicators, the cost model, insertion to the
// lowest-access-probability cluster, periodic merge/split reorganization —
// is identical to the adaptive index (internal/core), so benchmark
// differences isolate the grouping criterion itself.
//
// The structural weakness this exposes is exactly the one the paper's
// signature criterion fixes: an extended object that straddles a sub-region
// boundary can never descend into a subcluster, so with spatially extended
// data most objects stay in coarse clusters and queries keep exploring them.
package mbbclust

import (
	"fmt"

	"accluster/internal/cost"
	"accluster/internal/geom"
)

// Config parameterizes the MBB-grouping index; the fields mirror
// core.Config.
type Config struct {
	Dims           int
	Params         cost.Params
	DivisionFactor int
	ReorgEvery     int
	Decay          float64
}

func (c *Config) setDefaults() error {
	if c.Dims < 1 {
		return fmt.Errorf("mbbclust: invalid dimensionality %d", c.Dims)
	}
	if c.DivisionFactor == 0 {
		c.DivisionFactor = 4
	}
	if c.DivisionFactor < 2 {
		return fmt.Errorf("mbbclust: division factor must be ≥ 2, got %d", c.DivisionFactor)
	}
	if c.ReorgEvery == 0 {
		c.ReorgEvery = 100
	}
	if c.ReorgEvery < 1 {
		return fmt.Errorf("mbbclust: ReorgEvery must be ≥ 1")
	}
	if c.Decay == 0 {
		c.Decay = 0.5
	}
	if c.Decay < 0 || c.Decay > 1 {
		return fmt.Errorf("mbbclust: decay must be in (0,1], got %g", c.Decay)
	}
	if c.Params.Name == "" {
		c.Params = cost.Memory()
	}
	return nil
}

// candidate narrows the owner's region on one dimension to
// [lo,hi) (closed at the domain top).
type candidate struct {
	dim    int
	lo, hi float32
	n      int32
	q      float64
}

func (cd *candidate) matchesObjectDim(olo, ohi float32) bool {
	// Containment of the object's interval in the sub-range, with the
	// same boundary convention as signatures: upper bound exclusive
	// except at the domain maximum.
	if olo < cd.lo || ohi > cd.hi {
		return false
	}
	if ohi == cd.hi {
		return cd.hi == 1
	}
	return true
}

// cluster is a region-based group.
type cluster struct {
	region   geom.Rect
	parent   *cluster
	children []*cluster
	ids      []uint32
	data     []float32
	cands    []candidate
	q        float64
	pos      int
	removed  bool
}

func (c *cluster) matchesObject(r geom.Rect) bool {
	for d := range r.Min {
		if !c.matchesObjectDim(d, r.Min[d], r.Max[d]) {
			return false
		}
	}
	return true
}

func (c *cluster) matchesObjectDim(d int, olo, ohi float32) bool {
	lo, hi := c.region.Min[d], c.region.Max[d]
	if olo < lo || ohi > hi {
		return false
	}
	if ohi == hi && hi != 1 {
		return false
	}
	return true
}

// matchesQuery prunes with the region: members are contained in it.
func (c *cluster) matchesQuery(q geom.Rect, rel geom.Relation) bool {
	if rel == geom.Encloses {
		return c.region.Encloses(q)
	}
	return c.region.Intersects(q)
}

func newCluster(region geom.Rect, f int) *cluster {
	c := &cluster{region: region}
	for d := 0; d < region.Dims(); d++ {
		lo, hi := region.Min[d], region.Max[d]
		if hi-lo <= 0 || lo+(hi-lo)/float32(f) == lo {
			continue
		}
		for k := 0; k < f; k++ {
			clo := lo + (hi-lo)*float32(k)/float32(f)
			chi := lo + (hi-lo)*float32(k+1)/float32(f)
			if k == f-1 {
				chi = hi
			}
			c.cands = append(c.cands, candidate{dim: d, lo: clo, hi: chi})
		}
	}
	return c
}

func (c *cluster) appendObject(id uint32, r geom.Rect) int {
	pos := len(c.ids)
	c.ids = append(c.ids, id)
	c.data = geom.AppendFlat(c.data, r)
	for i := range c.cands {
		cd := &c.cands[i]
		if cd.matchesObjectDim(r.Min[cd.dim], r.Max[cd.dim]) {
			cd.n++
		}
	}
	return pos
}

func (c *cluster) objectDim(i, dims, d int) (lo, hi float32) {
	base := i * 2 * dims
	return c.data[base+2*d], c.data[base+2*d+1]
}

func (c *cluster) removeObjectAt(i, dims int) (movedID uint32, moved bool) {
	for k := range c.cands {
		cd := &c.cands[k]
		lo, hi := c.objectDim(i, dims, cd.dim)
		if cd.matchesObjectDim(lo, hi) {
			cd.n--
		}
	}
	last := len(c.ids) - 1
	if i != last {
		c.ids[i] = c.ids[last]
		copy(c.data[i*2*dims:(i+1)*2*dims], c.data[last*2*dims:(last+1)*2*dims])
		movedID, moved = c.ids[i], true
	}
	c.ids = c.ids[:last]
	c.data = c.data[:last*2*dims]
	return movedID, moved
}

func (c *cluster) detachChild(ch *cluster) {
	for i, x := range c.children {
		if x == ch {
			c.children[i] = c.children[len(c.children)-1]
			c.children = c.children[:len(c.children)-1]
			return
		}
	}
}

type objLoc struct {
	c   *cluster
	pos int32
}

// Index is the MBB-grouping adaptive index. Not safe for concurrent use:
// every operation holds the caller's exclusive lock, so the embedded cost
// meter is written directly.
//
//ac:serialmeter
type Index struct {
	cfg      Config
	objBytes int
	root     *cluster
	clusters []*cluster
	loc      map[uint32]objLoc

	window     float64
	sinceReorg int
	meter      cost.Meter
	splits     int64
	merges     int64
}

// New builds an empty index.
func New(cfg Config) (*Index, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	region := geom.NewRect(cfg.Dims)
	for d := 0; d < cfg.Dims; d++ {
		region.Max[d] = 1
	}
	ix := &Index{
		cfg:      cfg,
		objBytes: geom.ObjectBytes(cfg.Dims),
		loc:      make(map[uint32]objLoc),
	}
	ix.root = newCluster(region, cfg.DivisionFactor)
	ix.clusters = []*cluster{ix.root}
	return ix, nil
}

// Dims returns the data space dimensionality.
func (ix *Index) Dims() int { return ix.cfg.Dims }

// Len returns the number of stored objects.
func (ix *Index) Len() int { return len(ix.loc) }

// Clusters returns the number of materialized clusters.
func (ix *Index) Clusters() int { return len(ix.clusters) }

// Meter returns the accumulated operation counters.
func (ix *Index) Meter() cost.Meter { return ix.meter }

// ResetMeter zeroes the operation counters.
func (ix *Index) ResetMeter() { ix.meter.Reset() }

// Splits returns the number of materializations performed.
func (ix *Index) Splits() int64 { return ix.splits }

// Merges returns the number of merges performed.
func (ix *Index) Merges() int64 { return ix.merges }

func (ix *Index) prob(q float64) float64 {
	if ix.window <= 0 {
		return 0
	}
	p := q / ix.window
	if p > 1 {
		p = 1
	}
	return p
}

// Insert places the object into the matching cluster with the lowest access
// probability.
func (ix *Index) Insert(id uint32, r geom.Rect) error {
	if r.Dims() != ix.cfg.Dims {
		return fmt.Errorf("mbbclust: object has %d dims, index has %d", r.Dims(), ix.cfg.Dims)
	}
	if !r.Valid() {
		return fmt.Errorf("mbbclust: invalid rectangle %v", r)
	}
	if _, dup := ix.loc[id]; dup {
		return fmt.Errorf("mbbclust: duplicate object id %d", id)
	}
	best := ix.root
	bestP := ix.prob(ix.root.q)
	for _, c := range ix.clusters[1:] {
		if !c.matchesObject(r) {
			continue
		}
		if p := ix.prob(c.q); p <= bestP {
			best, bestP = c, p
		}
	}
	pos := best.appendObject(id, r)
	ix.loc[id] = objLoc{c: best, pos: int32(pos)}
	return nil
}

// Delete removes an object, reporting whether it existed.
func (ix *Index) Delete(id uint32) bool {
	l, ok := ix.loc[id]
	if !ok {
		return false
	}
	movedID, moved := l.c.removeObjectAt(int(l.pos), ix.cfg.Dims)
	if moved {
		ix.loc[movedID] = objLoc{c: l.c, pos: l.pos}
	}
	delete(ix.loc, id)
	return true
}

// Get returns the rectangle stored under id.
func (ix *Index) Get(id uint32) (geom.Rect, bool) {
	l, ok := ix.loc[id]
	if !ok {
		return geom.Rect{}, false
	}
	return geom.FromFlat(l.c.data, int(l.pos), ix.cfg.Dims), true
}

// Search mirrors core.Index.Search with region-based pruning.
func (ix *Index) Search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error {
	if q.Dims() != ix.cfg.Dims {
		return fmt.Errorf("mbbclust: query has %d dims, index has %d", q.Dims(), ix.cfg.Dims)
	}
	if !rel.Valid() {
		return fmt.Errorf("mbbclust: invalid relation %v", rel)
	}
	ix.meter.Queries++
	ix.meter.SigChecks += int64(len(ix.clusters))
	stopped := false
	for _, c := range ix.clusters {
		if !c.matchesQuery(q, rel) {
			continue
		}
		ix.meter.Explorations++
		ix.meter.Seeks++
		ix.meter.BytesTransferred += int64(len(c.ids)) * int64(ix.objBytes)
		c.q++
		for i := range c.cands {
			cd := &c.cands[i]
			// A query can reach members of the narrowed region only
			// if it satisfies the pruning predicate against it.
			if rel == geom.Encloses {
				if q.Min[cd.dim] >= cd.lo && q.Max[cd.dim] <= cd.hi {
					cd.q++
				}
			} else if q.Min[cd.dim] <= cd.hi && q.Max[cd.dim] >= cd.lo {
				cd.q++
			}
		}
		if stopped {
			continue
		}
		ix.meter.ObjectsVerified += int64(len(c.ids))
		for i := range c.ids {
			ok, checked := geom.FlatMatches(c.data, i, q, rel)
			ix.meter.BytesVerified += int64(checked) * 8
			if ok {
				ix.meter.Results++
				if !emit(c.ids[i]) {
					stopped = true
					break
				}
			}
		}
	}
	ix.window++
	ix.sinceReorg++
	if ix.sinceReorg >= ix.cfg.ReorgEvery {
		ix.Reorganize()
	}
	return nil
}

// Count returns the number of qualifying objects.
func (ix *Index) Count(q geom.Rect, rel geom.Relation) (int, error) {
	n := 0
	err := ix.Search(q, rel, func(uint32) bool { n++; return true })
	return n, err
}

// Reorganize runs one merge/split round with the shared cost model.
func (ix *Index) Reorganize() {
	ix.sinceReorg = 0
	snapshot := append([]*cluster(nil), ix.clusters...)
	for _, c := range snapshot {
		if c.removed {
			continue
		}
		if c != ix.root && c.parent != nil && !c.parent.removed {
			pc, pa := ix.prob(c.q), ix.prob(c.parent.q)
			if ix.cfg.Params.MergingBenefit(pc, pa, len(c.ids), ix.objBytes) > 0 {
				ix.merge(c)
				continue
			}
		}
		ix.trySplit(c)
	}
	d := ix.cfg.Decay
	ix.window *= d
	for _, c := range ix.clusters {
		c.q *= d
		for i := range c.cands {
			c.cands[i].q *= d
		}
	}
}

func (ix *Index) trySplit(c *cluster) {
	for {
		pc := ix.prob(c.q)
		best := -1
		var bestBenefit float64
		for i := range c.cands {
			cd := &c.cands[i]
			if cd.n <= 0 {
				continue
			}
			ps := ix.prob(cd.q)
			if ps > pc {
				ps = pc
			}
			b := ix.cfg.Params.MaterializationBenefit(pc, ps, int(cd.n), ix.objBytes)
			if b > 0 && (best < 0 || b > bestBenefit) {
				best, bestBenefit = i, b
			}
		}
		if best < 0 {
			return
		}
		ix.materialize(c, best)
	}
}

func (ix *Index) materialize(c *cluster, ci int) {
	cd := &c.cands[ci]
	dims := ix.cfg.Dims
	region := c.region.Clone()
	region.Min[cd.dim], region.Max[cd.dim] = cd.lo, cd.hi
	child := newCluster(region, ix.cfg.DivisionFactor)
	child.parent = c
	child.q = cd.q
	for i := len(c.ids) - 1; i >= 0; i-- {
		lo, hi := c.objectDim(i, dims, cd.dim)
		if !cd.matchesObjectDim(lo, hi) {
			continue
		}
		id := c.ids[i]
		r := geom.FromFlat(c.data, i, dims)
		movedID, moved := c.removeObjectAt(i, dims)
		pos := child.appendObject(id, r)
		ix.loc[id] = objLoc{c: child, pos: int32(pos)}
		if moved {
			ix.loc[movedID] = objLoc{c: c, pos: int32(i)}
		}
	}
	c.children = append(c.children, child)
	child.pos = len(ix.clusters)
	ix.clusters = append(ix.clusters, child)
	ix.splits++
}

func (ix *Index) merge(c *cluster) {
	a := c.parent
	dims := ix.cfg.Dims
	for i := range c.ids {
		id := c.ids[i]
		pos := a.appendObject(id, geom.FromFlat(c.data, i, dims))
		ix.loc[id] = objLoc{c: a, pos: int32(pos)}
	}
	for _, ch := range c.children {
		ch.parent = a
		a.children = append(a.children, ch)
	}
	a.detachChild(c)
	last := len(ix.clusters) - 1
	ix.clusters[c.pos] = ix.clusters[last]
	ix.clusters[c.pos].pos = c.pos
	ix.clusters = ix.clusters[:last]
	c.removed = true
	c.ids, c.data, c.cands, c.children = nil, nil, nil, nil
	ix.merges++
}
