package faultio

import (
	"errors"
	"testing"

	"accluster/internal/store"
)

// TestScheduleCountsAndFires pins the op accounting: the Nth countable
// operation (1-based) suffers the fault, everything before and after it
// succeeds for Err/ShortWrite kinds.
func TestScheduleCountsAndFires(t *testing.T) {
	s := NewSchedule(1)
	dev := WrapDevice(store.NewMemDevice(), s)
	buf := []byte("0123456789abcdef")
	s.SetFault(3, Err)
	if _, err := dev.WriteAt(buf, 0); err != nil { // op 1
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := dev.WriteAt(buf, 16); err == nil || !errors.Is(err, ErrInjected) { // op 3: boom
		t.Fatalf("op 3 err = %v, want ErrInjected", err)
	}
	if size, err := dev.Inner.Size(); err != nil || size != 16 {
		t.Fatalf("failed Err write was applied: size=%d err=%v", size, err)
	}
	if _, err := dev.WriteAt(buf, 16); err != nil { // op 4: fine again
		t.Fatal(err)
	}
	if got := s.Ops(); got != 4 {
		t.Fatalf("ops = %d, want 4", got)
	}
}

// TestTornWriteIsSectorAligned pins ShortWrite semantics: the persisted
// prefix is a whole number of sectors and strictly shorter than the write.
func TestTornWriteIsSectorAligned(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := NewSchedule(seed)
		inner := store.NewMemDevice()
		dev := WrapDevice(inner, s)
		s.SetFault(1, ShortWrite)
		buf := make([]byte, 4*SectorSize+100)
		for i := range buf {
			buf[i] = 0xAB
		}
		n, err := dev.WriteAt(buf, 0)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("seed %d: err = %v", seed, err)
		}
		if n%SectorSize != 0 || n >= len(buf) {
			t.Fatalf("seed %d: torn write kept %d bytes (len %d)", seed, n, len(buf))
		}
		size, _ := inner.Size()
		if size != int64(n) {
			t.Fatalf("seed %d: inner device has %d bytes, want %d", seed, size, n)
		}
	}
}

// TestCrashIsPermanent pins Crash semantics: the faulting op tears, and
// every later operation — counted or not — fails with ErrCrashed.
func TestCrashIsPermanent(t *testing.T) {
	s := NewSchedule(7)
	dev := WrapDevice(store.NewMemDevice(), s)
	s.SetFault(1, Crash)
	if _, err := dev.WriteAt(make([]byte, 2*SectorSize), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash op err = %v", err)
	}
	if !s.Crashed() {
		t.Fatal("schedule not marked crashed")
	}
	if _, err := dev.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read err = %v", err)
	}
	if err := dev.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync err = %v", err)
	}
	if _, err := dev.Size(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash size err = %v", err)
	}
}

// TestFSOpsAreCounted pins that every file-level operation of the atomic
// save paths flows through the schedule.
func TestFSOpsAreCounted(t *testing.T) {
	s := NewSchedule(1)
	fsys := WrapFS(NewMemFS(), s)
	if err := fsys.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename("d/a", "d/b"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.ReadDir("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.ReadFile("d/b"); err != nil {
		t.Fatal(err)
	}
	// mkdir, create, write, sync, rename, syncdir, readdir, readfile = 8
	// (close is uncounted).
	if got := s.Ops(); got != 8 {
		t.Fatalf("ops = %d, want 8", got)
	}
}

// TestMemFSDurability pins the power-failure contract of MemFS:
// content survives only when synced, directory operations survive only
// when the directory is synced.
func TestMemFSDurability(t *testing.T) {
	m := NewMemFS()

	// Unsynced content is lost; the file name survives once the dir syncs.
	f, _ := m.Create("a")
	f.WriteAt([]byte("unsynced"), 0)
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	after := m.Crash()
	if !after.Exists("a") {
		t.Fatal("created+dirsynced file lost on crash")
	}
	if data, _ := after.ReadFile("a"); len(data) != 0 {
		t.Fatalf("unsynced content survived crash: %q", data)
	}

	// Synced content survives.
	f, _ = m.Create("b")
	f.WriteAt([]byte("synced"), 0)
	f.Sync()
	m.SyncDir(".")
	after = m.Crash()
	if data, _ := after.ReadFile("b"); string(data) != "synced" {
		t.Fatalf("synced content lost: %q", data)
	}

	// A rename without SyncDir is volatile: the crash sees the old name.
	f, _ = m.Create("c.tmp")
	f.WriteAt([]byte("v2"), 0)
	f.Sync()
	m.SyncDir(".")
	if err := m.Rename("c.tmp", "c"); err != nil {
		t.Fatal(err)
	}
	after = m.Crash()
	if after.Exists("c") || !after.Exists("c.tmp") {
		t.Fatal("unsynced rename became durable")
	}
	// After SyncDir the rename is durable.
	m.SyncDir(".")
	after = m.Crash()
	if !after.Exists("c") || after.Exists("c.tmp") {
		t.Fatal("synced rename lost")
	}

	// Create-truncate over an existing durable file keeps the old durable
	// content until the new content syncs.
	f, _ = m.Create("b")
	f.WriteAt([]byte("NEW"), 0)
	after = m.Crash()
	if data, _ := after.ReadFile("b"); string(data) != "synced" {
		t.Fatalf("old durable content lost during rewrite: %q", data)
	}

	// Remove without SyncDir is volatile too.
	if err := m.Remove("c"); err != nil {
		t.Fatal(err)
	}
	after = m.Crash()
	if !after.Exists("c") {
		t.Fatal("unsynced remove became durable")
	}
	m.SyncDir(".")
	after = m.Crash()
	if after.Exists("c") {
		t.Fatal("synced remove did not stick")
	}
}

// TestMemFSCloneIndependence pins that Clone severs all storage sharing.
func TestMemFSCloneIndependence(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("x")
	f.WriteAt([]byte("orig"), 0)
	f.Sync()
	m.SyncDir(".")
	c := m.Clone()
	cf, err := c.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	cf.WriteAt([]byte("EDIT"), 0)
	cf.Sync()
	if data, _ := m.ReadFile("x"); string(data) != "orig" {
		t.Fatalf("edit through clone leaked into original: %q", data)
	}
	// The clone preserved the rename-pending identity semantics: a crash of
	// the clone matches a crash of the original before the edit.
	if data, _ := c.Crash().ReadFile("x"); string(data) != "EDIT" {
		t.Fatalf("clone durable content wrong: %q", data)
	}
}
