package faultio

// Network fault injection, mirroring the device/FS schedule of the crash
// suite: a NetSchedule counts the network operations (reads, writes,
// accepts) flowing through wrapped connections and listeners and fires
// configured faults deterministically — either once at the Nth operation
// (At) or recurringly every Kth operation (Every) — with all randomness
// (partial-write lengths, corrupted byte positions, latency spikes) drawn
// from a seeded generator, so every run of a network fault loop is
// reproducible. The wrappers model the failures a streaming broker must
// survive: a reset mid-conversation, a write torn mid-frame, a flipped bit
// that must be caught by frame CRCs, and latency spikes that push a
// connection against its deadlines.

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// NetKind selects what happens at a scheduled network operation.
type NetKind uint8

const (
	// NetNone disables the rule: the schedule only counts operations.
	NetNone NetKind = iota
	// NetErr fails the operation with ErrInjected without applying it.
	NetErr
	// NetPartial applies a seeded-length prefix of a write, then closes
	// the connection and fails — the peer observes a frame torn
	// mid-stream. Non-write operations fail like NetErr.
	NetPartial
	// NetReset closes the underlying connection and fails the operation
	// — an abrupt peer reset.
	NetReset
	// NetCorrupt flips one seeded bit of a write's payload and delivers
	// the rest intact — the peer's frame CRC must catch it. Non-write
	// operations are unaffected (the rule is skipped, not consumed).
	NetCorrupt
	// NetDelay sleeps a seeded duration (bounded by SetMaxDelay) before
	// applying the operation normally — a latency spike.
	NetDelay
)

// netRule is one armed fault: fire when the operation counter reaches at
// (once), or on every multiple of every.
type netRule struct {
	kind  NetKind
	at    int64 // one-shot trigger; 0 = disabled
	every int64 // recurring trigger; 0 = disabled
}

// NetSchedule is the shared fault plan of a set of wrapped connections and
// listeners. All methods are safe for concurrent use.
type NetSchedule struct {
	mu       sync.Mutex
	rng      *rand.Rand
	n        int64
	rules    []netRule
	maxDelay time.Duration
}

// NewNetSchedule returns a counting-only schedule; fault parameters drawn
// during injection are seeded for reproducibility.
func NewNetSchedule(seed int64) *NetSchedule {
	return &NetSchedule{rng: rand.New(rand.NewSource(seed)), maxDelay: 10 * time.Millisecond}
}

// At arms a one-shot fault at the n-th subsequent countable operation
// (1-based, counted across every wrapped connection and listener).
func (s *NetSchedule) At(n int64, kind NetKind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, netRule{kind: kind, at: s.n + n})
}

// Every arms a recurring fault firing on every k-th countable operation.
func (s *NetSchedule) Every(k int64, kind NetKind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k > 0 {
		s.rules = append(s.rules, netRule{kind: kind, every: k})
	}
}

// SetMaxDelay bounds the sleep injected by NetDelay faults (default 10ms).
func (s *NetSchedule) SetMaxDelay(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxDelay = d
}

// Ops returns the number of operations counted so far.
func (s *NetSchedule) Ops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// netDirective is the resolved outcome of one operation step.
type netDirective struct {
	kind  NetKind
	keep  int           // NetPartial: bytes of the write to apply
	flip  int           // NetCorrupt: byte index to damage
	bit   uint          // NetCorrupt: bit to flip within that byte
	delay time.Duration // NetDelay: sleep length
}

// step accounts one operation and resolves the fault directive for it.
// writeLen is the byte length for writes and negative for everything else.
func (s *NetSchedule) step(writeLen int) netDirective {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	for i := range s.rules {
		r := &s.rules[i]
		fire := (r.at != 0 && s.n == r.at) || (r.every != 0 && s.n%r.every == 0)
		if !fire {
			continue
		}
		switch r.kind {
		case NetCorrupt, NetPartial:
			if writeLen <= 0 {
				if r.kind == NetCorrupt {
					continue // corruption only makes sense on writes
				}
				return netDirective{kind: NetErr}
			}
			if r.kind == NetCorrupt {
				return netDirective{kind: NetCorrupt, flip: s.rng.Intn(writeLen), bit: uint(s.rng.Intn(8))}
			}
			return netDirective{kind: NetPartial, keep: s.rng.Intn(writeLen)}
		case NetDelay:
			d := time.Duration(0)
			if s.maxDelay > 0 {
				d = time.Duration(s.rng.Int63n(int64(s.maxDelay)))
			}
			return netDirective{kind: NetDelay, delay: d}
		default:
			return netDirective{kind: r.kind}
		}
	}
	return netDirective{}
}

// NetConn wraps a net.Conn, routing every Read and Write through the
// schedule.
type NetConn struct {
	net.Conn
	Sched *NetSchedule
}

// WrapConn builds a fault-injecting view of c.
func WrapConn(c net.Conn, s *NetSchedule) *NetConn { return &NetConn{Conn: c, Sched: s} }

// Read implements net.Conn.
func (c *NetConn) Read(p []byte) (int, error) {
	d := c.Sched.step(-1)
	switch d.kind {
	case NetErr, NetPartial:
		return 0, fmt.Errorf("read: %w", ErrInjected)
	case NetReset:
		_ = c.Conn.Close()
		return 0, fmt.Errorf("read: reset: %w", ErrInjected)
	case NetDelay:
		time.Sleep(d.delay)
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn. A NetPartial fault delivers a prefix and
// closes the connection (a frame torn mid-stream); a NetCorrupt fault
// flips one bit and delivers the rest intact.
func (c *NetConn) Write(p []byte) (int, error) {
	d := c.Sched.step(len(p))
	switch d.kind {
	case NetErr:
		return 0, fmt.Errorf("write: %w", ErrInjected)
	case NetPartial:
		n := 0
		if d.keep > 0 {
			n, _ = c.Conn.Write(p[:d.keep])
		}
		_ = c.Conn.Close()
		return n, fmt.Errorf("write: torn after %d/%d bytes: %w", n, len(p), ErrInjected)
	case NetReset:
		_ = c.Conn.Close()
		return 0, fmt.Errorf("write: reset: %w", ErrInjected)
	case NetCorrupt:
		buf := make([]byte, len(p))
		copy(buf, p)
		buf[d.flip] ^= 1 << d.bit
		return c.Conn.Write(buf)
	case NetDelay:
		time.Sleep(d.delay)
	}
	return c.Conn.Write(p)
}

// NetListener wraps a net.Listener: Accept is a countable operation and
// every accepted connection shares the schedule.
type NetListener struct {
	net.Listener
	Sched *NetSchedule
}

// WrapListener builds a fault-injecting view of ln.
func WrapListener(ln net.Listener, s *NetSchedule) *NetListener {
	return &NetListener{Listener: ln, Sched: s}
}

// Accept implements net.Listener.
func (l *NetListener) Accept() (net.Conn, error) {
	d := l.Sched.step(-1)
	switch d.kind {
	case NetErr, NetReset, NetPartial:
		return nil, fmt.Errorf("accept: %w", ErrInjected)
	case NetDelay:
		time.Sleep(d.delay)
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.Sched), nil
}

// Compile-time interface checks.
var (
	_ net.Conn     = (*NetConn)(nil)
	_ net.Listener = (*NetListener)(nil)
)
