package faultio

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeConns returns a connected in-memory pair.
func pipeConns() (net.Conn, net.Conn) { return net.Pipe() }

func TestNetConnWritePassThrough(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	s := NewNetSchedule(1)
	w := WrapConn(a, s)
	msg := []byte("hello, broker")
	go func() { _, _ = w.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
	if s.Ops() != 1 {
		t.Fatalf("ops = %d, want 1", s.Ops())
	}
}

func TestNetConnErrFault(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	s := NewNetSchedule(1)
	s.At(1, NetErr)
	w := WrapConn(a, s)
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// The connection survives an Err fault: the next write goes through.
	go func() { _, _ = w.Write([]byte("y")) }()
	got := make([]byte, 1)
	if _, err := io.ReadFull(b, got); err != nil || got[0] != 'y' {
		t.Fatalf("read after Err fault: %q, %v", got, err)
	}
}

func TestNetConnCorruptFlipsExactlyOneBit(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	s := NewNetSchedule(7)
	s.At(1, NetCorrupt)
	w := WrapConn(a, s)
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i)
	}
	go func() { _, _ = w.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	diffBits := 0
	for i := range msg {
		x := msg[i] ^ got[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corrupt fault flipped %d bits, want exactly 1", diffBits)
	}
}

func TestNetConnPartialTearsAndCloses(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	s := NewNetSchedule(3)
	s.At(1, NetPartial)
	w := WrapConn(a, s)
	msg := make([]byte, 256)
	errc := make(chan error, 1)
	go func() {
		_, err := w.Write(msg)
		errc <- err
	}()
	// The peer sees a prefix then EOF — a frame torn mid-stream.
	n, err := io.Copy(io.Discard, b)
	if err != nil && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("peer read: %v", err)
	}
	if n >= int64(len(msg)) {
		t.Fatalf("peer got %d bytes, want a strict prefix of %d", n, len(msg))
	}
	if werr := <-errc; !errors.Is(werr, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", werr)
	}
}

func TestNetConnResetClosesUnderlying(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	s := NewNetSchedule(1)
	s.At(1, NetReset)
	w := WrapConn(a, s)
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after reset, want closed")
	}
}

func TestNetScheduleEveryRecurs(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	s := NewNetSchedule(1)
	s.Every(3, NetErr)
	w := WrapConn(a, s)
	go io.Copy(io.Discard, b)
	fails := 0
	for i := 0; i < 9; i++ {
		if _, err := w.Write([]byte("x")); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("every-3 rule failed %d of 9 writes, want 3", fails)
	}
}

func TestNetScheduleDeterminism(t *testing.T) {
	run := func() []byte {
		a, b := pipeConns()
		defer a.Close()
		defer b.Close()
		s := NewNetSchedule(42)
		s.At(2, NetCorrupt)
		w := WrapConn(a, s)
		msg := make([]byte, 128)
		go func() {
			_, _ = w.Write(msg[:64])
			_, _ = w.Write(msg[64:])
		}()
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(b, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("same seed produced different corruption")
	}
}

func TestNetListenerWrapsAccepted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewNetSchedule(1)
	fln := WrapListener(ln, s)
	defer fln.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := fln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		if _, ok := c.(*NetConn); !ok {
			t.Errorf("accepted conn is %T, want *NetConn", c)
		}
		_, _ = io.Copy(io.Discard, c)
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Write([]byte("ping"))
	c.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("accept goroutine did not finish")
	}
	if s.Ops() == 0 {
		t.Fatal("listener operations were not counted")
	}
}

func TestNetListenerAcceptFault(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewNetSchedule(1)
	s.At(1, NetErr)
	fln := WrapListener(ln, s)
	defer fln.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			c.Close()
		}
	}()
	if _, err := fln.Accept(); !errors.Is(err, ErrInjected) {
		t.Fatalf("accept err = %v, want ErrInjected", err)
	}
}
