package faultio

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"

	"accluster/internal/store"
)

// MemFS is an in-memory filesystem with power-failure semantics: every file
// and every directory entry keeps a volatile view (what the running process
// observes) and a durable view (what would survive a crash). Writes and
// truncates are volatile until the file is synced; creates, renames and
// removes are volatile until the parent directory is synced — exactly the
// POSIX contract the atomic save paths must honor. Crash() materializes the
// durable view as a fresh filesystem, so a test can kill a save at an
// arbitrary point (via FS + Schedule) and reopen from precisely what a real
// power cut would have left.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*inode // volatile directory: path → inode
	dur   map[string]*inode // durable directory: path → inode
	dirs  map[string]bool   // created directories (durable immediately)
}

// inode is one file's storage. data is the volatile content; durable is the
// content as of the last Sync (nil = never synced ⇒ empty after crash).
type inode struct {
	data    []byte
	durable []byte
}

// NewMemFS returns an empty crash-simulating filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files: make(map[string]*inode),
		dur:   make(map[string]*inode),
		dirs:  map[string]bool{".": true, "/": true},
	}
}

// Clone deep-copies the filesystem, both views, preserving inode sharing;
// used by crash loops to restart every iteration from the same state.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	seen := make(map[*inode]*inode)
	cp := func(ino *inode) *inode {
		if ino == nil {
			return nil
		}
		if d, ok := seen[ino]; ok {
			return d
		}
		d := &inode{data: append([]byte(nil), ino.data...), durable: cloneBytes(ino.durable)}
		seen[ino] = d
		return d
	}
	for p, ino := range m.files {
		c.files[p] = cp(ino)
	}
	for p, ino := range m.dur {
		c.dur[p] = cp(ino)
	}
	for d := range m.dirs {
		c.dirs[d] = true
	}
	return c
}

// Crash returns the filesystem a power cut at this instant would leave:
// only durably-named entries exist, each holding only its last-synced
// content. The receiver is unchanged.
func (m *MemFS) Crash() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for p, ino := range m.dur {
		content := cloneBytes(ino.durable)
		if content == nil {
			content = []byte{}
		}
		c.files[p] = &inode{data: content, durable: append([]byte(nil), content...)}
		c.dur[p] = c.files[p]
	}
	for d := range m.dirs {
		c.dirs[d] = true
	}
	return c
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Exists reports whether path exists in the volatile view.
func (m *MemFS) Exists(path string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.files[filepath.Clean(path)]
	return ok
}

// Corrupt flips one byte of path's volatile and durable content, for
// bit-rot tests.
func (m *MemFS) Corrupt(path string, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.files[filepath.Clean(path)]
	if !ok {
		return fmt.Errorf("memfs: corrupt %s: %w", path, fs.ErrNotExist)
	}
	if off < 0 || off >= int64(len(ino.data)) {
		return fmt.Errorf("memfs: corrupt %s: offset %d out of range", path, off)
	}
	ino.data[off] ^= 0xFF
	if off < int64(len(ino.durable)) {
		ino.durable[off] ^= 0xFF
	}
	return nil
}

// Create implements store.FS. Truncation is volatile: the previous durable
// content survives a crash until the new content is synced.
func (m *MemFS) Create(path string) (store.File, error) {
	path = filepath.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.files[path]
	if !ok {
		ino = &inode{}
		m.files[path] = ino
	} else {
		ino.data = ino.data[:0]
	}
	return &memFile{fs: m, ino: ino}, nil
}

// Open implements store.FS.
func (m *MemFS) Open(path string) (store.File, error) {
	path = filepath.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: %w", path, fs.ErrNotExist)
	}
	return &memFile{fs: m, ino: ino}, nil
}

// Rename implements store.FS; the move is volatile until SyncDir.
func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.files[oldpath]
	if !ok {
		return fmt.Errorf("memfs: rename %s: %w", oldpath, fs.ErrNotExist)
	}
	delete(m.files, oldpath)
	m.files[newpath] = ino
	return nil
}

// Remove implements store.FS; the removal is volatile until SyncDir.
func (m *MemFS) Remove(path string) error {
	path = filepath.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("memfs: remove %s: %w", path, fs.ErrNotExist)
	}
	delete(m.files, path)
	return nil
}

// MkdirAll implements store.FS (directory creation is durable immediately;
// checkpoint crash-safety does not hinge on it).
func (m *MemFS) MkdirAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[filepath.Clean(path)] = true
	return nil
}

// SyncDir implements store.FS: the volatile name set under dir — including
// each name's current inode binding — becomes durable.
func (m *MemFS) SyncDir(dir string) error {
	dir = filepath.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := range m.dur {
		if filepath.Dir(p) == dir {
			if _, ok := m.files[p]; !ok {
				delete(m.dur, p)
			}
		}
	}
	for p, ino := range m.files {
		if filepath.Dir(p) == dir {
			m.dur[p] = ino
		}
	}
	return nil
}

// ReadDir implements store.FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	dir = filepath.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] {
		// A directory is also visible once any file exists under it.
		found := false
		for p := range m.files {
			if filepath.Dir(p) == dir {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("memfs: readdir %s: %w", dir, fs.ErrNotExist)
		}
	}
	var names []string
	for p := range m.files {
		if filepath.Dir(p) == dir {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements store.FS.
func (m *MemFS) ReadFile(path string) ([]byte, error) {
	path = filepath.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("memfs: read %s: %w", path, fs.ErrNotExist)
	}
	return append([]byte(nil), ino.data...), nil
}

// memFile is an open handle on a MemFS inode.
type memFile struct {
	fs  *MemFS
	ino *inode
}

// ReadAt implements store.Device.
func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 || off >= int64(len(f.ino.data)) {
		return 0, fmt.Errorf("memfs: read at %d beyond size %d", off, len(f.ino.data))
	}
	n := copy(p, f.ino.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("memfs: short read at %d", off)
	}
	return n, nil
}

// WriteAt implements store.Device; the write is volatile until Sync.
func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("memfs: negative offset")
	}
	end := off + int64(len(p))
	if end > int64(len(f.ino.data)) {
		grown := make([]byte, end)
		copy(grown, f.ino.data)
		f.ino.data = grown
	}
	copy(f.ino.data[off:], p)
	return len(p), nil
}

// Truncate implements store.Device; volatile until Sync.
func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("memfs: negative size")
	}
	if size <= int64(len(f.ino.data)) {
		f.ino.data = f.ino.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, f.ino.data)
	f.ino.data = grown
	return nil
}

// Size implements store.Device.
func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.ino.data)), nil
}

// Sync implements store.Device: the volatile content becomes the crash
// survivor.
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.ino.durable = append(f.ino.durable[:0], f.ino.data...)
	return nil
}

// Close implements store.File.
func (f *memFile) Close() error { return nil }

// Compile-time interface check.
var _ store.FS = (*MemFS)(nil)
