package faultio

import (
	"errors"
	"math/rand"
	"testing"

	"accluster/internal/core"
	"accluster/internal/geom"
	"accluster/internal/store"
	"accluster/internal/vdisk"
)

func buildIndex(t *testing.T, dims, n int, seed int64) *core.Index {
	t.Helper()
	ix, err := core.New(core.Config{Dims: dims, ReorgEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for id := 0; id < n; id++ {
		r := geom.NewRect(dims)
		for d := 0; d < dims; d++ {
			size := rng.Float32() * 0.3
			lo := rng.Float32() * (1 - size)
			r.Min[d], r.Max[d] = lo, lo+size
		}
		if err := ix.Insert(uint32(id), r); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

// TestSaveFilePowerFailLoop is the single-file crash harness: checkpoint vOld,
// then attempt to overwrite with vNew while crashing at every injectable I/O
// operation in turn. After each crash the surviving filesystem state must
// load as exactly vOld or exactly vNew — never a torn mix, never nothing.
func TestSaveFilePowerFailLoop(t *testing.T) {
	old := buildIndex(t, 3, 300, 11)
	new_ := buildIndex(t, 3, 520, 23)

	// Baseline filesystem: vOld durably saved.
	base := NewMemFS()
	if err := store.SaveFileFS(base, old, "db.acdb"); err != nil {
		t.Fatal(err)
	}

	// Count the ops of a full fault-free save of vNew.
	probe := NewSchedule(1)
	if err := store.SaveFileFS(WrapFS(base.Clone(), probe), new_, "db.acdb"); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 5 {
		t.Fatalf("implausibly few ops in a save: %d", total)
	}

	oldLen, newLen := old.Len(), new_.Len()
	for k := int64(1); k <= total; k++ {
		s := NewSchedule(k)
		s.SetFault(k, Crash)
		fsys := base.Clone()
		err := store.SaveFileFS(WrapFS(fsys, s), new_, "db.acdb")
		if err == nil {
			t.Fatalf("crash at op %d/%d: save reported success", k, total)
		}
		crashed := fsys.Crash()
		back, err := store.LoadFileFS(crashed, "db.acdb", core.Config{})
		if err != nil {
			t.Fatalf("crash at op %d/%d: no loadable checkpoint: %v", k, total, err)
		}
		if got := back.Len(); got != oldLen && got != newLen {
			t.Fatalf("crash at op %d/%d: loaded %d objects, want %d (old) or %d (new)",
				k, total, got, oldLen, newLen)
		}
		if err := back.CheckInvariants(); err != nil {
			t.Fatalf("crash at op %d/%d: surviving checkpoint invalid: %v", k, total, err)
		}
	}
}

// TestSaveFileTransientErrorKeepsOld pins error-path atomicity without a
// crash: an injected EIO mid-save must leave the previous checkpoint intact
// and loadable through the live (not crashed) filesystem.
func TestSaveFileTransientErrorKeepsOld(t *testing.T) {
	old := buildIndex(t, 2, 200, 5)
	new_ := buildIndex(t, 2, 380, 9)
	base := NewMemFS()
	if err := store.SaveFileFS(base, old, "db.acdb"); err != nil {
		t.Fatal(err)
	}
	probe := NewSchedule(1)
	if err := store.SaveFileFS(WrapFS(base.Clone(), probe), new_, "db.acdb"); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	for k := int64(1); k <= total; k++ {
		for _, kind := range []Kind{Err, ShortWrite} {
			s := NewSchedule(100 + k)
			s.SetFault(k, kind)
			fsys := base.Clone()
			err := store.SaveFileFS(WrapFS(fsys, s), new_, "db.acdb")
			if err == nil {
				// The fault hit an operation whose failure the save path
				// tolerates; there are none today, so flag it.
				t.Fatalf("fault %v at op %d/%d: save reported success", kind, k, total)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("fault %v at op %d: error chain lost the injection: %v", kind, k, err)
			}
			back, lerr := store.LoadFileFS(fsys, "db.acdb", core.Config{})
			if lerr != nil {
				t.Fatalf("fault %v at op %d/%d: previous checkpoint unreadable: %v", kind, k, total, lerr)
			}
			// A fault before the rename leaves the old checkpoint; a fault
			// on the final directory sync leaves the new one already in
			// place (only its durability is in doubt). Torn mixes never.
			if back.Len() != old.Len() && back.Len() != new_.Len() {
				t.Fatalf("fault %v at op %d: loaded %d objects, want %d or %d",
					kind, k, back.Len(), old.Len(), new_.Len())
			}
			// A failed save must not leave temp files behind.
			names, _ := fsys.ReadDir(".")
			for _, n := range names {
				if n != "db.acdb" {
					t.Fatalf("fault %v at op %d left residue %q", kind, k, n)
				}
			}
		}
	}
}

// TestDeviceFaultsOverVdiskAndMem pins composability: the fault wrapper
// behaves identically over any store.Device, and a save hit by an injected
// device error reports it rather than corrupting silently.
func TestDeviceFaultsOverVdiskAndMem(t *testing.T) {
	ix := buildIndex(t, 2, 150, 3)
	inners := map[string]store.Device{
		"mem":   store.NewMemDevice(),
		"vdisk": vdisk.New(0, 0),
	}
	for name, inner := range inners {
		s := NewSchedule(42)
		s.SetFault(4, Err)
		dev := WrapDevice(inner, s)
		if err := store.Save(ix, dev); !errors.Is(err, ErrInjected) {
			t.Fatalf("%s: save err = %v, want ErrInjected", name, err)
		}
		// Retry without faults on the same device succeeds and verifies.
		if err := store.Save(ix, WrapDevice(inner, NewSchedule(1))); err != nil {
			t.Fatalf("%s: clean retry failed: %v", name, err)
		}
		if err := store.Verify(inner); err != nil {
			t.Fatalf("%s: retried save does not verify: %v", name, err)
		}
	}
}
