// Package faultio injects deterministic I/O faults underneath the store's
// Device and FS abstractions, so the crash-safety of every checkpoint path
// can be proven rather than assumed. A Schedule counts the I/O operations
// flowing through wrapped devices and filesystems and fires one configured
// fault at the Nth operation:
//
//   - Err: the operation fails with ErrInjected and is not applied (a
//     transient EIO / full disk).
//   - ShortWrite: a write applies only a sector-aligned prefix before
//     failing with ErrInjected (a torn write on a lost power budget).
//   - Crash: the operation is torn like ShortWrite, then the schedule
//     enters the crashed state — every subsequent operation fails with
//     ErrCrashed, simulating the process dying at that exact point.
//
// The fault choice and torn-write lengths come from a seeded generator, so
// every run of a crash loop is reproducible. Device wraps any store.Device
// (FileDevice, MemDevice, vdisk.Disk); FS wraps any store.FS, covering the
// file-level operations — create, rename, remove, directory sync — of the
// atomic save paths. Combine FS with MemFS (a crash-simulating in-memory
// filesystem that drops unsynced state on crash) for full power-fail loops.
package faultio

import (
	"errors"
	"math/rand"
	"sync"

	"accluster/internal/store"
)

var (
	// ErrInjected is returned by an operation hit by an Err or ShortWrite
	// fault; the device and filesystem stay usable afterwards.
	ErrInjected = errors.New("faultio: injected I/O fault")
	// ErrCrashed is returned by every operation at and after a Crash
	// fault; nothing reaches the media once the schedule has crashed.
	ErrCrashed = errors.New("faultio: simulated crash")
)

// Kind selects what happens at the scheduled operation.
type Kind uint8

const (
	// None disables the fault: the schedule only counts operations.
	None Kind = iota
	// Err fails the operation without applying it.
	Err
	// ShortWrite applies a sector-aligned prefix of a write, then fails;
	// non-write operations fail unapplied.
	ShortWrite
	// Crash tears the operation like ShortWrite and permanently fails
	// everything after it.
	Crash
)

// SectorSize is the torn-write granularity: an interrupted write persists a
// whole number of sectors, as on real media.
const SectorSize = 512

// Schedule is the shared fault plan of a set of wrapped devices and
// filesystems. All methods are safe for concurrent use.
type Schedule struct {
	mu      sync.Mutex
	rng     *rand.Rand
	n       int64
	at      int64
	kind    Kind
	crashed bool
}

// NewSchedule returns a counting-only schedule; torn-write lengths drawn
// during faults are seeded for reproducibility.
func NewSchedule(seed int64) *Schedule {
	return &Schedule{rng: rand.New(rand.NewSource(seed))}
}

// SetFault arms the schedule: the n-th subsequent countable operation
// (1-based, counted across all wrapped devices and filesystems) suffers the
// given fault kind.
func (s *Schedule) SetFault(n int64, kind Kind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.at, s.kind = s.n+n, kind
}

// Ops returns the number of operations counted so far.
func (s *Schedule) Ops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Crashed reports whether a Crash fault has fired.
func (s *Schedule) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// step accounts one operation. writeLen is the byte length for writes and
// negative for everything else; keep is how many bytes of a torn write to
// apply before returning the error.
func (s *Schedule) step(writeLen int) (keep int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return 0, ErrCrashed
	}
	s.n++
	if s.kind == None || s.n != s.at {
		return 0, nil
	}
	switch s.kind {
	case Err:
		return 0, ErrInjected
	default: // ShortWrite, Crash
		if writeLen > 0 {
			keep = s.rng.Intn(writeLen)
			keep -= keep % SectorSize
		}
		if s.kind == Crash {
			s.crashed = true
			return keep, ErrCrashed
		}
		return keep, ErrInjected
	}
}

// checkAlive fails uncounted operations once crashed.
func (s *Schedule) checkAlive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	return nil
}

// Device wraps a store.Device, routing every read, write, truncate and sync
// through the schedule.
type Device struct {
	Inner store.Device
	Sched *Schedule
}

// WrapDevice builds a fault-injecting view of dev.
func WrapDevice(dev store.Device, s *Schedule) *Device { return &Device{Inner: dev, Sched: s} }

// ReadAt implements store.Device.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	if _, err := d.Sched.step(-1); err != nil {
		return 0, err
	}
	return d.Inner.ReadAt(p, off)
}

// WriteAt implements store.Device; a torn write persists a sector-aligned
// prefix before failing.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	keep, err := d.Sched.step(len(p))
	if err != nil {
		if keep > 0 {
			_, _ = d.Inner.WriteAt(p[:keep], off)
		}
		return keep, err
	}
	return d.Inner.WriteAt(p, off)
}

// Truncate implements store.Device.
func (d *Device) Truncate(size int64) error {
	if _, err := d.Sched.step(-1); err != nil {
		return err
	}
	return d.Inner.Truncate(size)
}

// Size implements store.Device (metadata queries are not counted as fault
// points, but fail once crashed).
func (d *Device) Size() (int64, error) {
	if err := d.Sched.checkAlive(); err != nil {
		return 0, err
	}
	return d.Inner.Size()
}

// Sync implements store.Device.
func (d *Device) Sync() error {
	if _, err := d.Sched.step(-1); err != nil {
		return err
	}
	return d.Inner.Sync()
}

// file wraps a store.File of a wrapped FS.
type file struct {
	Device
	inner store.File
}

func (f *file) Close() error {
	if err := f.Sched.checkAlive(); err != nil {
		return err
	}
	return f.inner.Close()
}

// FS wraps a store.FS, counting and fault-injecting the file-level
// operations of the atomic save paths. Files it opens share the schedule.
type FS struct {
	Inner store.FS
	Sched *Schedule
}

// WrapFS builds a fault-injecting view of fsys.
func WrapFS(fsys store.FS, s *Schedule) *FS { return &FS{Inner: fsys, Sched: s} }

// Create implements store.FS.
func (f *FS) Create(path string) (store.File, error) {
	if _, err := f.Sched.step(-1); err != nil {
		return nil, err
	}
	inner, err := f.Inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &file{Device: Device{Inner: inner, Sched: f.Sched}, inner: inner}, nil
}

// Open implements store.FS.
func (f *FS) Open(path string) (store.File, error) {
	if _, err := f.Sched.step(-1); err != nil {
		return nil, err
	}
	inner, err := f.Inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &file{Device: Device{Inner: inner, Sched: f.Sched}, inner: inner}, nil
}

// Rename implements store.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if _, err := f.Sched.step(-1); err != nil {
		return err
	}
	return f.Inner.Rename(oldpath, newpath)
}

// Remove implements store.FS.
func (f *FS) Remove(path string) error {
	if _, err := f.Sched.step(-1); err != nil {
		return err
	}
	return f.Inner.Remove(path)
}

// MkdirAll implements store.FS.
func (f *FS) MkdirAll(path string) error {
	if _, err := f.Sched.step(-1); err != nil {
		return err
	}
	return f.Inner.MkdirAll(path)
}

// SyncDir implements store.FS.
func (f *FS) SyncDir(dir string) error {
	if _, err := f.Sched.step(-1); err != nil {
		return err
	}
	return f.Inner.SyncDir(dir)
}

// ReadDir implements store.FS.
func (f *FS) ReadDir(dir string) ([]string, error) {
	if _, err := f.Sched.step(-1); err != nil {
		return nil, err
	}
	return f.Inner.ReadDir(dir)
}

// ReadFile implements store.FS.
func (f *FS) ReadFile(path string) ([]byte, error) {
	if _, err := f.Sched.step(-1); err != nil {
		return nil, err
	}
	return f.Inner.ReadFile(path)
}

// Compile-time interface checks.
var (
	_ store.Device = (*Device)(nil)
	_ store.FS     = (*FS)(nil)
	_ store.File   = (*file)(nil)
)
