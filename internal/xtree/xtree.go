// Package xtree implements the X-tree (Berchtold, Keim, Kriegel, VLDB 1996),
// the high-dimensional R-tree variant the paper discusses in its related
// work (§2): when a node split would create heavily overlapping directory
// rectangles, the X-tree refuses to split and extends the node into a
// *supernode* spanning multiple pages, trading fan-out for sequential scans
// of larger node regions. In very high dimensions the tree degenerates
// toward a single large supernode — i.e. toward sequential scan — which is
// exactly the behaviour the paper's adaptive clustering sidesteps by not
// bounding objects at all.
//
// The implementation follows the published algorithm with the customary
// simplifications: R*-style topological split as the primary split, an
// overlap-free split attempt along a dimension of the node's split history
// when the topological split overlaps too much (threshold MaxOverlap,
// default 0.2), and supernode extension when neither yields a balanced
// low-overlap partition.
package xtree

import (
	"fmt"
	"math"
	"sort"

	"accluster/internal/cost"
	"accluster/internal/geom"
)

// Config parameterizes an X-tree.
type Config struct {
	// Dims is the data space dimensionality (required).
	Dims int
	// PageSize is the base node page size in bytes; default 16384.
	PageSize int
	// MinFill is the minimum utilization for split groups as a fraction
	// of the single-page fan-out; default 0.4.
	MinFill float64
	// MaxOverlap is the overlap fraction above which a topological split
	// is rejected; default 0.2 (the X-tree paper's MAX_OVERLAP).
	MaxOverlap float64
}

func (c *Config) setDefaults() error {
	if c.Dims < 1 {
		return fmt.Errorf("xtree: invalid dimensionality %d", c.Dims)
	}
	if c.PageSize == 0 {
		c.PageSize = 16384
	}
	if c.MinFill == 0 {
		c.MinFill = 0.4
	}
	if c.MaxOverlap == 0 {
		c.MaxOverlap = 0.2
	}
	if c.MinFill <= 0 || c.MinFill > 0.5 {
		return fmt.Errorf("xtree: MinFill must be in (0,0.5], got %g", c.MinFill)
	}
	if c.MaxOverlap <= 0 || c.MaxOverlap >= 1 {
		return fmt.Errorf("xtree: MaxOverlap must be in (0,1), got %g", c.MaxOverlap)
	}
	if c.PageSize < 4*geom.ObjectBytes(c.Dims) {
		return fmt.Errorf("xtree: page size %d too small for %d dims", c.PageSize, c.Dims)
	}
	return nil
}

type entry struct {
	rect  geom.Rect
	child *node
	id    uint32
}

// node is an X-tree node; pages > 1 makes it a supernode.
type node struct {
	level    int
	pages    int
	entries  []entry
	splitDim int // last split dimension (split history), -1 if never split
}

func (n *node) leaf() bool { return n.level == 0 }

func (n *node) mbr() geom.Rect {
	r := n.entries[0].rect.Clone()
	for _, e := range n.entries[1:] {
		r.Extend(e.rect)
	}
	return r
}

// Tree is an X-tree over multidimensional extended objects. It is not safe
// for concurrent use: every operation holds the caller's exclusive lock, so
// the embedded cost meter is written directly.
//
//ac:serialmeter
type Tree struct {
	cfg        Config
	perPage    int // entries per page
	minEntries int

	root       *node
	size       int
	nodes      int
	supernodes int

	rects map[uint32]geom.Rect
	meter cost.Meter
}

// New builds an empty X-tree.
func New(cfg Config) (*Tree, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	per := cfg.PageSize / geom.ObjectBytes(cfg.Dims)
	t := &Tree{
		cfg:        cfg,
		perPage:    per,
		minEntries: int(float64(per) * cfg.MinFill),
		root:       &node{level: 0, pages: 1, splitDim: -1},
		nodes:      1,
		rects:      make(map[uint32]geom.Rect),
	}
	if t.minEntries < 1 {
		t.minEntries = 1
	}
	return t, nil
}

// Dims returns the data space dimensionality.
func (t *Tree) Dims() int { return t.cfg.Dims }

// Len returns the number of stored objects.
func (t *Tree) Len() int { return t.size }

// Nodes returns the number of tree nodes.
func (t *Tree) Nodes() int { return t.nodes }

// Supernodes returns the number of nodes spanning more than one page.
func (t *Tree) Supernodes() int { return t.supernodes }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.root.level + 1 }

// Meter returns the accumulated operation counters.
func (t *Tree) Meter() cost.Meter { return t.meter }

// ResetMeter zeroes the operation counters.
func (t *Tree) ResetMeter() { t.meter.Reset() }

// Get returns the rectangle stored under id.
func (t *Tree) Get(id uint32) (geom.Rect, bool) {
	r, ok := t.rects[id]
	return r, ok
}

// capacity is the entry limit of a node given its page count.
func (t *Tree) capacity(n *node) int { return n.pages * t.perPage }

// Insert adds an object.
func (t *Tree) Insert(id uint32, r geom.Rect) error {
	if r.Dims() != t.cfg.Dims {
		return fmt.Errorf("xtree: object has %d dims, tree has %d", r.Dims(), t.cfg.Dims)
	}
	if !r.Valid() {
		return fmt.Errorf("xtree: invalid rectangle %v", r)
	}
	if _, dup := t.rects[id]; dup {
		return fmt.Errorf("xtree: duplicate object id %d", id)
	}
	t.rects[id] = r.Clone()
	t.insertAtLevel(entry{rect: r.Clone(), id: id}, 0)
	t.size++
	return nil
}

func (t *Tree) insertAtLevel(e entry, level int) {
	path := []*node{t.root}
	n := t.root
	for n.level > level {
		i := chooseSubtree(n, e.rect)
		n.entries[i].rect.Extend(e.rect)
		n = n.entries[i].child
		path = append(path, n)
	}
	n.entries = append(n.entries, e)
	for i := len(path) - 1; i >= 0; i-- {
		nd := path[i]
		if len(nd.entries) <= t.capacity(nd) {
			break
		}
		nn, ok := t.trySplit(nd)
		if !ok {
			// Supernode extension: the node absorbs one more page.
			if nd.pages == 1 {
				t.supernodes++
			}
			nd.pages++
			break
		}
		t.nodes++
		if nd == t.root {
			t.root = &node{
				level: nd.level + 1,
				pages: 1,
				entries: []entry{
					{rect: nd.mbr(), child: nd},
					{rect: nn.mbr(), child: nn},
				},
				splitDim: -1,
			}
			t.nodes++
			break
		}
		parent := path[i-1]
		for k := range parent.entries {
			if parent.entries[k].child == nd {
				parent.entries[k].rect = nd.mbr()
				break
			}
		}
		parent.entries = append(parent.entries, entry{rect: nn.mbr(), child: nn})
	}
}

// chooseSubtree picks the child with minimum enlargement (ties: area).
func chooseSubtree(n *node, r geom.Rect) int {
	best, bestEnl, bestArea := -1, 0.0, 0.0
	for i := range n.entries {
		enl := n.entries[i].rect.Enlargement(r)
		area := n.entries[i].rect.Volume()
		if best < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// trySplit attempts the X-tree split cascade: topological split, then an
// overlap-minimal split along the split history; returns (nil, false) when
// only a supernode extension remains.
func (t *Tree) trySplit(n *node) (*node, bool) {
	axis, cut, order := t.topologicalSplit(n)
	applyOrder(n.entries, order)
	bb1, bb2 := boundsOf(n.entries[:cut]), boundsOf(n.entries[cut:])
	if overlapFraction(bb1, bb2) <= t.cfg.MaxOverlap {
		return t.finishSplit(n, cut, axis), true
	}
	// Overlap-minimal split: a dimension where an overlap-free, balanced
	// cut exists (the split history seeds the search; for robustness all
	// dimensions are examined, history dimension first).
	dims := make([]int, 0, t.cfg.Dims)
	if n.splitDim >= 0 {
		dims = append(dims, n.splitDim)
	}
	for d := 0; d < t.cfg.Dims; d++ {
		if d != n.splitDim {
			dims = append(dims, d)
		}
	}
	for _, d := range dims {
		if cut, ok := t.overlapFreeCut(n, d); ok {
			return t.finishSplit(n, cut, d), true
		}
	}
	return nil, false
}

// topologicalSplit runs the R*-tree margin/overlap split choice and returns
// the winning axis, cut position and entry order.
func (t *Tree) topologicalSplit(n *node) (axis, cut int, order []int) {
	m := t.minEntries
	total := len(n.entries)
	maxK := total - 2*m + 1
	if maxK < 1 {
		maxK = 1
		m = total / 2
	}
	bestAxis, bestMargin := 0, math.Inf(1)
	for a := 0; a < t.cfg.Dims; a++ {
		idx := sortedIdx(n.entries, a)
		prefix, suffix := sweep(n.entries, idx)
		margin := 0.0
		for k := 1; k <= maxK; k++ {
			c := m - 1 + k
			margin += prefix[c-1].Margin() + suffix[c].Margin()
		}
		if margin < bestMargin {
			bestAxis, bestMargin = a, margin
		}
	}
	idx := sortedIdx(n.entries, bestAxis)
	prefix, suffix := sweep(n.entries, idx)
	bestCut, bestOverlap, bestArea := m, math.Inf(1), math.Inf(1)
	for k := 1; k <= maxK; k++ {
		c := m - 1 + k
		over := prefix[c-1].IntersectionVolume(suffix[c])
		area := prefix[c-1].Volume() + suffix[c].Volume()
		if over < bestOverlap || (over == bestOverlap && area < bestArea) {
			bestCut, bestOverlap, bestArea = c, over, area
		}
	}
	return bestAxis, bestCut, idx
}

// overlapFreeCut looks for a balanced cut along dimension d with zero
// overlap between the two groups.
func (t *Tree) overlapFreeCut(n *node, d int) (int, bool) {
	idx := sortedIdx(n.entries, d)
	applyOrder(n.entries, idx)
	total := len(n.entries)
	maxHi := make([]float32, total)
	acc := float32(0)
	for i, e := range n.entries {
		if i == 0 || e.rect.Max[d] > acc {
			acc = e.rect.Max[d]
		}
		maxHi[i] = acc
	}
	for cut := t.minEntries; cut <= total-t.minEntries; cut++ {
		if maxHi[cut-1] <= n.entries[cut].rect.Min[d] {
			return cut, true
		}
	}
	return 0, false
}

// pagesFor returns the pages needed for n entries (at least one).
func (t *Tree) pagesFor(n int) int {
	p := (n + t.perPage - 1) / t.perPage
	if p < 1 {
		p = 1
	}
	return p
}

// finishSplit divides n at cut (entries already ordered), records the split
// history, resizes both halves' page counts (splitting a large supernode can
// leave halves that still span several pages) and returns the new sibling.
func (t *Tree) finishSplit(n *node, cut, axis int) *node {
	nn := &node{level: n.level, splitDim: axis}
	nn.entries = append(nn.entries, n.entries[cut:]...)
	tail := n.entries[cut:]
	for i := range tail {
		tail[i] = entry{}
	}
	n.entries = n.entries[:cut]
	n.splitDim = axis
	wasSuper := n.pages > 1
	n.pages = t.pagesFor(len(n.entries))
	nn.pages = t.pagesFor(len(nn.entries))
	if wasSuper && n.pages == 1 {
		t.supernodes--
	}
	if !wasSuper && n.pages > 1 {
		t.supernodes++
	}
	if nn.pages > 1 {
		t.supernodes++
	}
	return nn
}

// sortedIdx returns entry indexes ordered by (lo, hi) on the axis.
func sortedIdx(es []entry, axis int) []int {
	idx := make([]int, len(es))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := es[idx[a]].rect, es[idx[b]].rect
		if ra.Min[axis] != rb.Min[axis] {
			return ra.Min[axis] < rb.Min[axis]
		}
		return ra.Max[axis] < rb.Max[axis]
	})
	return idx
}

// applyOrder permutes es into the given index order.
func applyOrder(es []entry, idx []int) {
	tmp := make([]entry, len(es))
	for i, k := range idx {
		tmp[i] = es[k]
	}
	copy(es, tmp)
}

// sweep returns prefix/suffix bounding boxes for the index order.
func sweep(es []entry, idx []int) (prefix, suffix []geom.Rect) {
	prefix = make([]geom.Rect, len(es))
	suffix = make([]geom.Rect, len(es)+1)
	acc := es[idx[0]].rect.Clone()
	prefix[0] = acc.Clone()
	for i := 1; i < len(es); i++ {
		acc.Extend(es[idx[i]].rect)
		prefix[i] = acc.Clone()
	}
	acc = es[idx[len(es)-1]].rect.Clone()
	suffix[len(es)-1] = acc.Clone()
	for i := len(es) - 2; i >= 0; i-- {
		acc = acc.Union(es[idx[i]].rect)
		suffix[i] = acc
	}
	return prefix, suffix
}

// boundsOf returns the MBB of a group of entries.
func boundsOf(es []entry) geom.Rect {
	r := es[0].rect.Clone()
	for _, e := range es[1:] {
		r.Extend(e.rect)
	}
	return r
}

// overlapFraction is the X-tree overlap measure: intersection volume over
// the smaller group volume (0 when either group has zero volume).
func overlapFraction(a, b geom.Rect) float64 {
	inter := a.IntersectionVolume(b)
	if inter == 0 {
		return 0
	}
	den := math.Min(a.Volume(), b.Volume())
	if den == 0 {
		return 1
	}
	f := inter / den
	if f > 1 {
		f = 1
	}
	return f
}
