package xtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"accluster/internal/geom"
)

func randomRect(rng *rand.Rand, dims int, maxSize float32) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		size := rng.Float32() * maxSize
		lo := rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dims: 0}); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := New(Config{Dims: 2, MinFill: 0.9}); err == nil {
		t.Error("MinFill > 0.5 must fail")
	}
	if _, err := New(Config{Dims: 2, MaxOverlap: 1.5}); err == nil {
		t.Error("MaxOverlap ≥ 1 must fail")
	}
	if _, err := New(Config{Dims: 40, PageSize: 64}); err == nil {
		t.Error("tiny page must fail")
	}
}

func TestInsertValidation(t *testing.T) {
	tr, err := New(Config{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := geom.Rect{Min: []float32{0.1, 0.1}, Max: []float32{0.2, 0.2}}
	if err := tr.Insert(1, r); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, r); err == nil {
		t.Error("duplicate must fail")
	}
	if err := tr.Insert(2, geom.Point([]float32{0.5})); err == nil {
		t.Error("wrong dims must fail")
	}
	if err := tr.Insert(3, geom.Rect{Min: []float32{0.9, 0}, Max: []float32{0.1, 1}}); err == nil {
		t.Error("invalid rect must fail")
	}
}

func TestDifferentialSearch(t *testing.T) {
	for _, dims := range []int{2, 6, 12} {
		rng := rand.New(rand.NewSource(int64(dims)))
		tr, err := New(Config{Dims: dims, PageSize: 48 * geom.ObjectBytes(dims) / 4})
		if err != nil {
			t.Fatal(err)
		}
		type obj struct {
			id uint32
			r  geom.Rect
		}
		var objs []obj
		for id := uint32(0); id < 1200; id++ {
			r := randomRect(rng, dims, 0.5)
			objs = append(objs, obj{id, r})
			if err := tr.Insert(id, r); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 90; qi++ {
			q := randomRect(rng, dims, 0.6)
			rel := geom.Relation(qi % 3)
			got, err := tr.SearchIDs(q, rel)
			if err != nil {
				t.Fatal(err)
			}
			var want []uint32
			for _, o := range objs {
				if o.r.Matches(rel, q) {
					want = append(want, o.id)
				}
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("dims=%d rel=%v: %d results, want %d", dims, rel, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("dims=%d rel=%v: mismatch", dims, rel)
				}
			}
		}
	}
}

func TestSupernodesFormInHighDims(t *testing.T) {
	// Heavily overlapping extended objects in many dimensions defeat
	// low-overlap splits: supernodes must appear (the X-tree's defining
	// degradation toward sequential scan).
	tr, err := New(Config{Dims: 16, PageSize: 16 * geom.ObjectBytes(16) / 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for id := uint32(0); id < 3000; id++ {
		if err := tr.Insert(id, randomRect(rng, 16, 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Supernodes() == 0 {
		t.Error("expected supernodes with overlapping high-dimensional data")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Low-dimensional point-like data should split normally instead.
	tr2, err := New(Config{Dims: 2, PageSize: 16 * geom.ObjectBytes(2)})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(0); id < 3000; id++ {
		if err := tr2.Insert(id, randomRect(rng, 2, 0.01)); err != nil {
			t.Fatal(err)
		}
	}
	if tr2.Nodes() < 10 {
		t.Errorf("2-dim point data should split into many nodes, got %d", tr2.Nodes())
	}
	if float64(tr2.Supernodes()) > 0.2*float64(tr2.Nodes()) {
		t.Errorf("too many supernodes for easy data: %d of %d", tr2.Supernodes(), tr2.Nodes())
	}
}

func TestSupernodeTransferAccounting(t *testing.T) {
	tr, err := New(Config{Dims: 8, PageSize: 16 * geom.ObjectBytes(8) / 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for id := uint32(0); id < 1000; id++ {
		if err := tr.Insert(id, randomRect(rng, 8, 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	tr.ResetMeter()
	if _, err := tr.Count(randomRect(rng, 8, 0.5), geom.Intersects); err != nil {
		t.Fatal(err)
	}
	m := tr.Meter()
	if m.Seeks != m.Explorations {
		t.Fatalf("one seek per node access: %v", m)
	}
	// Transfer must be at least one page per access, more when
	// supernodes were read.
	if m.BytesTransferred < m.Explorations*int64(tr.cfg.PageSize) {
		t.Fatalf("transfer accounting: %v", m)
	}
}

func TestStatefulModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(5) + 1
		tr, err := New(Config{Dims: dims, PageSize: geom.ObjectBytes(dims) * (8 + rng.Intn(16))})
		if err != nil {
			return false
		}
		model := make(map[uint32]geom.Rect)
		nextID := uint32(0)
		for op := 0; op < 500; op++ {
			switch k := rng.Intn(10); {
			case k < 5:
				r := randomRect(rng, dims, 0.6)
				if err := tr.Insert(nextID, r); err != nil {
					return false
				}
				model[nextID] = r
				nextID++
			case k < 8:
				if len(model) == 0 {
					continue
				}
				var id uint32
				for id = range model {
					break
				}
				if !tr.Delete(id) {
					return false
				}
				delete(model, id)
			default:
				q := randomRect(rng, dims, 0.5)
				rel := geom.Relation(rng.Intn(3))
				got, err := tr.Count(q, rel)
				if err != nil {
					return false
				}
				want := 0
				for _, r := range model {
					if r.Matches(rel, q) {
						want++
					}
				}
				if got != want {
					t.Logf("seed %d op %d: %d vs %d", seed, op, got, want)
					return false
				}
			}
			if op%125 == 124 {
				if err := tr.CheckInvariants(); err != nil {
					t.Logf("seed %d op %d: %v", seed, op, err)
					return false
				}
			}
		}
		return tr.Len() == len(model) && tr.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGetAndValidation(t *testing.T) {
	tr, _ := New(Config{Dims: 2})
	r := geom.Rect{Min: []float32{0.1, 0.2}, Max: []float32{0.3, 0.4}}
	if err := tr.Insert(9, r); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Get(9)
	if !ok || !got.Equal(r) {
		t.Fatal("Get")
	}
	if _, ok := tr.Get(10); ok {
		t.Error("absent id")
	}
	if tr.Delete(10) {
		t.Error("absent delete")
	}
	if err := tr.Search(geom.Point([]float32{0.5}), geom.Intersects, func(uint32) bool { return true }); err == nil {
		t.Error("wrong dims must fail")
	}
	if err := tr.Search(geom.Point([]float32{0.5, 0.5}), geom.Relation(8), func(uint32) bool { return true }); err == nil {
		t.Error("bad relation must fail")
	}
	if tr.Dims() != 2 || tr.Height() != 1 {
		t.Error("metadata")
	}
}
