package xtree

import (
	"fmt"

	"accluster/internal/geom"
)

// matchCount evaluates rel with early exit, counting inspected dimensions.
func matchCount(o, q geom.Rect, rel geom.Relation) (bool, int) {
	switch rel {
	case geom.Intersects:
		for d := range o.Min {
			if o.Min[d] > q.Max[d] || q.Min[d] > o.Max[d] {
				return false, d + 1
			}
		}
	case geom.ContainedBy:
		for d := range o.Min {
			if o.Min[d] < q.Min[d] || o.Max[d] > q.Max[d] {
				return false, d + 1
			}
		}
	case geom.Encloses:
		for d := range o.Min {
			if o.Min[d] > q.Min[d] || o.Max[d] < q.Max[d] {
				return false, d + 1
			}
		}
	default:
		return false, 0
	}
	return true, len(o.Min)
}

// Search walks the tree. A node access costs one random seek plus the
// sequential transfer of all its pages — supernodes amortize the seek over
// more data, which is the X-tree's design point.
func (t *Tree) Search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error {
	if q.Dims() != t.cfg.Dims {
		return fmt.Errorf("xtree: query has %d dims, tree has %d", q.Dims(), t.cfg.Dims)
	}
	if !rel.Valid() {
		return fmt.Errorf("xtree: invalid relation %v", rel)
	}
	t.meter.Queries++
	t.searchNode(t.root, q, rel, emit)
	return nil
}

func (t *Tree) searchNode(n *node, q geom.Rect, rel geom.Relation, emit func(id uint32) bool) bool {
	t.meter.Explorations++
	t.meter.Seeks++
	t.meter.BytesTransferred += int64(n.pages) * int64(t.cfg.PageSize)
	if n.leaf() {
		for i := range n.entries {
			t.meter.ObjectsVerified++
			ok, checked := matchCount(n.entries[i].rect, q, rel)
			t.meter.BytesVerified += int64(checked) * 8
			if ok {
				t.meter.Results++
				if !emit(n.entries[i].id) {
					return false
				}
			}
		}
		return true
	}
	prel := rel
	if rel != geom.Encloses {
		prel = geom.Intersects
	}
	for i := range n.entries {
		ok, checked := matchCount(n.entries[i].rect, q, prel)
		t.meter.BytesVerified += int64(checked) * 8
		if !ok {
			continue
		}
		if !t.searchNode(n.entries[i].child, q, rel, emit) {
			return false
		}
	}
	return true
}

// Count returns the number of objects satisfying the selection.
func (t *Tree) Count(q geom.Rect, rel geom.Relation) (int, error) {
	n := 0
	err := t.Search(q, rel, func(uint32) bool { n++; return true })
	return n, err
}

// SearchIDs collects the identifiers of all qualifying objects.
func (t *Tree) SearchIDs(q geom.Rect, rel geom.Relation) ([]uint32, error) {
	var out []uint32
	err := t.Search(q, rel, func(id uint32) bool { out = append(out, id); return true })
	return out, err
}

// Delete removes the object with the given id. Underflowing nodes are
// dissolved and their entries reinserted at their level; the root shrinks
// when reduced to a single child.
func (t *Tree) Delete(id uint32) bool {
	r, ok := t.rects[id]
	if !ok {
		return false
	}
	path := t.findLeafPath(t.root, r, id)
	if path == nil {
		delete(t.rects, id)
		return false
	}
	leaf := path[len(path)-1]
	for i := range leaf.entries {
		if leaf.entries[i].child == nil && leaf.entries[i].id == id {
			leaf.entries[i] = leaf.entries[len(leaf.entries)-1]
			leaf.entries[len(leaf.entries)-1] = entry{}
			leaf.entries = leaf.entries[:len(leaf.entries)-1]
			break
		}
	}
	delete(t.rects, id)
	t.size--

	type orphan struct {
		level int
		e     entry
	}
	var orphans []orphan
	for i := len(path) - 1; i >= 1; i-- {
		n, parent := path[i], path[i-1]
		// Supernodes shrink when entries fit fewer pages again.
		for n.pages > 1 && len(n.entries) <= (n.pages-1)*t.perPage {
			n.pages--
			if n.pages == 1 {
				t.supernodes--
			}
		}
		if len(n.entries) < t.minEntries {
			for k := range parent.entries {
				if parent.entries[k].child == n {
					parent.entries[k] = parent.entries[len(parent.entries)-1]
					parent.entries[len(parent.entries)-1] = entry{}
					parent.entries = parent.entries[:len(parent.entries)-1]
					break
				}
			}
			t.nodes--
			if n.pages > 1 {
				t.supernodes--
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{level: n.level, e: e})
			}
		} else {
			for k := range parent.entries {
				if parent.entries[k].child == n {
					parent.entries[k].rect = n.mbr()
					break
				}
			}
		}
	}
	for _, o := range orphans {
		t.insertAtLevel(o.e, o.level)
	}
	for !t.root.leaf() && len(t.root.entries) == 1 {
		old := t.root
		t.root = old.entries[0].child
		t.nodes--
		if old.pages > 1 {
			t.supernodes--
		}
	}
	return true
}

func (t *Tree) findLeafPath(n *node, r geom.Rect, id uint32) []*node {
	if n.leaf() {
		for i := range n.entries {
			if n.entries[i].id == id {
				return []*node{n}
			}
		}
		return nil
	}
	for i := range n.entries {
		if !n.entries[i].rect.Encloses(r) {
			continue
		}
		if sub := t.findLeafPath(n.entries[i].child, r, id); sub != nil {
			return append([]*node{n}, sub...)
		}
	}
	return nil
}

// CheckInvariants validates structure: uniform leaf depth, capacities
// respected, exact parent MBBs, size consistency. Intended for tests.
func (t *Tree) CheckInvariants() error {
	count := 0
	super := 0
	total := 0
	var walk func(n *node, isRoot bool) error
	walk = func(n *node, isRoot bool) error {
		total++
		if n.pages > 1 {
			super++
		}
		if n.pages < 1 {
			return fmt.Errorf("node with %d pages", n.pages)
		}
		if len(n.entries) > t.capacity(n) {
			return fmt.Errorf("node exceeds capacity: %d > %d", len(n.entries), t.capacity(n))
		}
		if !isRoot && len(n.entries) == 0 {
			return fmt.Errorf("empty non-root node")
		}
		if n.leaf() {
			for i := range n.entries {
				if n.entries[i].child != nil {
					return fmt.Errorf("leaf entry with child")
				}
				stored, ok := t.rects[n.entries[i].id]
				if !ok || !stored.Equal(n.entries[i].rect) {
					return fmt.Errorf("leaf entry %d disagrees with map", n.entries[i].id)
				}
				count++
			}
			return nil
		}
		for i := range n.entries {
			c := n.entries[i].child
			if c == nil {
				return fmt.Errorf("internal entry without child")
			}
			if c.level != n.level-1 {
				return fmt.Errorf("level mismatch")
			}
			if !n.entries[i].rect.Equal(c.mbr()) {
				return fmt.Errorf("stale parent MBB")
			}
			if err := walk(c, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, true); err != nil {
		return err
	}
	if count != t.size || count != len(t.rects) {
		return fmt.Errorf("size mismatch: size=%d entries=%d map=%d", t.size, count, len(t.rects))
	}
	if total != t.nodes {
		return fmt.Errorf("node counter %d, walked %d", t.nodes, total)
	}
	if super != t.supernodes {
		return fmt.Errorf("supernode counter %d, walked %d", t.supernodes, super)
	}
	return nil
}
