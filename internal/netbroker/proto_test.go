package netbroker

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"testing"

	"accluster/internal/pubsub"
	"accluster/internal/store"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("some payload bytes")
	buf := appendFrame(nil, fPublish, payload)
	f, _, err := readFrame(bufio.NewReader(bytes.NewReader(buf)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != fPublish || !bytes.Equal(f.payload, payload) {
		t.Fatalf("round trip: type %d payload %q", f.typ, f.payload)
	}
}

func TestFrameEveryBitFlipRejected(t *testing.T) {
	// Any single-bit flip anywhere in the frame must be rejected (CRC or
	// length/type checks), never silently decoded into a different frame.
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	good := appendFrame(nil, fEvent, payload)
	for byteIx := 0; byteIx < len(good); byteIx++ {
		for bit := 0; bit < 8; bit++ {
			bad := bytes.Clone(good)
			bad[byteIx] ^= 1 << bit
			f, _, err := readFrame(bufio.NewReader(bytes.NewReader(bad)), nil)
			if err == nil && f.typ == fEvent && bytes.Equal(f.payload, payload) {
				t.Fatalf("flip byte %d bit %d: decoded unchanged", byteIx, bit)
			}
		}
	}
}

func TestFrameCRCMismatchWrapsSentinel(t *testing.T) {
	buf := appendFrame(nil, fEvent, []byte("payload"))
	buf[7] ^= 0x10 // damage the payload, leave length intact
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader(buf)), nil)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("err = %v, want ErrCorruptFrame", err)
	}
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("err = %v, want store.ErrCorrupt in the chain", err)
	}
}

func TestFrameImplausibleLengthRejected(t *testing.T) {
	buf := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader(buf)), nil)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("err = %v, want ErrCorruptFrame", err)
	}
}

func TestRangesRoundTrip(t *testing.T) {
	in := map[string]pubsub.Range{
		"price": {Lo: 400, Hi: 700},
		"rooms": {Lo: 3, Hi: 5},
		"x":     {Lo: -math.MaxFloat64, Hi: math.Inf(1)},
		"":      {Lo: 0, Hi: 0},
	}
	buf := appendRanges(nil, in)
	out, rest, err := decodeRanges(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if len(out) != len(in) {
		t.Fatalf("got %d entries, want %d", len(out), len(in))
	}
	for k, v := range in {
		if out[k] != v {
			t.Fatalf("entry %q = %v, want %v", k, out[k], v)
		}
	}
}

func TestDecodeRangesTruncationRejected(t *testing.T) {
	buf := appendRanges(nil, map[string]pubsub.Range{"price": {Lo: 1, Hi: 2}})
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := decodeRanges(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded cleanly", cut)
		} else if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorruptFrame", cut, err)
		}
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	in := pubsub.Schema{
		{Name: "dist", Min: 0, Max: 100},
		{Name: "price", Min: -5, Max: 5000},
	}
	out, err := decodeSchema(appendSchema(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d attrs, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("attr %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestCheckHello(t *testing.T) {
	if err := checkHello(helloPayload()); err != nil {
		t.Fatalf("valid hello rejected: %v", err)
	}
	bad := helloPayload()
	bad[0] ^= 1
	if err := checkHello(bad); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("bad magic: err = %v, want ErrCorruptFrame", err)
	}
	vbad := helloPayload()
	vbad[4] = 99
	if err := checkHello(vbad); err == nil {
		t.Fatal("future protocol version accepted")
	}
}

func FuzzDecodeRanges(f *testing.F) {
	f.Add(appendRanges(nil, map[string]pubsub.Range{"a": {Lo: 1, Hi: 2}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success, a re-encode must decode equal.
		m, _, err := decodeRanges(data)
		if err != nil {
			return
		}
		again, _, err := decodeRanges(appendRanges(nil, m))
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if len(again) != len(m) {
			t.Fatalf("re-encode changed entry count: %d vs %d", len(again), len(m))
		}
	})
}
