package netbroker

import (
	"fmt"
	"strings"
	"sync"
)

// Policy decides what happens when a subscriber's bounded send queue is
// full: the connection is consuming slower than its subscriptions match.
type Policy uint8

const (
	// DropOldest evicts the oldest queued delivery to make room for the
	// new one: the subscriber keeps up with the present at the cost of a
	// gap in the past. Per-subscriber order is preserved among the
	// deliveries that do arrive.
	DropOldest Policy = iota
	// DropNewest discards the incoming delivery: the subscriber drains
	// its backlog intact and misses what happened while it was behind.
	DropNewest
	// Disconnect closes the connection abruptly: no further delivery is
	// shed one by one — the client's reconnect logic re-establishes its
	// standing subscriptions, and everything queued at the disconnect is
	// lost (a goodbye could not be flushed through the very queue that
	// is full).
	Disconnect
)

// String names the policy in the spelling ParsePolicy accepts.
func (p Policy) String() string {
	switch p {
	case DropOldest:
		return "dropoldest"
	case DropNewest:
		return "dropnewest"
	case Disconnect:
		return "disconnect"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Valid reports whether p names a defined policy.
func (p Policy) Valid() bool { return p <= Disconnect }

// ParsePolicy converts a flag spelling into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "dropoldest", "drop-oldest":
		return DropOldest, nil
	case "dropnewest", "drop-newest":
		return DropNewest, nil
	case "disconnect":
		return Disconnect, nil
	}
	return 0, fmt.Errorf("netbroker: unknown slow-consumer policy %q (want dropoldest, dropnewest or disconnect)", s)
}

// sendq is one connection's outgoing frame queue, in two planes: delivery
// frames fill a bounded ring governed by the slow-consumer policy, while
// control frames (responses, pings, goodbyes) ride a small priority FIFO
// that always enqueues — they are bounded by the request rate the reader
// processes one at a time, dropping them would stall the peer's
// request/response machinery rather than shed load, and shedding policy
// must never evict them. pop serves control frames first.
type sendq struct {
	mu     sync.Mutex
	ctrl   []frame // priority FIFO
	ev     []frame // bounded delivery ring of exactly the configured depth
	head   int
	n      int
	policy Policy
	closed bool

	droppedOldest int64
	droppedNewest int64
	maxDepth      int

	// sig wakes the writer; 1-buffered so a push never blocks on it.
	sig chan struct{}
}

func newSendq(capacity int, policy Policy) *sendq {
	return &sendq{ev: make([]frame, capacity), policy: policy, sig: make(chan struct{}, 1)}
}

// pushResult tells the publisher what the queue did with a delivery.
type pushResult uint8

const (
	pushQueued pushResult = iota
	pushDroppedOldest
	pushDroppedNewest
	pushDisconnect
	pushClosed
)

// pushEvent enqueues a delivery frame, applying the slow-consumer policy
// when the ring is full. Never blocks.
func (q *sendq) pushEvent(f frame) pushResult {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return pushClosed
	}
	res := pushQueued
	if q.n == len(q.ev) {
		switch q.policy {
		case DropOldest:
			q.head = (q.head + 1) % len(q.ev)
			q.n--
			q.droppedOldest++
			res = pushDroppedOldest
		case DropNewest:
			q.droppedNewest++
			q.mu.Unlock()
			return pushDroppedNewest
		default: // Disconnect
			q.mu.Unlock()
			return pushDisconnect
		}
	}
	q.ev[(q.head+q.n)%len(q.ev)] = f
	q.n++
	if d := q.n + len(q.ctrl); d > q.maxDepth {
		q.maxDepth = d
	}
	q.mu.Unlock()
	q.wake()
	return res
}

// pushControl enqueues a control frame on the priority plane. Returns
// false if the queue is closed.
func (q *sendq) pushControl(f frame) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.ctrl = append(q.ctrl, f)
	if d := q.n + len(q.ctrl); d > q.maxDepth {
		q.maxDepth = d
	}
	q.mu.Unlock()
	q.wake()
	return true
}

func (q *sendq) wake() {
	select {
	case q.sig <- struct{}{}:
	default:
	}
}

// pop removes the next frame — control plane first; ok is false when both
// planes are empty.
func (q *sendq) pop() (f frame, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.ctrl) > 0 {
		f = q.ctrl[0]
		q.ctrl[0] = frame{}
		q.ctrl = q.ctrl[1:]
		return f, true
	}
	if q.n == 0 {
		return frame{}, false
	}
	f = q.ev[q.head]
	q.ev[q.head] = frame{}
	q.head = (q.head + 1) % len(q.ev)
	q.n--
	return f, true
}

// close marks the queue closed: pushes fail from now on; queued frames
// remain poppable (the drain path flushes them).
func (q *sendq) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.wake()
}

// depth returns the current occupancy across both planes.
func (q *sendq) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n + len(q.ctrl)
}

// stats snapshots the drop counters and high-water mark.
func (q *sendq) stats() (droppedOldest, droppedNewest int64, maxDepth int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.droppedOldest, q.droppedNewest, q.maxDepth
}
