package netbroker

import (
	"strings"
	"testing"
	"time"
)

// TestOptionValidation pins the option-layer convention: invalid explicit
// values are rejected loudly, zero values select defaults.
func TestOptionValidation(t *testing.T) {
	serverCases := []struct {
		name string
		opts Options
		want string // substring of the error; "" = must validate
	}{
		{"defaults", Options{}, ""},
		{"full", Options{QueueDepth: 8, Policy: Disconnect, HeartbeatInterval: time.Second,
			ReadTimeout: 10 * time.Second, WriteTimeout: time.Second,
			DrainDeadline: time.Second, MaxConns: 2}, ""},
		{"negative queue depth", Options{QueueDepth: -1}, "queue depth"},
		{"invalid policy", Options{Policy: Policy(9)}, "policy"},
		{"negative heartbeat", Options{HeartbeatInterval: -time.Second}, "heartbeat"},
		{"negative read timeout", Options{ReadTimeout: -1}, "read timeout"},
		{"negative write timeout", Options{WriteTimeout: -1}, "write timeout"},
		{"negative drain deadline", Options{DrainDeadline: -1}, "drain deadline"},
		{"negative max conns", Options{MaxConns: -1}, "max connections"},
		{"read timeout below heartbeat", Options{HeartbeatInterval: time.Minute}, "must exceed heartbeat"},
	}
	for _, tc := range serverCases {
		t.Run("server/"+tc.name, func(t *testing.T) {
			got, err := tc.opts.withDefaults()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if got.QueueDepth <= 0 || got.HeartbeatInterval <= 0 || got.ReadTimeout <= 0 ||
					got.WriteTimeout <= 0 || got.DrainDeadline <= 0 || got.MaxConns <= 0 {
					t.Fatalf("defaults not filled: %+v", got)
				}
				return
			}
			//acvet:ignore corrupterr asserts which option the validation message names, not an integrity classification
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}

	clientCases := []struct {
		name string
		opts ClientOptions
		want string
	}{
		{"defaults", ClientOptions{}, ""},
		{"negative dial timeout", ClientOptions{DialTimeout: -1}, "dial timeout"},
		{"negative read timeout", ClientOptions{ReadTimeout: -1}, "read timeout"},
		{"negative write timeout", ClientOptions{WriteTimeout: -1}, "write timeout"},
		{"negative heartbeat", ClientOptions{HeartbeatInterval: -1}, "heartbeat"},
		{"negative retry base", ClientOptions{RetryBase: -1}, "retry backoff"},
		{"retry max below base", ClientOptions{RetryBase: time.Second, RetryMax: time.Millisecond}, "below retry base"},
		{"read timeout below heartbeat", ClientOptions{HeartbeatInterval: time.Minute}, "must exceed heartbeat"},
	}
	for _, tc := range clientCases {
		t.Run("client/"+tc.name, func(t *testing.T) {
			got, err := tc.opts.withDefaults()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if got.DialTimeout <= 0 || got.RetryBase <= 0 || got.RetryMax <= 0 || got.Seed == 0 {
					t.Fatalf("defaults not filled: %+v", got)
				}
				return
			}
			//acvet:ignore corrupterr asserts which option the validation message names, not an integrity classification
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"dropoldest", DropOldest, true},
		{"drop-oldest", DropOldest, true},
		{"DropNewest", DropNewest, true},
		{"disconnect", Disconnect, true},
		{"block", 0, false},
		{"", 0, false},
	} {
		got, err := ParsePolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, p := range []Policy{DropOldest, DropNewest, Disconnect} {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("String/Parse round trip of %v: %v, %v", p, back, err)
		}
	}
}
