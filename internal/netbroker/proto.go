package netbroker

// Wire protocol. Every message is one frame, little endian, in the
// store-format style:
//
//	length  uint32  // bytes that follow, excluding the trailing CRC
//	type    uint8
//	payload []byte
//	crc     uint32  // IEEE CRC32 over type+payload
//
// A frame whose CRC does not validate — or whose length is implausible —
// is an integrity failure: the reader rejects it with an error wrapping
// ErrCorruptFrame (which itself wraps store.ErrCorrupt, so errors.Is
// classifies wire corruption and checkpoint corruption uniformly) and the
// connection is closed. A protocol peer never attempts to resynchronize
// inside a byte stream that has lied once.
//
// Attribute range lists (subscriptions and events) are encoded as a uvarint
// entry count followed by, per entry: uvarint name length, name bytes, and
// lo/hi float64 bits. Request frames carry a uint32 request id echoed by
// the matching ok/error response, so one connection multiplexes concurrent
// requests with in-flight event deliveries.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"accluster/internal/pubsub"
	"accluster/internal/store"
)

// Frame types.
const (
	// fHello (client→server) opens a connection: protoMagic, protoVersion.
	fHello = uint8(iota + 1)
	// fWelcome (server→client) answers fHello with protoMagic,
	// protoVersion and the broker's attribute schema.
	fWelcome
	// fSubscribe (client→server): reqID, clientSubID, ranges. Idempotent
	// per clientSubID — resubscribing an id already registered on this
	// connection is acknowledged without a second registration.
	fSubscribe
	// fUnsubscribe (client→server): reqID, clientSubID.
	fUnsubscribe
	// fPublish (client→server): reqID, ranges.
	fPublish
	// fOK (server→client): reqID, value (match count for fPublish,
	// 1/0 existed for fUnsubscribe, 0 for fSubscribe).
	fOK
	// fErr (server→client): reqID (0 = connection-level), message.
	fErr
	// fEvent (server→client): clientSubID, ranges — one matched delivery.
	fEvent
	// fPing / fPong keep deadlines fed in both directions.
	fPing
	fPong
	// fGoodbye (server→client): message; the server is closing this
	// connection deliberately (drain or slow-consumer disconnect).
	fGoodbye
)

const (
	protoMagic   = 0x41434E42 // "ACNB"
	protoVersion = 1
	// maxFrame bounds a frame's post-length bytes; a length beyond it is
	// corruption (or a hostile peer), not a real message.
	maxFrame = 1 << 20
	// frameOverhead is the fixed framing cost: length + type + crc.
	frameOverhead = 4 + 1 + 4
)

// ErrCorruptFrame is the sentinel matched by errors.Is for every wire
// integrity failure: a CRC mismatch, an implausible length, a malformed
// payload. It wraps store.ErrCorrupt so corruption classifies uniformly
// across the wire and the device formats.
var ErrCorruptFrame = fmt.Errorf("netbroker: corrupt frame: %w", store.ErrCorrupt)

// corruptf builds a frame-integrity error wrapping ErrCorruptFrame.
func corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorruptFrame)...)
}

// frame is one decoded message.
type frame struct {
	typ     uint8
	payload []byte
}

// appendFrame encodes f into dst.
func appendFrame(dst []byte, typ uint8, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(payload)))
	start := len(dst)
	dst = append(dst, typ)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// readFrame decodes the next frame from r. Integrity failures wrap
// ErrCorruptFrame; a clean EOF at a frame boundary returns io.EOF.
func readFrame(r *bufio.Reader, buf []byte) (frame, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, buf, err // io.EOF at boundary; ErrUnexpectedEOF mid-header
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return frame{}, buf, corruptf("netbroker: frame length %d out of range", n)
	}
	need := int(n) + 4 // body + crc
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, buf, err
	}
	body, sum := buf[:n], binary.LittleEndian.Uint32(buf[n:])
	if crc32.ChecksumIEEE(body) != sum {
		return frame{}, buf, corruptf("netbroker: frame crc mismatch (type %d, %d bytes)", body[0], n)
	}
	return frame{typ: body[0], payload: body[1:]}, buf, nil
}

// appendRanges encodes an attribute→range map.
func appendRanges(dst []byte, m map[string]pubsub.Range) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m)))
	for name, rg := range m {
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rg.Lo))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rg.Hi))
	}
	return dst
}

// decodeRanges decodes an attribute→range map, returning the remaining
// bytes. Malformed payloads wrap ErrCorruptFrame.
func decodeRanges(p []byte) (map[string]pubsub.Range, []byte, error) {
	count, p, err := readUvarint(p)
	if err != nil {
		return nil, nil, err
	}
	if count > maxFrame/17 { // name byte + 16 range bytes minimum
		return nil, nil, corruptf("netbroker: range count %d implausible", count)
	}
	m := make(map[string]pubsub.Range, count)
	for i := uint64(0); i < count; i++ {
		nameLen, rest, err := readUvarint(p)
		if err != nil {
			return nil, nil, err
		}
		p = rest
		if uint64(len(p)) < nameLen+16 {
			return nil, nil, corruptf("netbroker: truncated range entry")
		}
		name := string(p[:nameLen])
		p = p[nameLen:]
		lo := math.Float64frombits(binary.LittleEndian.Uint64(p))
		hi := math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		p = p[16:]
		m[name] = pubsub.Range{Lo: lo, Hi: hi}
	}
	return m, p, nil
}

// appendSchema encodes the broker's attribute schema for fWelcome.
func appendSchema(dst []byte, s pubsub.Schema) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	for _, a := range s {
		dst = binary.AppendUvarint(dst, uint64(len(a.Name)))
		dst = append(dst, a.Name...)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Min))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Max))
	}
	return dst
}

// decodeSchema decodes an fWelcome schema.
func decodeSchema(p []byte) (pubsub.Schema, error) {
	count, p, err := readUvarint(p)
	if err != nil {
		return nil, err
	}
	if count > maxFrame/17 {
		return nil, corruptf("netbroker: schema attribute count %d implausible", count)
	}
	s := make(pubsub.Schema, 0, count)
	for i := uint64(0); i < count; i++ {
		nameLen, rest, err := readUvarint(p)
		if err != nil {
			return nil, err
		}
		p = rest
		if uint64(len(p)) < nameLen+16 {
			return nil, corruptf("netbroker: truncated schema attribute")
		}
		a := pubsub.Attribute{Name: string(p[:nameLen])}
		p = p[nameLen:]
		a.Min = math.Float64frombits(binary.LittleEndian.Uint64(p))
		a.Max = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		p = p[16:]
		s = append(s, a)
	}
	return s, nil
}

// readUvarint consumes a uvarint, classifying malformed input as frame
// corruption.
func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, corruptf("netbroker: malformed uvarint")
	}
	return v, p[n:], nil
}

// readU32 consumes a fixed uint32.
func readU32(p []byte) (uint32, []byte, error) {
	if len(p) < 4 {
		return 0, nil, corruptf("netbroker: truncated uint32")
	}
	return binary.LittleEndian.Uint32(p), p[4:], nil
}

// helloPayload builds the fHello payload.
func helloPayload() []byte {
	p := binary.LittleEndian.AppendUint32(nil, protoMagic)
	return append(p, protoVersion)
}

// checkHello validates an fHello payload.
func checkHello(p []byte) error {
	magic, p, err := readU32(p)
	if err != nil {
		return err
	}
	if magic != protoMagic {
		return corruptf("netbroker: bad protocol magic %#x", magic)
	}
	if len(p) < 1 {
		return corruptf("netbroker: truncated hello")
	}
	if p[0] != protoVersion {
		return fmt.Errorf("netbroker: protocol version %d not supported (want %d)", p[0], protoVersion)
	}
	return nil
}
