package netbroker

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accluster/internal/faultio"
	"accluster/internal/pubsub"
)

// TestSoakChurnFaultsRestart is the robustness soak: N clients holding
// standing subscriptions and churning ephemeral ones, a publisher driving
// monotonically increasing serials, a deterministic network fault schedule
// (resets, bit flips, latency spikes) on the server side, and a full
// server restart mid-run. Afterwards: zero goroutine leaks and — per
// subscriber — deliveries in publish order (gaps allowed, disorder not).
func TestSoakChurnFaultsRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	baseline := runtime.NumGoroutine()

	schema := testSchema()
	newB := func() *pubsub.Broker {
		b, err := pubsub.NewBroker(schema, pubsub.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	sched := faultio.NewNetSchedule(42)
	sched.SetMaxDelay(300 * time.Microsecond)
	sched.Every(173, faultio.NetReset)
	sched.Every(311, faultio.NetCorrupt)
	sched.Every(41, faultio.NetDelay)

	srvOpts := Options{QueueDepth: 256, HeartbeatInterval: 50 * time.Millisecond,
		ReadTimeout: 2 * time.Second, WriteTimeout: time.Second, DrainDeadline: time.Second}
	b := newB()
	ln := listen(t)
	addr := ln.Addr().String()
	srv, err := Serve(b, faultio.WrapListener(ln, sched), srvOpts)
	if err != nil {
		t.Fatal(err)
	}
	var srvMu sync.Mutex // guards srv/b across the restart

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stop := make(chan struct{})

	clOpts := fastClientOpts()
	clOpts.HeartbeatInterval = 25 * time.Millisecond
	clOpts.ReadTimeout = time.Second

	const nClients = 4
	type subState struct {
		mu        sync.Mutex
		last      float64
		delivered int64
		disorder  []string
	}
	states := make([]*subState, nClients)
	var wg sync.WaitGroup
	errCh := make(chan error, nClients+2)

	for ci := 0; ci < nClients; ci++ {
		st := &subState{last: -1}
		states[ci] = st
		wg.Add(1)
		go func(ci int, st *subState) {
			defer wg.Done()
			opts := clOpts
			opts.Seed = int64(ci + 1)
			cl, err := Dial(ctx, addr, opts)
			if err != nil {
				errCh <- fmt.Errorf("client %d dial: %w", ci, err)
				return
			}
			defer cl.Close()
			// The standing subscription checks ordered delivery: serials
			// may gap (drops, reconnects, restarts) but never go back.
			_, err = cl.Subscribe(ctx, pubsub.Subscription{}, func(_ uint32, ev pubsub.Event) {
				s := ev["serial"].Lo
				st.mu.Lock()
				if s < st.last {
					st.disorder = append(st.disorder, fmt.Sprintf("%g after %g", s, st.last))
				}
				st.last = s
				st.delivered++
				st.mu.Unlock()
			})
			if err != nil {
				errCh <- fmt.Errorf("client %d standing subscribe: %w", ci, err)
				return
			}
			// Churn: ephemeral subscriptions on a range the publisher's
			// point events never match (they leave x unbound).
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
				id, err := cl.Subscribe(cctx, pubsub.Subscription{"x": {Lo: 10, Hi: 20}}, func(uint32, pubsub.Event) {})
				if err == nil {
					_, _ = cl.Unsubscribe(cctx, id)
				}
				ccancel()
				if i%16 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(ci, st)
	}

	// Publisher: strictly increasing serials, synchronously, so every
	// subscriber must observe a non-decreasing sequence (retries after a
	// lost response may duplicate a serial, never reorder it).
	var published atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		opts := clOpts
		opts.Seed = 99
		cl, err := Dial(ctx, addr, opts)
		if err != nil {
			errCh <- fmt.Errorf("publisher dial: %w", err)
			return
		}
		defer cl.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pctx, pcancel := context.WithTimeout(ctx, 2*time.Second)
			_, err := cl.Publish(pctx, serialEvent(i))
			pcancel()
			if err == nil {
				published.Add(1)
			}
		}
	}()

	// Restart the server mid-soak: abrupt close, rebind, fresh broker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(600 * time.Millisecond)
		srvMu.Lock()
		srv.Close()
		b.Close()
		var ln2 net.Listener
		var err error
		for i := 0; i < 500; i++ {
			if ln2, err = net.Listen("tcp", addr); err == nil {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err != nil {
			srvMu.Unlock()
			errCh <- fmt.Errorf("rebind: %w", err)
			return
		}
		b = newB()
		srv, err = Serve(b, faultio.WrapListener(ln2, sched), srvOpts)
		srvMu.Unlock()
		if err != nil {
			errCh <- fmt.Errorf("restart: %w", err)
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	srvMu.Lock()
	st := srv.Stats()
	srv.Close()
	b.Close()
	srvMu.Unlock()
	cancel()

	if published.Load() == 0 {
		t.Fatal("publisher made no progress under faults")
	}
	var totalDelivered int64
	for ci, s := range states {
		s.mu.Lock()
		totalDelivered += s.delivered
		if len(s.disorder) > 0 {
			t.Errorf("client %d out-of-order deliveries: %v", ci, s.disorder[:min(3, len(s.disorder))])
		}
		s.mu.Unlock()
	}
	if totalDelivered == 0 {
		t.Fatal("no deliveries at all during the soak")
	}
	t.Logf("soak: published=%d delivered=%d netops=%d server=%+v",
		published.Load(), totalDelivered, sched.Ops(), st)

	// Leak check: everything closed, the goroutine count must settle back
	// to the baseline (small slack for runtime housekeeping).
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			var sb strings.Builder
			pprof.Lookup("goroutine").WriteTo(&sb, 1)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, sb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
