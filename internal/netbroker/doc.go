// Package netbroker serves the paper's §1 SDI scenario to real clients: a
// streaming broker over TCP whose failure behavior is specified, injected
// and tested. A Server fronts a pubsub.Broker — Subscribe registers a
// standing spatial subscription on the adaptive index and streams matches
// back; Publish runs the point-enclosing query and fans matches out to
// every subscribed connection. A Client maintains standing subscriptions
// across connection loss: it redials with capped jittered exponential
// backoff, resubscribes every one of them before going live, and retries
// in-flight requests on the fresh connection.
//
// # Wire protocol
//
// The protocol is a length-prefixed, CRC-framed binary format in the
// store-format style (stdlib only — the module stays dependency-free):
// every message is `length uint32 | type uint8 | payload | crc uint32`,
// little endian, with the IEEE CRC32 taken over type+payload. Attribute
// range lists are uvarint-counted name/lo/hi triples. A frame that fails
// its CRC — or carries an implausible length — is rejected with an error
// wrapping ErrCorruptFrame (itself wrapping store.ErrCorrupt) and the
// connection is closed: a byte stream that has lied once is never
// resynchronized, the client's reconnect machinery starts over instead.
//
// # Slow consumers
//
// Every connection owns a bounded delivery queue; when a consumer reads
// slower than its subscriptions match, the configured Policy decides:
// DropOldest sheds the oldest queued delivery (the subscriber stays
// current, with gaps in the past), DropNewest sheds the incoming one (the
// backlog drains intact, the present is missed), Disconnect closes the
// connection and lets the client's reconnect logic decide. All three are
// at-most-once: a shed delivery is gone, never retried. Control frames
// (request acks, pings, goodbyes) bypass the policy — they are bounded by
// the request rate and dropping them would stall the peer rather than
// shed load.
//
// # Liveness and drain
//
// Both sides ping when idle and answer pongs, feeding each other's read
// deadlines; a peer silent past the read timeout is declared dead. Writes
// carry deadlines so a stalled TCP window cannot wedge a writer. Server
// connections run panic-isolated goroutines under a connection-count
// limit whose slot is taken before accept — a full server exerts
// backpressure in the listener backlog instead of admitting and starving
// connections. Shutdown drains gracefully: stop accepting, flush each
// bounded queue up to the drain deadline, say goodbye, close.
package netbroker
