package netbroker

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"accluster/internal/faultio"
	"accluster/internal/pubsub"
)

func fastClientOpts() ClientOptions {
	return ClientOptions{RetryBase: 2 * time.Millisecond, RetryMax: 50 * time.Millisecond}
}

// TestServerKillMidStreamReconnectsAndResubscribes: an abrupt server death
// mid-stream must cost the client nothing but a gap — after a restart it
// has redialed with backoff and re-registered every standing subscription.
func TestServerKillMidStreamReconnectsAndResubscribes(t *testing.T) {
	b := newBroker(t)
	ln := listen(t)
	addr := ln.Addr().String()
	s1, err := Serve(b, ln, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cl, err := Dial(ctx, addr, fastClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	got := make(chan float64, 64)
	handler := func(_ uint32, ev pubsub.Event) { got <- ev["serial"].Lo }
	for i := 0; i < 3; i++ {
		if _, err := cl.Subscribe(ctx, pubsub.Subscription{}, handler); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := cl.Publish(ctx, serialEvent(1)); err != nil || n != 3 {
		t.Fatalf("publish before kill: n=%d err=%v", n, err)
	}
	for i := 0; i < 3; i++ {
		<-got
	}

	s1.Close() // abrupt: no drain, streams cut mid-conversation

	// Restart on the same address; the client is already retrying.
	var ln2 net.Listener
	waitFor(t, "address to rebind", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	s2, _ := startServerOn(t, b, ln2, Options{})

	waitFor(t, "client to resubscribe all standing subscriptions", func() bool {
		return s2.Stats().Subscriptions == 3
	})
	if n, err := cl.Publish(ctx, serialEvent(2)); err != nil || n != 3 {
		t.Fatalf("publish after restart: n=%d err=%v", n, err)
	}
	for i := 0; i < 3; i++ {
		select {
		case serial := <-got:
			if serial != 2 {
				t.Fatalf("post-restart delivery serial %g", serial)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("post-restart delivery never arrived")
		}
	}
	if st := cl.Stats(); st.Reconnects < 1 || st.Subscriptions != 3 {
		t.Fatalf("client stats: %+v", st)
	}
}

// fakeServer scripts the server side of the protocol by hand so the test
// controls exactly which (possibly damaged) frames the client receives.
type fakeServer struct {
	t  *testing.T
	nc net.Conn
	br *bufio.Reader
}

func acceptFake(t *testing.T, ln net.Listener) *fakeServer {
	t.Helper()
	nc, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	f := &fakeServer{t: t, nc: nc, br: bufio.NewReader(nc)}
	if fr := f.read(); fr.typ != fHello {
		t.Fatalf("expected hello, got frame type %d", fr.typ)
	}
	f.writeRaw(appendFrame(nil, fWelcome, appendSchema(helloPayload(), testSchema())))
	return f
}

func (f *fakeServer) read() frame {
	f.t.Helper()
	for {
		f.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		fr, _, err := readFrame(f.br, nil)
		if err != nil {
			f.t.Fatalf("fake server read: %v", err)
		}
		if fr.typ == fPing || fr.typ == fPong {
			continue // client keepalive; irrelevant to the script
		}
		return fr
	}
}

func (f *fakeServer) writeRaw(buf []byte) {
	f.t.Helper()
	f.nc.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := f.nc.Write(buf); err != nil {
		f.t.Fatalf("fake server write: %v", err)
	}
}

// ackSubscribe consumes one subscribe request and acks it, returning the
// client's subscription id.
func (f *fakeServer) ackSubscribe() uint32 {
	f.t.Helper()
	fr := f.read()
	if fr.typ != fSubscribe {
		f.t.Fatalf("expected subscribe, got frame type %d", fr.typ)
	}
	reqID, p, err := readU32(fr.payload)
	if err != nil {
		f.t.Fatal(err)
	}
	subID, _, err := readU32(p)
	if err != nil {
		f.t.Fatal(err)
	}
	f.writeRaw(appendFrame(nil, fOK, appendU64(appendU32(nil, reqID), 0)))
	return subID
}

func eventFrame(subID uint32, serial float64) []byte {
	p := appendU32(nil, subID)
	p = appendRanges(p, map[string]pubsub.Range{"serial": {Lo: serial, Hi: serial}})
	return appendFrame(nil, fEvent, p)
}

// TestClientRejectsCorruptDeliveryAndRecovers: a bit-flipped event frame
// must never reach the handler — the client counts it, drops the
// connection, reconnects and resubscribes the same standing subscription.
func TestClientRejectsCorruptDeliveryAndRecovers(t *testing.T) {
	ln := listen(t)
	t.Cleanup(func() { ln.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	type dialed struct {
		cl  *Client
		err error
	}
	dialCh := make(chan dialed, 1)
	go func() {
		cl, err := Dial(ctx, ln.Addr().String(), fastClientOpts())
		dialCh <- dialed{cl, err}
	}()
	srv1 := acceptFake(t, ln)
	d := <-dialCh
	if d.err != nil {
		t.Fatal(d.err)
	}
	cl := d.cl
	defer cl.Close()

	got := make(chan float64, 16)
	type subscribed struct {
		id  uint32
		err error
	}
	subCh := make(chan subscribed, 1)
	go func() {
		id, err := cl.Subscribe(ctx, pubsub.Subscription{"x": {Lo: 0, Hi: 50}}, func(_ uint32, ev pubsub.Event) {
			got <- ev["serial"].Lo
		})
		subCh <- subscribed{id, err}
	}()
	subID := srv1.ackSubscribe()
	sr := <-subCh
	if sr.err != nil || sr.id != subID {
		t.Fatalf("subscribe: id=%d (wire %d) err=%v", sr.id, subID, sr.err)
	}

	// Damage one payload bit of an otherwise valid delivery.
	bad := eventFrame(subID, 42)
	bad[len(bad)-6] ^= 0x04
	srv1.writeRaw(bad)

	// The client must reject it and redial; the fresh connection must
	// resubscribe the same standing subscription id.
	srv2 := acceptFake(t, ln)
	if resubID := srv2.ackSubscribe(); resubID != subID {
		t.Fatalf("resubscribed id %d, want %d", resubID, subID)
	}
	srv2.writeRaw(eventFrame(subID, 7))
	select {
	case serial := <-got:
		if serial != 7 {
			t.Fatalf("delivered serial %g, want 7 (corrupt 42 must never arrive)", serial)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("clean delivery never arrived")
	}
	if st := cl.Stats(); st.CorruptFrames != 1 || st.Reconnects != 1 || st.Delivered != 1 {
		t.Fatalf("client stats: %+v", st)
	}
}

// TestServerRejectsCorruptRequest: a request corrupted on the wire (one
// seeded bit flip) is CRC-rejected, counted, never executed, and costs the
// sender its connection — while the server keeps serving others.
func TestServerRejectsCorruptRequest(t *testing.T) {
	b := newBroker(t)
	s, addr := startServerOn(t, b, listen(t), Options{})

	sched := faultio.NewNetSchedule(3)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw := rawDialConn(t, faultio.WrapConn(nc, sched))

	sched.At(1, faultio.NetCorrupt) // next countable op: the publish write
	p := appendU32(nil, 2)
	p = appendRanges(p, map[string]pubsub.Range(serialEvent(1)))
	raw.write(fPublish, p)

	waitFor(t, "server to count the corrupt frame", func() bool {
		return s.Stats().CorruptFrames == 1
	})
	// The publish must not have executed.
	if ev := b.Stats().Events; ev != 0 {
		t.Fatalf("corrupt publish executed: broker saw %d events", ev)
	}
	// The connection dies (possibly after a best-effort error frame).
	for i := 0; ; i++ {
		f, err := raw.tryRead(2 * time.Second)
		if err != nil {
			break
		}
		if f.typ != fErr {
			t.Fatalf("unexpected frame type %d on dying connection", f.typ)
		}
		if i > 2 {
			t.Fatal("connection not closed after corrupt frame")
		}
	}
	// The server still serves fresh connections.
	if n := rawDial(t, addr).publish(serialEvent(2)); n != 0 {
		t.Fatalf("post-corruption publish matched %d", n)
	}
	if ev := b.Stats().Events; ev != 1 {
		t.Fatalf("clean publish not executed: broker saw %d events", ev)
	}
}

// TestTornFrameDropsConnCleanly: a write torn mid-frame (seeded prefix,
// then reset) must not execute the request, wedge the server, or be
// mistaken for a valid frame.
func TestTornFrameDropsConnCleanly(t *testing.T) {
	b := newBroker(t)
	s, addr := startServerOn(t, b, listen(t), Options{})

	sched := faultio.NewNetSchedule(5)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := faultio.WrapConn(nc, sched)
	raw := rawDialConn(t, fc)

	sched.At(1, faultio.NetPartial)
	p := appendU32(nil, 2)
	p = appendRanges(p, map[string]pubsub.Range(serialEvent(1)))
	_, werr := fc.Write(appendFrame(nil, fPublish, p))
	if !errors.Is(werr, faultio.ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", werr)
	}

	waitFor(t, "server to retire the torn connection", func() bool {
		return s.Stats().ActiveConns == 0
	})
	if ev := b.Stats().Events; ev != 0 {
		t.Fatalf("torn publish executed: broker saw %d events", ev)
	}
	if n := rawDial(t, addr).publish(serialEvent(2)); n != 0 {
		t.Fatalf("post-tear publish matched %d", n)
	}
	_ = raw
}
