package netbroker

import (
	"bufio"
	"context"
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accluster/internal/pubsub"
)

func testSchema() pubsub.Schema {
	return pubsub.Schema{
		{Name: "x", Min: 0, Max: 100},
		{Name: "serial", Min: 0, Max: 1e9},
	}
}

func newBroker(t *testing.T) *pubsub.Broker {
	t.Helper()
	b, err := pubsub.NewBroker(testSchema(), pubsub.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// startServer serves a fresh broker on a loopback listener.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	return startServerOn(t, newBroker(t), listen(t), opts)
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func startServerOn(t *testing.T, b *pubsub.Broker, ln net.Listener, opts Options) (*Server, string) {
	t.Helper()
	s, err := Serve(b, ln, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func serialEvent(i int) pubsub.Event {
	return pubsub.Event{"serial": pubsub.Value(float64(i))}
}

// rawConn speaks the wire protocol directly, one operation at a time, so
// tests control exactly which frames are in flight.
type rawConn struct {
	t  *testing.T
	nc net.Conn
	br *bufio.Reader
}

func rawDialConn(t *testing.T, nc net.Conn) *rawConn {
	t.Helper()
	t.Cleanup(func() { nc.Close() })
	r := &rawConn{t: t, nc: nc, br: bufio.NewReader(nc)}
	r.write(fHello, helloPayload())
	if f := r.read(); f.typ != fWelcome {
		t.Fatalf("handshake: frame type %d, want welcome", f.typ)
	}
	return r
}

func rawDial(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return rawDialConn(t, nc)
}

func (r *rawConn) write(typ uint8, payload []byte) {
	r.t.Helper()
	r.nc.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.nc.Write(appendFrame(nil, typ, payload)); err != nil {
		r.t.Fatalf("write frame type %d: %v", typ, err)
	}
}

func (r *rawConn) tryRead(d time.Duration) (frame, error) {
	r.nc.SetReadDeadline(time.Now().Add(d))
	f, _, err := readFrame(r.br, nil)
	return f, err
}

func (r *rawConn) read() frame {
	r.t.Helper()
	f, err := r.tryRead(5 * time.Second)
	if err != nil {
		r.t.Fatalf("read frame: %v", err)
	}
	return f
}

func (r *rawConn) subscribe(subID uint32, sub pubsub.Subscription) {
	r.t.Helper()
	p := appendU32(nil, 1)
	p = appendU32(p, subID)
	p = appendRanges(p, map[string]pubsub.Range(sub))
	r.write(fSubscribe, p)
	if f := r.read(); f.typ != fOK {
		r.t.Fatalf("subscribe ack: frame type %d", f.typ)
	}
}

func (r *rawConn) publish(ev pubsub.Event) int {
	r.t.Helper()
	p := appendU32(nil, 2)
	p = appendRanges(p, map[string]pubsub.Range(ev))
	r.write(fPublish, p)
	f := r.read()
	if f.typ != fOK {
		r.t.Fatalf("publish ack: frame type %d payload %q", f.typ, f.payload)
	}
	_, rest, err := readU32(f.payload)
	if err != nil || len(rest) < 8 {
		r.t.Fatalf("publish ack payload: %v", err)
	}
	return int(binary.LittleEndian.Uint64(rest))
}

// event reads the next delivery, failing on any other frame type.
func (r *rawConn) event() (subID uint32, serial float64) {
	r.t.Helper()
	f := r.read()
	if f.typ != fEvent {
		r.t.Fatalf("expected event, got frame type %d", f.typ)
	}
	subID, p, err := readU32(f.payload)
	if err != nil {
		r.t.Fatal(err)
	}
	m, _, err := decodeRanges(p)
	if err != nil {
		r.t.Fatal(err)
	}
	return subID, m["serial"].Lo
}

// TestEndToEndDelivery drives the full client path: dial, subscribe,
// publish, deliver, unsubscribe, shut down.
func TestEndToEndDelivery(t *testing.T) {
	s, addr := startServer(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	cl, err := Dial(ctx, addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if len(cl.Schema()) != len(testSchema()) {
		t.Fatalf("handshake schema has %d attrs, want %d", len(cl.Schema()), len(testSchema()))
	}

	got := make(chan float64, 16)
	id, err := cl.Subscribe(ctx, pubsub.Subscription{"x": {Lo: 0, Hi: 50}}, func(_ uint32, ev pubsub.Event) {
		got <- ev["serial"].Lo
	})
	if err != nil {
		t.Fatal(err)
	}

	n, err := cl.Publish(ctx, pubsub.Event{"x": pubsub.Value(25), "serial": pubsub.Value(1)})
	if err != nil || n != 1 {
		t.Fatalf("matching publish: n=%d err=%v", n, err)
	}
	select {
	case serial := <-got:
		if serial != 1 {
			t.Fatalf("delivered serial %g, want 1", serial)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery never arrived")
	}

	if n, err := cl.Publish(ctx, pubsub.Event{"x": pubsub.Value(75), "serial": pubsub.Value(2)}); err != nil || n != 0 {
		t.Fatalf("non-matching publish: n=%d err=%v", n, err)
	}

	existed, err := cl.Unsubscribe(ctx, id)
	if err != nil || !existed {
		t.Fatalf("unsubscribe: existed=%v err=%v", existed, err)
	}
	if n, _ := cl.Publish(ctx, pubsub.Event{"x": pubsub.Value(25), "serial": pubsub.Value(3)}); n != 0 {
		t.Fatalf("publish after unsubscribe matched %d", n)
	}

	st := s.Stats()
	if st.TotalConns < 1 || st.Delivered != 1 || st.Subscriptions != 0 {
		t.Fatalf("server stats: %+v", st)
	}
	cl.Close()
	if d := s.Shutdown(); d < 0 {
		t.Fatalf("drain duration %v", d)
	}
}

// TestOrderedDelivery pins the per-subscriber ordering contract: a
// subscriber that keeps up receives every delivery in publish order.
func TestOrderedDelivery(t *testing.T) {
	s, addr := startServer(t, Options{})
	consumer := rawDial(t, addr)
	consumer.subscribe(7, pubsub.Subscription{})
	publisher := rawDial(t, addr)

	const total = 200
	for i := 0; i < total; i++ {
		if n := publisher.publish(serialEvent(i)); n != 1 {
			t.Fatalf("publish %d matched %d subs", i, n)
		}
	}
	for i := 0; i < total; i++ {
		subID, serial := consumer.event()
		if subID != 7 || serial != float64(i) {
			t.Fatalf("delivery %d: sub %d serial %g", i, subID, serial)
		}
	}
	st := s.Stats()
	if st.Delivered != total || st.DroppedOldest+st.DroppedNewest != 0 {
		t.Fatalf("stats after ordered run: %+v", st)
	}
}

// writeGate blocks a wrapped connection's writes while closed, simulating
// a consumer whose TCP window never opens — deterministically.
type writeGate struct {
	mu sync.Mutex
	ch chan struct{} // nil = open
}

func (g *writeGate) shut() {
	g.mu.Lock()
	if g.ch == nil {
		g.ch = make(chan struct{})
	}
	g.mu.Unlock()
}

func (g *writeGate) open() {
	g.mu.Lock()
	if g.ch != nil {
		close(g.ch)
		g.ch = nil
	}
	g.mu.Unlock()
}

func (g *writeGate) wait() {
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

type gatedConn struct {
	net.Conn
	g *writeGate
}

func (c gatedConn) Write(p []byte) (int, error) {
	c.g.wait()
	return c.Conn.Write(p)
}

// gatedListener gates the first accepted connection only; later ones pass
// through (the test's publisher must stay responsive).
type gatedListener struct {
	net.Listener
	g *writeGate
	n atomic.Int32
}

func (l *gatedListener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if l.n.Add(1) == 1 {
		return gatedConn{Conn: nc, g: l.g}, nil
	}
	return nc, nil
}

// slowOpts keeps heartbeats out of the gated write stream so the frame
// arithmetic below is exact.
func slowOpts(depth int, p Policy) Options {
	return Options{QueueDepth: depth, Policy: p,
		HeartbeatInterval: time.Minute, ReadTimeout: 2 * time.Minute,
		WriteTimeout: time.Minute}
}

// gatedSetup: consumer (gated, subscribed full-domain) + publisher, with
// one delivery already popped and stuck in the gate so the queue content
// is exactly known.
func gatedSetup(t *testing.T, opts Options) (s *Server, g *writeGate, consumer, publisher *rawConn) {
	t.Helper()
	g = &writeGate{}
	t.Cleanup(g.open) // runs before the server Close cleanup (LIFO)
	s, addr := startServerOn(t, newBroker(t), &gatedListener{Listener: listen(t), g: g}, opts)
	consumer = rawDial(t, addr)
	consumer.subscribe(7, pubsub.Subscription{})
	publisher = rawDial(t, addr)
	g.shut()
	if n := publisher.publish(serialEvent(0)); n != 1 {
		t.Fatalf("priming publish matched %d", n)
	}
	// The consumer's writer pops serial 0 and blocks in the gate; from
	// here every queued frame is accounted.
	waitFor(t, "writer to pick up the priming delivery", func() bool {
		st := s.Stats()
		return st.Delivered == 1 && st.QueueDepth == 0
	})
	return s, g, consumer, publisher
}

func TestSlowConsumerDropOldest(t *testing.T) {
	s, g, consumer, publisher := gatedSetup(t, slowOpts(4, DropOldest))
	for i := 1; i <= 20; i++ {
		publisher.publish(serialEvent(i))
	}
	waitFor(t, "oldest deliveries to be shed", func() bool {
		return s.Stats().DroppedOldest == 16
	})
	g.open()
	// Serial 0 was in flight; of 1..20 only the newest 4 survived.
	for _, want := range []float64{0, 17, 18, 19, 20} {
		if _, serial := consumer.event(); serial != want {
			t.Fatalf("delivered serial %g, want %g", serial, want)
		}
	}
	if _, err := consumer.tryRead(200 * time.Millisecond); err == nil {
		t.Fatal("unexpected extra frame after shed backlog")
	}
	if st := s.Stats(); st.Delivered != 21 || st.DroppedOldest != 16 || st.DroppedNewest != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSlowConsumerDropNewest(t *testing.T) {
	s, g, consumer, publisher := gatedSetup(t, slowOpts(4, DropNewest))
	for i := 1; i <= 20; i++ {
		publisher.publish(serialEvent(i))
	}
	waitFor(t, "newest deliveries to be shed", func() bool {
		return s.Stats().DroppedNewest == 16
	})
	g.open()
	// Serial 0 was in flight; the backlog 1..4 drained intact, 5..20 shed.
	for _, want := range []float64{0, 1, 2, 3, 4} {
		if _, serial := consumer.event(); serial != want {
			t.Fatalf("delivered serial %g, want %g", serial, want)
		}
	}
	if _, err := consumer.tryRead(200 * time.Millisecond); err == nil {
		t.Fatal("unexpected extra frame after shed backlog")
	}
	if st := s.Stats(); st.Delivered != 5 || st.DroppedNewest != 16 || st.DroppedOldest != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSlowConsumerDisconnect(t *testing.T) {
	s, g, consumer, publisher := gatedSetup(t, slowOpts(2, Disconnect))
	publisher.publish(serialEvent(1))
	publisher.publish(serialEvent(2))
	publisher.publish(serialEvent(3)) // queue full: policy fires
	waitFor(t, "slow consumer to be disconnected", func() bool {
		st := s.Stats()
		return st.SlowDisconnects == 1 && st.ActiveConns == 1
	})
	g.open()
	// The consumer's socket is closed; reads end in an error once the
	// in-flight remnants (if any) are consumed.
	for {
		if _, err := consumer.tryRead(2 * time.Second); err != nil {
			break
		}
	}
	// The server keeps serving: the consumer's subscription is gone.
	if n := publisher.publish(serialEvent(4)); n != 0 {
		t.Fatalf("publish after disconnect matched %d subs", n)
	}
}

// TestGracefulShutdownDrains proves Shutdown flushes queued deliveries
// before closing: the consumer receives every queued frame and a goodbye.
func TestGracefulShutdownDrains(t *testing.T) {
	opts := slowOpts(16, DropOldest)
	opts.DrainDeadline = 5 * time.Second
	s, g, consumer, publisher := gatedSetup(t, opts)
	for i := 1; i <= 4; i++ {
		publisher.publish(serialEvent(i))
	}
	waitFor(t, "backlog to queue", func() bool { return s.Stats().Delivered == 5 })

	done := make(chan time.Duration, 1)
	go func() { done <- s.Shutdown() }()
	time.Sleep(50 * time.Millisecond) // let drain begin against the gate
	g.open()

	for _, want := range []float64{0, 1, 2, 3, 4} {
		if _, serial := consumer.event(); serial != want {
			t.Fatalf("drained serial %g, want %g", serial, want)
		}
	}
	if f := consumer.read(); f.typ != fGoodbye {
		t.Fatalf("expected goodbye after drain, got frame type %d", f.typ)
	}
	select {
	case d := <-done:
		if d <= 0 || d > opts.DrainDeadline+time.Second {
			t.Fatalf("drain took %v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned")
	}
	if st := s.Stats(); st.DrainMS <= 0 {
		t.Fatalf("drain not recorded: %+v", st)
	}
}

// TestShutdownDeadlineBound proves the drain bound holds against a consumer
// that never opens its window: Shutdown returns shortly after the deadline.
func TestShutdownDeadlineBound(t *testing.T) {
	opts := slowOpts(16, DropOldest)
	opts.DrainDeadline = 200 * time.Millisecond
	s, g, _, publisher := gatedSetup(t, opts)
	for i := 1; i <= 4; i++ {
		publisher.publish(serialEvent(i))
	}
	done := make(chan time.Duration, 1)
	go func() { done <- s.Shutdown() }()
	// The gate models a peer whose writes never complete; open it after
	// the deadline has passed — the clamped write deadline makes the
	// still-pending write fail instead of delivering late.
	time.Sleep(400 * time.Millisecond)
	g.open()
	select {
	case d := <-done:
		if d < opts.DrainDeadline {
			t.Fatalf("drain returned before the deadline: %v", d)
		}
		if d > 5*time.Second {
			t.Fatalf("drain unbounded: %v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned despite the backstop")
	}
}

// TestMaxConnsBackpressure: with the only slot held, a second dial parks in
// the listener backlog — accepted and welcomed only after the slot frees.
func TestMaxConnsBackpressure(t *testing.T) {
	opts := Options{MaxConns: 1}
	_, addr := startServer(t, opts)
	first := rawDial(t, addr)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	second := &rawConn{t: t, nc: nc, br: bufio.NewReader(nc)}
	second.write(fHello, helloPayload())
	if f, err := second.tryRead(300 * time.Millisecond); err == nil {
		t.Fatalf("welcomed with no free slot: frame type %d", f.typ)
	}

	first.nc.Close() // release the slot
	if f := second.read(); f.typ != fWelcome {
		t.Fatalf("after slot freed: frame type %d, want welcome", f.typ)
	}
	if n := second.publish(serialEvent(1)); n != 0 {
		t.Fatalf("publish on second conn matched %d", n)
	}
}
