package netbroker

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accluster/internal/pubsub"
	"accluster/internal/telemetry"
)

// ErrClientClosed is returned by every operation after Close.
var ErrClientClosed = errors.New("netbroker: client closed")

// errConnLost aborts in-flight requests when the connection dies; the
// request layer retries on a fresh connection.
var errConnLost = errors.New("netbroker: connection lost")

// EventHandler receives matched events for a client subscription.
//
// Delivery contract: handlers run on the client's single read goroutine,
// in per-subscription server order. A handler that blocks stalls the
// reads — the server's bounded queue for this connection then fills and
// its slow-consumer policy decides what happens: DropOldest/DropNewest
// shed deliveries (at-most-once with gaps — the dropped events are gone,
// not retried), Disconnect closes the connection (the client reconnects
// and resubscribes, and everything queued server-side at the disconnect
// is lost). Deliveries in flight during any reconnect are likewise lost:
// the broker offers at-most-once delivery, never duplicates.
//
// A handler must not call the client's request methods (Subscribe,
// Unsubscribe, Publish) synchronously: their responses arrive on the same
// goroutine the handler is running on, so the call would deadlock until
// its context expires. Hand such work to another goroutine.
type EventHandler func(sub uint32, ev pubsub.Event)

// Client is a reconnecting broker client: standing subscriptions survive
// connection loss (the client redials with capped jittered backoff and
// resubscribes every one of them), and requests retry transparently across
// reconnects under their context. Safe for concurrent use.
type Client struct {
	addr string
	opts ClientOptions

	mu      sync.Mutex
	nc      net.Conn // current connection; nil while down
	lost    chan struct{}
	up      chan struct{}
	schema  pubsub.Schema
	pending map[uint32]chan rpcResult
	subs    map[uint32]*clientSub
	nextReq uint32
	nextSub uint32
	closed  bool
	rng     *rand.Rand

	wmu sync.Mutex // serializes frame writes on the current conn

	stop chan struct{}
	done chan struct{}

	reconnects atomic.Int64
	delivered  atomic.Int64
	corrupt    atomic.Int64
}

type clientSub struct {
	sub pubsub.Subscription
	h   EventHandler
}

type rpcResult struct {
	value uint64
	err   error
}

// Dial connects to a broker server, retrying with backoff until ctx is
// done, and starts the reconnect supervisor. Close releases it.
func Dial(ctx context.Context, addr string, opts ClientOptions) (*Client, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Client{
		addr:    addr,
		opts:    o,
		lost:    make(chan struct{}),
		up:      make(chan struct{}),
		pending: make(map[uint32]chan rpcResult),
		subs:    make(map[uint32]*clientSub),
		rng:     rand.New(rand.NewSource(o.Seed)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.run()
	if err := c.await(ctx); err != nil {
		c.Close()
		return nil, fmt.Errorf("netbroker: dial %s: %w", addr, err)
	}
	return c, nil
}

// run is the connection supervisor: dial, handshake, resubscribe, serve
// reads; on loss, fail in-flight requests and retry with jittered backoff.
func (c *Client) run() {
	defer close(c.done)
	attempt := 0
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		nc, schema, err := c.connect()
		if err == nil {
			err = c.resubscribe(nc)
			if err != nil {
				nc.Close()
			}
		}
		if err != nil {
			attempt++
			if !c.sleep(c.backoff(attempt)) {
				return
			}
			continue
		}
		attempt = 0
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			nc.Close()
			return
		}
		c.nc = nc
		c.schema = schema
		close(c.up)
		c.mu.Unlock()

		c.readLoop(nc) // returns on connection loss or Close
		c.teardown(nc)
		select {
		case <-c.stop:
			return
		default:
			c.reconnects.Add(1)
		}
	}
}

// connect dials and handshakes one connection.
func (c *Client) connect() (net.Conn, pubsub.Schema, error) {
	var nc net.Conn
	var err error
	if c.opts.Dialer != nil {
		nc, err = c.opts.Dialer(c.addr)
	} else {
		d := net.Dialer{Timeout: c.opts.DialTimeout}
		nc, err = d.Dial("tcp", c.addr)
	}
	if err != nil {
		return nil, nil, err
	}
	nc.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	if _, err := nc.Write(appendFrame(nil, fHello, helloPayload())); err != nil {
		nc.Close()
		return nil, nil, err
	}
	br := bufio.NewReaderSize(nc, 32<<10)
	nc.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
	f, _, err := readFrame(br, nil)
	if err != nil {
		nc.Close()
		return nil, nil, err
	}
	if f.typ == fErr {
		_, werr := errText(f.payload)
		nc.Close()
		return nil, nil, werr
	}
	if f.typ != fWelcome {
		nc.Close()
		return nil, nil, corruptf("netbroker: expected welcome, got frame type %d", f.typ)
	}
	if err := checkHello(f.payload); err != nil {
		nc.Close()
		return nil, nil, err
	}
	schema, err := decodeSchema(f.payload[5:])
	if err != nil {
		nc.Close()
		return nil, nil, err
	}
	// Hand the buffered reader to readLoop through the conn wrapper.
	return &bufferedConn{Conn: nc, br: br}, schema, nil
}

// bufferedConn keeps the handshake's buffered reader attached to the conn.
type bufferedConn struct {
	net.Conn
	br *bufio.Reader
}

// resubscribe re-registers every standing subscription on a fresh
// connection, synchronously: request frames go out and each ok is awaited
// before the connection goes live, so a resubscribed client never misses
// its standing coverage without knowing.
func (c *Client) resubscribe(nc net.Conn) error {
	c.mu.Lock()
	subs := make(map[uint32]*clientSub, len(c.subs))
	for id, s := range c.subs {
		subs[id] = s
	}
	c.mu.Unlock()
	if len(subs) == 0 {
		return nil
	}
	bc := nc.(*bufferedConn)
	for id, s := range subs {
		p := appendU32(nil, 0) // reqID 0: the only in-flight request here
		p = appendU32(p, id)
		p = appendRanges(p, map[string]pubsub.Range(s.sub))
		nc.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
		if _, err := nc.Write(appendFrame(nil, fSubscribe, p)); err != nil {
			return err
		}
		for {
			nc.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
			f, _, err := readFrame(bc.br, nil)
			if err != nil {
				return err
			}
			// Deliveries for already-reestablished subscriptions can
			// interleave with the acks; dispatch them normally.
			if f.typ == fEvent {
				c.dispatchEvent(f.payload)
				continue
			}
			if f.typ == fPing {
				c.writeFrame(nc, frame{typ: fPong})
				continue
			}
			if f.typ == fErr {
				_, rerr := errText(f.payload)
				return rerr
			}
			if f.typ != fOK {
				return corruptf("netbroker: expected subscribe ack, got frame type %d", f.typ)
			}
			break
		}
	}
	return nil
}

// readLoop dispatches frames from the live connection until it fails.
func (c *Client) readLoop(nc net.Conn) {
	bc := nc.(*bufferedConn)
	var buf []byte
	hb := time.NewTicker(c.opts.HeartbeatInterval)
	defer hb.Stop()
	pingStop := make(chan struct{})
	defer close(pingStop)
	// Keepalive: feed the server's read deadline even when traffic flows
	// only server→client.
	go func() {
		for {
			select {
			case <-hb.C:
				if err := c.writeFrame(nc, frame{typ: fPing}); err != nil {
					nc.Close()
					return
				}
			case <-pingStop:
				return
			case <-c.stop:
				return
			}
		}
	}()
	for {
		nc.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
		f, b, err := readFrame(bc.br, buf)
		buf = b
		if err != nil {
			if errors.Is(err, ErrCorruptFrame) {
				c.corrupt.Add(1)
			}
			return
		}
		switch f.typ {
		case fEvent:
			c.dispatchEvent(f.payload)
		case fOK:
			reqID, p, err := readU32(f.payload)
			if err != nil {
				return
			}
			if len(p) < 8 {
				return
			}
			v := uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
				uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
			c.complete(reqID, rpcResult{value: v})
		case fErr:
			reqID, rerr := errText(f.payload)
			if reqID == 0 {
				return // connection-level error; reconnect
			}
			c.complete(reqID, rpcResult{err: rerr})
		case fPing:
			if err := c.writeFrame(nc, frame{typ: fPong}); err != nil {
				return
			}
		case fPong:
			// deadline already refreshed
		case fGoodbye:
			return // server drain or policy disconnect; reconnect decides
		default:
			return
		}
	}
}

// dispatchEvent decodes one delivery and invokes its handler.
func (c *Client) dispatchEvent(payload []byte) {
	subID, p, err := readU32(payload)
	if err != nil {
		return
	}
	ranges, _, err := decodeRanges(p)
	if err != nil {
		return
	}
	c.mu.Lock()
	s := c.subs[subID]
	c.mu.Unlock()
	if s == nil || s.h == nil {
		return // unsubscribed while the delivery was in flight
	}
	c.delivered.Add(1)
	s.h(subID, pubsub.Event(ranges))
}

// teardown retires a dead connection: fail in-flight requests, flip the
// up/lost channels so waiters re-arm.
func (c *Client) teardown(nc net.Conn) {
	nc.Close()
	c.mu.Lock()
	if c.nc == nc {
		c.nc = nil
		close(c.lost)
		c.lost = make(chan struct{})
		c.up = make(chan struct{})
	}
	for id, ch := range c.pending {
		ch <- rpcResult{err: errConnLost}
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// backoff returns the capped exponential delay with full jitter.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.RetryBase << uint(min(attempt-1, 20))
	if d > c.opts.RetryMax || d <= 0 {
		d = c.opts.RetryMax
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d) + 1))
	c.mu.Unlock()
	return j
}

func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.stop:
		return false
	}
}

// await blocks until the client is connected, ctx is done, or Close.
func (c *Client) await(ctx context.Context) error {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClientClosed
		}
		nc, up := c.nc, c.up
		c.mu.Unlock()
		if nc != nil {
			return nil
		}
		select {
		case <-up:
		case <-ctx.Done():
			return ctx.Err()
		case <-c.stop:
			return ErrClientClosed
		}
	}
}

// writeFrame writes one frame under the write lock with a deadline.
func (c *Client) writeFrame(nc net.Conn, f frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	nc.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	_, err := nc.Write(appendFrame(nil, f.typ, f.payload))
	return err
}

// roundTrip sends one request and awaits its response, retrying across
// reconnects until ctx is done. Retried publishes may execute twice on the
// server if a response was lost — matching is idempotent for subscribe and
// unsubscribe, at-least-once for publish under retry.
func (c *Client) roundTrip(ctx context.Context, typ uint8, build func(reqID uint32) []byte) (uint64, error) {
	for {
		if err := c.await(ctx); err != nil {
			return 0, err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return 0, ErrClientClosed
		}
		nc := c.nc
		if nc == nil {
			c.mu.Unlock()
			continue
		}
		c.nextReq++
		if c.nextReq == 0 {
			c.nextReq = 1 // reqID 0 is reserved for connection-level errors
		}
		reqID := c.nextReq
		ch := make(chan rpcResult, 1)
		c.pending[reqID] = ch
		lost := c.lost
		c.mu.Unlock()

		err := c.writeFrame(nc, frame{typ: typ, payload: build(reqID)})
		if err != nil {
			c.unregister(reqID)
			nc.Close() // poke the supervisor; retry on the next conn
			continue
		}
		select {
		case r := <-ch:
			if r.err != nil {
				if errors.Is(r.err, errConnLost) {
					continue
				}
				return 0, r.err
			}
			return r.value, nil
		case <-lost:
			c.unregister(reqID)
			continue
		case <-ctx.Done():
			c.unregister(reqID)
			return 0, ctx.Err()
		case <-c.stop:
			c.unregister(reqID)
			return 0, ErrClientClosed
		}
	}
}

func (c *Client) unregister(reqID uint32) {
	c.mu.Lock()
	delete(c.pending, reqID)
	c.mu.Unlock()
}

func (c *Client) complete(reqID uint32, r rpcResult) {
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- r
	}
}

// Subscribe registers a standing subscription with a delivery handler and
// returns its identifier. The subscription survives reconnects: the client
// re-registers it on every fresh connection until Unsubscribe.
func (c *Client) Subscribe(ctx context.Context, sub pubsub.Subscription, h EventHandler) (uint32, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClientClosed
	}
	c.nextSub++
	id := c.nextSub
	// Registered before the wire round trip: if the connection drops
	// mid-request, the reconnect path resubscribes this id and the retry
	// is acknowledged idempotently by the server.
	c.subs[id] = &clientSub{sub: sub, h: h}
	c.mu.Unlock()

	_, err := c.roundTrip(ctx, fSubscribe, func(reqID uint32) []byte {
		p := appendU32(nil, reqID)
		p = appendU32(p, id)
		return appendRanges(p, map[string]pubsub.Range(sub))
	})
	if err != nil {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
		return 0, err
	}
	return id, nil
}

// Unsubscribe removes a standing subscription, reporting whether the
// server still had it.
func (c *Client) Unsubscribe(ctx context.Context, id uint32) (bool, error) {
	c.mu.Lock()
	_, known := c.subs[id]
	delete(c.subs, id) // stop resubscribing it whatever the wire says
	c.mu.Unlock()
	if !known {
		return false, nil
	}
	v, err := c.roundTrip(ctx, fUnsubscribe, func(reqID uint32) []byte {
		p := appendU32(nil, reqID)
		return appendU32(p, id)
	})
	if err != nil {
		return false, err
	}
	return v == 1, nil
}

// Publish matches an event against every standing subscription on the
// server and returns the match count. A retry after a lost response may
// publish the event twice (at-least-once under retry).
func (c *Client) Publish(ctx context.Context, ev pubsub.Event) (int, error) {
	v, err := c.roundTrip(ctx, fPublish, func(reqID uint32) []byte {
		p := appendU32(nil, reqID)
		return appendRanges(p, map[string]pubsub.Range(ev))
	})
	return int(v), err
}

// Schema returns the server's attribute schema (from the handshake of the
// most recent connection).
func (c *Client) Schema() pubsub.Schema {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.schema
}

// Connected reports whether a live connection is currently established.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nc != nil
}

// Close stops the supervisor, closes the connection and fails every
// in-flight request. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closed = true
	nc := c.nc
	c.mu.Unlock()
	close(c.stop)
	if nc != nil {
		nc.Close()
	}
	<-c.done
	// The supervisor exited; nothing completes pending requests anymore.
	c.mu.Lock()
	for id, ch := range c.pending {
		ch <- rpcResult{err: ErrClientClosed}
		delete(c.pending, id)
	}
	c.mu.Unlock()
	return nil
}

// ClientStats snapshots client activity.
type ClientStats struct {
	// Connected reports a live connection; Reconnects counts how many
	// times the supervisor re-established one after a loss.
	Connected  bool
	Reconnects int64
	// Delivered counts handler invocations; CorruptFrames counts frames
	// the client rejected for integrity (each also dropped the
	// connection); Subscriptions is the standing-subscription count.
	Delivered     int64
	CorruptFrames int64
	Subscriptions int
}

// Stats returns a snapshot of client activity.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	subs, connected := len(c.subs), c.nc != nil
	c.mu.Unlock()
	return ClientStats{
		Connected:     connected,
		Reconnects:    c.reconnects.Load(),
		Delivered:     c.delivered.Load(),
		CorruptFrames: c.corrupt.Load(),
		Subscriptions: subs,
	}
}

// TelemetrySource exposes client activity as a flight-recorder gauge
// source.
func (c *Client) TelemetrySource() telemetry.Source {
	return telemetry.Source{
		Name: "netclient",
		Cols: []string{"connected", "reconnects", "delivered", "corrupt_frames", "subscriptions"},
		Read: func(dst []int64) []int64 {
			st := c.Stats()
			up := int64(0)
			if st.Connected {
				up = 1
			}
			return append(dst, up, st.Reconnects, st.Delivered, st.CorruptFrames, int64(st.Subscriptions))
		},
	}
}
