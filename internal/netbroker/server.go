package netbroker

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accluster/internal/pubsub"
	"accluster/internal/telemetry"
)

// Server streams a pubsub.Broker over a network listener. Each connection
// gets a bounded delivery queue with the configured slow-consumer policy,
// heartbeat/deadline dead-peer detection and panic-isolated goroutines;
// Shutdown drains gracefully. Construct with Serve.
type Server struct {
	b    *pubsub.Broker
	opts Options
	ln   net.Listener

	mu      sync.Mutex
	conns   map[*srvConn]struct{}
	closed  bool
	slots   chan struct{} // MaxConns semaphore: acquired before Accept
	acceptD sync.WaitGroup
	connWG  sync.WaitGroup

	// Publish coalescing: readers enqueue incoming publishes on pubq and a
	// single publisher goroutine drains whatever has accumulated into one
	// pubsub.PublishBatch call — one batched index pass for N concurrent
	// publishers. pubDone stops the publisher (after a final drain).
	pubq    chan pubReq
	pubDone chan struct{}
	pubD    sync.WaitGroup

	totalConns    atomic.Int64
	delivered     atomic.Int64
	slowKills     atomic.Int64
	corruptFrames atomic.Int64
	deadPeers     atomic.Int64
	panics        atomic.Int64
	droppedOldest atomic.Int64 // aggregated from closed connections
	droppedNewest atomic.Int64
	maxQueueDepth atomic.Int64
	drainNanos    atomic.Int64

	publishBatches  atomic.Int64
	publishedEvents atomic.Int64
	maxPublishBatch atomic.Int64
}

// pubReq is one queued publish request awaiting the coalescing publisher.
type pubReq struct {
	c     *srvConn
	reqID uint32
	ev    pubsub.Event
}

// maxPublishCoalesce caps how many queued publishes one broker batch absorbs.
const maxPublishCoalesce = 256

// Serve starts serving broker b on ln. The caller owns b; the server owns
// ln and every accepted connection — Shutdown or Close releases them. The
// broker should use synchronous delivery (pubsub.Options.QueueDepth 0):
// the per-connection queues here are the delivery buffers, and stacking
// broker queues in front of them only adds latency and a second drop
// point.
func Serve(b *pubsub.Broker, ln net.Listener, opts Options) (*Server, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		b:       b,
		opts:    o,
		ln:      ln,
		conns:   make(map[*srvConn]struct{}),
		slots:   make(chan struct{}, o.MaxConns),
		pubq:    make(chan pubReq, 4*maxPublishCoalesce),
		pubDone: make(chan struct{}),
	}
	s.acceptD.Add(1)
	go s.acceptLoop()
	s.pubD.Add(1)
	go s.publishLoop()
	return s, nil
}

// publishLoop is the server's single publisher: it drains the publish
// requests queued by every connection's reader into one
// pubsub.PublishBatch call, so a busy server matches N in-flight events
// with one batched pass over the subscription index instead of N
// independent passes. Replies travel back through each requester's control
// queue (a no-op if that connection died while its publish was in flight).
func (s *Server) publishLoop() {
	defer s.pubD.Done()
	reqs := make([]pubReq, 0, maxPublishCoalesce)
	for {
		reqs = reqs[:0]
		select {
		case r := <-s.pubq:
			reqs = append(reqs, r)
		case <-s.pubDone:
			// Final drain: answer what is already queued, then exit.
		final:
			for {
				select {
				case r := <-s.pubq:
					reqs = append(reqs, r)
				default:
					break final
				}
			}
			if len(reqs) > 0 {
				s.publishCoalesced(reqs)
			}
			return
		}
	drain:
		for len(reqs) < maxPublishCoalesce {
			select {
			case r := <-s.pubq:
				reqs = append(reqs, r)
			default:
				break drain
			}
		}
		s.publishCoalesced(reqs)
	}
}

// publishCoalesced runs one batched publish over the queued requests and
// replies to each requester, keeping the per-event error/count split of
// looped Publish calls.
func (s *Server) publishCoalesced(reqs []pubReq) {
	evs := make([]pubsub.Event, len(reqs))
	for i, r := range reqs {
		evs[i] = r.ev
	}
	counts, errs := s.b.PublishBatch(evs)
	s.publishBatches.Add(1)
	s.publishedEvents.Add(int64(len(reqs)))
	s.bumpMaxPublish(int64(len(reqs)))
	for i, r := range reqs {
		if errs[i] != nil {
			r.c.replyErr(r.reqID, errs[i])
		} else {
			r.c.reply(r.reqID, uint64(counts[i]))
		}
	}
}

func (s *Server) bumpMaxPublish(d int64) {
	for {
		cur := s.maxPublishBatch.Load()
		if d <= cur || s.maxPublishBatch.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// acceptLoop admits connections under the MaxConns semaphore: the slot is
// taken before Accept, so a full server stops accepting — dial attempts
// queue in the listener backlog instead of being admitted and starved.
func (s *Server) acceptLoop() {
	defer s.acceptD.Done()
	for {
		s.slots <- struct{}{}
		nc, err := s.ln.Accept()
		if err != nil {
			<-s.slots
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			// Transient accept failure (including injected faults):
			// back off briefly and keep serving.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		c := &srvConn{
			srv:  s,
			nc:   nc,
			q:    newSendq(s.opts.QueueDepth, s.opts.Policy),
			subs: make(map[uint32]uint32),
			stop: make(chan struct{}),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			<-s.slots
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.totalConns.Add(1)
		s.connWG.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// Shutdown drains gracefully: stop accepting, close every connection's
// queue to new deliveries, flush what is queued until empty or the drain
// deadline, send goodbyes, close. It returns how long the flush took.
func (s *Server) Shutdown() time.Duration {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.connWG.Wait()
		return time.Duration(s.drainNanos.Load())
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	// Stop the coalescing publisher first: its final drain answers the
	// publishes already queued, and those replies must enter the connection
	// queues before the drain below flushes them.
	close(s.pubDone)
	s.pubD.Wait()

	deadline := start.Add(s.opts.DrainDeadline)
	for _, c := range conns {
		c.beginDrain(deadline)
	}
	// Backstop: a consumer whose TCP window never reopens blocks its
	// writer in a send until the write timeout; kill whatever is still
	// alive shortly after the deadline so the drain bound holds.
	backstop := time.AfterFunc(time.Until(deadline)+100*time.Millisecond, func() {
		for _, c := range conns {
			c.kill()
		}
	})
	defer backstop.Stop()
	s.acceptD.Wait()
	s.connWG.Wait()
	d := time.Since(start)
	s.drainNanos.Store(int64(d))
	return d
}

// Close shuts the server down immediately: no drain, queued deliveries are
// discarded.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.connWG.Wait()
		return nil
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	close(s.pubDone)
	s.pubD.Wait()
	for _, c := range conns {
		c.kill()
	}
	s.acceptD.Wait()
	s.connWG.Wait()
	return nil
}

// removeConn retires a finished connection and releases its accept slot.
func (s *Server) removeConn(c *srvConn) {
	s.mu.Lock()
	_, live := s.conns[c]
	delete(s.conns, c)
	s.mu.Unlock()
	if live {
		dOld, dNew, maxD := c.q.stats()
		s.droppedOldest.Add(dOld)
		s.droppedNewest.Add(dNew)
		s.bumpMaxDepth(int64(maxD))
		<-s.slots
	}
}

func (s *Server) bumpMaxDepth(d int64) {
	for {
		cur := s.maxQueueDepth.Load()
		if d <= cur || s.maxQueueDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// ServerStats snapshots server activity.
type ServerStats struct {
	// ActiveConns is the number of currently served connections;
	// TotalConns counts every connection ever accepted.
	ActiveConns, TotalConns int64
	// Subscriptions is the number of standing subscriptions across all
	// connections (the broker's live count includes local subscribers
	// too; this counts only network-registered ones).
	Subscriptions int64
	// Delivered counts event frames queued for delivery; DroppedOldest
	// and DroppedNewest count deliveries shed by the respective
	// policies, and SlowDisconnects counts connections closed by the
	// Disconnect policy.
	Delivered, DroppedOldest, DroppedNewest, SlowDisconnects int64
	// CorruptFrames counts frames rejected for CRC/length integrity;
	// each one also closed its connection. DeadPeers counts connections
	// closed by read-deadline expiry; Panics counts connection
	// goroutines recovered from a panic.
	CorruptFrames, DeadPeers, Panics int64
	// QueueDepth sums current per-connection queue occupancy;
	// MaxQueueDepth is the high-water mark any connection reached.
	QueueDepth, MaxQueueDepth int64
	// PublishBatches counts coalesced publish rounds, PublishedEvents the
	// publish requests they carried (PublishedEvents/PublishBatches is the
	// achieved coalescing factor), and MaxPublishBatch the largest single
	// batch handed to the broker.
	PublishBatches, PublishedEvents, MaxPublishBatch int64
	// DrainMS is how long the last Shutdown flush took (0 before one).
	DrainMS float64
}

// Stats returns a snapshot of server activity.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		TotalConns:      s.totalConns.Load(),
		Delivered:       s.delivered.Load(),
		DroppedOldest:   s.droppedOldest.Load(),
		DroppedNewest:   s.droppedNewest.Load(),
		SlowDisconnects: s.slowKills.Load(),
		CorruptFrames:   s.corruptFrames.Load(),
		DeadPeers:       s.deadPeers.Load(),
		Panics:          s.panics.Load(),
		PublishBatches:  s.publishBatches.Load(),
		PublishedEvents: s.publishedEvents.Load(),
		MaxPublishBatch: s.maxPublishBatch.Load(),
		DrainMS:         float64(s.drainNanos.Load()) / 1e6,
	}
	s.mu.Lock()
	st.ActiveConns = int64(len(s.conns))
	maxD := s.maxQueueDepth.Load()
	for c := range s.conns {
		st.QueueDepth += int64(c.q.depth())
		dOld, dNew, m := c.q.stats()
		st.DroppedOldest += dOld
		st.DroppedNewest += dNew
		if int64(m) > maxD {
			maxD = int64(m)
		}
		c.subsMu.Lock()
		st.Subscriptions += int64(len(c.subs))
		c.subsMu.Unlock()
	}
	s.mu.Unlock()
	st.MaxQueueDepth = maxD
	return st
}

// TelemetrySource exposes server activity as a flight-recorder gauge
// source; the drop counters mirror the pubsub broker's split-by-cause
// convention, so the in-process and networked paths report identically.
func (s *Server) TelemetrySource() telemetry.Source {
	return telemetry.Source{
		Name: "netbroker",
		Cols: []string{"active_conns", "total_conns", "subscriptions",
			"delivered", "dropped_oldest", "dropped_newest",
			"slow_disconnects", "corrupt_frames", "dead_peers", "panics",
			"queue_depth", "max_queue_depth",
			"publish_batches", "published_events", "max_publish_batch",
			"drain_ms"},
		Read: func(dst []int64) []int64 {
			st := s.Stats()
			return append(dst, st.ActiveConns, st.TotalConns, st.Subscriptions,
				st.Delivered, st.DroppedOldest, st.DroppedNewest,
				st.SlowDisconnects, st.CorruptFrames, st.DeadPeers, st.Panics,
				st.QueueDepth, st.MaxQueueDepth,
				st.PublishBatches, st.PublishedEvents, st.MaxPublishBatch,
				int64(st.DrainMS))
		},
	}
}

// srvConn is one served connection: a reader goroutine handling requests
// and a writer goroutine flushing the bounded send queue.
type srvConn struct {
	srv *Server
	nc  net.Conn
	q   *sendq

	subsMu sync.Mutex
	subs   map[uint32]uint32 // client sub id → broker id

	stop     chan struct{} // closed by kill
	killOnce sync.Once
	drainMu  sync.Mutex
	drainAt  time.Time // non-zero once draining
}

// kill tears the connection down immediately (idempotent): queue closed,
// socket closed, goroutines unblock, standing subscriptions removed.
func (c *srvConn) kill() {
	c.killOnce.Do(func() {
		close(c.stop)
		c.q.close()
		c.nc.Close()
		c.subsMu.Lock()
		ids := make([]uint32, 0, len(c.subs))
		for _, brokerID := range c.subs {
			ids = append(ids, brokerID)
		}
		c.subs = make(map[uint32]uint32)
		c.subsMu.Unlock()
		for _, id := range ids {
			c.srv.b.Unsubscribe(id)
		}
	})
}

// beginDrain switches the connection into drain mode: no new deliveries
// enter the queue, and the writer flushes what is queued until empty or
// the deadline, sends a goodbye, then kills the connection.
func (c *srvConn) beginDrain(deadline time.Time) {
	c.drainMu.Lock()
	c.drainAt = deadline
	c.drainMu.Unlock()
	c.q.close() // stop new deliveries; queued frames stay poppable
	c.q.wake()
}

func (c *srvConn) draining() (time.Time, bool) {
	c.drainMu.Lock()
	defer c.drainMu.Unlock()
	return c.drainAt, !c.drainAt.IsZero()
}

// recoverPanic is the per-goroutine panic isolation: a handler or protocol
// bug on one connection must not take the server down.
func (c *srvConn) recoverPanic() {
	if r := recover(); r != nil {
		c.srv.panics.Add(1)
		c.kill()
	}
}

// readLoop handshakes, then serves requests until error or shutdown.
func (c *srvConn) readLoop() {
	defer c.srv.connWG.Done()
	defer c.srv.removeConn(c)
	defer c.kill()
	defer c.recoverPanic()

	br := bufio.NewReaderSize(c.nc, 32<<10)
	var buf []byte
	readFrameDeadline := func() (frame, error) {
		c.nc.SetReadDeadline(time.Now().Add(c.srv.opts.ReadTimeout))
		f, b, err := readFrame(br, buf)
		buf = b
		return f, err
	}

	// Handshake: the first frame must be a valid hello.
	f, err := readFrameDeadline()
	if err != nil || f.typ != fHello {
		c.classifyReadErr(err)
		return
	}
	if err := checkHello(f.payload); err != nil {
		c.classifyReadErr(err)
		c.q.pushControl(frame{typ: fErr, payload: appendErrPayload(nil, 0, err.Error())})
		return
	}
	c.q.pushControl(frame{typ: fWelcome, payload: appendSchema(helloPayload(), c.srv.b.Schema())})

	for {
		f, err := readFrameDeadline()
		if err != nil {
			c.classifyReadErr(err)
			return
		}
		if err := c.handle(f); err != nil {
			c.classifyReadErr(err)
			return
		}
	}
}

// classifyReadErr counts why a connection's read side ended.
func (c *srvConn) classifyReadErr(err error) {
	switch {
	case err == nil:
	case errors.Is(err, ErrCorruptFrame):
		c.srv.corruptFrames.Add(1)
		// Best-effort: tell the peer before closing. The writer may
		// already be gone; pushControl on a closed queue is a no-op.
		c.q.pushControl(frame{typ: fErr, payload: appendErrPayload(nil, 0, err.Error())})
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			c.srv.deadPeers.Add(1)
		}
	}
}

// handle serves one request frame.
func (c *srvConn) handle(f frame) error {
	switch f.typ {
	case fPing:
		c.q.pushControl(frame{typ: fPong})
		return nil
	case fPong:
		return nil // deadline already refreshed by the read itself
	case fSubscribe:
		reqID, p, err := readU32(f.payload)
		if err != nil {
			return err
		}
		subID, p, err := readU32(p)
		if err != nil {
			return err
		}
		ranges, _, err := decodeRanges(p)
		if err != nil {
			return err
		}
		c.subsMu.Lock()
		_, exists := c.subs[subID]
		c.subsMu.Unlock()
		if exists {
			// Idempotent resubscribe (a client retrying after a lost
			// response): the standing registration already delivers.
			c.reply(reqID, 0)
			return nil
		}
		brokerID, err := c.srv.b.SubscribeFunc(pubsub.Subscription(ranges), c.deliver(subID))
		if err != nil {
			c.replyErr(reqID, err)
			return nil
		}
		c.subsMu.Lock()
		c.subs[subID] = brokerID
		c.subsMu.Unlock()
		select {
		case <-c.stop:
			// Raced with kill: the teardown may have missed this
			// registration, remove it ourselves.
			c.subsMu.Lock()
			delete(c.subs, subID)
			c.subsMu.Unlock()
			c.srv.b.Unsubscribe(brokerID)
		default:
		}
		c.reply(reqID, 0)
		return nil
	case fUnsubscribe:
		reqID, p, err := readU32(f.payload)
		if err != nil {
			return err
		}
		subID, _, err := readU32(p)
		if err != nil {
			return err
		}
		c.subsMu.Lock()
		brokerID, ok := c.subs[subID]
		delete(c.subs, subID)
		c.subsMu.Unlock()
		existed := uint64(0)
		if ok && c.srv.b.Unsubscribe(brokerID) {
			existed = 1
		}
		c.reply(reqID, existed)
		return nil
	case fPublish:
		reqID, p, err := readU32(f.payload)
		if err != nil {
			return err
		}
		ranges, _, err := decodeRanges(p)
		if err != nil {
			return err
		}
		// Hand the event to the coalescing publisher: publishes arriving
		// while a batch is being matched queue up and go out together in
		// the next one. The reply comes back asynchronously through this
		// connection's control queue, in arrival order.
		select {
		case c.srv.pubq <- pubReq{c: c, reqID: reqID, ev: pubsub.Event(ranges)}:
		case <-c.stop:
			// Connection dying: the reply could never be delivered anyway.
		case <-c.srv.pubDone:
			// Server shutting down; the connection is about to be killed.
		}
		return nil
	default:
		return corruptf("netbroker: unexpected frame type %d", f.typ)
	}
}

// deliver returns the pubsub handler fanning matches for clientSubID into
// this connection's bounded queue under the slow-consumer policy.
func (c *srvConn) deliver(clientSubID uint32) pubsub.Handler {
	return func(_ uint32, ev pubsub.Event) {
		payload := make([]byte, 0, 4+17*len(ev))
		payload = appendU32(payload, clientSubID)
		payload = appendRanges(payload, ev)
		switch c.q.pushEvent(frame{typ: fEvent, payload: payload}) {
		case pushQueued, pushDroppedOldest:
			c.srv.delivered.Add(1)
		case pushDisconnect:
			c.srv.slowKills.Add(1)
			// Abrupt teardown, no goodbye: the writer is wedged behind the
			// very queue that is full, and only the writer may touch the
			// socket (a direct write here would interleave frame bytes).
			// Async because this handler runs inside Publish on another
			// connection's reader goroutine.
			go c.kill()
		}
	}
}

func (c *srvConn) reply(reqID uint32, value uint64) {
	p := appendU32(nil, reqID)
	p = appendU64(p, value)
	c.q.pushControl(frame{typ: fOK, payload: p})
}

func (c *srvConn) replyErr(reqID uint32, err error) {
	c.q.pushControl(frame{typ: fErr, payload: appendErrPayload(nil, reqID, err.Error())})
}

// writeLoop flushes the queue, pings on idle, and drains on shutdown.
func (c *srvConn) writeLoop() {
	defer c.srv.connWG.Done()
	defer c.kill()
	defer c.recoverPanic()

	var out []byte
	write := func(f frame) bool {
		wd := time.Now().Add(c.srv.opts.WriteTimeout)
		if dl, dr := c.draining(); dr && dl.Before(wd) {
			wd = dl
		}
		c.nc.SetWriteDeadline(wd)
		out = appendFrame(out[:0], f.typ, f.payload)
		_, err := c.nc.Write(out)
		return err == nil
	}

	idle := time.NewTimer(c.srv.opts.HeartbeatInterval)
	defer idle.Stop()
	for {
		f, ok := c.q.pop()
		if !ok {
			if deadline, dr := c.draining(); dr {
				// Queue flushed (or was empty): graceful goodbye.
				if time.Now().Before(deadline) {
					write(frame{typ: fGoodbye, payload: []byte("server draining")})
				}
				return
			}
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(c.srv.opts.HeartbeatInterval)
			select {
			case <-c.q.sig:
				continue
			case <-idle.C:
				if !write(frame{typ: fPing}) {
					return
				}
			case <-c.stop:
				return
			}
			continue
		}
		if deadline, dr := c.draining(); dr && !time.Now().Before(deadline) {
			return // drain deadline passed with frames still queued
		}
		if !write(f) {
			return
		}
	}
}

// appendU32/appendU64/appendErrPayload are small encoding helpers.
func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	dst = appendU32(dst, uint32(v))
	return appendU32(dst, uint32(v>>32))
}

func appendErrPayload(dst []byte, reqID uint32, msg string) []byte {
	dst = appendU32(dst, reqID)
	return append(dst, msg...)
}

// errText formats a server error payload back into an error.
func errText(p []byte) (reqID uint32, err error) {
	id, rest, derr := readU32(p)
	if derr != nil {
		return 0, derr
	}
	return id, fmt.Errorf("netbroker: server error: %s", rest)
}
