package netbroker

import (
	"fmt"
	"net"
	"time"
)

// Options tune a Server. The zero value selects every default; explicitly
// invalid values are rejected at Serve time, per the option-validation
// convention: engine defaulting maps zero to "use the default", so a
// nonsensical explicit value must fail loudly instead of being silently
// replaced.
type Options struct {
	// QueueDepth bounds each connection's outgoing delivery queue
	// (default 256 frames). When a consumer falls behind, Policy decides
	// what the full queue does.
	QueueDepth int
	// Policy is the slow-consumer policy (default DropOldest).
	Policy Policy
	// HeartbeatInterval is how long a connection's writer may sit idle
	// before it sends a ping (default 2s). Pings keep an otherwise idle
	// peer's read deadline fed.
	HeartbeatInterval time.Duration
	// ReadTimeout is the dead-peer detection window: a connection that
	// produces no frame (not even a pong) for this long is closed
	// (default 30s). It must exceed HeartbeatInterval or every idle
	// connection would be declared dead between its own heartbeats.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write (default 10s); a consumer
	// whose TCP window stays closed past it is treated as dead.
	WriteTimeout time.Duration
	// DrainDeadline bounds the graceful-shutdown flush: Shutdown stops
	// accepting, lets every connection's queued deliveries flush for at
	// most this long, then closes whatever remains (default 5s).
	DrainDeadline time.Duration
	// MaxConns caps concurrently served connections (default 1024).
	// Further dials stay in the listener backlog — accept backpressure —
	// until a slot frees.
	MaxConns int
}

const (
	defaultQueueDepth    = 256
	defaultHeartbeat     = 2 * time.Second
	defaultReadTimeout   = 30 * time.Second
	defaultWriteTimeout  = 10 * time.Second
	defaultDrainDeadline = 5 * time.Second
	defaultMaxConns      = 1024
)

// withDefaults validates o and fills defaults.
func (o Options) withDefaults() (Options, error) {
	if o.QueueDepth < 0 {
		return o, fmt.Errorf("netbroker: queue depth must be ≥ 0, got %d", o.QueueDepth)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = defaultQueueDepth
	}
	if !o.Policy.Valid() {
		return o, fmt.Errorf("netbroker: invalid slow-consumer policy %d", o.Policy)
	}
	if o.HeartbeatInterval < 0 {
		return o, fmt.Errorf("netbroker: heartbeat interval must be ≥ 0, got %v", o.HeartbeatInterval)
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = defaultHeartbeat
	}
	if o.ReadTimeout < 0 {
		return o, fmt.Errorf("netbroker: read timeout must be ≥ 0, got %v", o.ReadTimeout)
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = defaultReadTimeout
	}
	if o.WriteTimeout < 0 {
		return o, fmt.Errorf("netbroker: write timeout must be ≥ 0, got %v", o.WriteTimeout)
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = defaultWriteTimeout
	}
	if o.DrainDeadline < 0 {
		return o, fmt.Errorf("netbroker: drain deadline must be ≥ 0, got %v", o.DrainDeadline)
	}
	if o.DrainDeadline == 0 {
		o.DrainDeadline = defaultDrainDeadline
	}
	if o.MaxConns < 0 {
		return o, fmt.Errorf("netbroker: max connections must be ≥ 0, got %d", o.MaxConns)
	}
	if o.MaxConns == 0 {
		o.MaxConns = defaultMaxConns
	}
	if o.ReadTimeout <= o.HeartbeatInterval {
		return o, fmt.Errorf("netbroker: read timeout %v must exceed heartbeat interval %v (idle peers ping once per interval)",
			o.ReadTimeout, o.HeartbeatInterval)
	}
	return o, nil
}

// ClientOptions tune a Client. The zero value selects every default.
type ClientOptions struct {
	// DialTimeout bounds one TCP connect attempt (default 5s); Dial as a
	// whole retries under its context.
	DialTimeout time.Duration
	// ReadTimeout is the client's dead-peer window (default 30s); the
	// server's heartbeats feed it on idle connections.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write (default 10s).
	WriteTimeout time.Duration
	// HeartbeatInterval is the client's own keepalive cadence (default
	// 2s): it pings the server whenever the connection has been idle
	// this long, feeding the server's read deadline even while a stream
	// of deliveries flows only server→client.
	HeartbeatInterval time.Duration
	// RetryBase and RetryMax shape the reconnect/redial backoff: delays
	// double from RetryBase up to RetryMax, each with full jitter
	// (defaults 50ms and 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed drives the backoff jitter (default 1); fixed so fault
	// schedules replay deterministically in tests.
	Seed int64
	// Dialer overrides the TCP dial, e.g. to interpose a fault-injecting
	// faultio.NetConn. nil uses net.Dialer with DialTimeout.
	Dialer func(addr string) (net.Conn, error)
}

const (
	defaultDialTimeout = 5 * time.Second
	defaultRetryBase   = 50 * time.Millisecond
	defaultRetryMax    = 5 * time.Second
)

// withDefaults validates o and fills defaults.
func (o ClientOptions) withDefaults() (ClientOptions, error) {
	if o.DialTimeout < 0 {
		return o, fmt.Errorf("netbroker: dial timeout must be ≥ 0, got %v", o.DialTimeout)
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = defaultDialTimeout
	}
	if o.ReadTimeout < 0 {
		return o, fmt.Errorf("netbroker: read timeout must be ≥ 0, got %v", o.ReadTimeout)
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = defaultReadTimeout
	}
	if o.WriteTimeout < 0 {
		return o, fmt.Errorf("netbroker: write timeout must be ≥ 0, got %v", o.WriteTimeout)
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = defaultWriteTimeout
	}
	if o.HeartbeatInterval < 0 {
		return o, fmt.Errorf("netbroker: heartbeat interval must be ≥ 0, got %v", o.HeartbeatInterval)
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = defaultHeartbeat
	}
	if o.RetryBase < 0 || o.RetryMax < 0 {
		return o, fmt.Errorf("netbroker: retry backoff must be ≥ 0, got base %v max %v", o.RetryBase, o.RetryMax)
	}
	if o.RetryBase == 0 {
		o.RetryBase = defaultRetryBase
	}
	if o.RetryMax == 0 {
		o.RetryMax = defaultRetryMax
	}
	if o.RetryMax < o.RetryBase {
		return o, fmt.Errorf("netbroker: retry max %v below retry base %v", o.RetryMax, o.RetryBase)
	}
	if o.ReadTimeout <= o.HeartbeatInterval {
		return o, fmt.Errorf("netbroker: read timeout %v must exceed heartbeat interval %v",
			o.ReadTimeout, o.HeartbeatInterval)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o, nil
}
