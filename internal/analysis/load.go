package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
}

// goList runs `go list -export -deps -json` for the patterns and decodes
// the package stream. Export data for every dependency comes out of the
// build cache, so loading works offline.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,ImportMap", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup adapts a map of import path -> export-data file into the
// lookup function go/importer's gc importer expects.
func exportLookup(exports map[string]string, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// typeCheck parses files and type-checks them as package path, resolving
// imports through the export map.
func typeCheck(fset *token.FileSet, path, dir string, goFiles []string, exports, importMap map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(exports, importMap)),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// TypeCheckFiles type-checks already-parsed files as a package with import
// path pkgPath, resolving imports through the export map. The fixture test
// harness uses it to check testdata packages that live outside the module's
// package graph.
func TypeCheckFiles(fset *token.FileSet, pkgPath, dir string, files []*ast.File, exports map[string]string) (*Package, error) {
	info := newInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(exports, nil)),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", pkgPath, err)
	}
	return &Package{Path: pkgPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadPackages loads and type-checks every package matching the patterns
// (resolved relative to dir; empty patterns mean "./..."), skipping
// dependencies that only need export data.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, p.ImportPath, p.Dir, p.GoFiles, exports, p.ImportMap)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// ListExports returns the import path -> export data file map for the
// patterns (plus all dependencies). The fixture test harness uses it to
// resolve standard-library imports without compiling them from source.
func ListExports(dir string, patterns ...string) (map[string]string, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
