package corrupterr_test

import (
	"path/filepath"
	"testing"

	"accluster/internal/analysis/atest"
	"accluster/internal/analysis/corrupterr"
)

func TestViolations(t *testing.T) {
	atest.Run(t, filepath.Join("testdata", "positive"), "store", corrupterr.Analyzer)
}

func TestRealIdiomsClean(t *testing.T) {
	atest.Run(t, filepath.Join("testdata", "negative"), "shard", corrupterr.Analyzer)
}

func TestNonPersistenceScope(t *testing.T) {
	atest.Run(t, filepath.Join("testdata", "nonpersist"), "engine", corrupterr.Analyzer)
}
