// Package shard (a fixture named after the persistence layer) holds the
// correct integrity-error idioms — mirrors of store/format.go readers and
// the shard routing layer — and must produce no diagnostics.
package shard

import (
	"errors"
	"fmt"
	"io"

	"accluster/internal/store"
)

// ErrStopped is this package's own sentinel; its definition is not a
// failure to wrap (mirrors store.ErrCorrupt's own definition).
var ErrStopped = errors.New("shard: stopped")

// readHeader classifies an integrity failure by wrapping the sentinel
// (mirrors store's corruptf helper).
func readHeader(ok bool) error {
	if !ok {
		return fmt.Errorf("shard: header checksum mismatch: %w", store.ErrCorrupt)
	}
	return nil
}

// classify matches with errors.Is; io.EOF equality is exempt because the
// stdlib returns it unwrapped by contract.
func classify(err error) bool {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return false
	}
	return errors.Is(err, store.ErrCorrupt)
}

// describe reads the message for humans, not for classification: building
// log text from err.Error() is fine as long as no branch depends on it.
func describe(err error) string {
	return "shard: salvage skipped region: " + err.Error()
}
