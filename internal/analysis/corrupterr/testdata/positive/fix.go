// Package store (a fixture named after the persistence layer, which scopes
// the construction rule) holds integrity errors that fail to wrap the
// corruption sentinel, plus sentinel and string matching.
package store

import (
	"errors"
	"fmt"
	"strings"
)

var errStopped = errors.New("fixture: stopped")

// openBad classifies an integrity failure without wrapping ErrCorrupt.
func openBad(err error) error {
	if err != nil {
		return errors.New("checksum mismatch in header") // want "does not wrap store.ErrCorrupt"
	}
	return nil
}

// decodeBad formats a corruption message with no %w chain.
func decodeBad() error {
	return fmt.Errorf("decode region: bad magic %#x", 7) // want "does not wrap an underlying error"
}

// truncBad reports a truncated read unclassified.
func truncBad(got, want int) error {
	if got < want {
		return fmt.Errorf("truncated directory: %d of %d bytes", got, want) // want "does not wrap an underlying error"
	}
	return nil
}

// matchBad classifies errors by equality and by text.
func matchBad(err error) bool {
	if err == errStopped { // want "use errors.Is"
		return true
	}
	if err.Error() == "corrupt database" { // want "errors.Is / errors.As, not string matching"
		return true
	}
	return strings.Contains(err.Error(), "checksum") // want "errors.Is / errors.As, not string matching"
}
