// Package engine (a fixture outside the persistence layer) shows the
// construction rule's scope: corruption-keyword messages are fine in
// packages that never read device formats.
package engine

import "errors"

// ErrPlanDecode is unrelated to storage integrity; outside the persistence
// packages errors.New with a keyword is not diagnosed.
var ErrPlanDecode = errors.New("engine: decode of cached plan failed")

// newDecodeError builds a non-integrity error mentioning decode.
func newDecodeError() error {
	return errors.New("engine: decode stage disabled")
}
