// Package corrupterr enforces the integrity-error contract from PR 7: in
// the persistence packages (store, shard, diskengine, telemetry's decoder)
// every error born from a checksum, CRC, magic-number, truncation or
// decode failure wraps store.ErrCorrupt — via *store.CorruptError or a
// %w chain — so salvage, quarantine and fsck can classify corruption with
// errors.Is; and no caller anywhere matches errors by equality or by
// string inspection.
//
// Rules:
//
//  1. (persistence packages only) errors.New with a corruption-keyword
//     message cannot wrap anything — construct a *store.CorruptError (the
//     corrupt/corruptf helpers) instead. fmt.Errorf with a corruption
//     keyword must carry a %w verb wrapping an underlying error.
//  2. (everywhere) comparing an error against a sentinel Err* variable
//     with == or != misses wrapped chains — use errors.Is. io.EOF and
//     io.ErrUnexpectedEOF are exempt: the stdlib returns them unwrapped
//     by contract.
//  3. (everywhere) matching err.Error() text — equality or
//     strings.Contains/HasPrefix/HasSuffix — is never the right
//     classification; use errors.Is / errors.As.
package corrupterr

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"accluster/internal/analysis"
)

// Analyzer is the corrupterr invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "corrupterr",
	Doc:  "integrity errors must wrap store.ErrCorrupt; error matching must use errors.Is, not ==/string tests",
	Run:  run,
}

// corruptionWord matches messages describing integrity failures.
var corruptionWord = regexp.MustCompile(`(?i)\b(checksum|crc|magic|corrupt\w*|truncat\w*|decode)\b`)

// persistencePackages are the packages where rule 1 applies: the layers
// that read the device formats — and netbroker, whose wire frames carry
// the same CRC-integrity convention.
var persistencePackages = []string{"store", "shard", "diskengine", "telemetry", "netbroker"}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, persistence: inPersistenceLayer(pass.Pkg.Path())}
	for _, f := range pass.Files {
		c.collectSentinelDefs(f)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, c.visit)
	}
	return nil
}

// collectSentinelDefs records the source spans of package-level Err*
// variable initializers: `var ErrCorrupt = errors.New(...)` is the
// sentinel's definition, not a failure to wrap it.
func (c *checker) collectSentinelDefs(f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if strings.HasPrefix(name.Name, "Err") || strings.HasPrefix(name.Name, "err") {
					c.sentinelDefs = append(c.sentinelDefs, span{vs.Pos(), vs.End()})
					break
				}
			}
		}
	}
}

type span struct{ pos, end token.Pos }

func (c *checker) inSentinelDef(pos token.Pos) bool {
	for _, s := range c.sentinelDefs {
		if pos >= s.pos && pos < s.end {
			return true
		}
	}
	return false
}

func inPersistenceLayer(path string) bool {
	last := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		last = path[i+1:]
	}
	for _, p := range persistencePackages {
		if last == p {
			return true
		}
	}
	return false
}

type checker struct {
	pass         *analysis.Pass
	persistence  bool
	sentinelDefs []span
}

func (c *checker) visit(n ast.Node) bool {
	switch e := n.(type) {
	case *ast.CallExpr:
		c.checkConstruction(e)
		c.checkStringMatch(e)
	case *ast.BinaryExpr:
		if e.Op == token.EQL || e.Op == token.NEQ {
			c.checkComparison(e)
		}
	}
	return true
}

// callee resolves the qualified name "pkgpath.Name" of a static callee.
func (c *checker) callee(call *ast.CallExpr) (qualified, name string) {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return "", ""
	}
	fn, ok := c.pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path() + "." + fn.Name(), fn.Name()
}

// checkConstruction applies rule 1 to errors.New / fmt.Errorf calls.
func (c *checker) checkConstruction(call *ast.CallExpr) {
	if !c.persistence || len(call.Args) == 0 || c.inSentinelDef(call.Pos()) {
		return
	}
	qualified, _ := c.callee(call)
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	text, err := strconv.Unquote(lit.Value)
	if err != nil || !corruptionWord.MatchString(text) {
		return
	}
	switch qualified {
	case "errors.New":
		c.pass.Reportf(call.Pos(), "integrity-failure error %q does not wrap store.ErrCorrupt: construct a *store.CorruptError instead of errors.New", text)
	case "fmt.Errorf":
		if !strings.Contains(text, "%w") {
			c.pass.Reportf(call.Pos(), "integrity-failure error %q does not wrap an underlying error: use %%w with a *store.CorruptError (or build one directly)", text)
		}
	}
}

// checkComparison applies rule 2 (sentinel equality) and the equality half
// of rule 3 (err.Error() == "...").
func (c *checker) checkComparison(e *ast.BinaryExpr) {
	x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
	if c.isErrorText(x) || c.isErrorText(y) {
		c.pass.Reportf(e.Pos(), "comparing err.Error() text: classify errors with errors.Is / errors.As, not string matching")
		return
	}
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		sentinel, other := pair[0], pair[1]
		if !c.isSentinelError(sentinel) {
			continue
		}
		if !c.isErrorExpr(other) || isNil(c.pass, other) {
			continue
		}
		c.pass.Reportf(e.Pos(), "comparing error against sentinel %s with %s misses wrapped errors: use errors.Is", types.ExprString(sentinel), e.Op)
		return
	}
}

// checkStringMatch applies rule 3 to strings.Contains/HasPrefix/HasSuffix.
func (c *checker) checkStringMatch(call *ast.CallExpr) {
	qualified, _ := c.callee(call)
	switch qualified {
	case "strings.Contains", "strings.HasPrefix", "strings.HasSuffix", "strings.Index", "strings.EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if c.isErrorText(ast.Unparen(arg)) {
			c.pass.Reportf(call.Pos(), "matching err.Error() text with %s: classify errors with errors.Is / errors.As, not string matching", qualified)
			return
		}
	}
}

// isErrorText reports whether e is a call of the Error() method on an
// error value.
func (c *checker) isErrorText(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return c.isErrorExpr(sel.X)
}

// isSentinelError reports whether e names an exported-or-not Err* package
// variable of type error, excluding the stdlib's unwrapped-by-contract
// io.EOF / io.ErrUnexpectedEOF.
func (c *checker) isSentinelError(e ast.Expr) bool {
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return false
	}
	obj, ok := c.pass.Info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return false
	}
	if !strings.HasPrefix(obj.Name(), "Err") && !strings.HasPrefix(obj.Name(), "err") {
		return false
	}
	if obj.Pkg().Path() == "io" && (obj.Name() == "EOF" || obj.Name() == "ErrUnexpectedEOF") {
		return false
	}
	return c.isErrorType(obj.Type())
}

func (c *checker) isErrorExpr(e ast.Expr) bool {
	tv, ok := c.pass.Info.Types[e]
	return ok && c.isErrorType(tv.Type)
}

func (c *checker) isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface) || types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}
