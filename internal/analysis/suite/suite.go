// Package suite registers the repository's invariant analyzers in one
// place, shared by cmd/acvet and the analysis test suites.
package suite

import (
	"accluster/internal/analysis"
	"accluster/internal/analysis/corrupterr"
	"accluster/internal/analysis/lockdiscipline"
	"accluster/internal/analysis/meterdiscipline"
	"accluster/internal/analysis/noalloc"
)

// Analyzers returns the full acvet suite in diagnostic order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockdiscipline.Analyzer,
		noalloc.Analyzer,
		meterdiscipline.Analyzer,
		corrupterr.Analyzer,
	}
}
