// Package analysis is a miniature, dependency-free static-analysis
// framework in the spirit of golang.org/x/tools/go/analysis, built only on
// the standard library's go/ast, go/parser, go/types and go/importer.
//
// It exists because this repository's correctness depends on conventions
// the compiler cannot see: read paths must hold only the shared lock and
// never touch exclusive state, statistics publication must happen after
// RUnlock, annotated hot paths must stay allocation-free, cost-meter fields
// may only be mutated through scratch records merged via
// cost.SyncMeter.Merge, and every integrity failure must wrap
// store.ErrCorrupt. The analyzers under internal/analysis/... encode those
// invariants; cmd/acvet runs them — standalone (`acvet ./...`) or as a
// `go vet -vettool` backend.
//
// Invariant annotations recognized across the module (one per line, in a
// declaration's doc comment):
//
//	//ac:excl     — the function requires exclusive (write-locked) access;
//	                calling it while an RLock is held is a bug.
//	//ac:noalloc  — the function is a pinned zero-allocation hot path;
//	                alloc-inducing constructs in its body are diagnosed.
//	//ac:scratch  — the type is a per-query scratch record; direct writes
//	                to cost-meter fields reached through it are the
//	                approved record-then-Merge pattern.
//	//ac:serialmeter — the type is a single-mutex baseline engine whose
//	                every operation holds the exclusive lock, so direct
//	                writes to its embedded plain cost.Meter are safe by
//	                construction.
//
// Suppression: a finding is silenced by a comment on the same line or the
// line directly above, naming the analyzer and a justification:
//
//	//acvet:ignore noalloc amortized scratch growth, resets per query
//
// A bare analyzer name with no justification does not suppress.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker: a name (used in diagnostics and
// suppression comments), one-line documentation, and the per-package run
// function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzed package through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Annot is the module-wide annotation table (//ac:excl, //ac:noalloc,
	// //ac:scratch), keyed by qualified declaration name. It is built by a
	// syntax-only scan of the whole module, so analyzers can resolve
	// annotations on cross-package callees without a fact store.
	Annot *Annotations

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// FuncKey returns the annotation-table key for a resolved function or
// method: "pkgpath.Name" for package functions, "pkgpath.Recv.Name" for
// methods (pointer receivers and type parameters stripped).
func FuncKey(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return f.Pkg().Path() + "." + n.Obj().Name() + "." + f.Name()
		}
	}
	return f.Pkg().Path() + "." + f.Name()
}

// TypeKey returns the annotation-table key for a named type.
func TypeKey(n *types.Named) string {
	if n == nil || n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// NamedOf is namedOf, exported for analyzers.
func NamedOf(t types.Type) *types.Named { return namedOf(t) }

// RunAnalyzers runs each analyzer over the loaded package, filters
// suppressed findings, and returns the remainder sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, annot *Annotations) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Annot:    annot,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = filterSuppressed(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// suppressKey identifies one (file line, analyzer) suppression.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// filterSuppressed drops diagnostics covered by an //acvet:ignore comment
// on the same line or the line directly above.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	sup := make(map[suppressKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sup[suppressKey{pos.Filename, pos.Line, name}] = true
			}
		}
	}
	if len(sup) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if sup[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
			sup[suppressKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseIgnore recognizes "//acvet:ignore <analyzer> <justification>"; the
// justification is mandatory — a suppression without a reason is ignored.
func parseIgnore(text string) (analyzer string, ok bool) {
	const prefix = "//acvet:ignore "
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimSpace(text[len(prefix):])
	name, reason, found := strings.Cut(rest, " ")
	if !found || strings.TrimSpace(reason) == "" {
		return "", false
	}
	return name, true
}
