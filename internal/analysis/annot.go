package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Annotations is the module-wide table of //ac:* invariant annotations,
// built by a syntax-only parse of every non-test .go file under the module
// root. Keys follow FuncKey/TypeKey: "pkgpath.Name" or "pkgpath.Recv.Name".
//
// Because the table is derived from syntax alone it is available in every
// driver mode — the standalone runner, the `go vet -vettool` backend (which
// only receives one package's files per invocation) and the fixture test
// harness — without a cross-package fact store.
type Annotations struct {
	// m maps declaration key -> set of markers ("excl", "noalloc", ...).
	m map[string]map[string]bool
}

// NewAnnotations returns an empty table; the fixture test harness fills it
// with AnnotateFile.
func NewAnnotations() *Annotations {
	return &Annotations{m: make(map[string]map[string]bool)}
}

// Has reports whether the declaration key carries the marker.
func (a *Annotations) Has(key, marker string) bool {
	if a == nil {
		return false
	}
	return a.m[key][marker]
}

// Keys returns every declaration key carrying the marker, sorted.
func (a *Annotations) Keys(marker string) []string {
	if a == nil {
		return nil
	}
	var out []string
	for k, set := range a.m {
		if set[marker] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// add records marker on key.
func (a *Annotations) add(key, marker string) {
	set := a.m[key]
	if set == nil {
		set = make(map[string]bool)
		a.m[key] = set
	}
	set[marker] = true
}

// markersOf extracts the //ac:* markers from a doc comment.
func markersOf(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if rest, ok := strings.CutPrefix(text, "//ac:"); ok {
			marker, _, _ := strings.Cut(rest, " ")
			if marker != "" {
				out = append(out, marker)
			}
		}
	}
	return out
}

// AnnotateFile records every annotated declaration of one parsed file under
// package path pkgPath.
func (a *Annotations) AnnotateFile(pkgPath string, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			markers := markersOf(d.Doc)
			if len(markers) == 0 {
				continue
			}
			key := pkgPath + "." + d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				if rn := recvTypeName(d.Recv.List[0].Type); rn != "" {
					key = pkgPath + "." + rn + "." + d.Name.Name
				}
			}
			for _, m := range markers {
				a.add(key, m)
			}
		case *ast.GenDecl:
			declMarkers := markersOf(d.Doc)
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				markers := append(markersOf(ts.Doc), declMarkers...)
				for _, m := range markers {
					a.add(pkgPath+"."+ts.Name.Name, m)
				}
			}
		}
	}
}

// recvTypeName extracts the receiver's base type name ("*Index" -> "Index",
// "Engine[T]" -> "Engine").
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// ModuleRoot walks up from dir to the directory containing go.mod and
// returns it with the module path parsed from the file.
func ModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ScanModule builds the annotation table for the module containing dir by
// parsing (syntax only, with comments) every non-test .go file outside
// testdata and hidden directories.
func ScanModule(dir string) (*Annotations, error) {
	root, modPath, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	a := &Annotations{m: make(map[string]map[string]bool)}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: scan %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		a.AnnotateFile(pkgPath, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}
