// Package nallocneg holds the repository's real zero-alloc idioms —
// mirrors of geom/kernel.go, core/query.go and diskengine — and must
// produce no diagnostics.
package nallocneg

// scratch mirrors the pooled searchScratch records.
type scratch struct {
	ids   []uint32
	bits  []uint64
	order []int
}

// AppendSurvivors appends into a caller-owned destination (mirrors
// geom.AppendSurvivors).
//
//ac:noalloc
func AppendSurvivors(dst []uint32, ids []uint32, bits []uint64) []uint32 {
	for i, id := range ids {
		if bits[i>>6]&(1<<uint(i&63)) != 0 {
			dst = append(dst, id)
		}
	}
	return dst
}

// fill appends through a dereferenced out-parameter (mirrors the
// search(..., out *[]uint32) plumbing in core and diskengine).
//
//ac:noalloc
func fill(out *[]uint32, id uint32) {
	*out = append(*out, id)
}

// record appends into a pooled struct-field scratch buffer (mirrors
// searchScratch reuse in core/query.go and diskengine).
//
//ac:noalloc
func (sc *scratch) record(id uint32) {
	sc.ids = append(sc.ids, id)
}

// view reslices without allocating (mirrors ensureBits' steady state).
//
//ac:noalloc
func (sc *scratch) view(w int) []uint64 {
	return sc.bits[:w]
}

// emitRange drives a caller-supplied emit func (mirrors the Search
// early-stop protocol); calling through a func value does not allocate.
//
//ac:noalloc
func (sc *scratch) emitRange(emit func(id uint32) bool) bool {
	for _, id := range sc.ids {
		if !emit(id) {
			return false
		}
	}
	return true
}

// captureFree passes a capture-free literal, which compiles to a static
// function and allocates nothing.
//
//ac:noalloc
func (sc *scratch) captureFree() bool {
	return sc.emitRange(func(id uint32) bool { return id != 0 })
}

// grow documents the justified escape hatch for amortized scratch growth.
//
//ac:noalloc
func (sc *scratch) grow(n int) []int {
	if cap(sc.order) < n {
		//acvet:ignore noalloc amortized scratch growth, no alloc once warm
		sc.order = make([]int, n)
	}
	return sc.order[:n]
}
