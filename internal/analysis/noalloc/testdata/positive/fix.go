// Package nallocpos holds one of each allocation-inducing construct inside
// //ac:noalloc bodies.
package nallocpos

import "fmt"

type scratch struct {
	ids  []uint32
	bits []uint64
}

func sink(v any) { _ = v }

// MakeSlice allocates with make.
//
//ac:noalloc
func MakeSlice(n int) []uint64 {
	return make([]uint64, n) // want "make in"
}

// NewScratch allocates with new.
//
//ac:noalloc
func NewScratch() *scratch {
	return new(scratch) // want "new in"
}

// SliceLit allocates a slice literal.
//
//ac:noalloc
func SliceLit() []int {
	return []int{1, 2, 3} // want "slice literal"
}

// MapLit allocates a map literal.
//
//ac:noalloc
func MapLit() map[string]int {
	return map[string]int{} // want "map literal"
}

// PtrLit heap-allocates the pointed-to literal.
//
//ac:noalloc
func PtrLit() *scratch {
	return &scratch{} // want "pointer to composite literal"
}

// Closure allocates a capturing closure.
//
//ac:noalloc
func Closure(n int) func() int {
	return func() int { return n } // want "capturing \"n\""
}

// Concat allocates the concatenated string.
//
//ac:noalloc
func Concat(a, b string) string {
	return a + b // want "string concatenation"
}

// Sprintf allocates formatting state and boxes operands.
//
//ac:noalloc
func Sprintf(n int) string {
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf"
}

// AppendLocal grows a heap slice from nil every call.
//
//ac:noalloc
func AppendLocal(src []uint32) []uint32 {
	var out []uint32
	for _, v := range src {
		out = append(out, v) // want "append into local \"out\""
	}
	return out
}

// Box converts a concrete value to an interface explicitly.
//
//ac:noalloc
func Box(v int) any {
	return any(v) // want "boxing"
}

// ImplicitBox boxes at the interface parameter.
//
//ac:noalloc
func ImplicitBox(v float64) {
	sink(v) // want "boxing"
}

// StringBytes copies the string into a fresh byte slice.
//
//ac:noalloc
func StringBytes(s string) []byte {
	return []byte(s) // want "string-to-slice"
}

// BytesString copies the bytes into a fresh string.
//
//ac:noalloc
func BytesString(b []byte) string {
	return string(b) // want "to-string conversion"
}

// Spawn allocates a goroutine.
//
//ac:noalloc
func Spawn(f func()) {
	go f() // want "go statement"
}

// BareIgnore shows that a suppression without a justification does not
// suppress.
//
//ac:noalloc
func BareIgnore(n int) []byte {
	//acvet:ignore noalloc
	return make([]byte, n) // want "make in"
}
