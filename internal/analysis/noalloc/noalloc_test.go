package noalloc_test

import (
	"path/filepath"
	"testing"

	"accluster/internal/analysis/atest"
	"accluster/internal/analysis/noalloc"
)

func TestViolations(t *testing.T) {
	atest.Run(t, filepath.Join("testdata", "positive"), "nallocpos", noalloc.Analyzer)
}

func TestRealIdiomsClean(t *testing.T) {
	atest.Run(t, filepath.Join("testdata", "negative"), "nallocneg", noalloc.Analyzer)
}
