// Package noalloc checks functions annotated //ac:noalloc — the pinned
// zero-allocation hot paths (warm disk searches, the core read phase, the
// telemetry record path) — for allocation-inducing constructs:
//
//   - slice and map composite literals, and pointers to composite literals
//   - make (slice/map/chan) and new
//   - append whose destination is a plain local (appends into parameters,
//     dereferenced out-parameters and struct-field scratch buffers are the
//     repository's pooled/amortized idiom and are allowed)
//   - function literals that capture local variables (closure allocation)
//   - string concatenation, string<->[]byte/[]rune conversions
//   - explicit and implicit conversions of non-pointer concrete values to
//     interface types (boxing), including every fmt call
//   - go statements (goroutine + closure allocation)
//
// The check is local to the annotated body: callees are not followed.
// Transitive guarantees come from annotating the helpers on the hot path
// (they are) and from the runtime pin TestNoAllocAnnotatedPaths, which
// drives every annotated exported path under testing.AllocsPerRun. A
// construct the escape analyzer provably keeps on the stack can be
// suppressed with //acvet:ignore noalloc <justification>.
package noalloc

import (
	"go/ast"
	"go/types"

	"accluster/internal/analysis"
)

// Analyzer is the noalloc invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flag allocation-inducing constructs in //ac:noalloc-annotated functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok || !pass.Annot.Has(analysis.FuncKey(fn), "noalloc") {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	fd   *ast.FuncDecl
	// params holds the objects of the function's parameters and named
	// results: append destinations rooted in them are caller-owned.
	params map[types.Object]bool
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, fd: fd, params: map[types.Object]bool{}}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					c.params[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	collect(fd.Type.Results)
	ast.Inspect(fd.Body, c.visit)
}

func (c *checker) report(n ast.Node, format string, args ...any) {
	c.pass.Reportf(n.Pos(), format, args...)
}

func (c *checker) visit(n ast.Node) bool {
	switch e := n.(type) {
	case *ast.GoStmt:
		c.report(e, "go statement in //ac:noalloc function allocates (goroutine and closure)")
	case *ast.CompositeLit:
		c.checkCompositeLit(e)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				c.report(e, "pointer to composite literal in //ac:noalloc function allocates")
				return false // the literal itself is covered by this report
			}
		}
	case *ast.FuncLit:
		c.checkFuncLit(e)
	case *ast.BinaryExpr:
		if e.Op.String() == "+" && isString(c.typeOf(e)) {
			c.report(e, "string concatenation in //ac:noalloc function allocates")
		}
	case *ast.CallExpr:
		c.checkCall(e)
	}
	return true
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (c *checker) checkCompositeLit(e *ast.CompositeLit) {
	switch c.typeUnder(e) {
	case "slice":
		c.report(e, "slice literal in //ac:noalloc function allocates")
	case "map":
		c.report(e, "map literal in //ac:noalloc function allocates")
	}
}

func (c *checker) typeUnder(e ast.Expr) string {
	t := c.typeOf(e)
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Chan:
		return "chan"
	}
	return ""
}

// checkFuncLit flags literals that capture variables declared outside the
// literal: those closures allocate. Capture-free literals compile to
// static functions and are allowed.
func (c *checker) checkFuncLit(e *ast.FuncLit) {
	captured := ""
	ast.Inspect(e.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := c.pass.Info.Uses[id].(*types.Var)
		if !ok || obj.Parent() == nil {
			return true
		}
		// Package-level variables are not captured; only objects declared
		// in an enclosing function body (or its parameters) are.
		if obj.Parent() == c.pass.Pkg.Scope() || types.Universe.Lookup(id.Name) != nil {
			return true
		}
		if obj.Pos() < e.Pos() || obj.Pos() > e.End() {
			captured = id.Name
		}
		return true
	})
	if captured != "" {
		c.report(e, "function literal capturing %q in //ac:noalloc function allocates a closure", captured)
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x).
	if tv, ok := c.pass.Info.Types[fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				c.report(call, "make in //ac:noalloc function allocates")
			case "new":
				c.report(call, "new in //ac:noalloc function allocates")
			case "append":
				c.checkAppend(call)
			}
			return
		}
	}

	// fmt calls allocate (formatting state, boxing of operands).
	if fn := c.staticCallee(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.report(call, "fmt.%s call in //ac:noalloc function allocates", fn.Name())
		return
	}

	c.checkImplicitBoxing(call)
}

// staticCallee resolves the called function, or nil.
func (c *checker) staticCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := c.pass.Info.Uses[id].(*types.Func)
	return fn
}

// checkConversion flags boxing and string conversions.
func (c *checker) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	argT := c.typeOf(call.Args[0])
	if argT == nil {
		return
	}
	if types.IsInterface(target.Underlying()) {
		if boxes(argT) {
			c.report(call, "conversion of %s to interface %s in //ac:noalloc function allocates (boxing)", argT, target)
		}
		return
	}
	_, targetSlice := target.Underlying().(*types.Slice)
	_, argSlice := argT.Underlying().(*types.Slice)
	switch {
	case isString(target) && argSlice:
		c.report(call, "[]byte/[]rune-to-string conversion in //ac:noalloc function allocates")
	case targetSlice && isString(argT):
		c.report(call, "string-to-slice conversion in //ac:noalloc function allocates")
	}
}

// checkImplicitBoxing flags arguments whose assignment to an interface
// parameter boxes a concrete non-pointer value.
func (c *checker) checkImplicitBoxing(call *ast.CallExpr) {
	sig, ok := c.typeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case i < sig.Params().Len()-1 || (i == sig.Params().Len()-1 && !sig.Variadic()):
			paramT = sig.Params().At(i).Type()
		case sig.Variadic() && sig.Params().Len() > 0:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				paramT = sl.Elem()
			}
		}
		if paramT == nil || !types.IsInterface(paramT.Underlying()) {
			continue
		}
		argT := c.typeOf(arg)
		if argT != nil && boxes(argT) {
			c.report(arg, "passing %s to interface parameter in //ac:noalloc function allocates (boxing)", argT)
		}
	}
}

// boxes reports whether converting a value of type t to an interface
// requires a heap allocation: concrete non-pointer, non-interface types do
// (modulo small-value caches the analyzer conservatively ignores);
// pointers, channels, maps, funcs and untyped nil don't.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	}
	return true
}

// checkAppend allows the repository's amortized idioms — appending into a
// parameter, a dereferenced out-parameter, or a struct-field scratch
// buffer — and flags appends into plain locals, which start nil and grow
// on the heap.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	for {
		switch d := dst.(type) {
		case *ast.StarExpr:
			dst = ast.Unparen(d.X)
			continue
		case *ast.IndexExpr:
			dst = ast.Unparen(d.X)
			continue
		case *ast.SliceExpr:
			dst = ast.Unparen(d.X)
			continue
		case *ast.SelectorExpr:
			// Field of a scratch/receiver struct: pooled by convention.
			return
		case *ast.Ident:
			if obj := c.pass.Info.Uses[d]; obj != nil && c.params[obj] {
				return
			}
			c.report(call, "append into local %q in //ac:noalloc function allocates (pooled scratch or caller-owned destinations only)", d.Name)
			return
		default:
			c.report(call, "append in //ac:noalloc function allocates")
			return
		}
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
