package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"
)

// VetConfig mirrors the JSON configuration file cmd/go passes to a
// `go vet -vettool` backend (one invocation per package). Field names
// follow cmd/go/internal/work's vetConfig.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// ReadVetConfig parses the cfg file named on the command line.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: read vet config: %w", err)
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("analysis: parse vet config %s: %w", path, err)
	}
	return &cfg, nil
}

// writeVetx writes the (empty) facts file cmd/go expects the tool to
// produce; without it the go command reports the tool as failed.
func (cfg *VetConfig) writeVetx() error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
}

// RunVetTool executes one `go vet -vettool` package unit: type-check the
// package from the config's file lists, run the analyzers, print findings
// in vet's file:line:col format and report whether any were found. Facts
// are not used by this suite, so dependency-only invocations (VetxOnly)
// just write the empty facts file and return.
func RunVetTool(cfg *VetConfig, analyzers []*Analyzer) (found bool, err error) {
	if err := cfg.writeVetx(); err != nil {
		return false, err
	}
	if cfg.VetxOnly {
		return false, nil
	}
	// Skip test-binary pseudo-packages' generated files but analyze
	// in-module test variants like the compiler sees them.
	fset := token.NewFileSet()
	pkg, err := typeCheck(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return false, nil
		}
		return false, err
	}
	var annot *Annotations
	if root, _, rerr := ModuleRoot(cfg.Dir); rerr == nil {
		annot, err = ScanModule(root)
		if err != nil {
			return false, err
		}
	}
	diags, err := RunAnalyzers(pkg, analyzers, annot)
	if err != nil {
		return false, err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	return len(diags) > 0, nil
}

// VetVersionLine is the response to the -V=full probe cmd/go uses as the
// tool's build-cache identity. The trailing token must change when the
// analyzers change behavior; bump it with the suite.
func VetVersionLine(progname string) string {
	base := progname
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return fmt.Sprintf("%s version acvet-%s", base, SuiteVersion)
}

// SuiteVersion identifies the analyzer suite revision for vet result
// caching; bump when analyzer behavior changes.
const SuiteVersion = "1"
