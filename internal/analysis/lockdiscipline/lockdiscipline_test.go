package lockdiscipline_test

import (
	"path/filepath"
	"testing"

	"accluster/internal/analysis/atest"
	"accluster/internal/analysis/lockdiscipline"
)

func TestViolations(t *testing.T) {
	atest.Run(t, filepath.Join("testdata", "positive"), "lockpos", lockdiscipline.Analyzer)
}

func TestRealIdiomsClean(t *testing.T) {
	atest.Run(t, filepath.Join("testdata", "negative"), "lockneg", lockdiscipline.Analyzer)
}
