// Package lockpos holds deliberate violations of the reader/writer lock
// contract; every flagged line carries a want expectation.
package lockpos

import "sync"

// Index mimics the core index: an RWMutex guarding structural state, with
// a drain method matching the publication signature.
type Index struct {
	mu      sync.RWMutex
	pending int
	window  int
}

// applyPending folds queued deltas into the window.
//
//ac:excl
func (ix *Index) applyPending() {
	ix.window += ix.pending
	ix.pending = 0
}

// TryDrainStats opportunistically applies queued deltas under the write
// lock (self-locking, so it is not itself exclusive).
func (ix *Index) TryDrainStats(mu *sync.RWMutex) bool {
	mu.Lock()
	ix.applyPending()
	mu.Unlock()
	return true
}

// publishStats is a same-package wrapper around the drain.
func (ix *Index) publishStats() {
	ix.TryDrainStats(&ix.mu)
}

// mutate is unannotated but transitively exclusive through applyPending.
func (ix *Index) mutate() {
	ix.applyPending()
}

// CountBad calls an exclusive operation under the read lock.
func (ix *Index) CountBad() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.applyPending() // want "exclusive operation applyPending"
	return ix.window
}

// TransitiveBad reaches an exclusive operation through the unannotated
// same-package wrapper.
func (ix *Index) TransitiveBad() {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.mutate() // want "exclusive operation mutate"
}

// SearchBad publishes statistics before releasing the read lock.
func (ix *Index) SearchBad() int {
	ix.mu.RLock()
	n := ix.window
	ix.TryDrainStats(&ix.mu) // want "statistics publication TryDrainStats called before RUnlock"
	ix.mu.RUnlock()
	return n
}

// WrapperBad publishes through the wrapper while still read-locked.
func (ix *Index) WrapperBad() {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.publishStats() // want "statistics publication publishStats"
}

// UpgradeBad upgrades a read lock to a write lock, which deadlocks.
func (ix *Index) UpgradeBad() {
	ix.mu.RLock()
	ix.mu.Lock() // want "lock upgrade"
	ix.mu.Unlock()
	ix.mu.RUnlock()
}

// BranchBad violates inside a conditional: branch bodies inherit the held
// set.
func (ix *Index) BranchBad(drain bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if drain {
		ix.applyPending() // want "exclusive operation applyPending"
	}
}
