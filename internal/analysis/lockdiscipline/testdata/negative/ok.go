// Package lockneg holds the repository's real locking idioms — mirrors of
// core/publish.go and the shard read paths — and must produce no
// diagnostics.
package lockneg

import "sync"

// Index mimics the core index.
type Index struct {
	mu      sync.RWMutex
	objects int
	pending int
	window  int
}

// applyPending folds queued deltas into the window.
//
//ac:excl
func (ix *Index) applyPending() {
	ix.window += ix.pending
	ix.pending = 0
}

// TryDrainStats opportunistically applies queued deltas under the write
// lock (mirrors core.Index.TryDrainStats).
func (ix *Index) TryDrainStats(mu *sync.RWMutex) bool {
	mu.Lock()
	ix.applyPending()
	mu.Unlock()
	return true
}

// Count is the read-phase idiom: shared lock, read-only work, publication
// strictly after RUnlock (mirrors core.Index.CountRead and the engines'
// Search wrappers).
func (ix *Index) Count() int {
	ix.mu.RLock()
	n := ix.objects
	ix.mu.RUnlock()
	ix.TryDrainStats(&ix.mu)
	return n
}

// Insert is the mutation idiom: write lock first, then exclusive work
// (mirrors core.Index.Insert).
func (ix *Index) Insert() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.applyPending()
	ix.objects++
}

// Reorganize holds the write lock across a branch calling exclusive work.
func (ix *Index) Reorganize(full bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if full {
		ix.applyPending()
	}
}

// Snapshot builds a closure under the read lock that runs only after
// release; function-literal bodies are not part of the locked region.
func (ix *Index) Snapshot() func() {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return func() {
		ix.mu.Lock()
		ix.applyPending()
		ix.mu.Unlock()
	}
}

// ScopedRead releases inside one branch; the held set is branch-local, so
// the sibling path stays accurate.
func (ix *Index) ScopedRead(fast bool) int {
	ix.mu.RLock()
	if fast {
		n := ix.objects
		ix.mu.RUnlock()
		return n
	}
	n := ix.objects + ix.window
	ix.mu.RUnlock()
	ix.TryDrainStats(&ix.mu)
	return n
}
