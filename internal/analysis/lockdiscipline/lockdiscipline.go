// Package lockdiscipline enforces the repository's reader/writer lock
// contract (established in PR 4): read paths hold only the shared lock and
// may call only read-safe operations, and statistics publication
// (core.TryDrainStats / core.DrainStats) happens strictly after RUnlock.
//
// Three rules are checked inside every lexical RLock region — the
// statements between x.RLock() and the matching x.RUnlock(), with
// `defer x.RUnlock()` holding to the end of the function:
//
//  1. No call to an exclusive operation: a function annotated //ac:excl
//     anywhere in the module, or a same-package function that (transitively)
//     calls one without taking a write lock itself.
//  2. No statistics publication before RUnlock: calls to TryDrainStats or
//     DrainStats (or same-package wrappers that call them, like the
//     engines' publishStats) are diagnosed inside the region.
//  3. No lock upgrade: x.Lock() while x's read lock is held deadlocks.
//
// The region tracking is lexical, matching how every wrapper in this
// repository is written (RLock; defer RUnlock, or RLock; ...; RUnlock;
// publish). Function literals are not entered: a closure built under the
// lock may legitimately run after release.
package lockdiscipline

import (
	"go/ast"
	"go/types"

	"accluster/internal/analysis"
)

// Analyzer is the lockdiscipline invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "flag exclusive operations and statistics publication inside RLock regions",
	Run:  run,
}

type checker struct {
	pass *analysis.Pass
	// decls maps each package-level function object to its declaration.
	decls map[*types.Func]*ast.FuncDecl
	// excl holds same-package functions requiring exclusive access
	// (annotated, or transitively calling an exclusive function without
	// self-locking).
	excl map[*types.Func]bool
	// publish holds same-package functions that perform statistics
	// publication (call TryDrainStats/DrainStats).
	publish map[*types.Func]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		excl:    make(map[*types.Func]bool),
		publish: make(map[*types.Func]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.decls[fn] = fd
			if pass.Annot.Has(analysis.FuncKey(fn), "excl") {
				c.excl[fn] = true
			}
		}
	}
	c.computeExclusive()
	c.computePublish()
	for fn, fd := range c.decls {
		_ = fn
		c.walkBody(fd.Body.List, map[string]bool{})
	}
	return nil
}

// callee resolves the static callee of a call expression, or nil.
func (c *checker) callee(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := c.pass.Info.Uses[id].(*types.Func)
	return fn
}

// syncLockOp reports whether call is a method call on a sync mutex and
// returns the method name and the receiver expression.
func (c *checker) syncLockOp(call *ast.CallExpr) (method string, recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	fn := c.callee(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return fn.Name(), sel.X, true
	}
	return "", nil, false
}

// selfLocking reports whether the declaration takes a write lock itself —
// such a function manages its own exclusivity, so calling an exclusive
// operation inside it does not make its callers exclusive.
func (c *checker) selfLocking(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if m, _, ok := c.syncLockOp(call); ok && m == "Lock" {
				found = true
			}
		}
		return true
	})
	return found
}

// isExclusive reports whether fn requires exclusive access: annotated
// //ac:excl (any package, via the module annotation table) or in the
// same-package transitive set.
func (c *checker) isExclusive(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if c.excl[fn] {
		return true
	}
	return c.pass.Annot.Has(analysis.FuncKey(fn), "excl")
}

// isPublication reports whether calling fn performs statistics
// publication: the core mailbox drains themselves, or a same-package
// wrapper around them.
func (c *checker) isPublication(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if c.publish[fn] {
		return true
	}
	if fn.Name() != "TryDrainStats" && fn.Name() != "DrainStats" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	n := analysis.NamedOf(sig.Recv().Type())
	return n != nil && n.Obj().Name() == "Index"
}

// computeExclusive closes the annotated set over same-package static
// calls: a function calling an exclusive function is itself exclusive,
// unless it acquires a write lock (then it self-serializes).
func (c *checker) computeExclusive() {
	for changed := true; changed; {
		changed = false
		for fn, fd := range c.decls {
			if c.excl[fn] || c.selfLocking(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if c.excl[fn] {
					return false
				}
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && c.isExclusive(c.callee(call)) {
					c.excl[fn] = true
					changed = true
				}
				return true
			})
		}
	}
}

// computePublish marks direct same-package callers of
// TryDrainStats/DrainStats (one level: the publishStats-style wrappers).
func (c *checker) computePublish() {
	for fn, fd := range c.decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && c.isPublication(c.callee(call)) {
				c.publish[fn] = true
				return false
			}
			return true
		})
	}
}

// walkBody scans a statement list in order, tracking which mutexes are
// read-locked, and diagnoses rule violations inside held regions. Branch
// bodies get a copy of the held set: lock-state changes inside a branch
// are local to it (matching the repo's balanced-region idioms).
func (c *checker) walkBody(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if m, recv, ok := c.syncLockOp(call); ok {
					key := types.ExprString(recv)
					switch m {
					case "RLock":
						held[key] = true
					case "RUnlock":
						delete(held, key)
					case "Lock":
						if held[key] {
							c.pass.Reportf(call.Pos(), "write-lock acquisition of %s while its read lock is held (lock upgrade deadlocks)", key)
						}
					}
					continue
				}
			}
			c.checkExpr(s.X, held)
		case *ast.DeferStmt:
			if m, recv, ok := c.syncLockOp(s.Call); ok {
				// defer x.RUnlock() holds the region to function end;
				// leave the mutex in the held set.
				_ = m
				_ = recv
				continue
			}
			c.checkExprs(s.Call.Args, held)
		case *ast.GoStmt:
			// A spawned goroutine does not inherit the caller's lock.
			c.checkExprs(s.Call.Args, held)
		case *ast.IfStmt:
			if s.Init != nil {
				c.walkBody([]ast.Stmt{s.Init}, held)
			}
			c.checkExpr(s.Cond, held)
			c.walkBody(s.Body.List, copyHeld(held))
			if s.Else != nil {
				c.walkBody([]ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				c.walkBody([]ast.Stmt{s.Init}, held)
			}
			if s.Cond != nil {
				c.checkExpr(s.Cond, held)
			}
			c.walkBody(s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			c.checkExpr(s.X, held)
			c.walkBody(s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Init != nil {
				c.walkBody([]ast.Stmt{s.Init}, held)
			}
			if s.Tag != nil {
				c.checkExpr(s.Tag, held)
			}
			c.walkBody(s.Body.List, copyHeld(held))
		case *ast.TypeSwitchStmt:
			c.walkBody(s.Body.List, copyHeld(held))
		case *ast.SelectStmt:
			c.walkBody(s.Body.List, copyHeld(held))
		case *ast.CaseClause:
			c.checkExprs(s.List, held)
			c.walkBody(s.Body, held)
		case *ast.CommClause:
			c.walkBody(s.Body, held)
		case *ast.BlockStmt:
			c.walkBody(s.List, held)
		case *ast.LabeledStmt:
			c.walkBody([]ast.Stmt{s.Stmt}, held)
		case *ast.AssignStmt:
			c.checkExprs(s.Rhs, held)
			c.checkExprs(s.Lhs, held)
		case *ast.ReturnStmt:
			c.checkExprs(s.Results, held)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						c.checkExprs(vs.Values, held)
					}
				}
			}
		case *ast.IncDecStmt:
			c.checkExpr(s.X, held)
		case *ast.SendStmt:
			c.checkExpr(s.Chan, held)
			c.checkExpr(s.Value, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (c *checker) checkExprs(exprs []ast.Expr, held map[string]bool) {
	for _, e := range exprs {
		c.checkExpr(e, held)
	}
}

// checkExpr diagnoses calls to exclusive or publication functions inside a
// held region. Function-literal bodies are not entered.
func (c *checker) checkExpr(e ast.Expr, held map[string]bool) {
	if len(held) == 0 || e == nil {
		return
	}
	lock := anyKey(held)
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := c.callee(call)
		if fn == nil {
			return true
		}
		switch {
		case c.isPublication(fn):
			c.pass.Reportf(call.Pos(), "statistics publication %s called before RUnlock of %s: publish only after releasing the read lock", fn.Name(), lock)
		case c.isExclusive(fn):
			c.pass.Reportf(call.Pos(), "call to exclusive operation %s inside a read-locked region (%s): exclusive operations require the write lock", fn.Name(), lock)
		}
		return true
	})
}

// anyKey returns one held mutex name for diagnostics.
func anyKey(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
