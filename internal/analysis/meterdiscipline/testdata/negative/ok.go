// Package meterneg holds the approved meter-mutation forms — mirrors of
// the scratch-record pattern in core/query.go, the record twins in cost,
// and the lock-serialized baseline engines — and must produce no
// diagnostics.
package meterneg

import "accluster/internal/cost"

// searchScratch is the pooled per-query record (mirrors core and
// diskengine).
//
//ac:scratch
type searchScratch struct {
	meter cost.Meter
}

// serialEngine is a single-mutex baseline whose every operation holds the
// exclusive lock (mirrors seqscan, rstar, xtree and mbbclust).
//
//ac:serialmeter
type serialEngine struct {
	meter cost.Meter
}

// index publishes through the synchronized meter.
type index struct {
	costs cost.SyncMeter
}

// record mutates the pooled scratch record — the approved pattern.
func (sc *searchScratch) record(n int64) {
	sc.meter.SigChecks += n
	sc.meter.Queries++
}

// op mutates the lock-serialized baseline meter.
func (e *serialEngine) op() {
	e.meter.Explorations++
}

// search assembles a local delta and merges it once (mirrors the read
// phase's end-of-query publish).
func (ix *index) search() {
	var d cost.Meter
	d.Queries++
	d.Seeks = 1
	ix.costs.Merge(d)
}

// fillDelta is a record twin writing through the caller's delta parameter.
func fillDelta(d *cost.Meter, seeks int64) {
	d.Seeks += seeks
}
