// Package meterpos holds direct shared-meter writes that violate the
// record-then-Merge contract.
package meterpos

import "accluster/internal/cost"

// engine carries a shared meter but no //ac:scratch or //ac:serialmeter
// annotation, so direct writes through it are diagnosed.
type engine struct {
	meter cost.Meter
}

var global cost.Meter

// IncBad increments a shared meter field in place.
func (e *engine) IncBad() {
	e.meter.Queries++ // want "direct write to cost-meter field Queries"
}

// AssignBad stores into a shared meter field.
func (e *engine) AssignBad() {
	e.meter.Seeks = 3 // want "direct write to cost-meter field Seeks"
}

// CompoundBad compound-assigns a shared meter field.
func (e *engine) CompoundBad(n int64) {
	e.meter.BytesVerified += n // want "direct write to cost-meter field BytesVerified"
}

// GlobalBad mutates a package-level meter.
func GlobalBad() {
	global.CacheHits++ // want "direct write to cost-meter field CacheHits"
}

// EscapeBad takes the address of a shared meter field, escaping it for
// arbitrary writes.
func EscapeBad(e *engine) *int64 {
	return &e.meter.Results // want "direct write to cost-meter field Results"
}
