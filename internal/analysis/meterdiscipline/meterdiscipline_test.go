package meterdiscipline_test

import (
	"path/filepath"
	"testing"

	"accluster/internal/analysis/atest"
	"accluster/internal/analysis/meterdiscipline"
)

func TestViolations(t *testing.T) {
	atest.Run(t, filepath.Join("testdata", "positive"), "meterpos", meterdiscipline.Analyzer)
}

func TestRealIdiomsClean(t *testing.T) {
	atest.Run(t, filepath.Join("testdata", "negative"), "meterneg", meterdiscipline.Analyzer)
}
