// Package meterdiscipline enforces the cost-meter publication contract
// from PR 4: shared cost.Meter state is only ever advanced by merging a
// per-query delta through cost.SyncMeter.Merge. Read-phase code records
// counts into a private scratch meter and merges once at the end; nothing
// outside internal/cost writes a long-lived meter's fields directly.
//
// A direct field write (assignment, compound assignment, ++/--) through a
// cost.Meter value is diagnosed unless the meter is one of the approved
// scratch forms:
//
//   - a field of a type annotated //ac:scratch (the per-query scratch
//     records pooled by core and diskengine),
//   - a local variable of type cost.Meter declared in the writing function
//     (a delta being assembled before Merge), or
//   - a parameter of type cost.Meter / *cost.Meter (a record-twin helper
//     filling the caller's delta), or
//   - a field of a type annotated //ac:serialmeter — the single-mutex
//     baseline engines (seqscan, rstar, xtree, mbbclust), whose every
//     operation holds the exclusive lock, so a shared plain Meter is safe
//     by construction. The concurrent engines must not carry this marker.
//
// Writes inside the cost package itself (Meter.Add/Reset/Sub and the
// SyncMeter internals) are exempt. SyncMeter's fields are unexported, so
// the compiler already prevents direct writes to it elsewhere; this
// analyzer closes the same hole for the plain Meter twins.
package meterdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"accluster/internal/analysis"
)

// Analyzer is the meterdiscipline invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "meterdiscipline",
	Doc:  "flag direct writes to cost-meter fields outside scratch records and cost.SyncMeter.Merge",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if isCostPackage(pass.Pkg.Path()) {
		return nil
	}
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.fn = fd
			ast.Inspect(fd.Body, c.visit)
		}
	}
	return nil
}

func isCostPackage(path string) bool {
	return path == "cost" || strings.HasSuffix(path, "/cost")
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
}

func (c *checker) visit(n ast.Node) bool {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.DEFINE {
			return true
		}
		for _, lhs := range s.Lhs {
			c.checkWrite(lhs)
		}
	case *ast.IncDecStmt:
		c.checkWrite(s.X)
	case *ast.UnaryExpr:
		// &m.Field escapes a meter field for arbitrary writes; treat a
		// taken address of a non-scratch meter field like a write.
		if s.Op == token.AND {
			c.checkWrite(ast.Unparen(s.X))
		}
	}
	return true
}

// checkWrite diagnoses lhs when it is a field selection on a shared
// cost.Meter.
func (c *checker) checkWrite(lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := ast.Unparen(sel.X)
	baseT := c.typeOf(base)
	if !isMeterType(baseT) {
		return
	}
	if c.approvedScratch(base) {
		return
	}
	c.pass.Reportf(lhs.Pos(), "direct write to cost-meter field %s of a shared meter: record into a scratch delta and publish via cost.SyncMeter.Merge", sel.Sel.Name)
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isMeterType reports whether t (possibly behind pointers) is the cost
// package's Meter or SyncMeter.
func isMeterType(t types.Type) bool {
	n := analysis.NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	name := n.Obj().Name()
	return (name == "Meter" || name == "SyncMeter") && isCostPackage(n.Obj().Pkg().Path())
}

// approvedScratch reports whether the meter expression is one of the
// allowed scratch forms.
func (c *checker) approvedScratch(base ast.Expr) bool {
	switch b := base.(type) {
	case *ast.Ident:
		obj, ok := c.pass.Info.Uses[b].(*types.Var)
		if !ok {
			return false
		}
		// Package-level meters are shared by definition.
		if obj.Parent() == c.pass.Pkg.Scope() {
			return false
		}
		// Locals and parameters (value or pointer) are per-call deltas.
		return true
	case *ast.StarExpr:
		return c.approvedScratch(ast.Unparen(b.X))
	case *ast.SelectorExpr:
		// Field of a container: approved only when the container's type
		// is an annotated scratch record or a lock-serialized baseline
		// engine.
		cont := analysis.NamedOf(c.typeOf(ast.Unparen(b.X)))
		if cont == nil {
			return false
		}
		key := analysis.TypeKey(cont)
		return c.pass.Annot.Has(key, "scratch") || c.pass.Annot.Has(key, "serialmeter")
	}
	return false
}
