// Package atest is the fixture harness for the invariant analyzers, in the
// spirit of golang.org/x/tools/go/analysis/analysistest but built only on
// the standard library.
//
// A fixture directory holds one Go package. Expected diagnostics are
// written inline as trailing comments:
//
//	return make([]uint64, n) // want "make in"
//
// Each quoted string after `want` is a regular expression that must match
// the message of exactly one diagnostic reported on that line; diagnostics
// without a matching expectation, and expectations without a matching
// diagnostic, fail the test. A line with no want comment asserts that no
// diagnostic lands there — negative fixtures are just files with no wants.
//
// The package is type-checked for real (imports resolve through the build
// cache via `go list -export`), so fixtures can import the repository's own
// packages — cost for the meter rules, store for the corruption sentinel —
// and must compile.
package atest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"accluster/internal/analysis"
)

// Run type-checks the fixture package in dir under import path pkgPath,
// runs the analyzer over it, and compares the diagnostics against the
// fixture's want comments. pkgPath matters: corrupterr scopes its
// construction rule to persistence package names, and the annotation table
// keys every //ac:* marker by it.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatalf("atest: no fixture files in %s", dir)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("atest: parse %s: %v", name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}

	exports := make(map[string]string)
	if len(imports) > 0 {
		root, _, err := analysis.ModuleRoot(dir)
		if err != nil {
			t.Fatal(err)
		}
		var pats []string
		for p := range imports {
			pats = append(pats, p)
		}
		sort.Strings(pats)
		exports, err = analysis.ListExports(root, pats...)
		if err != nil {
			t.Fatal(err)
		}
	}

	annot := analysis.NewAnnotations()
	for _, f := range files {
		annot.AnnotateFile(pkgPath, f)
	}
	pkg, err := analysis.TypeCheckFiles(fset, pkgPath, dir, files, exports)
	if err != nil {
		t.Fatalf("atest: fixture must compile: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a}, annot)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", posString(d.Pos), d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// want is one inline expectation.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantString pulls the quoted regular expressions out of a want comment.
var wantString = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants parses every `// want "re" ...` comment in the fixtures.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantString.FindAllString(text[len("want "):], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, text)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// claim matches a diagnostic against the first unmatched expectation on its
// line.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func posString(p token.Position) string {
	return p.Filename + ":" + strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Column)
}
