// Package seqscan implements the Sequential Scan baseline (§7.1): the whole
// database is a single sequentially stored collection and every query checks
// every object against the selection criterion. Despite being quantitatively
// expensive, it benefits from perfect data locality and sustained sequential
// transfer, which is why it is the reference competitor in high-dimensional
// spaces.
//
// Verification exits early at the first failing dimension, so the verified
// byte count (and therefore the modeled in-memory cost) grows for less
// selective queries — the effect reported in the paper's footnote 4.
package seqscan

import (
	"fmt"

	"accluster/internal/cost"
	"accluster/internal/geom"
)

// Store is a flat collection of multidimensional extended objects. It is not
// safe for concurrent use: every operation holds the caller's exclusive
// lock, so the embedded cost meter is written directly.
//
//ac:serialmeter
type Store struct {
	dims     int
	objBytes int
	ids      []uint32
	data     []float32
	pos      map[uint32]int32
	meter    cost.Meter
}

// New returns an empty store for the given dimensionality.
func New(dims int) (*Store, error) {
	if dims < 1 {
		return nil, fmt.Errorf("seqscan: invalid dimensionality %d", dims)
	}
	return &Store{dims: dims, objBytes: geom.ObjectBytes(dims), pos: make(map[uint32]int32)}, nil
}

// Dims returns the data space dimensionality.
func (s *Store) Dims() int { return s.dims }

// Len returns the number of stored objects.
func (s *Store) Len() int { return len(s.ids) }

// Meter returns the accumulated operation counters.
func (s *Store) Meter() cost.Meter { return s.meter }

// ResetMeter zeroes the operation counters.
func (s *Store) ResetMeter() { s.meter.Reset() }

// Insert appends an object.
func (s *Store) Insert(id uint32, r geom.Rect) error {
	if r.Dims() != s.dims {
		return fmt.Errorf("seqscan: object has %d dims, store has %d", r.Dims(), s.dims)
	}
	if !r.Valid() {
		return fmt.Errorf("seqscan: invalid rectangle %v", r)
	}
	if _, dup := s.pos[id]; dup {
		return fmt.Errorf("seqscan: duplicate object id %d", id)
	}
	s.pos[id] = int32(len(s.ids))
	s.ids = append(s.ids, id)
	s.data = geom.AppendFlat(s.data, r)
	return nil
}

// Delete removes the object with the given id, reporting whether it existed.
func (s *Store) Delete(id uint32) bool {
	i, ok := s.pos[id]
	if !ok {
		return false
	}
	last := int32(len(s.ids) - 1)
	if i != last {
		s.ids[i] = s.ids[last]
		copy(s.data[int(i)*2*s.dims:(int(i)+1)*2*s.dims],
			s.data[int(last)*2*s.dims:(int(last)+1)*2*s.dims])
		s.pos[s.ids[i]] = i
	}
	s.ids = s.ids[:last]
	s.data = s.data[:int(last)*2*s.dims]
	delete(s.pos, id)
	return true
}

// Get returns the rectangle stored under id.
func (s *Store) Get(id uint32) (geom.Rect, bool) {
	i, ok := s.pos[id]
	if !ok {
		return geom.Rect{}, false
	}
	return geom.FromFlat(s.data, int(i), s.dims), true
}

// Search scans the database (one seek, one sequential transfer of the whole
// collection on disk) and verifies every object. emit returning false stops
// the scan early.
func (s *Store) Search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error {
	if q.Dims() != s.dims {
		return fmt.Errorf("seqscan: query has %d dims, store has %d", q.Dims(), s.dims)
	}
	if !rel.Valid() {
		return fmt.Errorf("seqscan: invalid relation %v", rel)
	}
	s.meter.Queries++
	s.meter.Explorations++
	s.meter.Seeks++
	s.meter.BytesTransferred += int64(len(s.ids)) * int64(s.objBytes)
	s.meter.ObjectsVerified += int64(len(s.ids))
	for i := range s.ids {
		ok, checked := geom.FlatMatches(s.data, i, q, rel)
		s.meter.BytesVerified += int64(checked) * 8
		if ok {
			s.meter.Results++
			if !emit(s.ids[i]) {
				break
			}
		}
	}
	return nil
}

// Count returns the number of objects satisfying the selection.
func (s *Store) Count(q geom.Rect, rel geom.Relation) (int, error) {
	n := 0
	err := s.Search(q, rel, func(uint32) bool { n++; return true })
	return n, err
}

// SearchIDs collects the identifiers of all qualifying objects.
func (s *Store) SearchIDs(q geom.Rect, rel geom.Relation) ([]uint32, error) {
	var out []uint32
	err := s.Search(q, rel, func(id uint32) bool { out = append(out, id); return true })
	return out, err
}
