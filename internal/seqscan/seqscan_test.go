package seqscan

import (
	"math/rand"
	"sort"
	"testing"

	"accluster/internal/cost"
	"accluster/internal/geom"
)

func randomRect(rng *rand.Rand, dims int, maxSize float32) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		size := rng.Float32() * maxSize
		lo := rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("dims=0 must fail")
	}
	s, err := New(3)
	if err != nil || s.Dims() != 3 || s.Len() != 0 {
		t.Fatalf("New(3): %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	s, _ := New(2)
	r := geom.Rect{Min: []float32{0.1, 0.1}, Max: []float32{0.2, 0.2}}
	if err := s.Insert(1, r); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(1, r); err == nil {
		t.Error("duplicate id must fail")
	}
	if err := s.Insert(2, geom.Point([]float32{0.5})); err == nil {
		t.Error("wrong dims must fail")
	}
	if err := s.Insert(3, geom.Rect{Min: []float32{0.9, 0}, Max: []float32{0.1, 1}}); err == nil {
		t.Error("invalid rect must fail")
	}
}

func TestCRUDAndSearch(t *testing.T) {
	s, _ := New(3)
	rng := rand.New(rand.NewSource(1))
	rects := make(map[uint32]geom.Rect)
	for id := uint32(0); id < 300; id++ {
		r := randomRect(rng, 3, 0.4)
		rects[id] = r
		if err := s.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	for id, want := range rects {
		got, ok := s.Get(id)
		if !ok || !got.Equal(want) {
			t.Fatalf("Get(%d)", id)
		}
	}
	if _, ok := s.Get(999); ok {
		t.Error("absent id")
	}
	for id := uint32(0); id < 100; id++ {
		if !s.Delete(id) {
			t.Fatalf("Delete(%d)", id)
		}
		delete(rects, id)
	}
	if s.Delete(0) {
		t.Error("double delete")
	}
	for qi := 0; qi < 60; qi++ {
		q := randomRect(rng, 3, 0.5)
		rel := geom.Relation(qi % 3)
		got, err := s.SearchIDs(q, rel)
		if err != nil {
			t.Fatal(err)
		}
		var want []uint32
		for id, r := range rects {
			if r.Matches(rel, q) {
				want = append(want, id)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: mismatch at %d", qi, i)
			}
		}
	}
}

func TestSearchValidation(t *testing.T) {
	s, _ := New(2)
	if err := s.Search(geom.Point([]float32{0.5}), geom.Intersects, func(uint32) bool { return true }); err == nil {
		t.Error("wrong query dims must fail")
	}
	if err := s.Search(geom.Point([]float32{0.5, 0.5}), geom.Relation(9), func(uint32) bool { return true }); err == nil {
		t.Error("bad relation must fail")
	}
}

func TestMeterSingleSeekPerQuery(t *testing.T) {
	s, _ := New(2)
	rng := rand.New(rand.NewSource(2))
	for id := uint32(0); id < 50; id++ {
		if err := s.Insert(id, randomRect(rng, 2, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Count(randomRect(rng, 2, 0.5), geom.Intersects); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Meter()
	if m.Queries != 4 || m.Seeks != 4 || m.Explorations != 4 {
		t.Fatalf("meter: %v", m)
	}
	if m.ObjectsVerified != 200 {
		t.Fatalf("ObjectsVerified = %d, want 200", m.ObjectsVerified)
	}
	want := int64(4) * 50 * int64(geom.ObjectBytes(2))
	if m.BytesTransferred != want {
		t.Fatalf("BytesTransferred = %d, want %d", m.BytesTransferred, want)
	}
	s.ResetMeter()
	if s.Meter() != (cost.Meter{}) {
		t.Error("ResetMeter")
	}
}

func TestFootnote4Effect(t *testing.T) {
	// Footnote 4: in-memory sequential scan gets more expensive for less
	// selective queries because more dimensions are verified on average
	// before the first failing dimension. Verified bytes for a broad
	// query must exceed those for a narrow query.
	s, _ := New(16)
	rng := rand.New(rand.NewSource(3))
	for id := uint32(0); id < 2000; id++ {
		if err := s.Insert(id, randomRect(rng, 16, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	narrow := geom.Point(make([]float32, 16))
	for d := range narrow.Min {
		narrow.Min[d] = 0.01
		narrow.Max[d] = 0.011
	}
	if _, err := s.Count(narrow, geom.Intersects); err != nil {
		t.Fatal(err)
	}
	narrowBytes := s.Meter().BytesVerified
	s.ResetMeter()
	broad := geom.Rect{Min: make([]float32, 16), Max: make([]float32, 16)}
	for d := range broad.Max {
		broad.Max[d] = 1
	}
	if _, err := s.Count(broad, geom.Intersects); err != nil {
		t.Fatal(err)
	}
	broadBytes := s.Meter().BytesVerified
	if broadBytes <= narrowBytes {
		t.Errorf("broad query verified %d bytes, narrow %d: want broad > narrow", broadBytes, narrowBytes)
	}
	if broadBytes < 2*narrowBytes {
		t.Errorf("expected a substantial (~up to 3x) gap, got %d vs %d", broadBytes, narrowBytes)
	}
}

func TestEarlyStop(t *testing.T) {
	s, _ := New(1)
	for id := uint32(0); id < 10; id++ {
		if err := s.Insert(id, geom.Rect{Min: []float32{0.4}, Max: []float32{0.6}}); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	err := s.Search(geom.Rect{Min: []float32{0}, Max: []float32{1}}, geom.Intersects, func(uint32) bool {
		count++
		return count < 3
	})
	if err != nil || count != 3 {
		t.Fatalf("early stop: count=%d err=%v", count, err)
	}
}
