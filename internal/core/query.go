package core

import (
	"fmt"

	"accluster/internal/geom"
)

// Search executes a spatial selection (Fig. 5): every materialized cluster's
// signature is checked against the query; matching clusters are explored and
// their members verified individually. Query statistics are updated for
// explored clusters and for their virtually explored candidate subclusters.
// emit is called once per qualifying object; returning false stops early
// (statistics and the reorganization schedule are still maintained).
func (ix *Index) Search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error {
	if q.Dims() != ix.cfg.Dims {
		return fmt.Errorf("core: query has %d dims, index has %d", q.Dims(), ix.cfg.Dims)
	}
	if !rel.Valid() {
		return fmt.Errorf("core: invalid relation %v", rel)
	}
	ix.meter.Queries++
	ix.meter.SigChecks += int64(len(ix.clusters))
	stopped := false
	for _, c := range ix.clusters {
		if !c.signature.MatchesQuery(q, rel) {
			continue
		}
		// Explore the cluster: one sequential region (one seek on
		// disk, n·objBytes transferred), then per-object verification.
		ix.meter.Explorations++
		ix.meter.Seeks++
		ix.meter.BytesTransferred += int64(len(c.ids)) * int64(ix.objBytes)
		c.q++
		for i := range c.cands {
			cd := &c.cands[i]
			if cd.matchesQueryDim(rel, q.Min[cd.sp.Dim], q.Max[cd.sp.Dim]) {
				cd.q++
			}
		}
		if stopped {
			// The consumer gave up, but statistics for remaining
			// matching clusters were already counted above; skip
			// the member verification work only.
			continue
		}
		ix.meter.ObjectsVerified += int64(len(c.ids))
		for i := range c.ids {
			ok, checked := geom.FlatMatches(c.data, i, q, rel)
			ix.meter.BytesVerified += int64(checked) * 8
			if ok {
				ix.meter.Results++
				if !emit(c.ids[i]) {
					stopped = true
					break
				}
			}
		}
	}
	ix.window++
	ix.sinceReorg++
	if ix.sinceReorg >= ix.cfg.ReorgEvery {
		ix.Reorganize()
	}
	return nil
}

// Count returns the number of objects satisfying the selection.
func (ix *Index) Count(q geom.Rect, rel geom.Relation) (int, error) {
	n := 0
	err := ix.Search(q, rel, func(uint32) bool { n++; return true })
	return n, err
}

// SearchIDs collects the identifiers of all qualifying objects.
func (ix *Index) SearchIDs(q geom.Rect, rel geom.Relation) ([]uint32, error) {
	var out []uint32
	err := ix.Search(q, rel, func(id uint32) bool { out = append(out, id); return true })
	return out, err
}
