package core

import (
	"fmt"
	mbits "math/bits"

	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/sig"
)

// searchScratch holds the per-query buffers of one in-flight selection, so
// that steady-state searches allocate nothing: the matching cluster
// positions from the signature scan, the verification bitmap (sized to the
// largest explored cluster), the dimension ordering and its sort keys, plus
// everything the query will publish after its read phase — the cost-meter
// delta and the statistics delta. Scratches live in a pool (Index.scratch):
// each concurrent query owns its own for the duration of the read phase;
// the scratch travels with the statistics delta through the publication
// mailbox and returns to the pool once the delta is applied.
//
//ac:scratch
type searchScratch struct {
	matches []int32   // positions of signature-matching clusters
	bits    []uint64  // candidate bitmap for the block-scan kernels
	order   []int     // per-query dimension processing order
	widths  []float32 // sort keys backing order

	meter cost.Meter // this query's operation counts
	stats statDelta  // this query's deferred statistics publication

	// direct marks the exclusive-access (serial) mode: the query applies
	// its statistics increments inline instead of recording them — the
	// caller owns the index, so the record-then-replay pass of the
	// concurrent path would be pure overhead.
	direct bool
}

// ensureBits returns the bitmap sized for n objects.
//
//ac:noalloc
func (sc *searchScratch) ensureBits(n int) []uint64 {
	w := geom.BitmapWords(n)
	if cap(sc.bits) < w {
		//acvet:ignore noalloc amortized scratch growth; no alloc once bits reaches dataset size
		sc.bits = make([]uint64, w)
	}
	return sc.bits[:w]
}

// Search executes a spatial selection (Fig. 5): every materialized cluster's
// signature is checked against the query (one linear scan of the flat
// signature mirror); matching clusters are explored and their members
// verified by the columnar block-scan kernels, one dimension column at a
// time with the most selective dimensions first. Query statistics are
// updated for explored clusters and for their virtually explored candidate
// subclusters. emit is called once per qualifying object; returning false
// stops early (statistics and the reorganization schedule are still
// maintained). emit must not call back into the same index (the in-flight
// query defers its statistics publication; a reentrant exclusive operation
// panics).
//
// Search publishes statistics and runs scheduled maintenance inline, so it
// requires exclusive access. Concurrent callers holding a shared lock use
// SearchRead/SearchIDsAppendRead/CountRead, which defer publication.
func (ix *Index) Search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error {
	return ix.searchSerial(q, rel, emit, nil, nil)
}

// searchSerial is the exclusive-access path: statistics apply inline during
// the scan (no record-and-replay) and the query pays its budgeted slice of
// pending reorganization work, exactly the paper's coupled schedule. Any
// deltas queued by earlier concurrent-mode queries are applied first, so
// the two modes interleave coherently.
func (ix *Index) searchSerial(q geom.Rect, rel geom.Relation, emit func(id uint32) bool, out *[]uint32, count *int) error {
	ix.exclusivePrep()
	sc := ix.getScratch()
	sc.direct = true
	err := ix.searchRead(sc, q, rel, emit, out, count)
	sc.direct = false
	if err != nil {
		ix.putScratch(sc)
		return err
	}
	ix.meter.Merge(sc.meter)
	ix.putScratch(sc)
	ix.window++
	ix.sinceReorg++
	if ix.sinceReorg >= ix.cfg.ReorgEvery {
		ix.beginEpoch()
	}
	if !ix.cfg.BackgroundReorg && len(ix.reorgQ) > 0 {
		// Inline incremental mode: this query pays for one budgeted
		// slice of the pending reorganization work instead of one
		// caller in ReorgEvery absorbing the whole pass.
		ix.drain(ix.cfg.ReorgBudgetClusters, ix.cfg.ReorgBudgetObjects)
	}
	return nil
}

// SearchRead is Search for concurrent callers: it is safe to run
// simultaneously with other *Read queries on the same index (the caller
// typically holds a shared lock excluding mutations). The query's
// statistics updates are recorded and queued rather than applied; they take
// effect when an exclusive holder drains them (every mutating operation
// does, as does TryDrainStats).
//
//ac:noalloc
func (ix *Index) SearchRead(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error {
	return ix.searchShared(q, rel, emit, nil, nil)
}

// SearchIDsAppendRead is SearchIDsAppend for concurrent callers; see
// SearchRead for the publication contract.
//
//ac:noalloc
func (ix *Index) SearchIDsAppendRead(dst []uint32, q geom.Rect, rel geom.Relation) ([]uint32, error) {
	err := ix.searchShared(q, rel, nil, &dst, nil)
	return dst, err
}

// CountRead is Count for concurrent callers; see SearchRead for the
// publication contract.
//
//ac:noalloc
func (ix *Index) CountRead(q geom.Rect, rel geom.Relation) (int, error) {
	n := 0
	err := ix.searchShared(q, rel, nil, nil, &n)
	return n, err
}

// searchShared runs the read phase and defers the statistics publication to
// the mailbox.
//
//ac:noalloc
func (ix *Index) searchShared(q geom.Rect, rel geom.Relation, emit func(id uint32) bool, out *[]uint32, count *int) error {
	sc := ix.getScratch()
	if err := ix.searchRead(sc, q, rel, emit, out, count); err != nil {
		ix.putScratch(sc)
		return err
	}
	ix.meter.Merge(sc.meter)
	ix.enqueueStats(sc)
	return nil
}

// searchRead is the read phase of a selection: it delivers qualifying ids
// through exactly one of three sinks — emit (with early-stop support), out
// (append without the per-object indirection), or count (survivor totals
// only) — and records, rather than applies, every side effect: operation
// counts into sc.meter, statistics increments into sc.stats. It touches no
// index state that mutations change, so any number of read phases may run
// concurrently; mutations require exclusivity.
//
//ac:noalloc
func (ix *Index) searchRead(sc *searchScratch, q geom.Rect, rel geom.Relation, emit func(id uint32) bool, out *[]uint32, count *int) error {
	if q.Dims() != ix.cfg.Dims {
		//acvet:ignore noalloc cold argument-validation failure path
		return fmt.Errorf("core: query has %d dims, index has %d", q.Dims(), ix.cfg.Dims)
	}
	if !rel.Valid() {
		//acvet:ignore noalloc cold argument-validation failure path
		return fmt.Errorf("core: invalid relation %v", rel)
	}
	ix.readers.Add(1)
	defer ix.readers.Add(-1)
	sc.meter.Queries++
	sc.meter.SigChecks += int64(len(ix.clusters))
	sc.matches = ix.matchClusters(q, rel, sc.matches[:0])
	order := queryDimOrder(sc, q, rel)
	d := &sc.stats
	if !sc.direct {
		d.candOff = append(d.candOff, 0)
	}
	stopped := false
	for _, ci := range sc.matches {
		c := ix.clusters[ci]
		// Clustering statistics cover every signature-matching cluster,
		// even after the consumer stopped: the adaptive decisions model
		// which clusters the query distribution selects, not how much of
		// the answer a particular caller consumed. In exclusive (direct)
		// mode they apply inline; in concurrent mode they are recorded
		// here and applied at publication.
		if sc.direct {
			ix.syncStats(c)
			c.q++
			updateCandidateStats(c, q, rel)
		} else {
			d.clusters = append(d.clusters, c)
			recordCandidateStats(c, q, rel, d)
			d.candOff = append(d.candOff, int32(len(d.cands)))
		}
		if stopped {
			// The consumer gave up: the remaining matched clusters are
			// not explored, so no cost-meter charges (Seeks,
			// Explorations, BytesTransferred, ObjectsVerified) accrue
			// for them — only the statistics records above.
			continue
		}
		// Explore the cluster: one sequential region (one seek on
		// disk, n·objBytes transferred), then member verification.
		sc.meter.Explorations++
		sc.meter.Seeks++
		sc.meter.BytesTransferred += int64(len(c.ids)) * int64(ix.objBytes)
		n := len(c.ids)
		sc.meter.ObjectsVerified += int64(n)
		if n == 0 {
			continue
		}
		// Block verification: prune the candidate bitmap one dimension
		// column at a time. Every object still alive before a column
		// has that dimension inspected (2 float32 = 8 bytes), so the
		// verified-bytes accounting aggregates per-column survivor
		// counts; the scan stops as soon as the bitmap empties.
		bits := sc.ensureBits(n)
		geom.InitBitmap(bits, n)
		alive := n
		sb := ix.sigBounds[int(ci)*ix.sigStride() : (int(ci)+1)*ix.sigStride()]
		for _, dd := range order {
			// Signature-implied skip: the cluster's variation intervals
			// prove every member passes this dimension, so the column
			// scan is a no-op (sig.BoundsImplyDim, shared with the disk
			// engine).
			if sig.BoundsImplyDim(rel, sb, dd, q.Min[dd], q.Max[dd]) {
				continue
			}
			sc.meter.BytesVerified += int64(alive) * 8
			alive = geom.FilterDim(rel, c.lo[dd], c.hi[dd], q.Min[dd], q.Max[dd], bits)
			if alive == 0 {
				break
			}
		}
		if alive == 0 {
			continue
		}
		if count != nil {
			sc.meter.Results += int64(alive)
			*count += alive
			continue
		}
		if out != nil {
			sc.meter.Results += int64(alive)
			*out = geom.AppendSurvivors(*out, c.ids, bits)
			continue
		}
	emitSurvivors:
		for w, word := range bits {
			base := w << 6
			for word != 0 {
				j := mbits.TrailingZeros64(word)
				word &= word - 1
				sc.meter.Results++
				if !emit(c.ids[base+j]) {
					stopped = true
					break emitSurvivors
				}
			}
		}
	}
	return nil
}

// b2q converts a candidate-match condition into its statistics increment.
// The compiler lowers the conditional to a flag materialization (SETcc), so
// the candidate pass below carries no data-dependent branches — whether a
// candidate matches is close to a coin flip, which made the naive
// conditional increment mispredict-bound.
func b2q(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// updateCandidateStats bumps the query indicator of every candidate
// subcluster virtually explored by the query — the exclusive-mode twin of
// recordCandidateStats below, with the same relation-specialized match
// conditions (pinned equal by TestConcurrentStatsMatchSerial). The pass is
// branch-free: every indicator is written back with +0 or +1 rather than
// conditionally skipped.
func updateCandidateStats(c *Cluster, q geom.Rect, rel geom.Relation) {
	cs := &c.cands
	switch rel {
	case geom.Intersects:
		for i, d := range cs.dim {
			m := b2q(cs.aLo[i] <= q.Max[d]) & b2q(q.Min[d] <= cs.bHi[i])
			cs.q[i] += float64(m)
		}
	case geom.ContainedBy:
		for i, d := range cs.dim {
			m := b2q(cs.aHi[i] >= q.Min[d]) & b2q(cs.bLo[i] <= q.Max[d])
			cs.q[i] += float64(m)
		}
	case geom.Encloses:
		for i, d := range cs.dim {
			m := b2q(cs.aLo[i] <= q.Min[d]) & b2q(cs.bHi[i] >= q.Max[d])
			cs.q[i] += float64(m)
		}
	}
}

// recordCandidateStats records the candidate subclusters virtually explored
// by the query (the relation-specific necessary conditions of
// sig.QueryDimMatch, specialized per relation so the pass over the candidate
// array carries no per-candidate dispatch) into the statistics delta; the
// matching indicators are incremented when the delta is published.
//
//ac:noalloc
func recordCandidateStats(c *Cluster, q geom.Rect, rel geom.Relation, d *statDelta) {
	cs := &c.cands
	switch rel {
	case geom.Intersects:
		for i, dd := range cs.dim {
			if cs.aLo[i] <= q.Max[dd] && q.Min[dd] <= cs.bHi[i] {
				d.cands = append(d.cands, int32(i))
			}
		}
	case geom.ContainedBy:
		for i, dd := range cs.dim {
			if cs.aHi[i] >= q.Min[dd] && cs.bLo[i] <= q.Max[dd] {
				d.cands = append(d.cands, int32(i))
			}
		}
	case geom.Encloses:
		for i, dd := range cs.dim {
			if cs.aLo[i] <= q.Min[dd] && cs.bHi[i] >= q.Max[dd] {
				d.cands = append(d.cands, int32(i))
			}
		}
	}
}

// Count returns the number of objects satisfying the selection. It sums the
// per-cluster survivor counts of the block scan directly — no ids are
// extracted or buffered.
func (ix *Index) Count(q geom.Rect, rel geom.Relation) (int, error) {
	n := 0
	err := ix.searchSerial(q, rel, nil, nil, &n)
	return n, err
}

// SearchIDs collects the identifiers of all qualifying objects.
func (ix *Index) SearchIDs(q geom.Rect, rel geom.Relation) ([]uint32, error) {
	return ix.SearchIDsAppend(nil, q, rel)
}

// SearchIDsAppend appends the identifiers of all qualifying objects to dst
// and returns the extended slice. It bypasses the per-object emit
// indirection, and reusing the returned slice across calls makes
// steady-state selections allocation-free once its capacity covers the
// answer sets.
func (ix *Index) SearchIDsAppend(dst []uint32, q geom.Rect, rel geom.Relation) ([]uint32, error) {
	err := ix.searchSerial(q, rel, nil, &dst, nil)
	return dst, err
}
