package core

import (
	"fmt"
	mbits "math/bits"

	"accluster/internal/geom"
)

// searchScratch holds the per-index buffers the query path reuses across
// selections so that steady-state searches allocate nothing: the matching
// cluster positions from the signature scan, the verification bitmap (sized
// to the largest explored cluster), the dimension ordering, and a result
// buffer for Count.
type searchScratch struct {
	matches []int32   // positions of signature-matching clusters
	bits    []uint64  // candidate bitmap for the block-scan kernels
	order   []int     // per-query dimension processing order
	widths  []float32 // sort keys backing order
	busy    bool      // guards against reentrant queries from emit
}

// ensureBits returns the bitmap sized for n objects.
func (sc *searchScratch) ensureBits(n int) []uint64 {
	w := geom.BitmapWords(n)
	if cap(sc.bits) < w {
		sc.bits = make([]uint64, w)
	}
	return sc.bits[:w]
}

// Search executes a spatial selection (Fig. 5): every materialized cluster's
// signature is checked against the query (one linear scan of the flat
// signature mirror); matching clusters are explored and their members
// verified by the columnar block-scan kernels, one dimension column at a
// time with the most selective dimensions first. Query statistics are
// updated for explored clusters and for their virtually explored candidate
// subclusters. emit is called once per qualifying object; returning false
// stops early (statistics and the reorganization schedule are still
// maintained). emit must not query the same index (the reused per-index
// scratch makes queries non-reentrant; such a call panics).
func (ix *Index) Search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool) error {
	return ix.search(q, rel, emit, nil, nil)
}

// search runs the selection, delivering qualifying ids through exactly one
// of three sinks: emit (with early-stop support), out (append without the
// per-object indirection), or count (survivor totals only — no id
// extraction at all).
func (ix *Index) search(q geom.Rect, rel geom.Relation, emit func(id uint32) bool, out *[]uint32, count *int) error {
	if q.Dims() != ix.cfg.Dims {
		return fmt.Errorf("core: query has %d dims, index has %d", q.Dims(), ix.cfg.Dims)
	}
	if !rel.Valid() {
		return fmt.Errorf("core: invalid relation %v", rel)
	}
	sc := &ix.scratch
	if sc.busy {
		panic("core: reentrant query (emit callback must not query the index)")
	}
	sc.busy = true
	defer func() { sc.busy = false }()
	ix.meter.Queries++
	ix.meter.SigChecks += int64(len(ix.clusters))
	sc.matches = ix.matchClusters(q, rel, sc.matches[:0])
	order := ix.queryDimOrder(q, rel)
	stopped := false
	for _, ci := range sc.matches {
		c := ix.clusters[ci]
		// Clustering statistics cover every signature-matching cluster,
		// even after the consumer stopped: the adaptive decisions model
		// which clusters the query distribution selects, not how much of
		// the answer a particular caller consumed.
		ix.syncStats(c)
		c.q++
		updateCandidateStats(c, q, rel)
		if stopped {
			// The consumer gave up: the remaining matched clusters are
			// not explored, so no cost-meter charges (Seeks,
			// Explorations, BytesTransferred, ObjectsVerified) accrue
			// for them — only the statistics updates above.
			continue
		}
		// Explore the cluster: one sequential region (one seek on
		// disk, n·objBytes transferred), then member verification.
		ix.meter.Explorations++
		ix.meter.Seeks++
		ix.meter.BytesTransferred += int64(len(c.ids)) * int64(ix.objBytes)
		n := len(c.ids)
		ix.meter.ObjectsVerified += int64(n)
		if n == 0 {
			continue
		}
		// Block verification: prune the candidate bitmap one dimension
		// column at a time. Every object still alive before a column
		// has that dimension inspected (2 float32 = 8 bytes), so the
		// verified-bytes accounting aggregates per-column survivor
		// counts; the scan stops as soon as the bitmap empties.
		bits := sc.ensureBits(n)
		geom.InitBitmap(bits, n)
		alive := n
		sb := ix.sigBounds[int(ci)*ix.sigStride() : (int(ci)+1)*ix.sigStride()]
		for _, d := range order {
			// Signature-implied skip: when the cluster's variation
			// intervals [aLo,aHi)×[bLo,bHi) guarantee that every
			// member satisfies this dimension's predicate, the
			// column scan is a proven no-op. (Members have
			// lo < aHi — lo ≤ 1 when aHi is the closed domain
			// maximum — and hi ≥ bLo, which makes each condition
			// below sufficient for all members.)
			switch rel {
			case geom.Intersects:
				// lo ≤ qhi forced by aHi ≤ qhi; qlo ≤ hi by qlo ≤ bLo.
				if sb[4*d+1] <= q.Max[d] && q.Min[d] <= sb[4*d+2] {
					continue
				}
			case geom.ContainedBy:
				// lo ≥ qlo forced by aLo ≥ qlo; hi ≤ qhi by bHi ≤ qhi.
				if sb[4*d] >= q.Min[d] && sb[4*d+3] <= q.Max[d] {
					continue
				}
			case geom.Encloses:
				// lo ≤ qlo forced by aHi ≤ qlo; hi ≥ qhi by bLo ≥ qhi.
				if sb[4*d+1] <= q.Min[d] && sb[4*d+2] >= q.Max[d] {
					continue
				}
			}
			ix.meter.BytesVerified += int64(alive) * 8
			alive = geom.FilterDim(rel, c.lo[d], c.hi[d], q.Min[d], q.Max[d], bits)
			if alive == 0 {
				break
			}
		}
		if alive == 0 {
			continue
		}
		if count != nil {
			ix.meter.Results += int64(alive)
			*count += alive
			continue
		}
		if out != nil {
			ix.meter.Results += int64(alive)
			for w, word := range bits {
				base := w << 6
				for word != 0 {
					j := mbits.TrailingZeros64(word)
					word &= word - 1
					*out = append(*out, c.ids[base+j])
				}
			}
			continue
		}
	emitSurvivors:
		for w, word := range bits {
			base := w << 6
			for word != 0 {
				j := mbits.TrailingZeros64(word)
				word &= word - 1
				ix.meter.Results++
				if !emit(c.ids[base+j]) {
					stopped = true
					break emitSurvivors
				}
			}
		}
	}
	ix.window++
	ix.sinceReorg++
	if ix.sinceReorg >= ix.cfg.ReorgEvery {
		ix.beginEpoch()
	}
	if !ix.cfg.BackgroundReorg && len(ix.reorgQ) > 0 {
		// Inline incremental mode: this query pays for one budgeted
		// slice of the pending reorganization work instead of one
		// caller in ReorgEvery absorbing the whole pass.
		ix.ReorgStep()
	}
	return nil
}

// updateCandidateStats bumps the query indicator of every candidate
// subcluster virtually explored by the query (the relation-specific
// necessary conditions of sig.QueryDimMatch, specialized per relation so the
// pass over the candidate array carries no per-candidate dispatch).
func updateCandidateStats(c *Cluster, q geom.Rect, rel geom.Relation) {
	cs := &c.cands
	switch rel {
	case geom.Intersects:
		for i, d := range cs.dim {
			if cs.aLo[i] <= q.Max[d] && q.Min[d] <= cs.bHi[i] {
				cs.q[i]++
			}
		}
	case geom.ContainedBy:
		for i, d := range cs.dim {
			if cs.aHi[i] >= q.Min[d] && cs.bLo[i] <= q.Max[d] {
				cs.q[i]++
			}
		}
	case geom.Encloses:
		for i, d := range cs.dim {
			if cs.aLo[i] <= q.Min[d] && cs.bHi[i] >= q.Max[d] {
				cs.q[i]++
			}
		}
	}
}

// Count returns the number of objects satisfying the selection. It sums the
// per-cluster survivor counts of the block scan directly — no ids are
// extracted or buffered.
func (ix *Index) Count(q geom.Rect, rel geom.Relation) (int, error) {
	n := 0
	err := ix.search(q, rel, nil, nil, &n)
	return n, err
}

// SearchIDs collects the identifiers of all qualifying objects.
func (ix *Index) SearchIDs(q geom.Rect, rel geom.Relation) ([]uint32, error) {
	return ix.SearchIDsAppend(nil, q, rel)
}

// SearchIDsAppend appends the identifiers of all qualifying objects to dst
// and returns the extended slice. It bypasses the per-object emit
// indirection, and reusing the returned slice across calls makes
// steady-state selections allocation-free once its capacity covers the
// answer sets.
func (ix *Index) SearchIDsAppend(dst []uint32, q geom.Rect, rel geom.Relation) ([]uint32, error) {
	err := ix.search(q, rel, nil, &dst, nil)
	return dst, err
}
