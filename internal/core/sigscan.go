package core

import (
	"accluster/internal/geom"
	"accluster/internal/sig"
)

// The per-query signature pass is the one cost every selection pays for
// every materialized cluster (the A term of the cost model). Instead of
// pointer-chasing the *Cluster list and calling the signature's virtual
// per-dimension checks, the index mirrors all signature bounds into one flat
// side-array scanned linearly: sigBounds holds, for the cluster at position
// ci, the 4·dims floats [aLo,aHi,bLo,bHi] per dimension starting at
// ci·4·dims. The mirror is maintained on materialization, merge and restore,
// exactly tracking Index.clusters positions.

// sigStride returns the per-cluster float count of the signature mirror.
func (ix *Index) sigStride() int { return 4 * ix.cfg.Dims }

// appendSigBounds mirrors s for the cluster just appended to ix.clusters,
// with its dimension-selector block when the dimensionality fits.
func (ix *Index) appendSigBounds(s sig.Signature) {
	ix.sigBounds = sig.AppendBounds(ix.sigBounds, s)
	if ix.cfg.Dims <= sig.MaxSelectorDims {
		ix.sigSel = sig.AppendSelectors(ix.sigSel, ix.sigBounds[len(ix.sigBounds)-ix.sigStride():], ix.cfg.Dims)
	}
}

// removeSigBoundsAt swap-removes the bounds block (and selector block) of the
// cluster at position pos, matching the swap-removal of ix.clusters entries.
func (ix *Index) removeSigBoundsAt(pos int) {
	stride := ix.sigStride()
	last := len(ix.sigBounds) - stride
	copy(ix.sigBounds[pos*stride:(pos+1)*stride], ix.sigBounds[last:])
	ix.sigBounds = ix.sigBounds[:last]
	if len(ix.sigSel) != 0 {
		lastSel := len(ix.sigSel) - 4
		copy(ix.sigSel[pos*4:pos*4+4], ix.sigSel[lastSel:])
		ix.sigSel = ix.sigSel[:lastSel]
	}
}

// rebuildSigBounds re-derives the whole mirror from ix.clusters (restore
// path).
func (ix *Index) rebuildSigBounds() {
	ix.sigBounds = ix.sigBounds[:0]
	ix.sigSel = ix.sigSel[:0]
	for _, c := range ix.clusters {
		ix.appendSigBounds(c.signature)
	}
}

// matchClusters appends the positions of all clusters whose signature
// matches the query to dst, in cluster order (sig.MatchBounds over the flat
// mirror).
//
//ac:noalloc
func (ix *Index) matchClusters(q geom.Rect, rel geom.Relation, dst []int32) []int32 {
	return sig.MatchBounds(ix.sigBounds, len(ix.clusters), ix.cfg.Dims, q, rel, dst)
}

// queryDimOrder orders the dimensions most-selective-first for the
// verification kernels (geom.QueryDimOrder), computed once per query into
// the query's scratch and applied to every explored cluster.
//
//ac:noalloc
func queryDimOrder(sc *searchScratch, q geom.Rect, rel geom.Relation) []int {
	dims := q.Dims()
	if cap(sc.order) < dims {
		//acvet:ignore noalloc amortized scratch growth; no alloc once order fits query dims
		sc.order = make([]int, dims)
		//acvet:ignore noalloc amortized scratch growth; no alloc once widths fits query dims
		sc.widths = make([]float32, dims)
	}
	return geom.QueryDimOrder(sc.order[:dims], sc.widths[:dims], q, rel)
}
