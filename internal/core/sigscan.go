package core

import (
	"accluster/internal/geom"
	"accluster/internal/sig"
)

// The per-query signature pass is the one cost every selection pays for
// every materialized cluster (the A term of the cost model). Instead of
// pointer-chasing the *Cluster list and calling the signature's virtual
// per-dimension checks, the index mirrors all signature bounds into one flat
// side-array scanned linearly: sigBounds holds, for the cluster at position
// ci, the 4·dims floats [aLo,aHi,bLo,bHi] per dimension starting at
// ci·4·dims. The mirror is maintained on materialization, merge and restore,
// exactly tracking Index.clusters positions.

// sigStride returns the per-cluster float count of the signature mirror.
func (ix *Index) sigStride() int { return 4 * ix.cfg.Dims }

// appendSigBounds mirrors s for the cluster just appended to ix.clusters.
func (ix *Index) appendSigBounds(s sig.Signature) {
	for d := 0; d < s.Dims(); d++ {
		ix.sigBounds = append(ix.sigBounds, s.ALo[d], s.AHi[d], s.BLo[d], s.BHi[d])
	}
}

// removeSigBoundsAt swap-removes the bounds block of the cluster at position
// pos, matching the swap-removal of ix.clusters entries.
func (ix *Index) removeSigBoundsAt(pos int) {
	stride := ix.sigStride()
	last := len(ix.sigBounds) - stride
	copy(ix.sigBounds[pos*stride:(pos+1)*stride], ix.sigBounds[last:])
	ix.sigBounds = ix.sigBounds[:last]
}

// rebuildSigBounds re-derives the whole mirror from ix.clusters (restore
// path).
func (ix *Index) rebuildSigBounds() {
	ix.sigBounds = ix.sigBounds[:0]
	for _, c := range ix.clusters {
		ix.appendSigBounds(c.signature)
	}
}

// matchClusters appends the positions of all clusters whose signature
// matches the query to dst, in cluster order. The per-dimension conditions
// are the relation-specific necessary conditions of sig.MatchesQuery,
// specialized per relation so the scan is one pass over contiguous floats.
func (ix *Index) matchClusters(q geom.Rect, rel geom.Relation, dst []int32) []int32 {
	dims := ix.cfg.Dims
	stride := ix.sigStride()
	sb := ix.sigBounds
	switch rel {
	case geom.Intersects:
		for ci := range ix.clusters {
			b := sb[ci*stride : ci*stride+stride]
			ok := true
			for d := 0; d < dims; d++ {
				// alo ≤ qhi && qlo ≤ bhi
				if b[4*d] > q.Max[d] || q.Min[d] > b[4*d+3] {
					ok = false
					break
				}
			}
			if ok {
				dst = append(dst, int32(ci))
			}
		}
	case geom.ContainedBy:
		for ci := range ix.clusters {
			b := sb[ci*stride : ci*stride+stride]
			ok := true
			for d := 0; d < dims; d++ {
				// ahi ≥ qlo && blo ≤ qhi
				if b[4*d+1] < q.Min[d] || b[4*d+2] > q.Max[d] {
					ok = false
					break
				}
			}
			if ok {
				dst = append(dst, int32(ci))
			}
		}
	case geom.Encloses:
		for ci := range ix.clusters {
			b := sb[ci*stride : ci*stride+stride]
			ok := true
			for d := 0; d < dims; d++ {
				// alo ≤ qlo && bhi ≥ qhi
				if b[4*d] > q.Min[d] || b[4*d+3] < q.Max[d] {
					ok = false
					break
				}
			}
			if ok {
				dst = append(dst, int32(ci))
			}
		}
	}
	return dst
}

// queryDimOrder orders the dimensions most-selective-first for the
// verification kernels: ascending query width for Intersects and ContainedBy
// (a narrow query interval disqualifies the most objects), descending for
// Encloses (a wide demanded interval does). The order is computed once per
// query into the query's scratch and applied to every explored cluster.
func queryDimOrder(sc *searchScratch, q geom.Rect, rel geom.Relation) []int {
	dims := q.Dims()
	if cap(sc.order) < dims {
		sc.order = make([]int, dims)
		sc.widths = make([]float32, dims)
	}
	order, widths := sc.order[:dims], sc.widths[:dims]
	desc := rel == geom.Encloses
	for d := 0; d < dims; d++ {
		order[d] = d
		w := q.Max[d] - q.Min[d]
		if desc {
			w = -w
		}
		widths[d] = w
	}
	// Insertion sort, stable on dimension index: dims are small (≤ a few
	// dozen) and the scratch keeps this allocation-free.
	for i := 1; i < dims; i++ {
		d, w := order[i], widths[i]
		j := i - 1
		for j >= 0 && widths[j] > w {
			order[j+1], widths[j+1] = order[j], widths[j]
			j--
		}
		order[j+1], widths[j+1] = d, w
	}
	return order
}
