package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"accluster/internal/geom"
)

// TestStatefulModel runs randomized operation sequences (insert, delete,
// search with all relations, forced reorganizations) against a plain map
// model and checks both answer equivalence and the structural invariants.
// This is the package's main correctness property.
func TestStatefulModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(6) + 1
		ix, err := New(Config{
			Dims:           dims,
			ReorgEvery:     rng.Intn(30) + 5,
			DivisionFactor: []int{2, 3, 4}[rng.Intn(3)],
			Decay:          0.25 + rng.Float64()*0.75,
		})
		if err != nil {
			t.Logf("config: %v", err)
			return false
		}
		model := make(map[uint32]geom.Rect)
		nextID := uint32(0)
		for op := 0; op < 600; op++ {
			switch k := rng.Intn(10); {
			case k < 5: // insert
				r := randomRect(rng, dims, 0.5)
				if err := ix.Insert(nextID, r); err != nil {
					t.Logf("insert: %v", err)
					return false
				}
				model[nextID] = r
				nextID++
			case k < 7: // delete (possibly absent)
				if len(model) == 0 {
					continue
				}
				var id uint32
				for id = range model {
					break
				}
				if !ix.Delete(id) {
					t.Logf("delete %d failed", id)
					return false
				}
				delete(model, id)
				if ix.Delete(id) {
					t.Log("double delete succeeded")
					return false
				}
			case k < 9: // search
				q := randomRect(rng, dims, 0.6)
				rel := geom.Relation(rng.Intn(3))
				got, err := ix.SearchIDs(q, rel)
				if err != nil {
					t.Logf("search: %v", err)
					return false
				}
				var want []uint32
				for id, r := range model {
					if r.Matches(rel, q) {
						want = append(want, id)
					}
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(got) != len(want) {
					t.Logf("seed %d op %d: %d results, want %d", seed, op, len(got), len(want))
					return false
				}
				for i := range got {
					if got[i] != want[i] {
						t.Logf("seed %d op %d: result set mismatch", seed, op)
						return false
					}
				}
			default: // forced reorganization
				ix.Reorganize()
			}
		}
		if ix.Len() != len(model) {
			t.Logf("size mismatch: %d vs %d", ix.Len(), len(model))
			return false
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSnapshotRestoreProperty checks that snapshot→restore preserves the
// answer sets for arbitrary clustered states.
func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(5) + 1
		ix, err := New(Config{Dims: dims, ReorgEvery: 20})
		if err != nil {
			return false
		}
		for id := uint32(0); id < 800; id++ {
			if err := ix.Insert(id, randomRect(rng, dims, 0.4)); err != nil {
				return false
			}
		}
		for i := 0; i < 100; i++ {
			q := randomRect(rng, dims, 0.3)
			if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
				return false
			}
		}
		restored, err := Restore(Config{Dims: dims, ReorgEvery: 20}, ix.Snapshot())
		if err != nil {
			t.Logf("restore: %v", err)
			return false
		}
		if restored.Len() != ix.Len() || restored.Clusters() != ix.Clusters() {
			return false
		}
		if err := restored.CheckInvariants(); err != nil {
			t.Logf("restored invariants: %v", err)
			return false
		}
		for i := 0; i < 20; i++ {
			q := randomRect(rng, dims, 0.5)
			rel := geom.Relation(i % 3)
			a, err1 := ix.SearchIDs(q, rel)
			b, err2 := restored.SearchIDs(q, rel)
			if err1 != nil || err2 != nil || len(a) != len(b) {
				return false
			}
			sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
			sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
			for k := range a {
				if a[k] != b[k] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
