package core

// Cluster reorganization (§3.4, Figs. 1–3), incremental and budgeted.
//
// The paper revisits every materialized cluster each ReorgEvery queries: a
// cluster is merged back into its parent when the merging benefit function is
// positive, otherwise its best positive-benefit candidate subclusters are
// materialized greedily. Running that whole pass synchronously inside one
// Search call makes every ReorgEvery-th caller absorb an O(clusters) (and
// O(objects relocated)) latency spike, so the pass is decomposed into
// bounded steps over a work queue:
//
//   - Every ReorgEvery queries a new *reorganization epoch* begins: the
//     statistics window is decayed once (cluster and candidate indicators
//     decay lazily — see syncStats) and every materialized cluster is
//     enqueued for one revisit, ordered by its cached benefit estimate from
//     the previous revisit (best merge/materialization benefit, refreshed
//     lazily when the cluster is actually processed).
//   - Each trigger then drains the queue under a configurable budget
//     (ReorgBudgetClusters revisits and/or ReorgBudgetObjects relocations
//     per step): inline after each query by default, or from an external
//     drainer (a background goroutine owning the index lock) when
//     Config.BackgroundReorg is set.
//
// Because the window and the per-cluster indicators are decayed by the same
// factor per epoch, every access probability q/W a revisit observes is
// exactly the value the synchronous full pass would have used — the aging
// semantics are equivalent; only the position of the merge/split work in the
// query stream changes.

// Reorganize drains the reorganization queue until it converges: a new epoch
// is opened (decaying the statistics window exactly once, as the synchronous
// full pass did) and then every pending revisit runs with no budget. It is
// exported so callers can force convergence — after bulk loading plus query
// warm-up, or before comparing clusterings in tests and calibration.
//
//ac:excl
func (ix *Index) Reorganize() {
	ix.exclusivePrep()
	ix.beginEpoch()
	ix.drain(-1, -1)
}

// beginEpoch starts a reorganization round: the decayed query total ages by
// the configured factor (per-cluster statistics age lazily via syncStats, by
// the same factor per epoch) and every live cluster is queued for a revisit,
// ordered by the benefit estimate cached at its previous revisit.
//
// Under heavy churn an epoch can roll while revisits from the previous one
// are still queued. That is by design, not a failure: the benefit ordering
// runs the profitable merges and materializations in the earliest steps, so
// what carries over is the low-benefit tail — revisits that would mostly
// no-op. Raise the budgets (WithReorgBudget) or move draining off the query
// path (BackgroundReorg) if a deployment wants strictly per-epoch currency.
func (ix *Index) beginEpoch() {
	ix.sinceReorg = 0
	ix.epoch++
	ix.reorgRounds++
	ix.window *= ix.cfg.Decay
	for _, c := range ix.clusters {
		ix.enqueueReorg(c)
	}
}

// enqueueReorg adds c to the revisit queue at its cached priority (no-op if
// already queued or removed).
func (ix *Index) enqueueReorg(c *Cluster) {
	if c.queued || c.removed {
		return
	}
	c.queued = true
	ix.reorgQ.push(c)
}

// ReorgPending reports whether reorganization revisits are queued.
func (ix *Index) ReorgPending() bool { return len(ix.reorgQ) > 0 }

// ReorgStep drains one budgeted slice of the reorganization queue
// (Config.ReorgBudgetClusters revisits, Config.ReorgBudgetObjects
// relocations) and reports whether work remains. It is the unit an external
// drainer runs per lock acquisition when Config.BackgroundReorg is set.
//
//ac:excl
func (ix *Index) ReorgStep() bool {
	ix.exclusivePrep()
	return ix.drain(ix.cfg.ReorgBudgetClusters, ix.cfg.ReorgBudgetObjects)
}

// drain revisits queued clusters until the queue empties or a budget is
// exhausted (negative budgets are unlimited). Merges and materializations
// are chunked — a cluster can fill or empty across several steps — so the
// object budget is a hard cap on the relocations any single step performs.
// Reports whether work remains.
func (ix *Index) drain(clusterBudget, objectBudget int) bool {
	visited, moved := 0, 0
	for len(ix.reorgQ) > 0 {
		if clusterBudget >= 0 && visited >= clusterBudget {
			return true
		}
		if objectBudget >= 0 && moved >= objectBudget {
			return true
		}
		c := ix.reorgQ.pop()
		c.queued = false
		if c.removed {
			continue
		}
		visited++
		remaining := -1
		if objectBudget >= 0 {
			remaining = objectBudget - moved
		}
		n, done := ix.revisit(c, remaining)
		moved += n
		if !done {
			// The split loop ran out of object budget with positive-
			// benefit candidates left: the cluster keeps its place in
			// the queue (at the refreshed priority) for the next step.
			ix.enqueueReorg(c)
			return true
		}
	}
	return false
}

// revisit applies the Fig. 1 decision to c under an object budget (negative
// = unlimited): merge into the parent when profitable, otherwise materialize
// positive-benefit candidates. It returns the number of objects relocated
// and whether the revisit completed (false = requeue and continue next
// step). The best benefit observed is cached on the cluster as its queue
// priority for the next epoch.
func (ix *Index) revisit(c *Cluster, objectBudget int) (moved int, done bool) {
	ix.syncStats(c)
	// Merge hysteresis: a cluster created this epoch (the synchronous
	// pass never revisited same-round children either) or still being
	// filled by its parent's pinned split carries statistics that mirror
	// the parent's — a merge decision about it would be a decision about
	// the parent, and merging a half-filled child back just wastes the
	// relocations. Skip it until the transfer completes and it has aged
	// one epoch.
	if c != ix.root && c.parent != nil && !c.parent.removed &&
		ix.epoch-c.createdEpoch >= 1 && c.parent.activeChild != c {
		ix.syncStats(c.parent)
		pc, pa := ix.prob(c.q), ix.prob(c.parent.q)
		if b := ix.cfg.Params.MergingBenefit(pc, pa, c.Len(), ix.objBytes); b > 0 {
			c.prio = b
			return ix.mergeCluster(c, objectBudget)
		}
	}
	return ix.splitUnderBudget(c, objectBudget)
}

// splitUnderBudget (Fig. 3) greedily materializes the most profitable
// candidate subclusters of c until none has positive benefit or the object
// budget is exhausted. The candidate set is re-evaluated after every
// materialization chunk because moving objects out of c updates the
// indicators of the remaining candidates.
func (ix *Index) splitUnderBudget(c *Cluster, objectBudget int) (moved int, done bool) {
	cs := &c.cands
	for {
		// Continue a pinned in-progress materialization before weighing
		// any other candidate: overlapping candidates (other dimensions)
		// still count the members the active split has yet to move, so
		// their benefits are inflated until it completes — evaluating
		// them mid-split is what the synchronous atomic pass never did.
		ci := c.activeSplit
		if ci < 0 || ci >= cs.len() || cs.n[ci] <= 0 {
			pc := ix.prob(c.q)
			best := -1
			var bestBenefit float64
			for i := 0; i < cs.len(); i++ {
				if cs.n[i] <= 0 {
					continue
				}
				ps := ix.prob(cs.q[i])
				if ps > pc {
					ps = pc // counters guarantee q_s ≤ q_c; clamp defensively
				}
				b := ix.cfg.Params.MaterializationBenefit(pc, ps, int(cs.n[i]), ix.objBytes)
				if b > 0 && (best < 0 || b > bestBenefit) {
					best, bestBenefit = i, b
				}
			}
			if best < 0 {
				c.activeSplit = -1
				c.activeChild = nil
				c.prio = 0
				return moved, true
			}
			ci = best
			c.activeSplit = ci
			c.splitCursor = len(c.ids) - 1
			c.prio = bestBenefit
		}
		limit := -1
		if objectBudget >= 0 {
			if limit = objectBudget - moved; limit <= 0 {
				return moved, false
			}
		}
		child, n := ix.materialize(c, ci, limit)
		child.prio = c.prio
		c.activeChild = child
		moved += n
		if cs.n[ci] <= 0 {
			c.activeSplit = -1
			c.activeChild = nil
		}
	}
}

// materialize (Fig. 3 steps 4–11) moves members qualifying for candidate ci
// of c into a database cluster with the candidate's signature — created on
// the first chunk (inheriting the candidate's query statistics), found among
// c's children on continuation chunks. At most limit members move per call
// (negative = all), so one reorganization step never relocates more than its
// object budget: a large split simply fills its cluster across several
// steps, the candidate's shrinking membership indicator tracking the
// remainder.
func (ix *Index) materialize(c *Cluster, ci int, limit int) (*Cluster, int) {
	cs := &c.cands
	csig := cs.sp[ci].Child(c.signature)
	var child *Cluster
	for _, ch := range c.children {
		if ch.signature.Equal(csig) {
			child = ch
			break
		}
	}
	if child == nil {
		child = newCluster(csig, ix.cfg.DivisionFactor)
		child.parent = c
		child.q = cs.q[ci]
		child.statsEpoch = ix.epoch
		child.createdEpoch = ix.epoch
		c.children = append(c.children, child)
		child.pos = len(ix.clusters)
		ix.clusters = append(ix.clusters, child)
		ix.appendSigBounds(child.signature)
		ix.splits++
	}

	// Walk members downward from the resume cursor. A removal swaps the
	// tail element into the current slot, which is then re-examined —
	// between chunks, inserts and deletes can place never-examined
	// members anywhere, so the walk re-checks swapped-in slots and wraps
	// around once if the candidate's indicator says members remain.
	moved := 0
	dim := int(cs.dim[ci])
	i := c.splitCursor
	wrapped := false
	for {
		if i >= len(c.ids) {
			i = len(c.ids) - 1
		}
		if i < 0 {
			if cs.n[ci] > 0 && !wrapped {
				wrapped = true
				i = len(c.ids) - 1
				continue
			}
			break
		}
		if limit >= 0 && moved >= limit {
			break
		}
		lo, hi := c.objectDim(i, dim)
		if !cs.matchesObjectDim(ci, lo, hi) {
			i--
			continue
		}
		id := c.ids[i]
		pos := child.appendFrom(c, i)
		movedID, swapped := c.removeObjectAt(i)
		ix.loc[id] = objLoc{c: child, pos: int32(pos)}
		if swapped {
			ix.loc[movedID] = objLoc{c: c, pos: int32(i)}
		}
		ix.objectsRelocated++
		moved++
	}
	c.splitCursor = i
	return child, moved
}

// mergeCluster (Fig. 2) transfers members of c to its parent — at most
// limit per call (negative = all) — and, once c is empty, reparents its
// children and removes it from the database. A partially merged cluster is
// an ordinary smaller cluster; the merging benefit only grows as it drains,
// so the decision is re-confirmed and the transfer resumed at the next
// revisit. A queued cluster removed here keeps its heap slot and is skipped
// (via the removed flag) when popped.
func (ix *Index) mergeCluster(c *Cluster, limit int) (moved int, done bool) {
	a := c.parent
	ix.syncStats(a)
	if limit < 0 || limit >= len(c.ids) {
		// The whole remainder fits this chunk: bulk-transfer without
		// maintaining c's candidate indicators — the candidate set is
		// discarded with the cluster below.
		for i := range c.ids {
			id := c.ids[i]
			pos := a.appendFrom(c, i)
			ix.loc[id] = objLoc{c: a, pos: int32(pos)}
			ix.objectsRelocated++
			moved++
		}
		c.ids = c.ids[:0]
	}
	for len(c.ids) > 0 {
		if limit >= 0 && moved >= limit {
			return moved, false
		}
		i := len(c.ids) - 1
		id := c.ids[i]
		pos := a.appendFrom(c, i)
		c.removeObjectAt(i)
		ix.loc[id] = objLoc{c: a, pos: int32(pos)}
		ix.objectsRelocated++
		moved++
	}
	for _, ch := range c.children {
		ch.parent = a
		a.children = append(a.children, ch)
	}
	a.detachChild(c)

	last := len(ix.clusters) - 1
	ix.clusters[c.pos] = ix.clusters[last]
	ix.clusters[c.pos].pos = c.pos
	ix.clusters = ix.clusters[:last]
	ix.removeSigBoundsAt(c.pos)

	c.removed = true
	c.ids, c.lo, c.hi, c.children = nil, nil, nil, nil
	c.cands = candSet{}
	c.activeSplit = -1
	c.activeChild = nil
	ix.merges++
	return moved, true
}
