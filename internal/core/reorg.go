package core

// Cluster reorganization (§3.4, Figs. 1–3). Every ReorgEvery queries the
// index revisits each materialized cluster: a cluster is merged back into its
// parent when the merging benefit function is positive, otherwise its best
// positive-benefit candidate subclusters are materialized greedily.

// Reorganize runs one reorganization round over all materialized clusters
// and then ages the statistics window by the configured decay factor. It is
// normally triggered automatically by Search; it is exported so callers can
// force convergence (for example after bulk loading and a query warm-up).
func (ix *Index) Reorganize() {
	ix.sinceReorg = 0
	ix.reorgRounds++
	snapshot := append([]*Cluster(nil), ix.clusters...)
	for _, c := range snapshot {
		if c.removed {
			continue
		}
		// Fig. 1: merge when profitable, otherwise attempt a split.
		if c != ix.root && c.parent != nil && !c.parent.removed {
			pc, pa := ix.prob(c.q), ix.prob(c.parent.q)
			if ix.cfg.Params.MergingBenefit(pc, pa, c.Len(), ix.objBytes) > 0 {
				ix.mergeCluster(c)
				continue
			}
		}
		ix.tryClusterSplit(c)
	}
	d := ix.cfg.Decay
	ix.window *= d
	for _, c := range ix.clusters {
		c.q *= d
		for i := range c.cands.q {
			c.cands.q[i] *= d
		}
	}
}

// tryClusterSplit (Fig. 3) greedily materializes the most profitable
// candidate subclusters of c until none has positive benefit. The candidate
// set is re-evaluated after every materialization because moving objects out
// of c updates the indicators of the remaining candidates.
func (ix *Index) tryClusterSplit(c *Cluster) {
	for {
		pc := ix.prob(c.q)
		best := -1
		var bestBenefit float64
		cs := &c.cands
		for i := 0; i < cs.len(); i++ {
			if cs.n[i] <= 0 {
				continue
			}
			ps := ix.prob(cs.q[i])
			if ps > pc {
				ps = pc // counters guarantee q_s ≤ q_c; clamp defensively
			}
			b := ix.cfg.Params.MaterializationBenefit(pc, ps, int(cs.n[i]), ix.objBytes)
			if b > 0 && (best < 0 || b > bestBenefit) {
				best, bestBenefit = i, b
			}
		}
		if best < 0 {
			return
		}
		ix.materialize(c, best)
	}
}

// materialize (Fig. 3 steps 4–11) creates a database cluster from candidate
// ci of c: all qualifying members move to the new cluster, whose own
// candidate set is derived by the clustering function. The new cluster
// inherits the candidate's query statistics.
func (ix *Index) materialize(c *Cluster, ci int) *Cluster {
	cs := &c.cands
	child := newCluster(cs.sp[ci].Child(c.signature), ix.cfg.DivisionFactor)
	child.parent = c
	child.q = cs.q[ci]

	// Walk members backwards so the swap-remove only touches already
	// processed slots.
	dim := int(cs.dim[ci])
	for i := len(c.ids) - 1; i >= 0; i-- {
		lo, hi := c.objectDim(i, dim)
		if !cs.matchesObjectDim(ci, lo, hi) {
			continue
		}
		id := c.ids[i]
		pos := child.appendFrom(c, i)
		movedID, moved := c.removeObjectAt(i)
		ix.loc[id] = objLoc{c: child, pos: int32(pos)}
		if moved {
			ix.loc[movedID] = objLoc{c: c, pos: int32(i)}
		}
		ix.objectsRelocated++
	}
	c.children = append(c.children, child)
	child.pos = len(ix.clusters)
	ix.clusters = append(ix.clusters, child)
	ix.appendSigBounds(child.signature)
	ix.splits++
	return child
}

// mergeCluster (Fig. 2) transfers all members of c to its parent, reparents
// c's children and removes c from the database.
func (ix *Index) mergeCluster(c *Cluster) {
	a := c.parent
	for i := range c.ids {
		id := c.ids[i]
		pos := a.appendFrom(c, i)
		ix.loc[id] = objLoc{c: a, pos: int32(pos)}
		ix.objectsRelocated++
	}
	for _, ch := range c.children {
		ch.parent = a
		a.children = append(a.children, ch)
	}
	a.detachChild(c)

	last := len(ix.clusters) - 1
	ix.clusters[c.pos] = ix.clusters[last]
	ix.clusters[c.pos].pos = c.pos
	ix.clusters = ix.clusters[:last]
	ix.removeSigBoundsAt(c.pos)

	c.removed = true
	c.ids, c.lo, c.hi, c.children = nil, nil, nil, nil
	c.cands = candSet{}
	ix.merges++
}
