package core

import (
	"fmt"

	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/sig"
)

// Batched selection: one engine pass for N queries. A looped single-query
// caller pays N scans of the flat signature mirror, N statistics
// publications and — when several queries select the same cluster — N
// separate walks over that cluster's member columns. The batch path
// restructures the same work around the data instead of the queries:
//
//   - the signature mirror is scanned once for the whole batch with the
//     transposed query-block kernel (sig.MatchBoundsBatch),
//   - candidate clusters are grouped across queries, so each explored
//     cluster's columns are verified against every interested query while
//     they are hot in cache,
//   - the whole batch travels through the statistics mailbox as one
//     publication and costs one drain.
//
// Per-query observable state is preserved exactly: each query's result set,
// its cost-meter increments and its statistics increments (cluster Q,
// candidate q, one window tick per query, the epoch trigger between
// queries) equal the looped single-query execution against the same
// structure — the batch is one structural snapshot, which is also what a
// concurrent caller issuing N SearchRead calls back-to-back observes.

// batchScratch holds the per-batch buffers of one in-flight batched
// selection, pooled like searchScratch so steady-state batches allocate
// nothing. It travels with the batch statistics delta through the
// publication mailbox and returns to the pool once the delta is applied.
//
//ac:scratch
type batchScratch struct {
	bq    sig.BatchQueries // query-coordinate SoA of the batch
	match sig.BatchMatch   // cluster-major signature matches
	qbits []uint64         // query-survivor bitmap of the signature pass

	// Query-major transpose of match: qcIdx[qcOff[qi]:qcOff[qi+1]] are the
	// statistics-record indices (positions in match.QIdx and stats.d) of
	// query qi's matched clusters, in ascending cluster order — the order
	// matchClusters would have returned.
	qcOff []int32
	qcIdx []int32

	orders []int     // flat nq×dims per-query dimension orders
	widths []float32 // sort keys backing orders

	perQ [][]uint32 // per-query result accumulators (cluster-major fill)
	bits []uint64   // member-verification bitmap

	meter cost.Meter // the whole batch's operation counts
	stats batchDelta // the whole batch's deferred statistics publication
}

// batchDelta is the statistics publication a batch owes: statDelta's flat
// cluster/candidate record, one record per (cluster,query) signature match,
// laid out cluster-major — record j is the j-th entry of the kernel's
// cluster-major match, so recording walks each cluster's candidate columns
// once, hot, for all its interested queries. The query-major view needed to
// replay the increments query by query (each query's cluster Q and candidate
// q bumps followed by its window tick and epoch trigger, exactly the looped
// single-query order) is the scratch's qcOff/qcIdx transpose, whose entries
// index these records.
type batchDelta struct {
	nq int
	d  statDelta
}

func (bd *batchDelta) reset() {
	bd.nq = 0
	bd.d.reset()
}

// ensureBits returns the member-verification bitmap sized for n objects.
//
//ac:noalloc
func (bc *batchScratch) ensureBits(n int) []uint64 {
	w := geom.BitmapWords(n)
	if cap(bc.bits) < w {
		//acvet:ignore noalloc amortized scratch growth; no alloc once bits reaches dataset size
		bc.bits = make([]uint64, w)
	}
	return bc.bits[:w]
}

// getBatchScratch takes a batch scratch from the pool (its buffers are
// reset).
//
//ac:noalloc
func (ix *Index) getBatchScratch() *batchScratch {
	if bc, ok := ix.bscratch.Get().(*batchScratch); ok {
		return bc
	}
	//acvet:ignore noalloc pool-miss construction; steady state reuses pooled scratch
	return &batchScratch{}
}

// putBatchScratch clears the per-batch state and returns bc to the pool.
//
//ac:noalloc
func (ix *Index) putBatchScratch(bc *batchScratch) {
	bc.meter.Reset()
	bc.stats.reset()
	ix.bscratch.Put(bc)
}

// validateBatch rejects a malformed batch before any of it executes: unlike
// a loop of single queries, which errors mid-stream with the earlier
// queries already charged, a batch is atomic — either every query is valid
// or nothing runs.
func (ix *Index) validateBatch(qs []geom.Rect, rel geom.Relation) error {
	if !rel.Valid() {
		//acvet:ignore noalloc cold argument-validation failure path
		return fmt.Errorf("core: invalid relation %v", rel)
	}
	for i := range qs {
		if qs[i].Dims() != ix.cfg.Dims {
			//acvet:ignore noalloc cold argument-validation failure path
			return fmt.Errorf("core: batch query %d has %d dims, index has %d", i, qs[i].Dims(), ix.cfg.Dims)
		}
	}
	return nil
}

// SearchBatchRead executes every query in qs in one engine pass and fills
// dst with the per-query result sets (dst.Query(i) holds query i's ids, in
// the same order SearchIDsAppendRead would produce). It is the batch twin
// of SearchIDsAppendRead: safe to run simultaneously with other *Read
// queries under a shared lock, with the whole batch's statistics recorded
// and queued as a single publication — one mailbox entry, one drain —
// while the applied increments stay exactly those of the looped single
// queries. The batch reads one structural snapshot; an invalid query fails
// the whole batch before any of it executes.
//
//ac:noalloc
func (ix *Index) SearchBatchRead(dst *geom.IDBatch, qs []geom.Rect, rel geom.Relation) error {
	if err := ix.validateBatch(qs, rel); err != nil {
		return err
	}
	dst.Reset(len(qs))
	if len(qs) == 0 {
		return nil
	}
	bc := ix.getBatchScratch()
	ix.batchRead(bc, qs, rel, dst, false)
	ix.meter.Merge(bc.meter)
	ix.enqueueBatchStats(bc)
	return nil
}

// SearchIDsBatch is SearchBatchRead for exclusive-access callers: the batch
// statistics apply inline — replayed query by query, window ticks and epoch
// triggers interleaved exactly as the serial single-query loop would — and
// each query pays its budgeted slice of pending reorganization work.
func (ix *Index) SearchIDsBatch(dst *geom.IDBatch, qs []geom.Rect, rel geom.Relation) error {
	if err := ix.validateBatch(qs, rel); err != nil {
		return err
	}
	ix.exclusivePrep()
	dst.Reset(len(qs))
	if len(qs) == 0 {
		return nil
	}
	bc := ix.getBatchScratch()
	// With no epoch boundary inside the batch and no pending
	// reorganization work to interleave, the per-query statistics replay
	// is order-independent (syncStats is idempotent within an epoch, the
	// increments commute), so the read pass applies the increments
	// directly — the looped exclusive path's sc.direct mode, cluster-major
	// — instead of recording and replaying them.
	direct := len(ix.reorgQ) == 0 && ix.sinceReorg+len(qs) < ix.cfg.ReorgEvery
	ix.batchRead(bc, qs, rel, dst, direct)
	ix.meter.Merge(bc.meter)
	if direct {
		ix.window += float64(len(qs))
		ix.sinceReorg += len(qs)
	} else {
		for qi := 0; qi < len(qs); qi++ {
			ix.applyBatchQuery(bc, qi)
			if !ix.cfg.BackgroundReorg && len(ix.reorgQ) > 0 {
				ix.drain(ix.cfg.ReorgBudgetClusters, ix.cfg.ReorgBudgetObjects)
			}
		}
	}
	ix.putBatchScratch(bc)
	return nil
}

// batchRead is the read phase of a batched selection. With direct unset it
// touches no index state that mutations change and records every side effect
// into the batch scratch, so any number of read phases (single or batched)
// may run concurrently. With direct set — exclusive callers only, and only
// when no epoch boundary falls inside the batch — the per-cluster statistics
// apply inline during the cluster-major walk (the single-query sc.direct
// mode) and the recording, transpose and replay passes are skipped entirely.
//
//ac:noalloc
func (ix *Index) batchRead(bc *batchScratch, qs []geom.Rect, rel geom.Relation, dst *geom.IDBatch, direct bool) {
	ix.readers.Add(1)
	defer ix.readers.Add(-1)
	nq := len(qs)
	dims := ix.cfg.Dims
	nc := len(ix.clusters)
	bc.meter.Queries += int64(nq)
	bc.meter.SigChecks += int64(nq) * int64(nc)

	// One pass over the signature mirror for the whole batch: the N query
	// rectangles become coordinate columns, each signature the scalar side
	// of the block-scan kernels.
	bc.bq.Reset(qs, dims)
	qw := geom.BitmapWords(nq)
	if cap(bc.qbits) < qw {
		//acvet:ignore noalloc amortized scratch growth; no alloc once qbits covers the batch size
		bc.qbits = make([]uint64, qw)
	}
	sig.MatchBoundsBatch(ix.sigBounds, nc, dims, &bc.bq, rel, ix.sigSel, bc.qbits[:qw], &bc.match)

	bd := &bc.stats
	if !direct {
		// Transpose the cluster-major match into the query-major view
		// the statistics replay needs (counting sort over match
		// positions; within a query the records stay in ascending
		// cluster order, exactly the matchClusters order of the
		// single-query path). Each match.QIdx entry becomes one
		// statistics record below, in the same order, so the stored
		// value is the entry's own position.
		if cap(bc.qcOff) < nq+1 {
			//acvet:ignore noalloc amortized scratch growth; no alloc once qcOff covers the batch size
			bc.qcOff = make([]int32, 0, nq+1)
		}
		bc.qcOff = bc.qcOff[:nq+1]
		for i := range bc.qcOff {
			bc.qcOff[i] = 0
		}
		for _, q32 := range bc.match.QIdx {
			bc.qcOff[q32+1]++
		}
		for i := 0; i < nq; i++ {
			bc.qcOff[i+1] += bc.qcOff[i]
		}
		pairs := len(bc.match.QIdx)
		if cap(bc.qcIdx) < pairs {
			//acvet:ignore noalloc amortized scratch growth; no alloc once qcIdx covers the match volume
			bc.qcIdx = make([]int32, 0, pairs)
		}
		bc.qcIdx = bc.qcIdx[:pairs]
		for j, q32 := range bc.match.QIdx {
			bc.qcIdx[bc.qcOff[q32]] = int32(j)
			bc.qcOff[q32]++
		}
		// The cursor pass shifted every offset to the start of the
		// next query's range; shift back.
		for i := nq; i > 0; i-- {
			bc.qcOff[i] = bc.qcOff[i-1]
		}
		bc.qcOff[0] = 0

		bd.nq = nq
		bd.d.candOff = append(bd.d.candOff[:0], 0)
	}

	// Per-query dimension orders, computed once per batch.
	if cap(bc.orders) < nq*dims {
		//acvet:ignore noalloc amortized scratch growth; no alloc once orders covers the batch size
		bc.orders = make([]int, 0, nq*dims)
		//acvet:ignore noalloc amortized scratch growth; no alloc once widths covers the batch size
		bc.widths = make([]float32, 0, nq*dims)
	}
	orders, widths := bc.orders[:nq*dims], bc.widths[:nq*dims]
	for qi := range qs {
		geom.QueryDimOrder(orders[qi*dims:qi*dims+dims], widths[qi*dims:qi*dims+dims], qs[qi], rel)
	}

	if cap(bc.perQ) < nq {
		//acvet:ignore noalloc amortized scratch growth; no alloc once perQ covers the batch size
		next := make([][]uint32, nq)
		copy(next, bc.perQ)
		bc.perQ = next
	}
	bc.perQ = bc.perQ[:nq]
	for i := range bc.perQ {
		bc.perQ[i] = bc.perQ[i][:0]
	}

	// Cluster-major statistics recording and verification: each matched
	// cluster's candidate array and member columns are walked for every
	// interested query back-to-back, while they are hot in cache. The
	// per-(cluster,query) work and meter charges are exactly the
	// single-query path's; the records land in match order, which is what
	// the qcIdx transpose above indexes.
	stride := ix.sigStride()
	for p, ci := range bc.match.Clusters {
		c := ix.clusters[ci]
		n := len(c.ids)
		sb := ix.sigBounds[int(ci)*stride : (int(ci)+1)*stride]
		if direct {
			ix.syncStats(c)
			for _, q32 := range bc.match.QIdx[bc.match.QOff[p]:bc.match.QOff[p+1]] {
				c.q++
				updateCandidateStats(c, qs[q32], rel)
			}
		} else {
			for _, q32 := range bc.match.QIdx[bc.match.QOff[p]:bc.match.QOff[p+1]] {
				bd.d.clusters = append(bd.d.clusters, c)
				recordCandidateStats(c, qs[q32], rel, &bd.d)
				bd.d.candOff = append(bd.d.candOff, int32(len(bd.d.cands)))
			}
		}
		for _, q32 := range bc.match.QIdx[bc.match.QOff[p]:bc.match.QOff[p+1]] {
			qi := int(q32)
			q := qs[qi]
			bc.meter.Explorations++
			bc.meter.Seeks++
			bc.meter.BytesTransferred += int64(n) * int64(ix.objBytes)
			bc.meter.ObjectsVerified += int64(n)
			if n == 0 {
				continue
			}
			bits := bc.ensureBits(n)
			geom.InitBitmap(bits, n)
			alive := n
			for _, dd := range orders[qi*dims : qi*dims+dims] {
				if sig.BoundsImplyDim(rel, sb, dd, q.Min[dd], q.Max[dd]) {
					continue
				}
				bc.meter.BytesVerified += int64(alive) * 8
				alive = geom.FilterDim(rel, c.lo[dd], c.hi[dd], q.Min[dd], q.Max[dd], bits)
				if alive == 0 {
					break
				}
			}
			if alive == 0 {
				continue
			}
			bc.meter.Results += int64(alive)
			bc.perQ[qi] = geom.AppendSurvivors(bc.perQ[qi], c.ids, bits)
		}
	}

	// Concatenate the per-query accumulators into the flat result batch.
	for qi := 0; qi < nq; qi++ {
		dst.IDs = append(dst.IDs, bc.perQ[qi]...)
		dst.Off[qi+1] = int32(len(dst.IDs))
	}
}

// applyBatchQuery performs one batched query's share of the deferred
// statistics publication — the same increments applyScratch makes for a
// single query, picked out of the cluster-major batch delta through the
// query-major transpose.
func (ix *Index) applyBatchQuery(bc *batchScratch, qi int) {
	bd := &bc.stats
	for _, j := range bc.qcIdx[bc.qcOff[qi]:bc.qcOff[qi+1]] {
		c := bd.d.clusters[j]
		if c.removed {
			continue
		}
		ix.syncStats(c)
		c.q++
		cq := c.cands.q
		for _, k := range bd.d.cands[bd.d.candOff[j]:bd.d.candOff[j+1]] {
			cq[k]++
		}
	}
	ix.window++
	ix.sinceReorg++
	if ix.sinceReorg >= ix.cfg.ReorgEvery {
		ix.beginEpoch()
	}
}

// applyBatchInline applies the whole batch's statistics in one cluster-major
// walk over the delta records. Valid only when no epoch boundary falls inside
// the batch (ix.sinceReorg + nq < ReorgEvery): then the per-query replay's
// observable effects — syncStats, which early-returns once a cluster is
// synced to the current epoch, and the commutative Q increments and window
// ticks — are order-independent, so the linear walk over the records (each
// cluster's entries adjacent, its stats hot) produces the identical state at
// a fraction of the pointer-chasing.
func (ix *Index) applyBatchInline(bc *batchScratch) {
	bd := &bc.stats
	var last *Cluster
	for j, c := range bd.d.clusters {
		if c.removed {
			continue
		}
		if c != last {
			ix.syncStats(c)
			last = c
		}
		c.q++
		cq := c.cands.q
		for _, k := range bd.d.cands[bd.d.candOff[j]:bd.d.candOff[j+1]] {
			cq[k]++
		}
	}
	ix.window += float64(bd.nq)
	ix.sinceReorg += bd.nq
}
