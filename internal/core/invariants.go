package core

import (
	"fmt"

	"accluster/internal/sig"
)

// CheckInvariants validates the structural invariants of the index. It is
// O(objects × candidates) and intended for tests and debugging:
//
//  1. clusters[0] is the root; positions and removed flags are consistent;
//  2. parent/child links are mutual and parent signatures cover child
//     signatures (backward compatibility, §3.3);
//  3. every member matches its cluster's signature;
//  4. the location map is exact (every object in exactly one cluster slot);
//  5. every candidate's n indicator equals the recomputed count;
//  6. the coordinate columns are consistent with the member count and the
//     flat signature mirror tracks every cluster's signature positionally;
//  7. statistics epochs never lead the index epoch and the reorganization
//     queue is consistent (no duplicates, queued flags match membership).
func (ix *Index) CheckInvariants() error {
	ix.exclusivePrep()
	if len(ix.clusters) == 0 || ix.clusters[0] != ix.root {
		return fmt.Errorf("clusters[0] is not the root")
	}
	if !ix.root.signature.IsRoot() {
		return fmt.Errorf("root cluster signature is constrained: %v", ix.root.signature)
	}
	if ix.root.parent != nil {
		return fmt.Errorf("root has a parent")
	}
	dims := ix.cfg.Dims
	total := 0
	for pos, c := range ix.clusters {
		if c.removed {
			return fmt.Errorf("removed cluster %v still listed", c.signature)
		}
		if c.pos != pos {
			return fmt.Errorf("cluster %v: pos %d, listed at %d", c.signature, c.pos, pos)
		}
		if c.signature.Dims() != dims {
			return fmt.Errorf("cluster %v: wrong dimensionality", c.signature)
		}
		if c.parent != nil {
			if !c.parent.signature.Covers(c.signature) {
				return fmt.Errorf("parent %v does not cover child %v", c.parent.signature, c.signature)
			}
			found := false
			for _, ch := range c.parent.children {
				if ch == c {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("cluster %v missing from its parent's children", c.signature)
			}
		}
		for _, ch := range c.children {
			if ch.parent != c {
				return fmt.Errorf("child %v of %v has wrong parent", ch.signature, c.signature)
			}
			if ch.removed {
				return fmt.Errorf("cluster %v has removed child", c.signature)
			}
		}
		if len(c.lo) != dims || len(c.hi) != dims {
			return fmt.Errorf("cluster %v: %d/%d coordinate columns, want %d", c.signature, len(c.lo), len(c.hi), dims)
		}
		for d := 0; d < dims; d++ {
			if len(c.lo[d]) != len(c.ids) || len(c.hi[d]) != len(c.ids) {
				return fmt.Errorf("cluster %v: column %d length mismatch", c.signature, d)
			}
		}
		for i, id := range c.ids {
			l, ok := ix.loc[id]
			if !ok || l.c != c || int(l.pos) != i {
				return fmt.Errorf("object %d: location map out of sync", id)
			}
			if !c.signature.MatchesObject(c.rectAt(i, dims)) {
				return fmt.Errorf("object %d does not match its cluster signature %v", id, c.signature)
			}
		}
		cs := &c.cands
		for k := 0; k < cs.len(); k++ {
			n := int32(0)
			for i := range c.ids {
				lo, hi := c.objectDim(i, int(cs.dim[k]))
				if cs.matchesObjectDim(k, lo, hi) {
					n++
				}
			}
			if n != cs.n[k] {
				return fmt.Errorf("cluster %v candidate %d: n=%d, recomputed %d", c.signature, k, cs.n[k], n)
			}
			if cs.q[k] < 0 || c.q < 0 {
				return fmt.Errorf("negative query statistics")
			}
			if cs.q[k] > c.q+1e-9 {
				return fmt.Errorf("candidate explored more often than its cluster")
			}
			if int(cs.dim[k]) != cs.sp[k].Dim {
				return fmt.Errorf("cluster %v candidate %d: dim column out of sync", c.signature, k)
			}
		}
		if c.statsEpoch > ix.epoch {
			return fmt.Errorf("cluster %v: statistics epoch %d ahead of index epoch %d", c.signature, c.statsEpoch, ix.epoch)
		}
		total += len(c.ids)
	}
	inQueue := make(map[*Cluster]bool, len(ix.reorgQ))
	for _, c := range ix.reorgQ {
		if inQueue[c] {
			return fmt.Errorf("cluster %v queued twice", c.signature)
		}
		inQueue[c] = true
		if !c.queued {
			return fmt.Errorf("cluster %v in reorg queue without queued flag", c.signature)
		}
	}
	for _, c := range ix.clusters {
		if c.queued && !inQueue[c] {
			return fmt.Errorf("cluster %v flagged queued but missing from reorg queue", c.signature)
		}
	}
	if total != len(ix.loc) {
		return fmt.Errorf("object count mismatch: clusters hold %d, map holds %d", total, len(ix.loc))
	}
	if len(ix.sigBounds) != len(ix.clusters)*ix.sigStride() {
		return fmt.Errorf("signature mirror holds %d floats, want %d", len(ix.sigBounds), len(ix.clusters)*ix.sigStride())
	}
	if dims <= sig.MaxSelectorDims && len(ix.sigSel) != len(ix.clusters)*4 {
		return fmt.Errorf("selector side array holds %d bytes, want %d", len(ix.sigSel), len(ix.clusters)*4)
	}
	var selWant []uint8
	for pos, c := range ix.clusters {
		b := ix.sigBounds[pos*ix.sigStride() : (pos+1)*ix.sigStride()]
		s := c.signature
		for d := 0; d < dims; d++ {
			if b[4*d] != s.ALo[d] || b[4*d+1] != s.AHi[d] || b[4*d+2] != s.BLo[d] || b[4*d+3] != s.BHi[d] {
				return fmt.Errorf("cluster %v: signature mirror out of sync in dimension %d", s, d)
			}
		}
		if dims <= sig.MaxSelectorDims {
			selWant = sig.AppendSelectors(selWant[:0], b, dims)
			if got := ix.sigSel[pos*4 : pos*4+4]; got[0] != selWant[0] || got[1] != selWant[1] || got[2] != selWant[2] || got[3] != selWant[3] {
				return fmt.Errorf("cluster %v: dimension selectors out of sync: got %v want %v", s, got, selWant)
			}
		}
	}
	return nil
}
