package core

import "fmt"

// CheckInvariants validates the structural invariants of the index. It is
// O(objects × candidates) and intended for tests and debugging:
//
//  1. clusters[0] is the root; positions and removed flags are consistent;
//  2. parent/child links are mutual and parent signatures cover child
//     signatures (backward compatibility, §3.3);
//  3. every member matches its cluster's signature;
//  4. the location map is exact (every object in exactly one cluster slot);
//  5. every candidate's n indicator equals the recomputed count.
func (ix *Index) CheckInvariants() error {
	if len(ix.clusters) == 0 || ix.clusters[0] != ix.root {
		return fmt.Errorf("clusters[0] is not the root")
	}
	if !ix.root.signature.IsRoot() {
		return fmt.Errorf("root cluster signature is constrained: %v", ix.root.signature)
	}
	if ix.root.parent != nil {
		return fmt.Errorf("root has a parent")
	}
	dims := ix.cfg.Dims
	total := 0
	for pos, c := range ix.clusters {
		if c.removed {
			return fmt.Errorf("removed cluster %v still listed", c.signature)
		}
		if c.pos != pos {
			return fmt.Errorf("cluster %v: pos %d, listed at %d", c.signature, c.pos, pos)
		}
		if c.signature.Dims() != dims {
			return fmt.Errorf("cluster %v: wrong dimensionality", c.signature)
		}
		if c.parent != nil {
			if !c.parent.signature.Covers(c.signature) {
				return fmt.Errorf("parent %v does not cover child %v", c.parent.signature, c.signature)
			}
			found := false
			for _, ch := range c.parent.children {
				if ch == c {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("cluster %v missing from its parent's children", c.signature)
			}
		}
		for _, ch := range c.children {
			if ch.parent != c {
				return fmt.Errorf("child %v of %v has wrong parent", ch.signature, c.signature)
			}
			if ch.removed {
				return fmt.Errorf("cluster %v has removed child", c.signature)
			}
		}
		if len(c.data) != len(c.ids)*2*dims {
			return fmt.Errorf("cluster %v: data/ids length mismatch", c.signature)
		}
		for i, id := range c.ids {
			l, ok := ix.loc[id]
			if !ok || l.c != c || int(l.pos) != i {
				return fmt.Errorf("object %d: location map out of sync", id)
			}
			if !c.signature.MatchesObjectFlat(c.data, i) {
				return fmt.Errorf("object %d does not match its cluster signature %v", id, c.signature)
			}
		}
		for k := range c.cands {
			cd := &c.cands[k]
			n := int32(0)
			for i := range c.ids {
				lo, hi := c.objectDim(i, dims, cd.sp.Dim)
				if cd.matchesObjectDim(lo, hi) {
					n++
				}
			}
			if n != cd.n {
				return fmt.Errorf("cluster %v candidate %d: n=%d, recomputed %d", c.signature, k, cd.n, n)
			}
			if cd.q < 0 || c.q < 0 {
				return fmt.Errorf("negative query statistics")
			}
			if cd.q > c.q+1e-9 {
				return fmt.Errorf("candidate explored more often than its cluster")
			}
		}
		total += len(c.ids)
	}
	if total != len(ix.loc) {
		return fmt.Errorf("object count mismatch: clusters hold %d, map holds %d", total, len(ix.loc))
	}
	return nil
}
