package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/sig"
)

// Config parameterizes an adaptive clustering index.
type Config struct {
	// Dims is the data space dimensionality (required, ≥ 1).
	Dims int
	// Params selects the storage scenario driving the clustering
	// decisions (cost.Memory() or cost.Disk(), possibly tuned).
	Params cost.Params
	// DivisionFactor is the clustering function's f (§4.2); default 4.
	DivisionFactor int
	// ReorgEvery triggers a reorganization round after that many queries
	// (§7.1 uses 100); default 100.
	ReorgEvery int
	// Decay is the exponential forgetting factor applied to query
	// statistics at every reorganization round; default 0.5. A value of
	// 1 never forgets (static query distribution), values close to 0
	// adapt aggressively.
	Decay float64
	// ReorgBudgetClusters caps the cluster revisits performed per
	// incremental reorganization step (default 32; negative = unlimited,
	// reproducing the synchronous full pass at every trigger).
	ReorgBudgetClusters int
	// ReorgBudgetObjects caps the object relocations performed per
	// incremental reorganization step (default 128; negative =
	// unlimited). Merges and materializations are chunked across steps,
	// so the cap bounds every step — a relocation costs on the order of a
	// microsecond, making the default step comparable to a moderately
	// selective query.
	ReorgBudgetObjects int
	// BackgroundReorg defers queue draining to an external agent: Search
	// only opens reorganization epochs and never runs revisits itself;
	// the owner is expected to call ReorgStep (under its own
	// synchronization) whenever ReorgPending reports work.
	BackgroundReorg bool
}

func (c *Config) setDefaults() error {
	if c.Dims < 1 {
		return fmt.Errorf("core: invalid dimensionality %d", c.Dims)
	}
	if c.DivisionFactor == 0 {
		c.DivisionFactor = 4
	}
	if c.DivisionFactor < 2 {
		return fmt.Errorf("core: division factor must be ≥ 2, got %d", c.DivisionFactor)
	}
	if c.ReorgEvery == 0 {
		c.ReorgEvery = 100
	}
	if c.ReorgEvery < 1 {
		return fmt.Errorf("core: ReorgEvery must be ≥ 1, got %d", c.ReorgEvery)
	}
	if c.Decay == 0 {
		c.Decay = 0.5
	}
	if math.IsNaN(c.Decay) || c.Decay < 0 || c.Decay > 1 {
		return fmt.Errorf("core: decay must be in (0,1], got %g", c.Decay)
	}
	if c.ReorgBudgetClusters == 0 {
		c.ReorgBudgetClusters = 32
	}
	if c.ReorgBudgetClusters < 0 {
		c.ReorgBudgetClusters = -1
	}
	if c.ReorgBudgetObjects == 0 {
		c.ReorgBudgetObjects = 128
	}
	if c.ReorgBudgetObjects < 0 {
		c.ReorgBudgetObjects = -1
	}
	if c.Params.Name == "" {
		c.Params = cost.Memory()
	}
	return nil
}

// Normalized returns the configuration with defaults applied, or the
// validation error a constructor would report. It lets other layers (the
// persistence format, option surfaces) reason about effective values without
// duplicating the defaulting rules.
func (c Config) Normalized() (Config, error) {
	err := c.setDefaults()
	return c, err
}

// objLoc records where an object currently lives.
type objLoc struct {
	c   *Cluster
	pos int32
}

// Index is the adaptive cost-based clustering index. It distinguishes two
// access classes: the *Read query methods (SearchRead, SearchIDsAppendRead,
// CountRead) may run concurrently with each other — they only read
// structural state and defer their statistics publication (publish.go) —
// while every other method requires exclusive access. The public accluster
// package enforces the contract with a reader/writer lock per index.
type Index struct {
	cfg      Config
	objBytes int

	root     *Cluster
	clusters []*Cluster // all materialized clusters; clusters[0] == root

	// sigBounds mirrors every cluster's signature as one flat float32
	// array (4·dims per cluster, positionally aligned with clusters), so
	// the per-query signature pass is a single linear scan (sigscan.go).
	// sigSel is its dimension-selector side array (4 bytes per cluster,
	// sig.AppendSelectors): the precomputed narrowest membership
	// dimensions the batch point kernel probes, maintained at the same
	// sites as the mirror. Empty when dims exceeds sig.MaxSelectorDims.
	sigBounds []float32
	sigSel    []uint8

	loc map[uint32]objLoc

	// scratch pools per-query buffers (*searchScratch) and bscratch
	// per-batch buffers (*batchScratch) so that steady-state queries
	// perform no allocations while each in-flight query still owns a
	// private set; readers counts in-flight read phases (the reentrancy
	// guard of exclusivePrep).
	scratch  sync.Pool
	bscratch sync.Pool
	readers  atomic.Int32

	// Statistics-publication mailbox: completed read phases enqueue their
	// scratch (carrying the statistics delta — one entry per query, or one
	// per whole batch) under pendMu; the next exclusive holder applies the
	// batch (publish.go). pendN mirrors len(pending) for lock-free backlog
	// checks; pendSpare recycles the drained slice.
	pendMu    sync.Mutex
	pending   []statPub
	pendSpare []statPub
	pendN     atomic.Int32

	// Statistics window: W is the decayed total number of queries; every
	// cluster's and candidate's q is decayed on the same schedule — the
	// window eagerly at each epoch, the clusters lazily via syncStats —
	// so access probabilities p = q/W stay consistent (§3.1).
	window     float64
	sinceReorg int
	// epoch counts reorganization epochs begun; reorgQ holds the clusters
	// still awaiting their budgeted revisit (reorg.go).
	epoch            int64
	reorgQ           reorgHeap
	meter            cost.SyncMeter
	reorgRounds      int64
	splits, merges   int64
	objectsRelocated int64
}

// ErrDuplicateID is returned when inserting an id already present.
var ErrDuplicateID = errors.New("core: duplicate object id")

// ErrNotFound is returned when updating an id that is not present.
var ErrNotFound = errors.New("core: object not found")

// New builds an empty index holding the root cluster.
func New(cfg Config) (*Index, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	ix := &Index{
		cfg:      cfg,
		objBytes: geom.ObjectBytes(cfg.Dims),
		loc:      make(map[uint32]objLoc),
	}
	ix.root = newCluster(sig.Root(cfg.Dims), cfg.DivisionFactor)
	ix.root.pos = 0
	ix.clusters = []*Cluster{ix.root}
	ix.appendSigBounds(ix.root.signature)
	return ix, nil
}

// Config returns the effective configuration (with defaults applied).
func (ix *Index) Config() Config { return ix.cfg }

// Dims returns the data space dimensionality.
func (ix *Index) Dims() int { return ix.cfg.Dims }

// Len returns the number of stored objects.
func (ix *Index) Len() int { return len(ix.loc) }

// Clusters returns the number of materialized clusters.
func (ix *Index) Clusters() int { return len(ix.clusters) }

// Meter returns a consistent snapshot of the accumulated operation
// counters. It is safe to call from any goroutine: each query merges its
// counter delta at the end of its read phase.
func (ix *Index) Meter() cost.Meter { return ix.meter.Snapshot() }

// ResetMeter zeroes the operation counters (statistics windows are kept).
// Safe to call from any goroutine.
func (ix *Index) ResetMeter() { ix.meter.Reset() }

// ReorgRounds returns the number of reorganization rounds executed.
func (ix *Index) ReorgRounds() int64 { return ix.reorgRounds }

// Splits returns the number of cluster materializations performed.
func (ix *Index) Splits() int64 { return ix.splits }

// Merges returns the number of merge operations performed.
func (ix *Index) Merges() int64 { return ix.merges }

// ObjectsRelocated returns the number of object moves caused by
// reorganizations.
func (ix *Index) ObjectsRelocated() int64 { return ix.objectsRelocated }

// Epoch returns the reorganization epoch: the number of reorganization
// rounds that have begun (a round in progress counts). Like the other plain
// counters it must be read under at least the shared lock of a wrapper.
func (ix *Index) Epoch() int64 { return ix.epoch }

// ReorgBacklog returns the number of clusters queued for revisiting by the
// incremental reorganizer. Must be read under at least the shared lock of a
// wrapper.
func (ix *Index) ReorgBacklog() int { return len(ix.reorgQ) }

// prob converts a decayed match count into an access probability.
func (ix *Index) prob(q float64) float64 {
	if ix.window <= 0 {
		return 0
	}
	p := q / ix.window
	if p > 1 {
		p = 1
	}
	return p
}

// Insert adds an object (Fig. 4): among all materialized clusters whose
// signature accepts the object, the one with the lowest access probability
// hosts it.
//
//ac:excl
func (ix *Index) Insert(id uint32, r geom.Rect) error {
	if r.Dims() != ix.cfg.Dims {
		return fmt.Errorf("core: object has %d dims, index has %d", r.Dims(), ix.cfg.Dims)
	}
	if !r.Valid() {
		return fmt.Errorf("core: invalid rectangle %v", r)
	}
	ix.exclusivePrep()
	if _, dup := ix.loc[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	// syncStats (rather than the read-only effectiveQ) persists the
	// deferred decay, so a stale cluster pays the exponentiation once per
	// epoch instead of on every insert that considers it.
	ix.syncStats(ix.root)
	best := ix.root
	bestP := ix.prob(ix.root.q)
	for _, c := range ix.clusters[1:] {
		if !c.signature.MatchesObject(r) {
			continue
		}
		ix.syncStats(c)
		if p := ix.prob(c.q); p <= bestP {
			// ≤ prefers later (deeper, more specific) clusters on
			// ties, which keeps rarely-explored clusters filled.
			best, bestP = c, p
		}
	}
	pos := best.appendObject(id, r)
	ix.loc[id] = objLoc{c: best, pos: int32(pos)}
	return nil
}

// Delete removes the object with the given id, reporting whether it existed.
//
//ac:excl
func (ix *Index) Delete(id uint32) bool {
	ix.exclusivePrep()
	l, ok := ix.loc[id]
	if !ok {
		return false
	}
	movedID, moved := l.c.removeObjectAt(int(l.pos))
	if moved {
		ix.loc[movedID] = objLoc{c: l.c, pos: l.pos}
	}
	delete(ix.loc, id)
	return true
}

// Update replaces the rectangle stored under id, relocating the object to
// the matching cluster with the lowest access probability. The stored object
// is untouched if the new rectangle is invalid.
//
//ac:excl
func (ix *Index) Update(id uint32, r geom.Rect) error {
	if r.Dims() != ix.cfg.Dims {
		return fmt.Errorf("core: object has %d dims, index has %d", r.Dims(), ix.cfg.Dims)
	}
	if !r.Valid() {
		return fmt.Errorf("core: invalid rectangle %v", r)
	}
	if _, ok := ix.loc[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	ix.Delete(id)
	return ix.Insert(id, r)
}

// Get returns the rectangle stored under id.
func (ix *Index) Get(id uint32) (geom.Rect, bool) {
	l, ok := ix.loc[id]
	if !ok {
		return geom.Rect{}, false
	}
	return l.c.rectAt(int(l.pos), ix.cfg.Dims), true
}

// VisitClusters calls fn for every materialized cluster (root first).
func (ix *Index) VisitClusters(fn func(c *Cluster)) {
	for _, c := range ix.clusters {
		fn(c)
	}
}
