// Package core implements the paper's primary contribution: the adaptive
// cost-based clustering index for multidimensional extended objects (§3–§6).
//
// The database is a flat set of materialized clusters, each carrying a
// signature (internal/sig), a sequential member store (flat float32 layout
// for data locality, as the paper stores members contiguously), and
// performance indicators for itself and for its virtual candidate
// subclusters. Queries scan all cluster signatures, explore matching
// clusters, verify members individually, and update statistics; every
// ReorgEvery queries the index reorganizes clusters by merging or splitting
// according to the cost model (internal/cost).
package core

import (
	"accluster/internal/geom"
	"accluster/internal/sig"
)

// candidate is a virtual subcluster of a materialized cluster: the split that
// defines it, its cached variation-interval bounds for the refined dimension,
// and its performance indicators (paper §3.1).
type candidate struct {
	sp                 sig.Split
	aLo, aHi, bLo, bHi float32
	n                  int32   // objects of the owner matching the candidate
	q                  float64 // decayed count of queries matching the candidate
}

// matchesObjectDim reports whether an owner member with the refined
// dimension's interval [lo,hi] qualifies for the candidate.
func (cd *candidate) matchesObjectDim(lo, hi float32) bool {
	return sig.InVar(lo, cd.aLo, cd.aHi) && sig.InVar(hi, cd.bLo, cd.bHi)
}

// matchesQueryDim reports whether a query already matching the owner also
// matches the candidate on the refined dimension.
func (cd *candidate) matchesQueryDim(rel geom.Relation, qlo, qhi float32) bool {
	return sig.QueryDimMatch(rel, qlo, qhi, cd.aLo, cd.aHi, cd.bLo, cd.bHi)
}

// Cluster is a materialized group of objects accessed and checked together
// during spatial selections (§3.1). Members are stored sequentially: ids[i]
// pairs with the flat coordinate block data[i*2*dims : (i+1)*2*dims].
type Cluster struct {
	signature sig.Signature
	parent    *Cluster
	children  []*Cluster

	ids  []uint32
	data []float32

	cands []candidate
	q     float64 // decayed count of queries exploring this cluster

	pos     int  // index in Index.clusters (O(1) removal)
	removed bool // set when merged away
}

// Signature returns the cluster's grouping signature.
func (c *Cluster) Signature() sig.Signature { return c.signature }

// Parent returns the parent cluster (nil for the root).
func (c *Cluster) Parent() *Cluster { return c.parent }

// Len returns the number of member objects n(c).
func (c *Cluster) Len() int { return len(c.ids) }

// IDs returns the member identifiers (shared storage; do not mutate).
func (c *Cluster) IDs() []uint32 { return c.ids }

// Data returns the flat member coordinates (shared storage; do not mutate).
func (c *Cluster) Data() []float32 { return c.data }

// Candidates returns the number of candidate subclusters tracked.
func (c *Cluster) Candidates() int { return len(c.cands) }

// newCluster builds a cluster with the given signature and candidate set
// derived by the clustering function with division factor f.
func newCluster(s sig.Signature, f int) *Cluster {
	c := &Cluster{signature: s}
	splits := sig.Enumerate(s, f)
	c.cands = make([]candidate, len(splits))
	for i, sp := range splits {
		aLo, aHi, bLo, bHi := sp.Bounds(s)
		c.cands[i] = candidate{sp: sp, aLo: aLo, aHi: aHi, bLo: bLo, bHi: bHi}
	}
	return c
}

// reservedGrowth mirrors the paper's storage utilization rule (§6): freshly
// (re)located clusters reserve 20–30% free slots to avoid frequent moves. We
// size capacities at 125% of the live size.
func reservedCap(n int) int {
	if n < 4 {
		return n + 1
	}
	return n + n/4
}

// appendObject adds one member and updates the candidate indicators.
func (c *Cluster) appendObject(id uint32, r geom.Rect) int {
	pos := len(c.ids)
	if cap(c.ids) == len(c.ids) {
		grow := reservedCap(len(c.ids) + 1)
		ids := make([]uint32, len(c.ids), grow)
		copy(ids, c.ids)
		c.ids = ids
		data := make([]float32, len(c.data), grow*2*r.Dims())
		copy(data, c.data)
		c.data = data
	}
	c.ids = append(c.ids, id)
	c.data = geom.AppendFlat(c.data, r)
	for i := range c.cands {
		cd := &c.cands[i]
		d := cd.sp.Dim
		if cd.matchesObjectDim(r.Min[d], r.Max[d]) {
			cd.n++
		}
	}
	return pos
}

// objectDim returns the [lo,hi] interval of member i in dimension d.
func (c *Cluster) objectDim(i, dims, d int) (lo, hi float32) {
	base := i * 2 * dims
	return c.data[base+2*d], c.data[base+2*d+1]
}

// removeObjectAt swap-removes member i and updates candidate indicators.
// It returns the id that was moved into slot i (or 0 and false when the
// removed member was the last one).
func (c *Cluster) removeObjectAt(i, dims int) (movedID uint32, moved bool) {
	for k := range c.cands {
		cd := &c.cands[k]
		lo, hi := c.objectDim(i, dims, cd.sp.Dim)
		if cd.matchesObjectDim(lo, hi) {
			cd.n--
		}
	}
	last := len(c.ids) - 1
	if i != last {
		c.ids[i] = c.ids[last]
		copy(c.data[i*2*dims:(i+1)*2*dims], c.data[last*2*dims:(last+1)*2*dims])
		movedID, moved = c.ids[i], true
	}
	c.ids = c.ids[:last]
	c.data = c.data[:last*2*dims]
	return movedID, moved
}

// rectAt materializes member i as a Rect.
func (c *Cluster) rectAt(i, dims int) geom.Rect {
	return geom.FromFlat(c.data, i, dims)
}

// detachChild removes ch from c.children.
func (c *Cluster) detachChild(ch *Cluster) {
	for i, x := range c.children {
		if x == ch {
			c.children[i] = c.children[len(c.children)-1]
			c.children = c.children[:len(c.children)-1]
			return
		}
	}
}
